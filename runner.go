package assertionbench

import (
	"context"
	"iter"
	"time"

	"assertionbench/internal/bench"
	"assertionbench/internal/eval"
	"assertionbench/internal/llm"
)

// RunOptions configure one evaluation run of one Generator.
type RunOptions struct {
	// Shots is k for k-shot ICL (the paper evaluates 1 and 5).
	Shots int
	// Seed drives generation; results are deterministic per seed.
	Seed int64
	// UseCorrector enables the paper's Fig. 4 stage-3 syntax corrector
	// (on for COTS models, off for fine-tuned models per Fig. 8).
	UseCorrector bool
	// MaxDesigns truncates the corpus for quick runs (0 = all).
	MaxDesigns int
	// Workers sets the worker-pool size: 0 means GOMAXPROCS, 1 forces a
	// sequential run. Any worker count produces identical results at the
	// same seed.
	Workers int
	// Dispatch selects how the worker pool divides the corpus:
	// DispatchCost (default) plans per-design work from the cost model and
	// lets idle workers steal, DispatchContiguous assigns balanced
	// contiguous slices with no stealing, DispatchFIFO feeds a shared
	// queue in corpus order. Every mode yields byte-identical results at
	// the same seed; they differ only in completion-latency profile.
	Dispatch string
	// Deadline bounds the whole run's wall clock (anytime mode): when it
	// expires, designs already verified keep their verdicts, in-flight
	// designs keep decided verdicts with the rest Unknown, and unreached
	// designs come back as Truncated stubs. Zero disables the budget.
	Deadline time.Duration
	// DesignBudget bounds each design's verification wall clock the same
	// way, independent of Deadline. Zero disables it.
	DesignBudget time.Duration
	// OnDesignDone, when non-nil, observes every successfully completed
	// design: its global corpus index, its own wall time, and the time
	// since the run started. Called concurrently from worker goroutines —
	// it must be safe for concurrent use and fast. Errored jobs and
	// designs an expired Deadline never reached are not reported.
	OnDesignDone func(index int, wall, sinceStart time.Duration)
	// ShardIndex/ShardCount restrict the run to one of count contiguous
	// corpus shards (ShardCount 0 = unsharded). Concatenating all shards
	// reproduces the unsharded run exactly.
	ShardIndex int
	ShardCount int
	// Backend selects the execution engine for simulation and formal
	// verification: BackendCompiled (default) or BackendInterp (the
	// reference tree-walk, for cross-checking). Overrides
	// Verify.Backend when non-empty.
	Backend string
	// Batch selects whether each design's candidate list is verified
	// over a shared reachability graph (BatchAuto, default) or one
	// assertion at a time (BatchOff, the reference path). Verdicts are
	// identical either way. Overrides Verify.Batch when non-empty.
	Batch string
	// Cone selects cone-of-influence reduction (ConeAuto, default) or
	// full-design exploration (ConeOff, the reference path). Verdicts
	// agree semantically either way. Overrides Verify.Cone when
	// non-empty.
	Cone string
	// Slices selects 64-way bit-parallel bounded exploration
	// (SlicesAuto, default) or the scalar reference loops (SlicesOff).
	// Verdicts are identical either way. Overrides Verify.Slices when
	// non-empty.
	Slices string
	// Static selects the abstract-interpretation pre-verification pass
	// (StaticAuto, default) or skips it (StaticOff, the pure-search
	// reference path). Verdicts agree semantically either way. Overrides
	// Verify.Static when non-empty.
	Static string
	// Verify bounds the built-in FPV verifier; zero fields select the
	// evaluation-grade budget.
	Verify VerifyOptions
	// Verifier replaces the built-in FPV engine when non-nil. The
	// instance is shared by all workers and must be safe for concurrent
	// use.
	Verifier Verifier
	// CacheDir, when non-empty, attaches the persistent artifact store
	// at that directory before the run (see SetCacheDir): compiled
	// programs and FPV reachability graphs are read from and written
	// behind to disk, so a fresh process starts warm. Off by default.
	// The attachment is process-wide and sticky across runs.
	CacheDir string
	// ErrorPolicy selects what a failed design job does to the rest of
	// the run: ErrorPolicyFail (default) ends the stream at the first
	// per-design error, exactly as a sequential walk would;
	// ErrorPolicyContinue converts the failure into an errored
	// DesignOutcome at its corpus position and finishes the run.
	// Cancellation always ends the stream under either policy.
	ErrorPolicy string
	// Retries bounds how many times a design job whose failure is
	// transient (artifact-store I/O, injected faults) is re-attempted
	// before ErrorPolicy applies, each retry after a deterministic
	// seeded backoff. 0 disables retry; negative is an error.
	Retries int
	// Resume serves designs that a previous run over the same generator,
	// corpus, seed and options already decided straight from the run
	// manifest (journaled through the artifact store as designs
	// complete) and evaluates only the undecided rest. The resumed
	// stream is identical to a never-interrupted run. Requires an
	// attached artifact store (CacheDir or SetCacheDir).
	Resume bool
}

// Dispatch modes for RunOptions.Dispatch.
const (
	// DispatchCost plans per-worker deques from the per-design cost model
	// (journaled prior wall time, static structure otherwise) and lets
	// idle workers steal the costliest pending job. The default.
	DispatchCost = eval.DispatchCost
	// DispatchContiguous assigns balanced contiguous corpus slices with
	// no stealing — the pre-cost-model division, kept as the tail-latency
	// baseline.
	DispatchContiguous = eval.DispatchContiguous
	// DispatchFIFO feeds a shared queue in corpus order.
	DispatchFIFO = eval.DispatchFIFO
)

// Error policies for RunOptions.ErrorPolicy.
const (
	// ErrorPolicyFail ends the stream at the first per-design error (the
	// default, and the original contract).
	ErrorPolicyFail = eval.ErrorPolicyFail
	// ErrorPolicyContinue streams a failed design as an errored outcome
	// and finishes the run.
	ErrorPolicyContinue = eval.ErrorPolicyContinue
)

func (o RunOptions) internal() eval.RunOptions {
	opt := eval.RunOptions{
		Shots:        o.Shots,
		Seed:         o.Seed,
		UseCorrector: o.UseCorrector,
		FPV:          o.Verify.internal(),
		MaxDesigns:   o.MaxDesigns,
		Workers:      o.Workers,
		Dispatch:     o.Dispatch,
		Deadline:     o.Deadline,
		DesignBudget: o.DesignBudget,
		OnDesignDone: o.OnDesignDone,
		ShardIndex:   o.ShardIndex,
		ShardCount:   o.ShardCount,
		CacheDir:     o.CacheDir,
		ErrorPolicy:  o.ErrorPolicy,
		Retries:      o.Retries,
		Resume:       o.Resume,
	}
	if o.Backend != "" {
		opt.FPV.Backend = o.Backend
	}
	if o.Batch != "" {
		opt.FPV.Batch = o.Batch
	}
	if o.Cone != "" {
		opt.FPV.Cone = o.Cone
	}
	if o.Slices != "" {
		opt.FPV.Slices = o.Slices
	}
	if o.Static != "" {
		opt.FPV.Static = o.Static
	}
	if o.Verifier != nil {
		a := verifierAdapter{v: o.Verifier}
		opt.NewVerifier = func() eval.Verifier { return a }
	}
	return opt
}

// Runner evaluates one Generator over a benchmark corpus. Both consumption
// modes share one implementation — Run is a collector over the same
// stream Stream exposes — so they cannot drift apart.
type Runner struct {
	gen      eval.Generator
	examples []llm.Example
	corpus   []bench.Design
	opt      eval.RunOptions
}

// NewRunner builds a Runner over the benchmark's test corpus and mined
// in-context examples.
func NewRunner(gen Generator, b *Benchmark, opt RunOptions) *Runner {
	return &Runner{
		gen:      adaptGenerator(gen),
		examples: b.exp.ICL,
		corpus:   b.exp.Corpus,
		opt:      opt.internal(),
	}
}

// NewRunnerOver builds a Runner over an arbitrary design list and example
// set — for corpora the benchmark does not ship.
func NewRunnerOver(gen Generator, designs []Design, examples []Example, opt RunOptions) *Runner {
	return &Runner{
		gen:      adaptGenerator(gen),
		examples: internalExamples(examples),
		corpus:   internalDesigns(designs),
		opt:      opt.internal(),
	}
}

// Run evaluates the corpus and returns the batch result. On error
// (including ctx.Err() after cancellation) the partial RunResult holds
// every outcome before the failure, exactly as a sequential walk would.
func (r *Runner) Run(ctx context.Context) (RunResult, error) {
	res, err := eval.Run(ctx, r.gen, r.examples, r.corpus, r.opt)
	return newRunResult(res), err
}

// Stream evaluates the corpus and yields one DesignOutcome per design in
// corpus order, each delivered the moment it (and every design before it)
// finishes — incremental results with the exact determinism guarantees of
// Run, which is itself a collector over this stream. The sequence ends
// after the last design or early with a single non-nil error: the first
// per-design failure, or ctx.Err() on cancellation. Breaking out of the
// loop early cancels and drains the worker pool before the iterator
// returns; no goroutines outlive the loop.
func (r *Runner) Stream(ctx context.Context) iter.Seq2[DesignOutcome, error] {
	return func(yield func(DesignOutcome, error) bool) {
		for o, err := range eval.Stream(ctx, r.gen, r.examples, r.corpus, r.opt) {
			if err != nil {
				yield(DesignOutcome{}, err)
				return
			}
			if !yield(newDesignOutcome(o), nil) {
				return
			}
		}
	}
}
