package assertionbench

import (
	"context"

	"assertionbench/internal/dverify"
)

// SelfCheckOptions configure the differential self-check harness.
type SelfCheckOptions struct {
	// Scenarios is the number of seeded random designs generated and
	// checked (default 50).
	Scenarios int
	// PropsPerDesign is the number of random SVA properties cross-checked
	// per design (default 3).
	PropsPerDesign int
	// Seed makes the run reproducible; a (Seed, Scenarios) pair fully
	// determines every design, property and verdict. Default 1.
	Seed int64
	// DumpDir receives .v/.sva reproduction pairs for disagreements
	// ("" disables dumping).
	DumpDir string
	// Short trims the per-design budgets (fewer traces, shorter shrink)
	// for CI smoke runs.
	Short bool
}

// SelfCheckReport summarizes a self-check run.
type SelfCheckReport struct {
	// Scenarios and Properties count what was generated and checked.
	Scenarios  int
	Properties int
	// Exhaustive counts properties whose reference verdict came from a
	// fully closed (exhaustive) FPV search; CEXs counts counter-examples
	// replayed and confirmed on the event-driven simulator.
	Exhaustive int
	CEXs       int
	// Verdicts tallies the reference engine's verdicts by status name
	// (proven/vacuous/bounded_pass/cex) — context for Exhaustive: cex
	// verdicts are definitive and replay-checked, so only the
	// bounded_pass share sits outside the strong oracles' reach.
	Verdicts map[string]int
	// DeterminismRuns counts the eval stream configurations compared.
	DeterminismRuns int
	// BackendChecks counts compiled-vs-interpreted execution comparisons
	// (lockstep simulator runs, monitor trace checks, FPV verdicts).
	BackendChecks int
	// BatchChecks counts batched-vs-per-property FPV result comparisons
	// (the shared-reachability verifier against the reference search).
	BatchChecks int
	// ConeChecks counts cone-of-influence comparisons (the reduced
	// search against the full-design reference).
	ConeChecks int
	// SlicedChecks counts bit-sliced-vs-scalar FPV result comparisons
	// (the 64-way bounded exploration against the scalar loops).
	SlicedChecks int
	// StaticChecks counts static-pass-vs-pure-search FPV comparisons (the
	// abstract-interpretation pre-verification against the search with the
	// pass disabled); StaticDischarged counts how many of those the static
	// side settled without any search.
	StaticChecks     int
	StaticDischarged int
	// StoreChecks counts disk-served-vs-store-free FPV comparisons (the
	// persistent artifact store's blobs read back by a cold cache against
	// the search that never touched disk); StoreLoads counts the blobs
	// those warm runs actually served from disk.
	StoreChecks int
	StoreLoads  int
	// SchedChecks counts dispatch-mode stream comparisons (the cost-model
	// work-stealing dispatcher and the contiguous baseline against the
	// sequential reference, plus the sharded cost-dispatched
	// concatenation).
	SchedChecks int
	// FaultChecks counts fault-tolerance comparisons (deterministic
	// injected faults absorbed by retries, the continue policy's errored
	// stream, and resume convergence with verify-call accounting against
	// the fault-free sequential reference).
	FaultChecks int
	// Disagreements lists every oracle violation, shrunk to a minimal
	// reproduction. Empty on a healthy build.
	Disagreements []string
}

// OK reports whether the self-check found no disagreements.
func (r SelfCheckReport) OK() bool { return len(r.Disagreements) == 0 }

// SelfCheck runs the differential verification harness: seeded random
// well-formed designs and SVA properties are cross-checked through
// eleven oracles — print/parse round-trip netlist identity, agreement between
// the FPV engine, the SVA monitor and the event-driven simulator
// (including counter-example replay and bounded-vs-exhaustive
// consistency), byte-identical determinism of sequential, parallel and
// sharded evaluation streams, bit-identical agreement of the compiled
// register-machine backend with the tree-walking interpreter (lockstep
// simulation, monitor trace checks, full FPV verdicts), bit-identical
// agreement of the batched shared-reachability verifier with the
// per-property reference search (full result identity plus independent
// counter-example replay), semantic agreement of cone-of-influence-
// reduced FPV with the full-design search (exhaustive verdicts coincide,
// bounded findings never contradict them, counter-examples from either
// side replay on the full design), bit-identical agreement of the
// 64-way bit-sliced bounded exploration with the scalar reference loops,
// and semantic agreement of the static pre-verification pass (abstract-
// interpretation discharge plus constant-swept cones) with the
// pure-search reference, statically fabricated counter-examples replayed
// like searched ones, and bit-identical agreement of FPV served from the
// persistent artifact store — compiled programs and reachability graphs
// round-tripped through disk blobs and read back by a cold cache — with
// the store-free search, and byte-identical agreement of the cost-model
// work-stealing dispatcher and the contiguous baseline with the
// sequential evaluation walk, sharded concatenation included, and
// convergence of the fault-tolerance layer — retries absorbing bounded
// injected faults, the continue policy surfacing a permanent failure as
// one errored outcome, and a resumed run served from the run manifest —
// to the fault-free sequential stream.
// The returned error covers harness failures (cancellation, dump I/O)
// only; oracle violations are reported as data in the report.
func SelfCheck(ctx context.Context, opt SelfCheckOptions) (SelfCheckReport, error) {
	iopt := dverify.Options{
		Scenarios:      opt.Scenarios,
		PropsPerDesign: opt.PropsPerDesign,
		Seed:           opt.Seed,
		DumpDir:        opt.DumpDir,
	}
	if opt.Short {
		iopt.TraceCount = 1
		iopt.TraceCycles = 24
		iopt.MaxShrinkSteps = 8
		if iopt.Scenarios == 0 {
			iopt.Scenarios = 20
		}
	}
	rep, err := dverify.Run(ctx, iopt)
	out := SelfCheckReport{
		Scenarios:        rep.Scenarios,
		Properties:       rep.Properties,
		Exhaustive:       rep.Exhaustive,
		CEXs:             rep.CEXs,
		Verdicts:         rep.RefStatus,
		DeterminismRuns:  rep.DeterminismRuns,
		BackendChecks:    rep.BackendChecks,
		BatchChecks:      rep.BatchChecks,
		ConeChecks:       rep.ConeChecks,
		SlicedChecks:     rep.SlicedChecks,
		StaticChecks:     rep.StaticChecks,
		StaticDischarged: rep.StaticDischarged,
		StoreChecks:      rep.StoreChecks,
		StoreLoads:       rep.StoreLoads,
		SchedChecks:      rep.SchedChecks,
		FaultChecks:      rep.FaultChecks,
	}
	for _, d := range rep.Disagreements {
		out.Disagreements = append(out.Disagreements, d.String())
	}
	return out, err
}
