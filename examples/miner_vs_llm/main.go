// miner_vs_llm compares the classical mining pipeline (GOLDMINE/HARM,
// every output formally proven) with LLM-based generation (fluent but
// fallible) on one FIFO controller — the trade-off that motivates the
// paper's study. Both sources implement the same Generator interface, so
// the comparison also demonstrates the pluggable-source API: the miner
// runs through the identical evaluation pipeline as the models.
package main

import (
	"context"
	"fmt"
	"log"

	"assertionbench"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	b, err := assertionbench.Load(ctx, assertionbench.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var design assertionbench.Design
	for _, d := range b.Corpus() {
		if d.Name == "fifo_mem" {
			design = d
		}
	}
	if design.Source == "" {
		log.Fatal("fifo_mem not in corpus")
	}
	fmt.Println("=== design: fifo_mem (FIFO occupancy controller) ===")

	// Classical miners: slow, design-specific, but every assertion proven.
	mined, err := assertionbench.MineAssertions(ctx, design.Source, assertionbench.MineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- GOLDMINE + HARM (%d proven assertions, ranked) ---\n", len(mined))
	for i, m := range mined {
		if i >= 8 {
			fmt.Printf("  ... and %d more\n", len(mined)-8)
			break
		}
		fmt.Printf("  rank=%.4f  %s\n", m.Rank, m.Assertion)
	}

	// LLM generation: fast and fluent, but unverified until FPV runs.
	// Miners and models share the Generator interface, so this loop treats
	// them uniformly.
	sources := []assertionbench.Generator{
		assertionbench.NewModelGenerator(assertionbench.GPT35()),
		assertionbench.NewModelGenerator(assertionbench.GPT4o()),
		assertionbench.NewGoldMineGenerator(),
	}
	for _, gen := range sources {
		out, err := b.GenerateAssertions(ctx, gen, design.Source, 5, 7)
		if err != nil {
			log.Fatal(err)
		}
		corrected := assertionbench.CorrectAssertions(design.Source, out.Assertions)
		results, err := assertionbench.VerifyAssertions(ctx, design.Source, corrected, assertionbench.VerifyOptions{})
		if err != nil {
			log.Fatal(err)
		}
		pass, cex, errs := 0, 0, 0
		fmt.Printf("\n--- %s, 5-shot ---\n", gen.Name())
		for _, r := range results {
			fmt.Printf("  %-55s %s\n", r.Assertion, r.Status)
			switch {
			case r.Status == assertionbench.StatusError:
				errs++
			case r.Status == assertionbench.StatusCEX:
				cex++
			default:
				pass++
			}
		}
		fmt.Printf("  => %d/%d formally valid (%d cex, %d error)\n",
			pass, len(results), cex, errs)
	}
	fmt.Println("\nThe miners' output is 100% proven by construction; the LLMs trade")
	fmt.Println("soundness for coverage and speed — the gap AssertionBench quantifies.")
}
