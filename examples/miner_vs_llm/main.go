// miner_vs_llm compares the classical mining pipeline (GOLDMINE/HARM,
// every output formally proven) with LLM-based generation (fluent but
// fallible) on one FIFO controller — the trade-off that motivates the
// paper's study.
package main

import (
	"fmt"
	"log"

	"assertionbench/internal/core"
	"assertionbench/internal/fpv"
)

func main() {
	log.SetFlags(0)

	var design string
	b, err := core.LoadBenchmark(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range b.Corpus() {
		if d.Name == "fifo_mem" {
			design = d.Source
		}
	}
	if design == "" {
		log.Fatal("fifo_mem not in corpus")
	}
	fmt.Println("=== design: fifo_mem (FIFO occupancy controller) ===")

	// Classical miners: slow, design-specific, but every assertion proven.
	mined, err := core.Mine(design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- GOLDMINE + HARM (%d proven assertions, ranked) ---\n", len(mined))
	for i, m := range mined {
		if i >= 8 {
			fmt.Printf("  ... and %d more\n", len(mined)-8)
			break
		}
		fmt.Printf("  rank=%.4f  %s\n", m.Rank, m.Assertion)
	}

	// LLM generation: fast and fluent, but unverified until FPV runs.
	for _, id := range []core.ModelID{core.GPT35, core.GPT4o} {
		p, _ := id.Profile()
		gen, err := core.Generate(id, design, b, 5, 7)
		if err != nil {
			log.Fatal(err)
		}
		results, err := core.Verify(design, gen.Corrected)
		if err != nil {
			log.Fatal(err)
		}
		pass, cex, errs := 0, 0, 0
		fmt.Printf("\n--- %s, 5-shot ---\n", p.Name)
		for i, r := range results {
			fmt.Printf("  %-55s %s\n", gen.Corrected[i], r.Status)
			switch {
			case r.Status == fpv.StatusError:
				errs++
			case r.Status == fpv.StatusCEX:
				cex++
			default:
				pass++
			}
		}
		fmt.Printf("  => %d/%d formally valid (%d cex, %d error)\n",
			pass, len(results), cex, errs)
	}
	fmt.Println("\nThe miners' output is 100% proven by construction; the LLMs trade")
	fmt.Println("soundness for coverage and speed — the gap AssertionBench quantifies.")
}
