// Quickstart: generate assertions for the paper's Fig. 1 arbiter with a
// simulated COTS model, correct them, and verify them with the FPV
// engine — the full Fig. 4 loop on one design, entirely through the
// public assertionbench API. Also verifies the paper's Sec. II-A example
// properties P1 and P2 directly.
package main

import (
	"context"
	"fmt"
	"log"

	"assertionbench"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// The design under verification: the paper's two-port arbiter.
	design := assertionbench.TrainArbiter()
	fmt.Println("=== design: 2-port arbiter (paper Fig. 1) ===")

	// Step 0: the paper's own example properties.
	props := []string{
		"G((req1 == 1 && req2 == 0) -> (gnt1 == 1))",                     // P1
		"G((req2 == 0 && gnt_ == 1) && X(req1 == 1) -> X(X(gnt1 == 1)))", // P2
	}
	results, err := assertionbench.VerifyAssertions(ctx, design.Source, props, assertionbench.VerifyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("paper property %-62s -> %s\n", r.Assertion, r.Status)
		if r.CEX != nil {
			fmt.Printf("  refuted: attempt started cycle %d, violated cycle %d\n",
				r.CEX.AttemptCycle(), r.CEX.ViolationCycle())
		}
	}

	// Step 1: load AssertionBench (mines the 5 training examples).
	b, err := assertionbench.Load(ctx, assertionbench.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbenchmark: %d train designs, %d test designs\n",
		len(b.TrainDesigns()), len(b.Corpus()))

	// Step 2: 5-shot generation with the GPT-4o profile.
	gen := assertionbench.NewModelGenerator(assertionbench.GPT4o())
	out, err := b.GenerateAssertions(ctx, gen, design.Source, 5, 42)
	if err != nil {
		log.Fatal(err)
	}
	corrected := assertionbench.CorrectAssertions(design.Source, out.Assertions)
	fmt.Println("\n=== generated assertions (after syntax correction) ===")
	for _, a := range corrected {
		fmt.Println(" ", a)
	}

	// Step 3: formal verification of every candidate.
	verdicts, err := assertionbench.VerifyAssertions(ctx, design.Source, corrected, assertionbench.VerifyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== FPV verdicts ===")
	pass, cex, errs := 0, 0, 0
	for _, r := range verdicts {
		fmt.Printf("  %-50s %s\n", r.Assertion, r.Status)
		switch {
		case r.Status == assertionbench.StatusError:
			errs++
		case r.Status == assertionbench.StatusCEX:
			cex++
		default:
			pass++
		}
	}
	fmt.Printf("\nsummary: %d pass, %d cex, %d error out of %d generated\n",
		pass, cex, errs, len(verdicts))
}
