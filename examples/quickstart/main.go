// Quickstart: generate assertions for the paper's Fig. 1 arbiter with a
// simulated COTS model, correct them, and verify them with the FPV
// engine — the full Fig. 4 loop on one design. Also verifies the paper's
// Sec. II-A example properties P1 and P2 directly.
package main

import (
	"fmt"
	"log"

	"assertionbench/internal/bench"
	"assertionbench/internal/core"
	"assertionbench/internal/fpv"
	"assertionbench/internal/verilog"
)

func main() {
	log.SetFlags(0)

	// The design under verification: the paper's two-port arbiter.
	design := bench.TrainArbiter
	fmt.Println("=== design: 2-port arbiter (paper Fig. 1) ===")

	// Step 0: the paper's own example properties.
	nl, err := verilog.ElaborateSource(design, "arb2")
	if err != nil {
		log.Fatal(err)
	}
	for _, prop := range []string{
		"G((req1 == 1 && req2 == 0) -> (gnt1 == 1))",                     // P1
		"G((req2 == 0 && gnt_ == 1) && X(req1 == 1) -> X(X(gnt1 == 1)))", // P2
	} {
		r := fpv.VerifySource(nl, prop, fpv.Options{})
		fmt.Printf("paper property %-62s -> %s\n", prop, r.Status)
		if r.CEX != nil {
			fmt.Printf("  refuted: attempt started cycle %d, violated cycle %d\n",
				r.CEX.AttemptCycle, r.CEX.ViolationCycle)
		}
	}

	// Step 1: load AssertionBench (mines the 5 training examples).
	b, err := core.LoadBenchmark(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbenchmark: %d train designs, %d test designs\n",
		len(b.Train()), len(b.Corpus()))

	// Step 2: 5-shot generation with the GPT-4o profile.
	gen, err := core.Generate(core.GPT4o, design, b, 5, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== generated assertions (after syntax correction) ===")
	for _, a := range gen.Corrected {
		fmt.Println(" ", a)
	}

	// Step 3: formal verification of every candidate.
	results, err := core.Verify(design, gen.Corrected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== FPV verdicts ===")
	pass, cex, errs := 0, 0, 0
	for i, r := range results {
		fmt.Printf("  %-50s %s\n", gen.Corrected[i], r.Status)
		switch {
		case r.Status == fpv.StatusError:
			errs++
		case r.Status == fpv.StatusCEX:
			cex++
		default:
			pass++
		}
	}
	fmt.Printf("\nsummary: %d pass, %d cex, %d error out of %d generated\n",
		pass, cex, errs, len(results))
}
