// security_audit exercises the paper's future-work direction (iii): it
// mines security assertions for the lock-gated benchmark designs, proves
// them with the FPV engine, runs the two-trace information-flow (taint)
// check, and shows how the deliberately leaky variant is caught by the
// flow check even though trace-level mining alone would miss the
// one-bit leak.
package main

import (
	"fmt"
	"log"

	"assertionbench/internal/bench"
	"assertionbench/internal/coverage"
	"assertionbench/internal/mine"
	"assertionbench/internal/verilog"
)

func main() {
	log.SetFlags(0)

	for _, d := range bench.SecurityDesigns() {
		fmt.Printf("=== %s: %s ===\n", d.Name, d.Functionality)
		nl, err := verilog.ElaborateSource(d.Source, d.Name)
		if err != nil {
			log.Fatal(err)
		}

		mined, err := mine.Security(nl, mine.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("security assertions (all FPV-proven): %d\n", len(mined))
		var texts []string
		for _, m := range mined {
			fmt.Printf("  %-50s support=%d\n", m.Assertion, m.Support)
			texts = append(texts, m.Assertion.String())
		}
		if len(texts) > 0 {
			rep, err := coverage.Measure(nl, texts, coverage.Options{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("coverage of the mined set: %v\n", rep)
		}

		// Information-flow check, guarded by the design's lock if any.
		guard := ""
		if nl.NetIndex("locked") >= 0 {
			guard = "locked"
		}
		if guard != "" {
			leaks, err := mine.TaintCheck(nl, guard, 1, 32, 48, 1)
			if err != nil {
				fmt.Printf("taint check skipped: %v\n", err)
			} else if len(leaks) == 0 {
				fmt.Println("taint check: no information flow while locked")
			} else {
				for _, l := range leaks {
					fmt.Printf("taint check: LEAK — %v\n", l)
				}
			}
		}
		fmt.Println()
	}
	fmt.Println("Note how access_ctrl_leaky passes most single-trace template checks")
	fmt.Println("but is flagged by the two-trace flow analysis: hyperproperties need")
	fmt.Println("more than trace-consistent assertions — the motivation the paper's")
	fmt.Println("security direction builds on.")
}
