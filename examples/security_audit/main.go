// security_audit exercises the paper's future-work direction (iii): it
// mines security assertions for the lock-gated benchmark designs, proves
// them with the FPV engine, runs the two-trace information-flow (taint)
// check, and shows how the deliberately leaky variant is caught by the
// flow check even though trace-level mining alone would miss the
// one-bit leak.
package main

import (
	"context"
	"fmt"
	"log"
	"slices"

	"assertionbench"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	for _, d := range assertionbench.SecurityDesigns() {
		fmt.Printf("=== %s: %s ===\n", d.Name, d.Functionality)

		mined, err := assertionbench.MineAssertions(ctx, d.Source, assertionbench.MineOptions{Miner: "security"})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("security assertions (all FPV-proven): %d\n", len(mined))
		var texts []string
		for _, m := range mined {
			fmt.Printf("  %-50s support=%d\n", m.Assertion, m.Support)
			texts = append(texts, m.Assertion)
		}
		if len(texts) > 0 {
			rep, err := assertionbench.MeasureCoverage(ctx, d.Source, texts, assertionbench.CoverageOptions{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("coverage of the mined set: %v\n", rep)
		}

		// Information-flow check, guarded by the design's lock if any.
		nets, err := assertionbench.DesignNets(d.Source)
		if err != nil {
			log.Fatal(err)
		}
		guard := ""
		if slices.Contains(nets, "locked") {
			guard = "locked"
		}
		if guard != "" {
			leaks, err := assertionbench.TaintCheck(ctx, d.Source, guard, 1, 32, 48, 1)
			if err != nil {
				fmt.Printf("taint check skipped: %v\n", err)
			} else if len(leaks) == 0 {
				fmt.Println("taint check: no information flow while locked")
			} else {
				for _, l := range leaks {
					fmt.Printf("taint check: LEAK — %v\n", l)
				}
			}
		}
		fmt.Println()
	}
	fmt.Println("Note how access_ctrl_leaky passes most single-trace template checks")
	fmt.Println("but is flagged by the two-trace flow analysis: hyperproperties need")
	fmt.Println("more than trace-consistent assertions — the motivation the paper's")
	fmt.Println("security direction builds on.")
}
