// corpus_report prints the AssertionBench corpus statistics: Table I and
// the Figure 3 size distribution, plus the category/type split the paper
// describes in Sec. III. -shard index/count restricts the report to one
// contiguous corpus shard (the same partitioning the evaluation runner
// uses to split sweeps across processes).
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"assertionbench"
)

func main() {
	log.SetFlags(0)
	shard := flag.String("shard", "", "report one corpus shard, as index/count (e.g. 0/4)")
	flag.Parse()

	// The corpus accessors skip benchmark loading (no mining): a report
	// only needs the designs.
	corpus := assertionbench.TestCorpus()
	train := assertionbench.TrainingDesigns()
	if *shard != "" {
		index, count, err := assertionbench.ParseShard(*shard)
		if err != nil {
			log.Fatal(err)
		}
		s, err := assertionbench.ShardDesigns(corpus, index, count)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[shard %d/%d: %d of %d designs]\n\n", index, count, len(s), len(corpus))
		corpus = s
	}

	fmt.Print(assertionbench.TableI(corpus))
	fmt.Println()

	// Category and type split.
	byCat := map[string]int{}
	seq, comb := 0, 0
	totalLoC := 0
	for _, d := range corpus {
		byCat[d.Category]++
		if d.Sequential {
			seq++
		} else {
			comb++
		}
		totalLoC += d.LoC
	}
	fmt.Printf("test corpus: %d designs (%d sequential, %d combinational), %d total LoC\n",
		len(corpus), seq, comb, totalLoC)
	var cats []string
	for c := range byCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		fmt.Printf("  %-10s %d designs\n", c, byCat[c])
	}

	fmt.Printf("\ntraining set: %d designs\n", len(train))
	for _, d := range train {
		kind := "combinational"
		if d.Sequential {
			kind = "sequential"
		}
		fmt.Printf("  %-12s %3d LoC  %-13s %s\n", d.Name, d.LoC, kind, d.Functionality)
	}

	fmt.Println()
	fmt.Print(assertionbench.Figure3(corpus))
}
