// corpus_report prints the AssertionBench corpus statistics: Table I and
// the Figure 3 size distribution, plus the category/type split the paper
// describes in Sec. III.
package main

import (
	"fmt"
	"sort"

	"assertionbench/internal/bench"
	"assertionbench/internal/eval"
)

func main() {
	corpus := bench.TestCorpus()
	train := bench.TrainDesigns()

	fmt.Print(eval.TableI(corpus))
	fmt.Println()

	// Category and type split.
	byCat := map[string]int{}
	seq, comb := 0, 0
	totalLoC := 0
	for _, d := range corpus {
		byCat[d.Category]++
		if d.Sequential {
			seq++
		} else {
			comb++
		}
		totalLoC += d.LoC
	}
	fmt.Printf("test corpus: %d designs (%d sequential, %d combinational), %d total LoC\n",
		len(corpus), seq, comb, totalLoC)
	var cats []string
	for c := range byCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		fmt.Printf("  %-10s %d designs\n", c, byCat[c])
	}

	fmt.Printf("\ntraining set: %d designs\n", len(train))
	for _, d := range train {
		kind := "combinational"
		if d.Sequential {
			kind = "sequential"
		}
		fmt.Printf("  %-12s %3d LoC  %-13s %s\n", d.Name, d.LoC, kind, d.Functionality)
	}

	fmt.Println()
	fmt.Print(eval.Figure3(corpus))
}
