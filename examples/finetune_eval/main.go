// finetune_eval builds AssertionLLM from the CodeLLaMa 2 base (paper
// Sec. VI: 75/25 split of AssertionBench, 20 epochs) and shows the
// before/after quality on a handful of held-out designs. -workers sizes
// the concurrent evaluation runner's pool (results are identical at any
// worker count).
package main

import (
	"flag"
	"fmt"
	"log"

	"assertionbench/internal/core"
	"assertionbench/internal/eval"
	"assertionbench/internal/llm"
)

func main() {
	log.SetFlags(0)
	workers := flag.Int("workers", 0, "evaluation worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	b, err := core.LoadBenchmark(core.Options{Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("building AssertionLLM from CodeLLaMa 2 (20 epochs, 75/25 split)...")
	tuned, report, err := core.BuildAssertionLLM(b, core.CodeLlama2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out perplexity: %.1f -> %.1f (gain %.2f)\n",
		report.PerplexityBefore, report.PerplexityAfter, report.Gain)
	fmt.Printf("profile after tuning: grounding %.2f -> %.2f (5-shot), syntax noise %.2f -> %.2f\n",
		llm.CodeLlama2().K5.Grounding, tuned.Profile.K5.Grounding,
		llm.CodeLlama2().K5.SyntaxNoise, tuned.Profile.K5.SyntaxNoise)

	// Compare base vs fine-tuned on the held-out quarter (Fig. 8: the
	// fine-tuned pipeline drops the syntax corrector).
	for _, k := range []int{1, 5} {
		baseRun, err := b.Experiment.RunCOTS(llm.CodeLlama2(), k)
		if err != nil {
			log.Fatal(err)
		}
		ftRun, _, err := b.Experiment.FinetunedRun(llm.CodeLlama2(), k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%d-shot:\n", k)
		fmt.Printf("  COTS CodeLLaMa 2:  %v\n", baseRun.Metrics)
		fmt.Printf("  AssertionLLM:      %v\n", ftRun.Metrics)
		fmt.Printf("  delta: pass %+.1fpp, cex %+.1fpp, error %+.1fpp\n",
			100*(ftRun.Metrics.Pass()-baseRun.Metrics.Pass()),
			100*(ftRun.Metrics.CEX()-baseRun.Metrics.CEX()),
			100*(ftRun.Metrics.Error()-baseRun.Metrics.Error()))
		printSample(ftRun)
	}
}

func printSample(r eval.RunResult) {
	for _, d := range r.Designs {
		if len(d.Generated) == 0 {
			continue
		}
		fmt.Printf("  sample (%s):\n", d.Design)
		for i, g := range d.Generated {
			if i >= 3 {
				break
			}
			fmt.Printf("    %-55s %s\n", g, d.Verdicts[i])
		}
		return
	}
}
