// finetune_eval builds AssertionLLM from the CodeLLaMa 2 base (paper
// Sec. VI: 75/25 split of AssertionBench, 20 epochs) and shows the
// before/after quality on the held-out quarter. -workers sizes the
// concurrent evaluation runner's pool (results are identical at any
// worker count).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"assertionbench"
)

func main() {
	log.SetFlags(0)
	workers := flag.Int("workers", 0, "evaluation worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()
	ctx := context.Background()

	b, err := assertionbench.Load(ctx, assertionbench.Options{Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("building AssertionLLM from CodeLLaMa 2 (20 epochs, 75/25 split)...")
	tuned, report, err := b.AssertionLLM(ctx, assertionbench.CodeLlama2())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned generator: %s\n", tuned.Name())
	fmt.Printf("held-out perplexity: %.1f -> %.1f (gain %.2f)\n",
		report.PerplexityBefore, report.PerplexityAfter, report.Gain)

	// Compare base vs fine-tuned on the held-out quarter (Fig. 8: the
	// fine-tuned pipeline drops the syntax corrector).
	for _, k := range []int{1, 5} {
		baseRun, err := b.EvaluateCOTS(ctx, assertionbench.CodeLlama2(), k)
		if err != nil {
			log.Fatal(err)
		}
		ftRun, _, err := b.EvaluateFinetuned(ctx, assertionbench.CodeLlama2(), k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%d-shot:\n", k)
		fmt.Printf("  COTS CodeLLaMa 2:  %v\n", baseRun.Metrics)
		fmt.Printf("  AssertionLLM:      %v\n", ftRun.Metrics)
		fmt.Printf("  delta: pass %+.1fpp, cex %+.1fpp, error %+.1fpp\n",
			100*(ftRun.Metrics.Pass()-baseRun.Metrics.Pass()),
			100*(ftRun.Metrics.CEX()-baseRun.Metrics.CEX()),
			100*(ftRun.Metrics.Error()-baseRun.Metrics.Error()))
		printSample(ftRun)
	}
}

func printSample(r assertionbench.RunResult) {
	for _, d := range r.Outcomes {
		if len(d.Generated) == 0 {
			continue
		}
		fmt.Printf("  sample (%s):\n", d.Design)
		for i, g := range d.Generated {
			if i >= 3 {
				break
			}
			fmt.Printf("    %-55s %s\n", g, d.Verdicts[i])
		}
		return
	}
}
