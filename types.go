package assertionbench

import (
	"sort"
	"strings"

	"assertionbench/internal/bench"
	"assertionbench/internal/llm"
)

// Design is one benchmark entry: a Verilog module plus its Table I
// metadata. It is the façade's currency for designs — every public API
// that reads or produces designs uses it, never internal types.
type Design struct {
	// Name is the module name; FileName the corpus file name.
	Name     string
	FileName string
	Source   string
	// Sequential distinguishes clocked designs from pure combinational
	// ones (Table I's "Design Type").
	Sequential bool
	// Category groups designs by hardware function.
	Category string
	// Functionality is the Table I description.
	Functionality string
	// LoC is the cloc-style line count (no blanks, no comments).
	LoC int
}

// Example is one in-context example: a design and its formally verified
// assertions (paper Sec. III: each tuple has 2-10 assertions).
type Example struct {
	Name       string
	Source     string
	Assertions []string
}

// DesignFromSource wraps raw Verilog text as a Design for APIs that take
// one (custom verifiers, generators). Name may be "" to use the module's
// own name.
func DesignFromSource(name, source string) Design {
	return Design{Name: name, Source: source}
}

// --- conversions between the public and internal representations ---

func (d Design) internal() bench.Design {
	return bench.Design{
		Name:          d.Name,
		FileName:      d.FileName,
		Source:        d.Source,
		Sequential:    d.Sequential,
		Category:      d.Category,
		Functionality: d.Functionality,
		LoC:           d.LoC,
	}
}

func newDesign(d bench.Design) Design {
	return Design{
		Name:          d.Name,
		FileName:      d.FileName,
		Source:        d.Source,
		Sequential:    d.Sequential,
		Category:      d.Category,
		Functionality: d.Functionality,
		LoC:           d.LoC,
	}
}

func internalDesigns(ds []Design) []bench.Design {
	out := make([]bench.Design, len(ds))
	for i, d := range ds {
		out[i] = d.internal()
	}
	return out
}

func newDesigns(ds []bench.Design) []Design {
	out := make([]Design, len(ds))
	for i, d := range ds {
		out[i] = newDesign(d)
	}
	return out
}

func internalExamples(exs []Example) []llm.Example {
	out := make([]llm.Example, len(exs))
	for i, ex := range exs {
		out[i] = llm.Example(ex)
	}
	return out
}

func newExamples(exs []llm.Example) []Example {
	out := make([]Example, len(exs))
	for i, ex := range exs {
		out[i] = Example(ex)
	}
	return out
}

// DesignNets elaborates a design (through the process-wide cache) and
// returns its top-level net names, sorted — the introspection hook for
// callers that condition on a signal's existence (e.g. picking a taint
// guard) without parsing Verilog themselves.
func DesignNets(designSource string) ([]string, error) {
	nl, err := elaborateSource(designSource)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, n := range nl.Nets {
		if !strings.Contains(n.Name, ".") {
			out = append(out, n.Name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// PurgeCaches empties the process-wide elaboration cache the façade's
// source-based entry points (VerifyAssertions, MineAssertions,
// MeasureCoverage, the Runner, ...) share. The cache holds every distinct
// design ever elaborated — including failed elaborations — so
// long-running embedders feeding unbounded streams of caller-supplied
// designs should purge periodically to bound memory.
func PurgeCaches() {
	bench.DefaultElab.Purge()
}

// SetCacheDir attaches a persistent, content-addressed artifact store
// at dir to the process-wide caches: compiled execution programs and
// FPV reachability graphs are read through from (and written behind
// to) disk, keyed by design source hash and verification options, so a
// fresh process — a new CI job, a new worker sharing a cache volume —
// serves its first request warm. "" detaches the store. Corrupt,
// truncated or version-skewed blobs are discarded and rebuilt
// transparently, and PurgeCaches only empties the in-memory tiers: the
// disk store exists to survive exactly that.
func SetCacheDir(dir string) error {
	return bench.SetCacheDir(dir)
}

// ShardDesigns returns the index-th of count contiguous shards of a
// design list — the same partitioning the evaluation runner uses, so a
// report over shard i matches what a sharded run evaluates.
func ShardDesigns(designs []Design, index, count int) ([]Design, error) {
	shard, err := bench.Shard(internalDesigns(designs), index, count)
	if err != nil {
		return nil, err
	}
	return newDesigns(shard), nil
}

// ParseShard parses an "index/count" shard spec as accepted by the CLIs.
// The empty string means unsharded (0, 0).
func ParseShard(s string) (index, count int, err error) {
	return bench.ParseShard(s)
}
