package assertionbench_test

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"assertionbench"
)

func loadBenchmark(t *testing.T, n int) *assertionbench.Benchmark {
	t.Helper()
	b, err := assertionbench.Load(context.Background(), assertionbench.Options{MaxDesigns: n})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestProfileByName(t *testing.T) {
	cases := map[string]string{
		"gpt3.5":     "GPT-3.5",
		"gpt-3.5":    "GPT-3.5",
		"gpt4o":      "GPT-4o",
		"GPT-4o":     "GPT-4o",
		"codellama":  "CodeLLaMa 2",
		"codellama2": "CodeLLaMa 2",
		"llama3":     "LLaMa3-70B",
		"llama3-70b": "LLaMa3-70B",
	}
	for alias, want := range cases {
		p, err := assertionbench.ProfileByName(alias)
		if err != nil || p.Name() != want {
			t.Errorf("ProfileByName(%q) = %v, %v; want %s", alias, p.Name(), err, want)
		}
	}
	_, err := assertionbench.ProfileByName("claude")
	if err == nil {
		t.Fatal("unknown model must fail")
	}
	// The error must teach the valid spellings.
	for _, want := range []string{"GPT-4o", "gpt4o", "LLaMa3-70B"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not list %q", err, want)
		}
	}
}

func TestBenchmarkShape(t *testing.T) {
	b := loadBenchmark(t, 5)
	if len(b.TrainDesigns()) != 5 || len(b.Corpus()) != 5 || len(b.Examples()) != 5 {
		t.Fatalf("benchmark shape: %d train, %d corpus, %d examples",
			len(b.TrainDesigns()), len(b.Corpus()), len(b.Examples()))
	}
	if len(assertionbench.TestCorpus()) != 100 {
		t.Errorf("full test corpus has %d designs", len(assertionbench.TestCorpus()))
	}
	if arb := assertionbench.TrainArbiter(); arb.Name != "arb2" || arb.Source == "" {
		t.Errorf("TrainArbiter = %q", arb.Name)
	}
}

func TestGenerateCorrectVerify(t *testing.T) {
	ctx := context.Background()
	b := loadBenchmark(t, 3)
	design := assertionbench.TrainArbiter()
	gen := assertionbench.NewModelGenerator(assertionbench.GPT4o())
	out, err := b.GenerateAssertions(ctx, gen, design.Source, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Assertions) == 0 {
		t.Fatal("generation produced nothing")
	}
	corrected := assertionbench.CorrectAssertions(design.Source, out.Assertions)
	if len(corrected) != len(out.Assertions) {
		t.Fatalf("correction shape: %d raw, %d corrected", len(out.Assertions), len(corrected))
	}
	results, err := assertionbench.VerifyAssertions(ctx, design.Source, corrected, assertionbench.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(corrected) {
		t.Fatalf("%d results for %d assertions", len(results), len(corrected))
	}
}

func TestVerifyAssertionsStatuses(t *testing.T) {
	// The facade must agree with the engine called directly.
	design := assertionbench.TrainArbiter()
	results, err := assertionbench.VerifyAssertions(context.Background(), design.Source, []string{
		"rst == 1 |=> gnt_ == 0",
		"req2 == 0 |-> gnt2 == 0",
		"bogus == 1 |-> gnt1 == 1",
	}, assertionbench.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []assertionbench.VerifyStatus{
		assertionbench.StatusProven,
		assertionbench.StatusProven,
		assertionbench.StatusError,
	}
	for i, w := range want {
		if results[i].Status != w {
			t.Errorf("result %d = %v, want %v", i, results[i].Status, w)
		}
	}
	if !assertionbench.StatusProven.IsPass() || assertionbench.StatusCEX.IsPass() {
		t.Error("IsPass misclassifies")
	}
}

func TestVerifyRejectsBadDesign(t *testing.T) {
	if _, err := assertionbench.VerifyAssertions(context.Background(), "not verilog at all", []string{"a |-> b"}, assertionbench.VerifyOptions{}); err == nil {
		t.Fatal("unparseable design must fail")
	}
}

func TestMineAssertionsFacade(t *testing.T) {
	design := assertionbench.TrainArbiter()
	mined, err := assertionbench.MineAssertions(context.Background(), design.Source, assertionbench.MineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) == 0 {
		t.Fatal("mining the arbiter found nothing")
	}
	if len(mined) > 16 {
		t.Errorf("default MaxAssertions is 16, got %d from the combined miners", len(mined))
	}
	seen := map[string]bool{}
	for _, m := range mined {
		if seen[m.Assertion] {
			t.Errorf("duplicate %q", m.Assertion)
		}
		seen[m.Assertion] = true
		if !m.Status.IsPass() {
			t.Errorf("unproven mined assertion %q (%v)", m.Assertion, m.Status)
		}
	}
}

// TestRunnerStreamMatchesRun is the public-level acceptance check: the
// collected stream equals the batch result for sequential, parallel, and
// sharded configurations at the same seed.
func TestRunnerStreamMatchesRun(t *testing.T) {
	ctx := context.Background()
	b := loadBenchmark(t, 8)
	gen := assertionbench.NewModelGenerator(assertionbench.GPT35())
	for _, cfg := range []struct {
		name string
		opt  assertionbench.RunOptions
	}{
		{"sequential", assertionbench.RunOptions{Shots: 1, UseCorrector: true, Seed: 2, Workers: 1}},
		{"parallel", assertionbench.RunOptions{Shots: 1, UseCorrector: true, Seed: 2, Workers: 4}},
		{"sharded", assertionbench.RunOptions{Shots: 1, UseCorrector: true, Seed: 2, Workers: 2, ShardIndex: 1, ShardCount: 2}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			runner := assertionbench.NewRunner(gen, b, cfg.opt)
			batch, err := runner.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			streamed := assertionbench.RunResult{Generator: batch.Generator, Shots: batch.Shots}
			for o, err := range runner.Stream(ctx) {
				if err != nil {
					t.Fatal(err)
				}
				streamed.Metrics.Merge(o.Metrics())
				streamed.Outcomes = append(streamed.Outcomes, o)
			}
			if !reflect.DeepEqual(batch, streamed) {
				t.Errorf("stream differs from batch\nbatch:  %+v\nstream: %+v", batch.Metrics, streamed.Metrics)
			}
		})
	}
}

// echoGenerator is a caller-supplied Generator: it emits one tautology
// per design, proving the interface is implementable outside the module's
// internals.
type echoGenerator struct{}

func (echoGenerator) Name() string { return "echo" }

func (echoGenerator) Generate(_ context.Context, req assertionbench.GenRequest) (assertionbench.GenOutput, error) {
	// Derive a signal from the design source the cheap way: reuse the
	// prompt examples' shape. A constant tautology needs no signals.
	return assertionbench.GenOutput{
		Assertions: []string{fmt.Sprintf("1 == 1 |-> %d == %d;", req.Shots, req.Shots)},
	}, nil
}

func TestCustomGeneratorThroughRunner(t *testing.T) {
	ctx := context.Background()
	b := loadBenchmark(t, 4)
	runner := assertionbench.NewRunner(echoGenerator{}, b, assertionbench.RunOptions{Shots: 1, Workers: 2})
	r, err := runner.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Generator != "echo" {
		t.Errorf("run labelled %q", r.Generator)
	}
	if len(r.Outcomes) != 4 || r.Metrics.Total() != 4 {
		t.Fatalf("custom generator shape: %d outcomes, %d classified", len(r.Outcomes), r.Metrics.Total())
	}
	if r.Metrics.NPass != 4 {
		t.Errorf("tautologies must all pass: %+v", r.Metrics)
	}
}

// TestMinerGeneratorPublic: the miner-as-Generator path end to end at the
// public level.
func TestMinerGeneratorPublic(t *testing.T) {
	ctx := context.Background()
	b := loadBenchmark(t, 4)
	runner := assertionbench.NewRunner(assertionbench.NewGoldMineGenerator(), b, assertionbench.RunOptions{Shots: 1, UseCorrector: true, Workers: 2})
	r, err := runner.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Generator != "GOLDMINE" {
		t.Errorf("run labelled %q", r.Generator)
	}
	if r.Metrics.Total() == 0 {
		t.Fatal("miner produced no classified assertions")
	}
	if r.Metrics.NError > 0 {
		t.Errorf("FPV-filtered miner output produced error verdicts: %+v", r.Metrics)
	}
}

func TestEvaluateCOTSSmall(t *testing.T) {
	b := loadBenchmark(t, 4)
	r, err := b.EvaluateCOTS(context.Background(), assertionbench.GPT35(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Generator != "GPT-3.5" || r.Shots != 1 || r.Metrics.Total() == 0 {
		t.Fatalf("EvaluateCOTS shape wrong: %+v", r)
	}
}

func TestAssertionLLMFacade(t *testing.T) {
	ctx := context.Background()
	b := loadBenchmark(t, 8)
	tuned, report, err := b.AssertionLLM(ctx, assertionbench.CodeLlama2())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tuned.Name(), "AssertionLLM") {
		t.Errorf("tuned generator named %q", tuned.Name())
	}
	if report.PerplexityAfter >= report.PerplexityBefore {
		t.Errorf("perplexity did not drop: %.1f -> %.1f", report.PerplexityBefore, report.PerplexityAfter)
	}
	r, _, err := b.EvaluateFinetuned(ctx, assertionbench.CodeLlama2(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(r.Generator, "AssertionLLM") {
		t.Errorf("run generator = %q", r.Generator)
	}
}

func TestFigureRenderersPublic(t *testing.T) {
	corpus := assertionbench.TestCorpus()
	if s := assertionbench.TableI(corpus); !strings.Contains(s, "ca_prng") {
		t.Error("Table I missing expected rows")
	}
	runs := []assertionbench.RunResult{
		{Generator: "GPT-3.5", Shots: 1, Metrics: assertionbench.Metrics{NPass: 2, NCEX: 5, NError: 3}},
		{Generator: "GPT-3.5", Shots: 5, Metrics: assertionbench.Metrics{NPass: 4, NCEX: 4, NError: 2}},
	}
	if s := assertionbench.Figure6(runs); !strings.Contains(s, "1-shot") {
		t.Error("Figure 6 missing shot rows")
	}
	if s := assertionbench.Observations(runs, nil); !strings.Contains(s, "Obs 1") {
		t.Error("Observations empty")
	}
}

func TestShardDesignsPublic(t *testing.T) {
	corpus := assertionbench.TestCorpus()
	var merged []assertionbench.Design
	for i := 0; i < 3; i++ {
		s, err := assertionbench.ShardDesigns(corpus, i, 3)
		if err != nil {
			t.Fatal(err)
		}
		merged = append(merged, s...)
	}
	if !reflect.DeepEqual(corpus, merged) {
		t.Error("shards do not concatenate to the corpus")
	}
	if _, err := assertionbench.ShardDesigns(corpus, 5, 3); err == nil {
		t.Error("out-of-range shard must fail")
	}
}
