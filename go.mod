module assertionbench

go 1.24
