package assertionbench

import (
	"context"
	"fmt"

	"assertionbench/internal/mine"
	"assertionbench/internal/verilog"
)

// MinedAssertion is one formally verified assertion produced by a miner,
// with its ranking metadata.
type MinedAssertion struct {
	// Assertion is the SVA text (no trailing semicolon).
	Assertion string
	// Support is the number of trace positions where the antecedent held;
	// Coverage is Support normalized by trace length.
	Support  int
	Coverage float64
	// Complexity counts atoms plus temporal window length (rank input);
	// Rank is the figure of merit (higher is better).
	Complexity int
	Rank       float64
	// Status is the FPV verdict (always a passing verdict — miners drop
	// unproven candidates).
	Status VerifyStatus
}

// MineOptions configure MineAssertions.
type MineOptions struct {
	// Miner selects the pipeline: "goldmine", "harm", "security", or
	// "both" (GOLDMINE + HARM, the default).
	Miner string
	// Seed drives stimulus generation. Default 1.
	Seed int64
	// TraceCycles is the random-stimulus trace length. Default 512.
	TraceCycles int
	// MaxAssertions bounds the output. Default 16.
	MaxAssertions int
	// Verify bounds the miners' FPV filter.
	Verify VerifyOptions
}

// MineAssertions runs the selected classical miners on a design and
// returns ranked, deduplicated, formally verified assertions — the
// paper's Sec. III mining pipeline as a one-call API. Cancelling ctx
// aborts the FPV filter with ctx.Err().
func MineAssertions(ctx context.Context, designSource string, opt MineOptions) ([]MinedAssertion, error) {
	nl, err := elaborateSource(designSource)
	if err != nil {
		return nil, err
	}
	if opt.MaxAssertions == 0 {
		// The cap applies to the merged output below, not just per miner:
		// "both" must not return double the documented default.
		opt.MaxAssertions = 16
	}
	mopt := mine.Options{
		Seed:          opt.Seed,
		TraceCycles:   opt.TraceCycles,
		MaxAssertions: opt.MaxAssertions,
		FPV:           opt.Verify.internal(),
	}
	var mined []mine.Mined
	run := func(fn func(context.Context, *verilog.Netlist, mine.Options) ([]mine.Mined, error)) error {
		ms, err := fn(ctx, nl, mopt)
		if err != nil {
			return err
		}
		mined = append(mined, ms...)
		return nil
	}
	switch opt.Miner {
	case "", "both":
		if err := run(mine.GoldMine); err != nil {
			return nil, err
		}
		if err := run(mine.Harm); err != nil {
			return nil, err
		}
	case "goldmine":
		if err := run(mine.GoldMine); err != nil {
			return nil, err
		}
	case "harm":
		if err := run(mine.Harm); err != nil {
			return nil, err
		}
	case "security":
		if err := run(mine.Security); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown miner %q (want goldmine|harm|security|both)", opt.Miner)
	}
	mine.Rank(mined)
	seen := map[string]bool{}
	var out []MinedAssertion
	for _, m := range mined {
		s := m.Assertion.String()
		if seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, MinedAssertion{
			Assertion:  s,
			Support:    m.Support,
			Coverage:   m.Coverage,
			Complexity: m.Complexity,
			Rank:       m.Rank,
			Status:     newVerifyStatus(m.Result.Status),
		})
		if len(out) >= opt.MaxAssertions {
			break
		}
	}
	return out, nil
}

// TaintCheck runs the two-trace information-flow analysis (paper Sec. X
// direction (iii)): stimulus pairs identical except in a secret input are
// simulated; any output divergence at a cycle where guard holds
// lockedValue is a leak. guard may be "" to check unconditional
// non-interference. Returns one human-readable description per leak.
func TaintCheck(ctx context.Context, designSource, guard string, lockedValue uint64, runs, depth int, seed int64) ([]string, error) {
	nl, err := elaborateSource(designSource)
	if err != nil {
		return nil, err
	}
	leaks, err := mine.TaintCheck(ctx, nl, guard, lockedValue, runs, depth, seed)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(leaks))
	for i, l := range leaks {
		out[i] = l.String()
	}
	return out, nil
}
