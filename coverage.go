package assertionbench

import (
	"context"
	"fmt"

	"assertionbench/internal/coverage"
)

// AssertionCoverage is the contribution of a single assertion to a
// coverage report.
type AssertionCoverage struct {
	Assertion   string
	Activations int
	Signals     int
}

// CoverageReport is the coverage measurement of one assertion set on one
// design (paper Sec. X, directions i and ii).
type CoverageReport struct {
	// Assertions measured; parse failures are skipped and counted.
	Assertions int
	Skipped    int
	// SignalCoverage in [0,1]: mentioned interesting nets / all
	// interesting nets; CoveredSignals/MissedSignals name them.
	SignalCoverage float64
	CoveredSignals []string
	MissedSignals  []string
	// ActivationCoverage in [0,1]: cycles with >= 1 antecedent match.
	ActivationCoverage float64
	// StateCoverage in [0,1]: distinct states with >= 1 antecedent match
	// over distinct states visited (StatesVisited).
	StateCoverage float64
	StatesVisited int
	PerAssertion  []AssertionCoverage
}

// Goodness is the combined scalar in [0,1].
func (r CoverageReport) Goodness() float64 {
	return (r.SignalCoverage + r.ActivationCoverage + r.StateCoverage) / 3
}

func (r CoverageReport) String() string {
	return fmt.Sprintf("signals=%.2f activation=%.2f states=%.2f goodness=%.2f (%d assertions, %d skipped)",
		r.SignalCoverage, r.ActivationCoverage, r.StateCoverage, r.Goodness(), r.Assertions, r.Skipped)
}

// CoverageOptions configure MeasureCoverage.
type CoverageOptions struct {
	// TraceCycles per trace (default 256) and Traces (default 3).
	TraceCycles int
	Traces      int
	// Seed drives the stimulus.
	Seed int64
	// VerifiedOnly restricts measurement to FPV-proven assertions — the
	// goodness of the sound part of a generated set.
	VerifiedOnly bool
	// Verify bounds the FPV filter when VerifiedOnly is set.
	Verify VerifyOptions
}

// MeasureCoverage computes the signal / activation / state coverage of an
// assertion set on a design given as Verilog source.
func MeasureCoverage(ctx context.Context, designSource string, assertions []string, opt CoverageOptions) (CoverageReport, error) {
	nl, err := elaborateSource(designSource)
	if err != nil {
		return CoverageReport{}, err
	}
	copt := coverage.Options{TraceCycles: opt.TraceCycles, Traces: opt.Traces, Seed: opt.Seed}
	var rep coverage.Report
	if opt.VerifiedOnly {
		rep, err = coverage.MeasureVerified(ctx, nl, assertions, opt.Verify.internal(), copt)
	} else {
		rep, err = coverage.Measure(ctx, nl, assertions, copt)
	}
	if err != nil {
		return CoverageReport{}, err
	}
	out := CoverageReport{
		Assertions:         rep.Assertions,
		Skipped:            rep.Skipped,
		SignalCoverage:     rep.SignalCoverage,
		CoveredSignals:     rep.CoveredSignals,
		MissedSignals:      rep.MissedSignals,
		ActivationCoverage: rep.ActivationCoverage,
		StateCoverage:      rep.StateCoverage,
		StatesVisited:      rep.StatesVisited,
	}
	for _, pa := range rep.PerAssertion {
		out.PerAssertion = append(out.PerAssertion, AssertionCoverage(pa))
	}
	return out, nil
}
