package assertionbench

import (
	"context"

	"assertionbench/internal/bench"
	"assertionbench/internal/eval"
	"assertionbench/internal/llm"
	"assertionbench/internal/mine"
)

// GenRequest is one generation call: produce candidate assertions for
// Design, optionally conditioned on k in-context Examples.
type GenRequest struct {
	// Design is the module under verification.
	Design Design
	// Examples are the in-context examples (empty for sources that do not
	// use prompts, e.g. miners).
	Examples []Example
	// Shots is the number of examples supplied.
	Shots int
	// Seed drives sampling. When the Runner drives a Generator it passes
	// a composed per-design seed (a pure function of the run seed, the
	// design's global corpus index, and the shot count — distinct per
	// design); one-off calls like Benchmark.GenerateAssertions pass the
	// caller's seed verbatim. Equal requests must produce equal outputs —
	// that is the determinism contract, and implementations share the
	// obligation. Treat the seed as an opaque sampling input, not a
	// unique design identifier.
	Seed int64
}

// GenOutput is a generator's answer: candidate assertion lines plus
// optional channel bookkeeping.
type GenOutput struct {
	// Assertions are the candidate lines, one assertion per entry.
	Assertions []string
	// OffTask and Grounded count off-task lines and behaviour-derived
	// assertions, for ablation analysis. Sources without the concepts
	// leave them zero.
	OffTask  int
	Grounded int
}

// Generator is a pluggable assertion source: a simulated COTS LLM, a
// fine-tuned model, a classical miner (GOLDMINE/HARM), or anything a
// caller implements. Every source runs through the identical evaluation
// pipeline — corrector, FPV, metrics, worker pool — which is what makes
// cross-source comparisons meaningful.
//
// Implementations must be safe for concurrent use (the runner's worker
// pool shares one instance) and deterministic in the request.
type Generator interface {
	Name() string
	Generate(ctx context.Context, req GenRequest) (GenOutput, error)
}

// NewModelGenerator returns the Generator for a simulated LLM profile:
// it renders the paper's Fig. 5 k-shot prompt, samples the model, and
// splits the completion into candidate lines.
func NewModelGenerator(p Profile) Generator {
	return evalGenerator{g: eval.NewModelGenerator(p.p)}
}

// NewGoldMineGenerator returns the GOLDMINE-style miner as a Generator:
// decision-tree rule learning over simulation traces, FPV-filtered. It
// ignores in-context examples — miners read the RTL, not a prompt.
func NewGoldMineGenerator() Generator {
	return evalGenerator{g: eval.GoldMineGenerator(mine.Options{})}
}

// NewHarmGenerator returns the HARM-style hint/template miner as a
// Generator.
func NewHarmGenerator() Generator {
	return evalGenerator{g: eval.HarmGenerator(mine.Options{})}
}

// evalGenerator lifts an internal eval.Generator to the public interface.
type evalGenerator struct {
	g eval.Generator
}

func (w evalGenerator) Name() string { return w.g.Name() }

func (w evalGenerator) Generate(ctx context.Context, req GenRequest) (GenOutput, error) {
	out, err := w.g.Generate(ctx, req.Design.internal(), internalExamples(req.Examples), eval.GenOptions{
		Shots: req.Shots,
		Seed:  req.Seed,
	})
	return GenOutput(out), err
}

// generatorAdapter lowers a public Generator into the runner.
type generatorAdapter struct {
	g Generator
}

func (a generatorAdapter) Name() string { return a.g.Name() }

func (a generatorAdapter) Generate(ctx context.Context, d bench.Design, icl []llm.Example, opt eval.GenOptions) (eval.GenOutput, error) {
	out, err := a.g.Generate(ctx, GenRequest{
		Design:   newDesign(d),
		Examples: newExamples(icl),
		Shots:    opt.Shots,
		Seed:     opt.Seed,
	})
	return eval.GenOutput(out), err
}

// adaptGenerator unwraps built-in generators (avoiding a public/internal
// round trip per design) and adapts caller implementations.
func adaptGenerator(g Generator) eval.Generator {
	if w, ok := g.(evalGenerator); ok {
		return w.g
	}
	return generatorAdapter{g: g}
}
