package assertionbench_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"assertionbench"
)

func TestSelfCheckFacade(t *testing.T) {
	report, err := assertionbench.SelfCheck(context.Background(), assertionbench.SelfCheckOptions{
		Scenarios: 10, PropsPerDesign: 2, Seed: 3, Short: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Scenarios != 10 || report.Properties != 20 {
		t.Fatalf("report counts wrong: %+v", report)
	}
	if !report.OK() {
		for _, d := range report.Disagreements {
			t.Errorf("disagreement: %s", d)
		}
	}
	if report.DeterminismRuns == 0 {
		t.Error("determinism oracle did not run")
	}
	if report.SchedChecks == 0 {
		t.Error("sched oracle did not run")
	}
}

func TestSelfCheckShortDefaultsAndDumpDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "dumps")
	report, err := assertionbench.SelfCheck(context.Background(), assertionbench.SelfCheckOptions{
		Scenarios: 4, PropsPerDesign: 1, Seed: 9, DumpDir: dir, Short: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Scenarios != 4 {
		t.Fatalf("scenarios = %d, want 4", report.Scenarios)
	}
	// A clean run must not create the dump directory's contents.
	if entries, err := os.ReadDir(dir); err == nil && len(entries) > 0 && report.OK() {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("clean run wrote dump files: %s", strings.Join(names, ", "))
	}
}

func TestSelfCheckCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := assertionbench.SelfCheck(ctx, assertionbench.SelfCheckOptions{Scenarios: 2}); err == nil {
		t.Fatal("canceled SelfCheck returned nil error")
	}
}
