package assertionbench

import (
	"assertionbench/internal/eval"
)

// Text renderers for every table and figure of the paper, over public
// result types. The CLIs (cmd/figures, cmd/abench) are thin wrappers
// around these.

// TableI renders the paper's Table I benchmark inventory for a design
// list.
func TableI(corpus []Design) string {
	return eval.TableI(internalDesigns(corpus))
}

// Figure3 renders the corpus size distribution.
func Figure3(corpus []Design) string {
	return eval.Figure3(internalDesigns(corpus))
}

// Figure6 renders the COTS Pass/CEX/Error grid grouped by shot count.
func Figure6(results []RunResult) string {
	return eval.Figure6(internalRunResults(results))
}

// Figure7 renders the COTS grid grouped by model.
func Figure7(results []RunResult) string {
	return eval.Figure7(internalRunResults(results))
}

// Figure9 renders the AssertionLLM (fine-tuned) grid.
func Figure9(results []RunResult) string {
	return eval.Figure9(internalRunResults(results))
}

// Observations renders the paper's Observation 1-6 headline statistics
// from COTS and fine-tuned runs.
func Observations(cots, finetuned []RunResult) string {
	return eval.Observations(internalRunResults(cots), internalRunResults(finetuned))
}
