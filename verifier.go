package assertionbench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"assertionbench/internal/bench"
	"assertionbench/internal/corrector"
	"assertionbench/internal/eval"
	"assertionbench/internal/fpv"
	"assertionbench/internal/sim"
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// VerifyStatus is the verdict lattice of the paper's Fig. 2, extended
// with the bounded verdict.
type VerifyStatus string

// Verdicts.
const (
	// StatusProven: exhaustive search closed with no violation and the
	// antecedent reachable.
	StatusProven VerifyStatus = "proven"
	// StatusVacuous: exhaustive search closed, no violation, but the
	// antecedent is unreachable.
	StatusVacuous VerifyStatus = "vacuous"
	// StatusBoundedPass: bounded search found no violation.
	StatusBoundedPass VerifyStatus = "bounded_pass"
	// StatusCEX: a counter-example trace refutes the assertion.
	StatusCEX VerifyStatus = "cex"
	// StatusError: the assertion failed to parse or type-check, or
	// verification was canceled (Err holds ctx.Err() in that case).
	StatusError VerifyStatus = "error"
	// StatusUnknown: an anytime budget (a ctx deadline) expired before
	// the engine decided the assertion. Unlike StatusError/cancellation,
	// an Unknown is a legitimate bounded answer: the run completed, this
	// assertion simply ran out of time.
	StatusUnknown VerifyStatus = "unknown"
)

// IsPass reports whether the verdict counts toward the paper's Pass
// metric (valid + vacuous + bounded outcomes).
func (s VerifyStatus) IsPass() bool {
	return s == StatusProven || s == StatusVacuous || s == StatusBoundedPass
}

func newVerifyStatus(s fpv.Status) VerifyStatus {
	switch s {
	case fpv.StatusProven:
		return StatusProven
	case fpv.StatusVacuous:
		return StatusVacuous
	case fpv.StatusBoundedPass:
		return StatusBoundedPass
	case fpv.StatusCEX:
		return StatusCEX
	case fpv.StatusUnknown:
		return StatusUnknown
	default:
		return StatusError
	}
}

func (s VerifyStatus) internal() fpv.Status {
	switch s {
	case StatusProven:
		return fpv.StatusProven
	case StatusVacuous:
		return fpv.StatusVacuous
	case StatusBoundedPass:
		return fpv.StatusBoundedPass
	case StatusCEX:
		return fpv.StatusCEX
	case StatusUnknown:
		return fpv.StatusUnknown
	default:
		return fpv.StatusError
	}
}

// Counterexample is a refuting trace: per-cycle stimulus plus the sampled
// value of every net along the violating path.
type Counterexample struct {
	nl  *verilog.Netlist
	cex *fpv.CEX
}

// ViolationCycle is the cycle at which the consequent failed.
func (c *Counterexample) ViolationCycle() int { return c.cex.ViolationCycle }

// AttemptCycle is the cycle at which the violated attempt started.
func (c *Counterexample) AttemptCycle() int { return c.cex.AttemptCycle }

// Cycles is the trace length.
func (c *Counterexample) Cycles() int { return len(c.cex.Sampled) }

// Format renders the trace as a cycle-by-cycle table for diagnostics.
func (c *Counterexample) Format() string { return c.cex.Format(c.nl) }

// WriteVCD exports the trace as a VCD waveform.
func (c *Counterexample) WriteVCD(w io.Writer) error {
	tr := sim.TraceFromSamples(c.nl, c.cex.Sampled)
	return sim.WriteVCD(w, tr, c.nl.Name)
}

// VerifyResult is the outcome of verifying one assertion.
type VerifyResult struct {
	// Assertion is the text that was verified.
	Assertion string
	Status    VerifyStatus
	// Err explains StatusError results (parse/type errors, or ctx.Err()
	// after cancellation).
	Err error
	// CEX is non-nil for StatusCEX.
	CEX *Counterexample
	// NonVacuous reports whether any explored path matched the antecedent.
	NonVacuous bool
	// Exhaustive reports whether the product space was fully closed.
	Exhaustive bool
	// States is the number of distinct product states visited; Depth the
	// deepest cycle reached.
	States int
	Depth  int
	// Static reports that the verdict came from the static
	// pre-verification pass without any state-space search.
	Static bool
}

func newVerifyResult(nl *verilog.Netlist, assertion string, r fpv.Result) VerifyResult {
	out := VerifyResult{
		Assertion:  assertion,
		Status:     newVerifyStatus(r.Status),
		Err:        r.Err,
		NonVacuous: r.NonVacuous,
		Exhaustive: r.Exhaustive,
		States:     r.States,
		Depth:      r.Depth,
		Static:     r.Static,
	}
	if r.CEX != nil {
		out.CEX = &Counterexample{nl: nl, cex: r.CEX}
	}
	return out
}

func (r VerifyResult) internal() fpv.Result {
	out := fpv.Result{
		Status:     r.Status.internal(),
		Err:        r.Err,
		NonVacuous: r.NonVacuous,
		Exhaustive: r.Exhaustive,
		States:     r.States,
		Depth:      r.Depth,
		Static:     r.Static,
	}
	if r.CEX != nil {
		out.CEX = r.CEX.cex
	}
	return out
}

// VerifyOptions bound the FPV engine. The zero value selects the
// engine's own defaults (deep search); the evaluation runner substitutes
// its evaluation-grade budget when these are left zero.
type VerifyOptions struct {
	// MaxProductStates bounds the BFS frontier before degrading to
	// bounded mode.
	MaxProductStates int
	// MaxInputBits is the widest data-input vector enumerated
	// exhaustively per state.
	MaxInputBits int
	// MaxInputSamples is the number of input vectors tried per state when
	// enumeration is infeasible.
	MaxInputSamples int
	// RandomRuns and RandomDepth configure the randomized violation hunt
	// appended in bounded mode.
	RandomRuns  int
	RandomDepth int
	// Seed makes bounded exploration deterministic.
	Seed int64
	// Backend selects the execution engine: BackendCompiled (default,
	// the lowered register-machine programs) or BackendInterp (the
	// reference tree-walk). Verdicts are bit-identical across backends;
	// the interpreter exists for cross-checking and debugging.
	Backend string
	// Batch selects whether multi-assertion verification amortizes
	// design-state exploration across the batch through a shared
	// reachability graph: BatchAuto (default) batches, BatchOff forces
	// the per-property reference search. Verdicts are bit-identical
	// either way; the per-property path exists for cross-checking.
	Batch string
	// Cone selects cone-of-influence reduction: ConeAuto (default)
	// projects each property's search onto the transitive fan-in of its
	// support nets, ConeOff explores the full design. Verdicts agree
	// semantically either way; the full-design path exists for
	// cross-checking.
	Cone string
	// Slices selects 64-way bit-parallel bounded exploration: SlicesAuto
	// (default) runs 64 stimulus trajectories per pass where the design
	// supports it, SlicesOff forces the scalar reference loops. Verdicts
	// are bit-identical either way.
	Slices string
	// Static selects the abstract-interpretation pre-verification pass:
	// StaticAuto (default) classifies each property against the design's
	// ternary-lattice fixpoint before any search, discharging statically
	// decided properties without exploring a state and sharpening cone
	// reduction with proven-constant nets; StaticOff skips the pass.
	// Verdicts agree semantically either way.
	Static string
}

// Execution backends for VerifyOptions.Backend / RunOptions.Backend.
const (
	BackendCompiled = "compiled"
	BackendInterp   = "interp"
)

// Batching modes for VerifyOptions.Batch / RunOptions.Batch.
const (
	BatchAuto = "auto"
	BatchOff  = "off"
)

// Cone-of-influence modes for VerifyOptions.Cone / RunOptions.Cone.
const (
	ConeAuto = "auto"
	ConeOff  = "off"
)

// Bit-slicing modes for VerifyOptions.Slices / RunOptions.Slices.
const (
	SlicesAuto = "auto"
	SlicesOff  = "off"
)

// Static pre-verification modes for VerifyOptions.Static /
// RunOptions.Static.
const (
	StaticAuto = "auto"
	StaticOff  = "off"
)

func (o VerifyOptions) internal() fpv.Options {
	return fpv.Options(o)
}

// Verifier decides a candidate assertion's fate against a design — the
// pipeline's formal stage, swappable the same way the Generator is.
// Implementations must be safe for concurrent use: the evaluation runner
// calls one instance from every worker.
type Verifier interface {
	Verify(ctx context.Context, design Design, assertion string) VerifyResult
}

// fpvVerifier is the FPV-engine-backed Verifier. Engines are pooled so
// concurrent callers reuse allocation-heavy state instead of rebuilding
// it per call; elaboration goes through the process-wide cache.
type fpvVerifier struct {
	opt  fpv.Options
	pool sync.Pool
}

// NewVerifier returns the built-in FPV-backed Verifier with the given
// bounds. It is safe for concurrent use, and batch-capable: when the
// evaluation runner hands it a design's whole candidate list it shares
// one reachability exploration across the batch (VerifyOptions.Batch).
func NewVerifier(opt VerifyOptions) Verifier {
	v := &fpvVerifier{opt: opt.internal()}
	v.pool.New = func() any {
		eng := fpv.NewEngine()
		eng.Graphs = bench.DefaultElab.Graphs()
		return eng
	}
	return v
}

func (v *fpvVerifier) Verify(ctx context.Context, design Design, assertion string) VerifyResult {
	nl, err := bench.Elaborate(design.internal())
	if err != nil {
		return VerifyResult{Assertion: assertion, Status: StatusError,
			Err: fmt.Errorf("design %s does not elaborate: %w", design.Name, err)}
	}
	eng := v.pool.Get().(*fpv.Engine)
	defer v.pool.Put(eng)
	return newVerifyResult(nl, assertion, eng.VerifySource(ctx, nl, assertion, v.opt))
}

// verifyBatch is the internal batch seam NewVerifier's verifiers expose
// to the runner adapter.
func (v *fpvVerifier) verifyBatch(ctx context.Context, design Design, assertions []string) []fpv.Result {
	nl, err := bench.Elaborate(design.internal())
	if err != nil {
		out := make([]fpv.Result, len(assertions))
		for i := range out {
			out[i] = fpv.Result{Status: fpv.StatusError,
				Err: fmt.Errorf("design %s does not elaborate: %w", design.Name, err)}
		}
		return out
	}
	eng := v.pool.Get().(*fpv.Engine)
	defer v.pool.Put(eng)
	return eng.VerifyAll(ctx, nl, assertions, v.opt)
}

// batchCapable marks public Verifiers that can verify a whole candidate
// list in one call (the built-in FPV verifier qualifies).
type batchCapable interface {
	verifyBatch(ctx context.Context, design Design, assertions []string) []fpv.Result
}

// verifierAdapter lowers a public Verifier into the evaluation runner.
// It always satisfies eval.BatchVerifier: batch-capable verifiers get the
// whole candidate list, everything else falls back to the per-assertion
// loop the runner would otherwise drive itself.
type verifierAdapter struct {
	v Verifier
}

func (a verifierAdapter) Verify(ctx context.Context, d bench.Design, _ *verilog.Netlist, assertion string, _ fpv.Options) fpv.Result {
	return a.v.Verify(ctx, newDesign(d), assertion).internal()
}

func (a verifierAdapter) VerifyBatch(ctx context.Context, d bench.Design, nl *verilog.Netlist, assertions []string, opt fpv.Options) []fpv.Result {
	if bc, ok := a.v.(batchCapable); ok {
		return bc.verifyBatch(ctx, newDesign(d), assertions)
	}
	out := make([]fpv.Result, 0, len(assertions))
	for _, s := range assertions {
		out = append(out, a.Verify(ctx, d, nl, s, opt))
		if ctx.Err() != nil {
			break
		}
	}
	for len(out) < len(assertions) {
		out = append(out, fpv.Result{Status: fpv.StatusError, Err: ctx.Err()})
	}
	return out
}

var _ eval.Verifier = verifierAdapter{}
var _ eval.BatchVerifier = verifierAdapter{}

// VerifyAssertions formally verifies assertion texts against a design
// given as Verilog source, one result per input in order. The batch
// shares one reachability exploration by default (VerifyOptions.Batch);
// elaboration and the exploration go through the process-wide caches
// (see PurgeCaches). Cancelling ctx stops the batch and returns the
// completed prefix alongside ctx.Err(), so interruption is never
// mistaken for per-assertion failures.
func VerifyAssertions(ctx context.Context, designSource string, assertions []string, opt VerifyOptions) ([]VerifyResult, error) {
	if !fpv.ValidBackend(opt.Backend) {
		return nil, fmt.Errorf("assertionbench: unknown execution backend %q (want %q or %q)",
			opt.Backend, BackendCompiled, BackendInterp)
	}
	if !fpv.ValidBatch(opt.Batch) {
		return nil, fmt.Errorf("assertionbench: unknown batch mode %q (want %q or %q)",
			opt.Batch, BatchAuto, BatchOff)
	}
	if !fpv.ValidCone(opt.Cone) {
		return nil, fmt.Errorf("assertionbench: unknown cone mode %q (want %q or %q)",
			opt.Cone, ConeAuto, ConeOff)
	}
	if !fpv.ValidSlices(opt.Slices) {
		return nil, fmt.Errorf("assertionbench: unknown slices mode %q (want %q or %q)",
			opt.Slices, SlicesAuto, SlicesOff)
	}
	if !fpv.ValidStatic(opt.Static) {
		return nil, fmt.Errorf("assertionbench: unknown static mode %q (want %q or %q)",
			opt.Static, StaticAuto, StaticOff)
	}
	nl, err := elaborateSource(designSource)
	if err != nil {
		return nil, err
	}
	eng := fpv.NewEngine()
	eng.Graphs = bench.DefaultElab.Graphs()
	results := eng.VerifyAll(ctx, nl, assertions, opt.internal())
	out := make([]VerifyResult, 0, len(assertions))
	for i, r := range results {
		// Preserve the documented prefix contract under cancellation: the
		// first canceled result ends the batch.
		if ctxErr := ctx.Err(); ctxErr != nil && r.Status == fpv.StatusError && errors.Is(r.Err, ctxErr) {
			return out, ctxErr
		}
		out = append(out, newVerifyResult(nl, assertions[i], r))
	}
	return out, nil
}

// elaborateSource elaborates raw Verilog through the process-wide cache,
// so repeated façade calls on the same source pay for the front end once.
func elaborateSource(designSource string) (*verilog.Netlist, error) {
	nl, err := bench.Elaborate(bench.Design{Source: designSource})
	if err != nil {
		return nil, fmt.Errorf("design does not elaborate: %w", err)
	}
	return nl, nil
}

// SplitAssertions splits raw generator output (or an assertion file) into
// individual candidate assertion lines, the way the evaluation pipeline
// does before correction. Useful for custom Generator implementations
// that produce free-form text.
func SplitAssertions(text string) []string {
	return sva.SplitAssertions(text)
}

// CorrectAssertions runs the paper's Fig. 4 stage-3 rule-based syntax
// corrector over candidate lines. If the design does not elaborate the
// lines are returned unchanged (the corrector needs a netlist to resolve
// signal names against).
func CorrectAssertions(designSource string, assertions []string) []string {
	nl, err := elaborateSource(designSource)
	if err != nil {
		return assertions
	}
	fixed, _ := corrector.New(nl).CorrectAll(assertions)
	return fixed
}
