package assertionbench

import (
	"assertionbench/internal/sva"
	"assertionbench/internal/vstatic"
)

// LintDiagnostic is one structured finding about an assertion: a stable
// machine-readable rule name plus a human-readable explanation.
type LintDiagnostic struct {
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// Lint rule names, stable for machine consumption.
const (
	// LintParseError: the assertion does not parse as the supported SVA
	// subset.
	LintParseError = "parse-error"
	// LintSemanticError: the assertion parses but does not compile
	// against the design (unknown signal, bad width, ...).
	LintSemanticError = vstatic.RuleSemanticError
	// LintUnreachableWindow: the ##N delays span more than the 64-cycle
	// evaluation horizon, so no attempt can ever complete.
	LintUnreachableWindow = vstatic.RuleUnreachableWindow
	// LintContradictoryAntecedent: an antecedent step is statically
	// false; the property can only pass vacuously.
	LintContradictoryAntecedent = vstatic.RuleContradictoryAntecedent
	// LintTriviallyTrue: the property is statically true — it can never
	// fail regardless of stimulus.
	LintTriviallyTrue = vstatic.RuleTriviallyTrue
	// LintStaticallyRefuted: a consequent step is statically false; any
	// completed attempt violates the property.
	LintStaticallyRefuted = vstatic.RuleStaticallyRefuted
	// LintWidthTruncatingCompare: a literal in a comparison exceeds the
	// other operand's bit range, folding the compare to a constant.
	LintWidthTruncatingCompare = vstatic.RuleWidthTruncatingCompare
	// LintConstantNetReference: the property reads a signal the design
	// holds statically constant.
	LintConstantNetReference = vstatic.RuleConstantNetReference
)

// LintResult is one assertion's static audit.
type LintResult struct {
	// Assertion is the text that was audited.
	Assertion string `json:"assertion"`
	// Diagnostics is empty when the assertion is clean as far as the
	// analysis can see.
	Diagnostics []LintDiagnostic `json:"diagnostics,omitempty"`
}

// Clean reports whether the audit found nothing to flag.
func (r LintResult) Clean() bool { return len(r.Diagnostics) == 0 }

// Lint statically audits candidate assertions against a design given as
// Verilog source, without running any state-space search: the design's
// abstract fixpoint (the same analysis the FPV engine's static
// pre-verification uses) flags contradictory antecedents, trivially true
// or statically refuted properties, width-truncating comparisons,
// references to constant nets, and windows beyond the evaluation
// horizon. One result per input assertion, in order.
func Lint(designSource string, assertions []string) ([]LintResult, error) {
	nl, err := elaborateSource(designSource)
	if err != nil {
		return nil, err
	}
	out := make([]LintResult, 0, len(assertions))
	for _, text := range assertions {
		res := LintResult{Assertion: text}
		a, err := sva.Parse(text)
		if err != nil {
			res.Diagnostics = []LintDiagnostic{{Rule: LintParseError, Msg: err.Error()}}
			out = append(out, res)
			continue
		}
		for _, d := range vstatic.Lint(nl, a) {
			res.Diagnostics = append(res.Diagnostics, LintDiagnostic{Rule: d.Rule, Msg: d.Msg})
		}
		out = append(out, res)
	}
	return out, nil
}
