package assertionbench_test

import (
	"context"
	"fmt"
	"testing"

	"assertionbench/internal/bench"
	"assertionbench/internal/fpv"
	"assertionbench/internal/mine"
	"assertionbench/internal/verilog"
)

// resultsIdentical mirrors dverify's field-for-field result comparison:
// "" when equal, else the first difference.
func resultsIdentical(a, b fpv.Result) string {
	switch {
	case a.Status != b.Status:
		return fmt.Sprintf("status %v vs %v", a.Status, b.Status)
	case a.NonVacuous != b.NonVacuous:
		return fmt.Sprintf("nonvacuous %v vs %v", a.NonVacuous, b.NonVacuous)
	case a.Exhaustive != b.Exhaustive:
		return fmt.Sprintf("exhaustive %v vs %v", a.Exhaustive, b.Exhaustive)
	case a.States != b.States:
		return fmt.Sprintf("states %d vs %d", a.States, b.States)
	case a.Depth != b.Depth:
		return fmt.Sprintf("depth %d vs %d", a.Depth, b.Depth)
	case (a.CEX == nil) != (b.CEX == nil):
		return fmt.Sprintf("cex presence %v vs %v", a.CEX != nil, b.CEX != nil)
	}
	if a.CEX == nil {
		return ""
	}
	if a.CEX.ViolationCycle != b.CEX.ViolationCycle || a.CEX.AttemptCycle != b.CEX.AttemptCycle {
		return fmt.Sprintf("cex cycle %d/%d vs %d/%d",
			a.CEX.ViolationCycle, a.CEX.AttemptCycle, b.CEX.ViolationCycle, b.CEX.AttemptCycle)
	}
	for t := range a.CEX.Inputs {
		for i := range a.CEX.Inputs[t] {
			if a.CEX.Inputs[t][i] != b.CEX.Inputs[t][i] {
				return fmt.Sprintf("cex stimulus at cycle %d input %d", t, i)
			}
		}
	}
	return ""
}

// TestCorpusConeAndSlicedAgreement sweeps real corpus designs with mined
// assertions through the four (cone, slices) engine configurations:
//
//   - bit-sliced exploration must reproduce the scalar loops field for
//     field, with and without cone reduction;
//   - cone-reduced search must agree semantically with the full-design
//     search: it must close whenever the full search closes, and two
//     closed searches must reach the same verdict.
//
// This is the deterministic corpus complement of dverify oracles 6/7,
// which cover the same contracts over the random fuzz genome.
func TestCorpusConeAndSlicedAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep")
	}
	corpus := bench.TestCorpus()
	eng := fpv.NewEngine()
	opt := fpv.Options{
		MaxProductStates: 4000, MaxInputBits: 8, MaxInputSamples: 6,
		RandomRuns: 8, RandomDepth: 16, Seed: 3,
	}
	designs, props, checked := 0, 0, 0
	for di := 0; di < len(corpus); di += 7 {
		d := corpus[di]
		nl, err := verilog.ElaborateSource(d.Source, d.Name)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		mined, err := mine.GoldMine(context.Background(), nl, mine.Options{MaxAssertions: 4})
		if err != nil {
			t.Fatalf("%s: mine: %v", d.Name, err)
		}
		designs++
		for _, m := range mined {
			src := m.Assertion.String()
			props++

			run := func(cone, slices string) fpv.Result {
				o := opt
				o.Cone, o.Slices = cone, slices
				return eng.VerifySource(context.Background(), nl, src, o)
			}
			prod := run(fpv.ConeAuto, fpv.SlicesAuto)
			coneScalar := run(fpv.ConeAuto, fpv.SlicesOff)
			full := run(fpv.ConeOff, fpv.SlicesAuto)
			fullScalar := run(fpv.ConeOff, fpv.SlicesOff)
			if prod.Status == fpv.StatusError {
				continue // mined assertion outside the FPV fragment
			}
			checked++

			// Slicing is bit-identical under either cone setting.
			if diff := resultsIdentical(prod, coneScalar); diff != "" {
				t.Errorf("%s %q: sliced vs scalar (cone on): %s", d.Name, src, diff)
			}
			if diff := resultsIdentical(full, fullScalar); diff != "" {
				t.Errorf("%s %q: sliced vs scalar (cone off): %s", d.Name, src, diff)
			}

			// Cone reduction agrees semantically with the full search.
			if full.Exhaustive && !prod.Exhaustive {
				t.Errorf("%s %q: full search closed but cone search did not", d.Name, src)
			}
			if full.Exhaustive && prod.Exhaustive {
				if prod.Status != full.Status || prod.NonVacuous != full.NonVacuous {
					t.Errorf("%s %q: cone %v (nonvacuous=%v) vs full %v (nonvacuous=%v)",
						d.Name, src, prod.Status, prod.NonVacuous, full.Status, full.NonVacuous)
				}
			}
			if prod.Exhaustive && !full.Exhaustive {
				if full.Status == fpv.StatusCEX && prod.Status != fpv.StatusCEX {
					t.Errorf("%s %q: full bounded CEX but exhaustive cone verdict %v", d.Name, src, prod.Status)
				}
				if full.NonVacuous && prod.Status == fpv.StatusVacuous {
					t.Errorf("%s %q: full bounded non-vacuity but cone verdict vacuous", d.Name, src)
				}
			}
		}
	}
	if designs < 10 || checked < designs {
		t.Fatalf("sweep too thin: %d designs, %d properties, %d checked", designs, props, checked)
	}
}
