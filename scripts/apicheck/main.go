// Command apicheck is the API-compatibility guard: a minimal external
// consumer of the public assertionbench package. scripts/apicheck.sh
// copies it into a throwaway module *outside* this repository and builds
// it there, so any internal/ type leaking into a public signature — or
// any accidental break of the public surface — fails the build the way
// it would fail a real downstream user.
//
// It compiles against every contract the facade promises: benchmark
// loading, profile resolution, batch + streaming evaluation, a custom
// Generator, a custom Verifier, direct verification, mining, coverage,
// and the figure renderers. It is meant to be built, and to run only as
// a smoke test (apicheck -run).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"assertionbench"
)

// customGen proves the Generator interface is implementable downstream.
type customGen struct{}

func (customGen) Name() string { return "custom" }

func (customGen) Generate(_ context.Context, req assertionbench.GenRequest) (assertionbench.GenOutput, error) {
	return assertionbench.GenOutput{Assertions: []string{"1 == 1 |-> 1 == 1;"}}, nil
}

// customVerifier proves the Verifier interface is implementable
// downstream (it delegates to the built-in engine).
type customVerifier struct {
	inner assertionbench.Verifier
}

func (v customVerifier) Verify(ctx context.Context, d assertionbench.Design, a string) assertionbench.VerifyResult {
	return v.inner.Verify(ctx, d, a)
}

func main() {
	run := flag.Bool("run", false, "actually execute a tiny evaluation (default: compile-only no-op)")
	flag.Parse()
	if !*run {
		return
	}
	ctx := context.Background()

	p, err := assertionbench.ProfileByName("gpt4o")
	if err != nil {
		log.Fatal(err)
	}
	b, err := assertionbench.Load(ctx, assertionbench.Options{MaxDesigns: 2})
	if err != nil {
		log.Fatal(err)
	}
	runner := assertionbench.NewRunner(assertionbench.NewModelGenerator(p), b, assertionbench.RunOptions{
		Shots:        1,
		UseCorrector: true,
		Verifier:     customVerifier{inner: assertionbench.NewVerifier(assertionbench.VerifyOptions{})},
	})
	for outcome, err := range runner.Stream(ctx) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("streamed #%d %s: %v\n", outcome.Index, outcome.Design, outcome.Metrics())
	}
	batch, err := assertionbench.NewRunner(customGen{}, b, assertionbench.RunOptions{Shots: 1}).Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(batch)

	design := assertionbench.TrainArbiter()
	if _, err := assertionbench.VerifyAssertions(ctx, design.Source, []string{"rst == 1 |=> gnt_ == 0"}, assertionbench.VerifyOptions{}); err != nil {
		log.Fatal(err)
	}
	if _, err := assertionbench.MineAssertions(ctx, design.Source, assertionbench.MineOptions{Miner: "harm"}); err != nil {
		log.Fatal(err)
	}
	if _, err := assertionbench.MeasureCoverage(ctx, design.Source, []string{"rst == 1 |=> gnt_ == 0"}, assertionbench.CoverageOptions{}); err != nil {
		log.Fatal(err)
	}
	fmt.Print(assertionbench.TableI(b.Corpus()))

	selfReport, err := assertionbench.SelfCheck(ctx, assertionbench.SelfCheckOptions{
		Scenarios: 2, PropsPerDesign: 1, Short: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !selfReport.OK() {
		log.Fatalf("selfcheck found %d disagreement(s): %v", len(selfReport.Disagreements), selfReport.Disagreements)
	}
	fmt.Printf("selfcheck ok (%d scenarios)\n", selfReport.Scenarios)
	fmt.Println("apicheck ok")
}
