// Command benchtrend merges the checked-in BENCH_pr*.json artifacts
// into a single markdown trajectory table so the performance history of
// the repository is readable at a glance: one row per PR with the cold
// and warm full-corpus FPV pass, the per-design p95, and (once the
// scheduler lands) the cost-vs-contiguous dispatch tail speedup.
//
// Usage:
//
//	go run ./scripts/benchtrend [dir]
//
// dir defaults to the current directory. Missing columns render as "—":
// earlier PRs predate the batched engine, the p95 instrumentation, or
// the dispatcher, and the table shows that honestly rather than
// back-filling zeros.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// bench mirrors just the slices of the perfbench report schema the
// table needs; unknown fields in any vintage of the file are ignored.
type bench struct {
	Description string `json:"description"`
	Quick       bool   `json:"quick"`
	FPV         struct {
		BatchedMs    float64 `json:"batched_ms"`
		CompiledMs   float64 `json:"compiled_ms"`
		WarmMs       float64 `json:"batched_warm_ms"`
		DesignP95Ms  float64 `json:"batched_design_p95_ms"`
		SpeedupVsBas float64 `json:"speedup_vs_baseline"`
	} `json:"fpv"`
	Sched struct {
		CostP95Ms    float64 `json:"cost_design_p95_ms"`
		TailSpeedup  float64 `json:"tail_speedup"`
		ContigP95Ms  float64 `json:"contiguous_design_p95_ms"`
		SchedWorkers int     `json:"workers"`
	} `json:"sched"`
}

func cell(v float64) string {
	if v == 0 {
		return "—"
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtrend: ")
	dir := "."
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	files, err := filepath.Glob(filepath.Join(dir, "BENCH_pr*.json"))
	if err != nil {
		log.Fatal(err)
	}
	if len(files) == 0 {
		log.Fatalf("no BENCH_pr*.json files under %s", dir)
	}
	type row struct {
		pr   int
		file string
		b    bench
	}
	var rows []row
	for _, f := range files {
		base := filepath.Base(f)
		num := strings.TrimSuffix(strings.TrimPrefix(base, "BENCH_pr"), ".json")
		pr, err := strconv.Atoi(num)
		if err != nil {
			log.Fatalf("%s: unparseable PR number %q", base, num)
		}
		data, err := os.ReadFile(f)
		if err != nil {
			log.Fatal(err)
		}
		var b bench
		if err := json.Unmarshal(data, &b); err != nil {
			log.Fatalf("%s: %v", base, err)
		}
		if b.Quick {
			log.Printf("%s: quick-mode numbers, excluded from the trajectory", base)
			continue
		}
		rows = append(rows, row{pr, base, b})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].pr < rows[j].pr })

	fmt.Println("# Performance trajectory")
	fmt.Println()
	fmt.Println("Full-corpus FPV-bound verification pass per PR, milliseconds on")
	fmt.Println("the CI host (1 CPU). \"cold\" is the best engine configuration of")
	fmt.Println("that PR starting from empty caches; \"warm\" re-runs it against a")
	fmt.Println("populated artifact store; \"design p95\" is the 95th-percentile")
	fmt.Println("single-design time within the cold pass; \"tail\" is the")
	fmt.Println("contiguous-vs-cost dispatch p95 ratio (>1 means the cost-aware")
	fmt.Println("scheduler shortens the tail).")
	fmt.Println()
	fmt.Println("| PR | cold (ms) | warm (ms) | design p95 (ms) | tail | what changed |")
	fmt.Println("|---:|----------:|----------:|----------------:|-----:|:-------------|")
	for _, r := range rows {
		cold := r.b.FPV.BatchedMs
		if cold == 0 {
			cold = r.b.FPV.CompiledMs
		}
		tail := "—"
		if r.b.Sched.TailSpeedup != 0 {
			tail = fmt.Sprintf("%.2fx", r.b.Sched.TailSpeedup)
		}
		desc := r.b.Description
		if i := strings.IndexAny(desc, ",("); i > 0 {
			desc = strings.TrimSpace(desc[:i])
		}
		fmt.Printf("| %d | %s | %s | %s | %s | %s |\n",
			r.pr, cell(cold), cell(r.b.FPV.WarmMs), cell(r.b.FPV.DesignP95Ms), tail, desc)
	}
}
