#!/bin/sh
# Merge every checked-in BENCH_pr*.json into one markdown trajectory
# table (cold/warm full-corpus pass, design p95 and dispatch tail
# speedup per PR). Runs from any directory; the table goes to stdout so
# it can be pasted into EXPERIMENTS.md or piped to a file.
set -eu
root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"
exec go run ./scripts/benchtrend "$root"
