#!/bin/sh
# API-compatibility guard: build scripts/apicheck/main.go as an EXTERNAL
# consumer of the assertionbench module. The consumer lives in a temp
# module that `require`s assertionbench via a local replace, so the Go
# toolchain enforces the internal/ boundary exactly as it would for a
# real downstream user — any internal type leaking into a public
# signature, or any break of the public surface, fails this build.
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

cp "$root/scripts/apicheck/main.go" "$tmp/main.go"
cat > "$tmp/go.mod" <<EOF
module apicheck

go 1.24

require assertionbench v0.0.0

replace assertionbench => $root
EOF

cd "$tmp"
GOFLAGS=-mod=mod GOPROXY=off go build -o /dev/null .
echo "apicheck: external consumer builds against the public API"
