// Benchmarks regenerating every table and figure of the paper, the
// ablations motivated by its observations, and throughput benches for the
// substrates. Run:
//
//	go test -bench=. -benchmem .
//
// Fraction metrics are attached via b.ReportMetric (pass/op, cex/op,
// error/op are the Pass/CEX/Error fractions of the corresponding run).
package assertionbench_test

import (
	"context"
	"sync"
	"testing"

	"assertionbench/internal/bench"
	"assertionbench/internal/eval"
	"assertionbench/internal/fpv"
	"assertionbench/internal/llm"
	"assertionbench/internal/mine"
	"assertionbench/internal/sim"
	"assertionbench/internal/verilog"
)

// The experiment is shared across benchmarks: building it mines the ICL
// examples once, and the LLM design-context cache warms up progressively.
var (
	expOnce sync.Once
	exp     *eval.Experiment
	expErr  error
)

func experiment(b *testing.B) *eval.Experiment {
	b.Helper()
	expOnce.Do(func() {
		exp, expErr = eval.NewExperiment(context.Background(), eval.ExperimentOptions{})
	})
	if expErr != nil {
		b.Fatal(expErr)
	}
	return exp
}

func reportRun(b *testing.B, r eval.RunResult) {
	b.ReportMetric(r.Metrics.Pass(), "pass/op")
	b.ReportMetric(r.Metrics.CEX(), "cex/op")
	b.ReportMetric(r.Metrics.Error(), "error/op")
}

// --- paper tables and figures ---

// BenchmarkTableI regenerates Table I (representative design details).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		corpus := bench.TestCorpus()
		if s := eval.TableI(corpus); len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3 (LoC per test design).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		corpus := bench.TestCorpus()
		if s := eval.Figure3(corpus); len(s) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// benchCOTS runs one (model, k) cell of the Fig. 6 grid.
func benchCOTS(b *testing.B, p llm.Profile, shots int) {
	e := experiment(b)
	var last eval.RunResult
	for i := 0; i < b.N; i++ {
		r, err := e.RunCOTS(context.Background(), p, shots)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	reportRun(b, last)
}

// BenchmarkFigure6 regenerates Figure 6: each sub-benchmark is one
// (model, k-shot) bar group of Fig. 6a-d.
func BenchmarkFigure6(b *testing.B) {
	for _, p := range llm.COTSProfiles() {
		p := p
		for _, k := range []int{1, 5} {
			k := k
			b.Run(p.Name+"/"+shotName(k), func(b *testing.B) { benchCOTS(b, p, k) })
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7 (cross-model comparison at fixed
// k): the full COTS grid in one measurement.
func BenchmarkFigure7(b *testing.B) {
	e := experiment(b)
	for i := 0; i < b.N; i++ {
		runs, err := e.RunAllCOTS(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if s := eval.Figure7(runs); len(s) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure9 regenerates Figure 9: AssertionLLM (fine-tuned
// CodeLLaMa 2 and LLaMa3-70B) on the held-out quarter, per k.
func BenchmarkFigure9(b *testing.B) {
	bases := []llm.Profile{llm.CodeLlama2(), llm.Llama3()}
	for _, p := range bases {
		p := p
		for _, k := range []int{1, 5} {
			k := k
			b.Run("AssertionLLM_"+p.Name+"/"+shotName(k), func(b *testing.B) {
				e := experiment(b)
				var last eval.RunResult
				for i := 0; i < b.N; i++ {
					r, _, err := e.FinetunedRun(context.Background(), p, k)
					if err != nil {
						b.Fatal(err)
					}
					last = r
				}
				reportRun(b, last)
			})
		}
	}
}

// BenchmarkObservations regenerates the Observation 1-6 statistics from a
// full COTS + fine-tuned pass.
func BenchmarkObservations(b *testing.B) {
	e := experiment(b)
	for i := 0; i < b.N; i++ {
		cots, err := e.RunAllCOTS(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		ft, err := e.RunAllFinetuned(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if s := eval.Observations(cots, ft); len(s) == 0 {
			b.Fatal("empty observations")
		}
	}
}

func shotName(k int) string {
	if k == 1 {
		return "1shot"
	}
	return "5shot"
}

// --- ablations (design choices DESIGN.md calls out) ---

// BenchmarkAblationCorrector measures stage 3 of Fig. 4: the same model
// with and without the syntax corrector.
func BenchmarkAblationCorrector(b *testing.B) {
	e := experiment(b)
	gen := eval.NewModelGenerator(llm.GPT35())
	for _, on := range []bool{true, false} {
		on := on
		name := "corrector_on"
		if !on {
			name = "corrector_off"
		}
		b.Run(name, func(b *testing.B) {
			var last eval.RunResult
			for i := 0; i < b.N; i++ {
				r, err := eval.Run(context.Background(), gen, e.ICL, e.Corpus, eval.RunOptions{
					Shots: 1, UseCorrector: on,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkAblationGrounding removes the design-behaviour grounding
// channel (the CDFG/COI-derived pool of Observation 4) from GPT-4o.
func BenchmarkAblationGrounding(b *testing.B) {
	e := experiment(b)
	for _, grounded := range []bool{true, false} {
		grounded := grounded
		name := "with_artifacts"
		if !grounded {
			name = "without_artifacts"
		}
		b.Run(name, func(b *testing.B) {
			p := llm.GPT4o()
			if !grounded {
				p.K1.Grounding = 0
				p.K5.Grounding = 0
			}
			var last eval.RunResult
			for i := 0; i < b.N; i++ {
				r, err := e.RunCOTS(context.Background(), p, 5)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkAblationDecoding compares greedy decoding against the paper's
// temperature-1.0 / top-p 0.95 sampling.
func BenchmarkAblationDecoding(b *testing.B) {
	e := experiment(b)
	for _, greedy := range []bool{false, true} {
		greedy := greedy
		name := "sampled_t1.0"
		if greedy {
			name = "greedy"
		}
		b.Run(name, func(b *testing.B) {
			p := llm.GPT4o()
			if greedy {
				p.Temperature = 0
				p.TopP = 1
			}
			var last eval.RunResult
			for i := 0; i < b.N; i++ {
				r, err := e.RunCOTS(context.Background(), p, 5)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkAblationICLDiversity tests Observation 2: five diverse
// in-context examples vs the same example repeated five times.
func BenchmarkAblationICLDiversity(b *testing.B) {
	e := experiment(b)
	gen := eval.NewModelGenerator(llm.GPT4o())
	repeated := []llm.Example{e.ICL[0], e.ICL[0], e.ICL[0], e.ICL[0], e.ICL[0]}
	for _, diverse := range []bool{true, false} {
		diverse := diverse
		name := "diverse_ices"
		icl := e.ICL
		if !diverse {
			name = "repeated_ice"
			icl = repeated
		}
		b.Run(name, func(b *testing.B) {
			var last eval.RunResult
			for i := 0; i < b.N; i++ {
				r, err := eval.Run(context.Background(), gen, icl, e.Corpus, eval.RunOptions{
					Shots: 5, UseCorrector: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkAblationFinetuneEpochs sweeps the fine-tuning epoch count.
func BenchmarkAblationFinetuneEpochs(b *testing.B) {
	e := experiment(b)
	corpus, _, err := e.FinetuneSplit(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	for _, epochs := range []int{1, 5, 20} {
		epochs := epochs
		b.Run(shotEpochs(epochs), func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				_, report := llm.Finetune(llm.New(llm.CodeLlama2()), corpus, llm.FinetuneOptions{Epochs: epochs})
				gain = report.Gain
			}
			b.ReportMetric(gain, "gain/op")
		})
	}
}

func shotEpochs(n int) string {
	switch n {
	case 1:
		return "epochs_1"
	case 5:
		return "epochs_5"
	default:
		return "epochs_20"
	}
}

// --- evaluation runner benches ---

// BenchmarkEvalRunner compares the sequential and parallel evaluation
// paths on the same (model, k, corpus-slice) workload. Results are
// byte-identical; only wall-clock differs. The elaboration cache is warm
// for both (the shared experiment ran already), so the measured gap is
// pure scheduling.
func BenchmarkEvalRunner(b *testing.B) {
	e := experiment(b)
	gen := eval.NewModelGenerator(llm.GPT4o())
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", 0}, // GOMAXPROCS workers
	} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			var last eval.RunResult
			for i := 0; i < b.N; i++ {
				r, err := eval.Run(context.Background(), gen, e.ICL, e.Corpus, eval.RunOptions{
					Shots: 5, UseCorrector: true, Workers: bc.workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkElaboration compares cold elaboration of the full 100-design
// corpus against hits on a warm ElabCache (what every run after the first
// sees in one process).
func BenchmarkElaboration(b *testing.B) {
	corpus := bench.TestCorpus()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var c bench.ElabCache
			for _, d := range corpus {
				if _, err := c.Elaborate(d); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		var c bench.ElabCache
		for _, d := range corpus {
			if _, err := c.Elaborate(d); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, d := range corpus {
				if _, err := c.Elaborate(d); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// --- substrate throughput benches ---

// BenchmarkParseElaborate measures front-end throughput on the largest
// corpus design.
func BenchmarkParseElaborate(b *testing.B) {
	corpus := bench.TestCorpus()
	var biggest bench.Design
	for _, d := range corpus {
		if d.LoC > biggest.LoC {
			biggest = d
		}
	}
	b.SetBytes(int64(len(biggest.Source)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := verilog.ElaborateSource(biggest.Source, biggest.Name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorSteps measures cycle throughput on the CAN CRC, per
// execution backend.
func BenchmarkSimulatorSteps(b *testing.B) {
	nl, err := verilog.ElaborateSource(bench.TestCorpus()[23].Source, "")
	if err != nil {
		b.Fatal(err)
	}
	for _, bk := range []struct {
		name string
		mk   func(*verilog.Netlist) *sim.Simulator
	}{{"interp", sim.New}, {"compiled", sim.NewCompiled}} {
		b.Run(bk.name, func(b *testing.B) {
			s := bk.mk(nl)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}

// BenchmarkFPVProve measures exhaustive model checking of a true
// property, per execution backend.
func BenchmarkFPVProve(b *testing.B) {
	nl, err := verilog.ElaborateSource(bench.TrainArbiter, "arb2")
	if err != nil {
		b.Fatal(err)
	}
	for _, backend := range []string{fpv.BackendInterp, fpv.BackendCompiled} {
		b.Run(backend, func(b *testing.B) {
			eng := fpv.NewEngine()
			for i := 0; i < b.N; i++ {
				r := eng.VerifySource(context.Background(), nl, "rst == 1 |=> gnt_ == 0", fpv.Options{Backend: backend})
				if r.Status != fpv.StatusProven {
					b.Fatalf("unexpected status %v", r.Status)
				}
			}
		})
	}
}

// BenchmarkFPVBounded measures a bounded search (sampled inputs + random
// hunt) on the widest corpus design, per execution backend.
func BenchmarkFPVBounded(b *testing.B) {
	d := bench.TestCorpus()[23]
	nl, err := verilog.ElaborateSource(d.Source, "")
	if err != nil {
		b.Fatal(err)
	}
	out := nl.Nets[nl.Outputs[0]].Name
	src := "1 |-> " + out + " == " + out + ";"
	for _, backend := range []string{fpv.BackendInterp, fpv.BackendCompiled} {
		b.Run(backend, func(b *testing.B) {
			eng := fpv.NewEngine()
			for i := 0; i < b.N; i++ {
				r := eng.VerifySource(context.Background(), nl, src, fpv.Options{
					MaxProductStates: 2000, MaxInputBits: 8, MaxInputSamples: 12,
					RandomRuns: 24, RandomDepth: 48, Backend: backend,
				})
				if r.Status == fpv.StatusError {
					b.Fatalf("unexpected error: %v", r.Err)
				}
			}
		})
	}
}

// BenchmarkMineGoldMine measures the decision-tree miner end to end.
func BenchmarkMineGoldMine(b *testing.B) {
	nl, err := verilog.ElaborateSource(bench.TrainArbiter, "arb2")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := mine.GoldMine(context.Background(), nl, mine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate measures one 5-shot generation call (prompt build +
// decode), excluding verification.
func BenchmarkGenerate(b *testing.B) {
	e := experiment(b)
	model := llm.New(llm.GPT4o())
	design := e.Corpus[0]
	prompt := llm.BuildPrompt(e.ICL, design.Source, model.Profile.ContextWindow)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Generate(context.Background(), prompt, llm.GenOptions{Shots: 5, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
