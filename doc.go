// Package assertionbench is a from-scratch Go reproduction of "Are LLMs
// Ready for Practical Adoption for Assertion Generation?" (Pulavarthi,
// Nandal, Dan, Pal — DATE 2025): the AssertionBench benchmark, the
// evaluation pipeline for COTS LLMs, and the fine-tuned AssertionLLM —
// including every substrate the paper depends on (Verilog front end,
// cycle-accurate simulator, SVA subset, formal property verification
// engine, GOLDMINE/HARM-style assertion miners, and a simulated LLM
// substrate with calibrated per-model error channels).
//
// This root package is the supported public API. Everything under
// internal/ is an implementation detail with no stability guarantee; the
// façade re-exports the system behind three deliberate contracts:
//
//   - Pluggable sources and sinks. A [Generator] is any assertion source
//     — a simulated COTS model ([NewModelGenerator]), a fine-tuned
//     AssertionLLM ([Benchmark.AssertionLLM]), a classical miner
//     ([NewGoldMineGenerator], [NewHarmGenerator]), or a caller's own
//     implementation — and a [Verifier] is any formal stage. Every source
//     runs through the identical pipeline (corrector, FPV, metrics,
//     worker pool), which is what makes miner-vs-LLM comparisons
//     apples-to-apples.
//
//   - Context everywhere. Each API that does real work takes a
//     [context.Context], plumbed through the worker pool, the generation
//     loops, and the FPV search loops, so cancellation and deadlines take
//     effect mid-search, not between corpus entries.
//
//   - Streaming and batch, one implementation. [Runner.Stream] yields
//     per-design outcomes in corpus order the moment each is ready, as an
//     iter.Seq2; [Runner.Run] is a thin collector over the same stream.
//     At equal seed the stream is identical for any worker count, and
//     shard streams concatenate to the unsharded run — determinism
//     guarantees are test-enforced across both modes.
//
// Verification of a design's candidate list is batched by default: all
// its assertions share one reachability exploration of the design's
// state space (cached across runs under a memory bound), which is what
// keeps the verdict matrix FPV-bound pass fast. [RunOptions.Batch] /
// [VerifyOptions.Batch] select the per-property reference search
// instead; verdicts are bit-identical either way, enforced by the
// differential self-check ([SelfCheck], oracle 5).
//
// A minimal evaluation:
//
//	b, _ := assertionbench.Load(ctx, assertionbench.Options{})
//	gen := assertionbench.NewModelGenerator(assertionbench.GPT4o())
//	r := assertionbench.NewRunner(gen, b, assertionbench.RunOptions{Shots: 5})
//	for outcome, err := range r.Stream(ctx) {
//		...
//	}
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and substitution arguments, and EXPERIMENTS.md for
// paper-vs-measured notes on every table and figure. The root-level
// benchmarks (bench_test.go) regenerate each of them:
//
//	go test -bench=BenchmarkFigure6 -benchmem .
package assertionbench
