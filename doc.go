// Package assertionbench is a from-scratch Go reproduction of "Are LLMs
// Ready for Practical Adoption for Assertion Generation?" (Pulavarthi,
// Nandal, Dan, Pal — DATE 2025): the AssertionBench benchmark, the
// evaluation pipeline for COTS LLMs, and the fine-tuned AssertionLLM —
// including every substrate the paper depends on (Verilog front end,
// cycle-accurate simulator, SVA subset, formal property verification
// engine, GOLDMINE/HARM-style assertion miners, and a simulated LLM
// substrate with calibrated per-model error channels).
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and substitution arguments, and EXPERIMENTS.md for
// paper-vs-measured results of every table and figure. The root-level
// benchmarks (bench_test.go) regenerate each of them:
//
//	go test -bench=BenchmarkFigure6 -benchmem .
package assertionbench
