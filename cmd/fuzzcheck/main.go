// Command fuzzcheck runs the differential verification harness: seeded
// random well-formed designs and SVA properties cross-checked through
// eleven oracles (print/parse round-trip, sim-vs-monitor-vs-FPV
// agreement with counter-example replay, sequential/parallel/sharded
// stream determinism, compiled-vs-interpreted backend identity,
// batched-vs-per-property FPV identity, cone-reduced-vs-full-design
// semantic agreement, bit-sliced-vs-scalar FPV identity,
// static-pass-vs-pure-search semantic agreement,
// disk-served-vs-store-free FPV identity through the persistent
// artifact store, dispatch-order independence of the scheduled
// evaluation stream, and fault-tolerance convergence — injected faults
// absorbed by retries, surfaced by the continue policy, and healed by
// a manifest resume — against the fault-free stream). A clean
// exit means every generated scenario agreed AND every oracle actually
// ran — an oracle that checked nothing is reported and fails the run,
// so a refactor cannot silently disconnect a cross-check;
// disagreements are shrunk, dumped as .v/.sva reproduction pairs, and
// fail the run. Ctrl-C cancels gracefully.
//
// Usage:
//
//	fuzzcheck -n 200 -seed 1
//	fuzzcheck -n 50 -seed 7 -props 5 -dump ./fuzz-crashes
//
// Exit status is 0 when every oracle ran and agreed, 1 on disagreement,
// an idle oracle, or interruption, 2 on usage or harness errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"assertionbench"
	"assertionbench/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fuzzcheck: ")
	n := flag.Int("n", 200, "number of generated design scenarios")
	seed := flag.Int64("seed", 1, "generation seed (a run is a pure function of -n/-seed/-props)")
	props := flag.Int("props", 3, "random properties per design")
	dump := flag.String("dump", "", "directory for .v/.sva reproduction pairs on disagreement")
	short := flag.Bool("short", false, "trimmed per-design budgets (CI smoke mode)")
	flag.Parse()
	if *n <= 0 {
		cliutil.Fatalf("-n %d: scenario count must be positive", *n)
	}
	if *props <= 0 {
		cliutil.Fatalf("-props %d: property count must be positive", *props)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	report, err := assertionbench.SelfCheck(ctx, assertionbench.SelfCheckOptions{
		Scenarios:      *n,
		PropsPerDesign: *props,
		Seed:           *seed,
		DumpDir:        *dump,
		Short:          *short,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			log.Fatalf("interrupted after %d of %d scenarios", report.Scenarios, *n)
		}
		cliutil.Fatal(err)
	}
	fmt.Printf("scenarios:        %d (seed %d)\n", report.Scenarios, *seed)
	fmt.Printf("properties:       %d (%d exhaustive, %d counter-examples replayed)\n",
		report.Properties, report.Exhaustive, report.CEXs)
	fmt.Print("verdicts:        ")
	for _, k := range []string{"proven", "vacuous", "bounded_pass", "cex"} {
		if n := report.Verdicts[k]; n > 0 {
			fmt.Printf(" %s=%d", k, n)
		}
	}
	fmt.Println()
	fmt.Printf("backend checks:   %d (compiled vs interpreted)\n", report.BackendChecks)
	fmt.Printf("batch checks:     %d (shared-graph batched vs per-property)\n", report.BatchChecks)
	fmt.Printf("cone checks:      %d (cone-reduced vs full-design)\n", report.ConeChecks)
	fmt.Printf("sliced checks:    %d (64-way bit-sliced vs scalar)\n", report.SlicedChecks)
	fmt.Printf("static checks:    %d (static pass vs pure search, %d discharged without search)\n",
		report.StaticChecks, report.StaticDischarged)
	fmt.Printf("store checks:     %d (disk-served vs store-free, %d blobs served from disk)\n",
		report.StoreChecks, report.StoreLoads)
	fmt.Printf("determinism runs: %d\n", report.DeterminismRuns)
	fmt.Printf("sched checks:     %d (cost/contiguous dispatch vs sequential, sharded concat)\n", report.SchedChecks)
	fmt.Printf("fault checks:     %d (injected faults: retry absorption, continue policy, manifest resume)\n", report.FaultChecks)
	// A silent zero is as bad as a disagreement: it means an oracle was
	// disconnected, not that the code under test is healthy.
	idle := 0
	for _, o := range []struct {
		name string
		n    int
	}{
		{"roundtrip/agreement (properties)", report.Properties},
		{"backend", report.BackendChecks},
		{"batch", report.BatchChecks},
		{"cone", report.ConeChecks},
		{"sliced", report.SlicedChecks},
		{"static", report.StaticChecks},
		{"store", report.StoreChecks},
		{"store disk loads", report.StoreLoads},
		{"determinism", report.DeterminismRuns},
		{"sched", report.SchedChecks},
		{"fault", report.FaultChecks},
	} {
		if o.n == 0 {
			fmt.Printf("oracle %s ran 0 checks\n", o.name)
			idle++
		}
	}
	if report.OK() {
		if idle > 0 {
			os.Exit(1)
		}
		fmt.Println("all oracles agree")
		return
	}
	fmt.Printf("\n%d DISAGREEMENT(S):\n", len(report.Disagreements))
	for _, d := range report.Disagreements {
		fmt.Println("  " + d)
	}
	os.Exit(1)
}
