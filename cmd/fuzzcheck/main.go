// Command fuzzcheck runs the differential verification harness: seeded
// random well-formed designs and SVA properties cross-checked through
// seven oracles (print/parse round-trip, sim-vs-monitor-vs-FPV agreement
// with counter-example replay, sequential/parallel/sharded stream
// determinism, compiled-vs-interpreted backend identity,
// batched-vs-per-property FPV identity, cone-reduced-vs-full-design
// semantic agreement, and bit-sliced-vs-scalar FPV identity). A clean
// exit means every generated scenario agreed;
// disagreements are shrunk, dumped as .v/.sva reproduction pairs, and
// fail the run. Ctrl-C cancels gracefully.
//
// Usage:
//
//	fuzzcheck -n 200 -seed 1
//	fuzzcheck -n 50 -seed 7 -props 5 -dump ./fuzz-crashes
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"assertionbench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fuzzcheck: ")
	n := flag.Int("n", 200, "number of generated design scenarios")
	seed := flag.Int64("seed", 1, "generation seed (a run is a pure function of -n/-seed/-props)")
	props := flag.Int("props", 3, "random properties per design")
	dump := flag.String("dump", "", "directory for .v/.sva reproduction pairs on disagreement")
	short := flag.Bool("short", false, "trimmed per-design budgets (CI smoke mode)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	report, err := assertionbench.SelfCheck(ctx, assertionbench.SelfCheckOptions{
		Scenarios:      *n,
		PropsPerDesign: *props,
		Seed:           *seed,
		DumpDir:        *dump,
		Short:          *short,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			log.Fatalf("interrupted after %d of %d scenarios", report.Scenarios, *n)
		}
		log.Fatal(err)
	}
	fmt.Printf("scenarios:        %d (seed %d)\n", report.Scenarios, *seed)
	fmt.Printf("properties:       %d (%d exhaustive, %d counter-examples replayed)\n",
		report.Properties, report.Exhaustive, report.CEXs)
	fmt.Print("verdicts:        ")
	for _, k := range []string{"proven", "vacuous", "bounded_pass", "cex"} {
		if n := report.Verdicts[k]; n > 0 {
			fmt.Printf(" %s=%d", k, n)
		}
	}
	fmt.Println()
	fmt.Printf("backend checks:   %d (compiled vs interpreted)\n", report.BackendChecks)
	fmt.Printf("batch checks:     %d (shared-graph batched vs per-property)\n", report.BatchChecks)
	fmt.Printf("cone checks:      %d (cone-reduced vs full-design)\n", report.ConeChecks)
	fmt.Printf("sliced checks:    %d (64-way bit-sliced vs scalar)\n", report.SlicedChecks)
	fmt.Printf("determinism runs: %d\n", report.DeterminismRuns)
	if report.OK() {
		fmt.Println("all oracles agree")
		return
	}
	fmt.Printf("\n%d DISAGREEMENT(S):\n", len(report.Disagreements))
	for _, d := range report.Disagreements {
		fmt.Println("  " + d)
	}
	os.Exit(1)
}
