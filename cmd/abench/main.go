// Command abench runs the AssertionBench COTS evaluation (the paper's
// Fig. 4 pipeline) for one or all models and prints the Pass/CEX/Error
// metrics per k-shot setting. Ctrl-C cancels gracefully: in-flight
// design jobs finish, everything else stops.
//
// Usage:
//
//	abench                      # all four COTS models, 1- and 5-shot
//	abench -model gpt4o         # one model
//	abench -designs 20 -seed 7  # quick subset
//	abench -per-design          # per-design verdict breakdown
//	abench -stream              # print outcomes as designs complete
//	abench -workers 8           # evaluation worker-pool size
//	abench -shard 1/4           # evaluate the 2nd of 4 corpus shards
//	abench -cache-dir /var/abench-cache  # persistent artifact store: start warm
//	abench -deadline 2m         # anytime mode: bounded verdicts at the deadline
//	abench -design-budget 5s    # cap each design's verification wall clock
//	abench -dispatch contiguous # scheduling baseline (default: cost)
//	abench -retries 2           # retry transient per-design failures with backoff
//	abench -error-policy continue  # stream failed designs as errored outcomes
//	abench -resume -cache-dir D # skip designs a previous run already decided
//	abench -inject panic:3      # deterministic fault injection (chaos testing)
//
// Exit status is 0 on success, 1 on interruption or when any design
// errored under -error-policy continue (after the full output), 2 on
// usage, flag or design errors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"assertionbench"
	"assertionbench/internal/cliutil"
	"assertionbench/internal/faultinject"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("abench: ")
	model := flag.String("model", "", "restrict to one model: gpt3.5|gpt4o|codellama|llama3")
	seed := flag.Int64("seed", 1, "experiment seed")
	designs := flag.Int("designs", 0, "limit test designs (0 = all 100)")
	perDesign := flag.Bool("per-design", false, "print per-design verdicts")
	stream := flag.Bool("stream", false, "print each design outcome the moment it completes")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	workers := flag.Int("workers", 0, "evaluation worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
	dispatch := flag.String("dispatch", "", "worker-pool dispatch mode: cost (default; cost-model work stealing), contiguous (balanced static slices) or fifo (shared queue) — results are identical, only latency differs")
	deadline := flag.Duration("deadline", 0, "anytime run budget: at expiry, completed designs keep their verdicts and the rest come back truncated/unknown (0 = off)")
	designBudget := flag.Duration("design-budget", 0, "per-design verification wall-clock budget; undecided assertions come back unknown (0 = off)")
	shard := flag.String("shard", "", "evaluate one corpus shard, as index/count (e.g. 0/4)")
	backend := flag.String("backend", "", "execution backend: compiled (default) or interp (reference tree-walk)")
	batch := flag.String("batch", "", "batched FPV over a shared reachability graph: auto (default) or off (per-property reference)")
	cone := flag.String("cone", "", "cone-of-influence reduction: auto (default) or off (full-design reference)")
	slices := flag.String("slices", "", "64-way bit-parallel bounded exploration: auto (default) or off (scalar reference)")
	static := flag.String("static", "", "static pre-verification pass: auto (default) or off (pure-search reference)")
	cacheDir := flag.String("cache-dir", "", "persistent artifact store directory: compiled programs, reachability graphs and the cost journal are read from and written to it, so repeated invocations start warm (empty = off)")
	errorPolicy := flag.String("error-policy", "", "what a failed design job does to the run: fail (default; stop at the first error) or continue (stream it as an errored outcome and finish)")
	retries := flag.Int("retries", 0, "retry budget for transient per-design failures, each retry after a deterministic seeded backoff (0 = no retry)")
	resume := flag.Bool("resume", false, "serve designs a previous run over the same corpus, seed and options already decided from the run manifest and evaluate only the rest (requires -cache-dir)")
	inject := flag.String("inject", "", "deterministic fault-injection plan, comma-separated mode:index[:attempts[:delay]] rules (modes: panic, error, delay) — for chaos testing the retry/error-policy machinery")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	shardIndex, shardCount, err := assertionbench.ParseShard(*shard)
	if err != nil {
		cliutil.Fatal(err)
	}
	if *resume && *cacheDir == "" {
		cliutil.Fatal(errors.New("-resume needs -cache-dir: the run manifest lives in the artifact store"))
	}
	plan, err := faultinject.ParseSpec(*inject)
	if err != nil {
		cliutil.Fatal(err)
	}
	defer plan.Install()()
	b, err := assertionbench.Load(ctx, assertionbench.Options{Seed: *seed, MaxDesigns: *designs})
	if err != nil {
		fatal(err)
	}
	profiles := assertionbench.Profiles()
	if *model != "" {
		p, err := assertionbench.ProfileByName(*model)
		if err != nil {
			cliutil.Fatal(err)
		}
		profiles = []assertionbench.Profile{p}
	}
	type jsonRow struct {
		Model   string                 `json:"model"`
		Shots   int                    `json:"shots"`
		Metrics assertionbench.Metrics `json:"metrics"`
	}
	var rows []jsonRow
	errored := 0
	for _, p := range profiles {
		for _, k := range []int{1, 5} {
			runner := assertionbench.NewRunner(assertionbench.NewModelGenerator(p), b, assertionbench.RunOptions{
				Shots:        k,
				Seed:         *seed,
				UseCorrector: true,
				Workers:      *workers,
				Dispatch:     *dispatch,
				Deadline:     *deadline,
				DesignBudget: *designBudget,
				CacheDir:     *cacheDir,
				ErrorPolicy:  *errorPolicy,
				Retries:      *retries,
				Resume:       *resume,
				ShardIndex:   shardIndex,
				ShardCount:   shardCount,
				Backend:      *backend,
				Batch:        *batch,
				Cone:         *cone,
				Slices:       *slices,
				Static:       *static,
			})
			var r assertionbench.RunResult
			if *stream {
				// Incremental mode: outcomes print as designs finish; the
				// collected totals are identical to a batch run. With
				// -json the progress lines go to stderr so stdout stays
				// parseable.
				progress := os.Stdout
				if *asJSON {
					progress = os.Stderr
				}
				r = assertionbench.RunResult{Generator: p.Name(), Shots: k}
				for o, err := range runner.Stream(ctx) {
					if err != nil {
						fatal(err)
					}
					fmt.Fprintf(progress, "%-14s %d-shot  #%03d %-28s %v%s\n", p.Name(), k, o.Index, o.Design, o.Metrics(), truncMark(o))
					r.Metrics.Merge(o.Metrics())
					r.Outcomes = append(r.Outcomes, o)
				}
			} else {
				r, err = runner.Run(ctx)
				if err != nil {
					fatal(err)
				}
			}
			errored += r.Metrics.NErrored
			if *asJSON {
				rows = append(rows, jsonRow{Model: p.Name(), Shots: k, Metrics: r.Metrics})
				continue
			}
			fmt.Printf("%-14s %d-shot: %v\n", p.Name(), k, r.Metrics)
			// Stream mode already printed one line per design; don't
			// repeat them in a second format.
			if *perDesign && !*stream {
				for _, d := range r.Outcomes {
					fmt.Printf("    %-28s %v%s\n", d.Design, d.Metrics(), truncMark(d))
				}
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			cliutil.Fatal(err)
		}
	}
	// Under -error-policy continue the run finishes and prints everything,
	// but errored designs make the invocation non-zero — scripts must not
	// mistake a partially failed sweep for a clean one.
	if errored > 0 {
		log.Printf("%d design job(s) errored; metrics above exclude them", errored)
		os.Exit(1)
	}
}

// truncMark flags outcomes an anytime budget cut short or a continue-
// policy run converted from a failed job.
func truncMark(o assertionbench.DesignOutcome) string {
	s := ""
	if o.Truncated {
		s += " [truncated]"
	}
	if o.Errored {
		s += " [errored: " + o.Err + "]"
	}
	return s
}

// fatal distinguishes interruption (exit 1, partial results are the
// user's doing) from real failures (exit 2, the shared CLI convention).
func fatal(err error) {
	if errors.Is(err, context.Canceled) {
		log.Fatal("interrupted; partial results discarded")
	}
	cliutil.Fatal(err)
}
