// Command abench runs the AssertionBench COTS evaluation (the paper's
// Fig. 4 pipeline) for one or all models and prints the Pass/CEX/Error
// metrics per k-shot setting.
//
// Usage:
//
//	abench                      # all four COTS models, 1- and 5-shot
//	abench -model gpt4o         # one model
//	abench -designs 20 -seed 7  # quick subset
//	abench -per-design          # per-design verdict breakdown
//	abench -workers 8           # evaluation worker-pool size
//	abench -shard 1/4           # evaluate the 2nd of 4 corpus shards
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"assertionbench/internal/bench"
	"assertionbench/internal/eval"
	"assertionbench/internal/llm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("abench: ")
	model := flag.String("model", "", "restrict to one model: gpt3.5|gpt4o|codellama|llama3")
	seed := flag.Int64("seed", 1, "experiment seed")
	designs := flag.Int("designs", 0, "limit test designs (0 = all 100)")
	perDesign := flag.Bool("per-design", false, "print per-design verdicts")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	workers := flag.Int("workers", 0, "evaluation worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
	shard := flag.String("shard", "", "evaluate one corpus shard, as index/count (e.g. 0/4)")
	flag.Parse()

	shardIndex, shardCount, err := bench.ParseShard(*shard)
	if err != nil {
		log.Fatal(err)
	}
	e, err := eval.NewExperiment(eval.ExperimentOptions{
		Seed:       *seed,
		MaxDesigns: *designs,
		Workers:    *workers,
		ShardIndex: shardIndex,
		ShardCount: shardCount,
	})
	if err != nil {
		log.Fatal(err)
	}
	profiles := llm.COTSProfiles()
	if *model != "" {
		var filtered []llm.Profile
		for _, p := range profiles {
			if matches(p.Name, *model) {
				filtered = append(filtered, p)
			}
		}
		if len(filtered) == 0 {
			log.Fatalf("unknown model %q", *model)
		}
		profiles = filtered
	}
	type jsonRow struct {
		Model   string       `json:"model"`
		Shots   int          `json:"shots"`
		Metrics eval.Metrics `json:"metrics"`
	}
	var rows []jsonRow
	for _, p := range profiles {
		for _, k := range []int{1, 5} {
			r, err := e.RunCOTS(p, k)
			if err != nil {
				log.Fatal(err)
			}
			if *asJSON {
				rows = append(rows, jsonRow{Model: p.Name, Shots: k, Metrics: r.Metrics})
				continue
			}
			fmt.Printf("%-14s %d-shot: %v\n", p.Name, k, r.Metrics)
			if *perDesign {
				for _, d := range r.Designs {
					var m eval.Metrics
					for _, v := range d.Verdicts {
						m.Add(v)
					}
					fmt.Printf("    %-28s %v\n", d.Design, m)
				}
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			log.Fatal(err)
		}
	}
}

func matches(profileName, arg string) bool {
	switch arg {
	case "gpt3.5", "gpt-3.5":
		return profileName == "GPT-3.5"
	case "gpt4o", "gpt-4o":
		return profileName == "GPT-4o"
	case "codellama", "codellama2":
		return profileName == "CodeLLaMa 2"
	case "llama3", "llama3-70b":
		return profileName == "LLaMa3-70B"
	}
	return false
}
