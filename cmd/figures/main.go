// Command figures regenerates every table and figure of the paper as
// text: Table I, Figure 3 (corpus sizes), Figures 6/7 (COTS evaluation),
// Figure 9 (AssertionLLM), and the Observation 1-6 headline statistics.
// Ctrl-C cancels the evaluation sweep gracefully.
//
// Usage:
//
//	figures [-seed N] [-designs N] [-workers N] [-only table1|fig3|fig6|fig7|fig9|obs]
//
// Exit status is 0 on success, 1 on interruption, 2 on usage or flag
// errors — an unknown -only value is rejected before any evaluation
// runs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"assertionbench"
	"assertionbench/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	seed := flag.Int64("seed", 1, "experiment seed")
	designs := flag.Int("designs", 0, "limit the number of test designs (0 = all 100)")
	only := flag.String("only", "", "emit a single artifact: table1|fig3|fig6|fig7|fig9|obs")
	workers := flag.Int("workers", 0, "evaluation worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	// Reject a bad -only before the evaluation sweep, not after minutes
	// of work have already printed.
	switch *only {
	case "", "table1", "fig3", "fig6", "fig7", "fig9", "obs":
	default:
		cliutil.Fatalf("unknown artifact %q (want table1|fig3|fig6|fig7|fig9|obs)", *only)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	b, err := assertionbench.Load(ctx, assertionbench.Options{Seed: *seed, MaxDesigns: *designs, Workers: *workers})
	if err != nil {
		fatal(err)
	}

	needCOTS := *only == "" || *only == "fig6" || *only == "fig7" || *only == "obs"
	needFT := *only == "" || *only == "fig9" || *only == "obs"

	var cots, ft []assertionbench.RunResult
	if needCOTS {
		if cots, err = b.RunAllCOTS(ctx); err != nil {
			fatal(err)
		}
	}
	if needFT {
		if ft, err = b.RunAllFinetuned(ctx); err != nil {
			fatal(err)
		}
	}

	emit := func(name, text string) {
		if *only != "" && *only != name {
			return
		}
		fmt.Println(text)
	}
	emit("table1", assertionbench.TableI(b.Corpus()))
	emit("fig3", assertionbench.Figure3(b.Corpus()))
	emit("fig6", assertionbench.Figure6(cots))
	emit("fig7", assertionbench.Figure7(cots))
	emit("fig9", assertionbench.Figure9(ft))
	emit("obs", assertionbench.Observations(cots, ft))
}

// fatal distinguishes interruption (exit 1) from real failures (exit 2,
// the shared CLI convention).
func fatal(err error) {
	if errors.Is(err, context.Canceled) {
		log.Fatal("interrupted")
	}
	cliutil.Fatal(err)
}
