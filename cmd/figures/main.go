// Command figures regenerates every table and figure of the paper as
// text: Table I, Figure 3 (corpus sizes), Figures 6/7 (COTS evaluation),
// Figure 9 (AssertionLLM), and the Observation 1-6 headline statistics.
//
// Usage:
//
//	figures [-seed N] [-designs N] [-workers N] [-only table1|fig3|fig6|fig7|fig9|obs]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"assertionbench/internal/eval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	seed := flag.Int64("seed", 1, "experiment seed")
	designs := flag.Int("designs", 0, "limit the number of test designs (0 = all 100)")
	only := flag.String("only", "", "emit a single artifact: table1|fig3|fig6|fig7|fig9|obs")
	workers := flag.Int("workers", 0, "evaluation worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	e, err := eval.NewExperiment(eval.ExperimentOptions{Seed: *seed, MaxDesigns: *designs, Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}

	needCOTS := *only == "" || *only == "fig6" || *only == "fig7" || *only == "obs"
	needFT := *only == "" || *only == "fig9" || *only == "obs"

	var cots, ft []eval.RunResult
	if needCOTS {
		if cots, err = e.RunAllCOTS(); err != nil {
			log.Fatal(err)
		}
	}
	if needFT {
		if ft, err = e.RunAllFinetuned(); err != nil {
			log.Fatal(err)
		}
	}

	emit := func(name, text string) {
		if *only != "" && *only != name {
			return
		}
		fmt.Println(text)
	}
	emit("table1", eval.TableI(e.Corpus))
	emit("fig3", eval.Figure3(e.Corpus))
	emit("fig6", eval.Figure6(cots))
	emit("fig7", eval.Figure7(cots))
	emit("fig9", eval.Figure9(ft))
	emit("obs", eval.Observations(cots, ft))
	if *only != "" {
		switch *only {
		case "table1", "fig3", "fig6", "fig7", "fig9", "obs":
		default:
			fmt.Fprintf(os.Stderr, "unknown artifact %q\n", *only)
			os.Exit(2)
		}
	}
}
