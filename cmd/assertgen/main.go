// Command assertgen generates assertions for a Verilog design with one of
// the simulated COTS models, mirroring the paper's Fig. 4 pipeline up to
// and including the syntax corrector.
//
// Usage:
//
//	assertgen -model gpt4o -shots 5 [-seed N] [-raw] design.v
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"assertionbench/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("assertgen: ")
	model := flag.String("model", "gpt4o", "model: gpt3.5|gpt4o|codellama|llama3")
	shots := flag.Int("shots", 1, "in-context examples (1..5)")
	seed := flag.Int64("seed", 1, "sampling seed")
	raw := flag.Bool("raw", false, "print the raw model output instead of corrected assertions")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: assertgen [-model M] [-shots K] design.v")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	id, err := core.ParseModel(*model)
	if err != nil {
		log.Fatal(err)
	}
	if *shots < 1 || *shots > 5 {
		log.Fatal("shots must be in 1..5")
	}
	b, err := core.LoadBenchmark(core.Options{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := core.Generate(id, string(src), b, *shots, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if *raw {
		fmt.Println(gen.Raw)
		return
	}
	for _, a := range gen.Corrected {
		fmt.Println(a)
	}
}
