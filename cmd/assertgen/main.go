// Command assertgen generates assertions for a Verilog design with one of
// the simulated COTS models, mirroring the paper's Fig. 4 pipeline up to
// and including the syntax corrector.
//
// Usage:
//
//	assertgen -model gpt4o -shots 5 [-seed N] [-raw] design.v
//
// Exit status is 0 on success, 2 on usage or design errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"assertionbench"
	"assertionbench/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("assertgen: ")
	model := flag.String("model", "gpt4o", "model: gpt3.5|gpt4o|codellama|llama3")
	shots := flag.Int("shots", 1, "in-context examples (1..5)")
	seed := flag.Int64("seed", 1, "sampling seed")
	raw := flag.Bool("raw", false, "print the uncorrected candidate lines")
	flag.Parse()
	if flag.NArg() != 1 {
		cliutil.Usage("usage: assertgen [-model M] [-shots K] design.v")
	}
	src := cliutil.ReadFile(flag.Arg(0))
	p, err := assertionbench.ProfileByName(*model)
	if err != nil {
		cliutil.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	b, err := assertionbench.Load(ctx, assertionbench.Options{Seed: *seed})
	if err != nil {
		cliutil.Fatal(err)
	}
	gen, err := b.GenerateAssertions(ctx, assertionbench.NewModelGenerator(p), string(src), *shots, *seed)
	if err != nil {
		cliutil.Fatal(err)
	}
	lines := gen.Assertions
	if !*raw {
		lines = assertionbench.CorrectAssertions(string(src), lines)
	}
	for _, a := range lines {
		fmt.Println(a)
	}
}
