// Command perfbench measures the cost-model work-stealing dispatcher
// against the contiguous-partition baseline, the static
// pre-verification pass against pure search, the batched
// shared-reachability verifier against per-property search, the
// compiled execution backend against the tree-walking reference
// interpreter, and the cone-of-influence + bit-sliced exploration
// against the full-design scalar engine, emitting a machine-readable
// report (BENCH_pr9.json in the repository root records the checked-in
// numbers):
//
//   - sim: simulator ns/cycle on a spread of corpus designs;
//   - fpv: the FPV-bound full-corpus pass — formal verification of every
//     (pre-generated, corrected) candidate assertion over the whole
//     corpus on one engine, reported as verdicts/second; generation and
//     correction are excluded so the section times verification alone.
//     Batched columns cover the cold pass (graphs built inside the timed
//     region) and the warm pass (populated graph cache);
//   - eval_full_corpus: the end-to-end evaluation pass (generation,
//     correction, verification) at the default worker-pool size, i.e.
//     the wall time a user sees for one (model, shot) sweep, batched and
//     per-property;
//   - sched: the same end-to-end pass under the cost-model work-stealing
//     dispatcher versus the contiguous-partition baseline, reported as
//     per-design completion-time p95/p99 — the tail a user waiting on
//     the slowest stragglers actually feels.
//
// Usage:
//
//	perfbench -baseline-ms 175.24 -out BENCH_pr9.json
//	perfbench -quick -min-batch-speedup 1.0   # CI smoke + regression gate
//	perfbench -quick -min-coi-speedup 1.0     # cone+sliced regression gate
//	perfbench -quick -min-static-speedup 1.0  # static pass no-regression gate
//	perfbench -quick -min-disk-speedup 1.0    # persistent-store warm-start gate
//	perfbench -quick -min-tail-speedup 1.0    # cost-dispatch tail-latency gate
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"assertionbench/internal/astore"
	"assertionbench/internal/bench"
	"assertionbench/internal/corrector"
	"assertionbench/internal/eval"
	"assertionbench/internal/fpv"
	"assertionbench/internal/llm"
	"assertionbench/internal/sim"
	"assertionbench/internal/verilog"
	"assertionbench/internal/vstatic"
)

type simRow struct {
	Design             string  `json:"design"`
	Cycles             int     `json:"cycles"`
	InterpNsPerCycle   float64 `json:"interp_ns_per_cycle"`
	CompiledNsPerCycle float64 `json:"compiled_ns_per_cycle"`
	Speedup            float64 `json:"speedup"`
}

type fpvSection struct {
	Designs                int     `json:"designs"`
	Verdicts               int     `json:"verdicts"`
	InterpMs               float64 `json:"interp_ms"`
	CompiledMs             float64 `json:"compiled_ms"`
	InterpVerdictsPerSec   float64 `json:"interp_verdicts_per_sec"`
	CompiledVerdictsPerSec float64 `json:"compiled_verdicts_per_sec"`
	Speedup                float64 `json:"speedup"`
	// Batched columns: the shared-reachability batched verifier on the
	// compiled backend. BatchedMs rebuilds every graph within the timed
	// region (a cold, single-sweep pass); BatchedWarmMs reuses a
	// populated graph cache (what the 2nd..Nth run of a model/shot sweep
	// sees). BatchSpeedup is per-property compiled / batched cold.
	BatchedMs             float64 `json:"batched_ms"`
	BatchedWarmMs         float64 `json:"batched_warm_ms"`
	BatchedVerdictsPerSec float64 `json:"batched_verdicts_per_sec"`
	BatchSpeedup          float64 `json:"batch_speedup"`
	// Cone/sliced attribution columns: the same batched cold pass with
	// the cone-of-influence reduction and the 64-way bit-sliced
	// exploration toggled independently. LegacyMs is cone, slices and the
	// static pass all off (the PR-5 engine configuration); ConeOnlyMs and
	// SlicedOnlyMs enable exactly one; BatchedMs above is the production
	// default (cone, slices and static all on).
	// CoiSpeedup is LegacyMs / BatchedMs — what the two optimizations
	// buy together on top of batching. BatchedDesignP95Ms is the 95th
	// percentile single-design latency inside the production cold pass
	// (tail designs are where cone reduction matters most).
	LegacyMs           float64 `json:"legacy_ms"`
	ConeOnlyMs         float64 `json:"cone_only_ms"`
	SlicedOnlyMs       float64 `json:"sliced_only_ms"`
	CoiSpeedup         float64 `json:"coi_speedup"`
	BatchedDesignP95Ms float64 `json:"batched_design_p95_ms"`
	// Static pre-verification columns: StaticOffMs is the production
	// batched cold pass with the static pass disabled; StaticDischarged
	// counts the properties the static pass settled without any search
	// (abstract-interpretation proof, vacuity, or replayed CEX) in the
	// production pass; StaticSpeedup is static_off_ms / batched_ms — what
	// the pass buys end to end (>= 1.0 means auto is no slower than off);
	// StaticAnalysisMs is the summed per-design ternary fixpoint latency,
	// the up-front cost FPV pays before any discharge can happen.
	StaticOffMs      float64 `json:"static_off_ms"`
	StaticDischarged int     `json:"static_discharged"`
	StaticSpeedup    float64 `json:"static_speedup"`
	StaticAnalysisMs float64 `json:"static_analysis_ms"`
	// Persistent artifact-store columns: DiskColdMs runs the production
	// batched pass through a fresh memory cache over an empty store
	// directory (every graph is built inside the timed region and written
	// behind to disk); DiskWarmMs runs it through another fresh memory
	// cache over the populated store, so every graph it serves is a disk
	// read — the "new process, warm disk" start -cache-dir exists for.
	// DiskSpeedup is cold/warm.
	DiskColdMs  float64 `json:"disk_cold_ms"`
	DiskWarmMs  float64 `json:"disk_warm_ms"`
	DiskSpeedup float64 `json:"disk_speedup"`
	// Optional externally measured baseline of the same pass on the
	// previous PR's engine (see -baseline-ms and EXPERIMENTS.md);
	// SpeedupVsBaseline compares it to the batched cold pass.
	BaselineMs        float64 `json:"baseline_ms,omitempty"`
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// NOTE: unlike BENCH_pr4.json's identically named fields (measured
// per-property, the only mode that existed), interp_ms and compiled_ms
// here run the DEFAULT configuration — batching on for both backends —
// so speedup isolates the backend at the current default. The
// per-property compiled time is carried explicitly in per_property_ms;
// compare that against BENCH_pr4's compiled_ms for the cross-PR
// trajectory.
type evalSection struct {
	Workers    int     `json:"workers"`
	InterpMs   float64 `json:"interp_ms"`
	CompiledMs float64 `json:"compiled_ms"`
	Speedup    float64 `json:"speedup"`
	// PerPropertyMs is the compiled backend with batching forced off;
	// BatchSpeedup relates it to CompiledMs (the batched default).
	PerPropertyMs float64 `json:"per_property_ms"`
	BatchSpeedup  float64 `json:"batch_speedup"`
}

// schedSection is the dispatch tail-latency comparison: the end-to-end
// evaluation pass run under the contiguous-partition baseline and the
// cost-model work-stealing dispatcher at the same worker count, with
// per-design completion times (time from run start to the design's
// verdicts landing) accumulated as minimums across alternating
// repetitions. The percentile columns are over designs, not assertions:
// p95 says when the 95th-fastest-finishing design was done, the number a
// consumer of the incremental stream actually waits on. TailSpeedup is
// contiguous p95 / cost p95.
type schedSection struct {
	Workers int `json:"workers"`
	Designs int `json:"designs"`
	// Total wall time of the pass under each dispatcher (min of reps).
	ContiguousMs float64 `json:"contiguous_ms"`
	CostMs       float64 `json:"cost_ms"`
	// Per-design completion-time percentiles under each dispatcher.
	ContiguousP95Ms float64 `json:"contiguous_design_p95_ms"`
	ContiguousP99Ms float64 `json:"contiguous_design_p99_ms"`
	CostP95Ms       float64 `json:"cost_design_p95_ms"`
	CostP99Ms       float64 `json:"cost_design_p99_ms"`
	TailSpeedup     float64 `json:"tail_speedup"`
}

type report struct {
	Description string `json:"description"`
	Host        struct {
		GoOS   string `json:"goos"`
		GoArch string `json:"goarch"`
		NumCPU int    `json:"num_cpu"`
	} `json:"host"`
	Quick            bool         `json:"quick"`
	Sim              []simRow     `json:"sim"`
	SimMedianSpeedup float64      `json:"sim_median_speedup"`
	FPV              fpvSection   `json:"fpv"`
	EvalFullCorpus   evalSection  `json:"eval_full_corpus"`
	Sched            schedSection `json:"sched"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("perfbench: ")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	quick := flag.Bool("quick", false, "CI smoke sizes (fewer cycles, truncated corpus)")
	seed := flag.Int64("seed", 1, "workload seed")
	baselineMs := flag.Float64("baseline-ms", 0, "externally measured previous-engine time for the fpv pass, recorded alongside the A/B numbers")
	minBatchSpeedup := flag.Float64("min-batch-speedup", 0, "exit non-zero if the batched fpv pass is below this speedup vs per-property (CI regression gate; 0 disables)")
	minCoiSpeedup := flag.Float64("min-coi-speedup", 0, "exit non-zero if the cone+sliced fpv pass is below this speedup vs the legacy full-design scalar pass (CI regression gate; 0 disables)")
	minStaticSpeedup := flag.Float64("min-static-speedup", 0, "exit non-zero if the production pass with the static pre-verification pass is below this speedup vs the same pass with it disabled (CI no-regression gate; 0 disables)")
	minStaticDischarged := flag.Float64("min-static-discharged", 0, "exit non-zero if fewer than this fraction of corpus properties discharge statically (0 disables)")
	cacheDir := flag.String("cache-dir", "", "persistent artifact store directory for the disk warm-start columns (default: a private temp dir, removed on exit)")
	minDiskSpeedup := flag.Float64("min-disk-speedup", 0, "exit non-zero if the disk-warm fpv pass is below this speedup vs the disk-cold pass (CI warm-start gate; 0 disables)")
	minTailSpeedup := flag.Float64("min-tail-speedup", 0, "exit non-zero if the cost-dispatched pass's per-design completion p95 is below this speedup vs the contiguous baseline (CI tail-latency gate; 0 disables)")
	flag.Parse()

	rep := report{Description: "cost-model work-stealing dispatch vs contiguous partition (per-design completion tail), persistent artifact store (disk-warm vs disk-cold FPV), static pre-verification vs pure search, cone-of-influence reduction and 64-way bit-sliced exploration vs the full-design scalar engine, batched FPV vs per-property search, compiled backend vs interpreter (PR 9)", Quick: *quick}
	rep.Host.GoOS, rep.Host.GoArch, rep.Host.NumCPU = runtime.GOOS, runtime.GOARCH, runtime.NumCPU()

	corpus := bench.TestCorpus()
	simCycles, evalDesigns := 200000, 0
	if *quick {
		simCycles, evalDesigns = 5000, 12
	}

	// --- sim ns/cycle over a spread of designs (small comb, mid seq,
	// the CAN CRC hot design, and the largest-LoC entry). ---
	picks := map[string]bool{corpus[23].Name: true}
	byLoC := append([]bench.Design(nil), corpus...)
	sort.Slice(byLoC, func(i, j int) bool { return byLoC[i].LoC > byLoC[j].LoC })
	picks[byLoC[0].Name] = true
	picks[byLoC[len(byLoC)/2].Name] = true
	picks[byLoC[len(byLoC)-1].Name] = true
	for _, d := range corpus {
		if !picks[d.Name] {
			continue
		}
		nl, err := verilog.ElaborateSource(d.Source, "")
		if err != nil {
			log.Fatalf("%s: %v", d.Name, err)
		}
		// Minimum of five interleaved measurements per backend: the work
		// is deterministic, so the minimum is the throttle-free estimate
		// on shared machines (the CI and dev containers burst-throttle
		// CPU, which stretches wall time by whole runs at a time).
		interp, compiled := math.Inf(1), math.Inf(1)
		for r := 0; r < 5; r++ {
			interp = math.Min(interp, timeSim(sim.New(nl), nl, simCycles, *seed))
			compiled = math.Min(compiled, timeSim(sim.NewCompiled(nl), nl, simCycles, *seed))
		}
		rep.Sim = append(rep.Sim, simRow{
			Design:             d.Name,
			Cycles:             simCycles,
			InterpNsPerCycle:   interp,
			CompiledNsPerCycle: compiled,
			Speedup:            round2(interp / compiled),
		})
		log.Printf("sim %-22s interp %7.1f ns/cycle  compiled %7.1f ns/cycle  (%.2fx)",
			d.Name, interp, compiled, interp/compiled)
	}
	speeds := make([]float64, len(rep.Sim))
	for i, r := range rep.Sim {
		speeds[i] = r.Speedup
	}
	sort.Float64s(speeds)
	rep.SimMedianSpeedup = speeds[len(speeds)/2]

	// --- FPV-bound full-corpus pass: pre-generate and correct every
	// candidate assertion (backend-independent), then time verification
	// alone. Verdicts are identical across backends by construction
	// (dverify oracle 4). ---
	gen := eval.NewModelGenerator(llm.GPT4o())
	icl := trainExamples()
	type vjob struct {
		d     bench.Design
		lines []string
	}
	var jobs []vjob
	verdicts := 0
	nDesigns := len(corpus)
	if evalDesigns > 0 && evalDesigns < nDesigns {
		nDesigns = evalDesigns
	}
	for gi, d := range corpus[:nDesigns] {
		nl, err := bench.Elaborate(d)
		if err != nil {
			log.Fatalf("%s: %v", d.Name, err)
		}
		out, err := gen.Generate(context.Background(), d, icl, eval.GenOptions{
			Shots: 5, Seed: *seed*1000003 + int64(gi)*7919 + 5})
		if err != nil {
			log.Fatalf("%s: %v", d.Name, err)
		}
		fixed, _ := corrector.New(nl).CorrectAll(out.Assertions)
		jobs = append(jobs, vjob{d, fixed})
		verdicts += len(fixed)
	}
	verifyRun := func(backend string) time.Duration {
		eng := fpv.NewEngine()
		opt := fpv.Options{MaxProductStates: 3000, MaxInputBits: 8, MaxInputSamples: 12,
			RandomRuns: 128, RandomDepth: 64, Seed: *seed, Backend: backend, Batch: fpv.BatchOff}
		start := time.Now()
		for _, j := range jobs {
			nl, _ := bench.Elaborate(j.d)
			for _, line := range j.lines {
				eng.VerifySource(context.Background(), nl, line, opt)
			}
		}
		return time.Since(start)
	}
	// The batched pass: one engine, each design's candidate list through
	// the shared reachability graph. warm reuses a populated cache (what
	// later runs of a sweep see); cold rebuilds every graph inside the
	// timed region. cone/slices select the engine configuration; the
	// perDesign slice, when non-nil, accumulates the per-design minimum
	// wall time for the tail-latency column.
	batchCache := &fpv.GraphCache{}
	staticDischarged := 0
	batchRun := func(warm bool, cone, slices, static string, perDesign []time.Duration) time.Duration {
		eng := fpv.NewEngine()
		eng.Graphs = batchCache
		if !warm {
			batchCache.Purge()
		}
		opt := fpv.Options{MaxProductStates: 3000, MaxInputBits: 8, MaxInputSamples: 12,
			RandomRuns: 128, RandomDepth: 64, Seed: *seed, Backend: fpv.BackendCompiled,
			Cone: cone, Slices: slices, Static: static}
		nStatic := 0
		start := time.Now()
		for ji, j := range jobs {
			nl, _ := bench.Elaborate(j.d)
			ds := time.Now()
			for _, r := range eng.VerifyAll(context.Background(), nl, j.lines, opt) {
				if r.Static {
					nStatic++
				}
			}
			if perDesign != nil {
				perDesign[ji] = min(perDesign[ji], time.Since(ds))
			}
		}
		if static != fpv.StaticOff {
			staticDischarged = nStatic
		}
		return time.Since(start)
	}
	// The disk-tier pass: a fresh engine and a fresh memory cache per
	// repetition simulate a new process attaching -cache-dir. A cold
	// repetition starts from an empty store directory and writes every
	// exploration behind; a warm one reads every graph back from disk.
	diskDir := *cacheDir
	if diskDir == "" {
		d, err := os.MkdirTemp("", "perfbench-store-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(d)
		diskDir = d
	}
	diskRun := func(warm bool) time.Duration {
		if !warm {
			if err := os.RemoveAll(diskDir); err != nil {
				log.Fatal(err)
			}
		}
		store, err := astore.Open(diskDir)
		if err != nil {
			log.Fatal(err)
		}
		eng := fpv.NewEngine()
		cache := &fpv.GraphCache{}
		cache.SetDisk(store)
		eng.Graphs = cache
		opt := fpv.Options{MaxProductStates: 3000, MaxInputBits: 8, MaxInputSamples: 12,
			RandomRuns: 128, RandomDepth: 64, Seed: *seed, Backend: fpv.BackendCompiled}
		start := time.Now()
		for _, j := range jobs {
			nl, _ := bench.Elaborate(j.d)
			eng.VerifyAll(context.Background(), nl, j.lines, opt)
		}
		return time.Since(start)
	}
	// The ternary fixpoint alone, forced cold per design (vstatic.For
	// memoizes on the interned netlist, so time the unmemoized entry).
	staticAnalysisRun := func() time.Duration {
		start := time.Now()
		for _, j := range jobs {
			nl, _ := bench.Elaborate(j.d)
			vstatic.Analyze(nl)
		}
		return time.Since(start)
	}
	verifyRun(fpv.BackendCompiled) // warm caches and lowerings
	perDesign := make([]time.Duration, len(jobs))
	for i := range perDesign {
		perDesign[i] = 1 << 62
	}
	iDur, cDur := time.Duration(1<<62), time.Duration(1<<62)
	bDur, wDur := time.Duration(1<<62), time.Duration(1<<62)
	lgDur, coDur, soDur := time.Duration(1<<62), time.Duration(1<<62), time.Duration(1<<62)
	sfDur, saDur := time.Duration(1<<62), time.Duration(1<<62)
	dcDur, dwDur := time.Duration(1<<62), time.Duration(1<<62)
	for r := 0; r < 7; r++ {
		iDur = min(iDur, verifyRun(fpv.BackendInterp))
		cDur = min(cDur, verifyRun(fpv.BackendCompiled))
		lgDur = min(lgDur, batchRun(false, fpv.ConeOff, fpv.SlicesOff, fpv.StaticOff, nil))
		coDur = min(coDur, batchRun(false, fpv.ConeAuto, fpv.SlicesOff, fpv.StaticAuto, nil))
		soDur = min(soDur, batchRun(false, fpv.ConeOff, fpv.SlicesAuto, fpv.StaticAuto, nil))
		sfDur = min(sfDur, batchRun(false, fpv.ConeAuto, fpv.SlicesAuto, fpv.StaticOff, nil))
		bDur = min(bDur, batchRun(false, fpv.ConeAuto, fpv.SlicesAuto, fpv.StaticAuto, perDesign))
		wDur = min(wDur, batchRun(true, fpv.ConeAuto, fpv.SlicesAuto, fpv.StaticAuto, nil))
		saDur = min(saDur, staticAnalysisRun())
		dcDur = min(dcDur, diskRun(false))
		dwDur = min(dwDur, diskRun(true))
	}
	sortedPD := append([]time.Duration(nil), perDesign...)
	sort.Slice(sortedPD, func(i, j int) bool { return sortedPD[i] < sortedPD[j] })
	p95 := sortedPD[(len(sortedPD)*95+99)/100-1]
	rep.FPV = fpvSection{
		Designs:                nDesigns,
		Verdicts:               verdicts,
		InterpMs:               ms(iDur),
		CompiledMs:             ms(cDur),
		InterpVerdictsPerSec:   round2(float64(verdicts) / iDur.Seconds()),
		CompiledVerdictsPerSec: round2(float64(verdicts) / cDur.Seconds()),
		Speedup:                round2(float64(iDur) / float64(cDur)),
		BatchedMs:              ms(bDur),
		BatchedWarmMs:          ms(wDur),
		BatchedVerdictsPerSec:  round2(float64(verdicts) / bDur.Seconds()),
		BatchSpeedup:           round2(float64(cDur) / float64(bDur)),
		LegacyMs:               ms(lgDur),
		ConeOnlyMs:             ms(coDur),
		SlicedOnlyMs:           ms(soDur),
		CoiSpeedup:             round2(float64(lgDur) / float64(bDur)),
		BatchedDesignP95Ms:     ms(p95),
		StaticOffMs:            ms(sfDur),
		StaticDischarged:       staticDischarged,
		StaticSpeedup:          round2(float64(sfDur) / float64(bDur)),
		StaticAnalysisMs:       ms(saDur),
		DiskColdMs:             ms(dcDur),
		DiskWarmMs:             ms(dwDur),
		DiskSpeedup:            round2(float64(dcDur) / float64(dwDur)),
	}
	if *baselineMs > 0 {
		rep.FPV.BaselineMs = *baselineMs
		rep.FPV.SpeedupVsBaseline = round2(*baselineMs / ms(bDur))
	}
	log.Printf("fpv  %d verdicts: interp %.0f ms (%.0f/s), compiled per-property %.0f ms (%.0f/s), batched %.0f ms cold / %.0f ms warm (%.0f/s)  (batch %.2fx)",
		verdicts, ms(iDur), float64(verdicts)/iDur.Seconds(), ms(cDur), float64(verdicts)/cDur.Seconds(),
		ms(bDur), ms(wDur), float64(verdicts)/bDur.Seconds(), float64(cDur)/float64(bDur))
	log.Printf("fpv  attribution: legacy %.0f ms, cone-only %.0f ms, sliced-only %.0f ms, cone+sliced %.0f ms  (coi %.2fx, design p95 %.2f ms)",
		ms(lgDur), ms(coDur), ms(soDur), ms(bDur), float64(lgDur)/float64(bDur), ms(p95))
	log.Printf("fpv  static: %d/%d discharged without search, off %.0f ms vs auto %.0f ms (%.2fx), fixpoint %.2f ms",
		staticDischarged, verdicts, ms(sfDur), ms(bDur), float64(sfDur)/float64(bDur), ms(saDur))
	log.Printf("fpv  store: disk-cold %.0f ms vs disk-warm %.0f ms (%.2fx) over %s",
		ms(dcDur), ms(dwDur), float64(dcDur)/float64(dwDur), diskDir)

	// --- end-to-end evaluation pass (generation + correction + FPV). ---
	evalRun := func(backend, batch string, workers int) (time.Duration, int) {
		// Fresh graph cache per run so the batched e2e number is a cold
		// sweep, not an artifact of the previous repetition.
		bench.DefaultElab.Graphs().Purge()
		opt := eval.RunOptions{
			Shots: 5, Seed: *seed, UseCorrector: true, Workers: workers,
			MaxDesigns: evalDesigns,
			FPV:        fpv.Options{Backend: backend, Batch: batch},
		}
		start := time.Now()
		res, err := eval.Run(context.Background(), eval.NewModelGenerator(llm.GPT4o()), icl, corpus, opt)
		if err != nil {
			log.Fatalf("eval (%s): %v", backend, err)
		}
		n := 0
		for _, d := range res.Designs {
			n += len(d.Verdicts)
		}
		return time.Since(start), n
	}

	// --- default-worker wall time (what one sweep costs end to end). ---
	const evalReps = 5
	var is, cs, ps []time.Duration
	for r := 0; r < evalReps; r++ {
		d, _ := evalRun(fpv.BackendInterp, fpv.BatchAuto, 0)
		is = append(is, d)
		d, _ = evalRun(fpv.BackendCompiled, fpv.BatchAuto, 0)
		cs = append(cs, d)
		d, _ = evalRun(fpv.BackendCompiled, fpv.BatchOff, 0)
		ps = append(ps, d)
	}
	ipDur, cpDur, ppDur := median(is), median(cs), median(ps)
	rep.EvalFullCorpus = evalSection{
		Workers:       runtime.GOMAXPROCS(0),
		InterpMs:      ms(ipDur),
		CompiledMs:    ms(cpDur),
		Speedup:       round2(float64(ipDur) / float64(cpDur)),
		PerPropertyMs: ms(ppDur),
		BatchSpeedup:  round2(float64(ppDur) / float64(cpDur)),
	}
	log.Printf("eval full corpus (workers=%d): interp %.0f ms, compiled %.0f ms, per-property %.0f ms  (batch %.2fx)",
		rep.EvalFullCorpus.Workers, ms(ipDur), ms(cpDur), ms(ppDur), float64(ppDur)/float64(cpDur))

	// --- dispatch tail latency: the same FPV-bound end-to-end pass under
	// the contiguous baseline and the cost dispatcher, per-design
	// completion times observed through OnDesignDone. Cold graphs per
	// repetition; the cost journal deliberately persists across reps —
	// warm cost predictions are the dispatcher's production operating
	// point, and the first (static-cost) rep still participates via the
	// min-accumulation. ---
	const schedWorkers = 4
	nSchedDesigns := len(corpus)
	if evalDesigns > 0 && evalDesigns < nSchedDesigns {
		nSchedDesigns = evalDesigns
	}
	schedRun := func(dispatch string, done []time.Duration) time.Duration {
		bench.DefaultElab.Graphs().Purge()
		var mu sync.Mutex
		opt := eval.RunOptions{
			Shots: 5, Seed: *seed, UseCorrector: true, Workers: schedWorkers,
			MaxDesigns: evalDesigns, Dispatch: dispatch,
			FPV: fpv.Options{Backend: fpv.BackendCompiled, Batch: fpv.BatchAuto},
			OnDesignDone: func(i int, _, since time.Duration) {
				mu.Lock()
				if since < done[i] {
					done[i] = since
				}
				mu.Unlock()
			},
		}
		start := time.Now()
		if _, err := eval.Run(context.Background(), eval.NewModelGenerator(llm.GPT4o()), icl, corpus, opt); err != nil {
			log.Fatalf("sched (%s): %v", dispatch, err)
		}
		return time.Since(start)
	}
	contigDone := make([]time.Duration, nSchedDesigns)
	costDone := make([]time.Duration, nSchedDesigns)
	for i := 0; i < nSchedDesigns; i++ {
		contigDone[i], costDone[i] = 1<<62, 1<<62
	}
	ctDur, csDur := time.Duration(1<<62), time.Duration(1<<62)
	for r := 0; r < evalReps; r++ {
		ctDur = min(ctDur, schedRun(eval.DispatchContiguous, contigDone))
		csDur = min(csDur, schedRun(eval.DispatchCost, costDone))
	}
	pct := func(done []time.Duration, p int) time.Duration {
		s := append([]time.Duration(nil), done...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[(len(s)*p+99)/100-1]
	}
	rep.Sched = schedSection{
		Workers:         schedWorkers,
		Designs:         nSchedDesigns,
		ContiguousMs:    ms(ctDur),
		CostMs:          ms(csDur),
		ContiguousP95Ms: ms(pct(contigDone, 95)),
		ContiguousP99Ms: ms(pct(contigDone, 99)),
		CostP95Ms:       ms(pct(costDone, 95)),
		CostP99Ms:       ms(pct(costDone, 99)),
		TailSpeedup:     round2(float64(pct(contigDone, 95)) / float64(pct(costDone, 95))),
	}
	log.Printf("sched (workers=%d, %d designs): contiguous %.0f ms (design p95 %.2f / p99 %.2f ms), cost %.0f ms (design p95 %.2f / p99 %.2f ms)  (tail %.2fx)",
		schedWorkers, nSchedDesigns, ms(ctDur), rep.Sched.ContiguousP95Ms, rep.Sched.ContiguousP99Ms,
		ms(csDur), rep.Sched.CostP95Ms, rep.Sched.CostP99Ms, rep.Sched.TailSpeedup)

	enc := json.NewEncoder(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		fmt.Printf("wrote %s\n", *out)
	}
	if *minBatchSpeedup > 0 && rep.FPV.BatchSpeedup < *minBatchSpeedup {
		log.Fatalf("batched fpv pass regressed: %.2fx vs per-property, want >= %.2fx",
			rep.FPV.BatchSpeedup, *minBatchSpeedup)
	}
	if *minCoiSpeedup > 0 && rep.FPV.CoiSpeedup < *minCoiSpeedup {
		log.Fatalf("cone+sliced fpv pass regressed: %.2fx vs legacy full-design scalar, want >= %.2fx",
			rep.FPV.CoiSpeedup, *minCoiSpeedup)
	}
	if *minStaticSpeedup > 0 && rep.FPV.StaticSpeedup < *minStaticSpeedup {
		log.Fatalf("static pre-verification regressed the fpv pass: %.2fx vs static-off, want >= %.2fx",
			rep.FPV.StaticSpeedup, *minStaticSpeedup)
	}
	if *minStaticDischarged > 0 && float64(rep.FPV.StaticDischarged) < *minStaticDischarged*float64(rep.FPV.Verdicts) {
		log.Fatalf("static discharge rate too low: %d of %d properties (want >= %.0f%%)",
			rep.FPV.StaticDischarged, rep.FPV.Verdicts, *minStaticDischarged*100)
	}
	if *minDiskSpeedup > 0 && rep.FPV.DiskSpeedup < *minDiskSpeedup {
		log.Fatalf("persistent-store warm start regressed: %.2fx vs disk-cold, want >= %.2fx",
			rep.FPV.DiskSpeedup, *minDiskSpeedup)
	}
	if *minTailSpeedup > 0 && rep.Sched.TailSpeedup < *minTailSpeedup {
		log.Fatalf("cost-dispatch tail latency regressed: design p95 %.2fx vs contiguous, want >= %.2fx",
			rep.Sched.TailSpeedup, *minTailSpeedup)
	}
}

// timeSim measures ns/cycle of random-stimulus stepping.
func timeSim(s *sim.Simulator, nl *verilog.Netlist, cycles int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]uint64, 64)
	for i := range vecs {
		vecs[i] = sim.RandomInputs(nl, rng)
	}
	start := time.Now()
	for c := 0; c < cycles; c++ {
		_ = s.SetInputs(vecs[c&63])
		s.Step()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(cycles)
}

// trainExamples builds the fixed in-context examples without the mining
// pass (assertions verified in the corpus tests), keeping perfbench's
// timed region to generation + correction + FPV.
func trainExamples() []llm.Example {
	var icl []llm.Example
	for _, d := range bench.TrainDesigns() {
		icl = append(icl, llm.Example{
			Name:   d.Name,
			Source: d.Source,
			Assertions: []string{
				"rst == 1 |=> gnt_ == 0;",
				"req1 == 1 && req2 == 0 |-> gnt1 == 1;",
				"gnt2 == 1 |-> req2 == 1;",
				"sum == a ^ b;",
				"cout == (a & b);",
			},
		})
	}
	return icl
}

func ms(d time.Duration) float64 { return round2(float64(d.Microseconds()) / 1000) }

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }

// median of a sample set: the parallel sections use it instead of the
// minimum, where the minimum would overstate scheduler luck. (The serial
// sections take tightly alternating minimums instead: the workloads are
// deterministic, so the minimum estimates throttle-free cost on shared
// machines whose CPU quota stretches wall time by whole runs at a time.)
func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
