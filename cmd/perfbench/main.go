// Command perfbench measures the compiled execution backend against the
// tree-walking reference interpreter and emits a machine-readable report
// (BENCH_pr4.json in the repository root records the checked-in numbers):
//
//   - sim: simulator ns/cycle on a spread of corpus designs;
//   - fpv: the FPV-bound full-corpus pass — formal verification of every
//     (pre-generated, corrected) candidate assertion over the whole
//     corpus on one engine, reported as verdicts/second; generation and
//     correction are excluded so the section times verification alone;
//   - eval_full_corpus: the end-to-end evaluation pass (generation,
//     correction, verification) at the default worker-pool size, i.e.
//     the wall time a user sees for one (model, shot) sweep.
//
// Usage:
//
//	perfbench -out BENCH_pr4.json
//	perfbench -quick          # CI smoke sizes
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"assertionbench/internal/bench"
	"assertionbench/internal/corrector"
	"assertionbench/internal/eval"
	"assertionbench/internal/fpv"
	"assertionbench/internal/llm"
	"assertionbench/internal/sim"
	"assertionbench/internal/verilog"
)

type simRow struct {
	Design             string  `json:"design"`
	Cycles             int     `json:"cycles"`
	InterpNsPerCycle   float64 `json:"interp_ns_per_cycle"`
	CompiledNsPerCycle float64 `json:"compiled_ns_per_cycle"`
	Speedup            float64 `json:"speedup"`
}

type fpvSection struct {
	Designs                int     `json:"designs"`
	Verdicts               int     `json:"verdicts"`
	InterpMs               float64 `json:"interp_ms"`
	CompiledMs             float64 `json:"compiled_ms"`
	InterpVerdictsPerSec   float64 `json:"interp_verdicts_per_sec"`
	CompiledVerdictsPerSec float64 `json:"compiled_verdicts_per_sec"`
	Speedup                float64 `json:"speedup"`
	// Optional externally measured baseline of the same pass on the
	// pre-backend engine (see -baseline-ms and EXPERIMENTS.md).
	BaselineMs        float64 `json:"baseline_ms,omitempty"`
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

type evalSection struct {
	Workers    int     `json:"workers"`
	InterpMs   float64 `json:"interp_ms"`
	CompiledMs float64 `json:"compiled_ms"`
	Speedup    float64 `json:"speedup"`
}

type report struct {
	Description string `json:"description"`
	Host        struct {
		GoOS   string `json:"goos"`
		GoArch string `json:"goarch"`
		NumCPU int    `json:"num_cpu"`
	} `json:"host"`
	Quick            bool        `json:"quick"`
	Sim              []simRow    `json:"sim"`
	SimMedianSpeedup float64     `json:"sim_median_speedup"`
	FPV              fpvSection  `json:"fpv"`
	EvalFullCorpus   evalSection `json:"eval_full_corpus"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("perfbench: ")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	quick := flag.Bool("quick", false, "CI smoke sizes (fewer cycles, truncated corpus)")
	seed := flag.Int64("seed", 1, "workload seed")
	baselineMs := flag.Float64("baseline-ms", 0, "externally measured pre-backend (PR 3 engine) time for the fpv pass, recorded alongside the A/B numbers")
	flag.Parse()

	rep := report{Description: "compiled register-machine backend vs tree-walk interpreter (PR 4)", Quick: *quick}
	rep.Host.GoOS, rep.Host.GoArch, rep.Host.NumCPU = runtime.GOOS, runtime.GOARCH, runtime.NumCPU()

	corpus := bench.TestCorpus()
	simCycles, evalDesigns := 200000, 0
	if *quick {
		simCycles, evalDesigns = 5000, 12
	}

	// --- sim ns/cycle over a spread of designs (small comb, mid seq,
	// the CAN CRC hot design, and the largest-LoC entry). ---
	picks := map[string]bool{corpus[23].Name: true}
	byLoC := append([]bench.Design(nil), corpus...)
	sort.Slice(byLoC, func(i, j int) bool { return byLoC[i].LoC > byLoC[j].LoC })
	picks[byLoC[0].Name] = true
	picks[byLoC[len(byLoC)/2].Name] = true
	picks[byLoC[len(byLoC)-1].Name] = true
	for _, d := range corpus {
		if !picks[d.Name] {
			continue
		}
		nl, err := verilog.ElaborateSource(d.Source, "")
		if err != nil {
			log.Fatalf("%s: %v", d.Name, err)
		}
		// Minimum of five interleaved measurements per backend: the work
		// is deterministic, so the minimum is the throttle-free estimate
		// on shared machines (the CI and dev containers burst-throttle
		// CPU, which stretches wall time by whole runs at a time).
		interp, compiled := math.Inf(1), math.Inf(1)
		for r := 0; r < 5; r++ {
			interp = math.Min(interp, timeSim(sim.New(nl), nl, simCycles, *seed))
			compiled = math.Min(compiled, timeSim(sim.NewCompiled(nl), nl, simCycles, *seed))
		}
		rep.Sim = append(rep.Sim, simRow{
			Design:             d.Name,
			Cycles:             simCycles,
			InterpNsPerCycle:   interp,
			CompiledNsPerCycle: compiled,
			Speedup:            round2(interp / compiled),
		})
		log.Printf("sim %-22s interp %7.1f ns/cycle  compiled %7.1f ns/cycle  (%.2fx)",
			d.Name, interp, compiled, interp/compiled)
	}
	speeds := make([]float64, len(rep.Sim))
	for i, r := range rep.Sim {
		speeds[i] = r.Speedup
	}
	sort.Float64s(speeds)
	rep.SimMedianSpeedup = speeds[len(speeds)/2]

	// --- FPV-bound full-corpus pass: pre-generate and correct every
	// candidate assertion (backend-independent), then time verification
	// alone. Verdicts are identical across backends by construction
	// (dverify oracle 4). ---
	gen := eval.NewModelGenerator(llm.GPT4o())
	icl := trainExamples()
	type vjob struct {
		d     bench.Design
		lines []string
	}
	var jobs []vjob
	verdicts := 0
	nDesigns := len(corpus)
	if evalDesigns > 0 && evalDesigns < nDesigns {
		nDesigns = evalDesigns
	}
	for gi, d := range corpus[:nDesigns] {
		nl, err := bench.Elaborate(d)
		if err != nil {
			log.Fatalf("%s: %v", d.Name, err)
		}
		out, err := gen.Generate(context.Background(), d, icl, eval.GenOptions{
			Shots: 5, Seed: *seed*1000003 + int64(gi)*7919 + 5})
		if err != nil {
			log.Fatalf("%s: %v", d.Name, err)
		}
		fixed, _ := corrector.New(nl).CorrectAll(out.Assertions)
		jobs = append(jobs, vjob{d, fixed})
		verdicts += len(fixed)
	}
	verifyRun := func(backend string) time.Duration {
		eng := fpv.NewEngine()
		opt := fpv.Options{MaxProductStates: 3000, MaxInputBits: 8, MaxInputSamples: 12,
			RandomRuns: 128, RandomDepth: 64, Seed: *seed, Backend: backend}
		start := time.Now()
		for _, j := range jobs {
			nl, _ := bench.Elaborate(j.d)
			for _, line := range j.lines {
				eng.VerifySource(context.Background(), nl, line, opt)
			}
		}
		return time.Since(start)
	}
	verifyRun(fpv.BackendCompiled) // warm caches and lowerings
	iDur, cDur := minPair(verifyRun, 7)
	rep.FPV = fpvSection{
		Designs:                nDesigns,
		Verdicts:               verdicts,
		InterpMs:               ms(iDur),
		CompiledMs:             ms(cDur),
		InterpVerdictsPerSec:   round2(float64(verdicts) / iDur.Seconds()),
		CompiledVerdictsPerSec: round2(float64(verdicts) / cDur.Seconds()),
		Speedup:                round2(float64(iDur) / float64(cDur)),
	}
	if *baselineMs > 0 {
		rep.FPV.BaselineMs = *baselineMs
		rep.FPV.SpeedupVsBaseline = round2(*baselineMs / ms(cDur))
	}
	log.Printf("fpv  %d verdicts: interp %.0f ms (%.0f verdicts/s), compiled %.0f ms (%.0f verdicts/s)  (%.2fx)",
		verdicts, ms(iDur), float64(verdicts)/iDur.Seconds(), ms(cDur), float64(verdicts)/cDur.Seconds(),
		float64(iDur)/float64(cDur))

	// --- end-to-end evaluation pass (generation + correction + FPV). ---
	evalRun := func(backend string, workers int) (time.Duration, int) {
		opt := eval.RunOptions{
			Shots: 5, Seed: *seed, UseCorrector: true, Workers: workers,
			MaxDesigns: evalDesigns,
			FPV:        fpv.Options{Backend: backend},
		}
		start := time.Now()
		res, err := eval.Run(context.Background(), eval.NewModelGenerator(llm.GPT4o()), icl, corpus, opt)
		if err != nil {
			log.Fatalf("eval (%s): %v", backend, err)
		}
		n := 0
		for _, d := range res.Designs {
			n += len(d.Verdicts)
		}
		return time.Since(start), n
	}

	// --- default-worker wall time (what one sweep costs end to end). ---
	ipDur, cpDur := medianPair(func(backend string) time.Duration {
		d, _ := evalRun(backend, 0)
		return d
	})
	rep.EvalFullCorpus = evalSection{
		Workers:    runtime.GOMAXPROCS(0),
		InterpMs:   ms(ipDur),
		CompiledMs: ms(cpDur),
		Speedup:    round2(float64(ipDur) / float64(cpDur)),
	}
	log.Printf("eval full corpus (workers=%d): interp %.0f ms, compiled %.0f ms  (%.2fx)",
		rep.EvalFullCorpus.Workers, ms(ipDur), ms(cpDur), float64(ipDur)/float64(cpDur))

	enc := json.NewEncoder(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		fmt.Printf("wrote %s\n", *out)
	}
}

// timeSim measures ns/cycle of random-stimulus stepping.
func timeSim(s *sim.Simulator, nl *verilog.Netlist, cycles int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]uint64, 64)
	for i := range vecs {
		vecs[i] = sim.RandomInputs(nl, rng)
	}
	start := time.Now()
	for c := 0; c < cycles; c++ {
		_ = s.SetInputs(vecs[c&63])
		s.Step()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(cycles)
}

// trainExamples builds the fixed in-context examples without the mining
// pass (assertions verified in the corpus tests), keeping perfbench's
// timed region to generation + correction + FPV.
func trainExamples() []llm.Example {
	var icl []llm.Example
	for _, d := range bench.TrainDesigns() {
		icl = append(icl, llm.Example{
			Name:   d.Name,
			Source: d.Source,
			Assertions: []string{
				"rst == 1 |=> gnt_ == 0;",
				"req1 == 1 && req2 == 0 |-> gnt1 == 1;",
				"gnt2 == 1 |-> req2 == 1;",
				"sum == a ^ b;",
				"cout == (a & b);",
			},
		})
	}
	return icl
}

func ms(d time.Duration) float64 { return round2(float64(d.Microseconds()) / 1000) }

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }

// minPair times the two backends in tightly alternating runs and
// returns each one's minimum: the workloads are deterministic, so the
// minimum estimates throttle-free cost on shared machines whose CPU
// quota stretches wall time by whole runs at a time.
func minPair(run func(backend string) time.Duration, reps int) (interp, compiled time.Duration) {
	interp, compiled = time.Duration(1<<62), time.Duration(1<<62)
	for r := 0; r < reps; r++ {
		if d := run(fpv.BackendInterp); d < interp {
			interp = d
		}
		if d := run(fpv.BackendCompiled); d < compiled {
			compiled = d
		}
	}
	return interp, compiled
}

// medianPair is minPair's median-based sibling for parallel sections,
// where the minimum would overstate scheduler luck.
func medianPair(run func(backend string) time.Duration) (interp, compiled time.Duration) {
	const reps = 5
	var is, cs []time.Duration
	for r := 0; r < reps; r++ {
		is = append(is, run(fpv.BackendInterp))
		cs = append(cs, run(fpv.BackendCompiled))
	}
	sort.Slice(is, func(i, j int) bool { return is[i] < is[j] })
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	return is[reps/2], cs[reps/2]
}
