// Command acov measures the coverage / goodness of an assertion set on a
// design (paper Sec. X, directions i and ii): signal coverage, antecedent
// activation coverage, and state coverage.
//
// Usage:
//
//	acov design.v 'rst == 1 |=> count == 0' ...
//	acov -f assertions.sva [-verified] design.v
//
// Exit status is 0 on success, 2 on usage or design errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"assertionbench"
	"assertionbench/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("acov: ")
	file := flag.String("f", "", "file of assertions (one per line)")
	verified := flag.Bool("verified", false, "measure only FPV-proven assertions")
	seed := flag.Int64("seed", 1, "trace seed")
	flag.Parse()
	if flag.NArg() < 1 {
		cliutil.Usage("usage: acov [-f assertions.sva] [-verified] design.v [assertion ...]")
	}
	src := cliutil.ReadFile(flag.Arg(0))
	assertions := cliutil.Assertions(*file, flag.Args()[1:])

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := assertionbench.MeasureCoverage(ctx, string(src), assertions, assertionbench.CoverageOptions{
		Seed:         *seed,
		VerifiedOnly: *verified,
	})
	if err != nil {
		cliutil.Fatal(err)
	}
	fmt.Println(rep)
	fmt.Printf("covered signals: %v\n", rep.CoveredSignals)
	fmt.Printf("missed signals:  %v\n", rep.MissedSignals)
	fmt.Printf("states visited:  %d\n", rep.StatesVisited)
	for _, pa := range rep.PerAssertion {
		fmt.Printf("  %4d activations  %s\n", pa.Activations, pa.Assertion)
	}
}
