// Command finetune builds AssertionLLM (paper Sec. VI): it mines a
// fine-tuning corpus from 75% of AssertionBench, trains the chosen base
// model for 20 epochs, and evaluates the result on the held-out 25% with
// the Fig. 8 pipeline (no syntax corrector). It prints the training
// trajectory and the before/after Pass/CEX/Error comparison.
//
// Usage:
//
//	finetune [-base codellama|llama3] [-epochs 20] [-seed N]
//
// Exit status is 0 on success, 1 on interruption, 2 on usage or flag
// errors (unknown or non-LLaMa-family base model included).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"assertionbench"
	"assertionbench/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("finetune: ")
	base := flag.String("base", "codellama", "base model: codellama|llama3")
	epochs := flag.Int("epochs", 20, "fine-tuning epochs")
	seed := flag.Int64("seed", 1, "experiment seed")
	designs := flag.Int("designs", 0, "limit test designs (0 = all 100)")
	workers := flag.Int("workers", 0, "evaluation worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	profile, err := assertionbench.ProfileByName(*base)
	if err != nil {
		cliutil.Fatal(err)
	}
	switch profile.Name() {
	case "CodeLLaMa 2", "LLaMa3-70B":
	default:
		cliutil.Fatalf("base must be a LLaMa-family model (codellama|llama3), not %s", profile.Name())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	b, err := assertionbench.Load(ctx, assertionbench.Options{
		Seed:           *seed,
		MaxDesigns:     *designs,
		FinetuneEpochs: *epochs,
		Workers:        *workers,
	})
	if err != nil {
		fatal(err)
	}

	for _, k := range []int{1, 5} {
		baseRun, err := b.EvaluateCOTS(ctx, profile, k)
		if err != nil {
			fatal(err)
		}
		ftRun, report, err := b.EvaluateFinetuned(ctx, profile, k)
		if err != nil {
			fatal(err)
		}
		if k == 1 {
			fmt.Printf("fine-tuning %s: held-out perplexity %.1f -> %.1f over %d epochs (gain %.2f)\n",
				profile.Name(), report.PerplexityBefore, report.PerplexityAfter, *epochs, report.Gain)
			fmt.Print("  per-epoch: ")
			for i, p := range report.PerEpoch {
				if i > 0 {
					fmt.Print(" ")
				}
				fmt.Printf("%.1f", p)
			}
			fmt.Println()
		}
		fmt.Printf("%d-shot  base:       %v\n", k, baseRun.Metrics)
		fmt.Printf("%d-shot  fine-tuned: %v  (pass %+.1fpp, cex %+.1fpp, error %+.1fpp)\n",
			k, ftRun.Metrics,
			100*(ftRun.Metrics.Pass()-baseRun.Metrics.Pass()),
			100*(ftRun.Metrics.CEX()-baseRun.Metrics.CEX()),
			100*(ftRun.Metrics.Error()-baseRun.Metrics.Error()))
	}
}

// fatal distinguishes interruption (exit 1) from real failures (exit 2,
// the shared CLI convention).
func fatal(err error) {
	if errors.Is(err, context.Canceled) {
		log.Fatal("interrupted")
	}
	cliutil.Fatal(err)
}
