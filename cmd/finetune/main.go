// Command finetune builds AssertionLLM (paper Sec. VI): it mines a
// fine-tuning corpus from 75% of AssertionBench, trains the chosen base
// model for 20 epochs, and evaluates the result on the held-out 25% with
// the Fig. 8 pipeline (no syntax corrector). It prints the training
// trajectory and the before/after Pass/CEX/Error comparison.
//
// Usage:
//
//	finetune [-base codellama|llama3] [-epochs 20] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"

	"assertionbench/internal/eval"
	"assertionbench/internal/llm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("finetune: ")
	base := flag.String("base", "codellama", "base model: codellama|llama3")
	epochs := flag.Int("epochs", 20, "fine-tuning epochs")
	seed := flag.Int64("seed", 1, "experiment seed")
	designs := flag.Int("designs", 0, "limit test designs (0 = all 100)")
	workers := flag.Int("workers", 0, "evaluation worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	var profile llm.Profile
	switch *base {
	case "codellama", "codellama2":
		profile = llm.CodeLlama2()
	case "llama3", "llama3-70b":
		profile = llm.Llama3()
	default:
		log.Fatalf("unknown base %q (want codellama|llama3)", *base)
	}

	e, err := eval.NewExperiment(eval.ExperimentOptions{
		Seed:           *seed,
		MaxDesigns:     *designs,
		FinetuneEpochs: *epochs,
		Workers:        *workers,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, k := range []int{1, 5} {
		baseRun, err := e.RunCOTS(profile, k)
		if err != nil {
			log.Fatal(err)
		}
		ftRun, report, err := e.FinetunedRun(profile, k)
		if err != nil {
			log.Fatal(err)
		}
		if k == 1 {
			fmt.Printf("fine-tuning %s: held-out perplexity %.1f -> %.1f over %d epochs (gain %.2f)\n",
				profile.Name, report.PerplexityBefore, report.PerplexityAfter, *epochs, report.Gain)
			fmt.Print("  per-epoch: ")
			for i, p := range report.PerEpoch {
				if i > 0 {
					fmt.Print(" ")
				}
				fmt.Printf("%.1f", p)
			}
			fmt.Println()
		}
		fmt.Printf("%d-shot  base:       %v\n", k, baseRun.Metrics)
		fmt.Printf("%d-shot  fine-tuned: %v  (pass %+.1fpp, cex %+.1fpp, error %+.1fpp)\n",
			k, ftRun.Metrics,
			100*(ftRun.Metrics.Pass()-baseRun.Metrics.Pass()),
			100*(ftRun.Metrics.CEX()-baseRun.Metrics.CEX()),
			100*(ftRun.Metrics.Error()-baseRun.Metrics.Error()))
	}
}
