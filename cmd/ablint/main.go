// Command ablint statically audits SVA assertions against a Verilog
// design — no state-space search, just the abstract-interpretation
// fixpoint behind the FPV engine's static pre-verification. It flags
// properties that cannot do useful verification work (contradictory
// antecedents, tautologies, statically refuted consequents), suspicious
// comparisons (literals that cannot fit the compared signal's width),
// references to statically constant signals, and ##N windows beyond the
// 64-cycle evaluation horizon.
//
// Usage:
//
//	ablint design.v 'req == 1 |-> gnt == 1' ...
//	ablint -f assertions.sva design.v
//	ablint -json design.v 'cnt <= 255'
//
// Exit status is 0 when every assertion is clean, 1 when anything was
// flagged, 2 on usage or design errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"assertionbench"
	"assertionbench/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ablint: ")
	file := flag.String("f", "", "file of assertions (one per line)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	flag.Parse()
	if flag.NArg() < 1 {
		cliutil.Usage("usage: ablint [-f assertions.sva] [-json] design.v [assertion ...]")
	}
	src := cliutil.ReadFile(flag.Arg(0))
	assertions := cliutil.Assertions(*file, flag.Args()[1:])

	results, err := assertionbench.Lint(string(src), assertions)
	if err != nil {
		cliutil.Fatal(err)
	}
	flagged := 0
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			cliutil.Fatal(err)
		}
		for _, r := range results {
			if !r.Clean() {
				flagged++
			}
		}
	} else {
		for _, r := range results {
			if r.Clean() {
				fmt.Printf("%-12s %s\n", "clean", r.Assertion)
				continue
			}
			flagged++
			for _, d := range r.Diagnostics {
				fmt.Printf("%-12s %s\n             %s: %s\n", "flagged", r.Assertion, d.Rule, d.Msg)
			}
		}
		fmt.Printf("\n%d of %d assertions flagged\n", flagged, len(results))
	}
	if flagged > 0 {
		os.Exit(1)
	}
}
