// Command fpv formally verifies SVA assertions against a Verilog design —
// the repository's JasperGold stand-in. Ctrl-C cancels the remaining
// search gracefully.
//
// Usage:
//
//	fpv design.v 'req == 1 |-> gnt == 1' ...
//	fpv -f assertions.sva design.v
//	fpv -cex design.v 'en == 1 |=> count == 0'
//	fpv -cache-dir ~/.cache/abench design.v 'rst |=> count == 0'
//	fpv -deadline 30s design.v 'req |-> ##[1:4] ack'
//	fpv -resume -cache-dir DIR -f a.sva design.v   # skip decided assertions
//
// With -cache-dir, every decided verdict is journaled to a per-design
// run manifest in the artifact store; -resume serves those assertions
// from the manifest (marked "resumed") and verifies only the undecided
// rest — assertions a -deadline run left unknown, or ones added since.
//
// Exit status is 0 when every assertion proves (or, under -deadline,
// ran out of budget undecided — unknown is an anytime answer, not a
// failure), 1 when any assertion is refuted or errors, 2 on usage or
// design errors.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"

	"assertionbench"
	"assertionbench/internal/astore"
	"assertionbench/internal/bench"
	"assertionbench/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fpv: ")
	file := flag.String("f", "", "file of assertions (one per line)")
	showCEX := flag.Bool("cex", false, "print counter-example traces")
	vcd := flag.String("vcd", "", "write the first counter-example as a VCD waveform to this file")
	states := flag.Int("states", 0, "max product states (0 = default)")
	backend := flag.String("backend", "", "execution backend: compiled (default) or interp (reference tree-walk)")
	batch := flag.String("batch", "", "batched FPV over a shared reachability graph: auto (default) or off (per-property reference)")
	cone := flag.String("cone", "", "cone-of-influence reduction: auto (default) or off (full-design reference)")
	slices := flag.String("slices", "", "64-way bit-parallel bounded exploration: auto (default) or off (scalar reference)")
	static := flag.String("static", "", "static pre-verification pass: auto (default) or off (pure-search reference)")
	cacheDir := flag.String("cache-dir", "", "persistent artifact store directory: compiled programs and reachability graphs are read from and written to it, so repeated invocations start warm (empty = off)")
	deadline := flag.Duration("deadline", 0, "anytime wall-clock budget: assertions undecided at expiry report unknown instead of blocking (0 = off)")
	resume := flag.Bool("resume", false, "serve assertions a previous run over the same design and options already decided from the artifact store's run manifest and verify only the rest (requires -cache-dir)")
	flag.Parse()
	if flag.NArg() < 1 {
		cliutil.Usage("usage: fpv [-f assertions.sva] [-cex] [-cache-dir DIR] [-deadline D] [-resume] design.v [assertion ...]")
	}
	if *deadline < 0 {
		cliutil.Fatalf("-deadline %v: budget must not be negative (0 disables it)", *deadline)
	}
	if *resume && *cacheDir == "" {
		cliutil.Fatalf("-resume needs -cache-dir: the run manifest lives in the artifact store")
	}
	src := cliutil.ReadFile(flag.Arg(0))
	assertions := cliutil.Assertions(*file, flag.Args()[1:])
	if *cacheDir != "" {
		if err := assertionbench.SetCacheDir(*cacheDir); err != nil {
			cliutil.Fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	vopt := assertionbench.VerifyOptions{MaxProductStates: *states, Backend: *backend, Batch: *batch, Cone: *cone, Slices: *slices, Static: *static}

	// Run-manifest plumbing: with a store attached, every decided verdict
	// is journaled under a key derived from the design source and options;
	// -resume serves matching assertions straight from the manifest. A
	// missing or corrupt manifest resumes from nothing.
	store := bench.DiskStore()
	var mkey string
	journal := map[string]manifestEntry{}
	if store != nil {
		mkey = manifestKey(string(src), vopt)
		if blob, ok := store.Get(astore.KindRun, mkey); ok {
			_ = json.Unmarshal(blob, &journal)
		}
	}
	pending := assertions
	if *resume {
		pending = make([]string, 0, len(assertions))
		for _, a := range assertions {
			if _, ok := journal[a]; !ok {
				pending = append(pending, a)
			}
		}
	}

	results, err := assertionbench.VerifyAssertions(ctx, string(src), pending, vopt)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			log.Fatalf("interrupted after %d of %d assertions", len(results), len(pending))
		}
		cliutil.Fatal(err)
	}
	pass, cex, errs, unknown := 0, 0, 0, 0
	next := 0
	for _, a := range assertions {
		if e, ok := journal[a]; *resume && ok {
			switch e.Status {
			case string(assertionbench.StatusCEX):
				cex++
			case string(assertionbench.StatusError):
				errs++
			default:
				pass++
			}
			fmt.Printf("%-12s %-60s %s (resumed)\n", e.Status, a, e.Detail)
			continue
		}
		r := results[next]
		next++
		detail := ""
		switch {
		case r.Status == assertionbench.StatusError:
			errs++
			detail = r.Err.Error()
		case r.Status == assertionbench.StatusCEX:
			cex++
			detail = fmt.Sprintf("violation at cycle %d", r.CEX.ViolationCycle())
		case r.Status == assertionbench.StatusUnknown:
			unknown++
			detail = "deadline expired before a verdict"
		default:
			pass++
			detail = fmt.Sprintf("states=%d exhaustive=%v", r.States, r.Exhaustive)
		}
		if r.Static {
			detail += " (static)"
		}
		// Unknown is an anytime answer, not a verdict — it stays out of the
		// manifest so a resume re-verifies it.
		if r.Status != assertionbench.StatusUnknown {
			journal[a] = manifestEntry{Status: string(r.Status), Detail: detail}
		}
		fmt.Printf("%-12s %-60s %s\n", r.Status, r.Assertion, detail)
		if *showCEX && r.CEX != nil {
			fmt.Print(r.CEX.Format())
		}
		if *vcd != "" && r.CEX != nil {
			f, err := os.Create(*vcd)
			if err != nil {
				cliutil.Fatal(err)
			}
			if err := r.CEX.WriteVCD(f); err != nil {
				cliutil.Fatal(err)
			}
			if err := f.Close(); err != nil {
				cliutil.Fatal(err)
			}
			fmt.Printf("wrote counter-example waveform to %s\n", *vcd)
			*vcd = "" // only the first CEX
		}
	}
	// Write-behind: the merged manifest (prior entries plus this run's
	// decided verdicts) lands in the store in one atomic blob. Best
	// effort — a failed journal write never fails the verification run.
	if store != nil && len(journal) > 0 {
		if blob, err := json.Marshal(journal); err == nil {
			_ = store.Put(astore.KindRun, mkey, blob)
		}
	}
	if unknown > 0 {
		fmt.Printf("\n%d pass, %d cex, %d error, %d unknown\n", pass, cex, errs, unknown)
	} else {
		fmt.Printf("\n%d pass, %d cex, %d error\n", pass, cex, errs)
	}
	if cex > 0 || errs > 0 {
		os.Exit(1)
	}
}

// manifestEntry is one journaled verdict in the fpv run manifest:
// enough to reprint and count the assertion on resume without
// re-verifying it (counter-example traces are not stored; rerun
// without -resume to regenerate one).
type manifestEntry struct {
	Status string `json:"status"`
	Detail string `json:"detail"`
}

// manifestKey derives the run-manifest key from the design source and
// every option that can change a verdict. The -deadline budget is
// deliberately excluded: a decided verdict is budget-independent, so a
// deadline-starved run's manifest resumes cleanly into an unbudgeted
// rerun.
func manifestKey(src string, opt assertionbench.VerifyOptions) string {
	h := sha256.New()
	io.WriteString(h, "fpvrun\x00")
	io.WriteString(h, src)
	fmt.Fprintf(h, "\x00states=%d backend=%s batch=%s cone=%s slices=%s static=%s",
		opt.MaxProductStates, opt.Backend, opt.Batch, opt.Cone, opt.Slices, opt.Static)
	return hex.EncodeToString(h.Sum(nil))
}
