// Command fpv formally verifies SVA assertions against a Verilog design —
// the repository's JasperGold stand-in.
//
// Usage:
//
//	fpv design.v 'req == 1 |-> gnt == 1' ...
//	fpv -f assertions.sva design.v
//	fpv -cex design.v 'en == 1 |=> count == 0'
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"assertionbench/internal/fpv"
	"assertionbench/internal/sim"
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fpv: ")
	file := flag.String("f", "", "file of assertions (one per line)")
	showCEX := flag.Bool("cex", false, "print counter-example traces")
	vcd := flag.String("vcd", "", "write the first counter-example as a VCD waveform to this file")
	states := flag.Int("states", 0, "max product states (0 = default)")
	flag.Parse()
	if flag.NArg() < 1 {
		log.Fatal("usage: fpv [-f assertions.sva] [-cex] design.v [assertion ...]")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	nl, err := verilog.ElaborateSource(string(src), "")
	if err != nil {
		log.Fatalf("design does not elaborate: %v", err)
	}
	assertions := flag.Args()[1:]
	if *file != "" {
		text, err := os.ReadFile(*file)
		if err != nil {
			log.Fatal(err)
		}
		assertions = append(assertions, sva.SplitAssertions(string(text))...)
	}
	if len(assertions) == 0 {
		log.Fatal("no assertions given")
	}
	opt := fpv.Options{MaxProductStates: *states}
	pass, cex, errs := 0, 0, 0
	for _, a := range assertions {
		r := fpv.VerifySource(nl, a, opt)
		detail := ""
		switch {
		case r.Status == fpv.StatusError:
			errs++
			detail = r.Err.Error()
		case r.Status == fpv.StatusCEX:
			cex++
			detail = fmt.Sprintf("violation at cycle %d", r.CEX.ViolationCycle)
		default:
			pass++
			detail = fmt.Sprintf("states=%d exhaustive=%v", r.States, r.Exhaustive)
		}
		fmt.Printf("%-12s %-60s %s\n", r.Status, a, detail)
		if *showCEX && r.CEX != nil {
			fmt.Print(r.CEX.Format(nl))
		}
		if *vcd != "" && r.CEX != nil {
			f, err := os.Create(*vcd)
			if err != nil {
				log.Fatal(err)
			}
			tr := sim.TraceFromSamples(nl, r.CEX.Sampled)
			if err := sim.WriteVCD(f, tr, nl.Name); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote counter-example waveform to %s\n", *vcd)
			*vcd = "" // only the first CEX
		}
	}
	fmt.Printf("\n%d pass, %d cex, %d error\n", pass, cex, errs)
	if cex > 0 || errs > 0 {
		os.Exit(1)
	}
}
