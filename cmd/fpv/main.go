// Command fpv formally verifies SVA assertions against a Verilog design —
// the repository's JasperGold stand-in. Ctrl-C cancels the remaining
// search gracefully.
//
// Usage:
//
//	fpv design.v 'req == 1 |-> gnt == 1' ...
//	fpv -f assertions.sva design.v
//	fpv -cex design.v 'en == 1 |=> count == 0'
//	fpv -cache-dir ~/.cache/abench design.v 'rst |=> count == 0'
//	fpv -deadline 30s design.v 'req |-> ##[1:4] ack'
//
// Exit status is 0 when every assertion proves (or, under -deadline,
// ran out of budget undecided — unknown is an anytime answer, not a
// failure), 1 when any assertion is refuted or errors, 2 on usage or
// design errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"assertionbench"
	"assertionbench/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fpv: ")
	file := flag.String("f", "", "file of assertions (one per line)")
	showCEX := flag.Bool("cex", false, "print counter-example traces")
	vcd := flag.String("vcd", "", "write the first counter-example as a VCD waveform to this file")
	states := flag.Int("states", 0, "max product states (0 = default)")
	backend := flag.String("backend", "", "execution backend: compiled (default) or interp (reference tree-walk)")
	batch := flag.String("batch", "", "batched FPV over a shared reachability graph: auto (default) or off (per-property reference)")
	cone := flag.String("cone", "", "cone-of-influence reduction: auto (default) or off (full-design reference)")
	slices := flag.String("slices", "", "64-way bit-parallel bounded exploration: auto (default) or off (scalar reference)")
	static := flag.String("static", "", "static pre-verification pass: auto (default) or off (pure-search reference)")
	cacheDir := flag.String("cache-dir", "", "persistent artifact store directory: compiled programs and reachability graphs are read from and written to it, so repeated invocations start warm (empty = off)")
	deadline := flag.Duration("deadline", 0, "anytime wall-clock budget: assertions undecided at expiry report unknown instead of blocking (0 = off)")
	flag.Parse()
	if flag.NArg() < 1 {
		cliutil.Usage("usage: fpv [-f assertions.sva] [-cex] [-cache-dir DIR] [-deadline D] design.v [assertion ...]")
	}
	if *deadline < 0 {
		cliutil.Fatalf("-deadline %v: budget must not be negative (0 disables it)", *deadline)
	}
	src := cliutil.ReadFile(flag.Arg(0))
	assertions := cliutil.Assertions(*file, flag.Args()[1:])
	if *cacheDir != "" {
		if err := assertionbench.SetCacheDir(*cacheDir); err != nil {
			cliutil.Fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	results, err := assertionbench.VerifyAssertions(ctx, string(src), assertions,
		assertionbench.VerifyOptions{MaxProductStates: *states, Backend: *backend, Batch: *batch, Cone: *cone, Slices: *slices, Static: *static})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			log.Fatalf("interrupted after %d of %d assertions", len(results), len(assertions))
		}
		cliutil.Fatal(err)
	}
	pass, cex, errs, unknown := 0, 0, 0, 0
	for _, r := range results {
		detail := ""
		switch {
		case r.Status == assertionbench.StatusError:
			errs++
			detail = r.Err.Error()
		case r.Status == assertionbench.StatusCEX:
			cex++
			detail = fmt.Sprintf("violation at cycle %d", r.CEX.ViolationCycle())
		case r.Status == assertionbench.StatusUnknown:
			unknown++
			detail = "deadline expired before a verdict"
		default:
			pass++
			detail = fmt.Sprintf("states=%d exhaustive=%v", r.States, r.Exhaustive)
		}
		if r.Static {
			detail += " (static)"
		}
		fmt.Printf("%-12s %-60s %s\n", r.Status, r.Assertion, detail)
		if *showCEX && r.CEX != nil {
			fmt.Print(r.CEX.Format())
		}
		if *vcd != "" && r.CEX != nil {
			f, err := os.Create(*vcd)
			if err != nil {
				cliutil.Fatal(err)
			}
			if err := r.CEX.WriteVCD(f); err != nil {
				cliutil.Fatal(err)
			}
			if err := f.Close(); err != nil {
				cliutil.Fatal(err)
			}
			fmt.Printf("wrote counter-example waveform to %s\n", *vcd)
			*vcd = "" // only the first CEX
		}
	}
	if unknown > 0 {
		fmt.Printf("\n%d pass, %d cex, %d error, %d unknown\n", pass, cex, errs, unknown)
	} else {
		fmt.Printf("\n%d pass, %d cex, %d error\n", pass, cex, errs)
	}
	if cex > 0 || errs > 0 {
		os.Exit(1)
	}
}
