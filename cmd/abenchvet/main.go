// Command abenchvet runs the project vet suite (internal/analyzers)
// over the determinism-critical packages: the FPV engine, the netlist
// layer and the SVA monitor must be pure functions of their inputs, so
// their production code may not use math/rand, time.Now, or direct map
// iteration (randomized order). Findings are printed one per line and
// fail the run; sanctioned sites are annotated in source with
// //ab:allow <rule>.
//
// Usage:
//
//	abenchvet                      # default package set
//	abenchvet internal/fpv ./pkg   # explicit package directories
//
// Exit status: 0 clean, 1 findings, 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"assertionbench/internal/analyzers"
)

var defaultDirs = []string{"internal/fpv", "internal/verilog", "internal/sva"}

func main() {
	log.SetFlags(0)
	log.SetPrefix("abenchvet: ")
	list := flag.Bool("rules", false, "list the suite's rules and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers.All {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	findings, err := analyzers.CheckDirs(dirs)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Printf("%d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Printf("abenchvet: %d package(s) clean\n", len(dirs))
}
