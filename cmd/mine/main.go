// Command mine runs the GOLDMINE-style and HARM-style assertion miners on
// a Verilog design and prints ranked, formally verified assertions.
// Ctrl-C cancels the verification filter gracefully.
//
// Usage:
//
//	mine [-miner goldmine|harm|security|both] [-max N] design.v
//
// Exit status is 0 on success, 2 on usage or design errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"assertionbench"
	"assertionbench/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mine: ")
	which := flag.String("miner", "both", "miner: goldmine|harm|security|both")
	max := flag.Int("max", 16, "max assertions to print")
	seed := flag.Int64("seed", 1, "trace seed")
	taintGuard := flag.String("taint", "", "run the information-flow check guarded by this signal (e.g. locked)")
	lockedVal := flag.Uint64("locked", 1, "guard value meaning 'locked' for -taint")
	flag.Parse()
	if flag.NArg() != 1 {
		cliutil.Usage("usage: mine [-miner M] design.v")
	}
	src := cliutil.ReadFile(flag.Arg(0))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *taintGuard != "" {
		leaks, err := assertionbench.TaintCheck(ctx, string(src), *taintGuard, *lockedVal, 32, 48, *seed)
		if err != nil {
			cliutil.Fatal(err)
		}
		if len(leaks) == 0 {
			fmt.Println("no information-flow violations found")
		}
		for _, l := range leaks {
			fmt.Println(l)
		}
		return
	}
	mined, err := assertionbench.MineAssertions(ctx, string(src), assertionbench.MineOptions{
		Miner:         *which,
		Seed:          *seed,
		MaxAssertions: *max,
	})
	if err != nil {
		cliutil.Fatal(err)
	}
	for _, m := range mined {
		fmt.Printf("rank=%.4f support=%-4d cx=%-3d %s  [%s]\n",
			m.Rank, m.Support, m.Complexity, m.Assertion, m.Status)
	}
	if len(mined) == 0 {
		fmt.Println("no proven assertions mined")
	}
}
