// Command mine runs the GOLDMINE-style and HARM-style assertion miners on
// a Verilog design and prints ranked, formally verified assertions.
//
// Usage:
//
//	mine [-miner goldmine|harm|both] [-max N] design.v
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"assertionbench/internal/mine"
	"assertionbench/internal/verilog"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mine: ")
	which := flag.String("miner", "both", "miner: goldmine|harm|security|both")
	max := flag.Int("max", 16, "max assertions to print")
	seed := flag.Int64("seed", 1, "trace seed")
	taintGuard := flag.String("taint", "", "run the information-flow check guarded by this signal (e.g. locked)")
	lockedVal := flag.Uint64("locked", 1, "guard value meaning 'locked' for -taint")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: mine [-miner M] design.v")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	nl, err := verilog.ElaborateSource(string(src), "")
	if err != nil {
		log.Fatalf("design does not elaborate: %v", err)
	}
	if *taintGuard != "" {
		leaks, err := mine.TaintCheck(nl, *taintGuard, *lockedVal, 32, 48, *seed)
		if err != nil {
			log.Fatal(err)
		}
		if len(leaks) == 0 {
			fmt.Println("no information-flow violations found")
		}
		for _, l := range leaks {
			fmt.Println(l)
		}
		return
	}
	opt := mine.Options{Seed: *seed, MaxAssertions: *max}
	var mined []mine.Mined
	if *which == "security" {
		sm, err := mine.Security(nl, opt)
		if err != nil {
			log.Fatal(err)
		}
		mined = append(mined, sm...)
	}
	if *which == "goldmine" || *which == "both" {
		gm, err := mine.GoldMine(nl, opt)
		if err != nil {
			log.Fatal(err)
		}
		mined = append(mined, gm...)
	}
	if *which == "harm" || *which == "both" {
		hm, err := mine.Harm(nl, opt)
		if err != nil {
			log.Fatal(err)
		}
		mined = append(mined, hm...)
	}
	mine.Rank(mined)
	seen := map[string]bool{}
	n := 0
	for _, m := range mined {
		s := m.Assertion.String()
		if seen[s] {
			continue
		}
		seen[s] = true
		fmt.Printf("rank=%.4f support=%-4d cx=%-3d %s  [%s]\n",
			m.Rank, m.Support, m.Complexity, s, m.Result.Status)
		n++
		if n >= *max {
			break
		}
	}
	if n == 0 {
		fmt.Println("no proven assertions mined")
	}
}
