package llm

import (
	"fmt"
	"strings"
)

// Example is one in-context example: a Verilog design and its formally
// verified assertions (paper Sec. III: each tuple has 2-10 assertions).
type Example struct {
	Name       string
	Source     string
	Assertions []string
}

// Prompt is the structured k-shot prompt of the paper's Fig. 5.
type Prompt struct {
	// Text is the rendered prompt.
	Text string
	// Examples are the in-context examples that survived the context
	// window (most recent kept).
	Examples []Example
	// TestSource is the design under generation, comments/newlines
	// removed as in the paper.
	TestSource string
	// Tokens is the prompt length in tokens.
	Tokens int
	// TruncatedExamples counts ICEs dropped to fit the context window.
	TruncatedExamples int
}

// TaskDescription is the fixed instruction block (Fig. 5 lines 1-2).
const TaskDescription = "You are an expert in SystemVerilog Assertions. " +
	"Your task is to generate the list of assertions to the given verilog design. " +
	"An example is shown below. Generate only the list of assertions for the test program with no additional text."

// BuildPrompt renders the Fig. 5 prompt for a test design with k in-context
// examples, enforcing the model's context window by dropping the oldest
// examples first (what a truncating tokenizer would do).
func BuildPrompt(examples []Example, testSource string, contextWindow int) Prompt {
	var tk Tokenizer
	squeezeTest := Squeeze(testSource)
	render := func(exs []Example) string {
		var sb strings.Builder
		sb.WriteString(TaskDescription)
		sb.WriteString("\n")
		for i, ex := range exs {
			fmt.Fprintf(&sb, "Program %d: %s\n", i+1, Squeeze(ex.Source))
			fmt.Fprintf(&sb, "Assertions %d: %s\n", i+1, strings.Join(ex.Assertions, " "))
		}
		sb.WriteString("Test Program: ")
		sb.WriteString(squeezeTest)
		sb.WriteString("\nTest Assertions:")
		return sb.String()
	}
	kept := append([]Example{}, examples...)
	truncated := 0
	text := render(kept)
	for contextWindow > 0 && len(tk.Tokenize(text)) > contextWindow && len(kept) > 0 {
		kept = kept[1:]
		truncated++
		text = render(kept)
	}
	return Prompt{
		Text:              text,
		Examples:          kept,
		TestSource:        squeezeTest,
		Tokens:            len(tk.Tokenize(text)),
		TruncatedExamples: truncated,
	}
}

// Squeeze removes comments and newlines from Verilog source, collapsing
// whitespace, as the paper does for prompt construction (Sec. IV).
func Squeeze(src string) string {
	var sb strings.Builder
	i := 0
	lastSpace := true
	for i < len(src) {
		switch {
		case strings.HasPrefix(src[i:], "//"):
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case strings.HasPrefix(src[i:], "/*"):
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				i = len(src)
			} else {
				i += 2 + end + 2
			}
		case src[i] == '\n' || src[i] == '\t' || src[i] == ' ' || src[i] == '\r':
			if !lastSpace {
				sb.WriteByte(' ')
				lastSpace = true
			}
			i++
		default:
			sb.WriteByte(src[i])
			lastSpace = false
			i++
		}
	}
	return strings.TrimSpace(sb.String())
}
