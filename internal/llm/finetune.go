package llm

import "math/rand"

// FinetuneOptions configure AssertionLLM construction (paper Sec. VI: 20
// epochs, 75/25 train/test split, same decoding hyperparameters).
type FinetuneOptions struct {
	// Epochs of corpus passes. Default 20.
	Epochs int
	// HoldoutFraction of the corpus reserved for perplexity tracking.
	// Default 0.25.
	HoldoutFraction float64
	// Seed shuffles the corpus deterministically.
	Seed int64
}

func (o FinetuneOptions) withDefaults() FinetuneOptions {
	if o.Epochs == 0 {
		o.Epochs = 20
	}
	if o.HoldoutFraction == 0 {
		o.HoldoutFraction = 0.25
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// FinetuneReport records the training trajectory.
type FinetuneReport struct {
	// PerplexityBefore/After on the held-out corpus slice.
	PerplexityBefore float64
	PerplexityAfter  float64
	// PerEpoch holds held-out perplexity after each epoch.
	PerEpoch []float64
	// Gain is the normalized improvement applied to the profile.
	Gain float64
}

// Finetune trains a copy of the model on a corpus of (design, proven
// assertions) examples and returns the AssertionLLM variant.
//
// Two things happen, mirroring Observation 5:
//
//  1. Real statistics: the n-gram tables absorb the corpus epoch by epoch,
//     which directly improves the fluency scoring and token sampling the
//     generator uses.
//  2. Behavioural annealing: the profile's error channels improve in
//     proportion to the measured held-out perplexity drop, scaled by the
//     base model's CodeAffinity — a code-pretrained base (CodeLLaMa 2)
//     converts the same data into much larger gains than a text-pretrained
//     base (LLaMa3-70B), and a text-pretrained base overfits the training
//     format at 1-shot (its confusion channel worsens slightly).
func Finetune(base *Model, corpus []Example, opt FinetuneOptions) (*Model, FinetuneReport) {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))

	var lines []string
	for _, ex := range corpus {
		lines = append(lines, ex.Assertions...)
	}
	shuffled := append([]string{}, lines...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	holdN := int(float64(len(shuffled)) * opt.HoldoutFraction)
	holdout := shuffled[:holdN]
	train := shuffled[holdN:]

	lm := base.LM.Clone()
	report := FinetuneReport{PerplexityBefore: lm.Perplexity(holdout)}
	for e := 0; e < opt.Epochs; e++ {
		epoch := append([]string{}, train...)
		rng.Shuffle(len(epoch), func(i, j int) { epoch[i], epoch[j] = epoch[j], epoch[i] })
		lm.Train(epoch)
		report.PerEpoch = append(report.PerEpoch, lm.Perplexity(holdout))
	}
	report.PerplexityAfter = lm.Perplexity(holdout)

	// Normalized improvement in [0,1): how much of the held-out surprisal
	// the training removed.
	improve := 0.0
	if report.PerplexityBefore > 0 {
		improve = 1 - report.PerplexityAfter/report.PerplexityBefore
		if improve < 0 {
			improve = 0
		}
	}
	aff := base.Profile.CodeAffinity
	report.Gain = improve * aff

	p := base.Profile
	p.Name = "AssertionLLM(" + p.Name + ")"
	p.Finetuned = true
	anneal := func(sp ShotParams, lowShot bool) ShotParams {
		// Grounding rises with gain; syntax and off-task noise collapse
		// toward the residual a fine-tuned model still exhibits (Obs. 6:
		// fine-tuning does not nullify syntax errors).
		sp.Grounding = clamp01(sp.Grounding + 0.68*report.Gain)
		sp.SyntaxNoise = clamp01(sp.SyntaxNoise * (1 - 0.55*aff))
		sp.CopyNoise = clamp01(sp.CopyNoise * (1 - 0.6*aff))
		sp.OffTask = clamp01(sp.OffTask * 0.25)
		sp.Confusion = clamp01(sp.Confusion * (1 - 0.4*report.Gain))
		if lowShot && aff < 0.5 {
			// Text-pretrained bases overfit the fine-tuning format; with a
			// single in-context example they hallucinate more confidently
			// (the paper's 1-shot regression for fine-tuned LLaMa3-70B).
			sp.Grounding = clamp01(sp.Grounding - 0.18)
			sp.Confusion = clamp01(sp.Confusion + 0.10)
		}
		return sp
	}
	p.K1 = anneal(base.Profile.K1, true)
	p.K5 = anneal(base.Profile.K5, false)

	return &Model{Profile: p, LM: lm}, report
}
