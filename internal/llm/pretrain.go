package llm

// pretrainCorpus is the small generic SVA corpus every foundational model
// is seeded with: enough to give the n-gram a prior over assertion shapes
// and operators. Fine-tuning (AssertionLLM) later adds the benchmark's
// design-specific corpus on top.
var pretrainCorpus = []string{
	"req == 1 |-> gnt == 1;",
	"valid == 1 && ready == 0 |=> valid == 1;",
	"rst == 1 |=> count == 0;",
	"start == 1 |-> ##2 done == 1;",
	"full == 1 |-> w_en == 0;",
	"empty == 1 |-> r_en == 0;",
	"$rose(req) |=> ack == 1;",
	"$fell(enable) |=> $stable(data);",
	"state == 0 && in == 1 |=> state == 1;",
	"a == 1 ##1 b == 1 |=> c == 1;",
	"en == 0 |=> $stable(q);",
	"load == 1 |=> q == d;",
	"busy == 0 |-> idle == 1;",
	"err == 1 |-> valid == 0;",
	"mode == 2'h1 |-> out != 0;",
	"sel == 0 |-> y == a;",
	"sel == 1 |-> y == b;",
	"wr == 1 && full == 0 |=> cnt == $past(cnt) + 1;",
	"rd == 1 && empty == 0 |=> cnt == $past(cnt) - 1;",
	"flush == 1 |=> cnt == 0;",
	"grant == 1 |-> req == 1;",
	"ack == 1 |-> $past(req) == 1;",
	"x == 1 |=> y == 1;",
	"x == 0 |=> y == 0;",
	"ce == 1 |=> q == $past(d);",
	"parity == 1 |-> ^data == 1;",
	"ov == 1 |-> cnt == 15;",
	"init == 1 |=> state == 0;",
	"stall == 1 |=> $stable(pc);",
	"enable == 1 && clear == 0 |=> value != 0 || value == 0;",
	"lock == 1 |-> key != 0;",
	"tx == 1 |-> ##4 done == 1;",
	"crc_ok == 1 |-> err == 0;",
	"hold == 1 |=> $stable(bus);",
	"ready == 1 ##1 valid == 1 |=> accept == 1;",
	"s0 == 1 |-> s1 == 0;",
	"up == 1 && down == 0 |=> pos == $past(pos) + 1;",
	"timeout == 1 |=> state == 0;",
	"we == 1 |=> mem_busy == 1;",
	"G(req == 1 -> X(gnt == 1));",
}

// offTaskJava are the off-task continuations the LLaMa3 profile drifts
// into (the paper observed it "tries to generate codes in a new
// programming language (such as Java)").
var offTaskJava = []string{
	"public class AssertionChecker { public static void main(String[] args) { } }",
	"System.out.println(\"assertion passed\");",
	"for (int i = 0; i < signals.length; i++) { assert signals[i] != null; }",
	"import java.util.List; // assertions below",
	"def check_assertions(design): return []",
}

// offTaskProse are generic chatbot digressions any model can produce.
var offTaskProse = []string{
	"Here are the assertions for the given design:",
	"Note that these assertions assume a synchronous reset.",
	"The design appears to implement a state machine.",
	"Sure! Based on the Verilog code, the following properties should hold.",
	"I hope these assertions are helpful for your verification task.",
}
