package llm

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestTokenizeDetokenizeRoundTrip(t *testing.T) {
	var tk Tokenizer
	cases := []string{
		"req1 == 1 && req2 == 0 |-> gnt1 == 1;",
		"a ##1 b |=> $past(c, 2) != 3'h5",
		"module m(input a); assign b = ~a; endmodule",
	}
	for _, src := range cases {
		toks := tk.Tokenize(src)
		out := tk.Detokenize(toks)
		if tk.Detokenize(tk.Tokenize(out)) != out {
			t.Errorf("detokenize not stable for %q -> %q", src, out)
		}
		// Token multiset must survive.
		toks2 := tk.Tokenize(out)
		if len(toks) != len(toks2) {
			t.Errorf("token count changed: %v vs %v", toks, toks2)
		}
	}
}

func TestTokenizeNeverLosesOperators(t *testing.T) {
	var tk Tokenizer
	toks := tk.Tokenize("a|->b |=> c ## 1 == != && ||")
	want := []string{"a", "|->", "b", "|=>", "c", "##", "1", "==", "!=", "&&", "||"}
	if len(toks) != len(want) {
		t.Fatalf("got %v, want %v", toks, want)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, toks[i], want[i])
		}
	}
}

func TestTokenizerTotal(t *testing.T) {
	// Property: tokenizing arbitrary bytes terminates and loses no
	// word characters.
	var tk Tokenizer
	f := func(data []byte) bool {
		s := string(data)
		toks := tk.Tokenize(s)
		var kept, orig int
		for _, tok := range toks {
			for i := 0; i < len(tok); i++ {
				if isWordCont(tok[i]) {
					kept++
				}
			}
		}
		for i := 0; i < len(s); i++ {
			if isWordCont(s[i]) {
				orig++
			}
		}
		return kept == orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVocab(t *testing.T) {
	v := NewVocab()
	if v.ID("<bos>") != TokBOS || v.ID("<eos>") != TokEOS {
		t.Fatal("special tokens misplaced")
	}
	a := v.Add("req")
	if v.Add("req") != a {
		t.Error("Add must be idempotent")
	}
	if v.Token(a) != "req" {
		t.Error("Token round trip failed")
	}
	if v.ID("unknown") != -1 {
		t.Error("unknown token should be -1")
	}
}

func TestNGramProbabilityProperties(t *testing.T) {
	lm := NewNGram(NewVocab())
	lm.Train(pretrainCorpus)
	f := func(a, b, c uint16) bool {
		n := lm.vocab.Size()
		p := lm.Prob(int(a)%n, int(b)%n, int(c)%n)
		return p > 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNGramTrainingLowersPerplexity(t *testing.T) {
	lm := NewNGram(NewVocab())
	lm.Train(pretrainCorpus)
	domain := []string{
		"w_en == 1 && full == 0 |=> count != 0;",
		"r_en == 1 && empty == 0 |=> count != 8;",
		"rst == 1 |=> wptr == 0;",
	}
	before := lm.Perplexity(domain)
	for i := 0; i < 5; i++ {
		lm.Train(domain)
	}
	after := lm.Perplexity(domain)
	if after >= before {
		t.Errorf("training did not lower perplexity: %.2f -> %.2f", before, after)
	}
}

func TestNGramSamplingDeterministic(t *testing.T) {
	lm := NewNGram(NewVocab())
	lm.Train(pretrainCorpus)
	cands := []string{"req", "gnt", "rst", "count"}
	a := lm.SampleToken("==", "1", cands, 1.0, 0.95, rand.New(rand.NewSource(5)))
	b := lm.SampleToken("==", "1", cands, 1.0, 0.95, rand.New(rand.NewSource(5)))
	if a != b {
		t.Errorf("same seed produced %q vs %q", a, b)
	}
	found := false
	for _, c := range cands {
		if a == c {
			found = true
		}
	}
	if !found {
		t.Errorf("sampled token %q outside candidate set", a)
	}
}

func TestNGramGreedyPicksArgmax(t *testing.T) {
	lm := NewNGram(NewVocab())
	lm.Train([]string{"a b c;", "a b c;", "a b d;"})
	rng := rand.New(rand.NewSource(1))
	// After context "a b", c is twice as likely as d; temperature ~0 must
	// always pick c.
	for i := 0; i < 20; i++ {
		got := lm.SampleToken("a", "b", []string{"c", "d"}, 0, 0.95, rng)
		if got != "c" {
			t.Fatalf("greedy decode picked %q, want c", got)
		}
	}
}

func TestNGramCloneIsolation(t *testing.T) {
	lm := NewNGram(NewVocab())
	lm.Train(pretrainCorpus)
	before := lm.Perplexity(pretrainCorpus[:5])
	clone := lm.Clone()
	for i := 0; i < 10; i++ {
		clone.Train([]string{"zzz qqq www;"})
	}
	after := lm.Perplexity(pretrainCorpus[:5])
	if math.Abs(before-after) > 1e-9 {
		t.Error("training a clone mutated the original model")
	}
}

func TestBuildPromptFormat(t *testing.T) {
	examples := []Example{
		{Name: "arb2", Source: "module arb2(a);\n// comment\ninput a;\nendmodule", Assertions: []string{"a == 1 |-> a == 1;"}},
	}
	p := BuildPrompt(examples, "module t(b);\ninput b;\nendmodule", 0)
	if !strings.HasPrefix(p.Text, TaskDescription) {
		t.Error("prompt must begin with the task description")
	}
	for _, frag := range []string{"Program 1:", "Assertions 1:", "Test Program:", "Test Assertions:"} {
		if !strings.Contains(p.Text, frag) {
			t.Errorf("prompt missing %q", frag)
		}
	}
	if strings.Contains(p.Text, "// comment") || strings.Contains(p.TestSource, "\n") {
		t.Error("comments and newlines must be squeezed (paper Sec. IV)")
	}
}

func TestBuildPromptTruncation(t *testing.T) {
	big := Example{Name: "big", Source: strings.Repeat("wire aaa; ", 300), Assertions: []string{"aaa == 1 |-> aaa == 1;"}}
	small := Example{Name: "small", Source: "module s(x); input x; endmodule", Assertions: []string{"x == 0 |-> x == 0;"}}
	p := BuildPrompt([]Example{big, small}, "module t(y); input y; endmodule", 200)
	if p.TruncatedExamples == 0 {
		t.Fatal("context window should have forced truncation")
	}
	if len(p.Examples) == 0 || p.Examples[len(p.Examples)-1].Name != "small" {
		t.Error("truncation must drop the oldest examples first")
	}
	if p.Tokens > 200 {
		t.Errorf("prompt still %d tokens after truncation", p.Tokens)
	}
}

func TestSqueeze(t *testing.T) {
	src := "a // line\nb /* block\nmore */ c\n\n  d"
	got := Squeeze(src)
	if got != "a b c d" {
		t.Errorf("Squeeze = %q, want %q", got, "a b c d")
	}
}

const testDesign = `
module counter(clk, rst, en, count);
input clk, rst, en;
output [3:0] count;
reg [3:0] count;
always @(posedge clk or posedge rst)
  if (rst) count <= 4'b0;
  else if (en) count <= count + 1;
endmodule
`

func testExamples() []Example {
	return []Example{
		{Name: "arb2", Source: "module arb2(r, g); input r; output g; assign g = r; endmodule",
			Assertions: []string{"r == 1 |-> g == 1;", "r == 0 |-> g == 0;"}},
		{Name: "tff", Source: "module tff(clk, t, q); input clk, t; output q; reg q; always @(posedge clk) if (t) q <= ~q; endmodule",
			Assertions: []string{"t == 0 |=> $stable(q);"}},
		{Name: "ha", Source: "module ha(a, b, s); input a, b; output s; assign s = a ^ b; endmodule",
			Assertions: []string{"a == b |-> s == 0;"}},
		{Name: "fs", Source: "module fs(a, b, d); input a, b; output d; assign d = a ^ b; endmodule",
			Assertions: []string{"a == 1 && b == 0 |-> d == 1;"}},
		{Name: "fa", Source: "module fa(a, b, c); input a, b; output c; assign c = a & b; endmodule",
			Assertions: []string{"a == 0 |-> c == 0;"}},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m := New(GPT4o())
	p := BuildPrompt(testExamples(), testDesign, m.Profile.ContextWindow)
	a, err := m.Generate(context.Background(), p, GenOptions{Shots: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Generate(context.Background(), p, GenOptions{Shots: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Text != b.Text {
		t.Fatalf("same seed, different output:\n%s\n---\n%s", a.Text, b.Text)
	}
	c, err := m.Generate(context.Background(), p, GenOptions{Shots: 5, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if a.Text == c.Text {
		t.Error("different seeds produced identical output (suspicious)")
	}
}

func TestGenerateRespectsDesignSignals(t *testing.T) {
	// With all noise channels off, generated assertions must reference
	// only the test design's signals.
	p := GPT4o()
	p.K1 = ShotParams{Grounding: 1}
	p.K5 = p.K1
	m := New(p)
	prompt := BuildPrompt(testExamples(), testDesign, m.Profile.ContextWindow)
	gen, err := m.Generate(context.Background(), prompt, GenOptions{Shots: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range gen.Lines {
		for _, bad := range []string{"gnt", "req1"} {
			if strings.Contains(line, bad) {
				t.Errorf("noise-free generation leaked example signal %q: %s", bad, line)
			}
		}
	}
	if gen.Grounded == 0 {
		t.Error("pure-grounding profile generated nothing from the pool")
	}
}

func TestGenerateOffTaskChannel(t *testing.T) {
	p := Llama3()
	p.K1 = ShotParams{OffTask: 1}
	m := New(p)
	prompt := BuildPrompt(testExamples(), testDesign, m.Profile.ContextWindow)
	gen, err := m.Generate(context.Background(), prompt, GenOptions{Shots: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if gen.OffTask != len(gen.Lines) {
		t.Errorf("OffTask=1 profile produced %d off-task of %d lines", gen.OffTask, len(gen.Lines))
	}
}

func TestGenerateTokenBudget(t *testing.T) {
	p := GPT35()
	p.MaxTokens = 12
	m := New(p)
	prompt := BuildPrompt(testExamples(), testDesign, m.Profile.ContextWindow)
	gen, err := m.Generate(context.Background(), prompt, GenOptions{Shots: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var tk Tokenizer
	total := 0
	for _, l := range gen.Lines {
		total += len(tk.Tokenize(l))
	}
	if total > 12+4 { // final line may be cut exactly at the boundary
		t.Errorf("token budget exceeded: %d tokens emitted", total)
	}
}

func TestGenerateUnparseableDesignFallsBack(t *testing.T) {
	m := New(GPT35())
	prompt := BuildPrompt(testExamples(), "totally not verilog %%% module ???", m.Profile.ContextWindow)
	gen, err := m.Generate(context.Background(), prompt, GenOptions{Shots: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Lines) == 0 {
		t.Error("generation must degrade gracefully on unparseable designs")
	}
}

func TestProfileInterpolation(t *testing.T) {
	p := GPT35()
	k3 := p.At(3)
	if k3.Grounding <= p.K1.Grounding || k3.Grounding >= p.K5.Grounding {
		t.Errorf("3-shot grounding %f not between 1-shot %f and 5-shot %f",
			k3.Grounding, p.K1.Grounding, p.K5.Grounding)
	}
	if p.At(0) != p.K1 || p.At(9) != p.K5 {
		t.Error("At must clamp outside [1,5]")
	}
}

func TestCOTSProfilesCalibrationShape(t *testing.T) {
	// The calibrated channels must encode the paper's observations
	// structurally (the full numeric check is the eval test).
	if g35 := GPT35(); g35.K5.Grounding <= 2*g35.K1.Grounding {
		t.Error("GPT-3.5 must roughly double its grounding 1->5 shot (Obs 1)")
	}
	l3 := Llama3()
	if l3.K5.SyntaxNoise <= l3.K1.SyntaxNoise || l3.K5.OffTask <= l3.K1.OffTask {
		t.Error("LLaMa3 must degrade with more shots (Obs 1/2)")
	}
	if cl := CodeLlama2(); cl.CodeAffinity <= Llama3().CodeAffinity {
		t.Error("CodeLLaMa must have higher code affinity than LLaMa3 (Obs 5)")
	}
}

// finetuneCorpus builds a corpus large enough for stable held-out
// perplexity measurement (the real one has ~80 mined design examples).
func finetuneCorpus() []Example {
	sigs := []string{"req", "gnt", "valid", "ready", "full", "empty", "busy", "done", "start", "stop"}
	var out []Example
	for i, a := range sigs {
		for j, b := range sigs {
			if i == j {
				continue
			}
			out = append(out, Example{
				Name: a + "_" + b,
				Assertions: []string{
					a + " == 1 |-> " + b + " == 0;",
					a + " == 0 |=> " + b + " == 1;",
					"rst == 1 |=> " + a + " == 0;",
				},
			})
		}
	}
	return out
}

func TestFinetuneImprovesModel(t *testing.T) {
	base := New(CodeLlama2())
	corpus := finetuneCorpus()
	tuned, report := Finetune(base, corpus, FinetuneOptions{Epochs: 5, Seed: 2})
	if report.PerplexityAfter >= report.PerplexityBefore {
		t.Errorf("fine-tuning did not reduce perplexity: %.1f -> %.1f",
			report.PerplexityBefore, report.PerplexityAfter)
	}
	if len(report.PerEpoch) != 5 {
		t.Errorf("expected 5 per-epoch records, got %d", len(report.PerEpoch))
	}
	if !tuned.Profile.Finetuned {
		t.Error("tuned profile must be marked Finetuned")
	}
	if tuned.Profile.K5.Grounding <= base.Profile.K5.Grounding {
		t.Error("fine-tuning must raise grounding (Obs 5)")
	}
	if tuned.Profile.K5.SyntaxNoise >= base.Profile.K5.SyntaxNoise {
		t.Error("fine-tuning must reduce syntax noise")
	}
	if tuned.Profile.K5.SyntaxNoise == 0 {
		t.Error("fine-tuning must not nullify syntax errors (Obs 6)")
	}
}

func TestFinetuneAffinityScaling(t *testing.T) {
	corpus := finetuneCorpus()
	_, repCode := Finetune(New(CodeLlama2()), corpus, FinetuneOptions{Epochs: 5, Seed: 2})
	_, repText := Finetune(New(Llama3()), corpus, FinetuneOptions{Epochs: 5, Seed: 2})
	if repCode.Gain <= repText.Gain {
		t.Errorf("code-pretrained base must gain more: %.3f vs %.3f (Obs 5)",
			repCode.Gain, repText.Gain)
	}
	tunedText, _ := Finetune(New(Llama3()), corpus, FinetuneOptions{Epochs: 5, Seed: 2})
	if tunedText.Profile.K1.Confusion <= Llama3().K1.Confusion {
		t.Error("low-affinity base must show the 1-shot overfit regression (paper Obs 5)")
	}
}

func TestHarvestExampleSignals(t *testing.T) {
	got := harvestExampleSignals(testExamples()[:1])
	want := map[string]bool{"r": true, "g": true}
	for _, s := range got {
		if !want[s] {
			t.Errorf("unexpected harvested signal %q", s)
		}
		delete(want, s)
	}
	if len(want) != 0 {
		t.Errorf("missing signals: %v", want)
	}
}

func TestCorruptSyntaxAlwaysChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	line := "req == 1 && ack == 0 |-> ##1 done == 1;"
	for i := 0; i < 100; i++ {
		got := corruptSyntax(line, rng)
		if got == line {
			t.Fatalf("corruption %d left the line unchanged", i)
		}
	}
}

// TestGenerateConcurrentSafeAndDeterministic exercises the concurrency
// contract the evaluation runner depends on: many goroutines sharing one
// Model (and hitting the shared design-context cache on the same and on
// different designs) must race-cleanly produce exactly the output a
// sequential caller gets for the same (prompt, seed).
func TestGenerateConcurrentSafeAndDeterministic(t *testing.T) {
	model := New(GPT4o())
	designs := []string{
		"module a(clk, rst, q); input clk, rst; output q; reg q;\nalways @(posedge clk or posedge rst) if (rst) q <= 0; else q <= ~q;\nendmodule",
		"module b(x, y, s); input x, y; output s; assign s = x ^ y;\nendmodule",
	}
	examples := []Example{{
		Name:       "t_ff",
		Source:     "module t_ff(clk, rst, t, q); input clk, rst, t; output q; reg q;\nalways @(posedge clk or posedge rst) if (rst) q <= 0; else if (t) q <= ~q;\nendmodule",
		Assertions: []string{"rst == 1 |=> q == 0;"},
	}}

	type call struct {
		design int
		seed   int64
	}
	var calls []call
	for d := range designs {
		for s := int64(1); s <= 8; s++ {
			calls = append(calls, call{d, s})
		}
	}
	want := make([]GenResult, len(calls))
	for i, c := range calls {
		p := BuildPrompt(examples, designs[c.design], model.Profile.ContextWindow)
		want[i], _ = model.Generate(context.Background(), p, GenOptions{Shots: 1, Seed: c.seed})
	}

	got := make([]GenResult, len(calls))
	var wg sync.WaitGroup
	for i, c := range calls {
		i, c := i, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := BuildPrompt(examples, designs[c.design], model.Profile.ContextWindow)
			got[i], _ = model.Generate(context.Background(), p, GenOptions{Shots: 1, Seed: c.seed})
		}()
	}
	wg.Wait()
	for i := range calls {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Errorf("call %d (design %d, seed %d): concurrent output diverged\nwant %q\ngot  %q",
				i, calls[i].design, calls[i].seed, want[i].Text, got[i].Text)
		}
	}
}
