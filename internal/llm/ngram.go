package llm

import (
	"math"
	"math/rand"
	"sort"
)

// NGram is an order-3 language model with interpolated backoff and add-k
// smoothing. It is deliberately small — the point is that decoding,
// scoring, perplexity, and fine-tuning are real statistical procedures,
// not canned outputs.
type NGram struct {
	vocab *Vocab

	uni    map[int]int
	bi     map[[2]int]map[int]int
	tri    map[[3]int]map[int]int
	biTot  map[[2]int]int
	triTot map[[3]int]int
	total  int

	// Interpolation weights for trigram/bigram/unigram.
	L3, L2, L1 float64
	// AddK is the smoothing constant.
	AddK float64
}

// NewNGram returns an empty model sharing the given vocabulary.
func NewNGram(v *Vocab) *NGram {
	return &NGram{
		vocab:  v,
		uni:    map[int]int{},
		bi:     map[[2]int]map[int]int{},
		tri:    map[[3]int]map[int]int{},
		biTot:  map[[2]int]int{},
		triTot: map[[3]int]int{},
		L3:     0.6, L2: 0.3, L1: 0.1,
		AddK: 0.05,
	}
}

// Vocab exposes the model's vocabulary.
func (m *NGram) Vocab() *Vocab { return m.vocab }

// TrainSequence accumulates counts from one encoded sequence (BOS..EOS).
func (m *NGram) TrainSequence(seq []int) {
	for _, t := range seq {
		m.uni[t]++
		m.total++
	}
	for i := 1; i < len(seq); i++ {
		prev := seq[i-1]
		cur := seq[i]
		key2 := [2]int{prev, -1}
		if m.bi[key2] == nil {
			m.bi[key2] = map[int]int{}
		}
		m.bi[key2][cur]++
		m.biTot[key2]++
		if i >= 2 {
			key3 := [3]int{seq[i-2], prev, -1}
			if m.tri[key3] == nil {
				m.tri[key3] = map[int]int{}
			}
			m.tri[key3][cur]++
			m.triTot[key3]++
		}
	}
}

// Train tokenizes and trains on a batch of text lines.
func (m *NGram) Train(lines []string) {
	var tk Tokenizer
	for _, line := range lines {
		m.TrainSequence(m.vocab.Encode(tk.Tokenize(line)))
	}
}

// Prob returns P(tok | prev2 prev1) with interpolation and smoothing.
func (m *NGram) Prob(prev2, prev1, tok int) float64 {
	v := float64(m.vocab.Size())
	p1 := (float64(m.uni[tok]) + m.AddK) / (float64(m.total) + m.AddK*v)
	key2 := [2]int{prev1, -1}
	p2 := p1
	if tot := m.biTot[key2]; tot > 0 {
		p2 = (float64(m.bi[key2][tok]) + m.AddK) / (float64(tot) + m.AddK*v)
	}
	key3 := [3]int{prev2, prev1, -1}
	p3 := p2
	if tot := m.triTot[key3]; tot > 0 {
		p3 = (float64(m.tri[key3][tok]) + m.AddK) / (float64(tot) + m.AddK*v)
	}
	return m.L3*p3 + m.L2*p2 + m.L1*p1
}

// ScoreTokens returns the average negative log2 probability of a token
// string sequence (lower is more fluent under the model).
func (m *NGram) ScoreTokens(toks []string) float64 {
	seq := make([]int, 0, len(toks)+2)
	seq = append(seq, TokBOS)
	for _, t := range toks {
		id := m.vocab.ID(t)
		if id < 0 {
			id = m.vocab.Size() // unseen: maximally surprising under AddK
		}
		seq = append(seq, id)
	}
	seq = append(seq, TokEOS)
	nll := 0.0
	for i := 1; i < len(seq); i++ {
		prev2 := TokBOS
		if i >= 2 {
			prev2 = seq[i-2]
		}
		nll += -math.Log2(m.Prob(prev2, seq[i-1], seq[i]))
	}
	return nll / float64(len(seq)-1)
}

// Perplexity of a batch of lines under the model.
func (m *NGram) Perplexity(lines []string) float64 {
	var tk Tokenizer
	total, n := 0.0, 0
	for _, line := range lines {
		toks := tk.Tokenize(line)
		total += m.ScoreTokens(toks) * float64(len(toks)+1)
		n += len(toks) + 1
	}
	if n == 0 {
		return math.Inf(1)
	}
	return math.Exp2(total / float64(n))
}

// SampleNext draws the next token id given two tokens of context, using
// temperature scaling and nucleus (top-p) truncation. candidates may
// restrict the choice set (grammar-guided decoding); nil means the whole
// vocabulary observed in context.
func (m *NGram) SampleNext(prev2, prev1 int, candidates []int, temp, topP float64, rng *rand.Rand) int {
	if len(candidates) == 0 {
		seen := map[int]bool{}
		if d := m.tri[[3]int{prev2, prev1, -1}]; d != nil {
			for t := range d {
				seen[t] = true
			}
		}
		if d := m.bi[[2]int{prev1, -1}]; d != nil {
			for t := range d {
				seen[t] = true
			}
		}
		if len(seen) == 0 {
			for t := range m.uni {
				seen[t] = true
			}
		}
		for t := range seen {
			candidates = append(candidates, t)
		}
		sort.Ints(candidates)
	}
	if len(candidates) == 1 {
		return candidates[0]
	}
	type scored struct {
		tok int
		p   float64
	}
	// Greedy limit: pick the argmax outright (pow underflows there).
	if temp < 1e-3 {
		best, bestP := candidates[0], -1.0
		for _, t := range candidates {
			if p := m.Prob(prev2, prev1, t); p > bestP {
				best, bestP = t, p
			}
		}
		return best
	}
	items := make([]scored, 0, len(candidates))
	sum := 0.0
	for _, t := range candidates {
		p := math.Pow(m.Prob(prev2, prev1, t), 1.0/temp)
		items = append(items, scored{t, p})
		sum += p
	}
	if sum == 0 {
		return candidates[rng.Intn(len(candidates))]
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].p != items[j].p {
			return items[i].p > items[j].p
		}
		return items[i].tok < items[j].tok
	})
	// Nucleus truncation.
	if topP > 0 && topP < 1 {
		acc := 0.0
		cut := len(items)
		for i, it := range items {
			acc += it.p / sum
			if acc >= topP {
				cut = i + 1
				break
			}
		}
		items = items[:cut]
		sum = 0
		for _, it := range items {
			sum += it.p
		}
	}
	r := rng.Float64() * sum
	for _, it := range items {
		r -= it.p
		if r <= 0 {
			return it.tok
		}
	}
	return items[len(items)-1].tok
}

// SampleToken is SampleNext over token strings.
func (m *NGram) SampleToken(prev2, prev1 string, candidates []string, temp, topP float64, rng *rand.Rand) string {
	ids := make([]int, 0, len(candidates))
	for _, c := range candidates {
		ids = append(ids, m.vocab.Add(c))
	}
	p2 := m.vocab.ID(prev2)
	if p2 < 0 {
		p2 = TokBOS
	}
	p1 := m.vocab.ID(prev1)
	if p1 < 0 {
		p1 = TokBOS
	}
	return m.vocab.Token(m.SampleNext(p2, p1, ids, temp, topP, rng))
}

// Clone deep-copies the model including its vocabulary, so training or
// sampling on the copy never perturbs the original (fine-tuning and
// in-context conditioning both train clones).
func (m *NGram) Clone() *NGram {
	v := NewVocab()
	for _, tok := range m.vocab.toks[2:] { // specials pre-added
		v.Add(tok)
	}
	out := NewNGram(v)
	out.L3, out.L2, out.L1, out.AddK = m.L3, m.L2, m.L1, m.AddK
	for k, v := range m.uni {
		out.uni[k] = v
	}
	out.total = m.total
	for k, d := range m.bi {
		nd := make(map[int]int, len(d))
		for t, c := range d {
			nd[t] = c
		}
		out.bi[k] = nd
	}
	for k, v := range m.biTot {
		out.biTot[k] = v
	}
	for k, d := range m.tri {
		nd := make(map[int]int, len(d))
		for t, c := range d {
			nd[t] = c
		}
		out.tri[k] = nd
	}
	for k, v := range m.triTot {
		out.triTot[k] = v
	}
	return out
}
