package llm

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"assertionbench/internal/rtlgraph"
	"assertionbench/internal/sim"
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// Model is a simulated LLM: a profile (decoding settings + calibrated
// error channels) plus a trained n-gram language model.
type Model struct {
	Profile Profile
	LM      *NGram
}

// New builds a foundational model: the n-gram is pretrained on the generic
// SVA corpus.
func New(p Profile) *Model {
	lm := NewNGram(NewVocab())
	lm.Train(pretrainCorpus)
	return &Model{Profile: p, LM: lm}
}

// GenOptions configure one generation call.
type GenOptions struct {
	// Shots is the number of in-context examples the prompt was built
	// with (selects the profile's error channels).
	Shots int
	// Seed drives all sampling; same prompt + same seed = same output.
	Seed int64
}

// GenResult is the raw model output plus channel bookkeeping used by the
// ablation benches.
type GenResult struct {
	// Text is the raw completion (one assertion per line, plus whatever
	// off-task content leaked through).
	Text string
	// Lines are the individual output lines.
	Lines []string
	// OffTask counts off-task lines emitted.
	OffTask int
	// Grounded counts assertions that came from the design-behaviour pool.
	Grounded int
	// Corrupted counts assertions that received syntax noise.
	Corrupted int
}

// Generate produces assertions for the prompt's test design. The only
// error it returns is ctx.Err() when the context is canceled mid-call;
// model misbehaviour (off-task drift, truncation, corruption) is data,
// reported inside GenResult the way a real API would return it.
//
// Generate is safe for concurrent use on one shared *Model: it only reads
// the profile and the pretrained n-gram (in-context conditioning trains a
// per-call clone with its own vocabulary), all sampling uses a rand.Rand
// seeded per call from opt.Seed, and the design-context cache is a
// sync.Map whose entries are deterministic in the design source and read
// -only after construction. The evaluation runner relies on this to share
// one model across its worker pool. Callers must not mutate Profile or LM
// while Generate runs.
func (m *Model) Generate(ctx context.Context, prompt Prompt, opt GenOptions) (GenResult, error) {
	if err := ctx.Err(); err != nil {
		return GenResult{}, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	params := m.Profile.At(opt.Shots)

	// In-context conditioning: the example assertions sharpen a clone of
	// the language model for this call only.
	lm := m.LM.Clone()
	for _, ex := range prompt.Examples {
		lm.Train(ex.Assertions)
	}

	dctx := buildDesignCtx(prompt.TestSource, opt.Seed)
	leaked := harvestExampleSignals(prompt.Examples)

	n := 3 + rng.Intn(5) // 3..7 assertions, matching the ICE density
	var res GenResult
	var tk Tokenizer
	budget := m.Profile.MaxTokens

	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return GenResult{}, err
		}
		var line string
		switch {
		case rng.Float64() < params.OffTask:
			line = m.offTaskLine(rng)
			res.OffTask++
		default:
			var a *sva.Assertion
			if rng.Float64() < params.Grounding && len(dctx.pool) > 0 {
				a = dctx.samplePool(lm, rng, m.Profile.Temperature)
				res.Grounded++
				if rng.Float64() < params.Confusion {
					a = confuse(a, rng)
				}
			} else {
				a = dctx.sampleUngrounded(lm, rng, m.Profile)
			}
			if a == nil {
				line = m.offTaskLine(rng)
				res.OffTask++
				break
			}
			line = a.String() + ";"
			line = applyCopyNoise(line, dctx, leaked, params.CopyNoise, rng)
			if rng.Float64() < params.SyntaxNoise {
				line = corruptSyntax(line, rng)
				res.Corrupted++
			}
		}
		toks := tk.Tokenize(line)
		if budget >= 0 && len(toks) > budget {
			// Token budget exhausted mid-line: truncated output, exactly
			// the way a max_tokens cutoff manifests.
			line = tk.Detokenize(toks[:budget])
			res.Lines = append(res.Lines, line)
			break
		}
		budget -= len(toks)
		res.Lines = append(res.Lines, line)
	}
	res.Text = strings.Join(res.Lines, "\n")
	return res, nil
}

func (m *Model) offTaskLine(rng *rand.Rand) string {
	if m.Profile.Family == "llama" && rng.Float64() < 0.6 {
		return offTaskJava[rng.Intn(len(offTaskJava))]
	}
	return offTaskProse[rng.Intn(len(offTaskProse))]
}

// --- design context ---

type sigInfo struct {
	name    string
	width   int
	isInput bool
	isReg   bool
}

type poolEntry struct {
	a       *sva.Assertion
	support int
	// toks caches the tokenized rendering: samplePool scores every entry
	// on every generation call, and the entries never change.
	toks []string
}

type designCtx struct {
	nl   *verilog.Netlist
	sigs []sigInfo
	pool []poolEntry
}

// ctxCache memoizes design contexts: the grounded pool is a function of
// the design text only, so concurrent evaluations of many models share it.
var ctxCache sync.Map // source string -> *designCtx

// buildDesignCtx "reads" the test design the way the model sees it: parse
// it with the real front end; if that succeeds, simulate to build a pool
// of behaviour-consistent candidate assertions (the grounded channel). On
// any failure, fall back to surface-level identifier harvest.
func buildDesignCtx(source string, seed int64) *designCtx {
	if v, ok := ctxCache.Load(source); ok {
		return v.(*designCtx)
	}
	ctx := &designCtx{}
	nl, err := verilog.ElaborateSource(source, "")
	if err != nil {
		ctx.sigs = harvestIdentifiers(source)
		ctxCache.Store(source, ctx)
		return ctx
	}
	ctx.nl = nl
	for _, n := range nl.Nets {
		if n.IsClock || strings.Contains(n.Name, ".") {
			continue
		}
		ctx.sigs = append(ctx.sigs, sigInfo{name: n.Name, width: n.Width, isInput: n.IsInput, isReg: n.IsReg})
	}
	sort.Slice(ctx.sigs, func(i, j int) bool { return ctx.sigs[i].name < ctx.sigs[j].name })
	// Screening traces use design-derived seeds so the pool is a stable
	// property of the design, not of the caller.
	var traces []*sim.Trace
	for i := int64(0); i < 3; i++ {
		tr, err := sim.RandomTrace(nl, 160, 2, 0x5eed+i*7789)
		if err != nil {
			ctxCache.Store(source, ctx)
			return ctx
		}
		traces = append(traces, tr)
	}
	ctx.pool = screenPool(nl, traces)
	ctxCache.Store(source, ctx)
	return ctx
}

// screenPool instantiates temporal templates over dependency-related nets
// and keeps those consistent with every screening trace. No FPV here: the
// pool represents what a design-aware model would believe after reading
// the RTL (the CDFG/COI artifacts of Observation 4) and mentally
// simulating it; belief can still be wrong on states the traces missed.
func screenPool(nl *verilog.Netlist, traces []*sim.Trace) []poolEntry {
	g := rtlgraph.Build(nl)
	var small []int
	for _, n := range nl.Nets {
		if !n.IsClock && n.Width <= 4 && !strings.Contains(n.Name, ".") {
			small = append(small, n.Index)
		}
	}
	atomExpr := func(net int, val uint64) verilog.Expr {
		return &verilog.Binary{Op: "==",
			X: &verilog.Ident{Name: nl.Nets[net].Name},
			Y: &verilog.Number{Value: val, Width: nl.Nets[net].Width}}
	}
	vals := func(net int) []uint64 {
		seen := map[uint64]int{}
		for _, tr := range traces {
			for c := 0; c < tr.Len(); c++ {
				seen[tr.Value(c, net)]++
			}
		}
		out := make([]uint64, 0, len(seen))
		for v := range seen {
			out = append(out, v)
		}
		sort.Slice(out, func(i, j int) bool {
			if seen[out[i]] != seen[out[j]] {
				return seen[out[i]] > seen[out[j]]
			}
			return out[i] < out[j]
		})
		if len(out) > 2 {
			out = out[:2]
		}
		return out
	}
	// screen checks an implication on every trace; it must never be
	// contradicted and must fire often enough to be believable.
	screen := func(anteNet int, anteVal uint64, consNet int, consVal uint64, lag int) (int, bool) {
		total := 0
		for _, tr := range traces {
			for c := 0; c+lag < tr.Len(); c++ {
				if tr.Value(c, anteNet) == anteVal {
					total++
					if tr.Value(c+lag, consNet) != consVal {
						return total, false
					}
				}
			}
		}
		return total, total >= 10
	}
	var pool []poolEntry
	add := func(a *sva.Assertion, support int) {
		pool = append(pool, poolEntry{a: a, support: support})
	}
	// Pairwise implications, restricted to dependency-related nets: the
	// antecedent must be inside the consequent's cone of influence (or
	// vice versa for backward witnesses).
	for _, b := range small {
		coi := g.ConeOfInfluence(b)
		for _, a := range small {
			if a == b || !coi[a] {
				continue
			}
			for _, va := range vals(a) {
				for _, vb := range vals(b) {
					for lag := 0; lag <= 1; lag++ {
						support, ok := screen(a, va, b, vb, lag)
						if !ok {
							continue
						}
						add(&sva.Assertion{
							Ante:       []sva.Step{{Expr: atomExpr(a, va)}},
							Cons:       []sva.Step{{Expr: atomExpr(b, vb)}},
							NonOverlap: lag == 1,
						}, support)
					}
				}
			}
		}
		if len(pool) > 150 {
			break
		}
	}
	// Reset templates: rst-like inputs clearing registers are the
	// assertions every design-aware generator writes first.
	for _, r := range nl.Inputs {
		if !isResetName(nl.Nets[r].Name) || nl.Nets[r].Width != 1 {
			continue
		}
		for _, q := range nl.Regs {
			if nl.Nets[q].Width > 8 || strings.Contains(nl.Nets[q].Name, ".") {
				continue
			}
			if support, ok := screen(r, 1, q, 0, 1); ok {
				add(&sva.Assertion{
					Ante:       []sva.Step{{Expr: atomExpr(r, 1)}},
					Cons:       []sva.Step{{Expr: atomExpr(q, 0)}},
					NonOverlap: true,
				}, support+20) // favored: reset properties dominate real usage
			}
		}
	}
	// Stability templates: enable-low holds state.
	for _, e := range nl.Inputs {
		ne := nl.Nets[e]
		if ne.Width != 1 || isResetName(ne.Name) {
			continue
		}
		for _, q := range nl.Regs {
			if strings.Contains(nl.Nets[q].Name, ".") || !g.ConeOfInfluence(q)[e] {
				continue
			}
			held := 0
			ok := true
			for _, tr := range traces {
				for c := 0; c+1 < tr.Len(); c++ {
					if tr.Value(c, e) == 0 && allResetsLow(nl, tr, c) {
						held++
						if tr.Value(c+1, q) != tr.Value(c, q) {
							ok = false
							break
						}
					}
				}
				if !ok {
					break
				}
			}
			if ok && held >= 10 {
				ante := atomExpr(e, 0)
				for _, r := range nl.Inputs {
					if isResetName(nl.Nets[r].Name) && nl.Nets[r].Width == 1 {
						ante = &verilog.Binary{Op: "&&", X: ante, Y: atomExpr(r, 0)}
					}
				}
				add(&sva.Assertion{
					Ante: []sva.Step{{Expr: ante}},
					Cons: []sva.Step{{Expr: &verilog.Call{Name: "$stable",
						Args: []verilog.Expr{&verilog.Ident{Name: nl.Nets[q].Name}}}}},
					NonOverlap: true,
				}, held)
			}
		}
	}
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].support != pool[j].support {
			return pool[i].support > pool[j].support
		}
		return pool[i].a.String() < pool[j].a.String()
	})
	if len(pool) > 60 {
		pool = pool[:60]
	}
	var tk Tokenizer
	for i := range pool {
		pool[i].toks = tk.Tokenize(pool[i].a.String())
	}
	return pool
}

func isResetName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "rst") || strings.Contains(l, "reset") || strings.Contains(l, "clear")
}

func allResetsLow(nl *verilog.Netlist, tr *sim.Trace, c int) bool {
	for _, r := range nl.Inputs {
		if isResetName(nl.Nets[r].Name) && tr.Value(c, r) != 0 {
			return false
		}
	}
	return true
}

// samplePool draws a pool candidate weighted by language-model fluency.
func (ctx *designCtx) samplePool(lm *NGram, rng *rand.Rand, temp float64) *sva.Assertion {
	if len(ctx.pool) == 0 {
		return nil
	}
	weights := make([]float64, len(ctx.pool))
	sum := 0.0
	for i, p := range ctx.pool {
		score := lm.ScoreTokens(p.toks)
		w := math.Exp(-score / (2 * math.Max(temp, 0.1)))
		w *= float64(p.support)
		weights[i] = w
		sum += w
	}
	r := rng.Float64() * sum
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return clone(ctx.pool[i].a)
		}
	}
	return clone(ctx.pool[len(ctx.pool)-1].a)
}

// sampleUngrounded free-associates a plausible assertion from surface
// signals, with identifier choice steered by the language model.
func (ctx *designCtx) sampleUngrounded(lm *NGram, rng *rand.Rand, p Profile) *sva.Assertion {
	if len(ctx.sigs) == 0 {
		return nil
	}
	pick := func(prev2, prev1 string) sigInfo {
		names := make([]string, len(ctx.sigs))
		for i, s := range ctx.sigs {
			names[i] = s.name
		}
		name := lm.SampleToken(prev2, prev1, names, p.Temperature, p.TopP, rng)
		for _, s := range ctx.sigs {
			if s.name == name {
				return s
			}
		}
		return ctx.sigs[rng.Intn(len(ctx.sigs))]
	}
	val := func(s sigInfo) uint64 {
		switch rng.Intn(4) {
		case 0:
			return 0
		case 1:
			return 1 & verilog.WidthMask(s.width)
		case 2:
			return verilog.WidthMask(s.width)
		default:
			return rng.Uint64() & verilog.WidthMask(s.width)
		}
	}
	atomOf := func(s sigInfo) verilog.Expr {
		return &verilog.Binary{Op: "==",
			X: &verilog.Ident{Name: s.name},
			Y: &verilog.Number{Value: val(s), Width: s.width}}
	}
	a := pick("<bos>", "<bos>")
	b := pick(a.name, "==")
	shape := rng.Float64()
	out := &sva.Assertion{}
	switch {
	case shape < 0.30: // a==v |-> b==v
		out.Ante = []sva.Step{{Expr: atomOf(a)}}
		out.Cons = []sva.Step{{Expr: atomOf(b)}}
	case shape < 0.60: // a==v |=> b==v
		out.Ante = []sva.Step{{Expr: atomOf(a)}}
		out.Cons = []sva.Step{{Expr: atomOf(b)}}
		out.NonOverlap = true
	case shape < 0.75: // conjunction antecedent
		c := pick(b.name, "&&")
		out.Ante = []sva.Step{{Expr: &verilog.Binary{Op: "&&", X: atomOf(a), Y: atomOf(c)}}}
		out.Cons = []sva.Step{{Expr: atomOf(b)}}
		out.NonOverlap = rng.Intn(2) == 0
	case shape < 0.82 && a.width == 1: // $rose
		out.Ante = []sva.Step{{Expr: &verilog.Call{Name: "$rose", Args: []verilog.Expr{&verilog.Ident{Name: a.name}}}}}
		out.Cons = []sva.Step{{Expr: atomOf(b)}}
		out.NonOverlap = true
	case shape < 0.90: // ranged bounded-response consequent
		out.Ante = []sva.Step{{Expr: atomOf(a)}}
		out.Cons = []sva.Step{{Delay: 1, Expr: atomOf(b)}}
		out.ConsDelaySpan = 1 + rng.Intn(2)
	default: // two-cycle antecedent
		c := pick(b.name, "##")
		out.Ante = []sva.Step{{Expr: atomOf(a)}, {Delay: 1, Expr: atomOf(c)}}
		out.Cons = []sva.Step{{Expr: atomOf(b)}}
		out.NonOverlap = true
	}
	return out
}

func clone(a *sva.Assertion) *sva.Assertion {
	// Assertions are immutable once built except for confusion mutation,
	// which replaces nodes; re-parse is the simplest deep copy.
	b, err := sva.Parse(a.String())
	if err != nil {
		return a
	}
	return b
}

// confuse applies one semantic perturbation: plausible, wrong.
func confuse(a *sva.Assertion, rng *rand.Rand) *sva.Assertion {
	b := clone(a)
	switch rng.Intn(3) {
	case 0: // flip a consequent value
		if bin, ok := b.Cons[0].Expr.(*verilog.Binary); ok {
			if num, ok := bin.Y.(*verilog.Number); ok {
				num.Value = (num.Value + 1) & verilog.WidthMask(maxInt(num.Width, 1))
			}
		}
	case 1: // overlap <-> non-overlap
		b.NonOverlap = !b.NonOverlap
	default: // negate the consequent comparison
		if bin, ok := b.Cons[0].Expr.(*verilog.Binary); ok {
			switch bin.Op {
			case "==":
				bin.Op = "!="
			case "!=":
				bin.Op = "=="
			}
		}
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// --- noise channels ---

// harvestExampleSignals collects identifiers from the in-context example
// assertions: the classic leak source when a model copies from the wrong
// part of its prompt.
func harvestExampleSignals(examples []Example) []string {
	var tk Tokenizer
	seen := map[string]bool{}
	var out []string
	for _, ex := range examples {
		for _, as := range ex.Assertions {
			for _, tok := range tk.Tokenize(as) {
				if isWordStart(tok[0]) && tok[0] != '$' && !seen[tok] {
					seen[tok] = true
					out = append(out, tok)
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// harvestIdentifiers extracts plausible signal names from unparseable
// source text.
func harvestIdentifiers(source string) []sigInfo {
	var tk Tokenizer
	seen := map[string]bool{}
	var out []sigInfo
	for _, tok := range tk.Tokenize(source) {
		if len(tok) == 0 || !isWordStart(tok[0]) || tok[0] == '$' {
			continue
		}
		if verilogKeyword(tok) || seen[tok] {
			continue
		}
		seen[tok] = true
		out = append(out, sigInfo{name: tok, width: 1})
	}
	return out
}

func verilogKeyword(s string) bool {
	switch s {
	case "module", "endmodule", "input", "output", "inout", "wire", "reg",
		"always", "assign", "begin", "end", "if", "else", "case", "casez",
		"endcase", "default", "posedge", "negedge", "or", "and", "not",
		"parameter", "localparam", "integer", "initial", "for", "function",
		"endfunction", "genvar", "generate", "endgenerate", "signed":
		return true
	}
	return false
}

// applyCopyNoise miscopies identifiers: per-identifier with probability
// rate, replace with a typo or a leaked example-design signal.
func applyCopyNoise(line string, ctx *designCtx, leaked []string, rate float64, rng *rand.Rand) string {
	if rate <= 0 {
		return line
	}
	var tk Tokenizer
	toks := tk.Tokenize(line)
	names := map[string]bool{}
	for _, s := range ctx.sigs {
		names[s.name] = true
	}
	for i, tok := range toks {
		if !names[tok] || rng.Float64() >= rate {
			continue
		}
		if len(leaked) > 0 && rng.Float64() < 0.4 {
			toks[i] = leaked[rng.Intn(len(leaked))]
			continue
		}
		toks[i] = typo(tok, rng)
	}
	return tk.Detokenize(toks)
}

// typo produces an edit-distance-1 corruption.
func typo(name string, rng *rand.Rand) string {
	if len(name) < 2 {
		return name + "_"
	}
	switch rng.Intn(3) {
	case 0: // drop a char
		i := rng.Intn(len(name))
		return name[:i] + name[i+1:]
	case 1: // swap adjacent
		i := rng.Intn(len(name) - 1)
		b := []byte(name)
		b[i], b[i+1] = b[i+1], b[i]
		return string(b)
	default: // suffix
		return name + "_r"
	}
}

// corruptSyntax applies one syntax corruption drawn from the error modes
// the paper catalogues. Roughly three quarters of the modes are ones the
// rule-based corrector can repair; the rest defeat it.
func corruptSyntax(line string, rng *rand.Rand) string {
	line = strings.TrimSuffix(strings.TrimSpace(line), ";")
	mode := rng.Intn(8)
	switch mode {
	case 0: // drop a closing paren (corrector: balance)
		if i := strings.LastIndexByte(line, ')'); i >= 0 {
			line = line[:i] + line[i+1:]
		} else {
			line = "(" + line
		}
	case 1: // '=' for '==' (corrector: canonicalize)
		line = strings.Replace(line, "==", "=", 1)
	case 2: // '|>' for '|->' (corrector: canonicalize)
		line = strings.Replace(line, "|->", "|>", 1)
		line = strings.Replace(line, "|=>", "|>", 1)
	case 3: // '#N' for '##N' (corrector: canonicalize)
		if strings.Contains(line, "##") {
			line = strings.Replace(line, "##", "#", 1)
		} else {
			line += " #1"
		}
	case 4: // stray property-block tail (corrector: strip wrappers)
		line += " endproperty"
	case 5: // '&&&' (corrector: canonicalize)
		if strings.Contains(line, "&&") {
			line = strings.Replace(line, "&&", "&&&", 1)
		} else {
			line = strings.Replace(line, "|", "||", 1)
		}
	case 6: // keyword splice mid-expression (unfixable)
		toks := strings.SplitN(line, " ", 2)
		if len(toks) == 2 {
			line = toks[0] + " begin " + toks[1]
		} else {
			line = "begin " + line
		}
	default: // drop the implication operator entirely (unfixable)
		line = strings.Replace(line, "|->", "", 1)
		line = strings.Replace(line, "|=>", "", 1)
	}
	return line + ";"
}
