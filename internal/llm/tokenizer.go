// Package llm implements the simulated large-language-model substrate that
// stands in for the paper's COTS LLMs (GPT-3.5, GPT-4o, CodeLLaMa 2,
// LLaMa3-70B) and for the fine-tuned AssertionLLM. See DESIGN.md for the
// substitution argument.
//
// The substrate is a genuine statistical language model — an order-3
// n-gram with interpolated backoff over a Verilog/SVA token vocabulary,
// decoded with temperature and nucleus (top-p) sampling — combined with a
// grammar-guided assertion decoder and a design-conditioned copy mechanism
// for identifiers. Each COTS model is a calibrated Profile whose error
// channels (identifier miscopies, syntax corruption, ungrounded semantics,
// off-task drift) reproduce the failure modes the paper reports; every
// generated string then flows through the real syntax corrector, parser,
// and FPV engine.
package llm

import "strings"

// Tokenizer is a lenient lexical splitter: unlike the strict design lexer
// it never fails, so arbitrary (even corrupted) text round-trips.
type Tokenizer struct{}

// Tokenize splits text into Verilog/SVA-style tokens. Unknown bytes come
// through as single-character tokens.
func (Tokenizer) Tokenize(text string) []string {
	var toks []string
	i := 0
	for i < len(text) {
		c := text[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '\n':
			toks = append(toks, "\n")
			i++
		case isWordStart(c):
			j := i + 1
			for j < len(text) && isWordCont(text[j]) {
				j++
			}
			toks = append(toks, text[i:j])
			i = j
		case c >= '0' && c <= '9':
			j := i + 1
			for j < len(text) && (isWordCont(text[j]) || text[j] == '\'') {
				j++
			}
			toks = append(toks, text[i:j])
			i = j
		default:
			matched := false
			for _, op := range multiOps {
				if strings.HasPrefix(text[i:], op) {
					toks = append(toks, op)
					i += len(op)
					matched = true
					break
				}
			}
			if !matched {
				toks = append(toks, string(c))
				i++
			}
		}
	}
	return toks
}

var multiOps = []string{
	"|->", "|=>", "##", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
	"->", "=>", "~^", "^~",
}

// Detokenize joins tokens back into readable text with minimal spacing.
func (Tokenizer) Detokenize(toks []string) string {
	var sb strings.Builder
	for i, t := range toks {
		if t == "\n" {
			sb.WriteByte('\n')
			continue
		}
		if i > 0 && needSpace(toks[i-1], t) {
			sb.WriteByte(' ')
		}
		sb.WriteString(t)
	}
	return sb.String()
}

func needSpace(prev, cur string) bool {
	if prev == "\n" {
		return false
	}
	tight := func(s string) bool {
		switch s {
		case "(", ")", "[", "]", "{", "}", ",", ";", ".", "$":
			return true
		}
		return false
	}
	if tight(prev) && prev != ")" && prev != "]" && prev != "}" {
		return false
	}
	if tight(cur) {
		return false
	}
	return true
}

func isWordStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isWordCont(c byte) bool {
	return isWordStart(c) || (c >= '0' && c <= '9')
}

// Vocab maps token strings to dense ids.
type Vocab struct {
	ids  map[string]int
	toks []string
}

// Special token ids, fixed at vocabulary construction.
const (
	TokBOS = 0
	TokEOS = 1
)

// NewVocab returns a vocabulary seeded with the special tokens.
func NewVocab() *Vocab {
	v := &Vocab{ids: map[string]int{}}
	v.Add("<bos>")
	v.Add("<eos>")
	return v
}

// Add interns a token and returns its id.
func (v *Vocab) Add(tok string) int {
	if id, ok := v.ids[tok]; ok {
		return id
	}
	id := len(v.toks)
	v.ids[tok] = id
	v.toks = append(v.toks, tok)
	return id
}

// ID returns the id of tok, or -1 if unknown.
func (v *Vocab) ID(tok string) int {
	if id, ok := v.ids[tok]; ok {
		return id
	}
	return -1
}

// Token returns the string for an id.
func (v *Vocab) Token(id int) string {
	if id < 0 || id >= len(v.toks) {
		return "<unk>"
	}
	return v.toks[id]
}

// Size is the vocabulary cardinality.
func (v *Vocab) Size() int { return len(v.toks) }

// Encode interns and encodes a token sequence with BOS/EOS framing.
func (v *Vocab) Encode(toks []string) []int {
	out := make([]int, 0, len(toks)+2)
	out = append(out, TokBOS)
	for _, t := range toks {
		out = append(out, v.Add(t))
	}
	out = append(out, TokEOS)
	return out
}
