package llm

import (
	"fmt"
	"sort"
	"strings"
)

// ShotParams are the behavioural error-channel rates of a model at a given
// number of in-context examples. Each rate is a probability in [0,1].
type ShotParams struct {
	// Grounding: probability a generated assertion is derived from
	// observed design behaviour (the model "understood" the RTL) rather
	// than free-associated from surface patterns.
	Grounding float64
	// Confusion: probability a grounded assertion gets a semantic
	// perturbation (wrong polarity, wrong delay) — plausible but false.
	Confusion float64
	// SyntaxNoise: probability the rendered text receives a syntax
	// corruption (the paper found every COTS LLM emits malformed SVA).
	SyntaxNoise float64
	// CopyNoise: probability an identifier is miscopied from the prompt
	// (typo, or a signal name leaked from the in-context example design).
	CopyNoise float64
	// OffTask: probability of emitting an off-task line (prose, or code in
	// another language — the paper observed LLaMa3-70B drifting into Java).
	OffTask float64
}

// Profile is one simulated model: decoding settings per the paper's
// Sec. IV hyperparameters, plus calibrated error channels at 1-shot and
// 5-shot (linearly interpolated in between).
//
// The channel rates below are the repository's calibration so that the
// full pipeline (generate -> correct -> parse -> FPV) lands near the
// paper's Fig. 6/7 distributions; EXPERIMENTS.md records achieved vs
// reported numbers.
type Profile struct {
	Name   string
	Family string
	// Decoding hyperparameters (paper Sec. IV: temperature 1.0, top-p
	// 0.95, max tokens 1024).
	Temperature float64
	TopP        float64
	MaxTokens   int
	// ContextWindow in tokens (CodeLLaMa 2: 4096; LLaMa3: 8192; GPTs
	// large).
	ContextWindow int
	// CodeAffinity in [0,1]: how strongly the base model was pretrained on
	// code. Per Observation 5, fine-tuning gains scale with it.
	CodeAffinity float64
	// Finetuned marks AssertionLLM variants (Fig. 8 removes the syntax
	// corrector for them).
	Finetuned bool

	K1, K5 ShotParams
}

// At interpolates the error channels for a k-shot prompt.
func (p Profile) At(k int) ShotParams {
	if k <= 1 {
		return p.K1
	}
	if k >= 5 {
		return p.K5
	}
	t := float64(k-1) / 4
	lerp := func(a, b float64) float64 { return a + (b-a)*t }
	return ShotParams{
		Grounding:   lerp(p.K1.Grounding, p.K5.Grounding),
		Confusion:   lerp(p.K1.Confusion, p.K5.Confusion),
		SyntaxNoise: lerp(p.K1.SyntaxNoise, p.K5.SyntaxNoise),
		CopyNoise:   lerp(p.K1.CopyNoise, p.K5.CopyNoise),
		OffTask:     lerp(p.K1.OffTask, p.K5.OffTask),
	}
}

func (p Profile) String() string {
	return fmt.Sprintf("%s(T=%.1f,p=%.2f)", p.Name, p.Temperature, p.TopP)
}

// The four COTS profiles of the paper's Sec. IV. Channel rates are
// calibrated to the Fig. 6 observations:
//   - GPT-3.5 doubles its valid fraction from 1-shot to 5-shot (Obs. 1);
//   - GPT-4o improves ~1.2x and is the most consistent (Obs. 3);
//   - CodeLLaMa 2 improves ~1.12x, CEX falls but errors rise with shots;
//   - LLaMa3-70B degrades from 31% to 24%, with many more syntax errors
//     and off-task output at 5-shot (Obs. 1/2).

// GPT35 models GPT-3.5.
func GPT35() Profile {
	return Profile{
		Name: "GPT-3.5", Family: "gpt",
		Temperature: 1.0, TopP: 0.95, MaxTokens: 1024, ContextWindow: 16384,
		CodeAffinity: 0.6,
		K1:           ShotParams{Grounding: 0.15, Confusion: 0.15, SyntaxNoise: 0.30, CopyNoise: 0.05, OffTask: 0.04},
		K5:           ShotParams{Grounding: 0.64, Confusion: 0.12, SyntaxNoise: 0.30, CopyNoise: 0.04, OffTask: 0.03},
	}
}

// GPT4o models GPT-4o.
func GPT4o() Profile {
	return Profile{
		Name: "GPT-4o", Family: "gpt",
		Temperature: 1.0, TopP: 0.95, MaxTokens: 1024, ContextWindow: 131072,
		CodeAffinity: 0.7,
		K1:           ShotParams{Grounding: 0.45, Confusion: 0.10, SyntaxNoise: 0.22, CopyNoise: 0.03, OffTask: 0.02},
		K5:           ShotParams{Grounding: 0.65, Confusion: 0.10, SyntaxNoise: 0.27, CopyNoise: 0.03, OffTask: 0.02},
	}
}

// CodeLlama2 models CodeLLaMa 2 (70B).
func CodeLlama2() Profile {
	return Profile{
		Name: "CodeLLaMa 2", Family: "llama",
		Temperature: 1.0, TopP: 0.95, MaxTokens: 1024, ContextWindow: 4096,
		CodeAffinity: 0.9,
		K1:           ShotParams{Grounding: 0.22, Confusion: 0.20, SyntaxNoise: 0.14, CopyNoise: 0.03, OffTask: 0.04},
		K5:           ShotParams{Grounding: 0.36, Confusion: 0.15, SyntaxNoise: 0.26, CopyNoise: 0.04, OffTask: 0.05},
	}
}

// Llama3 models LLaMa3-70B.
func Llama3() Profile {
	return Profile{
		Name: "LLaMa3-70B", Family: "llama",
		Temperature: 1.0, TopP: 0.95, MaxTokens: 1024, ContextWindow: 8192,
		CodeAffinity: 0.35,
		K1:           ShotParams{Grounding: 0.45, Confusion: 0.14, SyntaxNoise: 0.24, CopyNoise: 0.05, OffTask: 0.07},
		K5:           ShotParams{Grounding: 0.48, Confusion: 0.15, SyntaxNoise: 0.45, CopyNoise: 0.06, OffTask: 0.20},
	}
}

// COTSProfiles returns the paper's four models in presentation order.
func COTSProfiles() []Profile {
	return []Profile{GPT35(), GPT4o(), CodeLlama2(), Llama3()}
}

// profileAliases maps lowercase CLI-style spellings to canonical profile
// names. The canonical names themselves (case-insensitive) always resolve.
var profileAliases = map[string]string{
	"gpt3.5":      "GPT-3.5",
	"gpt-3.5":     "GPT-3.5",
	"gpt35":       "GPT-3.5",
	"gpt4o":       "GPT-4o",
	"gpt-4o":      "GPT-4o",
	"codellama":   "CodeLLaMa 2",
	"codellama2":  "CodeLLaMa 2",
	"codellama-2": "CodeLLaMa 2",
	"llama3":      "LLaMa3-70B",
	"llama3-70b":  "LLaMa3-70B",
}

// ProfileByName resolves a model by canonical name (exact or
// case-insensitive) or by CLI alias. It is the single model-selection
// registry shared by every CLI and the public facade; an unknown name
// errors with the full list of accepted spellings.
func ProfileByName(name string) (Profile, error) {
	for _, p := range COTSProfiles() {
		if p.Name == name || strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	if canonical, ok := profileAliases[strings.ToLower(name)]; ok {
		for _, p := range COTSProfiles() {
			if p.Name == canonical {
				return p, nil
			}
		}
	}
	return Profile{}, fmt.Errorf("llm: unknown model %q (valid: %s)", name, strings.Join(ProfileNames(), ", "))
}

// ProfileNames lists every accepted model spelling, canonical names first,
// for error messages and CLI usage text.
func ProfileNames() []string {
	var names []string
	for _, p := range COTSProfiles() {
		aliases := make([]string, 0, 3)
		for a, canonical := range profileAliases {
			if canonical == p.Name {
				aliases = append(aliases, a)
			}
		}
		sort.Strings(aliases)
		names = append(names, fmt.Sprintf("%s (aka %s)", p.Name, strings.Join(aliases, "|")))
	}
	return names
}

// clamp01 bounds a probability.
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
