package bench

import (
	"testing"
	"time"

	"assertionbench/internal/verilog"
)

const costTestSrc = `
module costy(clk, rst, a, b);
input clk, rst, a;
output b;
reg b;
always @(posedge clk or posedge rst)
  if (rst) b <= 0;
  else b <= a;
endmodule
`

func costNetlist(t *testing.T) *verilog.Netlist {
	t.Helper()
	nl, err := verilog.ElaborateSource(costTestSrc, "costy")
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return nl
}

func TestCostJournalMaxMerge(t *testing.T) {
	var c ElabCache
	nl := costNetlist(t)

	if _, ok := c.LoadCost(nl); ok {
		t.Fatal("cold journal reported a cost")
	}
	c.StoreCost(nl, 5*time.Millisecond)
	if got, ok := c.LoadCost(nl); !ok || got != 5*time.Millisecond {
		t.Fatalf("LoadCost = %v, %v; want 5ms, true", got, ok)
	}
	// A faster (e.g. warm or truncated) observation must not shrink the
	// journaled cost...
	c.StoreCost(nl, 2*time.Millisecond)
	if got, _ := c.LoadCost(nl); got != 5*time.Millisecond {
		t.Fatalf("after faster observation: %v, want 5ms", got)
	}
	// ...but a slower one raises it.
	c.StoreCost(nl, 9*time.Millisecond)
	if got, _ := c.LoadCost(nl); got != 9*time.Millisecond {
		t.Fatalf("after slower observation: %v, want 9ms", got)
	}
	// Non-positive and sub-microsecond measurements.
	c.StoreCost(nl, 0)
	c.StoreCost(nl, -time.Second)
	if got, _ := c.LoadCost(nl); got != 9*time.Millisecond {
		t.Fatalf("after degenerate observations: %v, want 9ms", got)
	}

	c.Purge()
	if _, ok := c.LoadCost(nl); ok {
		t.Fatal("journal survived Purge without a persistent tier")
	}
}

func TestCostJournalPersistsAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	nl := costNetlist(t)

	var writer ElabCache
	if err := writer.SetCacheDir(dir); err != nil {
		t.Fatalf("SetCacheDir: %v", err)
	}
	writer.StoreCost(nl, 7*time.Millisecond)

	// A fresh cache over the same store (a "new process") reads the
	// observation through the disk tier.
	var reader ElabCache
	if err := reader.SetCacheDir(dir); err != nil {
		t.Fatalf("SetCacheDir: %v", err)
	}
	if got, ok := reader.LoadCost(nl); !ok || got != 7*time.Millisecond {
		t.Fatalf("disk read-through: %v, %v; want 7ms, true", got, ok)
	}

	// Max-merge applies against the tier too: a faster observation from
	// another cache leaves the stored maximum in place.
	reader.StoreCost(nl, time.Millisecond)
	var third ElabCache
	if err := third.SetCacheDir(dir); err != nil {
		t.Fatalf("SetCacheDir: %v", err)
	}
	if got, _ := third.LoadCost(nl); got != 7*time.Millisecond {
		t.Fatalf("tier max-merge: %v, want 7ms", got)
	}

	// Purge drops memory but not the tier.
	reader.Purge()
	if got, ok := reader.LoadCost(nl); !ok || got != 7*time.Millisecond {
		t.Fatalf("post-purge read-through: %v, %v; want 7ms, true", got, ok)
	}

	// A sub-microsecond positive measurement still counts as observed on
	// a cache that has never seen the design.
	var tiny ElabCache
	tiny.StoreCost(nl, time.Nanosecond)
	if got, ok := tiny.LoadCost(nl); !ok || got != time.Microsecond {
		t.Fatalf("sub-microsecond observation: %v, %v; want 1µs, true", got, ok)
	}
}
