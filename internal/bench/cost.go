package bench

import (
	"encoding/binary"
	"fmt"
	"time"

	"assertionbench/internal/astore"
	"assertionbench/internal/verilog"
)

// The cost journal records each design's measured verification wall time
// so later runs can schedule by predicted cost (internal/eval's
// cost-aware dispatcher). Entries live in an in-memory map keyed by
// verilog.Netlist.ContentHash() — a pure function of the elaborated
// design, so a journal entry can never go stale against a source edit —
// with the persistent artifact store (SetCacheDir) as a
// read-through/write-behind tier: a fresh process over a warm store
// plans its first run from the previous process's measurements.
//
// Merging is max: a budget-truncated run measures a lower bound on the
// design's true cost, so the slowest observation wins. That also keeps
// the journal stable between cold and warm passes — relative order, the
// only thing scheduling needs, is preserved either way.

// LoadCost returns the journal's wall-time estimate for the design, or
// ok=false when neither the in-memory journal nor the persistent tier
// has an observation.
func (c *ElabCache) LoadCost(nl *verilog.Netlist) (time.Duration, bool) {
	h := nl.ContentHash()
	c.mu.Lock()
	us, ok := c.costs[h]
	disk := c.disk
	c.mu.Unlock()
	if ok {
		return time.Duration(us) * time.Microsecond, true
	}
	if disk == nil {
		return 0, false
	}
	blob, ok := disk.Get(astore.KindCost, costDiskKey(h))
	if !ok || len(blob) != 8 {
		return 0, false
	}
	us = binary.BigEndian.Uint64(blob)
	if us == 0 {
		return 0, false
	}
	c.mu.Lock()
	if c.costs == nil {
		c.costs = make(map[[32]byte]uint64)
	}
	if us > c.costs[h] {
		c.costs[h] = us
	} else {
		us = c.costs[h]
	}
	c.mu.Unlock()
	return time.Duration(us) * time.Microsecond, true
}

// StoreCost records a measured verification wall time for the design,
// max-merged with prior observations in memory and (when attached)
// written behind to the persistent tier. Non-positive measurements are
// ignored; sub-microsecond ones round up so the design still counts as
// observed.
func (c *ElabCache) StoreCost(nl *verilog.Netlist, wall time.Duration) {
	if wall <= 0 {
		return
	}
	us := uint64(wall / time.Microsecond)
	if us == 0 {
		us = 1
	}
	h := nl.ContentHash()
	c.mu.Lock()
	if c.costs == nil {
		c.costs = make(map[[32]byte]uint64)
	}
	if us <= c.costs[h] {
		c.mu.Unlock()
		return
	}
	c.costs[h] = us
	disk := c.disk
	c.mu.Unlock()
	if disk != nil {
		// Max-merge against the tier too: another process may have
		// journaled a slower observation this process never saw.
		if blob, ok := disk.Get(astore.KindCost, costDiskKey(h)); ok && len(blob) == 8 {
			if prior := binary.BigEndian.Uint64(blob); prior >= us {
				return
			}
		}
		var blob [8]byte
		binary.BigEndian.PutUint64(blob[:], us)
		_ = disk.Put(astore.KindCost, costDiskKey(h), blob[:])
	}
}

// costDiskKey is the persistent-tier key for a design's journal entry.
// Only the content hash enters the key: cost is a property of the
// elaborated design, not of the (name, source-text) pair, so renamed or
// reformatted sources share their measurements.
func costDiskKey(h [32]byte) string {
	return fmt.Sprintf("c\x00%x", h)
}

// LoadCost reads the process-wide journal (see ElabCache.LoadCost).
func LoadCost(nl *verilog.Netlist) (time.Duration, bool) {
	return DefaultElab.LoadCost(nl)
}

// StoreCost records into the process-wide journal (see
// ElabCache.StoreCost).
func StoreCost(nl *verilog.Netlist, wall time.Duration) {
	DefaultElab.StoreCost(nl, wall)
}
