package bench

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"sync"

	"assertionbench/internal/astore"
	"assertionbench/internal/fpv"
	"assertionbench/internal/verilog"
)

// ElabCache is a concurrency-safe elaboration cache mapping design name +
// source hash to the elaborated netlist. A corpus design is elaborated at
// most once per cache regardless of how many (model, shot-count) runs or
// workers request it: concurrent requests for the same design block on one
// elaboration and share its result. Netlists are immutable after
// elaboration, so sharing one across goroutines is safe (simulators and
// FPV engines keep their own value environments).
//
// With a cache directory attached (SetCacheDir), the cache gains a
// persistent tier: compiled programs are loaded from (and written to)
// an on-disk artifact store instead of recompiled, and the graph cache
// gets the same treatment, so a fresh process starts warm.
//
// The zero value is ready to use.
type ElabCache struct {
	mu sync.Mutex
	m  map[string]*elabEntry
	// gen counts Purges. Entries record the generation they were
	// registered under; Elaborate uses it to detect a purge that raced
	// an in-flight elaboration (see the re-registration step there).
	gen uint64
	// disk, when set, is the persistent program tier.
	disk *astore.Store
	// graphs caches FPV reachability graphs next to the compiled
	// programs, under fpv.GraphCache's memory bound. Graphs are keyed by
	// netlist pointer, so a design whose source hash changes elaborates
	// to a fresh netlist and its stale graphs age out of the LRU.
	graphs fpv.GraphCache
	// costs is the in-memory cost journal: measured verification wall
	// time in microseconds per design content hash (see cost.go).
	costs map[[32]byte]uint64
}

// Graphs exposes the cache's reachability-graph store for wiring into
// pooled FPV engines (fpv.Engine.Graphs).
func (c *ElabCache) Graphs() *fpv.GraphCache { return &c.graphs }

// elaborateSource is a seam for the purge-race test: swapping it lets a
// test hold an elaboration in flight while Purge runs. Production code
// never changes it.
var elaborateSource = verilog.ElaborateSource

type elabEntry struct {
	gen  uint64
	once sync.Once
	nl   *verilog.Netlist
	err  error
}

// cacheKey identifies a design by name and full source hash, so two
// designs that share a name but differ in source (or vice versa) never
// collide.
func cacheKey(name, source string) string {
	return fmt.Sprintf("%s\x00%x", name, sha256.Sum256([]byte(source)))
}

// SetCacheDir attaches the persistent artifact store at dir as the
// read-through/write-behind tier below this cache and its graph cache
// ("" detaches both). Entries already elaborated keep the programs
// they have; the tier applies to subsequent work.
func (c *ElabCache) SetCacheDir(dir string) error {
	var s *astore.Store
	if dir != "" {
		var err error
		if s, err = astore.Open(dir); err != nil {
			return err
		}
	}
	c.mu.Lock()
	c.disk = s
	c.mu.Unlock()
	c.graphs.SetDisk(s)
	return nil
}

// Disk returns the attached persistent store, or nil when the cache is
// memory-only. Callers that persist their own artifacts next to the
// programs and graphs — the eval runner's run manifest — write through
// this handle rather than opening the directory a second time.
func (c *ElabCache) Disk() *astore.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disk
}

// Elaborate returns the design's netlist, elaborating on first use. The
// compiled execution program is attached here too — decoded from the
// persistent tier when one is attached and holds a good blob, lowered
// and written behind otherwise — so per-design compilation happens once
// per process (and, with a cache directory, once per source change
// across processes) no matter how many workers or runs request the
// design.
func (c *ElabCache) Elaborate(d Design) (*verilog.Netlist, error) {
	key := cacheKey(d.Name, d.Source)
	c.mu.Lock()
	e := c.m[key]
	if e == nil {
		if c.m == nil {
			c.m = make(map[string]*elabEntry)
		}
		e = &elabEntry{gen: c.gen}
		c.m[key] = e
	}
	disk := c.disk
	c.mu.Unlock()

	e.once.Do(func() { c.elaborate(e, d, disk) })

	// A Purge may have raced the elaboration: it dropped e from the map
	// and purged the graph cache, but this goroutine still holds e. Two
	// hazards follow. If the slot stayed empty, a later Elaborate would
	// mint a second netlist for the same source while our caller keeps
	// using e.nl — graphs the caller publishes under e.nl's pointer key
	// would then be unreachable dead weight. So re-register the finished
	// entry, keeping e.nl canonical. If instead a post-purge Elaborate
	// already won the slot, converge on the winner so every caller
	// shares one netlist pointer (its Do blocks until the winning
	// elaboration finishes and runs nothing on a completed entry).
	c.mu.Lock()
	cur := c.m[key]
	if cur == nil {
		if c.m == nil {
			c.m = make(map[string]*elabEntry)
		}
		e.gen = c.gen
		c.m[key] = e
		cur = e
	}
	c.mu.Unlock()
	if cur != e {
		cur.once.Do(func() {})
		return cur.nl, cur.err
	}
	return e.nl, e.err
}

// elaborate fills e: parse + elaborate, then attach the compiled
// program — from the persistent tier when possible, compiling (and
// writing behind) otherwise. A blob that fails verification, decoding
// or shape validation is simply recompiled; the write-behind replaces
// it.
func (c *ElabCache) elaborate(e *elabEntry, d Design, disk *astore.Store) {
	e.nl, e.err = elaborateSource(d.Source, d.Name)
	if e.err != nil || disk == nil {
		if e.err == nil {
			e.nl.Program()
		}
		return
	}
	key := progDiskKey(d.Name, d.Source)
	if blob, ok := disk.Get(astore.KindProgram, key); ok {
		if p, err := verilog.DecodeProgram(blob); err == nil && e.nl.AdoptProgram(p) {
			return
		}
	}
	_ = disk.Put(astore.KindProgram, key, verilog.EncodeProgram(e.nl.Program()))
}

// progDiskKey is the persistent-tier key for a design's compiled
// program: the same (name, source hash) pair cacheKey uses. Backend,
// cone and slicing options don't enter the key because none of them
// change the compiled program; codec versioning is the payload's job
// (DecodeProgram rejects stale layouts).
func progDiskKey(name, source string) string {
	return fmt.Sprintf("p\x00%s\x00%x", name, sha256.Sum256([]byte(source)))
}

// Len reports how many designs the cache holds (including failed
// elaborations, which are cached too).
func (c *ElabCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Purge empties the cache — elaborations, reachability graphs and the
// in-memory cost journal — in one generation step. The persistent tier
// (SetCacheDir) is deliberately not cleared: purging frees memory; the
// disk store exists to survive exactly this.
func (c *ElabCache) Purge() {
	c.mu.Lock()
	c.gen++
	c.m = nil
	c.costs = nil
	c.mu.Unlock()
	c.graphs.Purge()
}

// generation reports the purge count (test hook for the purge-race
// regression tests).
func (c *ElabCache) generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// DefaultElab is the process-wide elaboration cache the evaluation runner
// uses, so corpora are elaborated once per process rather than once per
// run.
var DefaultElab ElabCache

// Elaborate elaborates a design through the process-wide cache.
func Elaborate(d Design) (*verilog.Netlist, error) {
	return DefaultElab.Elaborate(d)
}

// SetCacheDir attaches the persistent artifact store at dir to the
// process-wide cache (see ElabCache.SetCacheDir).
func SetCacheDir(dir string) error {
	return DefaultElab.SetCacheDir(dir)
}

// DiskStore returns the process-wide cache's persistent store, or nil
// when no cache directory is attached (see ElabCache.Disk).
func DiskStore() *astore.Store {
	return DefaultElab.Disk()
}

// Shard returns the index-th of count contiguous, balanced corpus shards.
// Concatenating shards 0..count-1 reproduces designs exactly, and
// ShardStart gives the global offset of a shard's first design — the
// evaluation runner needs that to derive the same per-design seeds a full
// run would use.
func Shard(designs []Design, index, count int) ([]Design, error) {
	start, end, err := shardBounds(len(designs), index, count)
	if err != nil {
		return nil, err
	}
	return designs[start:end], nil
}

// ParseShard parses the "index/count" shard spec the CLIs accept for
// their -shard flags. "" means unsharded (0, 0). Both fields must be
// plain decimal digits: strconv would also accept signed forms like
// "+0/2" or "-0/2" (the index >= 0 check passes for -0), which are not
// specs any shard launcher writes and would mask typos.
func ParseShard(s string) (index, count int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	slash := strings.IndexByte(s, '/')
	ok := slash > 0 && strings.Count(s, "/") == 1
	if ok {
		var oki, okc bool
		index, oki = parseDigits(s[:slash])
		count, okc = parseDigits(s[slash+1:])
		ok = oki && okc && count >= 1 && index < count
	}
	if !ok {
		return 0, 0, fmt.Errorf("bench: bad shard spec %q, want index/count with 0 <= index < count", s)
	}
	return index, count, nil
}

// parseDigits parses a non-empty all-digit decimal string. The length
// cap rejects values that could not be a sane shard field long before
// int overflow becomes a concern.
func parseDigits(s string) (int, bool) {
	if s == "" || len(s) > 9 {
		return 0, false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		n = n*10 + int(s[i]-'0')
	}
	return n, true
}

// ShardStart returns the global corpus index of shard index's first design.
func ShardStart(total, index, count int) (int, error) {
	start, _, err := shardBounds(total, index, count)
	return start, err
}

func shardBounds(total, index, count int) (int, int, error) {
	if count <= 0 {
		return 0, 0, fmt.Errorf("bench: shard count %d, want >= 1", count)
	}
	if index < 0 || index >= count {
		return 0, 0, fmt.Errorf("bench: shard index %d out of range [0,%d)", index, count)
	}
	// Balanced contiguous split: the first total%count shards get one
	// extra design.
	base, extra := total/count, total%count
	start := index*base + min(index, extra)
	size := base
	if index < extra {
		size++
	}
	return start, start + size, nil
}
