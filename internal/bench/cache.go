package bench

import (
	"crypto/sha256"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"assertionbench/internal/fpv"
	"assertionbench/internal/verilog"
)

// ElabCache is a concurrency-safe elaboration cache mapping design name +
// source hash to the elaborated netlist. A corpus design is elaborated at
// most once per cache regardless of how many (model, shot-count) runs or
// workers request it: concurrent requests for the same design block on one
// elaboration and share its result. Netlists are immutable after
// elaboration, so sharing one across goroutines is safe (simulators and
// FPV engines keep their own value environments).
//
// The zero value is ready to use.
type ElabCache struct {
	m sync.Map // cache key -> *elabEntry
	// graphs caches FPV reachability graphs next to the compiled
	// programs, under fpv.GraphCache's memory bound. Graphs are keyed by
	// netlist pointer, so a design whose source hash changes elaborates
	// to a fresh netlist and its stale graphs age out of the LRU.
	graphs fpv.GraphCache
}

// Graphs exposes the cache's reachability-graph store for wiring into
// pooled FPV engines (fpv.Engine.Graphs).
func (c *ElabCache) Graphs() *fpv.GraphCache { return &c.graphs }

type elabEntry struct {
	once sync.Once
	nl   *verilog.Netlist
	err  error
}

// cacheKey identifies a design by name and full source hash, so two
// designs that share a name but differ in source (or vice versa) never
// collide.
func cacheKey(name, source string) string {
	return fmt.Sprintf("%s\x00%x", name, sha256.Sum256([]byte(source)))
}

// Elaborate returns the design's netlist, elaborating on first use. The
// compiled execution program is lowered here too (cached on the netlist),
// so per-design compilation happens once per process no matter how many
// workers or runs request the design.
func (c *ElabCache) Elaborate(d Design) (*verilog.Netlist, error) {
	v, _ := c.m.LoadOrStore(cacheKey(d.Name, d.Source), &elabEntry{})
	e := v.(*elabEntry)
	e.once.Do(func() {
		e.nl, e.err = verilog.ElaborateSource(d.Source, d.Name)
		if e.err == nil {
			e.nl.Program()
		}
	})
	return e.nl, e.err
}

// Len reports how many designs the cache holds (including failed
// elaborations, which are cached too).
func (c *ElabCache) Len() int {
	n := 0
	c.m.Range(func(_, _ any) bool { n++; return true })
	return n
}

// Purge empties the cache, including its reachability graphs.
func (c *ElabCache) Purge() {
	c.m.Range(func(k, _ any) bool { c.m.Delete(k); return true })
	c.graphs.Purge()
}

// DefaultElab is the process-wide elaboration cache the evaluation runner
// uses, so corpora are elaborated once per process rather than once per
// run.
var DefaultElab ElabCache

// Elaborate elaborates a design through the process-wide cache.
func Elaborate(d Design) (*verilog.Netlist, error) {
	return DefaultElab.Elaborate(d)
}

// Shard returns the index-th of count contiguous, balanced corpus shards.
// Concatenating shards 0..count-1 reproduces designs exactly, and
// ShardStart gives the global offset of a shard's first design — the
// evaluation runner needs that to derive the same per-design seeds a full
// run would use.
func Shard(designs []Design, index, count int) ([]Design, error) {
	start, end, err := shardBounds(len(designs), index, count)
	if err != nil {
		return nil, err
	}
	return designs[start:end], nil
}

// ParseShard parses the "index/count" shard spec the CLIs accept for
// their -shard flags. "" means unsharded (0, 0).
func ParseShard(s string) (index, count int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	slash := strings.IndexByte(s, '/')
	ok := slash > 0 && strings.Count(s, "/") == 1
	if ok {
		var ei, ec error
		index, ei = strconv.Atoi(s[:slash])
		count, ec = strconv.Atoi(s[slash+1:])
		ok = ei == nil && ec == nil && count >= 1 && index >= 0 && index < count
	}
	if !ok {
		return 0, 0, fmt.Errorf("bench: bad shard spec %q, want index/count with 0 <= index < count", s)
	}
	return index, count, nil
}

// ShardStart returns the global corpus index of shard index's first design.
func ShardStart(total, index, count int) (int, error) {
	start, _, err := shardBounds(total, index, count)
	return start, err
}

func shardBounds(total, index, count int) (int, int, error) {
	if count <= 0 {
		return 0, 0, fmt.Errorf("bench: shard count %d, want >= 1", count)
	}
	if index < 0 || index >= count {
		return 0, 0, fmt.Errorf("bench: shard index %d out of range [0,%d)", index, count)
	}
	// Balanced contiguous split: the first total%count shards get one
	// extra design.
	base, extra := total/count, total%count
	start := index*base + min(index, extra)
	size := base
	if index < extra {
		size++
	}
	return start, start + size, nil
}
