package bench

import (
	"sync"
	"testing"
)

func TestElabCacheSharesNetlists(t *testing.T) {
	var c ElabCache
	d := TrainDesigns()[0]
	a, err := c.Elaborate(d)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Elaborate(d)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second Elaborate returned a different netlist pointer")
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
	// Same name, different source must get its own entry.
	d2 := d
	d2.Source = d.Source + "\n// variant\n"
	if _, err := c.Elaborate(d2); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("cache holds %d entries after source variant, want 2", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("cache holds %d entries after Purge, want 0", c.Len())
	}
}

func TestElabCacheConcurrent(t *testing.T) {
	var c ElabCache
	designs := TrainDesigns()
	const workers = 8
	got := make([][]interface{}, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, d := range designs {
				nl, err := c.Elaborate(d)
				if err != nil {
					t.Error(err)
					return
				}
				got[w] = append(got[w], nl)
			}
		}()
	}
	wg.Wait()
	if c.Len() != len(designs) {
		t.Errorf("cache holds %d entries, want %d (one per design)", c.Len(), len(designs))
	}
	for w := 1; w < workers; w++ {
		for i := range got[0] {
			if got[w][i] != got[0][i] {
				t.Fatalf("worker %d got a different netlist for design %d", w, i)
			}
		}
	}
}

func TestShardPartitionsCorpus(t *testing.T) {
	corpus := TestCorpus()
	for _, count := range []int{1, 2, 3, 7, len(corpus), len(corpus) + 5} {
		var merged []Design
		sizes := map[int]int{}
		for i := 0; i < count; i++ {
			s, err := Shard(corpus, i, count)
			if err != nil {
				t.Fatalf("Shard(%d/%d): %v", i, count, err)
			}
			start, err := ShardStart(len(corpus), i, count)
			if err != nil {
				t.Fatalf("ShardStart(%d/%d): %v", i, count, err)
			}
			if start != len(merged) {
				t.Errorf("shard %d/%d starts at %d, want %d", i, count, start, len(merged))
			}
			sizes[len(s)]++
			merged = append(merged, s...)
		}
		if len(merged) != len(corpus) {
			t.Fatalf("%d shards merge to %d designs, want %d", count, len(merged), len(corpus))
		}
		for i := range merged {
			if merged[i].Name != corpus[i].Name {
				t.Fatalf("%d shards: design %d is %s, want %s", count, i, merged[i].Name, corpus[i].Name)
			}
		}
		// Balanced: shard sizes differ by at most one.
		if len(sizes) > 2 {
			t.Errorf("%d shards have %d distinct sizes: %v", count, len(sizes), sizes)
		}
	}
}

func TestShardRejectsBadSpecs(t *testing.T) {
	corpus := TrainDesigns()
	if _, err := Shard(corpus, 0, 0); err == nil {
		t.Error("count 0 should fail")
	}
	if _, err := Shard(corpus, -1, 2); err == nil {
		t.Error("negative index should fail")
	}
	if _, err := Shard(corpus, 2, 2); err == nil {
		t.Error("index == count should fail")
	}
}

func TestParseShard(t *testing.T) {
	good := []struct {
		s            string
		index, count int
	}{
		{"", 0, 0},
		{"0/1", 0, 1},
		{"1/4", 1, 4},
		{"3/4", 3, 4},
	}
	for _, tc := range good {
		i, c, err := ParseShard(tc.s)
		if err != nil || i != tc.index || c != tc.count {
			t.Errorf("ParseShard(%q) = (%d, %d, %v), want (%d, %d, nil)", tc.s, i, c, err, tc.index, tc.count)
		}
	}
	for _, s := range []string{"abc", "1", "1/", "/2", "2/2", "0/0", "-1/3", "1/2/3", "1/2x", "x1/2", "1.5/2"} {
		if _, _, err := ParseShard(s); err == nil {
			t.Errorf("ParseShard(%q) accepted, want error", s)
		}
	}
}
