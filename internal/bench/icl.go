package bench

import (
	"context"
	"fmt"

	"assertionbench/internal/fpv"
	"assertionbench/internal/llm"
	"assertionbench/internal/mine"
	"assertionbench/internal/verilog"
)

// ICLOptions configure in-context-example construction.
type ICLOptions struct {
	// MaxAssertions per example (paper: 2..10, avg 4.8). Default 10.
	MaxAssertions int
	// Seed drives the miners. Default 1.
	Seed int64
	// FPV bounds the miners' verification filter.
	FPV fpv.Options
}

func (o ICLOptions) withDefaults() ICLOptions {
	if o.MaxAssertions == 0 {
		o.MaxAssertions = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// BuildICL mines formally verified assertions for the five training
// designs with GOLDMINE and HARM (exactly the paper's Sec. III pipeline)
// and packages them as prompt examples. Every returned example carries at
// least two proven assertions.
func BuildICL(ctx context.Context, opt ICLOptions) ([]llm.Example, error) {
	opt = opt.withDefaults()
	var out []llm.Example
	for _, d := range TrainDesigns() {
		ex, err := MineExample(ctx, d, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, ex)
	}
	return out, nil
}

// MineExample mines one design into a prompt example (union of both
// miners, ranked, capped).
func MineExample(ctx context.Context, d Design, opt ICLOptions) (llm.Example, error) {
	opt = opt.withDefaults()
	nl, err := verilog.ElaborateSource(d.Source, d.Name)
	if err != nil {
		return llm.Example{}, fmt.Errorf("bench: design %s does not elaborate: %w", d.Name, err)
	}
	mopt := mine.Options{Seed: opt.Seed, FPV: opt.FPV, MaxAssertions: opt.MaxAssertions}
	gm, err := mine.GoldMine(ctx, nl, mopt)
	if err != nil {
		return llm.Example{}, err
	}
	hm, err := mine.Harm(ctx, nl, mopt)
	if err != nil {
		return llm.Example{}, err
	}
	merged := append(gm, hm...)
	mine.Rank(merged)
	seen := map[string]bool{}
	var texts []string
	for _, m := range merged {
		s := m.Assertion.String() + ";"
		if seen[s] {
			continue
		}
		seen[s] = true
		texts = append(texts, s)
		if len(texts) >= opt.MaxAssertions {
			break
		}
	}
	if len(texts) < 2 {
		// The benchmark guarantees >= 2 assertions per example; fall back
		// to structural tautologies only if mining came up short.
		texts = append(texts, fallbackAssertions(nl)...)
		if len(texts) > opt.MaxAssertions {
			texts = texts[:opt.MaxAssertions]
		}
	}
	return llm.Example{Name: d.Name, Source: d.Source, Assertions: texts}, nil
}

// fallbackAssertions emits trivially provable properties about the reset
// behaviour of the first register, or input-echo for pure combinational
// designs. Used only when mining yields fewer than two assertions.
func fallbackAssertions(nl *verilog.Netlist) []string {
	var out []string
	for _, idx := range nl.Regs {
		n := nl.Nets[idx]
		out = append(out, fmt.Sprintf("%s == 0 || %s != 0;", n.Name, n.Name))
		if len(out) >= 2 {
			return out
		}
	}
	for _, idx := range nl.Outputs {
		n := nl.Nets[idx]
		out = append(out, fmt.Sprintf("%s == 0 || %s != 0;", n.Name, n.Name))
		if len(out) >= 2 {
			break
		}
	}
	return out
}
