package bench

import (
	"context"
	"sort"
	"strings"
	"testing"

	"assertionbench/internal/fpv"
	"assertionbench/internal/sim"
	"assertionbench/internal/verilog"
)

func TestTrainDesignsElaborate(t *testing.T) {
	train := TrainDesigns()
	if len(train) != 5 {
		t.Fatalf("got %d training designs, want 5", len(train))
	}
	seqCount := 0
	for _, d := range train {
		nl, err := verilog.ElaborateSource(d.Source, d.Name)
		if err != nil {
			t.Errorf("train design %s: %v", d.Name, err)
			continue
		}
		if nl.IsSequential() != d.Sequential {
			t.Errorf("%s: sequential flag %v, netlist says %v", d.Name, d.Sequential, nl.IsSequential())
		}
		if d.Sequential {
			seqCount++
		}
	}
	// Paper Sec. III: arbiter and T flip-flop are sequential, rest comb.
	if seqCount != 2 {
		t.Errorf("sequential training designs = %d, want 2", seqCount)
	}
}

func TestCorpusHas100ElaboratingDesigns(t *testing.T) {
	corpus := TestCorpus()
	if len(corpus) != 100 {
		t.Fatalf("corpus has %d designs, want exactly 100", len(corpus))
	}
	names := map[string]bool{}
	for _, d := range corpus {
		if names[d.Name] {
			t.Errorf("duplicate design name %s", d.Name)
		}
		names[d.Name] = true
		nl, err := verilog.ElaborateSource(d.Source, d.Name)
		if err != nil {
			t.Errorf("design %s does not elaborate: %v", d.Name, err)
			continue
		}
		if nl.IsSequential() != d.Sequential {
			t.Errorf("%s: metadata says sequential=%v, netlist says %v", d.Name, d.Sequential, nl.IsSequential())
		}
		// Every design must be simulatable.
		s := sim.New(nl)
		for i := 0; i < 4; i++ {
			s.Step()
		}
	}
}

func TestCorpusMatchesPaperScale(t *testing.T) {
	corpus := TestCorpus()
	locs := make([]int, len(corpus))
	seq := 0
	for i, d := range corpus {
		locs[i] = d.LoC
		if d.LoC != CountLoC(d.Source) {
			t.Errorf("%s: stale LoC metadata", d.Name)
		}
		if d.Sequential {
			seq++
		}
	}
	sort.Ints(locs)
	// Paper Sec. III: sizes from 10 to 1150 lines.
	if locs[0] < 5 || locs[0] > 20 {
		t.Errorf("smallest design is %d LoC, want around 10", locs[0])
	}
	if locs[len(locs)-1] < 900 || locs[len(locs)-1] > 1300 {
		t.Errorf("largest design is %d LoC, want around 1150", locs[len(locs)-1])
	}
	if seq < 60 || seq > 90 {
		t.Errorf("%d sequential designs; expected a sequential-heavy mix", seq)
	}
	// The named Table I designs must be present.
	names := map[string]bool{}
	for _, d := range corpus {
		names[d.FileName] = true
	}
	for _, want := range []string{
		"ca_prng.v", "cavlc_read_total_coeffs.v", "cavlc_read_total_zeros.v",
		"ge_1000baseX_rx.v", "MAC_tx_Ctrl.v", "fifo_mem.v", "can_crc.v",
		"counter.v", "eth_fifo.v", "phasecomparator.v",
	} {
		if !names[want] {
			t.Errorf("corpus missing paper design %s", want)
		}
	}
}

func TestCountLoC(t *testing.T) {
	src := `
// comment only
module m(a); // trailing

/* block
   comment */
input a; /* inline */ wire b;
endmodule
`
	if got := CountLoC(src); got != 3 {
		t.Errorf("CountLoC = %d, want 3", got)
	}
}

func TestBuildICLExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("mining in short mode")
	}
	icl, err := BuildICL(context.Background(), ICLOptions{FPV: fpv.Options{MaxProductStates: 20000, RandomRuns: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if len(icl) != 5 {
		t.Fatalf("got %d examples, want 5", len(icl))
	}
	total := 0
	for _, ex := range icl {
		if len(ex.Assertions) < 2 {
			t.Errorf("example %s has %d assertions, want >= 2 (paper minimum)", ex.Name, len(ex.Assertions))
		}
		if len(ex.Assertions) > 10 {
			t.Errorf("example %s has %d assertions, want <= 10", ex.Name, len(ex.Assertions))
		}
		total += len(ex.Assertions)
		// Every example assertion must be proven on its own design.
		nl, err := verilog.ElaborateSource(ex.Source, ex.Name)
		if err != nil {
			t.Fatal(err)
		}
		for _, as := range ex.Assertions {
			r := fpv.VerifySource(context.Background(), nl, strings.TrimSuffix(as, ";"), fpv.Options{})
			if !r.Status.IsPass() {
				t.Errorf("%s: ICL assertion %q is not proven (%v)", ex.Name, as, r.Status)
			}
		}
	}
	if total < 10 {
		t.Errorf("only %d assertions across examples; paper averages 4.8/design", total)
	}
}
