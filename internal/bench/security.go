package bench

// Security-oriented designs exercising the paper's future-work direction
// (iii): "model and capture likely design security vulnerabilities as
// assertions". They are not part of the 100-design test corpus; the
// security miner (internal/mine.Security) and the information-flow
// checker target them.

// SecAccessCtrl gates a data path behind a lock register. The unlocked
// path leaks data_in to data_out; locked, the output must be zero.
const SecAccessCtrl = `// access-controlled data path
module access_ctrl(clk, rst, unlock_req, key_ok, data_in, data_out, locked);
input clk, rst, unlock_req, key_ok;
input [7:0] data_in;
output [7:0] data_out;
output locked;
reg locked_r;
assign locked = locked_r;
assign data_out = locked_r ? 8'h00 : data_in;
always @(posedge clk or posedge rst)
  if (rst)
    locked_r <= 1;
  else if (unlock_req & key_ok)
    locked_r <= 0;
  else if (~unlock_req)
    locked_r <= 1;
endmodule
`

// SecAccessCtrlLeaky is the buggy variant: one output bit bypasses the
// lock — the kind of subtle leak a security assertion must catch.
const SecAccessCtrlLeaky = `// access-controlled data path with a leak
module access_ctrl_leaky(clk, rst, unlock_req, key_ok, data_in, data_out, locked);
input clk, rst, unlock_req, key_ok;
input [7:0] data_in;
output [7:0] data_out;
output locked;
reg locked_r;
assign locked = locked_r;
// BUG: bit 0 of the data path ignores the lock.
assign data_out = {locked_r ? 7'h00 : data_in[7:1], data_in[0]};
always @(posedge clk or posedge rst)
  if (rst)
    locked_r <= 1;
  else if (unlock_req & key_ok)
    locked_r <= 0;
  else if (~unlock_req)
    locked_r <= 1;
endmodule
`

// SecPrivFSM is a privilege-escalation FSM: user -> supervisor requires
// an auth handshake; any fault drops back to user.
const SecPrivFSM = `// privilege FSM
module priv_fsm(clk, rst, auth_req, auth_ok, fault, priv, super);
input clk, rst, auth_req, auth_ok, fault;
output [1:0] priv;
output super;
reg [1:0] priv;
assign super = priv == 2'd2;
always @(posedge clk or posedge rst)
  if (rst)
    priv <= 0;
  else if (fault)
    priv <= 0;
  else
    case (priv)
      2'd0: priv <= auth_req ? 2'd1 : 2'd0;
      2'd1: priv <= auth_ok ? 2'd2 : 2'd0;
      2'd2: priv <= 2'd2;
      default: priv <= 0;
    endcase
endmodule
`

// SecurityDesigns returns the security benchmark set.
func SecurityDesigns() []Design {
	entries := []struct {
		name, file, src, fn string
	}{
		{"access_ctrl", "access_ctrl.v", SecAccessCtrl, "Lock-gated data path"},
		{"access_ctrl_leaky", "access_ctrl_leaky.v", SecAccessCtrlLeaky, "Lock-gated data path with a deliberate leak"},
		{"priv_fsm", "priv_fsm.v", SecPrivFSM, "Privilege-escalation FSM"},
	}
	out := make([]Design, len(entries))
	for i, e := range entries {
		out[i] = Design{
			Name: e.name, FileName: e.file, Source: e.src,
			Sequential: true, Category: "security",
			Functionality: e.fn, LoC: CountLoC(e.src),
		}
	}
	return out
}
