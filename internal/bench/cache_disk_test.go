package bench

import (
	"sync"
	"testing"

	"assertionbench/internal/verilog"
)

// TestElabCachePurgeRaceReregisters pins the Purge/in-flight-Elaborate
// contract: when a Purge lands while an elaboration is in flight, the
// finishing Elaborate re-registers its entry, so a later Elaborate of
// the same design shares the same netlist pointer instead of minting a
// second one (which would strand any reachability graphs published
// under the first pointer).
func TestElabCachePurgeRaceReregisters(t *testing.T) {
	orig := elaborateSource
	defer func() { elaborateSource = orig }()

	var c ElabCache
	d := TrainDesigns()[0]

	inFlight := make(chan struct{})
	release := make(chan struct{})
	elaborateSource = func(src, top string) (*verilog.Netlist, error) {
		close(inFlight)
		<-release
		return orig(src, top)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var raced *verilog.Netlist
	go func() {
		defer wg.Done()
		raced, _ = c.Elaborate(d)
	}()
	<-inFlight
	// The purge lands mid-elaboration: it must bump the generation and
	// leave the racer to re-register when it finishes.
	c.Purge()
	if g := c.generation(); g != 1 {
		t.Fatalf("generation after purge = %d, want 1", g)
	}
	elaborateSource = orig // later elaborations run unblocked
	close(release)
	wg.Wait()

	if raced == nil {
		t.Fatal("raced elaboration failed")
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries after raced elaboration, want 1 (re-registered)", c.Len())
	}
	after, err := c.Elaborate(d)
	if err != nil {
		t.Fatal(err)
	}
	if after != raced {
		t.Fatal("post-purge Elaborate minted a second netlist; the raced entry was not re-registered")
	}
}

// TestElabCachePurgeRaceConvergesOnWinner covers the other interleaving:
// the purge lands mid-elaboration AND a fresh Elaborate completes before
// the raced one finishes. The raced caller must converge on the winner's
// netlist rather than re-registering its own.
func TestElabCachePurgeRaceConvergesOnWinner(t *testing.T) {
	orig := elaborateSource
	defer func() { elaborateSource = orig }()

	var c ElabCache
	d := TrainDesigns()[0]

	inFlight := make(chan struct{})
	release := make(chan struct{})
	elaborateSource = func(src, top string) (*verilog.Netlist, error) {
		close(inFlight)
		<-release
		return orig(src, top)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var raced *verilog.Netlist
	go func() {
		defer wg.Done()
		raced, _ = c.Elaborate(d)
	}()
	<-inFlight
	c.Purge()
	elaborateSource = orig
	winner, err := c.Elaborate(d) // completes while the racer is still blocked
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	wg.Wait()

	if raced != winner {
		t.Fatal("raced caller did not converge on the post-purge winner's netlist")
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
}

// TestElabCacheDiskTier: with a cache directory attached, a second cache
// (a fresh process) adopts the compiled program from disk instead of
// recompiling, and the adopted program is the decoded blob.
func TestElabCacheDiskTier(t *testing.T) {
	dir := t.TempDir()
	d := TrainDesigns()[0]

	var cold ElabCache
	if err := cold.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	nl1, err := cold.Elaborate(d)
	if err != nil {
		t.Fatal(err)
	}
	p1 := nl1.Program()

	var warm ElabCache
	if err := warm.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	nl2, err := warm.Elaborate(d)
	if err != nil {
		t.Fatal(err)
	}
	if nl2 == nl1 {
		t.Fatal("fresh cache shared a netlist pointer; want independent elaboration")
	}
	p2 := nl2.Program()
	if p2 == p1 {
		t.Fatal("programs share a pointer across caches; want a decoded copy")
	}
	// The decoded program must be byte-identical to the compiled one.
	if string(verilog.EncodeProgram(p2)) != string(verilog.EncodeProgram(p1)) {
		t.Fatal("disk-loaded program differs from freshly compiled")
	}
	// A corrupted store must fall back to recompilation transparently.
	var rebuilt ElabCache
	if err := rebuilt.SetCacheDir(t.TempDir()); err != nil { // empty dir: all misses
		t.Fatal(err)
	}
	nl3, err := rebuilt.Elaborate(d)
	if err != nil {
		t.Fatal(err)
	}
	if string(verilog.EncodeProgram(nl3.Program())) != string(verilog.EncodeProgram(p1)) {
		t.Fatal("recompiled program differs")
	}
	// Detaching restores the plain in-memory behaviour.
	if err := warm.SetCacheDir(""); err != nil {
		t.Fatal(err)
	}
}
