package bench

import (
	"fmt"
	"math/rand"
	"strings"
)

// This file extends the corpus generator families (gen.go) into a seeded
// design fuzzer: a FuzzSpec is the genome of one generated design —
// family, size parameters, reset polarity and a structural seed — and
// Build deterministically renders it to Verilog source. The differential
// harness (internal/dverify) draws random specs, checks them against its
// oracles, and shrinks the genome when a disagreement appears.

// FuzzSpec is the genome of one generated design. Build is a pure
// function of the spec, so a spec fully identifies a reproduction case.
type FuzzSpec struct {
	// Family selects the generator (see FuzzFamilies).
	Family string
	// A and B are family-specific size parameters (width, depth, state
	// count, operation count, ...). Out-of-range values are clamped.
	A, B int
	// NegReset switches families that support it to an active-low
	// asynchronous reset (negedge rst_n / if (!rst_n)).
	NegReset bool
	// Seed drives the structural randomness of the "mixed" and "fsmrand"
	// families (block shapes, expression trees, transition targets).
	Seed int64
}

// fuzzFamily describes one generator family and its parameter bounds.
type fuzzFamily struct {
	name       string
	aMin, aMax int
	bMin, bMax int
	seq        bool
	gen        func(s FuzzSpec, name string) string
}

var fuzzFamilies = []fuzzFamily{
	{"counter", 1, 8, 0, 1, true, func(s FuzzSpec, n string) string { return genCounter(n, s.A, s.B == 1) }},
	{"shift", 2, 10, 0, 0, true, func(s FuzzSpec, n string) string { return genShiftReg(n, s.A) }},
	{"lfsr", 2, 8, 0, 0, true, func(s FuzzSpec, n string) string { return genLFSR(n, s.A, []int{s.A - 1, s.A / 2, 0}) }},
	{"gray", 1, 6, 0, 0, true, func(s FuzzSpec, n string) string { return genGray(n, s.A) }},
	{"fifo", 1, 4, 0, 0, true, func(s FuzzSpec, n string) string { return genFifoCtrl(n, s.A) }},
	{"fsm", 3, 12, 0, 0, true, func(s FuzzSpec, n string) string { return genFSM(n, s.A) }},
	{"crc", 2, 8, 1, 255, true, func(s FuzzSpec, n string) string { return genCRC(n, s.A, uint64(s.B)) }},
	{"checksum", 1, 6, 0, 0, true, func(s FuzzSpec, n string) string { return genChecksum(n, s.A) }},
	// Input-heavy families are clamped so their data-input vectors stay
	// within the differential harness's exhaustive-enumeration budget
	// (internal/dverify) for most parameter draws.
	{"alu", 1, 4, 1, 12, false, func(s FuzzSpec, n string) string { return genALU(n, s.A, s.B) }},
	{"satadd", 1, 5, 0, 0, false, func(s FuzzSpec, n string) string { return genSatAdd(n, s.A) }},
	{"parity", 1, 8, 0, 0, false, func(s FuzzSpec, n string) string { return genParity(n, s.A) }},
	{"arb", 1, 5, 0, 0, true, func(s FuzzSpec, n string) string { return genPriorityArb(n, s.A) }},
	{"handshake", 1, 6, 0, 0, true, func(s FuzzSpec, n string) string { return genHandshake(n, s.A) }},
	{"edge", 0, 0, 0, 0, true, func(s FuzzSpec, n string) string { return genEdgeDetect(n) }},
	{"debounce", 1, 5, 0, 0, true, func(s FuzzSpec, n string) string { return genDebounce(n, s.A) }},
	{"timer", 1, 5, 0, 0, true, func(s FuzzSpec, n string) string { return genTimer(n, s.A) }},
	{"serializer", 2, 8, 0, 0, true, func(s FuzzSpec, n string) string { return genSerializer(n, s.A) }},
	{"keyexpand", 2, 8, 1, 6, true, func(s FuzzSpec, n string) string { return genKeyExpand(n, s.A, s.B) }},
	{"regbank", 1, 4, 1, 6, true, func(s FuzzSpec, n string) string { return genRegBank(n, s.A, s.B) }},
	{"summer", 1, 3, 1, 4, true, func(s FuzzSpec, n string) string { return genSummer(n, s.A, s.B) }},
	{"clockgen", 1, 6, 0, 0, true, func(s FuzzSpec, n string) string { return genClockGen(n, s.A) }},
	{"resetsync", 2, 4, 0, 0, true, func(s FuzzSpec, n string) string { return genResetSync(n, s.A) }},
	{"fsmrand", 3, 10, 0, 0, true, genFuzzFSM},
	{"mixed", 1, 6, 1, 4, true, genFuzzMixed},
}

func familyByName(name string) fuzzFamily {
	for _, f := range fuzzFamilies {
		if f.name == name {
			return f
		}
	}
	// Unknown families degrade to the mixed generator rather than failing:
	// a shrunk or hand-edited spec should always build something.
	return fuzzFamilies[len(fuzzFamilies)-1]
}

// FuzzFamilies lists the generator family names.
func FuzzFamilies() []string {
	out := make([]string, len(fuzzFamilies))
	for i, f := range fuzzFamilies {
		out[i] = f.name
	}
	return out
}

// RandomFuzzSpec draws a uniformly random spec from rng.
func RandomFuzzSpec(rng *rand.Rand) FuzzSpec {
	f := fuzzFamilies[rng.Intn(len(fuzzFamilies))]
	s := FuzzSpec{Family: f.name, Seed: rng.Int63()}
	if f.aMax > f.aMin {
		s.A = f.aMin + rng.Intn(f.aMax-f.aMin+1)
	} else {
		s.A = f.aMin
	}
	if f.bMax > f.bMin {
		s.B = f.bMin + rng.Intn(f.bMax-f.bMin+1)
	} else {
		s.B = f.bMin
	}
	// Reset polarity only matters to the structurally random families;
	// keeping the flag on every spec makes shrinking uniform.
	s.NegReset = rng.Intn(4) == 0
	return s
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// normalize clamps the parameters into the family's valid bounds.
func (s FuzzSpec) normalize() FuzzSpec {
	f := familyByName(s.Family)
	s.Family = f.name
	s.A = clampInt(s.A, f.aMin, f.aMax)
	s.B = clampInt(s.B, f.bMin, f.bMax)
	if s.Seed < 0 {
		s.Seed = -s.Seed
	}
	return s
}

// ModuleName returns the deterministic module name of the spec's design.
func (s FuzzSpec) ModuleName() string {
	s = s.normalize()
	neg := 0
	if s.NegReset {
		neg = 1
	}
	return fmt.Sprintf("fz_%s_%d_%d_%d_%x", s.Family, s.A, s.B, neg, s.Seed&0xffff)
}

func (s FuzzSpec) String() string {
	return fmt.Sprintf("{family=%s A=%d B=%d negReset=%v seed=%d}", s.Family, s.A, s.B, s.NegReset, s.Seed)
}

// Build renders the spec to a benchmark Design. The result is a pure
// function of the spec.
func (s FuzzSpec) Build() Design {
	s = s.normalize()
	f := familyByName(s.Family)
	name := s.ModuleName()
	src := f.gen(s, name)
	return Design{
		Name:          name,
		FileName:      name + ".v",
		Source:        src,
		Sequential:    f.seq,
		Category:      "fuzz/" + f.name,
		Functionality: "differential-harness generated design " + s.String(),
		LoC:           CountLoC(src),
	}
}

// Shrink returns candidate smaller genomes, nearest-first. The shrink
// loop keeps a candidate only if it still reproduces the disagreement,
// so candidates merely need to be plausibly simpler, not equivalent.
func (s FuzzSpec) Shrink() []FuzzSpec {
	s = s.normalize()
	f := familyByName(s.Family)
	var out []FuzzSpec
	seen := map[FuzzSpec]bool{s: true}
	add := func(c FuzzSpec) {
		c = c.normalize()
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	if s.A > f.aMin {
		c := s
		c.A = s.A - 1
		add(c)
		c.A = f.aMin + (s.A-f.aMin)/2
		add(c)
	}
	if s.B > f.bMin {
		c := s
		c.B = s.B - 1
		add(c)
		c.B = f.bMin + (s.B-f.bMin)/2
		add(c)
	}
	if s.NegReset {
		c := s
		c.NegReset = false
		add(c)
	}
	if s.Seed != 0 {
		c := s
		c.Seed = s.Seed / 2
		add(c)
	}
	return out
}

// --- structurally random families ---

// resetStyle renders the sensitivity-list event and the guard expression
// for the chosen reset polarity.
func resetStyle(neg bool) (port, event, guard string) {
	if neg {
		return "rst_n", "negedge rst_n", "!rst_n"
	}
	return "rst", "posedge rst", "rst"
}

// genFuzzFSM emits a state machine with a seed-random transition table:
// every state picks random successors for its go/stall input combinations,
// so the reachable shape (chains, loops, traps) varies per seed.
func genFuzzFSM(s FuzzSpec, name string) string {
	rng := rand.New(rand.NewSource(s.Seed ^ 0x5eed))
	states := s.A
	w := bitsFor(states)
	rstPort, rstEvent, rstGuard := resetStyle(s.NegReset)
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: %d-state random-shape FSM\n", name, states)
	fmt.Fprintf(&sb, "module %s(clk, %s, go, stall, state, active);\n", name, rstPort)
	fmt.Fprintf(&sb, "input clk, %s, go, stall;\n", rstPort)
	fmt.Fprintf(&sb, "output [%d:0] state;\n", w-1)
	sb.WriteString("output active;\n")
	fmt.Fprintf(&sb, "reg [%d:0] state, next;\n", w-1)
	sb.WriteString("assign active = state != 0;\n")
	sb.WriteString("always @(*)\n  case (state)\n")
	for st := 0; st < states; st++ {
		onGo := rng.Intn(states)
		onStall := st
		onElse := rng.Intn(states)
		fmt.Fprintf(&sb, "    %d'd%d: next = go ? %d'd%d : (stall ? %d'd%d : %d'd%d);\n",
			w, st, w, onGo, w, onStall, w, onElse)
	}
	fmt.Fprintf(&sb, "    default: next = %d'd0;\n", w)
	sb.WriteString("  endcase\n")
	fmt.Fprintf(&sb, "always @(posedge clk or %s)\n", rstEvent)
	fmt.Fprintf(&sb, "  if (%s)\n    state <= 0;\n  else\n    state <= next;\n", rstGuard)
	sb.WriteString("endmodule\n")
	return sb.String()
}

// exprPool tracks the symbols a random expression may reference, with
// their widths, so generated indices and part-selects stay in range.
type exprPool struct {
	names  []string
	widths []int
	rng    *rand.Rand
}

func (p *exprPool) add(name string, width int) {
	p.names = append(p.names, name)
	p.widths = append(p.widths, width)
}

// expr emits a random well-formed expression of bounded depth over the
// pool's symbols.
func (p *exprPool) expr(depth int) string {
	if depth <= 0 || len(p.names) == 0 || p.rng.Intn(5) == 0 {
		return p.atom()
	}
	switch p.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s %s %s)", p.expr(depth-1), p.binop(), p.expr(depth-1))
	case 1:
		return fmt.Sprintf("(%s %s %s)", p.expr(depth-1), p.cmpop(), p.expr(depth-1))
	case 2:
		return fmt.Sprintf("(%s ? %s : %s)", p.expr(depth-1), p.expr(depth-1), p.expr(depth-1))
	case 3:
		return fmt.Sprintf("(~%s)", p.expr(depth-1))
	case 4:
		ops := []string{"&", "|", "^"}
		return fmt.Sprintf("(%s%s)", ops[p.rng.Intn(len(ops))], p.atom())
	case 5:
		return fmt.Sprintf("(%s >> %d)", p.expr(depth-1), p.rng.Intn(4))
	case 6:
		i := p.rng.Intn(len(p.names))
		if p.widths[i] == 1 {
			return p.names[i]
		}
		return fmt.Sprintf("%s[%d]", p.names[i], p.rng.Intn(p.widths[i]))
	default:
		return fmt.Sprintf("{%s, %s}", p.atom(), p.atom())
	}
}

func (p *exprPool) atom() string {
	if len(p.names) == 0 || p.rng.Intn(4) == 0 {
		w := 1 + p.rng.Intn(6)
		return fmt.Sprintf("%d'd%d", w, p.rng.Intn(1<<uint(w)))
	}
	return p.names[p.rng.Intn(len(p.names))]
}

func (p *exprPool) binop() string {
	ops := []string{"+", "-", "&", "|", "^"}
	return ops[p.rng.Intn(len(ops))]
}

func (p *exprPool) cmpop() string {
	ops := []string{"==", "!=", "<", ">=", ">"}
	return ops[p.rng.Intn(len(ops))]
}

// genFuzzMixed emits a module with seed-random structure: a few inputs,
// B registers each driven by its own guarded always block, a layered set
// of combinational assigns, and one @(*) case block — mixed sequential
// and combinational logic with the requested reset polarity. Acyclicity
// holds by construction: wires reference only inputs, registers, and
// earlier wires; the case block reads only inputs and registers.
func genFuzzMixed(s FuzzSpec, name string) string {
	rng := rand.New(rand.NewSource(s.Seed ^ 0x3a7ed))
	width := s.A
	blocks := s.B
	rstPort, rstEvent, rstGuard := resetStyle(s.NegReset)

	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: mixed comb/seq fuzz design (width %d, %d blocks)\n", name, width, blocks)
	fmt.Fprintf(&sb, "module %s(clk, %s, en, a, b, y, q, f);\n", name, rstPort)
	fmt.Fprintf(&sb, "input clk, %s, en;\n", rstPort)
	fmt.Fprintf(&sb, "input [%d:0] a;\n", width-1)
	sb.WriteString("input b;\n")
	fmt.Fprintf(&sb, "output [%d:0] y;\n", width-1)
	fmt.Fprintf(&sb, "output [%d:0] q;\n", width-1)
	sb.WriteString("output f;\n")

	// Registers, one driver block each.
	seqPool := &exprPool{rng: rng}
	seqPool.add("en", 1)
	seqPool.add("a", width)
	seqPool.add("b", 1)
	for i := 0; i < blocks; i++ {
		rw := 1 + rng.Intn(width)
		fmt.Fprintf(&sb, "reg [%d:0] r%d;\n", rw-1, i)
		seqPool.add(fmt.Sprintf("r%d", i), rw)
	}
	fmt.Fprintf(&sb, "reg [%d:0] c0;\n", width-1)

	// Layered combinational wires over inputs, registers, earlier wires.
	wirePool := &exprPool{rng: rng}
	wirePool.add("en", 1)
	wirePool.add("a", width)
	wirePool.add("b", 1)
	for i := 0; i < blocks; i++ {
		wirePool.add(fmt.Sprintf("r%d", i), seqPool.widths[3+i])
	}
	for i := 0; i < blocks; i++ {
		ww := 1 + rng.Intn(width)
		fmt.Fprintf(&sb, "wire [%d:0] w%d;\n", ww-1, i)
		fmt.Fprintf(&sb, "assign w%d = %s;\n", i, wirePool.expr(2))
		wirePool.add(fmt.Sprintf("w%d", i), ww)
	}
	fmt.Fprintf(&sb, "assign y = %s;\n", wirePool.expr(2))
	sb.WriteString("assign q = c0;\n")
	fmt.Fprintf(&sb, "assign f = %s;\n", wirePool.expr(1))

	// One guarded always block per register.
	for i := 0; i < blocks; i++ {
		fmt.Fprintf(&sb, "always @(posedge clk or %s)\n", rstEvent)
		fmt.Fprintf(&sb, "  if (%s)\n    r%d <= 0;\n", rstGuard, i)
		fmt.Fprintf(&sb, "  else if (%s)\n    r%d <= %s;\n", seqPool.expr(1), i, seqPool.expr(2))
		fmt.Fprintf(&sb, "  else\n    r%d <= %s;\n", i, seqPool.expr(2))
	}

	// Combinational case block reading only inputs and registers.
	sel := seqPool.expr(1)
	arms := 2 + rng.Intn(3)
	fmt.Fprintf(&sb, "always @(*)\n  case (%s)\n", sel)
	for i := 0; i < arms; i++ {
		fmt.Fprintf(&sb, "    %d: c0 = %s;\n", i, seqPool.expr(2))
	}
	fmt.Fprintf(&sb, "    default: c0 = %s;\n  endcase\n", seqPool.expr(1))
	sb.WriteString("endmodule\n")
	return sb.String()
}
