package bench

import (
	"fmt"
	"strings"
)

// This file contains the procedural Verilog generators behind the test
// corpus. Each family mirrors a hardware category from the paper's test
// set (communication controllers, CRC units, RNGs, FSMs, FIFOs/flow
// control, datapath blocks, ...). Every generated design parses,
// elaborates, and simulates under internal/verilog — the generators are
// covered by tests that elaborate all 100 designs.

// genCounter: enabled up-counter with synchronous clear and optional load.
func genCounter(name string, width int, hasLoad bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: %d-bit enabled counter\n", name, width)
	fmt.Fprintf(&sb, "module %s(clk, rst, en, ", name)
	if hasLoad {
		sb.WriteString("load, din, ")
	}
	sb.WriteString("count, tc);\n")
	sb.WriteString("input clk, rst, en;\n")
	if hasLoad {
		sb.WriteString("input load;\n")
		fmt.Fprintf(&sb, "input [%d:0] din;\n", width-1)
	}
	fmt.Fprintf(&sb, "output [%d:0] count;\n", width-1)
	sb.WriteString("output tc;\n")
	fmt.Fprintf(&sb, "reg [%d:0] count;\n", width-1)
	fmt.Fprintf(&sb, "assign tc = count == %d'h%x;\n", width, (uint64(1)<<uint(width))-1)
	sb.WriteString("always @(posedge clk or posedge rst)\n")
	sb.WriteString("  if (rst)\n    count <= 0;\n")
	if hasLoad {
		sb.WriteString("  else if (load)\n    count <= din;\n")
	}
	sb.WriteString("  else if (en)\n    count <= count + 1;\n")
	sb.WriteString("endmodule\n")
	return sb.String()
}

// genShiftReg: serial-in shift register with parallel tap outputs.
func genShiftReg(name string, depth int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: %d-deep shift register\n", name, depth)
	fmt.Fprintf(&sb, "module %s(clk, rst, d, q, taps);\n", name)
	sb.WriteString("input clk, rst, d;\noutput q;\n")
	fmt.Fprintf(&sb, "output [%d:0] taps;\n", depth-1)
	fmt.Fprintf(&sb, "reg [%d:0] sr;\n", depth-1)
	sb.WriteString("assign taps = sr;\n")
	fmt.Fprintf(&sb, "assign q = sr[%d];\n", depth-1)
	sb.WriteString("always @(posedge clk or posedge rst)\n")
	sb.WriteString("  if (rst)\n    sr <= 0;\n")
	fmt.Fprintf(&sb, "  else\n    sr <= {sr[%d:0], d};\n", depth-2)
	sb.WriteString("endmodule\n")
	return sb.String()
}

// genLFSR: Fibonacci LFSR pattern generator (the corpus "RNG" category).
func genLFSR(name string, width int, taps []int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: %d-bit LFSR pattern generator\n", name, width)
	fmt.Fprintf(&sb, "module %s(clk, rst, en, lfsr, bit_out);\n", name)
	sb.WriteString("input clk, rst, en;\n")
	fmt.Fprintf(&sb, "output [%d:0] lfsr;\n", width-1)
	sb.WriteString("output bit_out;\n")
	fmt.Fprintf(&sb, "reg [%d:0] lfsr;\n", width-1)
	sb.WriteString("wire fb;\n")
	terms := make([]string, len(taps))
	for i, t := range taps {
		terms[i] = fmt.Sprintf("lfsr[%d]", t)
	}
	fmt.Fprintf(&sb, "assign fb = %s;\n", strings.Join(terms, " ^ "))
	sb.WriteString("assign bit_out = lfsr[0];\n")
	sb.WriteString("always @(posedge clk or posedge rst)\n")
	fmt.Fprintf(&sb, "  if (rst)\n    lfsr <= %d'h1;\n", width)
	fmt.Fprintf(&sb, "  else if (en)\n    lfsr <= {lfsr[%d:0], fb};\n", width-2)
	sb.WriteString("endmodule\n")
	return sb.String()
}

// genGray: gray-code counter with binary shadow.
func genGray(name string, width int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: %d-bit gray-code counter\n", name, width)
	fmt.Fprintf(&sb, "module %s(clk, rst, en, gray, bin);\n", name)
	sb.WriteString("input clk, rst, en;\n")
	fmt.Fprintf(&sb, "output [%d:0] gray, bin;\n", width-1)
	fmt.Fprintf(&sb, "reg [%d:0] bin;\n", width-1)
	sb.WriteString("assign gray = bin ^ (bin >> 1);\n")
	sb.WriteString("always @(posedge clk or posedge rst)\n")
	sb.WriteString("  if (rst)\n    bin <= 0;\n")
	sb.WriteString("  else if (en)\n    bin <= bin + 1;\n")
	sb.WriteString("endmodule\n")
	return sb.String()
}

// genFifoCtrl: FIFO pointer/occupancy controller (flow-control category).
func genFifoCtrl(name string, ptrWidth int) string {
	depth := 1 << uint(ptrWidth)
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: FIFO occupancy controller, depth %d\n", name, depth)
	fmt.Fprintf(&sb, "module %s(clk, rst, w_en, r_en, full, empty, count);\n", name)
	sb.WriteString("input clk, rst, w_en, r_en;\noutput full, empty;\n")
	fmt.Fprintf(&sb, "output [%d:0] count;\n", ptrWidth)
	fmt.Fprintf(&sb, "reg [%d:0] count;\n", ptrWidth)
	fmt.Fprintf(&sb, "reg [%d:0] wptr, rptr;\n", ptrWidth-1)
	fmt.Fprintf(&sb, "assign full = count == %d'd%d;\n", ptrWidth+1, depth)
	sb.WriteString("assign empty = count == 0;\n")
	sb.WriteString("wire do_w, do_r;\n")
	sb.WriteString("assign do_w = w_en & ~full;\n")
	sb.WriteString("assign do_r = r_en & ~empty;\n")
	sb.WriteString("always @(posedge clk or posedge rst)\n")
	sb.WriteString("  if (rst) begin\n    wptr <= 0;\n    rptr <= 0;\n    count <= 0;\n  end\n")
	sb.WriteString("  else begin\n")
	sb.WriteString("    if (do_w)\n      wptr <= wptr + 1;\n")
	sb.WriteString("    if (do_r)\n      rptr <= rptr + 1;\n")
	sb.WriteString("    if (do_w & ~do_r)\n      count <= count + 1;\n")
	sb.WriteString("    else if (do_r & ~do_w)\n      count <= count - 1;\n")
	sb.WriteString("  end\nendmodule\n")
	return sb.String()
}

// genFSM: a linear/branching state machine of n states with start/abort
// control (state-machine and controller categories).
func genFSM(name string, states int) string {
	w := 1
	for (1 << uint(w)) < states {
		w++
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: %d-state control FSM\n", name, states)
	fmt.Fprintf(&sb, "module %s(clk, rst, start, advance, abort, state, busy, done);\n", name)
	sb.WriteString("input clk, rst, start, advance, abort;\n")
	fmt.Fprintf(&sb, "output [%d:0] state;\n", w-1)
	sb.WriteString("output busy, done;\n")
	fmt.Fprintf(&sb, "reg [%d:0] state, next;\n", w-1)
	sb.WriteString("assign busy = state != 0;\n")
	fmt.Fprintf(&sb, "assign done = state == %d'd%d;\n", w, states-1)
	sb.WriteString("always @(*)\n")
	sb.WriteString("  case (state)\n")
	fmt.Fprintf(&sb, "    %d'd0: next = start ? %d'd1 : %d'd0;\n", w, w, w)
	for s := 1; s < states-1; s++ {
		fmt.Fprintf(&sb, "    %d'd%d: next = abort ? %d'd0 : (advance ? %d'd%d : %d'd%d);\n",
			w, s, w, w, s+1, w, s)
	}
	fmt.Fprintf(&sb, "    %d'd%d: next = %d'd0;\n", w, states-1, w)
	fmt.Fprintf(&sb, "    default: next = %d'd0;\n", w)
	sb.WriteString("  endcase\n")
	sb.WriteString("always @(posedge clk or posedge rst)\n")
	sb.WriteString("  if (rst)\n    state <= 0;\n  else\n    state <= next;\n")
	sb.WriteString("endmodule\n")
	return sb.String()
}

// genCRC: serial CRC with programmable-polynomial feedback (CRC category).
func genCRC(name string, width int, poly uint64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: %d-bit serial CRC, poly %#x\n", name, width, poly)
	fmt.Fprintf(&sb, "module %s(clk, rst, din, d_en, clear, crc, crc_ok);\n", name)
	sb.WriteString("input clk, rst, din, d_en, clear;\n")
	fmt.Fprintf(&sb, "output [%d:0] crc;\n", width-1)
	sb.WriteString("output crc_ok;\n")
	fmt.Fprintf(&sb, "reg [%d:0] crc;\n", width-1)
	sb.WriteString("wire fb;\n")
	fmt.Fprintf(&sb, "assign fb = crc[%d] ^ din;\n", width-1)
	sb.WriteString("assign crc_ok = crc == 0;\n")
	sb.WriteString("always @(posedge clk or posedge rst)\n")
	sb.WriteString("  if (rst)\n    crc <= 0;\n")
	sb.WriteString("  else if (clear)\n    crc <= 0;\n")
	sb.WriteString("  else if (d_en)\n")
	fmt.Fprintf(&sb, "    crc <= {crc[%d:0], 1'b0} ^ (fb ? %d'h%x : %d'h0);\n",
		width-2, width, poly&((uint64(1)<<uint(width))-1), width)
	sb.WriteString("endmodule\n")
	return sb.String()
}

// genChecksum: accumulate-and-fold checksum (network checksum category).
func genChecksum(name string, width int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: %d-bit ones-accumulate checksum\n", name, width)
	fmt.Fprintf(&sb, "module %s(clk, rst, data, valid, clear, sum, sum_zero);\n", name)
	sb.WriteString("input clk, rst, valid, clear;\n")
	fmt.Fprintf(&sb, "input [%d:0] data;\n", width-1)
	fmt.Fprintf(&sb, "output [%d:0] sum;\n", width-1)
	sb.WriteString("output sum_zero;\n")
	fmt.Fprintf(&sb, "reg [%d:0] sum;\n", width-1)
	sb.WriteString("assign sum_zero = sum == 0;\n")
	sb.WriteString("always @(posedge clk or posedge rst)\n")
	sb.WriteString("  if (rst)\n    sum <= 0;\n")
	sb.WriteString("  else if (clear)\n    sum <= 0;\n")
	sb.WriteString("  else if (valid)\n    sum <= sum + data;\n")
	sb.WriteString("endmodule\n")
	return sb.String()
}

// genALU: combinational ALU over a case-selected operation set.
func genALU(name string, width, nops int) string {
	ops := []string{"a + b", "a - b", "a & b", "a | b", "a ^ b", "~a",
		"a >> 1", "a << 1", "(a > b) ? a : b", "(a < b) ? a : b", "a", "b"}
	if nops > len(ops) {
		nops = len(ops)
	}
	selW := 1
	for (1 << uint(selW)) < nops {
		selW++
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: %d-bit ALU with %d ops\n", name, width, nops)
	fmt.Fprintf(&sb, "module %s(op, a, b, y, zero);\n", name)
	fmt.Fprintf(&sb, "input [%d:0] op;\n", selW-1)
	fmt.Fprintf(&sb, "input [%d:0] a, b;\n", width-1)
	fmt.Fprintf(&sb, "output [%d:0] y;\n", width-1)
	sb.WriteString("output zero;\n")
	fmt.Fprintf(&sb, "reg [%d:0] y;\n", width-1)
	sb.WriteString("assign zero = y == 0;\n")
	sb.WriteString("always @(*)\n  case (op)\n")
	for i := 0; i < nops; i++ {
		fmt.Fprintf(&sb, "    %d'd%d: y = %s;\n", selW, i, ops[i])
	}
	sb.WriteString("    default: y = 0;\n  endcase\nendmodule\n")
	return sb.String()
}

// genSatAdd: saturating fixed-point adder (the corpus qadd.v).
func genSatAdd(name string, width int) string {
	var sb strings.Builder
	max := (uint64(1) << uint(width)) - 1
	fmt.Fprintf(&sb, "// %s: %d-bit saturating adder\n", name, width)
	fmt.Fprintf(&sb, "module %s(a, b, sum, sat);\n", name)
	fmt.Fprintf(&sb, "input [%d:0] a, b;\n", width-1)
	fmt.Fprintf(&sb, "output [%d:0] sum;\n", width-1)
	sb.WriteString("output sat;\n")
	fmt.Fprintf(&sb, "wire [%d:0] raw;\n", width)
	sb.WriteString("assign raw = a + b;\n")
	fmt.Fprintf(&sb, "assign sat = raw[%d];\n", width)
	fmt.Fprintf(&sb, "assign sum = sat ? %d'h%x : raw[%d:0];\n", width, max, width-1)
	sb.WriteString("endmodule\n")
	return sb.String()
}

// genParity: wide parity/reduction block (combinational).
func genParity(name string, width int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: %d-bit parity and reductions\n", name, width)
	fmt.Fprintf(&sb, "module %s(d, even, odd, all_ones, any_one);\n", name)
	fmt.Fprintf(&sb, "input [%d:0] d;\n", width-1)
	sb.WriteString("output even, odd, all_ones, any_one;\n")
	sb.WriteString("reg odd;\ninteger i;\n")
	sb.WriteString("always @(*) begin\n  odd = 0;\n")
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i = i + 1)\n    odd = odd ^ d[i];\nend\n", width)
	sb.WriteString("assign even = ~odd;\n")
	sb.WriteString("assign all_ones = &d;\n")
	sb.WriteString("assign any_one = |d;\n")
	sb.WriteString("endmodule\n")
	return sb.String()
}

// genPriorityArb: combinational priority arbiter with registered last
// grant (bus-arbiter category).
func genPriorityArb(name string, ports int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: %d-port priority arbiter\n", name, ports)
	fmt.Fprintf(&sb, "module %s(clk, rst, req, gnt, active);\n", name)
	sb.WriteString("input clk, rst;\n")
	fmt.Fprintf(&sb, "input [%d:0] req;\n", ports-1)
	fmt.Fprintf(&sb, "output [%d:0] gnt;\n", ports-1)
	sb.WriteString("output active;\n")
	fmt.Fprintf(&sb, "reg [%d:0] gnt_q;\n", ports-1)
	fmt.Fprintf(&sb, "reg [%d:0] pri;\n", ports-1)
	sb.WriteString("assign gnt = gnt_q;\n")
	sb.WriteString("assign active = |gnt_q;\n")
	sb.WriteString("always @(*) begin\n")
	sb.WriteString("  pri = 0;\n")
	for i := 0; i < ports; i++ {
		if i == 0 {
			fmt.Fprintf(&sb, "  if (req[0])\n    pri = %d'd1;\n", ports)
		} else {
			cond := make([]string, i)
			for j := 0; j < i; j++ {
				cond[j] = fmt.Sprintf("~req[%d]", j)
			}
			fmt.Fprintf(&sb, "  else if (req[%d] & %s)\n    pri = %d'd%d;\n",
				i, strings.Join(cond, " & "), ports, 1<<uint(i))
		}
	}
	sb.WriteString("end\n")
	sb.WriteString("always @(posedge clk or posedge rst)\n")
	sb.WriteString("  if (rst)\n    gnt_q <= 0;\n  else\n    gnt_q <= pri;\n")
	sb.WriteString("endmodule\n")
	return sb.String()
}

// genSummer: registered adder tree over n channels (audio-summer
// category).
func genSummer(name string, channels, width int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: %d-channel output summer\n", name, channels)
	fmt.Fprintf(&sb, "module %s(clk, rst, en, ", name)
	for i := 0; i < channels; i++ {
		fmt.Fprintf(&sb, "ch%d, ", i)
	}
	sb.WriteString("out);\n")
	sb.WriteString("input clk, rst, en;\n")
	for i := 0; i < channels; i++ {
		fmt.Fprintf(&sb, "input [%d:0] ch%d;\n", width-1, i)
	}
	fmt.Fprintf(&sb, "output [%d:0] out;\n", width+3)
	fmt.Fprintf(&sb, "reg [%d:0] out;\n", width+3)
	terms := make([]string, channels)
	for i := 0; i < channels; i++ {
		terms[i] = fmt.Sprintf("ch%d", i)
	}
	fmt.Fprintf(&sb, "wire [%d:0] total;\n", width+3)
	fmt.Fprintf(&sb, "assign total = %s;\n", strings.Join(terms, " + "))
	sb.WriteString("always @(posedge clk or posedge rst)\n")
	sb.WriteString("  if (rst)\n    out <= 0;\n  else if (en)\n    out <= total;\n")
	sb.WriteString("endmodule\n")
	return sb.String()
}

// genResetSync: reset synchronizer chain (clean_rst / tcReset category).
func genResetSync(name string, stages int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: %d-stage reset synchronizer\n", name, stages)
	fmt.Fprintf(&sb, "module %s(clk, rst_in, rst_out);\n", name)
	sb.WriteString("input clk, rst_in;\noutput rst_out;\n")
	fmt.Fprintf(&sb, "reg [%d:0] sync;\n", stages-1)
	fmt.Fprintf(&sb, "assign rst_out = sync[%d];\n", stages-1)
	sb.WriteString("always @(posedge clk)\n")
	fmt.Fprintf(&sb, "  sync <= {sync[%d:0], rst_in};\n", stages-2)
	sb.WriteString("endmodule\n")
	return sb.String()
}

// genClockGen: clock divider with programmable terminal count.
func genClockGen(name string, width int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: clock enable generator, %d-bit divider\n", name, width)
	fmt.Fprintf(&sb, "module %s(clk, rst, divisor, tick);\n", name)
	sb.WriteString("input clk, rst;\n")
	fmt.Fprintf(&sb, "input [%d:0] divisor;\n", width-1)
	sb.WriteString("output tick;\n")
	fmt.Fprintf(&sb, "reg [%d:0] cnt;\n", width-1)
	sb.WriteString("reg tick;\n")
	sb.WriteString("always @(posedge clk or posedge rst)\n")
	sb.WriteString("  if (rst) begin\n    cnt <= 0;\n    tick <= 0;\n  end\n")
	sb.WriteString("  else if (cnt >= divisor) begin\n    cnt <= 0;\n    tick <= 1;\n  end\n")
	sb.WriteString("  else begin\n    cnt <= cnt + 1;\n    tick <= 0;\n  end\n")
	sb.WriteString("endmodule\n")
	return sb.String()
}

// genRegBank: explicitly unrolled register bank with write select.
func genRegBank(name string, regs, width int) string {
	selW := 1
	for (1 << uint(selW)) < regs {
		selW++
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: %d x %d-bit register bank\n", name, regs, width)
	fmt.Fprintf(&sb, "module %s(clk, rst, we, sel, din, dout);\n", name)
	sb.WriteString("input clk, rst, we;\n")
	fmt.Fprintf(&sb, "input [%d:0] sel;\n", selW-1)
	fmt.Fprintf(&sb, "input [%d:0] din;\n", width-1)
	fmt.Fprintf(&sb, "output [%d:0] dout;\n", width-1)
	fmt.Fprintf(&sb, "reg [%d:0] dout;\n", width-1)
	for i := 0; i < regs; i++ {
		fmt.Fprintf(&sb, "reg [%d:0] r%d;\n", width-1, i)
	}
	sb.WriteString("always @(*)\n  case (sel)\n")
	for i := 0; i < regs; i++ {
		fmt.Fprintf(&sb, "    %d'd%d: dout = r%d;\n", selW, i, i)
	}
	sb.WriteString("    default: dout = 0;\n  endcase\n")
	sb.WriteString("always @(posedge clk or posedge rst)\n")
	sb.WriteString("  if (rst) begin\n")
	for i := 0; i < regs; i++ {
		fmt.Fprintf(&sb, "    r%d <= 0;\n", i)
	}
	sb.WriteString("  end\n  else if (we)\n    case (sel)\n")
	for i := 0; i < regs; i++ {
		fmt.Fprintf(&sb, "      %d'd%d: r%d <= din;\n", selW, i, i)
	}
	sb.WriteString("      default: r0 <= r0;\n    endcase\n")
	sb.WriteString("endmodule\n")
	return sb.String()
}

// genLookup: large combinational decode table (the video-codec lookup
// category — where the corpus's thousand-line files come from).
func genLookup(name string, entries, inW, outW int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: %d-entry decode table\n", name, entries)
	fmt.Fprintf(&sb, "module %s(code, value, valid);\n", name)
	fmt.Fprintf(&sb, "input [%d:0] code;\n", inW-1)
	fmt.Fprintf(&sb, "output [%d:0] value;\n", outW-1)
	sb.WriteString("output valid;\n")
	fmt.Fprintf(&sb, "reg [%d:0] value;\n", outW-1)
	sb.WriteString("reg valid;\n")
	sb.WriteString("always @(*) begin\n  valid = 1;\n  case (code)\n")
	mask := (uint64(1) << uint(outW)) - 1
	for i := 0; i < entries; i++ {
		// A deterministic pseudo-random but reproducible table.
		v := (uint64(i)*2654435761 + 12345) & mask
		fmt.Fprintf(&sb, "    %d'd%d: value = %d'h%x;\n", inW, i, outW, v)
	}
	sb.WriteString("    default: begin\n      value = 0;\n      valid = 0;\n    end\n")
	sb.WriteString("  endcase\nend\nendmodule\n")
	return sb.String()
}

// genLookupReg: decode table with a registered output stage (the
// sequential lookup variant of Table I).
func genLookupReg(name string, entries, inW, outW int) string {
	comb := genLookup(name+"_tbl", entries, inW, outW)
	var sb strings.Builder
	sb.WriteString(comb)
	fmt.Fprintf(&sb, "// %s: registered decode stage\n", name)
	fmt.Fprintf(&sb, "module %s(clk, rst, code, value_q, valid_q);\n", name)
	sb.WriteString("input clk, rst;\n")
	fmt.Fprintf(&sb, "input [%d:0] code;\n", inW-1)
	fmt.Fprintf(&sb, "output [%d:0] value_q;\n", outW-1)
	sb.WriteString("output valid_q;\n")
	fmt.Fprintf(&sb, "wire [%d:0] value;\n", outW-1)
	sb.WriteString("wire valid;\n")
	fmt.Fprintf(&sb, "reg [%d:0] value_q;\n", outW-1)
	sb.WriteString("reg valid_q;\n")
	fmt.Fprintf(&sb, "%s_tbl tbl (.code(code), .value(value), .valid(valid));\n", name)
	sb.WriteString("always @(posedge clk or posedge rst)\n")
	sb.WriteString("  if (rst) begin\n    value_q <= 0;\n    valid_q <= 0;\n  end\n")
	sb.WriteString("  else begin\n    value_q <= value;\n    valid_q <= valid;\n  end\n")
	sb.WriteString("endmodule\n")
	return sb.String()
}

// genBitOps: small combinational bit-manipulation block.
func genBitOps(name string, width int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: bitwise negator and swizzles\n", name)
	fmt.Fprintf(&sb, "module %s(a, b, neg_a, nand_ab, xor_ab, msb_or);\n", name)
	fmt.Fprintf(&sb, "input [%d:0] a, b;\n", width-1)
	fmt.Fprintf(&sb, "output [%d:0] neg_a, nand_ab, xor_ab;\n", width-1)
	sb.WriteString("output msb_or;\n")
	sb.WriteString("assign neg_a = ~a;\n")
	sb.WriteString("assign nand_ab = ~(a & b);\n")
	sb.WriteString("assign xor_ab = a ^ b;\n")
	fmt.Fprintf(&sb, "assign msb_or = a[%d] | b[%d];\n", width-1, width-1)
	sb.WriteString("endmodule\n")
	return sb.String()
}

// genHandshake: ready/valid pipeline node (flow-control category).
func genHandshake(name string, width int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: ready/valid handshake node\n", name)
	fmt.Fprintf(&sb, "module %s(clk, rst, in_valid, out_ready, in_data, in_ready, out_valid, out_data);\n", name)
	sb.WriteString("input clk, rst, in_valid, out_ready;\n")
	fmt.Fprintf(&sb, "input [%d:0] in_data;\n", width-1)
	sb.WriteString("output in_ready, out_valid;\n")
	fmt.Fprintf(&sb, "output [%d:0] out_data;\n", width-1)
	sb.WriteString("reg out_valid;\n")
	fmt.Fprintf(&sb, "reg [%d:0] out_data;\n", width-1)
	sb.WriteString("assign in_ready = ~out_valid | out_ready;\n")
	sb.WriteString("always @(posedge clk or posedge rst)\n")
	sb.WriteString("  if (rst) begin\n    out_valid <= 0;\n    out_data <= 0;\n  end\n")
	sb.WriteString("  else if (in_valid & in_ready) begin\n    out_valid <= 1;\n    out_data <= in_data;\n  end\n")
	sb.WriteString("  else if (out_ready)\n    out_valid <= 0;\n")
	sb.WriteString("endmodule\n")
	return sb.String()
}

// genEdgeDetect: rising/falling edge detector.
func genEdgeDetect(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: edge detector\n", name)
	fmt.Fprintf(&sb, "module %s(clk, rst, sig, rose, fell, level);\n", name)
	sb.WriteString("input clk, rst, sig;\noutput rose, fell, level;\n")
	sb.WriteString("reg prev;\n")
	sb.WriteString("assign rose = sig & ~prev;\n")
	sb.WriteString("assign fell = ~sig & prev;\n")
	sb.WriteString("assign level = prev;\n")
	sb.WriteString("always @(posedge clk or posedge rst)\n")
	sb.WriteString("  if (rst)\n    prev <= 0;\n  else\n    prev <= sig;\n")
	sb.WriteString("endmodule\n")
	return sb.String()
}

// genDebounce: counter-based debouncer.
func genDebounce(name string, cntW int) string {
	var sb strings.Builder
	limit := (uint64(1) << uint(cntW)) - 1
	fmt.Fprintf(&sb, "// %s: %d-bit debouncer\n", name, cntW)
	fmt.Fprintf(&sb, "module %s(clk, rst, noisy, clean);\n", name)
	sb.WriteString("input clk, rst, noisy;\noutput clean;\n")
	fmt.Fprintf(&sb, "reg [%d:0] cnt;\n", cntW-1)
	sb.WriteString("reg clean;\n")
	sb.WriteString("always @(posedge clk or posedge rst)\n")
	sb.WriteString("  if (rst) begin\n    cnt <= 0;\n    clean <= 0;\n  end\n")
	sb.WriteString("  else if (noisy == clean)\n    cnt <= 0;\n")
	fmt.Fprintf(&sb, "  else if (cnt == %d'd%d) begin\n    clean <= noisy;\n    cnt <= 0;\n  end\n", cntW, limit)
	sb.WriteString("  else\n    cnt <= cnt + 1;\n")
	sb.WriteString("endmodule\n")
	return sb.String()
}

// genTimer: watchdog timer with expiry flag.
func genTimer(name string, width int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: %d-bit watchdog timer\n", name, width)
	fmt.Fprintf(&sb, "module %s(clk, rst, kick, limit, expired, timer);\n", name)
	sb.WriteString("input clk, rst, kick;\n")
	fmt.Fprintf(&sb, "input [%d:0] limit;\n", width-1)
	sb.WriteString("output expired;\n")
	fmt.Fprintf(&sb, "output [%d:0] timer;\n", width-1)
	fmt.Fprintf(&sb, "reg [%d:0] timer;\n", width-1)
	sb.WriteString("assign expired = timer >= limit;\n")
	sb.WriteString("always @(posedge clk or posedge rst)\n")
	sb.WriteString("  if (rst)\n    timer <= 0;\n")
	sb.WriteString("  else if (kick)\n    timer <= 0;\n")
	sb.WriteString("  else if (~expired)\n    timer <= timer + 1;\n")
	sb.WriteString("endmodule\n")
	return sb.String()
}

// genSerializer: parallel-to-serial transmitter with bit counter (UART-
// style controller category).
func genSerializer(name string, width int) string {
	cntW := 1
	for (1 << uint(cntW)) < width {
		cntW++
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: %d-bit serializer\n", name, width)
	fmt.Fprintf(&sb, "module %s(clk, rst, load, data, tx, busy, bitcnt);\n", name)
	sb.WriteString("input clk, rst, load;\n")
	fmt.Fprintf(&sb, "input [%d:0] data;\n", width-1)
	sb.WriteString("output tx, busy;\n")
	fmt.Fprintf(&sb, "output [%d:0] bitcnt;\n", cntW-1)
	fmt.Fprintf(&sb, "reg [%d:0] shreg;\n", width-1)
	fmt.Fprintf(&sb, "reg [%d:0] bitcnt;\n", cntW-1)
	sb.WriteString("reg busy;\n")
	sb.WriteString("assign tx = busy ? shreg[0] : 1'b1;\n")
	sb.WriteString("always @(posedge clk or posedge rst)\n")
	sb.WriteString("  if (rst) begin\n    shreg <= 0;\n    bitcnt <= 0;\n    busy <= 0;\n  end\n")
	sb.WriteString("  else if (load & ~busy) begin\n    shreg <= data;\n")
	fmt.Fprintf(&sb, "    bitcnt <= %d'd%d;\n    busy <= 1;\n  end\n", cntW, width-1)
	sb.WriteString("  else if (busy) begin\n")
	fmt.Fprintf(&sb, "    shreg <= {1'b0, shreg[%d:1]};\n", width-1)
	sb.WriteString("    if (bitcnt == 0)\n      busy <= 0;\n    else\n      bitcnt <= bitcnt - 1;\n")
	sb.WriteString("  end\nendmodule\n")
	return sb.String()
}

// genKeyExpand: XOR/rotate round pipeline (crypto key-expander category).
func genKeyExpand(name string, width, rounds int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: %d-round key expander\n", name, rounds)
	fmt.Fprintf(&sb, "module %s(clk, rst, go, key_in, key_out, rdy);\n", name)
	sb.WriteString("input clk, rst, go;\n")
	fmt.Fprintf(&sb, "input [%d:0] key_in;\n", width-1)
	fmt.Fprintf(&sb, "output [%d:0] key_out;\n", width-1)
	sb.WriteString("output rdy;\n")
	for r := 0; r <= rounds; r++ {
		fmt.Fprintf(&sb, "reg [%d:0] rk%d;\n", width-1, r)
	}
	fmt.Fprintf(&sb, "reg [%d:0] vld;\n", rounds)
	fmt.Fprintf(&sb, "assign key_out = rk%d;\n", rounds)
	fmt.Fprintf(&sb, "assign rdy = vld[%d];\n", rounds)
	sb.WriteString("always @(posedge clk or posedge rst)\n")
	sb.WriteString("  if (rst) begin\n")
	for r := 0; r <= rounds; r++ {
		fmt.Fprintf(&sb, "    rk%d <= 0;\n", r)
	}
	sb.WriteString("    vld <= 0;\n  end\n")
	sb.WriteString("  else begin\n")
	sb.WriteString("    rk0 <= key_in;\n")
	for r := 1; r <= rounds; r++ {
		fmt.Fprintf(&sb, "    rk%d <= {rk%d[%d:0], rk%d[%d]} ^ %d'h%x;\n",
			r, r-1, width-2, r-1, width-1, width, uint64(r*37+11)&((uint64(1)<<uint(width))-1))
	}
	fmt.Fprintf(&sb, "    vld <= {vld[%d:0], go};\n", rounds-1)
	sb.WriteString("  end\nendmodule\n")
	return sb.String()
}

// genPRNG: compact pattern generator — an LFSR whose state drives a large
// nonlinear output table (the corpus's ca_prng, 1100+ lines).
func genPRNG(name string, lfsrW, entries int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: pattern generator, %d-bit LFSR + %d-entry table\n", name, lfsrW, entries)
	fmt.Fprintf(&sb, "module %s(clk, rst, en, pattern, prbs);\n", name)
	sb.WriteString("input clk, rst, en;\n")
	sb.WriteString("output [7:0] pattern;\noutput prbs;\n")
	fmt.Fprintf(&sb, "reg [%d:0] lfsr;\n", lfsrW-1)
	sb.WriteString("reg [7:0] pattern;\n")
	sb.WriteString("wire fb;\n")
	fmt.Fprintf(&sb, "assign fb = lfsr[%d] ^ lfsr[%d];\n", lfsrW-1, lfsrW/2)
	sb.WriteString("assign prbs = lfsr[0];\n")
	sb.WriteString("always @(posedge clk or posedge rst)\n")
	fmt.Fprintf(&sb, "  if (rst)\n    lfsr <= %d'h1;\n", lfsrW)
	fmt.Fprintf(&sb, "  else if (en)\n    lfsr <= {lfsr[%d:0], fb};\n", lfsrW-2)
	fmt.Fprintf(&sb, "always @(*)\n  case (lfsr[%d:0])\n", bitsFor(entries)-1)
	for i := 0; i < entries; i++ {
		v := (uint64(i)*2246822519 + 97) & 0xff
		fmt.Fprintf(&sb, "    %d'd%d: pattern = 8'h%02x;\n", bitsFor(entries), i, v)
	}
	sb.WriteString("    default: pattern = 8'h00;\n  endcase\nendmodule\n")
	return sb.String()
}

// bitsFor returns the bit width needed to index n entries.
func bitsFor(n int) int {
	w := 1
	for (1 << uint(w)) < n {
		w++
	}
	return w
}

// genPhaseComp: phase comparator: tracks which of two signals rose first.
func genPhaseComp(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: phase comparator\n", name)
	fmt.Fprintf(&sb, "module %s(clk, rst, sig_a, sig_b, lead_a, lead_b, locked);\n", name)
	sb.WriteString("input clk, rst, sig_a, sig_b;\n")
	sb.WriteString("output lead_a, lead_b, locked;\n")
	sb.WriteString("reg pa, pb, lead_a, lead_b;\n")
	sb.WriteString("wire rose_a, rose_b;\n")
	sb.WriteString("assign rose_a = sig_a & ~pa;\n")
	sb.WriteString("assign rose_b = sig_b & ~pb;\n")
	sb.WriteString("assign locked = ~lead_a & ~lead_b;\n")
	sb.WriteString("always @(posedge clk or posedge rst)\n")
	sb.WriteString("  if (rst) begin\n    pa <= 0;\n    pb <= 0;\n    lead_a <= 0;\n    lead_b <= 0;\n  end\n")
	sb.WriteString("  else begin\n    pa <= sig_a;\n    pb <= sig_b;\n")
	sb.WriteString("    if (rose_a & ~rose_b) begin\n      lead_a <= 1;\n      lead_b <= 0;\n    end\n")
	sb.WriteString("    else if (rose_b & ~rose_a) begin\n      lead_b <= 1;\n      lead_a <= 0;\n    end\n")
	sb.WriteString("    else if (rose_a & rose_b) begin\n      lead_a <= 0;\n      lead_b <= 0;\n    end\n")
	sb.WriteString("  end\nendmodule\n")
	return sb.String()
}
