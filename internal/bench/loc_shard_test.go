package bench

import "testing"

// Edge-case tests for the cloc-style line counter and the shard-spec
// parser (the differential harness's satellite hardening pass).

func TestCountLoCEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"empty", "", 0},
		{"blank lines", "\n  \n\t\n", 0},
		{"plain code", "assign a = b;\nassign c = d;", 2},
		{"line comment only", "// just a comment", 0},
		{"code then line comment", "assign a = b; // tail", 1},
		{"block comment one line", "/* comment */", 0},
		{"block close with trailing code", "/* open\nstill comment */ assign a = b;", 1},
		{"block close trailing code same line", "/* c */ assign a = b;", 1},
		// The bug the harness satellite fixed: a '//' inside '/* */' is
		// comment text, not a line comment — the code after the close
		// must still count, and the block must still close.
		{"line marker inside block same line", "/* foo // bar */ assign a = b;", 1},
		{"line marker inside multiline block", "/* foo // bar\nbaz */ assign a = b;\nassign c = d;", 2},
		{"block marker after line comment is inert", "assign a = b; // trailing /* not a block\nassign c = d;", 2},
		{"two blocks one line", "assign a = b; /* x */ assign c = d; /* y */", 1},
		{"unterminated block swallows rest", "assign a = b; /* open\nassign c = d;\nassign e = f;", 1},
		{"block reopened on close line", "/* a */ assign x = 1; /* b\nstill */ assign y = 2;", 2},
		{"comment-only between markers", "/* a */   /* b */", 0},
	}
	for _, tc := range cases {
		if got := CountLoC(tc.src); got != tc.want {
			t.Errorf("%s: CountLoC = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestParseShardEdgeCases(t *testing.T) {
	good := []struct {
		in           string
		index, count int
	}{
		{"", 0, 0},
		{"0/1", 0, 1},
		{"0/4", 0, 4},
		{"3/4", 3, 4},
	}
	for _, tc := range good {
		i, c, err := ParseShard(tc.in)
		if err != nil || i != tc.index || c != tc.count {
			t.Errorf("ParseShard(%q) = (%d, %d, %v), want (%d, %d, nil)", tc.in, i, c, err, tc.index, tc.count)
		}
	}
	bad := []string{
		"1",     // no slash
		"/",     // empty fields
		"1/",    // missing count
		"/2",    // missing index
		"a/2",   // non-numeric index
		"1/b",   // non-numeric count
		"1/2/3", // too many fields
		"2/2",   // index == count
		"3/2",   // index > count
		"-1/2",  // negative index
		"0/0",   // count zero
		"0/-1",  // negative count
		" 1/2",  // leading space
		"1 /2",  // interior space
	}
	for _, in := range bad {
		if _, _, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) accepted a malformed spec", in)
		}
	}
}

func TestShardBoundsDegenerate(t *testing.T) {
	// n designs over more shards than designs: trailing shards are empty
	// but concatenation still reproduces the corpus.
	designs := TestCorpus()[:3]
	var total int
	for i := 0; i < 5; i++ {
		s, err := Shard(designs, i, 5)
		if err != nil {
			t.Fatalf("shard %d/5: %v", i, err)
		}
		total += len(s)
	}
	if total != len(designs) {
		t.Errorf("shards cover %d designs, want %d", total, len(designs))
	}
	if _, err := Shard(designs, 0, 0); err == nil {
		t.Error("count 0 must be rejected")
	}
	if _, err := Shard(designs, 5, 5); err == nil {
		t.Error("index out of range must be rejected")
	}
}

// TestParseShardRejectsSignedComponents pins the digit-only contract:
// strconv.Atoi used to slip signed forms through ("+0/2", and "-0/2"
// via the index >= 0 check holding for -0), which no shard launcher
// writes and which would mask typos in shard specs.
func TestParseShardRejectsSignedComponents(t *testing.T) {
	bad := []string{
		"+0/2", // signed zero index
		"-0/2", // negative zero index parses to 0 and passed index >= 0
		"+1/2", // signed index
		"1/+2", // signed count
		"0/+1", // signed count on the unsharded-looking spec
		"-0/-0",
		"+0/+2",
		"0x1/2",        // hex-ish
		"1_0/20",       // digit separator
		"0/2147483648", // implausibly long count field
	}
	for _, in := range bad {
		if _, _, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) accepted a signed/malformed spec", in)
		}
	}
	// The unsigned forms these mutate from still parse.
	if i, c, err := ParseShard("0/2"); err != nil || i != 0 || c != 2 {
		t.Errorf("ParseShard(0/2) = (%d, %d, %v)", i, c, err)
	}
	if i, c, err := ParseShard("1/2"); err != nil || i != 1 || c != 2 {
		t.Errorf("ParseShard(1/2) = (%d, %d, %v)", i, c, err)
	}
}
