package bench

import (
	"math/rand"
	"testing"

	"assertionbench/internal/sim"
	"assertionbench/internal/verilog"
)

// Every family at its parameter extremes, plus a random sweep, must
// elaborate and simulate: the differential harness relies on generated
// designs being well-formed by construction.
func TestFuzzSpecFamiliesElaborate(t *testing.T) {
	t.Parallel()
	var specs []FuzzSpec
	for _, fam := range FuzzFamilies() {
		specs = append(specs,
			FuzzSpec{Family: fam, A: 0, B: 0},                          // clamped to minima
			FuzzSpec{Family: fam, A: 1 << 20, B: 1 << 20, Seed: 3},     // clamped to maxima
			FuzzSpec{Family: fam, A: 3, B: 2, NegReset: true, Seed: 9}, // active-low reset
		)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		specs = append(specs, RandomFuzzSpec(rng))
	}
	for _, spec := range specs {
		d := spec.Build()
		nl, err := verilog.ElaborateSource(d.Source, d.Name)
		if err != nil {
			t.Fatalf("spec %s does not elaborate: %v\n%s", spec, err, d.Source)
		}
		s := sim.New(nl)
		srng := rand.New(rand.NewSource(1))
		for c := 0; c < 8; c++ {
			if err := s.StepWith(sim.RandomInputs(nl, srng)); err != nil {
				t.Fatalf("spec %s does not simulate: %v", spec, err)
			}
		}
	}
}

func TestFuzzSpecBuildDeterministic(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		spec := RandomFuzzSpec(rng)
		if a, b := spec.Build(), spec.Build(); a.Source != b.Source || a.Name != b.Name {
			t.Fatalf("Build is not deterministic for %s", spec)
		}
	}
}

func TestFuzzSpecShrinkMovesTowardMinimum(t *testing.T) {
	t.Parallel()
	spec := FuzzSpec{Family: "mixed", A: 6, B: 4, NegReset: true, Seed: 1000}
	seen := map[string]bool{spec.String(): true}
	// Follow the first-candidate chain; it must terminate (no cycles) and
	// every candidate must build.
	for steps := 0; steps < 100; steps++ {
		cands := spec.Shrink()
		if len(cands) == 0 {
			break
		}
		for _, c := range cands {
			c.Build() // must not panic
			if c == spec {
				t.Fatalf("Shrink returned the input spec %s", spec)
			}
		}
		spec = cands[0]
		if seen[spec.String()] {
			t.Fatalf("shrink cycle at %s", spec)
		}
		seen[spec.String()] = true
	}
	min := FuzzSpec{Family: "mixed", A: 1, B: 1, Seed: 0}.normalize()
	if spec.normalize() != min {
		t.Errorf("first-candidate shrink chain ended at %s, want %s", spec, min)
	}
}

func TestFuzzSpecUnknownFamilyFallsBack(t *testing.T) {
	t.Parallel()
	d := FuzzSpec{Family: "no-such-family", A: 2, B: 2, Seed: 5}.Build()
	if _, err := verilog.ElaborateSource(d.Source, d.Name); err != nil {
		t.Fatalf("fallback family does not elaborate: %v", err)
	}
}
