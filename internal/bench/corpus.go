// Package bench assembles AssertionBench (paper Sec. III): five training
// designs with formally verified assertions for 1-shot/5-shot in-context
// learning, and a 100-design test corpus spanning the paper's hardware
// categories with code sizes from ~10 to ~1150 lines. The OpenCores
// originals are proprietary-licensed downloads; the corpus here is
// procedurally generated to the same category mix, size distribution and
// sequential/combinational split (see DESIGN.md's substitution table).
package bench

import (
	"fmt"
	"strings"
)

// Design is one benchmark entry.
type Design struct {
	// Name is the module name; FileName the corpus file name.
	Name     string
	FileName string
	Source   string
	// Sequential distinguishes clocked designs from pure combinational
	// ones (Table I's "Design Type").
	Sequential bool
	// Category groups designs by hardware function.
	Category string
	// Functionality is the Table I description.
	Functionality string
	// LoC is the cloc-style line count (no blanks, no comments).
	LoC int
}

// CountLoC counts lines of code the way cloc does for Verilog: blank
// lines and comment-only lines are excluded. Comment markers are
// processed in positional order, so a "//" inside a "/* */" block is
// plain comment text rather than a line comment (scanning "//" first
// used to truncate such lines and swallow the code after the block's
// close — found by the edge-case tests in loc_shard_test.go).
func CountLoC(src string) int {
	count := 0
	inBlock := false
	for _, line := range strings.Split(src, "\n") {
		s := line
		var kept strings.Builder
		for s != "" {
			if inBlock {
				i := strings.Index(s, "*/")
				if i < 0 {
					s = ""
					break
				}
				s = s[i+2:]
				inBlock = false
				continue
			}
			li := strings.Index(s, "//")
			bi := strings.Index(s, "/*")
			switch {
			case bi >= 0 && (li < 0 || bi < li):
				kept.WriteString(s[:bi])
				s = s[bi+2:]
				inBlock = true
			case li >= 0:
				kept.WriteString(s[:li])
				s = ""
			default:
				kept.WriteString(s)
				s = ""
			}
		}
		if strings.TrimSpace(kept.String()) != "" {
			count++
		}
	}
	return count
}

// --- training set (paper Sec. III: Arbiter, Half Adder, Full Adder,
// T-flip-flop, Full Subtractor) ---

// TrainArbiter is the paper's Fig. 1 two-port arbiter (the 're2' typo in
// the figure corrected to req2).
const TrainArbiter = `// 2-port arbiter (paper Fig. 1)
module arb2(clk, rst, req1, req2, gnt1, gnt2);
input clk, rst, req1, req2;
output gnt1, gnt2;
reg gnt_, gnt1, gnt2;
always @(posedge clk or posedge rst)
  if (rst)
    gnt_ <= 0;
  else
    gnt_ <= gnt1;
always @(*)
  if (gnt_)
    begin
      gnt1 = req1 & req2;
      gnt2 = req2;
    end
  else
    begin
      gnt1 = req1;
      gnt2 = req2 & ~req1;
    end
endmodule
`

// TrainHalfAdder is the training half adder.
const TrainHalfAdder = `// half adder
module half_adder(a, b, sum, carry);
input a, b;
output sum, carry;
assign sum = a ^ b;
assign carry = a & b;
endmodule
`

// TrainFullAdder is the training full adder.
const TrainFullAdder = `// full adder
module full_adder(a, b, cin, sum, cout);
input a, b, cin;
output sum, cout;
assign sum = a ^ b ^ cin;
assign cout = (a & b) | (b & cin) | (a & cin);
endmodule
`

// TrainTFF is the training T-flip-flop.
const TrainTFF = `// T flip-flop
module t_ff(clk, rst, t, q);
input clk, rst, t;
output q;
reg q;
always @(posedge clk or posedge rst)
  if (rst)
    q <= 0;
  else if (t)
    q <= ~q;
endmodule
`

// TrainFullSubtractor is the training full subtractor.
const TrainFullSubtractor = `// full subtractor
module full_sub(a, b, bin, diff, bout);
input a, b, bin;
output diff, bout;
assign diff = a ^ b ^ bin;
assign bout = (~a & b) | (~(a ^ b) & bin);
endmodule
`

// TrainDesigns returns the five ICL training designs.
func TrainDesigns() []Design {
	entries := []struct {
		name, file, src, fn string
		seq                 bool
	}{
		{"arb2", "arbiter.v", TrainArbiter, "Two-port bus arbiter", true},
		{"half_adder", "half_adder.v", TrainHalfAdder, "Half adder", false},
		{"full_adder", "full_adder.v", TrainFullAdder, "Full adder", false},
		{"t_ff", "t_ff.v", TrainTFF, "T flip-flop", true},
		{"full_sub", "full_subtractor.v", TrainFullSubtractor, "Full subtractor", false},
	}
	out := make([]Design, len(entries))
	for i, e := range entries {
		out[i] = Design{
			Name: e.name, FileName: e.file, Source: e.src,
			Sequential: e.seq, Category: "training",
			Functionality: e.fn, LoC: CountLoC(e.src),
		}
	}
	return out
}

// --- test corpus ---

type corpusEntry struct {
	file string
	seq  bool
	cat  string
	fn   string
	gen  func(name string) string
}

// testEntries defines the 100-design test corpus. Names follow the
// paper's Fig. 3 / Table I files; parameters set the size distribution.
func testEntries() []corpusEntry {
	e := []corpusEntry{
		// --- the paper's named designs, sized to their Table I scale ---
		{"ca_prng.v", true, "rng", "A compact pattern generator", func(n string) string { return genPRNG(n, 10, 1024) }},
		{"cavlc_read_total_coeffs.v", true, "codec", "Video encoder for generic audio visual (coeff decode)", func(n string) string { return genLookupReg(n, 1000, 10, 13) }},
		{"cavlc_read_total_zeros.v", false, "codec", "Video encoder for generic audio visual (zeros decode)", func(n string) string { return genLookup(n, 560, 10, 10) }},
		{"ge_1000baseX_rx.v", true, "comm", "Physical Coding Sublayer (PCS) receiver", func(n string) string { return genFSM(n, 24) }},
		{"MAC_tx_Ctrl.v", true, "comm", "An Ethernet MAC transmit controller", func(n string) string { return genFSM(n, 20) }},
		{"fht_1d_x8.v", false, "dsp", "1-D fast Hartley transform stage", func(n string) string { return genSummer8(n) }},
		{"mtx_trps_8x8_dpsram.v", true, "dsp", "8x8 matrix transpose register bank", func(n string) string { return genRegBank(n, 16, 8) }},
		{"bitNegator.v", false, "datapath", "Bitwise negation unit", func(n string) string { return genBitOps(n, 8) }},
		{"inputReg.v", true, "datapath", "Input capture register bank", func(n string) string { return genRegBank(n, 4, 8) }},
		{"tcReset.v", true, "infra", "Reset conditioning for a two's complementer", func(n string) string { return genResetSync(n, 3) }},
		{"key_expander.v", true, "crypto", "Block-cipher key expansion pipeline", func(n string) string { return genKeyExpand(n, 16, 10) }},
		{"PSGBusArb.v", true, "arbiter", "Sound-generator bus arbiter", func(n string) string { return genPriorityArb(n, 6) }},
		{"PSGOutputSummer.v", true, "dsp", "Sound-generator output summer", func(n string) string { return genSummer(n, 6, 8) }},
		{"crc_control_unit.v", true, "crc", "CRC engine control unit", func(n string) string { return genCRC(n, 16, 0x1021) }},
		{"qadd.v", false, "datapath", "Fixed-point saturating adder", func(n string) string { return genSatAdd(n, 12) }},
		{"node.v", true, "noc", "Network-on-chip handshake node", func(n string) string { return genHandshake(n, 8) }},
		{"clean_rst.v", true, "infra", "Reset synchronizer", func(n string) string { return genResetSync(n, 2) }},
		{"eth_l3_checksum.v", true, "comm", "Ethernet layer-3 checksum", func(n string) string { return genChecksum(n, 16) }},
		{"eth_clockgen.v", true, "infra", "Ethernet MII clock generator", func(n string) string { return genClockGen(n, 8) }},
		{"flow_ctrl.v", true, "comm", "Ethernet flow control", func(n string) string { return genHandshake(n, 4) }},
		{"reg_int_sim.v", true, "datapath", "Interrupt register block", func(n string) string { return genRegBank(n, 8, 4) }},
		{"counter.v", true, "counter", "Enabled binary counter", func(n string) string { return genCounter(n, 4, false) }},
		{"rxStateMachine.v", true, "comm", "UART receive state machine", func(n string) string { return genFSM(n, 10) }},
		{"can_crc.v", true, "crc", "CAN bus CRC-15", func(n string) string { return genCRC(n, 15, 0x4599) }},
		{"can_register_asyn_syn.v", true, "datapath", "CAN register with async reset", func(n string) string { return genRegBank(n, 2, 8) }},
		{"eth_fifo.v", true, "fifo", "Ethernet MAC FIFO control", func(n string) string { return genFifoCtrl(n, 4) }},
		{"phasecomparator.v", true, "dsp", "PLL phase comparator", func(n string) string { return genPhaseComp(n) }},
		{"fifo_mem.v", true, "fifo", "Synchronous FIFO occupancy tracker", func(n string) string { return genFifoCtrl(n, 3) }},
	}
	// --- parameter sweeps filling out the 100 designs ---
	for _, w := range []int{2, 3, 6, 8, 10, 12, 16} {
		w := w
		e = append(e, corpusEntry{
			fmt.Sprintf("counter_%d.v", w), true, "counter",
			fmt.Sprintf("%d-bit enabled counter", w),
			func(n string) string { return genCounter(n, w, w%2 == 0) }})
	}
	for _, d := range []int{4, 8, 16, 32} {
		d := d
		e = append(e, corpusEntry{
			fmt.Sprintf("shift_reg_%d.v", d), true, "datapath",
			fmt.Sprintf("%d-stage shift register", d),
			func(n string) string { return genShiftReg(n, d) }})
	}
	for _, w := range []int{4, 6, 8, 12, 16, 24} {
		w := w
		e = append(e, corpusEntry{
			fmt.Sprintf("lfsr_%d.v", w), true, "rng",
			fmt.Sprintf("%d-bit LFSR random generator", w),
			func(n string) string { return genLFSR(n, w, []int{w - 1, w / 2, 0}) }})
	}
	for _, w := range []int{3, 5, 8} {
		w := w
		e = append(e, corpusEntry{
			fmt.Sprintf("gray_counter_%d.v", w), true, "counter",
			fmt.Sprintf("%d-bit gray-code counter", w),
			func(n string) string { return genGray(n, w) }})
	}
	for _, p := range []int{2, 5, 6} {
		p := p
		e = append(e, corpusEntry{
			fmt.Sprintf("sync_fifo_%d.v", 1<<uint(p)), true, "fifo",
			fmt.Sprintf("Depth-%d FIFO controller", 1<<uint(p)),
			func(n string) string { return genFifoCtrl(n, p) }})
	}
	for _, s := range []int{4, 6, 8, 12, 16, 32, 40, 48} {
		s := s
		e = append(e, corpusEntry{
			fmt.Sprintf("fsm_ctrl_%d.v", s), true, "fsm",
			fmt.Sprintf("%d-state sequence controller", s),
			func(n string) string { return genFSM(n, s) }})
	}
	for _, w := range []int{5, 8, 24, 32} {
		w := w
		e = append(e, corpusEntry{
			fmt.Sprintf("crc_%d.v", w), true, "crc",
			fmt.Sprintf("CRC-%d generator", w),
			func(n string) string { return genCRC(n, w, 0xc599^uint64(w)) }})
	}
	for _, w := range []int{8, 24} {
		w := w
		e = append(e, corpusEntry{
			fmt.Sprintf("checksum_%d.v", w), true, "comm",
			fmt.Sprintf("%d-bit checksum accumulator", w),
			func(n string) string { return genChecksum(n, w) }})
	}
	for _, c := range []struct{ w, ops int }{{4, 4}, {8, 8}, {8, 12}, {16, 6}} {
		c := c
		e = append(e, corpusEntry{
			fmt.Sprintf("alu_%dx%d.v", c.w, c.ops), false, "datapath",
			fmt.Sprintf("%d-bit %d-op ALU", c.w, c.ops),
			func(n string) string { return genALU(n, c.w, c.ops) }})
	}
	for _, w := range []int{8, 16, 32} {
		w := w
		e = append(e, corpusEntry{
			fmt.Sprintf("parity_%d.v", w), false, "datapath",
			fmt.Sprintf("%d-bit parity/reduction", w),
			func(n string) string { return genParity(n, w) }})
	}
	for _, p := range []int{3, 4, 8} {
		p := p
		e = append(e, corpusEntry{
			fmt.Sprintf("prio_arb_%d.v", p), true, "arbiter",
			fmt.Sprintf("%d-port priority arbiter", p),
			func(n string) string { return genPriorityArb(n, p) }})
	}
	for _, c := range []int{3, 4} {
		c := c
		e = append(e, corpusEntry{
			fmt.Sprintf("mixer_%d.v", c), true, "dsp",
			fmt.Sprintf("%d-channel mixer", c),
			func(n string) string { return genSummer(n, c, 6) }})
	}
	for _, s := range []int{4} {
		s := s
		e = append(e, corpusEntry{
			fmt.Sprintf("rst_sync_%d.v", s), true, "infra",
			fmt.Sprintf("%d-stage reset synchronizer", s),
			func(n string) string { return genResetSync(n, s) }})
	}
	for _, w := range []int{4, 12} {
		w := w
		e = append(e, corpusEntry{
			fmt.Sprintf("clk_div_%d.v", w), true, "infra",
			fmt.Sprintf("%d-bit clock divider", w),
			func(n string) string { return genClockGen(n, w) }})
	}
	for _, c := range []struct{ n, w int }{{4, 4}, {8, 8}, {16, 8}, {32, 4}} {
		c := c
		e = append(e, corpusEntry{
			fmt.Sprintf("regbank_%dx%d.v", c.n, c.w), true, "datapath",
			fmt.Sprintf("%dx%d register bank", c.n, c.w),
			func(n string) string { return genRegBank(n, c.n, c.w) }})
	}
	for _, c := range []struct{ entries, in, out int }{{40, 6, 8}, {120, 7, 10}, {250, 8, 12}, {520, 10, 12}} {
		c := c
		e = append(e, corpusEntry{
			fmt.Sprintf("decode_rom_%d.v", c.entries), false, "codec",
			fmt.Sprintf("%d-entry decode table", c.entries),
			func(n string) string { return genLookup(n, c.entries, c.in, c.out) }})
	}
	for _, w := range []int{4, 16} {
		w := w
		e = append(e, corpusEntry{
			fmt.Sprintf("bitops_%d.v", w), false, "datapath",
			fmt.Sprintf("%d-bit bit manipulation", w),
			func(n string) string { return genBitOps(n, w) }})
	}
	for _, w := range []int{2, 16} {
		w := w
		e = append(e, corpusEntry{
			fmt.Sprintf("hs_node_%d.v", w), true, "noc",
			fmt.Sprintf("%d-bit handshake pipeline node", w),
			func(n string) string { return genHandshake(n, w) }})
	}
	e = append(e,
		corpusEntry{"edge_detect.v", true, "infra", "Signal edge detector", genEdgeDetect},
		corpusEntry{"edge_detect2.v", true, "infra", "Edge detector (variant)", genEdgeDetect},
		corpusEntry{"debounce_4.v", true, "infra", "4-bit debouncer", func(n string) string { return genDebounce(n, 4) }},
		corpusEntry{"debounce_8.v", true, "infra", "8-bit debouncer", func(n string) string { return genDebounce(n, 8) }},
	)
	for _, w := range []int{4, 8, 16} {
		w := w
		e = append(e, corpusEntry{
			fmt.Sprintf("watchdog_%d.v", w), true, "infra",
			fmt.Sprintf("%d-bit watchdog timer", w),
			func(n string) string { return genTimer(n, w) }})
	}
	for _, w := range []int{4, 8, 10, 16} {
		w := w
		e = append(e, corpusEntry{
			fmt.Sprintf("uart_tx_%d.v", w), true, "comm",
			fmt.Sprintf("%d-bit serializer", w),
			func(n string) string { return genSerializer(n, w) }})
	}
	for _, r := range []int{6, 20} {
		r := r
		e = append(e, corpusEntry{
			fmt.Sprintf("key_sched_%d.v", r), true, "crypto",
			fmt.Sprintf("%d-round key schedule", r),
			func(n string) string { return genKeyExpand(n, 12, r) }})
	}
	e = append(e, corpusEntry{"qadd_wide.v", false, "datapath", "16-bit saturating adder",
		func(n string) string { return genSatAdd(n, 16) }})
	return e
}

// genSummer8 is the fixed 8-input transform stage used by fht_1d_x8.v.
func genSummer8(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: 8-input butterfly stage\n", name)
	fmt.Fprintf(&sb, "module %s(x0, x1, x2, x3, s01, s23, d01, d23, total);\n", name)
	sb.WriteString("input [7:0] x0, x1, x2, x3;\n")
	sb.WriteString("output [8:0] s01, s23, d01, d23;\n")
	sb.WriteString("output [9:0] total;\n")
	sb.WriteString("assign s01 = x0 + x1;\n")
	sb.WriteString("assign s23 = x2 + x3;\n")
	sb.WriteString("assign d01 = x0 - x1;\n")
	sb.WriteString("assign d23 = x2 - x3;\n")
	sb.WriteString("assign total = s01 + s23;\n")
	sb.WriteString("endmodule\n")
	return sb.String()
}

// TestCorpus generates the 100-design test set.
func TestCorpus() []Design {
	entries := testEntries()
	if len(entries) > 100 {
		entries = entries[:100]
	}
	out := make([]Design, 0, len(entries))
	for _, ce := range entries {
		name := strings.TrimSuffix(ce.file, ".v")
		src := ce.gen(name)
		out = append(out, Design{
			Name: name, FileName: ce.file, Source: src,
			Sequential: ce.seq, Category: ce.cat,
			Functionality: ce.fn, LoC: CountLoC(src),
		})
	}
	return out
}
