package bench

import (
	"context"
	"testing"

	"assertionbench/internal/fpv"
	"assertionbench/internal/verilog"
)

// These tests prove domain properties of the generated corpus designs with
// the FPV engine: the corpus is real hardware with the behaviour its
// category promises, not just parseable text.

func design(t *testing.T, name string) *verilog.Netlist {
	t.Helper()
	for _, d := range TestCorpus() {
		if d.Name == name {
			nl, err := verilog.ElaborateSource(d.Source, d.Name)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return nl
		}
	}
	t.Fatalf("no corpus design %q", name)
	return nil
}

func prove(t *testing.T, nl *verilog.Netlist, prop string) {
	t.Helper()
	r := fpv.VerifySource(context.Background(), nl, prop, fpv.Options{})
	if r.Status != fpv.StatusProven {
		t.Errorf("%s: %q -> %v, want proven", nl.Name, prop, r.Status)
		if r.CEX != nil {
			t.Logf("CEX:\n%s", r.CEX.Format(nl))
		}
	}
}

func refute(t *testing.T, nl *verilog.Netlist, prop string) {
	t.Helper()
	r := fpv.VerifySource(context.Background(), nl, prop, fpv.Options{})
	if r.Status != fpv.StatusCEX {
		t.Errorf("%s: %q -> %v, want cex", nl.Name, prop, r.Status)
	}
}

func TestFifoNeverOverflows(t *testing.T) {
	nl := design(t, "fifo_mem") // depth 8, count is 4 bits
	prove(t, nl, "1 |-> count <= 8")
	prove(t, nl, "full == 1 |-> count == 8")
	prove(t, nl, "empty == 1 |-> count == 0")
	prove(t, nl, "full == 1 && w_en == 1 && r_en == 0 && rst == 0 |=> count == 8")
	refute(t, nl, "1 |-> count < 8") // full is reachable
}

func TestCounterTerminalCount(t *testing.T) {
	nl := design(t, "counter") // 4-bit
	prove(t, nl, "tc == 1 |-> count == 15")
	prove(t, nl, "rst == 1 |=> count == 0")
	prove(t, nl, "count == 15 && en == 1 && rst == 0 |=> count == 0") // wraps
}

func TestGrayCounterSingleBitChange(t *testing.T) {
	nl := design(t, "gray_counter_3")
	// A gray code changes at most one bit per enabled step: the xor of
	// consecutive values has at most one bit set (x & (x-1) == 0).
	prove(t, nl, "rst == 0 && $past(rst) == 0 |-> ((gray ^ $past(gray)) & ((gray ^ $past(gray)) - 1)) == 0")
	prove(t, nl, "gray == bin ^ (bin >> 1) |-> 1")
}

func TestLFSRNeverSticksAtZero(t *testing.T) {
	nl := design(t, "lfsr_4")
	// Seeded to 1 at reset and the feedback keeps it nonzero.
	prove(t, nl, "rst == 1 |=> lfsr == 1")
	prove(t, nl, "lfsr != 0 && rst == 0 |=> lfsr != 0")
}

func TestShiftRegisterPipelines(t *testing.T) {
	nl := design(t, "shift_reg_4")
	// Stage-by-stage propagation (a reset between stages clears the pipe,
	// so the claims are per-step with the reset in the antecedent).
	prove(t, nl, "rst == 0 && d == 1 |=> taps[0] == 1")
	prove(t, nl, "rst == 0 && taps[1] == 1 |=> taps[2] == 1")
	prove(t, nl, "rst == 0 && taps[2] == 1 |=> q == 1")
	prove(t, nl, "rst == 1 |=> taps == 0")
}

func TestPriorityArbiterIsOneHotAndFair(t *testing.T) {
	nl := design(t, "prio_arb_3")
	// Grant is one-hot or zero.
	prove(t, nl, "1 |-> (gnt & (gnt - 1)) == 0")
	// Port 0 has absolute priority.
	prove(t, nl, "req == 3'b111 && rst == 0 |=> gnt == 3'b001")
	// No grant without request.
	prove(t, nl, "req == 0 && rst == 0 |=> gnt == 0")
	refute(t, nl, "1 |-> active == 0")
}

func TestHandshakeNeverDropsData(t *testing.T) {
	nl := design(t, "flow_ctrl")
	prove(t, nl, "out_valid == 1 && out_ready == 0 && in_valid == 0 && rst == 0 |=> out_valid == 1 && $stable(out_data)")
	prove(t, nl, "in_valid == 1 && in_ready == 1 && rst == 0 |=> out_valid == 1")
	prove(t, nl, "out_valid == 0 |-> in_ready == 1")
}

func TestSatAdderSaturates(t *testing.T) {
	nl := design(t, "qadd") // 12-bit
	r := fpv.VerifySource(context.Background(), nl, "sat == 1 |-> sum == 12'hfff", fpv.Options{})
	// 24 input bits: bounded mode; a bounded pass is the expected verdict.
	if !r.Status.IsPass() {
		t.Errorf("saturation property: %v", r.Status)
	}
	r = fpv.VerifySource(context.Background(), nl, "a == 0 |-> sum == b", fpv.Options{})
	if !r.Status.IsPass() {
		t.Errorf("identity property: %v", r.Status)
	}
}

func TestWatchdogExpires(t *testing.T) {
	nl := design(t, "watchdog_4")
	prove(t, nl, "rst == 1 |=> timer == 0")
	prove(t, nl, "expired == 1 |-> timer >= limit")
	prove(t, nl, "kick == 1 && rst == 0 |=> timer == 0")
	// Without kicks the timer reaches any 2-cycle limit within 3 cycles.
	prove(t, nl, "timer == 0 && limit == 2 ##1 kick == 0 && rst == 0 && limit == 2 ##1 kick == 0 && rst == 0 && limit == 2 |-> ##[0:1] rst == 1 || kick == 1 || expired == 1 || timer == 2")
}

func TestSerializerFramesCorrectly(t *testing.T) {
	nl := design(t, "uart_tx_4")
	prove(t, nl, "busy == 0 |-> tx == 1") // idle line high
	prove(t, nl, "rst == 1 |=> busy == 0")
	prove(t, nl, "load == 1 && busy == 0 && rst == 0 |=> busy == 1")
}

func TestCRCClearsAndChecks(t *testing.T) {
	nl := design(t, "can_crc")
	prove(t, nl, "rst == 1 |=> crc == 0")
	prove(t, nl, "clear == 1 && rst == 0 |=> crc == 0")
	prove(t, nl, "crc_ok == 1 |-> crc == 0")
}

func TestRegBankReadsBackWrites(t *testing.T) {
	nl := design(t, "regbank_4x4")
	// 16 state bits x 8 input bits exceeds the exhaustive product budget;
	// a bounded pass is the expected verdict here.
	r := fpv.VerifySource(context.Background(), nl,
		"rst == 0 && we == 1 && sel == 1 ##1 rst == 0 && sel == 1 && we == 0 |-> dout == $past(din)",
		fpv.Options{})
	if !r.Status.IsPass() {
		t.Errorf("write-read property: %v", r.Status)
	}
	r = fpv.VerifySource(context.Background(), nl, "rst == 1 |=> r0 == 0", fpv.Options{})
	if !r.Status.IsPass() {
		t.Errorf("reset property: %v", r.Status)
	}
}

func TestEdgeDetectorMatchesSampledFunctions(t *testing.T) {
	nl := design(t, "edge_detect")
	// The detector's rose output coincides with the SVA $rose function:
	// prev = $past(sig) whenever reset was low at the previous cycle.
	prove(t, nl, "rst == 0 |=> rose == ($past(sig) == 0 && sig == 1)")
	prove(t, nl, "rose == 1 |-> sig == 1 && level == 0")
	prove(t, nl, "fell == 1 |-> sig == 0 && level == 1")
}

func TestDebouncerHoldsUntilStable(t *testing.T) {
	nl := design(t, "debounce_4")
	prove(t, nl, "noisy == clean && rst == 0 |=> $stable(clean)")
	prove(t, nl, "rst == 1 |=> clean == 0")
}
