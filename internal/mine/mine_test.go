package mine

import (
	"context"
	"testing"

	"assertionbench/internal/fpv"
	"assertionbench/internal/verilog"
)

const counterSrc = `
module counter(clk, rst, en, count);
input clk, rst, en;
output [3:0] count;
reg [3:0] count;
always @(posedge clk or posedge rst)
  if (rst) count <= 4'b0;
  else if (en) count <= count + 1;
endmodule
`

const arbiterSrc = `
module arb2(clk, rst, req1, req2, gnt1, gnt2);
input clk, rst, req1, req2;
output gnt1, gnt2;
reg gnt_, gnt1, gnt2;
always @(posedge clk or posedge rst)
  if (rst) gnt_ <= 0;
  else gnt_ <= gnt1;
always @(*)
  if (gnt_) begin
    gnt1 = req1 & req2;
    gnt2 = req2;
  end else begin
    gnt1 = req1;
    gnt2 = req2 & ~req1;
  end
endmodule
`

func elab(t *testing.T, src, top string) *verilog.Netlist {
	t.Helper()
	nl, err := verilog.ElaborateSource(src, top)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return nl
}

func TestGoldMineCounter(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	mined, err := GoldMine(context.Background(), nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) == 0 {
		t.Fatal("GoldMine found nothing on the counter")
	}
	for _, m := range mined {
		if !m.Result.Status.IsPass() {
			t.Errorf("miner emitted unproven assertion %q (%v)", m.Assertion, m.Result.Status)
		}
		if m.Support < 4 {
			t.Errorf("assertion %q kept with support %d", m.Assertion, m.Support)
		}
		// Re-verify independently: mined output must be sound.
		r := fpv.Verify(context.Background(), nl, m.Assertion, fpv.Options{})
		if !r.Status.IsPass() {
			t.Errorf("re-verification of %q failed: %v", m.Assertion, r.Status)
		}
	}
}

func TestGoldMineArbiter(t *testing.T) {
	nl := elab(t, arbiterSrc, "arb2")
	mined, err := GoldMine(context.Background(), nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) == 0 {
		t.Fatal("GoldMine found nothing on the arbiter")
	}
	// Ranking must be non-increasing.
	for i := 1; i < len(mined); i++ {
		if mined[i].Rank > mined[i-1].Rank+1e-12 {
			t.Errorf("ranking not sorted at %d: %f > %f", i, mined[i].Rank, mined[i-1].Rank)
		}
	}
}

func TestHarmCounter(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	mined, err := Harm(context.Background(), nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) == 0 {
		t.Fatal("HARM found nothing on the counter")
	}
	// rst==1 |=> count==0 (or an equivalent) should be among the hints.
	found := false
	for _, m := range mined {
		if m.Assertion.String() == "rst == 1'h1 |=> count == 4'h0" {
			found = true
		}
	}
	if !found {
		var got []string
		for _, m := range mined {
			got = append(got, m.Assertion.String())
		}
		t.Errorf("expected the reset hint among mined assertions, got %v", got)
	}
}

func TestHarmEmitsMultiCycle(t *testing.T) {
	nl := elab(t, arbiterSrc, "arb2")
	mined, err := Harm(context.Background(), nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	overlapped, nonOverlapped := 0, 0
	for _, m := range mined {
		if m.Assertion.NonOverlap || m.Assertion.WindowLength() > 1 {
			nonOverlapped++
		} else {
			overlapped++
		}
	}
	// The benchmark needs both operator kinds (Sec. III).
	if overlapped == 0 || nonOverlapped == 0 {
		t.Errorf("want both overlapped and non-overlapped assertions, got %d/%d", overlapped, nonOverlapped)
	}
}

func TestMinersDeterministic(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	a, err := GoldMine(context.Background(), nl, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GoldMine(context.Background(), nl, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Assertion.String() != b[i].Assertion.String() {
			t.Fatalf("same seed, different assertion %d: %q vs %q", i, a[i].Assertion, b[i].Assertion)
		}
	}
}

func TestRankPrefersSimpleHighCoverage(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	mined, err := Harm(context.Background(), nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) < 2 {
		t.Skip("not enough mined assertions to compare")
	}
	Rank(mined)
	top := mined[0]
	for _, m := range mined[1:] {
		if m.Coverage > top.Coverage && m.Complexity < top.Complexity {
			t.Errorf("rank inversion: %q (cov %.3f cx %d) ranked below %q (cov %.3f cx %d)",
				m.Assertion, m.Coverage, m.Complexity, top.Assertion, top.Coverage, top.Complexity)
		}
	}
}

func TestComplexityCounts(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	mined, err := GoldMine(context.Background(), nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mined {
		if m.Complexity < 2 {
			t.Errorf("complexity of %q = %d, want >= 2 (>=1 atom + window)", m.Assertion, m.Complexity)
		}
	}
}
