package mine

import "math"

// The decision-tree learner behind the GOLDMINE-style miner: ID3 with
// information gain over boolean atom features, depth-capped, extracting
// only pure leaves with sufficient support as candidate rules.

type dtRow struct {
	features []bool // atom truth values
	label    bool
}

type dtNode struct {
	feature  int // index into the atom list; -1 for leaves
	pos, neg *dtNode
	leaf     bool
	label    bool
	n        int
	pure     bool
}

// dtRule is a root-to-pure-leaf path: the conjunction of (atom, polarity)
// conditions implies the label.
type dtRule struct {
	conds   []dtCond
	label   bool
	support int
}

type dtCond struct {
	feature int
	negated bool
}

func entropy(pos, n int) float64 {
	if n == 0 || pos == 0 || pos == n {
		return 0
	}
	p := float64(pos) / float64(n)
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// learnTree builds a tree over rows using the atom features.
func learnTree(rows []dtRow, nFeatures, maxDepth, minLeaf int) *dtNode {
	return growNode(rows, allIdx(nFeatures), maxDepth, minLeaf)
}

func allIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func growNode(rows []dtRow, features []int, depth, minLeaf int) *dtNode {
	pos := 0
	for _, r := range rows {
		if r.label {
			pos++
		}
	}
	node := &dtNode{feature: -1, leaf: true, n: len(rows), label: pos*2 >= len(rows)}
	node.pure = pos == 0 || pos == len(rows)
	if node.pure || depth == 0 || len(rows) < minLeaf*2 || len(features) == 0 {
		return node
	}
	baseH := entropy(pos, len(rows))
	bestGain := 0.0
	bestF := -1
	for _, f := range features {
		tPos, tN, fPos, fN := 0, 0, 0, 0
		for _, r := range rows {
			if r.features[f] {
				tN++
				if r.label {
					tPos++
				}
			} else {
				fN++
				if r.label {
					fPos++
				}
			}
		}
		if tN < minLeaf || fN < minLeaf {
			continue
		}
		gain := baseH -
			(float64(tN)/float64(len(rows)))*entropy(tPos, tN) -
			(float64(fN)/float64(len(rows)))*entropy(fPos, fN)
		if gain > bestGain+1e-12 {
			bestGain = gain
			bestF = f
		}
	}
	if bestF < 0 {
		return node
	}
	var tRows, fRows []dtRow
	for _, r := range rows {
		if r.features[bestF] {
			tRows = append(tRows, r)
		} else {
			fRows = append(fRows, r)
		}
	}
	rest := make([]int, 0, len(features)-1)
	for _, f := range features {
		if f != bestF {
			rest = append(rest, f)
		}
	}
	node.leaf = false
	node.feature = bestF
	node.pos = growNode(tRows, rest, depth-1, minLeaf)
	node.neg = growNode(fRows, rest, depth-1, minLeaf)
	return node
}

// extractRules walks the tree collecting pure leaves with enough support.
func extractRules(root *dtNode, minSupport int) []dtRule {
	var out []dtRule
	var walk func(n *dtNode, conds []dtCond)
	walk = func(n *dtNode, conds []dtCond) {
		if n == nil {
			return
		}
		if n.leaf {
			if n.pure && n.n >= minSupport && len(conds) > 0 {
				rule := dtRule{label: n.label, support: n.n}
				rule.conds = append(rule.conds, conds...)
				out = append(out, rule)
			}
			return
		}
		walk(n.pos, append(conds, dtCond{feature: n.feature}))
		walk(n.neg, append(conds, dtCond{feature: n.feature, negated: true}))
	}
	walk(root, nil)
	return out
}
