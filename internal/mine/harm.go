package mine

import (
	"context"
	"fmt"

	"assertionbench/internal/rtlgraph"
	"assertionbench/internal/sim"
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// Harm mines assertions the HARM way: a library of temporal hint templates
// is instantiated over dependency-related signal pairs, candidates are
// screened against the trace (the antecedent must occur and the consequent
// must never be contradicted), and survivors are FPV-verified.
//
// Templates (b statically depends on a; c is a second influencer):
//
//	H1: a == va            |->  b == vb
//	H2: a == va            |=>  b == vb
//	H3: $rose(a)           |=>  b == vb
//	H4: a == va ##1 a == va2 |=> b == vb
//	H5: a == va && c == vc |=>  b == vb
//	H6: a == va            |->  ##[1:2] b == vb   (ranged response)
func Harm(ctx context.Context, nl *verilog.Netlist, opt Options) ([]Mined, error) {
	opt = opt.withDefaults()
	tr, err := sim.RandomTrace(nl, opt.TraceCycles, 2, opt.Seed)
	if err != nil {
		return nil, fmt.Errorf("mine: trace generation failed: %w", err)
	}
	g := rtlgraph.Build(nl)

	var cands []candidate
	for _, target := range miningTargets(nl) {
		cands = append(cands, harmTarget(nl, g, tr, target, opt)...)
	}
	return dedupeAndVerify(ctx, nl, cands, opt)
}

func harmTarget(nl *verilog.Netlist, g *rtlgraph.Graph, tr *sim.Trace, target int, opt Options) []candidate {
	infl := g.InfluencersAtDepth(target, 2)
	var feats []int
	for _, n := range infl {
		if !nl.Nets[n].IsClock && nl.Nets[n].Width <= 4 && n != target {
			feats = append(feats, n)
		}
	}
	if len(feats) == 0 {
		return nil
	}
	targetVals := atomValues(tr, target, 2)
	var out []candidate

	addStep := func(ante []sva.Step, nonOverlap bool, support int, consVal uint64) {
		a := &sva.Assertion{
			Ante:       ante,
			Cons:       []sva.Step{{Expr: atom{net: target, val: consVal}.expr(nl, false)}},
			NonOverlap: nonOverlap,
		}
		a.Source = a.String()
		out = append(out, candidate{a: a, support: support})
	}

	for _, fa := range feats {
		for _, va := range atomValues(tr, fa, 2) {
			anteAtom := atom{net: fa, val: va}
			// H1 / H2: single-atom antecedent, same or next cycle.
			for _, lag := range []int{0, 1} {
				for _, tv := range targetVals {
					support, violated := screenSimple(tr, anteAtom, atom{net: target, val: tv}, lag)
					if support >= opt.MinSupport && !violated {
						addStep([]sva.Step{{Expr: anteAtom.expr(nl, false)}}, lag == 1, support, tv)
					}
				}
			}
			// H3: $rose(a) |=> b == vb (only meaningful for 1-bit a).
			if nl.Nets[fa].Width == 1 {
				for _, tv := range targetVals {
					support, violated := screenRose(tr, fa, atom{net: target, val: tv})
					if support >= opt.MinSupport && !violated {
						rose := &verilog.Call{Name: "$rose", Args: []verilog.Expr{&verilog.Ident{Name: nl.Nets[fa].Name}}}
						addStep([]sva.Step{{Expr: rose}}, true, support, tv)
					}
				}
			}
			// H6: ranged response a==va |-> ##[1:2] b==vb, kept only when
			// no fixed-delay variant already explains the pair.
			for _, tv := range targetVals {
				if _, fixedViolated := screenSimple(tr, anteAtom, atom{net: target, val: tv}, 1); !fixedViolated {
					continue // the fixed-delay H2 form is strictly stronger
				}
				support, violated := screenRanged(tr, anteAtom, atom{net: target, val: tv}, 1, 2)
				if support >= opt.MinSupport && !violated {
					a := &sva.Assertion{
						Ante:          []sva.Step{{Expr: anteAtom.expr(nl, false)}},
						Cons:          []sva.Step{{Delay: 1, Expr: atom{net: target, val: tv}.expr(nl, false)}},
						ConsDelaySpan: 1,
					}
					a.Source = a.String()
					out = append(out, candidate{a: a, support: support})
				}
			}
			// H4: two-cycle antecedent a==va ##1 a==va2.
			for _, va2 := range atomValues(tr, fa, 2) {
				second := atom{net: fa, val: va2}
				for _, tv := range targetVals {
					support, violated := screenTwoCycle(tr, anteAtom, second, atom{net: target, val: tv})
					if support >= opt.MinSupport && !violated {
						addStep([]sva.Step{
							{Expr: anteAtom.expr(nl, false)},
							{Delay: 1, Expr: second.expr(nl, false)},
						}, true, support, tv)
					}
				}
			}
		}
	}
	// H5: pairwise antecedents over the first few features.
	for i := 0; i < len(feats) && i < 4; i++ {
		for j := i + 1; j < len(feats) && j < 4; j++ {
			a1 := atom{net: feats[i], val: firstVal(tr, feats[i])}
			a2 := atom{net: feats[j], val: firstVal(tr, feats[j])}
			for _, tv := range targetVals {
				support, violated := screenPair(tr, a1, a2, atom{net: target, val: tv})
				if support >= opt.MinSupport && !violated {
					ante := conjoin([]verilog.Expr{a1.expr(nl, false), a2.expr(nl, false)})
					addStep([]sva.Step{{Expr: ante}}, true, support, tv)
				}
			}
		}
	}
	if len(out) > opt.MaxPerTarget*4 {
		out = out[:opt.MaxPerTarget*4]
	}
	return out
}

func firstVal(tr *sim.Trace, net int) uint64 {
	vals := atomValues(tr, net, 1)
	return vals[0]
}

func screenSimple(tr *sim.Trace, ante, cons atom, lag int) (support int, violated bool) {
	for c := 0; c+lag < tr.Len(); c++ {
		if ante.holds(tr, c) {
			support++
			if !cons.holds(tr, c+lag) {
				return support, true
			}
		}
	}
	return support, false
}

func screenRose(tr *sim.Trace, net int, cons atom) (support int, violated bool) {
	for c := 1; c+1 < tr.Len(); c++ {
		if tr.Value(c, net) == 1 && tr.Value(c-1, net) == 0 {
			support++
			if !cons.holds(tr, c+1) {
				return support, true
			}
		}
	}
	return support, false
}

// screenRanged accepts the candidate when the consequent holds at some
// offset in [lo,hi] after every antecedent occurrence.
func screenRanged(tr *sim.Trace, ante, cons atom, lo, hi int) (support int, violated bool) {
	for c := 0; c+hi < tr.Len(); c++ {
		if !ante.holds(tr, c) {
			continue
		}
		support++
		ok := false
		for d := lo; d <= hi; d++ {
			if cons.holds(tr, c+d) {
				ok = true
				break
			}
		}
		if !ok {
			return support, true
		}
	}
	return support, false
}

func screenTwoCycle(tr *sim.Trace, first, second, cons atom) (support int, violated bool) {
	for c := 0; c+2 < tr.Len(); c++ {
		if first.holds(tr, c) && second.holds(tr, c+1) {
			support++
			if !cons.holds(tr, c+2) {
				return support, true
			}
		}
	}
	return support, false
}

func screenPair(tr *sim.Trace, a1, a2, cons atom) (support int, violated bool) {
	for c := 0; c+1 < tr.Len(); c++ {
		if a1.holds(tr, c) && a2.holds(tr, c) {
			support++
			if !cons.holds(tr, c+1) {
				return support, true
			}
		}
	}
	return support, false
}
