package mine

import (
	"context"
	"fmt"

	"assertionbench/internal/rtlgraph"
	"assertionbench/internal/sim"
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// GoldMine mines assertions the GOLDMINE way: random-stimulus traces
// provide the data, a static dependency analysis (cone of influence)
// restricts the feature space per target, a decision tree generalizes the
// trace into candidate A -> C rules, and the FPV engine keeps only proven
// rules. Cancelling ctx aborts the verification filter with ctx.Err().
func GoldMine(ctx context.Context, nl *verilog.Netlist, opt Options) ([]Mined, error) {
	opt = opt.withDefaults()
	tr, err := sim.RandomTrace(nl, opt.TraceCycles, 2, opt.Seed)
	if err != nil {
		return nil, fmt.Errorf("mine: trace generation failed: %w", err)
	}
	g := rtlgraph.Build(nl)

	var cands []candidate
	for _, target := range miningTargets(nl) {
		cands = append(cands, mineTarget(nl, g, tr, target, opt)...)
	}
	return dedupeAndVerify(ctx, nl, cands, opt)
}

// miningTargets selects output and state nets worth explaining.
func miningTargets(nl *verilog.Netlist) []int {
	var out []int
	seen := map[int]bool{}
	for _, i := range nl.Outputs {
		if !nl.Nets[i].IsClock && !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	for _, i := range nl.Regs {
		if !seen[i] && nl.Nets[i].Width <= 8 {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}

// mineTarget learns rules predicting each observed value of one target.
func mineTarget(nl *verilog.Netlist, g *rtlgraph.Graph, tr *sim.Trace, target int, opt Options) []candidate {
	// Features: atoms over nets inside the target's cone of influence,
	// close in dependency distance, with small widths.
	var atoms []atom
	for _, n := range g.InfluencersAtDepth(target, 2) {
		net := nl.Nets[n]
		if net.IsClock || net.Width > 4 || n == target {
			continue
		}
		for _, v := range atomValues(tr, n, 2) {
			atoms = append(atoms, atom{net: n, val: v})
		}
	}
	if len(atoms) == 0 {
		return nil
	}
	// Sequential targets are predicted one cycle ahead (|=>); outputs of
	// combinational logic are explained in-cycle (|->).
	seq := nl.Nets[target].IsReg
	lag := 0
	if seq {
		lag = 1
	}
	rows := make([]dtRow, 0, tr.Len()-lag)
	targetVals := atomValues(tr, target, 4)

	var out []candidate
	for _, tv := range targetVals {
		rows = rows[:0]
		for c := 0; c+lag < tr.Len(); c++ {
			feat := make([]bool, len(atoms))
			for fi, a := range atoms {
				feat[fi] = a.holds(tr, c)
			}
			rows = append(rows, dtRow{features: feat, label: tr.Value(c+lag, target) == tv})
		}
		tree := learnTree(rows, len(atoms), opt.MaxTreeDepth, opt.MinSupport)
		rules := extractRules(tree, opt.MinSupport)
		kept := 0
		for _, r := range rules {
			if !r.label {
				continue // only rules that imply target==tv
			}
			exprs := make([]verilog.Expr, 0, len(r.conds))
			for _, cond := range r.conds {
				exprs = append(exprs, atoms[cond.feature].expr(nl, cond.negated))
			}
			cons := atom{net: target, val: tv}.expr(nl, false)
			a := &sva.Assertion{
				Ante:       []sva.Step{{Expr: conjoin(exprs)}},
				Cons:       []sva.Step{{Expr: cons}},
				NonOverlap: seq,
			}
			a.Source = a.String()
			out = append(out, candidate{a: a, support: r.support})
			kept++
			if kept >= opt.MaxPerTarget {
				break
			}
		}
	}
	return out
}
