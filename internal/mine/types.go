// Package mine implements the two assertion miners the paper uses to
// produce formally verified assertions for in-context examples and
// fine-tuning data (Sec. III): a GOLDMINE-style miner (decision-tree
// learning over simulation traces, guided by lightweight static analysis)
// and a HARM-style hint/template miner. Every assertion either miner emits
// has been proven by the FPV engine on the design, mirroring the paper's
// JasperGold filtering step.
package mine

import (
	"context"
	"fmt"
	"sort"

	"assertionbench/internal/fpv"
	"assertionbench/internal/sim"
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// Mined is one verified assertion with its mining metadata.
type Mined struct {
	Assertion *sva.Assertion
	// Support is the number of trace positions where the antecedent held.
	Support int
	// Coverage is Support normalized by trace length.
	Coverage float64
	// Complexity counts atoms plus temporal window length (rank input).
	Complexity int
	// Rank is the figure of merit (higher is better), per the ranking
	// approach of Pal et al. [14]: reward trace coverage, penalize
	// complexity.
	Rank float64
	// Result is the FPV verdict (always a proven verdict for kept output).
	Result fpv.Result
}

// Options configure mining.
type Options struct {
	// TraceCycles is the random-stimulus trace length. Default 512.
	TraceCycles int
	// Seed drives stimulus generation. Default 1.
	Seed int64
	// MinSupport is the minimum antecedent occurrences on the trace for a
	// candidate to be considered. Default 4.
	MinSupport int
	// MaxPerTarget bounds rules kept per mining target. Default 4.
	MaxPerTarget int
	// MaxAssertions bounds the total output. Default 16.
	MaxAssertions int
	// MaxTreeDepth bounds decision-tree depth. Default 3.
	MaxTreeDepth int
	// FPV configures the verification filter.
	FPV fpv.Options
}

func (o Options) withDefaults() Options {
	if o.TraceCycles == 0 {
		o.TraceCycles = 512
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MinSupport == 0 {
		o.MinSupport = 4
	}
	if o.MaxPerTarget == 0 {
		o.MaxPerTarget = 4
	}
	if o.MaxAssertions == 0 {
		o.MaxAssertions = 16
	}
	if o.MaxTreeDepth == 0 {
		o.MaxTreeDepth = 3
	}
	return o
}

// atom is the predicate net == val over trace rows.
type atom struct {
	net int
	val uint64
}

func (a atom) holds(tr *sim.Trace, cycle int) bool {
	return tr.Value(cycle, a.net) == a.val
}

// expr renders the atom (or its negation) as an AST expression.
func (a atom) expr(nl *verilog.Netlist, negated bool) verilog.Expr {
	n := nl.Nets[a.net]
	op := "=="
	val := a.val
	if negated {
		if n.Width == 1 {
			val = a.val ^ 1 // !=0 on a 1-bit net reads better as ==1
		} else {
			op = "!="
		}
	}
	return &verilog.Binary{
		Op: op,
		X:  &verilog.Ident{Name: n.Name},
		Y:  &verilog.Number{Value: val, Width: n.Width},
	}
}

func (a atom) String() string { return fmt.Sprintf("net%d==%d", a.net, a.val) }

// conjoin folds expressions with &&.
func conjoin(exprs []verilog.Expr) verilog.Expr {
	out := exprs[0]
	for _, e := range exprs[1:] {
		out = &verilog.Binary{Op: "&&", X: out, Y: e}
	}
	return out
}

// atomValues returns the distinct values a net takes on the trace, capped.
func atomValues(tr *sim.Trace, net, cap int) []uint64 {
	seen := map[uint64]int{}
	for c := 0; c < tr.Len(); c++ {
		seen[tr.Value(c, net)]++
	}
	vals := make([]uint64, 0, len(seen))
	for v := range seen {
		vals = append(vals, v)
	}
	// Most frequent first, then numeric for determinism.
	sort.Slice(vals, func(i, j int) bool {
		if seen[vals[i]] != seen[vals[j]] {
			return seen[vals[i]] > seen[vals[j]]
		}
		return vals[i] < vals[j]
	})
	if len(vals) > cap {
		vals = vals[:cap]
	}
	return vals
}

// dedupeAndVerify turns unique candidates into FPV-proven Mined entries.
// Cancellation aborts the remaining verification queue and returns
// ctx.Err() — never a silently shortened result set.
func dedupeAndVerify(ctx context.Context, nl *verilog.Netlist, cands []candidate, opt Options) ([]Mined, error) {
	seen := map[string]bool{}
	var out []Mined
	for _, c := range cands {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		key := c.a.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		res := fpv.Verify(ctx, nl, c.a, opt.FPV)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if res.Status != fpv.StatusProven && res.Status != fpv.StatusBoundedPass {
			continue
		}
		m := Mined{
			Assertion:  c.a,
			Support:    c.support,
			Coverage:   float64(c.support) / float64(opt.TraceCycles),
			Complexity: complexity(c.a),
			Result:     res,
		}
		m.Rank = rankOf(m)
		out = append(out, m)
		if len(out) >= opt.MaxAssertions {
			break
		}
	}
	sortByRank(out)
	return out, nil
}

type candidate struct {
	a       *sva.Assertion
	support int
}

// complexity counts boolean atoms plus the temporal window span.
func complexity(a *sva.Assertion) int {
	atoms := 0
	var count func(verilog.Expr)
	count = func(e verilog.Expr) {
		switch v := e.(type) {
		case *verilog.Binary:
			if v.Op == "&&" || v.Op == "||" {
				count(v.X)
				count(v.Y)
				return
			}
			atoms++
		case *verilog.Unary:
			count(v.X)
		default:
			atoms++
		}
	}
	for _, s := range a.Ante {
		count(s.Expr)
	}
	for _, s := range a.Cons {
		count(s.Expr)
	}
	return atoms + a.WindowLength()
}

// rankOf is the figure of merit: coverage rewarded, complexity penalized.
func rankOf(m Mined) float64 {
	return m.Coverage / float64(m.Complexity)
}

func sortByRank(ms []Mined) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Rank != ms[j].Rank {
			return ms[i].Rank > ms[j].Rank
		}
		return ms[i].Assertion.String() < ms[j].Assertion.String()
	})
}

// Rank re-ranks a mined set in place (exposed for the ranking ablation).
func Rank(ms []Mined) {
	for i := range ms {
		ms[i].Rank = rankOf(ms[i])
	}
	sortByRank(ms)
}
