package mine

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"assertionbench/internal/sim"
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// This file implements the paper's future-work direction (iii): mining
// security assertions. Two mechanisms:
//
//  1. Security templates over role-classified signals (locks/privileges
//     vs data), screened on traces and verified by FPV — producing
//     assertions like "locked == 1 |-> data_out == 0".
//  2. A two-trace information-flow (taint) check in the spirit of
//     Isadora [34]: simulate stimulus pairs differing only in a secret
//     input and report observation points where the secret leaks while
//     the design claims to be locked. Leak-freedom is a hyperproperty the
//     single-trace SVA subset cannot express, so it is reported directly
//     rather than as an assertion.

// secRole classifies signals by name for template instantiation.
func isPrivilegeName(name string) bool {
	l := strings.ToLower(name)
	for _, frag := range []string{"lock", "priv", "grant", "super", "auth", "secure", "prot"} {
		if strings.Contains(l, frag) {
			return true
		}
	}
	return false
}

func isSecretName(name string) bool {
	l := strings.ToLower(name)
	for _, frag := range []string{"key", "secret", "data_in", "din", "token"} {
		if strings.Contains(l, frag) {
			return true
		}
	}
	return false
}

// Security mines lock/privilege-oriented assertions: outputs forced safe
// while a privilege signal is deasserted, privileges cleared by reset,
// and no privilege without a preceding request. Output is FPV-verified.
func Security(ctx context.Context, nl *verilog.Netlist, opt Options) ([]Mined, error) {
	opt = opt.withDefaults()
	tr, err := sim.RandomTrace(nl, opt.TraceCycles, 2, opt.Seed)
	if err != nil {
		return nil, fmt.Errorf("mine: trace generation failed: %w", err)
	}
	var privs []int
	for _, n := range nl.Nets {
		if n.Width == 1 && !n.IsClock && isPrivilegeName(n.Name) && !strings.Contains(n.Name, ".") {
			privs = append(privs, n.Index)
		}
	}
	var cands []candidate
	atomExpr := func(net int, val uint64) verilog.Expr {
		return &verilog.Binary{Op: "==",
			X: &verilog.Ident{Name: nl.Nets[net].Name},
			Y: &verilog.Number{Value: val, Width: nl.Nets[net].Width}}
	}
	for _, p := range privs {
		// Safe-when-locked: while p holds the "locked" polarity, each
		// output stays at its observed safe constant.
		for _, polarity := range []uint64{0, 1} {
			for _, o := range nl.Outputs {
				if o == p || nl.Nets[o].Width > 16 {
					continue
				}
				val, support, ok := constantUnder(tr, p, polarity, o)
				if !ok || support < opt.MinSupport {
					continue
				}
				a := &sva.Assertion{
					Ante: []sva.Step{{Expr: atomExpr(p, polarity)}},
					Cons: []sva.Step{{Expr: atomExpr(o, val)}},
				}
				a.Source = a.String()
				cands = append(cands, candidate{a: a, support: support})
			}
		}
		// Reset returns the privilege state to its safe value.
		for _, r := range nl.Inputs {
			if nl.Nets[r].Width != 1 || !isResetLikeName(nl.Nets[r].Name) {
				continue
			}
			for _, safe := range []uint64{0, 1} {
				support, violated := screenSimple(tr, atom{net: r, val: 1}, atom{net: p, val: safe}, 1)
				if violated || support < opt.MinSupport {
					continue
				}
				a := &sva.Assertion{
					Ante:       []sva.Step{{Expr: atomExpr(r, 1)}},
					Cons:       []sva.Step{{Expr: atomExpr(p, safe)}},
					NonOverlap: true,
				}
				a.Source = a.String()
				cands = append(cands, candidate{a: a, support: support})
			}
		}
		// No privilege without request: $rose(p) |-> $past(req)==1 for
		// 1-bit request-like inputs.
		for _, q := range nl.Inputs {
			nq := nl.Nets[q]
			if nq.Width != 1 || !strings.Contains(strings.ToLower(nq.Name), "req") {
				continue
			}
			support, ok := screenRoseImpliesPast(tr, p, q)
			if !ok || support < 2 {
				continue
			}
			a := &sva.Assertion{
				Ante: []sva.Step{{Expr: &verilog.Call{Name: "$rose",
					Args: []verilog.Expr{&verilog.Ident{Name: nl.Nets[p].Name}}}}},
				Cons: []sva.Step{{Expr: &verilog.Binary{Op: "==",
					X: &verilog.Call{Name: "$past", Args: []verilog.Expr{&verilog.Ident{Name: nq.Name}}},
					Y: &verilog.Number{Value: 1, Width: 1}}}},
			}
			a.Source = a.String()
			cands = append(cands, candidate{a: a, support: support})
		}
	}
	return dedupeAndVerify(ctx, nl, cands, opt)
}

// constantUnder reports the value o held whenever p==polarity, if unique.
func constantUnder(tr *sim.Trace, p int, polarity uint64, o int) (uint64, int, bool) {
	var val uint64
	support := 0
	for c := 0; c < tr.Len(); c++ {
		if tr.Value(c, p) != polarity {
			continue
		}
		v := tr.Value(c, o)
		if support == 0 {
			val = v
		} else if v != val {
			return 0, support, false
		}
		support++
	}
	return val, support, support > 0
}

func screenRoseImpliesPast(tr *sim.Trace, p, q int) (int, bool) {
	support := 0
	for c := 1; c < tr.Len(); c++ {
		if tr.Value(c, p) == 1 && tr.Value(c-1, p) == 0 {
			support++
			if tr.Value(c-1, q) != 1 {
				return support, false
			}
		}
	}
	return support, true
}

func isResetLikeName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "rst") || strings.Contains(l, "reset")
}

// Leak is one information-flow violation found by the taint check.
type Leak struct {
	// Secret and Observable name the tainted input and the leaking net.
	Secret     string
	Observable string
	// Cycle is when the divergence was observed; GuardName/GuardValue the
	// privilege condition under which it happened.
	Cycle      int
	GuardName  string
	GuardValue uint64
}

func (l Leak) String() string {
	return fmt.Sprintf("secret %s leaks to %s at cycle %d while %s == %d",
		l.Secret, l.Observable, l.Cycle, l.GuardName, l.GuardValue)
}

// TaintCheck runs the two-trace information-flow analysis: for every
// (secret input, guard) pair, stimulus pairs identical except in the
// secret are simulated; any output divergence at a cycle where the guard
// holds its locked polarity is a leak. guard may be "" to check
// unconditional non-interference. Cancelling ctx aborts the remaining
// stimulus runs with ctx.Err().
func TaintCheck(ctx context.Context, nl *verilog.Netlist, guardName string, lockedValue uint64, runs, depth int, seed int64) ([]Leak, error) {
	guard := -1
	if guardName != "" {
		guard = nl.NetIndex(guardName)
		if guard < 0 {
			return nil, fmt.Errorf("mine: no net named %q", guardName)
		}
	}
	var secrets []int
	for _, i := range nl.Inputs {
		if isSecretName(nl.Nets[i].Name) {
			secrets = append(secrets, i)
		}
	}
	if len(secrets) == 0 {
		return nil, fmt.Errorf("mine: design has no secret-classified inputs")
	}
	var leaks []Leak
	seen := map[string]bool{}
	rng := rand.New(rand.NewSource(seed))
	for _, secret := range secrets {
		secPos := -1
		for k, idx := range nl.Inputs {
			if idx == secret {
				secPos = k
			}
		}
		for run := 0; run < runs; run++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			a := sim.New(nl)
			b := sim.New(nl)
			for t := 0; t < depth; t++ {
				vals := sim.RandomInputs(nl, rng)
				// Hold resets early so the lock state machine initializes.
				for k, idx := range nl.Inputs {
					if isResetLikeName(nl.Nets[idx].Name) {
						if t < 2 {
							vals[k] = 1
						} else {
							vals[k] = 0
						}
					}
				}
				valsB := append([]uint64{}, vals...)
				valsB[secPos] = rng.Uint64() & nl.Nets[secret].Mask()
				if err := a.SetInputs(vals); err != nil {
					return nil, err
				}
				if err := b.SetInputs(valsB); err != nil {
					return nil, err
				}
				a.Settle()
				b.Settle()
				// Flows are flagged only while BOTH traces sit in the
				// locked state: divergence reachable through the
				// legitimate unlock channel (e.g. a key input changing
				// whether unlocking succeeds) is authorized flow.
				guarded := guard < 0 ||
					(a.ValueIdx(guard) == lockedValue && b.ValueIdx(guard) == lockedValue)
				if guarded && vals[secPos] != valsB[secPos] {
					for _, o := range nl.Outputs {
						if o == secret {
							continue
						}
						if a.ValueIdx(o) != b.ValueIdx(o) {
							key := nl.Nets[secret].Name + ">" + nl.Nets[o].Name
							if !seen[key] {
								seen[key] = true
								leaks = append(leaks, Leak{
									Secret:     nl.Nets[secret].Name,
									Observable: nl.Nets[o].Name,
									Cycle:      t,
									GuardName:  guardName,
									GuardValue: lockedValue,
								})
							}
						}
					}
				}
				a.Step()
				b.Step()
			}
		}
	}
	sort.Slice(leaks, func(i, j int) bool {
		if leaks[i].Secret != leaks[j].Secret {
			return leaks[i].Secret < leaks[j].Secret
		}
		return leaks[i].Observable < leaks[j].Observable
	})
	return leaks, nil
}
