package mine_test

import (
	"context"
	"strings"
	"testing"

	"assertionbench/internal/bench"
	"assertionbench/internal/mine"
	"assertionbench/internal/verilog"
)

const extCounterSrc = `
module counter(clk, rst, en, count);
input clk, rst, en;
output [3:0] count;
reg [3:0] count;
always @(posedge clk or posedge rst)
  if (rst) count <= 4'b0;
  else if (en) count <= count + 1;
endmodule
`

func extElab(t *testing.T, src, top string) *verilog.Netlist {
	t.Helper()
	nl, err := verilog.ElaborateSource(src, top)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func secDesign(t *testing.T, name string) *verilog.Netlist {
	t.Helper()
	for _, d := range bench.SecurityDesigns() {
		if d.Name == name {
			return extElab(t, d.Source, d.Name)
		}
	}
	t.Fatalf("no security design %q", name)
	return nil
}

func TestSecurityMinesLockProperties(t *testing.T) {
	nl := secDesign(t, "access_ctrl")
	mined, err := mine.Security(context.Background(), nl, mine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) == 0 {
		t.Fatal("security miner found nothing on access_ctrl")
	}
	foundSafe := false
	for _, m := range mined {
		if !m.Result.Status.IsPass() {
			t.Errorf("unproven security assertion %q", m.Assertion)
		}
		s := m.Assertion.String()
		if strings.Contains(s, "locked") && strings.Contains(s, "data_out == 8'h0") {
			foundSafe = true
		}
	}
	if !foundSafe {
		var got []string
		for _, m := range mined {
			got = append(got, m.Assertion.String())
		}
		t.Errorf("expected the locked-implies-zero-output property, got %v", got)
	}
}

func TestSecurityCatchesLeakyVariant(t *testing.T) {
	// The leaky design must NOT yield the full "output zero while locked"
	// property (bit 0 leaks), while the clean design does.
	nl := secDesign(t, "access_ctrl_leaky")
	mined, err := mine.Security(context.Background(), nl, mine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mined {
		s := m.Assertion.String()
		if strings.Contains(s, "locked == 1'h1 |-> data_out == 8'h0") {
			t.Errorf("leaky design proved the safety property: %s", s)
		}
	}
}

func TestSecurityPrivFSM(t *testing.T) {
	nl := secDesign(t, "priv_fsm")
	mined, err := mine.Security(context.Background(), nl, mine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Reset must clear privilege: rst == 1 |=> priv == 0 or super == 0.
	found := false
	for _, m := range mined {
		s := m.Assertion.String()
		if strings.Contains(s, "rst == 1'h1 |=> super == 1'h0") {
			found = true
		}
	}
	if !found {
		var got []string
		for _, m := range mined {
			got = append(got, m.Assertion.String())
		}
		t.Errorf("expected reset-drops-privilege assertion, got %v", got)
	}
}

func TestTaintCheckCleanVsLeaky(t *testing.T) {
	clean := secDesign(t, "access_ctrl")
	leaks, err := mine.TaintCheck(context.Background(), clean, "locked", 1, 16, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range leaks {
		if l.Observable == "data_out" {
			t.Errorf("clean design leaks: %v", l)
		}
	}

	leaky := secDesign(t, "access_ctrl_leaky")
	leaks, err = mine.TaintCheck(context.Background(), leaky, "locked", 1, 16, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range leaks {
		if l.Secret == "data_in" && l.Observable == "data_out" {
			found = true
		}
	}
	if !found {
		t.Errorf("taint check missed the deliberate bit-0 leak; leaks=%v", leaks)
	}
}

func TestTaintCheckRequiresSecrets(t *testing.T) {
	nl := extElab(t, extCounterSrc, "counter")
	if _, err := mine.TaintCheck(context.Background(), nl, "", 0, 2, 8, 1); err == nil {
		t.Fatal("counter has no secret inputs; TaintCheck must refuse")
	}
}

func TestSecurityDesignsElaborate(t *testing.T) {
	for _, d := range bench.SecurityDesigns() {
		nl, err := verilog.ElaborateSource(d.Source, d.Name)
		if err != nil {
			t.Errorf("security design %s: %v", d.Name, err)
			continue
		}
		if !nl.IsSequential() {
			t.Errorf("%s should be sequential", d.Name)
		}
	}
}
