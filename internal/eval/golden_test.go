package eval

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"assertionbench/internal/bench"
	"assertionbench/internal/llm"
)

// Golden-file tests pin the paper-facing numbers: a fixed-seed run's
// metrics and every figure/table renderer are compared byte-for-byte
// against checked-in goldens, so a refactor cannot silently drift the
// reproduced results. Regenerate intentionally with:
//
//	go test ./internal/eval -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden %s\n-- got --\n%s\n-- want --\n%s", name, path, got, want)
	}
}

// goldenRuns is the fixed-seed COTS grid over a truncated corpus. The
// grid is cached per test binary because four runs share it.
var goldenGrid []RunResult

func goldenResults(t *testing.T) []RunResult {
	t.Helper()
	if goldenGrid != nil {
		return goldenGrid
	}
	e := testExperiment(t, 10)
	for _, p := range []llm.Profile{llm.GPT35(), llm.GPT4o()} {
		for _, k := range []int{1, 5} {
			r, err := e.RunCOTS(context.Background(), p, k)
			if err != nil {
				t.Fatal(err)
			}
			goldenGrid = append(goldenGrid, r)
		}
	}
	return goldenGrid
}

func TestGoldenTableAndFigure3(t *testing.T) {
	corpus := bench.TestCorpus()
	goldenCompare(t, "table1", TableI(corpus))
	goldenCompare(t, "figure3", Figure3(corpus))
}

func TestGoldenFigures(t *testing.T) {
	results := goldenResults(t)
	goldenCompare(t, "figure6", Figure6(results))
	goldenCompare(t, "figure7", Figure7(results))
	goldenCompare(t, "observations", Observations(results, nil))
}

func TestGoldenMetricsJSON(t *testing.T) {
	results := goldenResults(t)
	type row struct {
		Model   string  `json:"model"`
		Shots   int     `json:"shots"`
		Metrics Metrics `json:"metrics"`
	}
	rows := make([]row, 0, len(results))
	for _, r := range results {
		rows = append(rows, row{Model: r.Model, Shots: r.Shots, Metrics: r.Metrics})
	}
	b, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "metrics", string(b)+"\n")
}
