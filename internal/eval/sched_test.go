package eval

import (
	"context"
	"reflect"
	"testing"

	"assertionbench/internal/llm"
)

// TestDispatchModesByteIdentical is the scheduling half of the merge
// contract: every dispatch mode must reproduce the sequential reference
// exactly — outcome for outcome, field for field — at the same seed.
func TestDispatchModesByteIdentical(t *testing.T) {
	e := testExperiment(t, 12)
	gen := NewModelGenerator(llm.GPT4o())
	base := RunOptions{Shots: 5, UseCorrector: true, Seed: 7}

	seqOpt := base
	seqOpt.Workers = 1
	ref, err := Run(context.Background(), gen, e.ICL, e.Corpus, seqOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, dispatch := range []string{DispatchCost, DispatchContiguous, DispatchFIFO} {
		t.Run(dispatch, func(t *testing.T) {
			opt := base
			opt.Workers = 4
			opt.Dispatch = dispatch
			got, err := Run(context.Background(), gen, e.ICL, e.Corpus, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("%s dispatch differs from sequential\nseq: %+v\ngot: %+v", dispatch, ref.Metrics, got.Metrics)
			}
		})
	}
}

// TestSchedIndexHookBreaksIdentity proves the oracle-10 mutation seam is
// observable: misrouting two reorder-buffer slots must make the
// scheduled stream differ from the sequential reference (and must not
// wedge the emitter — the swap is a bijection, so every slot fills).
func TestSchedIndexHookBreaksIdentity(t *testing.T) {
	e := testExperiment(t, 6)
	gen := NewModelGenerator(llm.GPT35())
	base := RunOptions{Shots: 1, UseCorrector: true, Seed: 3}

	seqOpt := base
	seqOpt.Workers = 1
	ref, err := Run(context.Background(), gen, e.ICL, e.Corpus, seqOpt)
	if err != nil {
		t.Fatal(err)
	}

	SchedIndexHook = func(i int) int {
		switch i {
		case 0:
			return 1
		case 1:
			return 0
		}
		return i
	}
	defer func() { SchedIndexHook = nil }()

	opt := base
	opt.Workers = 4
	got, err := Run(context.Background(), gen, e.ICL, e.Corpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Designs) != len(ref.Designs) {
		t.Fatalf("mutated run yielded %d outcomes, want %d", len(got.Designs), len(ref.Designs))
	}
	if reflect.DeepEqual(ref, got) {
		t.Fatal("index-swap mutation was not observable in the stream")
	}
}

// TestSchedulerPlans pins the planner's structure: contiguous mode
// partitions the corpus into balanced contiguous slices consumed in
// index order; cost mode covers every index exactly once and hands the
// most expensive work out first when stolen.
func TestSchedulerPlans(t *testing.T) {
	e := testExperiment(t, 10)
	designs := e.Corpus

	t.Run("contiguous", func(t *testing.T) {
		s := newScheduler(context.Background(), designs, 3, DispatchContiguous, nil)
		if s.stealing {
			t.Error("contiguous plan must not steal")
		}
		// 10 designs over 3 workers: 4+3+3, contiguous, owner pops in
		// index order.
		wantSizes := []int{4, 3, 3}
		next := 0
		for w, q := range s.queues {
			if len(q.jobs) != wantSizes[w] {
				t.Fatalf("worker %d holds %d jobs, want %d", w, len(q.jobs), wantSizes[w])
			}
			for range wantSizes[w] {
				j, ok := q.popTail()
				if !ok || j.idx != next {
					t.Fatalf("worker %d popped idx %d (ok=%v), want %d", w, j.idx, ok, next)
				}
				next++
			}
		}
	})

	t.Run("cost", func(t *testing.T) {
		s := newScheduler(context.Background(), designs, 3, DispatchCost, nil)
		if !s.stealing {
			t.Error("cost plan must steal")
		}
		seen := make(map[int]bool)
		for w := range s.queues {
			for _, j := range s.queues[w].jobs {
				if seen[j.idx] {
					t.Fatalf("index %d planned twice", j.idx)
				}
				seen[j.idx] = true
			}
			// Owner order is cheapest-last (tail pop = SPT).
			for k := 1; k < len(s.queues[w].jobs); k++ {
				if s.queues[w].jobs[k].cost > s.queues[w].jobs[k-1].cost {
					t.Fatalf("worker %d deque not sorted costliest-first", w)
				}
			}
		}
		if len(seen) != len(designs) {
			t.Fatalf("plan covers %d designs, want %d", len(seen), len(designs))
		}
		// A worker with a dry deque steals the costliest pending job of
		// the most-loaded victim.
		for range len(s.queues[0].jobs) {
			s.queues[0].popTail()
		}
		victim, max := -1, uint64(0)
		for i := 1; i < len(s.queues); i++ {
			if load := s.queues[i].remaining(); load > max {
				victim, max = i, load
			}
		}
		if victim < 0 {
			t.Skip("no loaded victim on this corpus")
		}
		wantIdx := s.queues[victim].jobs[0].idx
		j, ok := s.next(0)
		if !ok || j.idx != wantIdx {
			t.Fatalf("steal returned idx %d (ok=%v), want head of worker %d (idx %d)", j.idx, ok, victim, wantIdx)
		}
	})
}

func TestValidDispatch(t *testing.T) {
	for _, s := range []string{"", DispatchCost, DispatchContiguous, DispatchFIFO} {
		if !ValidDispatch(s) {
			t.Errorf("ValidDispatch(%q) = false", s)
		}
	}
	for _, s := range []string{"lifo", "COST", "random"} {
		if ValidDispatch(s) {
			t.Errorf("ValidDispatch(%q) = true", s)
		}
	}
}
