package eval

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"assertionbench/internal/bench"
	"assertionbench/internal/fpv"
	"assertionbench/internal/llm"
	"assertionbench/internal/verilog"
)

// countingVerifier wraps the real engine and counts Verify/VerifyBatch
// calls per design name, shared across all workers' instances. Resume
// tests use it to prove decided designs are served from the manifest
// without re-verification.
type countingVerifier struct {
	inner Verifier
	mu    *sync.Mutex
	calls map[string]int
}

func (c countingVerifier) note(d bench.Design) {
	c.mu.Lock()
	c.calls[d.Name]++
	c.mu.Unlock()
}

func (c countingVerifier) Verify(ctx context.Context, d bench.Design, nl *verilog.Netlist, a string, opt fpv.Options) fpv.Result {
	c.note(d)
	return c.inner.Verify(ctx, d, nl, a, opt)
}

func (c countingVerifier) VerifyBatch(ctx context.Context, d bench.Design, nl *verilog.Netlist, as []string, opt fpv.Options) []fpv.Result {
	c.note(d)
	return c.inner.(BatchVerifier).VerifyBatch(ctx, d, nl, as, opt)
}

// detachStore makes sure no artifact store is attached for the test's
// reference runs and restores the detached state afterwards (the
// attachment is process-wide and sticky).
func detachStore(t *testing.T) {
	t.Helper()
	if err := bench.SetCacheDir(""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bench.SetCacheDir("") })
}

// TestResumeSkipsDecidedDesigns is the crash-recovery acceptance test:
// a run killed after 4 of 8 designs (simulated by breaking out of the
// stream, then purging all in-memory caches as a process restart
// would) resumes with -resume semantics — the 4 decided designs are
// served from the run manifest with their verifiers never invoked, the
// other 4 are evaluated, and the final result is field-for-field equal
// to a never-interrupted run.
func TestResumeSkipsDecidedDesigns(t *testing.T) {
	detachStore(t)
	e := testExperiment(t, 8)
	gen := NewModelGenerator(llm.GPT4o())
	base := RunOptions{Shots: 2, UseCorrector: true, Seed: 5, Workers: 1}

	ref, err := Run(context.Background(), gen, e.ICL, e.Corpus, base)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: sequential, journaling to a fresh store, killed
	// after the 4th outcome.
	dir := t.TempDir()
	opt := base
	opt.CacheDir = dir
	got := 0
	for _, err := range Stream(context.Background(), gen, e.ICL, e.Corpus, opt) {
		if err != nil {
			t.Fatal(err)
		}
		if got++; got == 4 {
			break
		}
	}

	// A process restart loses every in-memory cache but keeps the disk
	// store. Purge simulates that over the same cache dir.
	bench.DefaultElab.Purge()

	mu := &sync.Mutex{}
	calls := map[string]int{}
	ropt := base
	ropt.Workers = 4
	ropt.Resume = true
	ropt.CacheDir = dir
	ropt.NewVerifier = func() Verifier {
		return countingVerifier{inner: NewEngineVerifier(), mu: mu, calls: calls}
	}
	res, err := Run(context.Background(), gen, e.ICL, e.Corpus, ropt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, res) {
		t.Errorf("resumed run differs from the never-interrupted reference\nref: %+v\ngot: %+v", ref.Metrics, res.Metrics)
	}
	for i, d := range e.Corpus {
		n := calls[d.Name]
		if i < 4 && n != 0 {
			t.Errorf("decided design %d (%s) was re-verified %d times", i, d.Name, n)
		}
		if i >= 4 && n == 0 {
			t.Errorf("undecided design %d (%s) was never verified", i, d.Name)
		}
	}
}

// TestResumeServesFullyDecidedRun: after a complete journaled run, a
// resume makes zero verifier calls and reproduces the stream exactly —
// and the manifest key ignores Workers, budgets, Retries and
// ErrorPolicy, so a resume under different execution knobs still finds
// the same manifest (decided verdicts are execution-independent).
func TestResumeServesFullyDecidedRun(t *testing.T) {
	detachStore(t)
	e := testExperiment(t, 6)
	gen := NewModelGenerator(llm.GPT4o())
	base := RunOptions{Shots: 1, Seed: 11, Workers: 1}

	dir := t.TempDir()
	opt := base
	opt.CacheDir = dir
	ref, err := Run(context.Background(), gen, e.ICL, e.Corpus, opt)
	if err != nil {
		t.Fatal(err)
	}

	bench.DefaultElab.Purge()

	mu := &sync.Mutex{}
	calls := map[string]int{}
	ropt := base
	ropt.Workers = 3
	ropt.Retries = 2
	ropt.ErrorPolicy = ErrorPolicyContinue
	ropt.Resume = true
	ropt.CacheDir = dir
	ropt.NewVerifier = func() Verifier {
		return countingVerifier{inner: NewEngineVerifier(), mu: mu, calls: calls}
	}
	res, err := Run(context.Background(), gen, e.ICL, e.Corpus, ropt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, res) {
		t.Error("resume of a fully decided run differs from the original")
	}
	if len(calls) != 0 {
		t.Errorf("fully decided resume still verified %d designs: %v", len(calls), calls)
	}
}

// TestResumeWithoutStoreIsRejected: Resume without an attached artifact
// store is a usage error, caught before any work starts.
func TestResumeWithoutStoreIsRejected(t *testing.T) {
	detachStore(t)
	e := testExperiment(t, 2)
	gen := NewModelGenerator(llm.GPT35())
	_, err := Run(context.Background(), gen, e.ICL, e.Corpus, RunOptions{Shots: 1, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "Resume requires") {
		t.Fatalf("err = %v, want a Resume-requires-store usage error", err)
	}
}
