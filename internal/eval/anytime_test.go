package eval

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"assertionbench/internal/llm"
)

// TestRunOptionValidation: scheduler-adjacent knobs reject nonsense with
// actionable messages before any work starts.
func TestRunOptionValidation(t *testing.T) {
	e := testExperiment(t, 2)
	gen := NewModelGenerator(llm.GPT35())
	cases := []struct {
		name string
		mod  func(*RunOptions)
		want string
	}{
		{"negative workers", func(o *RunOptions) { o.Workers = -2 }, "negative Workers"},
		{"bad dispatch", func(o *RunOptions) { o.Dispatch = "bogus" }, "unknown dispatch mode"},
		{"negative deadline", func(o *RunOptions) { o.Deadline = -time.Second }, "negative Deadline"},
		{"negative design budget", func(o *RunOptions) { o.DesignBudget = -time.Millisecond }, "negative DesignBudget"},
		{"bad error policy", func(o *RunOptions) { o.ErrorPolicy = "sometimes" }, "unknown error policy"},
		{"negative retries", func(o *RunOptions) { o.Retries = -1 }, "negative Retries"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := RunOptions{Shots: 1}
			tc.mod(&opt)
			_, err := Run(context.Background(), gen, e.ICL, e.Corpus, opt)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestDesignBudgetTruncates: a per-design budget too small to decide
// anything yields a complete, ordered outcome list where every design is
// marked Truncated and its undecided verdicts are Unknown — an anytime
// answer, not an error.
func TestDesignBudgetTruncates(t *testing.T) {
	e := testExperiment(t, 6)
	gen := NewModelGenerator(llm.GPT4o())
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "sequential", 4: "parallel"}[workers], func(t *testing.T) {
			r, err := Run(context.Background(), gen, e.ICL, e.Corpus, RunOptions{
				Shots: 5, UseCorrector: true, Workers: workers, DesignBudget: time.Nanosecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Designs) != 6 {
				t.Fatalf("budgeted run yielded %d outcomes, want 6", len(r.Designs))
			}
			for i, o := range r.Designs {
				if o.Index != i {
					t.Errorf("outcome %d carries index %d", i, o.Index)
				}
				if !o.Truncated {
					t.Errorf("design %d not marked Truncated under a 1ns budget", i)
				}
				for _, v := range o.Verdicts {
					if v != VerdictUnknown {
						t.Errorf("design %d holds decided verdict %v under a 1ns budget", i, v)
					}
				}
			}
			if r.Metrics.NPass+r.Metrics.NCEX+r.Metrics.NError != 0 {
				t.Errorf("1ns budget decided verdicts: %v", r.Metrics)
			}
		})
	}
}

// TestDeadlineTruncatesRun: an expired run deadline returns whatever is
// done plus Truncated stubs for the rest — full outcome count, global
// order intact, no stream error. Context timers fire asynchronously, so
// a design may legitimately complete before the 1ns deadline registers;
// we require all-but-one truncated rather than all.
func TestDeadlineTruncatesRun(t *testing.T) {
	e := testExperiment(t, 8)
	gen := NewModelGenerator(llm.GPT4o())
	r, err := Run(context.Background(), gen, e.ICL, e.Corpus, RunOptions{
		Shots: 5, UseCorrector: true, Workers: 4, Deadline: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Designs) != 8 {
		t.Fatalf("deadline run yielded %d outcomes, want 8", len(r.Designs))
	}
	truncated := 0
	for i, o := range r.Designs {
		if o.Index != i {
			t.Errorf("outcome %d carries index %d", i, o.Index)
		}
		if o.Truncated {
			truncated++
		}
	}
	if truncated < len(r.Designs)-1 {
		t.Fatalf("only %d/%d outcomes truncated under a 1ns deadline", truncated, len(r.Designs))
	}
}

// TestStarvedBudgetConvergesOnRerun is the anytime-resumability contract:
// a starved run leaves the pipeline's caches (and cost journal) in a
// state from which an unbudgeted rerun converges to exactly the result a
// never-budgeted process would have produced.
func TestStarvedBudgetConvergesOnRerun(t *testing.T) {
	gen := NewModelGenerator(llm.GPT4o())
	opt := RunOptions{Shots: 5, UseCorrector: true, Workers: 4, Seed: 11}

	// Reference from a process-state untouched by budgets.
	ref := func() RunResult {
		e := testExperiment(t, 8)
		r, err := Run(context.Background(), gen, e.ICL, e.Corpus, opt)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}()

	e := testExperiment(t, 8)
	starved := opt
	starved.DesignBudget = time.Nanosecond
	sr, err := Run(context.Background(), gen, e.ICL, e.Corpus, starved)
	if err != nil {
		t.Fatal(err)
	}
	starvedCount := 0
	for _, o := range sr.Designs {
		if o.Truncated {
			starvedCount++
		}
	}
	if starvedCount == 0 {
		t.Fatal("starved run decided everything — budget not exercised")
	}

	resumed, err := Run(context.Background(), gen, e.ICL, e.Corpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, resumed) {
		t.Errorf("rerun after starved budget differs from the unbudgeted reference\nref:     %+v\nresumed: %+v", ref.Metrics, resumed.Metrics)
	}
}

// TestOnDesignDoneObservesCompletions: the progress hook fires once per
// successful design with its global index, regardless of dispatch order.
func TestOnDesignDoneObservesCompletions(t *testing.T) {
	e := testExperiment(t, 7)
	gen := NewModelGenerator(llm.GPT35())
	var mu sync.Mutex
	seen := make(map[int]int)
	_, err := Run(context.Background(), gen, e.ICL, e.Corpus, RunOptions{
		Shots: 1, Workers: 4,
		OnDesignDone: func(index int, wall, done time.Duration) {
			mu.Lock()
			seen[index]++
			mu.Unlock()
			if wall < 0 || done < wall {
				t.Errorf("design %d reported wall=%v done=%v", index, wall, done)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 7 {
		t.Fatalf("hook observed %d designs, want 7", len(seen))
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("design %d reported %d times", idx, n)
		}
	}
}
