package eval

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"assertionbench/internal/bench"
	"assertionbench/internal/corrector"
	"assertionbench/internal/fpv"
	"assertionbench/internal/llm"
)

// diffFPVResults compares two FPV results field by field (CEX stimulus
// included), "" when identical.
func diffFPVResults(a, b fpv.Result) string {
	switch {
	case a.Status != b.Status:
		return fmt.Sprintf("status %v vs %v", a.Status, b.Status)
	case a.NonVacuous != b.NonVacuous:
		return fmt.Sprintf("nonvacuous %v vs %v", a.NonVacuous, b.NonVacuous)
	case a.Exhaustive != b.Exhaustive:
		return fmt.Sprintf("exhaustive %v vs %v", a.Exhaustive, b.Exhaustive)
	case a.States != b.States:
		return fmt.Sprintf("states %d vs %d", a.States, b.States)
	case a.Depth != b.Depth:
		return fmt.Sprintf("depth %d vs %d", a.Depth, b.Depth)
	case (a.CEX == nil) != (b.CEX == nil):
		return fmt.Sprintf("cex presence %v vs %v", a.CEX != nil, b.CEX != nil)
	}
	if a.CEX == nil {
		return ""
	}
	if a.CEX.ViolationCycle != b.CEX.ViolationCycle || a.CEX.AttemptCycle != b.CEX.AttemptCycle {
		return fmt.Sprintf("cex cycles %d/%d vs %d/%d",
			a.CEX.ViolationCycle, a.CEX.AttemptCycle, b.CEX.ViolationCycle, b.CEX.AttemptCycle)
	}
	if len(a.CEX.Inputs) != len(b.CEX.Inputs) {
		return fmt.Sprintf("cex stimulus length %d vs %d", len(a.CEX.Inputs), len(b.CEX.Inputs))
	}
	for t := range a.CEX.Inputs {
		for i := range a.CEX.Inputs[t] {
			if a.CEX.Inputs[t][i] != b.CEX.Inputs[t][i] {
				return fmt.Sprintf("cex stimulus cycle %d input %d", t, i)
			}
		}
	}
	return ""
}

// TestBatchedMatchesPerPropertyOverCorpus drives the full checked-in
// corpus through the standard generation+correction pipeline and
// compares every batched verdict (shared reachability graph, shared hunt
// traces, in-batch dedup, cached across designs) against the
// per-property reference search, field for field.
func TestBatchedMatchesPerPropertyOverCorpus(t *testing.T) {
	corpus := bench.TestCorpus()
	gen := NewModelGenerator(llm.GPT4o())
	icl := []llm.Example{{
		Name:   "arb2",
		Source: bench.TrainArbiter,
		Assertions: []string{
			"rst == 1 |=> gnt_ == 0;",
			"req1 == 1 && req2 == 0 |-> gnt1 == 1;",
		},
	}}
	opt := fpv.Options{MaxProductStates: 1500, MaxInputBits: 8,
		MaxInputSamples: 8, RandomRuns: 16, RandomDepth: 32, Seed: 1}
	var cache fpv.GraphCache
	batchEng := fpv.NewEngine()
	batchEng.Graphs = &cache
	refEng := fpv.NewEngine()
	offOpt := opt
	offOpt.Batch = fpv.BatchOff
	verdicts := 0
	for gi, d := range corpus {
		nl, err := bench.Elaborate(d)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		out, err := gen.Generate(context.Background(), d, icl, GenOptions{Shots: 1, Seed: 1000003 + int64(gi)*7919 + 1})
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		fixed, _ := corrector.New(nl).CorrectAll(out.Assertions)
		got := batchEng.VerifyAll(context.Background(), nl, fixed, opt)
		want := refEng.VerifyAll(context.Background(), nl, fixed, offOpt)
		for i := range fixed {
			verdicts++
			if got[i].Status == fpv.StatusError && want[i].Status == fpv.StatusError {
				continue // parse/compile errors carry distinct error values
			}
			if d := diffFPVResults(got[i], want[i]); d != "" {
				t.Errorf("%s %q: batched differs from per-property: %s", corpus[gi].Name, fixed[i], d)
			}
		}
	}
	if verdicts < 100 {
		t.Fatalf("corpus comparison covered only %d verdicts", verdicts)
	}
}

// TestBatchedEvalMatchesPerPropertyEval: whole-pipeline equivalence — a
// full eval run with batching on yields byte-identical outcomes to one
// with batching off.
func TestBatchedEvalMatchesPerPropertyEval(t *testing.T) {
	e := testExperiment(t, 24)
	gen := NewModelGenerator(llm.GPT4o())
	run := func(batch string) RunResult {
		r, err := Run(context.Background(), gen, e.ICL, e.Corpus, RunOptions{
			Shots: 5, UseCorrector: true, Workers: 2,
			FPV: fpv.Options{Batch: batch},
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	batched := run(fpv.BatchAuto)
	off := run(fpv.BatchOff)
	if batched.Metrics != off.Metrics {
		t.Fatalf("metrics differ: batched %+v vs per-property %+v", batched.Metrics, off.Metrics)
	}
	for i := range batched.Designs {
		a, b := batched.Designs[i], off.Designs[i]
		if a.Design != b.Design || len(a.Verdicts) != len(b.Verdicts) {
			t.Fatalf("outcome shape differs at %d: %s/%d vs %s/%d", i, a.Design, len(a.Verdicts), b.Design, len(b.Verdicts))
		}
		for k := range a.Verdicts {
			if a.Verdicts[k] != b.Verdicts[k] {
				t.Errorf("%s verdict %d: %v vs %v", a.Design, k, a.Verdicts[k], b.Verdicts[k])
			}
		}
	}
}

// TestBatchedRunCancellation: cancelling a batched run mid-corpus stops
// the workers promptly (inside a design's batch, not just between
// designs), surfaces ctx.Err(), and leaks no goroutines.
func TestBatchedRunCancellation(t *testing.T) {
	e := testExperiment(t, 16)
	gen := NewModelGenerator(llm.GPT4o())
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	var got error
	n := 0
	for _, err := range Stream(ctx, gen, e.ICL, e.Corpus, RunOptions{
		Shots: 5, UseCorrector: true, Workers: 4,
		FPV: fpv.Options{Batch: fpv.BatchAuto},
	}) {
		if err != nil {
			got = err
			break
		}
		n++
		cancel()
	}
	cancel()
	if !errors.Is(got, context.Canceled) {
		t.Fatalf("batched stream after cancel ended with %v, want context.Canceled", got)
	}
	if n == 0 || n >= 16 {
		t.Fatalf("cancellation was not mid-run: %d outcomes yielded", n)
	}
	waitForGoroutines(t, baseline)
}
