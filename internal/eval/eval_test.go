package eval

import (
	"context"
	"strings"
	"testing"

	"assertionbench/internal/bench"
	"assertionbench/internal/fpv"
	"assertionbench/internal/llm"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		r fpv.Result
		v Verdict
	}{
		{fpv.Result{Status: fpv.StatusProven}, VerdictPass},
		{fpv.Result{Status: fpv.StatusVacuous}, VerdictPass},
		{fpv.Result{Status: fpv.StatusBoundedPass}, VerdictPass},
		{fpv.Result{Status: fpv.StatusCEX}, VerdictCEX},
		{fpv.Result{Status: fpv.StatusError}, VerdictError},
	}
	for _, tc := range cases {
		if got := Classify(tc.r); got != tc.v {
			t.Errorf("Classify(%v) = %v, want %v", tc.r.Status, got, tc.v)
		}
	}
}

func TestMetricsFractions(t *testing.T) {
	var m Metrics
	for i := 0; i < 6; i++ {
		m.Add(VerdictPass)
	}
	for i := 0; i < 3; i++ {
		m.Add(VerdictCEX)
	}
	m.Add(VerdictError)
	if m.Total() != 10 {
		t.Fatalf("total = %d", m.Total())
	}
	if m.Pass() != 0.6 || m.CEX() != 0.3 || m.Error() != 0.1 {
		t.Errorf("fractions = %v", m)
	}
	sum := m.Pass() + m.CEX() + m.Error()
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions must sum to 1, got %f", sum)
	}
}

func testExperiment(t *testing.T, n int) *Experiment {
	t.Helper()
	e, err := NewExperiment(context.Background(), ExperimentOptions{MaxDesigns: n})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRunPipelineSmall(t *testing.T) {
	e := testExperiment(t, 8)
	r, err := e.RunCOTS(context.Background(), llm.GPT4o(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Model != "GPT-4o" || r.Shots != 1 {
		t.Errorf("run labelled %s/%d", r.Model, r.Shots)
	}
	if len(r.Designs) != 8 {
		t.Fatalf("evaluated %d designs, want 8", len(r.Designs))
	}
	if r.Metrics.Total() == 0 {
		t.Fatal("no assertions classified")
	}
	for _, d := range r.Designs {
		if len(d.Verdicts) != len(d.Corrected) {
			t.Errorf("%s: %d verdicts for %d corrected lines", d.Design, len(d.Verdicts), len(d.Corrected))
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	e := testExperiment(t, 6)
	a, err := e.RunCOTS(context.Background(), llm.GPT35(), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.RunCOTS(context.Background(), llm.GPT35(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics {
		t.Errorf("same seed, different metrics: %v vs %v", a.Metrics, b.Metrics)
	}
}

func TestRunRejectsTooManyShots(t *testing.T) {
	e := testExperiment(t, 2)
	gen := NewModelGenerator(llm.GPT35())
	if _, err := Run(context.Background(), gen, e.ICL, e.Corpus, RunOptions{Shots: 9}); err == nil {
		t.Fatal("9-shot with 5 examples must fail")
	}
}

func TestCorrectorAblation(t *testing.T) {
	// The corrector must strictly reduce the Error fraction (stage 3 of
	// Fig. 4 exists for a reason).
	e := testExperiment(t, 12)
	gen := NewModelGenerator(llm.GPT35())
	with, err := Run(context.Background(), gen, e.ICL, e.Corpus, RunOptions{Shots: 1, UseCorrector: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(context.Background(), gen, e.ICL, e.Corpus, RunOptions{Shots: 1, UseCorrector: false})
	if err != nil {
		t.Fatal(err)
	}
	if with.Metrics.Error() >= without.Metrics.Error() {
		t.Errorf("corrector did not reduce errors: with=%.3f without=%.3f",
			with.Metrics.Error(), without.Metrics.Error())
	}
}

func TestFinetuneSplitIsDisjointAndCached(t *testing.T) {
	e := testExperiment(t, 16)
	corpus1, evalSet1, err := e.FinetuneSplit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	corpus2, evalSet2, err := e.FinetuneSplit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus1) != len(corpus2) || len(evalSet1) != len(evalSet2) {
		t.Fatal("FinetuneSplit not cached/deterministic")
	}
	// ~75/25 split of the corpus plus the 5 train designs.
	if len(evalSet1) != 4 { // 16/4
		t.Errorf("eval split has %d designs, want 4", len(evalSet1))
	}
	if len(corpus1) != 12+5 {
		t.Errorf("tuning corpus has %d examples, want 17", len(corpus1))
	}
	inEval := map[string]bool{}
	for _, d := range evalSet1 {
		inEval[d.Name] = true
	}
	for _, ex := range corpus1 {
		if inEval[ex.Name] {
			t.Errorf("design %s leaked from eval split into tuning corpus", ex.Name)
		}
	}
}

func TestFigureRenderers(t *testing.T) {
	corpus := bench.TestCorpus()
	if s := TableI(corpus); !strings.Contains(s, "ca_prng") || !strings.Contains(s, "Sequential") {
		t.Error("Table I missing expected rows")
	}
	if s := Figure3(corpus); !strings.Contains(s, "fifo_mem.v") {
		t.Error("Figure 3 missing designs")
	}
	runs := []RunResult{
		{Model: "GPT-3.5", Shots: 1, Metrics: Metrics{NPass: 2, NCEX: 5, NError: 3}},
		{Model: "GPT-3.5", Shots: 5, Metrics: Metrics{NPass: 4, NCEX: 4, NError: 2}},
	}
	if s := Figure6(runs); !strings.Contains(s, "1-shot") || !strings.Contains(s, "5-shot") {
		t.Error("Figure 6 missing shot rows")
	}
	if s := Figure7(runs); !strings.Contains(s, "GPT-3.5") {
		t.Error("Figure 7 missing model rows")
	}
	if s := Figure9(runs); !strings.Contains(s, "pass=") {
		t.Error("Figure 9 missing metrics")
	}
	obs := Observations(runs, nil)
	if !strings.Contains(obs, "Obs 1") || !strings.Contains(obs, "2.00x") {
		t.Errorf("Observations missing the 1->5 shot ratio:\n%s", obs)
	}
}
