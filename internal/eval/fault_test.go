package eval

import (
	"context"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"assertionbench/internal/faults"
	"assertionbench/internal/llm"
)

// injectFault installs a FaultHook for the test and restores the nil
// hook afterwards. Hooks here are written inline rather than through
// internal/faultinject because that package imports eval (the seam it
// installs into), and an in-package test cannot close that cycle.
func injectFault(t *testing.T, hook func(design string, index, attempt int) error) {
	t.Helper()
	if FaultHook != nil {
		t.Fatal("FaultHook already installed")
	}
	FaultHook = hook
	t.Cleanup(func() { FaultHook = nil })
}

// panicOn returns a hook that panics design index's job on every
// attempt with a plain (permanent) panic value.
func panicOn(index int) func(string, int, int) error {
	return func(_ string, i, _ int) error {
		if i == index {
			panic("injected permanent panic")
		}
		return nil
	}
}

// TestErrorPolicyFailByteIdentity pins the acceptance contract: on a
// fault-free corpus, the default run, an explicit ErrorPolicyFail run,
// a run with retries armed, and a continue-policy run are all
// byte-identical to the plain sequential walk.
func TestErrorPolicyFailByteIdentity(t *testing.T) {
	e := testExperiment(t, 6)
	gen := NewModelGenerator(llm.GPT4o())
	base := RunOptions{Shots: 5, UseCorrector: true, Seed: 3, Workers: 1}
	ref, err := Run(context.Background(), gen, e.ICL, e.Corpus, base)
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name string
		mod  func(*RunOptions)
	}{
		{"explicit fail policy", func(o *RunOptions) { o.ErrorPolicy = ErrorPolicyFail }},
		{"retries armed", func(o *RunOptions) { o.Retries = 3 }},
		{"fail policy at 4 workers", func(o *RunOptions) { o.ErrorPolicy = ErrorPolicyFail; o.Workers = 4 }},
		{"continue policy fault-free", func(o *RunOptions) { o.ErrorPolicy = ErrorPolicyContinue; o.Workers = 4 }},
	}
	for _, tc := range variants {
		t.Run(tc.name, func(t *testing.T) {
			opt := base
			tc.mod(&opt)
			r, err := Run(context.Background(), gen, e.ICL, e.Corpus, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, r) {
				t.Errorf("run differs from the plain sequential reference\nref: %+v\ngot: %+v", ref.Metrics, r.Metrics)
			}
		})
	}
}

// TestFailPolicyShortCircuitsOnPanic: under the default policy a
// panicking design ends the run at its corpus position — the yielded
// prefix is exactly what a sequential walk would have kept, at any
// worker count — instead of killing the process.
func TestFailPolicyShortCircuitsOnPanic(t *testing.T) {
	e := testExperiment(t, 6)
	gen := NewModelGenerator(llm.GPT4o())
	base := RunOptions{Shots: 5, UseCorrector: true, Seed: 3, Workers: 1}
	ref, err := Run(context.Background(), gen, e.ICL, e.Corpus, base)
	if err != nil {
		t.Fatal(err)
	}

	const bad = 2
	injectFault(t, panicOn(bad))
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "sequential", 4: "parallel"}[workers], func(t *testing.T) {
			opt := base
			opt.Workers = workers
			r, err := Run(context.Background(), gen, e.ICL, e.Corpus, opt)
			if err == nil {
				t.Fatal("run with a panicking design succeeded")
			}
			if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), e.Corpus[bad].Name) {
				t.Errorf("error %v does not name the panicking design", err)
			}
			if !reflect.DeepEqual(r.Designs, ref.Designs[:bad]) {
				t.Errorf("prefix before the panic differs from the sequential reference (got %d outcomes)", len(r.Designs))
			}
		})
	}
}

// TestContinuePolicyStreamsErroredOutcome: under ErrorPolicyContinue a
// permanently failing design streams as an errored outcome at its
// corpus position, every other design matches the fault-free reference
// field for field, and the run finishes without error.
func TestContinuePolicyStreamsErroredOutcome(t *testing.T) {
	e := testExperiment(t, 6)
	gen := NewModelGenerator(llm.GPT4o())
	base := RunOptions{Shots: 5, UseCorrector: true, Seed: 3, Workers: 1}
	ref, err := Run(context.Background(), gen, e.ICL, e.Corpus, base)
	if err != nil {
		t.Fatal(err)
	}

	const bad = 2
	injectFault(t, panicOn(bad))
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "sequential", 4: "parallel"}[workers], func(t *testing.T) {
			opt := base
			opt.Workers = workers
			opt.ErrorPolicy = ErrorPolicyContinue
			r, err := Run(context.Background(), gen, e.ICL, e.Corpus, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Designs) != len(ref.Designs) {
				t.Fatalf("continue run yielded %d outcomes, want %d", len(r.Designs), len(ref.Designs))
			}
			for i, o := range r.Designs {
				if i == bad {
					if !o.Errored || !strings.Contains(o.Err, "panicked") {
						t.Errorf("design %d not streamed as an errored outcome: %+v", i, o)
					}
					if len(o.Verdicts) != 0 {
						t.Errorf("errored outcome carries %d verdicts", len(o.Verdicts))
					}
					continue
				}
				if !reflect.DeepEqual(o, ref.Designs[i]) {
					t.Errorf("unfaulted design %d differs from the reference", i)
				}
			}
			if r.Metrics.NErrored != 1 {
				t.Errorf("NErrored = %d, want 1", r.Metrics.NErrored)
			}
		})
	}
}

// TestRetriesAbsorbTransientFaults: a fault injected on the first two
// attempts of one design vanishes entirely under Retries >= 2 — the
// run equals the fault-free reference — while Retries = 1 exhausts and
// surfaces through the error policy.
func TestRetriesAbsorbTransientFaults(t *testing.T) {
	e := testExperiment(t, 6)
	gen := NewModelGenerator(llm.GPT4o())
	base := RunOptions{Shots: 5, UseCorrector: true, Seed: 3, Workers: 4}
	ref, err := Run(context.Background(), gen, e.ICL, e.Corpus, base)
	if err != nil {
		t.Fatal(err)
	}

	const flaky = 1
	injectFault(t, func(_ string, i, attempt int) error {
		if i == flaky && attempt <= 2 {
			return faults.Transientf("injected transient fault (attempt %d)", attempt)
		}
		return nil
	})

	opt := base
	opt.Retries = 2
	r, err := Run(context.Background(), gen, e.ICL, e.Corpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, r) {
		t.Error("retried run differs from the fault-free reference")
	}

	opt.Retries = 1
	if _, err := Run(context.Background(), gen, e.ICL, e.Corpus, opt); err == nil {
		t.Error("run with too few retries succeeded under a 2-attempt fault")
	}

	opt.ErrorPolicy = ErrorPolicyContinue
	r, err = Run(context.Background(), gen, e.ICL, e.Corpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Designs) != 6 || !r.Designs[flaky].Errored {
		t.Errorf("exhausted retries under continue did not stream an errored outcome: %+v", r.Designs[flaky])
	}

	// A permanent (non-transient) failure must not burn retries at all:
	// the hook counts attempts and the job fails on the first.
	FaultHook = nil
	var mu sync.Mutex
	attempts := 0
	injected := func(_ string, i, _ int) error {
		if i != flaky {
			return nil
		}
		mu.Lock()
		attempts++
		mu.Unlock()
		panic("permanent")
	}
	FaultHook = injected
	opt = base
	opt.Retries = 5
	if _, err := Run(context.Background(), gen, e.ICL, e.Corpus, opt); err == nil {
		t.Error("permanently panicking design succeeded")
	}
	if attempts != 1 {
		t.Errorf("permanent failure consumed %d attempts, want 1", attempts)
	}
}

// TestBackoffIsPureAndBounded: the retry delay is a pure function of
// (seed, index, attempt) with the documented envelope — equal inputs
// give equal delays (no wall clock, no shared RNG), different indices
// decorrelate, and every delay stays within [base/2, base] for the
// capped exponential base.
func TestBackoffIsPureAndBounded(t *testing.T) {
	for attempt := 1; attempt <= 12; attempt++ {
		base := time.Millisecond << min(attempt-1, 7)
		if base > 100*time.Millisecond {
			base = 100 * time.Millisecond
		}
		for _, seed := range []int64{1, 7, 99} {
			for _, idx := range []int{0, 3, 64} {
				d1 := backoff(seed, idx, attempt)
				d2 := backoff(seed, idx, attempt)
				if d1 != d2 {
					t.Fatalf("backoff(%d,%d,%d) not deterministic: %v vs %v", seed, idx, attempt, d1, d2)
				}
				if d1 < base/2 || d1 > base {
					t.Errorf("backoff(%d,%d,%d) = %v outside [%v, %v]", seed, idx, attempt, d1, base/2, base)
				}
			}
		}
	}
	if backoff(1, 0, 1) == backoff(1, 1, 1) && backoff(1, 0, 2) == backoff(1, 1, 2) {
		t.Error("jitter does not vary with the design index")
	}
}

// TestPanicPathLeaksNoGoroutines: a design that panics mid-run leaves
// no goroutines behind and the reorder buffer drained, at 1 and 4
// workers, under both error policies (extends the cancel_test.go
// counting harness to the fault path).
func TestPanicPathLeaksNoGoroutines(t *testing.T) {
	e := testExperiment(t, 8)
	gen := NewModelGenerator(llm.GPT4o())
	injectFault(t, panicOn(3))
	for _, workers := range []int{1, 4} {
		for _, policy := range []string{ErrorPolicyFail, ErrorPolicyContinue} {
			t.Run(map[int]string{1: "sequential", 4: "parallel"}[workers]+"/"+policy, func(t *testing.T) {
				baseline := runtime.NumGoroutine()
				r, err := Run(context.Background(), gen, e.ICL, e.Corpus, RunOptions{
					Shots: 1, Workers: workers, ErrorPolicy: policy,
				})
				switch policy {
				case ErrorPolicyFail:
					if err == nil {
						t.Fatal("fail policy swallowed the panic")
					}
					if len(r.Designs) != 3 {
						t.Errorf("prefix = %d outcomes, want 3", len(r.Designs))
					}
				case ErrorPolicyContinue:
					if err != nil {
						t.Fatal(err)
					}
					if len(r.Designs) != 8 {
						t.Errorf("continue run yielded %d outcomes, want 8", len(r.Designs))
					}
				}
				waitForGoroutines(t, baseline)
			})
		}
	}
}
