package eval

import (
	"context"
	"sort"
	"sync"
	"time"

	"assertionbench/internal/bench"
	"assertionbench/internal/verilog"
)

// Cost-aware work-stealing dispatch. The planner predicts each design's
// verification cost — the journaled wall time of a prior run when the
// cost journal (bench.LoadCost, persisted through the artifact store)
// has one, a static estimate from the compiled program otherwise — and
// assigns jobs largest-first across per-worker deques (classic LPT: each
// job goes to the least-loaded worker, so no worker is left holding a
// straggler the others cannot help with). Each owner then drains its own
// deque cheapest-first — shortest-processing-time order, which minimizes
// the completion-time percentiles the tail gate measures — while an idle
// worker steals the costliest pending job from the most-loaded victim,
// so a mispredicted heavy job still ends up shared instead of pinning
// one worker.
//
// Dispatch order never touches output: every completed job is keyed by
// its global corpus index into the in-order reorder buffer, so
// Stream/Run/shard concatenation stay byte-identical to a sequential
// walk at the same seed (dverify oracle 10, mutation-tested through
// SchedIndexHook).

// Dispatch modes for RunOptions.Dispatch.
const (
	// DispatchCost plans by predicted per-design cost over stealing
	// deques (the default).
	DispatchCost = "cost"
	// DispatchContiguous statically partitions the corpus into balanced
	// contiguous per-worker slices with no stealing — the pre-cost-model
	// dispatch, kept as the perfbench tail-latency baseline.
	DispatchContiguous = "contiguous"
	// DispatchFIFO hands out indices in corpus order from one shared
	// queue (greedy pickup, no planning).
	DispatchFIFO = "fifo"
)

// ValidDispatch reports whether s names a dispatch mode ("" selects the
// default, DispatchCost).
func ValidDispatch(s string) bool {
	return s == "" || s == DispatchCost || s == DispatchContiguous || s == DispatchFIFO
}

// SchedIndexHook, when non-nil, remaps a completed job's corpus index to
// its slot in the in-order reorder buffer. It exists solely as a
// mutation seam for the differential harness: oracle 10's mutation test
// installs an index swap to prove the scheduled-vs-sequential comparison
// actually fails when the merge path misroutes a result — exactly the
// bug class reordered dispatch could introduce and result comparison
// must catch. Never set in production.
var SchedIndexHook func(int) int

// schedJob is one planned unit of work: a local design index and its
// predicted cost (microsecond scale; relative order is all that
// matters).
type schedJob struct {
	idx  int
	cost uint64
}

// workerDeque is one worker's planned queue, ordered costliest-first:
// the owner pops the tail (cheapest), thieves pop the head (costliest).
type workerDeque struct {
	mu   sync.Mutex
	jobs []schedJob
	load uint64
}

func (q *workerDeque) popTail() (schedJob, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.jobs)
	if n == 0 {
		return schedJob{}, false
	}
	j := q.jobs[n-1]
	q.jobs = q.jobs[:n-1]
	q.load -= j.cost
	return j, true
}

func (q *workerDeque) popHead() (schedJob, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.jobs) == 0 {
		return schedJob{}, false
	}
	j := q.jobs[0]
	q.jobs = q.jobs[1:]
	q.load -= j.cost
	return j, true
}

func (q *workerDeque) remaining() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.load
}

// scheduler holds the planned deques for one run.
type scheduler struct {
	queues   []*workerDeque
	stealing bool
}

// next returns worker w's next job: its own cheapest pending job, or —
// when its deque is dry and stealing is on — the costliest pending job
// of the most-loaded victim. ok=false means the run is out of work for
// this worker.
func (s *scheduler) next(w int) (schedJob, bool) {
	if j, ok := s.queues[w].popTail(); ok {
		return j, true
	}
	if !s.stealing {
		return schedJob{}, false
	}
	for {
		victim := -1
		var max uint64
		for i, q := range s.queues {
			if i == w {
				continue
			}
			if load := q.remaining(); load > max {
				victim, max = i, load
			}
		}
		if victim < 0 {
			return schedJob{}, false
		}
		if j, ok := s.queues[victim].popHead(); ok {
			return j, true
		}
		// Raced another thief to the victim's last job; loads only
		// shrink, so rescanning terminates.
	}
}

// newScheduler plans the run. Cost mode sorts jobs by descending
// predicted cost (ties broken by ascending index, so plans are
// deterministic) and LPT-assigns each to the least-loaded worker;
// contiguous mode reproduces the balanced contiguous split the shard
// contract uses, with stealing off. Indices in skip — designs a
// resumed run serves from its manifest — are never planned at all, so
// a resume does zero work (not even cost prediction) for them.
func newScheduler(ctx context.Context, designs []bench.Design, workers int, dispatch string, skip map[int]bool) *scheduler {
	s := &scheduler{queues: make([]*workerDeque, workers)}
	for w := range s.queues {
		s.queues[w] = &workerDeque{}
	}
	if dispatch == DispatchContiguous {
		// Worker w owns designs [start, start+size): the first
		// len%workers workers take one extra. Appended in reverse so the
		// owner's tail pop walks the slice in index order.
		base, extra := len(designs)/workers, len(designs)%workers
		start := 0
		for w := 0; w < workers; w++ {
			size := base
			if w < extra {
				size++
			}
			q := s.queues[w]
			for i := start + size - 1; i >= start; i-- {
				if skip[i] {
					continue
				}
				q.jobs = append(q.jobs, schedJob{idx: i, cost: 1})
				q.load++
			}
			start += size
		}
		return s
	}
	s.stealing = true
	costs := make([]uint64, len(designs))
	for i := range designs {
		if skip[i] || ctx.Err() != nil {
			// A canceled run plans nothing further; workers will see the
			// cancellation before evaluating whatever is queued. Skipped
			// (resume-resolved) designs are never even predicted.
			costs[i] = 1
			continue
		}
		costs[i] = predictCost(designs[i])
	}
	order := make([]int, len(designs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if costs[ia] != costs[ib] {
			return costs[ia] > costs[ib]
		}
		return ia < ib
	})
	for _, i := range order {
		if skip[i] {
			continue
		}
		w := 0
		for v := 1; v < workers; v++ {
			if s.queues[v].load < s.queues[w].load {
				w = v
			}
		}
		q := s.queues[w]
		q.jobs = append(q.jobs, schedJob{idx: i, cost: costs[i]})
		q.load += costs[i]
	}
	return s
}

// predictCost estimates one design's verification wall time in
// microseconds: the cost journal's observation when one exists
// (elaboration goes through the process-wide cache, so the planner's
// walk is amortized against the workers' own lookups), a static
// estimate from the compiled program otherwise. A design that fails to
// elaborate is nearly free — its job errors immediately.
func predictCost(d bench.Design) uint64 {
	nl, err := bench.Elaborate(d)
	if err != nil {
		return 1
	}
	if w, ok := bench.LoadCost(nl); ok {
		return uint64(w/time.Microsecond) + 1
	}
	return staticCost(nl)
}

// staticCost is the cold-start cost model: explored states times
// per-state step cost. State count is capped the way the engine's own
// bounded mode caps it (wide designs degrade to sampled search whose
// work is roughly the same cap), and the per-step cost follows the
// compiled program's instruction count. The scale roughly lands in
// microseconds, but only the relative order matters — and after one run
// the journal overrides it with measurements.
func staticCost(nl *verilog.Netlist) uint64 {
	sb := nl.StateBits()
	if sb > 20 {
		sb = 20
	}
	states := uint64(1) << uint(sb)
	if states > 4096 {
		states = 4096
	}
	step := uint64(len(nl.Program().Code)) + 16
	return states*step/100 + 1
}
