package eval

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"assertionbench/internal/llm"
)

// waitForGoroutines polls until the goroutine count returns to (or below)
// the baseline, failing the test after the deadline. Cheaper than a full
// goleak dependency and sufficient for the runner's pool, whose workers
// exit within one design job of cancellation.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunCancellation: cancelling mid-run stops the workers promptly
// (bounded by one design job each), surfaces ctx.Err(), and leaks no
// goroutines.
func TestRunCancellation(t *testing.T) {
	e := testExperiment(t, 16)
	gen := NewModelGenerator(llm.GPT4o())
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	var got error
	n := 0
	for _, err := range Stream(ctx, gen, e.ICL, e.Corpus, RunOptions{Shots: 5, UseCorrector: true, Workers: 4}) {
		if err != nil {
			got = err
			break
		}
		// Cancel as soon as the first outcome lands, mid-corpus.
		n++
		cancel()
	}
	cancel()
	if !errors.Is(got, context.Canceled) {
		t.Fatalf("stream after cancel ended with %v, want context.Canceled", got)
	}
	if n == 0 || n >= 16 {
		t.Fatalf("cancellation was not mid-run: %d outcomes yielded", n)
	}
	waitForGoroutines(t, baseline)
}

// TestRunPreCanceledContext: a run that starts canceled does no work and
// returns ctx.Err() with an empty partial result.
func TestRunPreCanceledContext(t *testing.T) {
	e := testExperiment(t, 4)
	gen := NewModelGenerator(llm.GPT35())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := Run(ctx, gen, e.ICL, e.Corpus, RunOptions{Shots: 1, Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(r.Designs) != 0 {
		t.Errorf("pre-canceled run produced %d outcomes", len(r.Designs))
	}
}

// TestStreamEarlyBreakDrainsWorkers: a consumer that stops iterating
// mid-stream must not leak the pool, whichever dispatcher fed it.
func TestStreamEarlyBreakDrainsWorkers(t *testing.T) {
	e := testExperiment(t, 12)
	gen := NewModelGenerator(llm.GPT35())
	for _, dispatch := range []string{DispatchCost, DispatchContiguous, DispatchFIFO} {
		t.Run(dispatch, func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			n := 0
			for _, err := range Stream(context.Background(), gen, e.ICL, e.Corpus, RunOptions{Shots: 1, Workers: 4, Dispatch: dispatch}) {
				if err != nil {
					t.Fatal(err)
				}
				n++
				if n == 2 {
					break
				}
			}
			if n != 2 {
				t.Fatalf("broke after %d outcomes", n)
			}
			waitForGoroutines(t, baseline)
		})
	}
}

// TestMidStealCancellationDrains: cancelling while the cost dispatcher's
// workers are draining (and stealing from) their deques stops the pool
// within one design job each, surfaces ctx.Err(), and leaks nothing. The
// worker count exceeds what the LPT plan can keep busy evenly on this
// small corpus, so steals are in play when the cancellation lands.
func TestMidStealCancellationDrains(t *testing.T) {
	e := testExperiment(t, 20)
	gen := NewModelGenerator(llm.GPT4o())
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	var got error
	n := 0
	for _, err := range Stream(ctx, gen, e.ICL, e.Corpus, RunOptions{Shots: 5, UseCorrector: true, Workers: 8, Dispatch: DispatchCost}) {
		if err != nil {
			got = err
			break
		}
		n++
		if n == 3 {
			cancel()
		}
	}
	cancel()
	if !errors.Is(got, context.Canceled) {
		t.Fatalf("stream after mid-steal cancel ended with %v, want context.Canceled", got)
	}
	if n < 3 || n >= 20 {
		t.Fatalf("cancellation was not mid-run: %d outcomes yielded", n)
	}
	waitForGoroutines(t, baseline)
}

// TestSequentialRunCancellation covers the workers<=1 fast path, which
// has no pool but must honor the same contract.
func TestSequentialRunCancellation(t *testing.T) {
	e := testExperiment(t, 8)
	gen := NewModelGenerator(llm.GPT35())
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	var got error
	for _, err := range Stream(ctx, gen, e.ICL, e.Corpus, RunOptions{Shots: 1, Workers: 1}) {
		if err != nil {
			got = err
			break
		}
		n++
		cancel()
	}
	cancel()
	if !errors.Is(got, context.Canceled) {
		t.Fatalf("sequential stream ended with %v, want context.Canceled", got)
	}
	if n != 1 {
		t.Fatalf("sequential stream yielded %d outcomes after cancel, want 1", n)
	}
}
