package eval

import (
	"context"
	"reflect"
	"testing"

	"assertionbench/internal/llm"
	"assertionbench/internal/mine"
)

// collectStream drains a stream into the same shape Run produces.
func collectStream(t *testing.T, ctx context.Context, gen Generator, examples []llm.Example, e *Experiment, opt RunOptions) RunResult {
	t.Helper()
	res := RunResult{Model: gen.Name(), Shots: opt.withDefaults().Shots}
	for o, err := range Stream(ctx, gen, examples, e.Corpus, opt) {
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range o.Verdicts {
			res.Metrics.Add(v)
		}
		res.Metrics.NStatic += o.StaticDischarged
		res.Designs = append(res.Designs, o)
	}
	return res
}

// TestStreamMatchesRun is the stream/batch equivalence contract: the
// collected stream must be identical to Run's RunResult at the same seed,
// for sequential, parallel, and sharded configurations.
func TestStreamMatchesRun(t *testing.T) {
	e := testExperiment(t, 10)
	gen := NewModelGenerator(llm.GPT4o())
	base := RunOptions{Shots: 5, UseCorrector: true, Seed: 3}

	configs := []struct {
		name string
		mod  func(*RunOptions)
	}{
		{"sequential", func(o *RunOptions) { o.Workers = 1 }},
		{"parallel", func(o *RunOptions) { o.Workers = 4 }},
		{"sharded", func(o *RunOptions) { o.Workers = 2; o.ShardIndex = 1; o.ShardCount = 3 }},
		{"contiguous", func(o *RunOptions) { o.Workers = 4; o.Dispatch = DispatchContiguous }},
		{"fifo", func(o *RunOptions) { o.Workers = 4; o.Dispatch = DispatchFIFO }},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			opt := base
			cfg.mod(&opt)
			batch, err := Run(context.Background(), gen, e.ICL, e.Corpus, opt)
			if err != nil {
				t.Fatal(err)
			}
			streamed := collectStream(t, context.Background(), gen, e.ICL, e, opt)
			if !reflect.DeepEqual(batch, streamed) {
				t.Errorf("stream differs from batch\nbatch:  %+v\nstream: %+v", batch.Metrics, streamed.Metrics)
			}
		})
	}
}

// TestStreamShardsConcatenate: concatenating every shard's stream must
// reproduce the unsharded stream, outcome for outcome, with global
// indices intact.
func TestStreamShardsConcatenate(t *testing.T) {
	e := testExperiment(t, 9)
	gen := NewModelGenerator(llm.GPT35())
	opt := RunOptions{Shots: 1, UseCorrector: true, Seed: 5, Workers: 2}

	full := collectStream(t, context.Background(), gen, e.ICL, e, opt)
	var merged []DesignOutcome
	const shards = 3
	for i := 0; i < shards; i++ {
		sOpt := opt
		sOpt.ShardIndex, sOpt.ShardCount = i, shards
		part := collectStream(t, context.Background(), gen, e.ICL, e, sOpt)
		merged = append(merged, part.Designs...)
	}
	if !reflect.DeepEqual(full.Designs, merged) {
		t.Error("concatenated shard streams differ from the unsharded stream")
	}
	for i, o := range merged {
		if o.Index != i {
			t.Errorf("outcome %d carries global index %d", i, o.Index)
		}
	}
}

// TestStreamYieldsInOrder: outcomes arrive with strictly increasing
// corpus indices even under a parallel pool.
func TestStreamYieldsInOrder(t *testing.T) {
	e := testExperiment(t, 8)
	gen := NewModelGenerator(llm.GPT35())
	next := 0
	for o, err := range Stream(context.Background(), gen, e.ICL, e.Corpus, RunOptions{Shots: 1, Workers: 4}) {
		if err != nil {
			t.Fatal(err)
		}
		if o.Index != next {
			t.Fatalf("outcome %d arrived out of order (index %d)", next, o.Index)
		}
		next++
	}
	if next != 8 {
		t.Fatalf("stream yielded %d outcomes, want 8", next)
	}
}

// TestMinerGeneratorThroughPipeline: a classical miner registered via the
// Generator interface runs through the same pipeline as an LLM model end
// to end — and, being FPV-filtered at the source, never produces CEX or
// error verdicts.
func TestMinerGeneratorThroughPipeline(t *testing.T) {
	e := testExperiment(t, 6)
	gen := GoldMineGenerator(mine.Options{MaxAssertions: 4})
	r, err := Run(context.Background(), gen, e.ICL, e.Corpus, RunOptions{Shots: 1, UseCorrector: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Model != "GOLDMINE" {
		t.Errorf("run labelled %q", r.Model)
	}
	if len(r.Designs) != 6 {
		t.Fatalf("evaluated %d designs, want 6", len(r.Designs))
	}
	if r.Metrics.Total() == 0 {
		t.Fatal("miner produced no classified assertions")
	}
	if r.Metrics.NError > 0 {
		t.Errorf("FPV-filtered miner output produced %d error verdicts", r.Metrics.NError)
	}
	// The miner's pipeline must be deterministic like any generator's.
	again, err := Run(context.Background(), gen, e.ICL, e.Corpus, RunOptions{Shots: 1, UseCorrector: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, again) {
		t.Error("miner run differs between worker counts")
	}
}
