package eval

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"assertionbench/internal/bench"
	"assertionbench/internal/corrector"
	"assertionbench/internal/faults"
	"assertionbench/internal/fpv"
	"assertionbench/internal/llm"
)

// The concurrent evaluation runner. A run decomposes into one job per
// design; jobs are planned onto a bounded worker pool by the cost-aware
// dispatcher (sched.go) and their results streamed back in corpus order,
// so both the incremental Stream and the batch Run (a collector over the
// stream) are identical to a sequential walk at the same seed:
//
//   - every per-design random stream is seeded from the design's GLOBAL
//     corpus index (not its position in a shard, a deque, or the order
//     workers happened to pick jobs up), and generation/verification
//     allocate a fresh seeded rand.Rand per call — no worker ever touches
//     a shared or unseeded source on the concurrent path;
//   - each worker owns one Verifier built by RunOptions.NewVerifier (the
//     default reuses one fpv.Engine per worker instead of reallocating
//     between assertions);
//   - elaborated netlists come from the process-wide bench.DefaultElab
//     cache and are immutable, so workers share them read-only.
//
// Cancellation: ctx is polled by every worker between and inside jobs
// (generation loops and FPV search loops poll it too) and by the
// in-order emitter. A canceled run stops within one design job per
// worker, leaks no goroutines, and surfaces ctx.Err(). Anytime budgets
// (RunOptions.Deadline / DesignBudget) ride the same plumbing as derived
// context deadlines, but expiry is not an error: it truncates.

type jobResult struct {
	outcome DesignOutcome
	err     error
}

type indexedResult struct {
	idx int
	res jobResult
}

// streamJobs evaluates designs[i] for every i, in parallel when
// opt.Workers allows, and yields outcomes strictly in corpus order, each
// the moment it and all its predecessors are done. base is the global
// corpus index of designs[0]. The first per-design error (lowest corpus
// index, identical to what a sequential walk would hit) is yielded as the
// final element and ends the stream.
func streamJobs(ctx context.Context, gen Generator, icl []llm.Example, designs []bench.Design, base int, opt RunOptions, yield func(DesignOutcome, error) bool) {
	// Run-manifest plumbing (manifest.go): with an artifact store
	// attached, decided outcomes are journaled write-behind as they
	// complete, and with Resume set the outcomes a previous run already
	// decided are served directly — their designs are never dispatched,
	// so no generation or verification happens for them. skip holds the
	// resolved local indices for the dispatchers below.
	var rec *manifestRecorder
	var done map[int]DesignOutcome
	var skip map[int]bool
	if store := bench.DiskStore(); store != nil {
		rec = newManifestRecorder(store, manifestKey(gen.Name(), designs, base, opt))
		if opt.Resume {
			done = rec.resume()
		}
	}
	if len(done) > 0 {
		skip = make(map[int]bool, len(done))
		for g := range done {
			skip[g-base] = true
		}
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(designs) {
		workers = len(designs)
	}
	start := time.Now()
	if workers <= 1 {
		runCtx := ctx
		if opt.Deadline > 0 {
			var rcancel context.CancelFunc
			runCtx, rcancel = context.WithTimeout(ctx, opt.Deadline)
			defer rcancel()
		}
		v := opt.NewVerifier()
		for i := range designs {
			if o, ok := done[base+i]; ok {
				if !yield(o, nil) {
					return
				}
				continue
			}
			jr := runJob(ctx, runCtx, gen, v, icl, designs[i], base+i, opt, start, rec)
			if jr.err != nil {
				yield(DesignOutcome{}, jr.err)
				return
			}
			if !yield(jr.outcome, nil) {
				return
			}
		}
		return
	}

	// The concurrent path: the dispatcher hands jobs to a pool of
	// workers, and the emitter below reorders completions back into
	// corpus order. The derived pool context tears the pool down on any
	// exit path (consumer break, external cancellation, first error);
	// the run-deadline context is layered inside it so budget expiry
	// truncates without tearing anything down. results is buffered to
	// capacity so workers can never block on a consumer that has stopped
	// reading.
	poolCtx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	defer wg.Wait()
	defer cancel()
	runCtx := context.Context(poolCtx)
	if opt.Deadline > 0 {
		var rcancel context.CancelFunc
		runCtx, rcancel = context.WithTimeout(poolCtx, opt.Deadline)
		defer rcancel()
	}

	results := make(chan indexedResult, len(designs))
	post := func(i int, jr jobResult) {
		// SchedIndexHook is the oracle-10 mutation seam: it misroutes a
		// result to the wrong reorder slot, which scheduled-vs-sequential
		// comparison must catch. Production leaves it nil.
		slot := i
		if SchedIndexHook != nil {
			slot = SchedIndexHook(slot)
		}
		results <- indexedResult{idx: slot, res: jr}
	}

	// Resume-resolved designs post their manifest outcomes straight into
	// the reorder buffer (it is buffered to the full corpus, so this can
	// never block); the dispatchers below skip their indices entirely.
	for i := range designs {
		if o, ok := done[base+i]; ok {
			post(i, jobResult{outcome: o})
		}
	}

	if opt.Dispatch == DispatchFIFO {
		// Legacy dispatch: a feeder hands out indices in corpus order
		// over one shared channel; greedy pickup keeps the pool busy
		// without any planning.
		jobs := make(chan int)
		var failed atomic.Bool
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				v := opt.NewVerifier()
				for i := range jobs {
					jr := runJob(poolCtx, runCtx, gen, v, icl, designs[i], base+i, opt, start, rec)
					if jr.err != nil {
						// Stops the feeder. Jobs are fed in index order,
						// so every job below the erroring index is already
						// assigned and completes normally — the emitter
						// (which stops at the lowest erroring index) sees
						// exactly what a sequential run would have
						// produced.
						failed.Store(true)
					}
					post(i, jr)
					if poolCtx.Err() != nil {
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(jobs)
			for i := range designs {
				if skip[i] {
					continue
				}
				if failed.Load() {
					return
				}
				select {
				case jobs <- i:
				case <-poolCtx.Done():
					return
				}
			}
		}()
	} else {
		// Planned dispatch (cost or contiguous): per-worker deques,
		// populated up front. Jobs run out of corpus order, so the
		// first-error contract needs an atomic minimum instead of a stop
		// flag: a job above the lowest erroring index is skipped (the
		// emitter will never consume it), while everything below keeps
		// running because the emitter needs the complete prefix.
		sched := newScheduler(poolCtx, designs, workers, opt.Dispatch, skip)
		var minFailed atomic.Int64
		minFailed.Store(int64(len(designs)))
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				v := opt.NewVerifier()
				for {
					j, ok := sched.next(w)
					if !ok {
						return
					}
					if int64(j.idx) > minFailed.Load() {
						continue
					}
					jr := runJob(poolCtx, runCtx, gen, v, icl, designs[j.idx], base+j.idx, opt, start, rec)
					if jr.err != nil {
						for {
							cur := minFailed.Load()
							if int64(j.idx) >= cur || minFailed.CompareAndSwap(cur, int64(j.idx)) {
								break
							}
						}
					}
					post(j.idx, jr)
					if poolCtx.Err() != nil {
						return
					}
				}
			}(w)
		}
	}

	// In-order emitter: completions arrive in whatever order workers
	// finish; outcome i is yielded the moment it and all predecessors are
	// available, so consumers see a deterministic, incrementally delivered
	// sequence.
	pending := make(map[int]jobResult, workers)
	for next := 0; next < len(designs); next++ {
		// The results channel is buffered, so completions can pile up ahead
		// of the consumer; a cancellation must still win over drained
		// results, exactly as the sequential path's per-job ctx check does.
		if err := poolCtx.Err(); err != nil {
			yield(DesignOutcome{}, err)
			return
		}
		jr, ok := pending[next]
		for !ok {
			select {
			case r := <-results:
				if r.idx == next {
					jr, ok = r.res, true
				} else {
					pending[r.idx] = r.res
				}
			case <-poolCtx.Done():
				yield(DesignOutcome{}, poolCtx.Err())
				return
			}
		}
		delete(pending, next)
		if jr.err != nil {
			yield(DesignOutcome{}, jr.err)
			return
		}
		if !yield(jr.outcome, nil) {
			return
		}
	}
}

// runJob wraps one design evaluation with the concerns that are not the
// job's own: an exhausted run deadline turns the design into a truncated
// stub instead of evaluating it; attempts run with panic isolation
// (attemptJob); a transient failure retries up to opt.Retries times
// under the deterministic backoff schedule (retry.go); a failure that
// survives retries either ends the run (ErrorPolicyFail) or becomes an
// errored outcome at this design's corpus position
// (ErrorPolicyContinue); decided outcomes are journaled into the run
// manifest; and completed designs are reported to OnDesignDone with
// their wall and completion-since-start times.
func runJob(ctx, runCtx context.Context, gen Generator, v Verifier, icl []llm.Example, d bench.Design, globalIdx int, opt RunOptions, start time.Time, rec *manifestRecorder) jobResult {
	if err := ctx.Err(); err != nil {
		return jobResult{err: err}
	}
	if runCtx.Err() != nil {
		return jobResult{outcome: DesignOutcome{Index: globalIdx, Design: d.Name, Truncated: true}}
	}
	t0 := time.Now()
	jr := attemptJob(ctx, runCtx, gen, v, icl, d, globalIdx, 1, opt)
	for attempt := 1; jr.err != nil && attempt <= opt.Retries && faults.IsTransient(jr.err) && ctx.Err() == nil; attempt++ {
		if RetryDropHook != nil && RetryDropHook(globalIdx, attempt) {
			break
		}
		if !sleepBackoff(ctx, backoff(opt.Seed, globalIdx, attempt)) {
			return jobResult{err: ctx.Err()}
		}
		if runCtx.Err() != nil {
			return jobResult{outcome: DesignOutcome{Index: globalIdx, Design: d.Name, Truncated: true}}
		}
		jr = attemptJob(ctx, runCtx, gen, v, icl, d, globalIdx, attempt+1, opt)
	}
	if jr.err != nil {
		// Cancellation is never converted to an outcome: a canceled run
		// must end with ctx.Err() under either policy.
		if opt.ErrorPolicy == ErrorPolicyContinue && ctx.Err() == nil && !errors.Is(jr.err, context.Canceled) {
			return jobResult{outcome: DesignOutcome{Index: globalIdx, Design: d.Name, Errored: true, Err: jr.err.Error()}}
		}
		return jr
	}
	rec.record(jr.outcome)
	if opt.OnDesignDone != nil {
		opt.OnDesignDone(globalIdx, time.Since(t0), time.Since(start))
	}
	return jr
}

// Stream evaluates a Generator on the corpus and yields one DesignOutcome
// per design, in corpus order, each delivered as soon as it (and every
// design before it) finishes — the paper's Fig. 4 (with corrector) or
// Fig. 8 (without) pipeline as an incremental sequence. The sequence ends
// after the last design, or early with a single non-nil error: the first
// per-design failure (at the same corpus position a sequential walk would
// fail), or ctx.Err() on cancellation. Outcomes already yielded before an
// error are exactly the prefix a sequential run would have kept.
//
// The yielded stream is deterministic: at equal seed it is identical for
// any Workers count and any Dispatch mode, and shard streams concatenate
// to the unsharded stream. Breaking out of the iteration early cancels
// and drains the worker pool before the iterator returns.
//
// With an anytime budget set (RunOptions.Deadline / DesignBudget) the
// stream still covers every design and still ends without error on
// budget expiry: finished designs keep their verdicts, interrupted ones
// carry decided verdicts plus VerdictUnknown with Truncated set, and
// designs the deadline beat entirely stream as truncated stubs.
//
// Fault tolerance rides the same contract. Each design job runs with
// panic isolation; transient failures retry up to RunOptions.Retries
// with deterministic backoff; what still fails then either ends the
// stream (ErrorPolicyFail, the default — byte-identical to the original
// first-error semantics) or streams as an errored outcome at its corpus
// position while the run finishes (ErrorPolicyContinue). With an
// artifact store attached, every decided outcome is journaled into a
// crash-safe run manifest as it completes, and RunOptions.Resume serves
// decided outcomes from that manifest instead of re-evaluating them —
// a killed run resumed this way yields the exact stream of a run that
// was never interrupted (dverify oracle 11).
func Stream(ctx context.Context, gen Generator, examples []llm.Example, corpus []bench.Design, opt RunOptions) iter.Seq2[DesignOutcome, error] {
	return func(yield func(DesignOutcome, error) bool) {
		opt = opt.withDefaults()
		if opt.Shots > len(examples) {
			yield(DesignOutcome{}, fmt.Errorf("eval: %d-shot requested but only %d examples", opt.Shots, len(examples)))
			return
		}
		// A bad backend or batch string would otherwise surface as
		// StatusError on every single verdict — a "successful" run of
		// garbage metrics.
		if !fpv.ValidBackend(opt.FPV.Backend) {
			yield(DesignOutcome{}, fmt.Errorf("eval: unknown execution backend %q (want %q or %q)",
				opt.FPV.Backend, fpv.BackendCompiled, fpv.BackendInterp))
			return
		}
		if !fpv.ValidBatch(opt.FPV.Batch) {
			yield(DesignOutcome{}, fmt.Errorf("eval: unknown batch mode %q (want %q or %q)",
				opt.FPV.Batch, fpv.BatchAuto, fpv.BatchOff))
			return
		}
		if !fpv.ValidStatic(opt.FPV.Static) {
			yield(DesignOutcome{}, fmt.Errorf("eval: unknown static mode %q (want %q or %q)",
				opt.FPV.Static, fpv.StaticAuto, fpv.StaticOff))
			return
		}
		// Scheduler-adjacent knobs fail fast with a clear message rather
		// than silently clamping: a negative worker count or budget is
		// always a caller bug, and a mistyped dispatch mode would
		// otherwise quietly fall back to the default plan.
		if opt.Workers < 0 {
			yield(DesignOutcome{}, fmt.Errorf("eval: negative Workers %d (0 means GOMAXPROCS, 1 forces sequential)", opt.Workers))
			return
		}
		if !ValidDispatch(opt.Dispatch) {
			yield(DesignOutcome{}, fmt.Errorf("eval: unknown dispatch mode %q (want %q, %q or %q)",
				opt.Dispatch, DispatchCost, DispatchContiguous, DispatchFIFO))
			return
		}
		if opt.Deadline < 0 {
			yield(DesignOutcome{}, fmt.Errorf("eval: negative Deadline %v (0 disables the run budget)", opt.Deadline))
			return
		}
		if opt.DesignBudget < 0 {
			yield(DesignOutcome{}, fmt.Errorf("eval: negative DesignBudget %v (0 disables the per-design budget)", opt.DesignBudget))
			return
		}
		if !ValidErrorPolicy(opt.ErrorPolicy) {
			yield(DesignOutcome{}, fmt.Errorf("eval: unknown error policy %q (want %q or %q)",
				opt.ErrorPolicy, ErrorPolicyFail, ErrorPolicyContinue))
			return
		}
		if opt.Retries < 0 {
			yield(DesignOutcome{}, fmt.Errorf("eval: negative Retries %d (0 disables retry)", opt.Retries))
			return
		}
		if opt.CacheDir != "" {
			if err := bench.SetCacheDir(opt.CacheDir); err != nil {
				yield(DesignOutcome{}, fmt.Errorf("eval: cache dir: %w", err))
				return
			}
		}
		if opt.Resume && bench.DiskStore() == nil {
			yield(DesignOutcome{}, fmt.Errorf("eval: Resume requires an attached artifact store (set CacheDir): the run manifest lives there"))
			return
		}
		designs := corpus
		if opt.MaxDesigns > 0 && opt.MaxDesigns < len(designs) {
			designs = designs[:opt.MaxDesigns]
		}
		base := 0
		if opt.ShardCount > 1 || opt.ShardIndex != 0 {
			// Shard validates the spec too: a stray ShardIndex with an unset
			// ShardCount is an error, not a silent full-corpus run.
			shard, err := bench.Shard(designs, opt.ShardIndex, opt.ShardCount)
			if err != nil {
				yield(DesignOutcome{}, fmt.Errorf("eval: %w", err))
				return
			}
			base, _ = bench.ShardStart(len(designs), opt.ShardIndex, opt.ShardCount)
			designs = shard
		}
		streamJobs(ctx, gen, examples[:opt.Shots], designs, base, opt, yield)
	}
}

// evalDesign is one job: elaborate (cached), generate, correct, and
// verify one design. globalIdx seeds generation so the outcome is a
// function of the design's corpus position and the run seed only. ctx is
// the caller's (cancellation aborts the job with its error); runCtx
// layers the run deadline on top, and the per-design budget derives from
// it here — budget expiry truncates the outcome instead of failing it.
// Completed jobs record their wall time in the cost journal
// (bench.StoreCost) so later runs plan from measurements.
func evalDesign(ctx, runCtx context.Context, gen Generator, v Verifier, icl []llm.Example, d bench.Design, globalIdx int, opt RunOptions) jobResult {
	if err := ctx.Err(); err != nil {
		return jobResult{err: err}
	}
	vctx := runCtx
	if opt.DesignBudget > 0 {
		var vcancel context.CancelFunc
		vctx, vcancel = context.WithTimeout(runCtx, opt.DesignBudget)
		defer vcancel()
	}
	t0 := time.Now()
	nl, err := bench.Elaborate(d)
	if err != nil {
		return jobResult{err: fmt.Errorf("eval: corpus design %s: %w", d.Name, err)}
	}
	out, err := gen.Generate(vctx, d, icl, GenOptions{
		Shots: opt.Shots,
		Seed:  opt.Seed*1000003 + int64(globalIdx)*7919 + int64(opt.Shots),
	})
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return jobResult{err: cerr}
		}
		if vctx.Err() != nil {
			// The budget beat generation: nothing to verify, stream a
			// truncated stub rather than an error.
			return jobResult{outcome: DesignOutcome{Index: globalIdx, Design: d.Name, Truncated: true}}
		}
		return jobResult{err: fmt.Errorf("eval: generator %s on %s: %w", gen.Name(), d.Name, err)}
	}
	outcome := DesignOutcome{
		Index:     globalIdx,
		Design:    d.Name,
		Generated: out.Assertions,
		OffTask:   out.OffTask,
		Grounded:  out.Grounded,
	}
	checked := out.Assertions
	if opt.UseCorrector {
		fixed, _ := corrector.New(nl).CorrectAll(out.Assertions)
		outcome.Corrected = fixed
		checked = fixed
	}
	// The design's whole candidate list goes through the batched verifier
	// when the Verifier supports it, sharing one reachability exploration
	// across the assertions (verdicts are identical to the per-property
	// loop; fpv.Options.Batch == BatchOff forces the reference path
	// inside the call). A canceled verification surfaces as StatusError
	// results; abort the whole job rather than record verdicts a
	// completed run would never contain. A budget expiry, by contrast,
	// surfaces as StatusUnknown — those classify to VerdictUnknown and
	// the outcome is kept, truncated.
	if bv, ok := v.(BatchVerifier); ok {
		rs := bv.VerifyBatch(vctx, d, nl, checked, opt.FPV)
		if err := ctx.Err(); err != nil {
			return jobResult{err: err}
		}
		for _, r := range rs {
			outcome.Verdicts = append(outcome.Verdicts, Classify(r))
			if r.Static {
				outcome.StaticDischarged++
			}
		}
	} else {
		for _, line := range checked {
			r := v.Verify(vctx, d, nl, line, opt.FPV)
			if err := ctx.Err(); err != nil {
				return jobResult{err: err}
			}
			outcome.Verdicts = append(outcome.Verdicts, Classify(r))
			if r.Static {
				outcome.StaticDischarged++
			}
		}
	}
	if vctx.Err() != nil {
		outcome.Truncated = true
	}
	// Truncated measurements are lower bounds; the journal max-merges,
	// so recording them is still sound.
	bench.StoreCost(nl, time.Since(t0))
	return jobResult{outcome: outcome}
}
