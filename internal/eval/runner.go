package eval

import (
	"context"
	"fmt"
	"iter"
	"runtime"
	"sync"
	"sync/atomic"

	"assertionbench/internal/bench"
	"assertionbench/internal/corrector"
	"assertionbench/internal/fpv"
	"assertionbench/internal/llm"
)

// The concurrent evaluation runner. A run decomposes into one job per
// design; jobs are scheduled onto a bounded worker pool and their results
// streamed back in corpus order, so both the incremental Stream and the
// batch Run (a collector over the stream) are identical to a sequential
// walk at the same seed:
//
//   - every per-design random stream is seeded from the design's GLOBAL
//     corpus index (not its position in a shard or the order workers
//     happened to pick jobs up), and generation/verification allocate a
//     fresh seeded rand.Rand per call — no worker ever touches a shared or
//     unseeded source on the concurrent path;
//   - each worker owns one Verifier built by RunOptions.NewVerifier (the
//     default reuses one fpv.Engine per worker instead of reallocating
//     between assertions);
//   - elaborated netlists come from the process-wide bench.DefaultElab
//     cache and are immutable, so workers share them read-only.
//
// Cancellation: ctx is polled by the feeder, by every worker between and
// inside jobs (generation loops and FPV search loops poll it too), and by
// the in-order emitter. A canceled run stops within one design job per
// worker, leaks no goroutines, and surfaces ctx.Err().

type jobResult struct {
	outcome DesignOutcome
	err     error
}

type indexedResult struct {
	idx int
	res jobResult
}

// streamJobs evaluates designs[i] for every i, in parallel when
// opt.Workers allows, and yields outcomes strictly in corpus order, each
// the moment it and all its predecessors are done. base is the global
// corpus index of designs[0]. The first per-design error (lowest corpus
// index, identical to what a sequential walk would hit) is yielded as the
// final element and ends the stream.
func streamJobs(ctx context.Context, gen Generator, icl []llm.Example, designs []bench.Design, base int, opt RunOptions, yield func(DesignOutcome, error) bool) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(designs) {
		workers = len(designs)
	}
	if workers <= 1 {
		v := opt.NewVerifier()
		for i := range designs {
			jr := evalDesign(ctx, gen, v, icl, designs[i], base+i, opt)
			if jr.err != nil {
				yield(DesignOutcome{}, jr.err)
				return
			}
			if !yield(jr.outcome, nil) {
				return
			}
		}
		return
	}

	// The concurrent path: a feeder hands out indices in corpus order, a
	// pool of workers evaluates them, and the emitter below reorders
	// completions back into corpus order. The derived context tears the
	// pool down on any exit path (consumer break, external cancellation,
	// first error); results is buffered to capacity so workers can never
	// block on a consumer that has stopped reading.
	ctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	defer wg.Wait()
	defer cancel()

	jobs := make(chan int)
	results := make(chan indexedResult, len(designs))
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := opt.NewVerifier()
			for i := range jobs {
				jr := evalDesign(ctx, gen, v, icl, designs[i], base+i, opt)
				if jr.err != nil {
					// Stops the feeder. Jobs are fed in index order, so
					// every job below the erroring index is already
					// assigned and completes normally — the emitter (which
					// stops at the lowest erroring index) sees exactly what
					// a sequential run would have produced.
					failed.Store(true)
				}
				results <- indexedResult{idx: i, res: jr}
				if ctx.Err() != nil {
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(jobs)
		// Jobs are handed out in corpus order; per-design cost is dominated
		// by FPV search, which no static proxy (LoC, state bits) predicts
		// well, so greedy FIFO work-stealing off the channel is what keeps
		// the pool busy. Results are positioned by index, so pickup order
		// never affects output.
		for i := range designs {
			if failed.Load() {
				return
			}
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	// In-order emitter: completions arrive in whatever order workers
	// finish; outcome i is yielded the moment it and all predecessors are
	// available, so consumers see a deterministic, incrementally delivered
	// sequence.
	pending := make(map[int]jobResult, workers)
	for next := 0; next < len(designs); next++ {
		jr, ok := pending[next]
		for !ok {
			select {
			case r := <-results:
				if r.idx == next {
					jr, ok = r.res, true
				} else {
					pending[r.idx] = r.res
				}
			case <-ctx.Done():
				yield(DesignOutcome{}, ctx.Err())
				return
			}
		}
		delete(pending, next)
		if jr.err != nil {
			yield(DesignOutcome{}, jr.err)
			return
		}
		if !yield(jr.outcome, nil) {
			return
		}
	}
}

// Stream evaluates a Generator on the corpus and yields one DesignOutcome
// per design, in corpus order, each delivered as soon as it (and every
// design before it) finishes — the paper's Fig. 4 (with corrector) or
// Fig. 8 (without) pipeline as an incremental sequence. The sequence ends
// after the last design, or early with a single non-nil error: the first
// per-design failure (at the same corpus position a sequential walk would
// fail), or ctx.Err() on cancellation. Outcomes already yielded before an
// error are exactly the prefix a sequential run would have kept.
//
// The yielded stream is deterministic: at equal seed it is identical for
// any Workers count, and shard streams concatenate to the unsharded
// stream. Breaking out of the iteration early cancels and drains the
// worker pool before the iterator returns.
func Stream(ctx context.Context, gen Generator, examples []llm.Example, corpus []bench.Design, opt RunOptions) iter.Seq2[DesignOutcome, error] {
	return func(yield func(DesignOutcome, error) bool) {
		opt = opt.withDefaults()
		if opt.Shots > len(examples) {
			yield(DesignOutcome{}, fmt.Errorf("eval: %d-shot requested but only %d examples", opt.Shots, len(examples)))
			return
		}
		// A bad backend or batch string would otherwise surface as
		// StatusError on every single verdict — a "successful" run of
		// garbage metrics.
		if !fpv.ValidBackend(opt.FPV.Backend) {
			yield(DesignOutcome{}, fmt.Errorf("eval: unknown execution backend %q (want %q or %q)",
				opt.FPV.Backend, fpv.BackendCompiled, fpv.BackendInterp))
			return
		}
		if !fpv.ValidBatch(opt.FPV.Batch) {
			yield(DesignOutcome{}, fmt.Errorf("eval: unknown batch mode %q (want %q or %q)",
				opt.FPV.Batch, fpv.BatchAuto, fpv.BatchOff))
			return
		}
		if !fpv.ValidStatic(opt.FPV.Static) {
			yield(DesignOutcome{}, fmt.Errorf("eval: unknown static mode %q (want %q or %q)",
				opt.FPV.Static, fpv.StaticAuto, fpv.StaticOff))
			return
		}
		if opt.CacheDir != "" {
			if err := bench.SetCacheDir(opt.CacheDir); err != nil {
				yield(DesignOutcome{}, fmt.Errorf("eval: cache dir: %w", err))
				return
			}
		}
		designs := corpus
		if opt.MaxDesigns > 0 && opt.MaxDesigns < len(designs) {
			designs = designs[:opt.MaxDesigns]
		}
		base := 0
		if opt.ShardCount > 1 || opt.ShardIndex != 0 {
			// Shard validates the spec too: a stray ShardIndex with an unset
			// ShardCount is an error, not a silent full-corpus run.
			shard, err := bench.Shard(designs, opt.ShardIndex, opt.ShardCount)
			if err != nil {
				yield(DesignOutcome{}, fmt.Errorf("eval: %w", err))
				return
			}
			base, _ = bench.ShardStart(len(designs), opt.ShardIndex, opt.ShardCount)
			designs = shard
		}
		streamJobs(ctx, gen, examples[:opt.Shots], designs, base, opt, yield)
	}
}

// evalDesign is one job: elaborate (cached), generate, correct, and
// verify one design. globalIdx seeds generation so the outcome is a
// function of the design's corpus position and the run seed only.
func evalDesign(ctx context.Context, gen Generator, v Verifier, icl []llm.Example, d bench.Design, globalIdx int, opt RunOptions) jobResult {
	if err := ctx.Err(); err != nil {
		return jobResult{err: err}
	}
	nl, err := bench.Elaborate(d)
	if err != nil {
		return jobResult{err: fmt.Errorf("eval: corpus design %s: %w", d.Name, err)}
	}
	out, err := gen.Generate(ctx, d, icl, GenOptions{
		Shots: opt.Shots,
		Seed:  opt.Seed*1000003 + int64(globalIdx)*7919 + int64(opt.Shots),
	})
	if err != nil {
		if ctx.Err() != nil {
			return jobResult{err: ctx.Err()}
		}
		return jobResult{err: fmt.Errorf("eval: generator %s on %s: %w", gen.Name(), d.Name, err)}
	}
	outcome := DesignOutcome{
		Index:     globalIdx,
		Design:    d.Name,
		Generated: out.Assertions,
		OffTask:   out.OffTask,
		Grounded:  out.Grounded,
	}
	checked := out.Assertions
	if opt.UseCorrector {
		fixed, _ := corrector.New(nl).CorrectAll(out.Assertions)
		outcome.Corrected = fixed
		checked = fixed
	}
	// The design's whole candidate list goes through the batched verifier
	// when the Verifier supports it, sharing one reachability exploration
	// across the assertions (verdicts are identical to the per-property
	// loop; fpv.Options.Batch == BatchOff forces the reference path
	// inside the call). A canceled verification surfaces as StatusError
	// results; abort the whole job rather than record verdicts a
	// completed run would never contain.
	if bv, ok := v.(BatchVerifier); ok {
		rs := bv.VerifyBatch(ctx, d, nl, checked, opt.FPV)
		if err := ctx.Err(); err != nil {
			return jobResult{err: err}
		}
		for _, r := range rs {
			outcome.Verdicts = append(outcome.Verdicts, Classify(r))
			if r.Static {
				outcome.StaticDischarged++
			}
		}
		return jobResult{outcome: outcome}
	}
	for _, line := range checked {
		r := v.Verify(ctx, d, nl, line, opt.FPV)
		if err := ctx.Err(); err != nil {
			return jobResult{err: err}
		}
		outcome.Verdicts = append(outcome.Verdicts, Classify(r))
		if r.Static {
			outcome.StaticDischarged++
		}
	}
	return jobResult{outcome: outcome}
}
