package eval

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"assertionbench/internal/bench"
	"assertionbench/internal/corrector"
	"assertionbench/internal/fpv"
	"assertionbench/internal/llm"
	"assertionbench/internal/sva"
)

// The concurrent evaluation runner. A run decomposes into one job per
// design; jobs are scheduled onto a bounded worker pool and their results
// merged back in corpus order, so a parallel run's RunResult is identical
// to a sequential run's at the same seed:
//
//   - every per-design random stream is seeded from the design's GLOBAL
//     corpus index (not its position in a shard or the order workers
//     happened to pick jobs up), and generation/verification allocate a
//     fresh seeded rand.Rand per call — no worker ever touches a shared or
//     unseeded source on the concurrent path;
//   - each worker owns one reusable fpv.Engine (engine reset instead of
//     reallocation between assertions) and its own simulators underneath;
//   - elaborated netlists come from the process-wide bench.DefaultElab
//     cache and are immutable, so workers share them read-only.

type jobResult struct {
	outcome DesignOutcome
	err     error
}

// runJobs evaluates designs[i] for every i, in parallel when opt.Workers
// allows, and returns per-design results positioned by index. base is the
// global corpus index of designs[0].
func runJobs(model *llm.Model, icl []llm.Example, designs []bench.Design, base int, opt RunOptions) []jobResult {
	results := make([]jobResult, len(designs))
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(designs) {
		workers = len(designs)
	}
	if workers <= 1 {
		eng := fpv.NewEngine()
		for i := range designs {
			results[i] = evalDesign(model, icl, designs[i], base+i, opt, eng)
			if results[i].err != nil {
				break
			}
		}
		return results
	}
	// failed stops the feeder once any job errors. Jobs are fed in index
	// order, so every job below the erroring index is already assigned and
	// completes normally — the merge (which stops at the lowest erroring
	// index) sees exactly what a sequential run would have produced.
	var failed atomic.Bool
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := fpv.NewEngine()
			for i := range jobs {
				results[i] = evalDesign(model, icl, designs[i], base+i, opt, eng)
				if results[i].err != nil {
					failed.Store(true)
				}
			}
		}()
	}
	// Jobs are handed out in corpus order; per-design cost is dominated by
	// FPV search, which no static proxy (LoC, state bits) predicts well,
	// so greedy FIFO work-stealing off the channel is what keeps the pool
	// busy. Results are positioned by index, so pickup order never affects
	// output.
	for i := range designs {
		if failed.Load() {
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// evalDesign is one job: elaborate (cached), prompt, generate, correct,
// and verify one design. globalIdx seeds generation so the outcome is a
// function of the design's corpus position and the run seed only.
func evalDesign(model *llm.Model, icl []llm.Example, d bench.Design, globalIdx int, opt RunOptions, eng *fpv.Engine) jobResult {
	nl, err := bench.Elaborate(d)
	if err != nil {
		return jobResult{err: fmt.Errorf("eval: corpus design %s: %w", d.Name, err)}
	}
	prompt := llm.BuildPrompt(icl, d.Source, model.Profile.ContextWindow)
	gen := model.Generate(prompt, llm.GenOptions{
		Shots: opt.Shots,
		Seed:  opt.Seed*1000003 + int64(globalIdx)*7919 + int64(opt.Shots),
	})
	lines := sva.SplitAssertions(gen.Text)
	outcome := DesignOutcome{
		Design:    d.Name,
		Generated: lines,
		OffTask:   gen.OffTask,
		Grounded:  gen.Grounded,
	}
	checked := lines
	if opt.UseCorrector {
		fixed, _ := corrector.New(nl).CorrectAll(lines)
		outcome.Corrected = fixed
		checked = fixed
	}
	for _, line := range checked {
		r := eng.VerifySource(nl, line, opt.FPV)
		outcome.Verdicts = append(outcome.Verdicts, Classify(r))
	}
	return jobResult{outcome: outcome}
}
