package eval

import (
	"context"
	"fmt"
	"math/rand"

	"assertionbench/internal/bench"
	"assertionbench/internal/fpv"
	"assertionbench/internal/llm"
)

// ExperimentOptions configure a full paper reproduction.
type ExperimentOptions struct {
	// Seed makes every stage deterministic. Default 1.
	Seed int64
	// MaxDesigns truncates the test corpus for quick runs (0 = all 100).
	MaxDesigns int
	// FinetuneEpochs (paper: 20).
	FinetuneEpochs int
	// MineFPV bounds the miners used for ICL and fine-tuning corpora.
	MineFPV fpv.Options
	// Workers sets the evaluation worker-pool size for every run this
	// experiment launches (0 = runtime.GOMAXPROCS(0), 1 = sequential).
	Workers int
	// ShardIndex/ShardCount restrict every run to one contiguous corpus
	// shard (see RunOptions). ShardCount 0 means unsharded.
	ShardIndex int
	ShardCount int
}

func (o ExperimentOptions) withDefaults() ExperimentOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.FinetuneEpochs == 0 {
		o.FinetuneEpochs = 20
	}
	if o.MineFPV.MaxProductStates == 0 {
		o.MineFPV = fpv.Options{
			MaxProductStates: 1500,
			MaxInputBits:     6,
			MaxInputSamples:  8,
			RandomRuns:       8,
			RandomDepth:      32,
			Seed:             o.Seed,
		}
	}
	return o
}

// Experiment caches the benchmark artifacts across runs so the figure
// benches don't rebuild the corpus per call.
type Experiment struct {
	Opt    ExperimentOptions
	Train  []bench.Design
	Corpus []bench.Design
	ICL    []llm.Example

	ftCorpus []llm.Example // mined 75% split for fine-tuning
	ftEval   []bench.Design
}

// NewExperiment builds the benchmark and mines the ICL examples.
// Cancelling ctx aborts the ICL mining with ctx.Err().
func NewExperiment(ctx context.Context, opt ExperimentOptions) (*Experiment, error) {
	opt = opt.withDefaults()
	icl, err := bench.BuildICL(ctx, bench.ICLOptions{Seed: opt.Seed, FPV: opt.MineFPV})
	if err != nil {
		return nil, err
	}
	e := &Experiment{
		Opt:    opt,
		Train:  bench.TrainDesigns(),
		Corpus: bench.TestCorpus(),
		ICL:    icl,
	}
	if opt.MaxDesigns > 0 && opt.MaxDesigns < len(e.Corpus) {
		e.Corpus = e.Corpus[:opt.MaxDesigns]
	}
	return e, nil
}

// RunCOTS evaluates one COTS profile at one shot count with the full
// Fig. 4 pipeline (corrector on).
func (e *Experiment) RunCOTS(ctx context.Context, profile llm.Profile, shots int) (RunResult, error) {
	return Run(ctx, NewModelGenerator(profile), e.ICL, e.Corpus, RunOptions{
		Shots:        shots,
		Seed:         e.Opt.Seed,
		UseCorrector: true,
		Workers:      e.Opt.Workers,
		ShardIndex:   e.Opt.ShardIndex,
		ShardCount:   e.Opt.ShardCount,
	})
}

// RunAllCOTS produces the Fig. 6 / Fig. 7 grid: every COTS profile at 1-
// and 5-shot.
func (e *Experiment) RunAllCOTS(ctx context.Context) ([]RunResult, error) {
	var out []RunResult
	for _, p := range llm.COTSProfiles() {
		for _, k := range []int{1, 5} {
			r, err := e.RunCOTS(ctx, p, k)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// FinetuneSplit mines the fine-tuning corpus from 75% of AssertionBench
// and reserves 25% for evaluation (paper Sec. VI). The split and mining
// run once and are cached.
func (e *Experiment) FinetuneSplit(ctx context.Context) ([]llm.Example, []bench.Design, error) {
	if e.ftCorpus != nil {
		return e.ftCorpus, e.ftEval, nil
	}
	rng := rand.New(rand.NewSource(e.Opt.Seed))
	perm := rng.Perm(len(e.Corpus))
	cut := len(e.Corpus) * 3 / 4
	var trainIdx, evalIdx []int
	trainIdx = append(trainIdx, perm[:cut]...)
	evalIdx = append(evalIdx, perm[cut:]...)

	corpus := make([]llm.Example, 0, cut+len(e.Train))
	// The five training designs always belong to the tuning corpus.
	for _, d := range e.Train {
		ex, err := bench.MineExample(ctx, d, bench.ICLOptions{Seed: e.Opt.Seed, FPV: e.Opt.MineFPV})
		if err != nil {
			return nil, nil, err
		}
		corpus = append(corpus, ex)
	}
	for _, i := range trainIdx {
		ex, err := bench.MineExample(ctx, e.Corpus[i], bench.ICLOptions{Seed: e.Opt.Seed, FPV: e.Opt.MineFPV, MaxAssertions: 6})
		if err != nil {
			return nil, nil, fmt.Errorf("mining %s: %w", e.Corpus[i].Name, err)
		}
		corpus = append(corpus, ex)
	}
	var evalSet []bench.Design
	for _, i := range evalIdx {
		evalSet = append(evalSet, e.Corpus[i])
	}
	e.ftCorpus, e.ftEval = corpus, evalSet
	return corpus, evalSet, nil
}

// FinetunedRun builds AssertionLLM from the given base profile and
// evaluates it on the held-out 25% with the Fig. 8 pipeline (corrector
// removed).
func (e *Experiment) FinetunedRun(ctx context.Context, base llm.Profile, shots int) (RunResult, llm.FinetuneReport, error) {
	corpus, evalSet, err := e.FinetuneSplit(ctx)
	if err != nil {
		return RunResult{}, llm.FinetuneReport{}, err
	}
	baseModel := llm.New(base)
	tuned, report := llm.Finetune(baseModel, corpus, llm.FinetuneOptions{
		Epochs: e.Opt.FinetuneEpochs,
		Seed:   e.Opt.Seed,
	})
	r, err := Run(ctx, ModelGenerator{Model: tuned}, e.ICL, evalSet, RunOptions{
		Shots:        shots,
		Seed:         e.Opt.Seed,
		UseCorrector: false,
		Workers:      e.Opt.Workers,
		ShardIndex:   e.Opt.ShardIndex,
		ShardCount:   e.Opt.ShardCount,
	})
	return r, report, err
}

// RunAllFinetuned produces the Fig. 9 grid: AssertionLLM over CodeLLaMa 2
// and LLaMa3-70B at 1- and 5-shot.
func (e *Experiment) RunAllFinetuned(ctx context.Context) ([]RunResult, error) {
	var out []RunResult
	for _, p := range []llm.Profile{llm.CodeLlama2(), llm.Llama3()} {
		for _, k := range []int{1, 5} {
			r, _, err := e.FinetunedRun(ctx, p, k)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}
