package eval

import (
	"context"
	"reflect"
	"testing"

	"assertionbench/internal/bench"
	"assertionbench/internal/llm"
)

// TestParallelRunMatchesSequential is the determinism contract of the
// concurrent runner: at the same seed, a parallel run must produce
// RunResults (metrics, per-design outcomes, verdict order) identical to
// the sequential run's.
func TestParallelRunMatchesSequential(t *testing.T) {
	e := testExperiment(t, 10)
	gen := NewModelGenerator(llm.GPT4o())
	opt := RunOptions{Shots: 5, UseCorrector: true, Seed: 3}

	seqOpt := opt
	seqOpt.Workers = 1
	seq, err := Run(context.Background(), gen, e.ICL, e.Corpus, seqOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 16} {
		parOpt := opt
		parOpt.Workers = workers
		par, err := Run(context.Background(), gen, e.ICL, e.Corpus, parOpt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: parallel run differs from sequential\nseq: %+v\npar: %+v",
				workers, seq.Metrics, par.Metrics)
		}
	}
}

// TestShardedRunsConcatenateToFullRun: evaluating shard 0..n-1 separately
// and concatenating must reproduce the unsharded run, because per-design
// seeds follow global corpus positions.
func TestShardedRunsConcatenateToFullRun(t *testing.T) {
	e := testExperiment(t, 9)
	gen := NewModelGenerator(llm.GPT35())
	opt := RunOptions{Shots: 1, UseCorrector: true, Seed: 5, Workers: 2}

	full, err := Run(context.Background(), gen, e.ICL, e.Corpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	merged := RunResult{Model: full.Model, Shots: full.Shots}
	for i := 0; i < shards; i++ {
		sOpt := opt
		sOpt.ShardIndex, sOpt.ShardCount = i, shards
		part, err := Run(context.Background(), gen, e.ICL, e.Corpus, sOpt)
		if err != nil {
			t.Fatal(err)
		}
		merged.Designs = append(merged.Designs, part.Designs...)
		merged.Metrics.NPass += part.Metrics.NPass
		merged.Metrics.NCEX += part.Metrics.NCEX
		merged.Metrics.NError += part.Metrics.NError
		merged.Metrics.NStatic += part.Metrics.NStatic
	}
	if !reflect.DeepEqual(full, merged) {
		t.Errorf("concatenated shards differ from the full run\nfull:   %+v\nmerged: %+v",
			full.Metrics, merged.Metrics)
	}
}

func TestRunRejectsBadShardSpec(t *testing.T) {
	e := testExperiment(t, 4)
	gen := NewModelGenerator(llm.GPT35())
	if _, err := Run(context.Background(), gen, e.ICL, e.Corpus, RunOptions{ShardIndex: 3, ShardCount: 2}); err == nil {
		t.Fatal("shard index out of range must fail")
	}
}

// TestRunSurfacesDesignErrorDeterministically: a design that fails
// elaboration stops the run at its corpus position with the earlier
// outcomes intact, identically for sequential and parallel runs, and the
// feeder stops scheduling the doomed remainder.
func TestRunSurfacesDesignErrorDeterministically(t *testing.T) {
	e := testExperiment(t, 6)
	gen := NewModelGenerator(llm.GPT35())
	corpus := append([]bench.Design{}, e.Corpus[:4]...)
	corpus = append(corpus, bench.Design{Name: "broken", Source: "module broken("})
	corpus = append(corpus, e.Corpus[4:]...)

	seq, seqErr := Run(context.Background(), gen, e.ICL, corpus, RunOptions{Shots: 1, Workers: 1})
	par, parErr := Run(context.Background(), gen, e.ICL, corpus, RunOptions{Shots: 1, Workers: 4})
	if seqErr == nil || parErr == nil {
		t.Fatal("broken design must fail the run")
	}
	if seqErr.Error() != parErr.Error() {
		t.Errorf("error differs: sequential %v, parallel %v", seqErr, parErr)
	}
	if len(seq.Designs) != 4 || len(par.Designs) != 4 {
		t.Fatalf("partial results: sequential %d designs, parallel %d, want 4 each",
			len(seq.Designs), len(par.Designs))
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("partial results differ between sequential and parallel runs")
	}
}
