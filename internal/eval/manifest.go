package eval

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"assertionbench/internal/astore"
	"assertionbench/internal/bench"
)

// Crash-safe resumable runs. Whenever an artifact store is attached,
// the runner journals every decided design outcome write-behind into a
// run manifest (astore.KindRun blob, keyed by the hash of generator +
// corpus + result-relevant options). A process killed mid-run loses
// nothing it decided: a later run with RunOptions.Resume serves those
// outcomes straight from the manifest and only evaluates the designs
// the first run left undecided — Unknown verdicts, truncation stubs,
// errored outcomes, or designs never reached. Because decided verdicts
// are budget- and schedule-independent (the anytime and oracle-10
// contracts), the manifest key deliberately excludes Workers, Dispatch,
// budgets, Retries and ErrorPolicy: a budgeted 8-worker run's manifest
// resumes correctly under an unbudgeted sequential run, and the result
// is byte-identical to never having been interrupted (dverify
// oracle 11).

// ManifestDropHook, when non-nil, suppresses journaling of the decided
// outcome at the given global corpus index. It exists solely as a
// mutation seam: oracle 11's mutation test installs it to prove that a
// recorder silently skipping entries is caught (the resumed run
// re-verifies designs the manifest should have decided, and the
// oracle counts those verify calls). Never set in production.
var ManifestDropHook func(index int) bool

// manifestKey identifies one run for resume purposes: the generator,
// every design (name + source hash, in corpus order), the global base
// index, and every option that can change an outcome's fields.
func manifestKey(gen string, designs []bench.Design, base int, opt RunOptions) string {
	h := sha256.New()
	fmt.Fprintf(h, "run\x00%s\x00shots=%d seed=%d corr=%v base=%d\x00",
		gen, opt.Shots, opt.Seed, opt.UseCorrector, base)
	f := opt.FPV
	fmt.Fprintf(h, "fpv=%d,%d,%d,%d,%d,%d,%s,%s,%s,%s,%s\x00",
		f.MaxProductStates, f.MaxInputBits, f.MaxInputSamples, f.RandomRuns, f.RandomDepth, f.Seed,
		f.Backend, f.Batch, f.Cone, f.Slices, f.Static)
	for _, d := range designs {
		fmt.Fprintf(h, "%s\x00%x\x00", d.Name, sha256.Sum256([]byte(d.Source)))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// decided reports whether an outcome is final: every verdict decided,
// nothing truncated, nothing errored. Only decided outcomes enter the
// manifest — everything else must re-verify on resume.
func decided(o DesignOutcome) bool {
	if o.Truncated || o.Errored {
		return false
	}
	for _, v := range o.Verdicts {
		if v == VerdictUnknown {
			return false
		}
	}
	return true
}

// manifestFile is the KindRun blob payload: the decided outcomes in
// corpus order, JSON-encoded. The store's container already checksums
// the bytes; a payload that fails to decode is treated as absent (the
// run simply starts from nothing), keeping manifest corruption a
// performance event, never a correctness one.
type manifestFile struct {
	Entries []DesignOutcome `json:"entries"`
}

// manifestRecorder journals decided outcomes write-behind. Every record
// rewrites the whole blob through astore's atomic temp+rename — the
// corpus is ~100 designs, so rewriting is noise — which means a reader
// (a resumed process included) always sees a complete, checksummed
// snapshot of some prefix of the run, never a torn one. The store Put
// happens under the recorder lock so snapshots reach the store in
// monotonic order; a failed Put is ignored (the next record, or the
// resumed run, simply redoes the work). A nil recorder is a no-op, so
// the store-less path pays nothing.
type manifestRecorder struct {
	store *astore.Store
	key   string

	mu      sync.Mutex
	entries map[int]DesignOutcome
}

func newManifestRecorder(store *astore.Store, key string) *manifestRecorder {
	return &manifestRecorder{store: store, key: key, entries: map[int]DesignOutcome{}}
}

// resume loads the decided outcomes a previous run journaled under the
// same key, seeding the recorder so this run's snapshots keep them. A
// missing or undecodable manifest resumes from nothing.
func (r *manifestRecorder) resume() map[int]DesignOutcome {
	blob, ok := r.store.Get(astore.KindRun, r.key)
	if !ok {
		return nil
	}
	var mf manifestFile
	if json.Unmarshal(blob, &mf) != nil {
		return nil
	}
	out := make(map[int]DesignOutcome, len(mf.Entries))
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, o := range mf.Entries {
		if decided(o) {
			out[o.Index] = o
			r.entries[o.Index] = o
		}
	}
	return out
}

// record journals one outcome, if it is decided.
func (r *manifestRecorder) record(o DesignOutcome) {
	if r == nil || !decided(o) {
		return
	}
	if ManifestDropHook != nil && ManifestDropHook(o.Index) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[o.Index] = o
	mf := manifestFile{Entries: make([]DesignOutcome, 0, len(r.entries))}
	idxs := make([]int, 0, len(r.entries))
	for i := range r.entries {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		mf.Entries = append(mf.Entries, r.entries[i])
	}
	blob, err := json.Marshal(mf)
	if err != nil {
		return
	}
	_ = r.store.Put(astore.KindRun, r.key, blob)
}
