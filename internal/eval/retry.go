package eval

import (
	"context"
	"fmt"
	"time"

	"assertionbench/internal/bench"
	"assertionbench/internal/faults"
	"assertionbench/internal/llm"
)

// This file is the runner's fault-tolerance core: the error-policy
// constants, panic isolation around each design job, and the bounded
// deterministic retry schedule for transient failures. The invariants
// are the same ones every other eval feature obeys — the decision path
// is a pure function of the run identity (no math/rand, no wall clock
// in any choice), so a run under retries converges field-for-field to
// a fault-free sequential run (dverify oracle 11).

// Error policies for RunOptions.ErrorPolicy.
const (
	// ErrorPolicyFail ends the stream at the first per-design error, at
	// the lowest corpus index — exactly the sequential-walk semantics
	// every run has had since PR 1. The default.
	ErrorPolicyFail = "fail"
	// ErrorPolicyContinue converts a failed design job (after retries)
	// into an errored DesignOutcome at its corpus position and finishes
	// the run. Cancellation still ends the stream.
	ErrorPolicyContinue = "continue"
)

// ValidErrorPolicy reports whether s names an error policy ("" selects
// the default, ErrorPolicyFail).
func ValidErrorPolicy(s string) bool {
	return s == "" || s == ErrorPolicyFail || s == ErrorPolicyContinue
}

// FaultHook, when non-nil, runs at the start of every design-job
// attempt (design name, global corpus index, 1-based attempt number)
// and may fail the attempt by returning an error or by panicking. It
// is the worker-loop fault-injection seam, in astore.LoadHook's
// lineage: internal/faultinject installs deterministic failure plans
// through it, and dverify oracle 11 uses those plans to prove that the
// retry/error-policy/resume machinery converges to the fault-free
// stream. Never set in production.
var FaultHook func(design string, index, attempt int) error

// RetryDropHook, when non-nil, suppresses the retry it is asked about
// (global corpus index, 1-based attempt that just failed). It exists
// solely as a mutation seam: oracle 11's mutation test installs it to
// prove that a runner silently dropping retries is caught. Never set
// in production.
var RetryDropHook func(index, attempt int) bool

// splitmix64 is the SplitMix64 finalizer behind the backoff jitter — a
// pure function, the same generator discipline the FPV engine uses, so
// retry timing derives from (seed, index, attempt) alone.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoff is the delay before re-attempting after the attempt-th
// failure (attempt >= 1): an exponential base (1ms doubling, capped at
// 100ms) jittered by splitmix64 into [base/2, base], so simultaneous
// retries decorrelate while the whole schedule stays a deterministic
// function of the run identity.
func backoff(seed int64, index, attempt int) time.Duration {
	base := time.Millisecond << min(attempt-1, 7)
	if base > 100*time.Millisecond {
		base = 100 * time.Millisecond
	}
	x := splitmix64(uint64(seed)<<32 ^ uint64(index)<<16 ^ uint64(attempt))
	return base/2 + time.Duration(x%uint64(base/2+1))
}

// sleepBackoff waits out d (or returns early, reporting false, when ctx
// is cancelled first). The duration is decided by backoff before the
// timer starts; the clock only passes time, it never chooses anything.
func sleepBackoff(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// attemptJob is one attempt at a design job: the fault-injection seam,
// then the real evaluation, with panics isolated to this design — a
// panicking generator, corrector or verifier becomes this job's error
// instead of killing the whole process. A panic value that is itself a
// transient error keeps its class (so bounded injected panics can be
// absorbed by retries); every other panic is permanent.
func attemptJob(ctx, runCtx context.Context, gen Generator, v Verifier, icl []llm.Example, d bench.Design, globalIdx, attempt int, opt RunOptions) (jr jobResult) {
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok && faults.IsTransient(err) {
				jr = jobResult{err: fmt.Errorf("eval: design %s (corpus #%d) panicked: %w", d.Name, globalIdx, err)}
				return
			}
			jr = jobResult{err: fmt.Errorf("eval: design %s (corpus #%d) panicked: %v", d.Name, globalIdx, r)}
		}
	}()
	if FaultHook != nil {
		if err := FaultHook(d.Name, globalIdx, attempt); err != nil {
			return jobResult{err: fmt.Errorf("eval: design %s (corpus #%d): %w", d.Name, globalIdx, err)}
		}
	}
	return evalDesign(ctx, runCtx, gen, v, icl, d, globalIdx, opt)
}
