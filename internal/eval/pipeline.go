package eval

import (
	"fmt"

	"assertionbench/internal/bench"
	"assertionbench/internal/corrector"
	"assertionbench/internal/fpv"
	"assertionbench/internal/llm"
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// RunOptions configure one evaluation run of one model at one shot count.
type RunOptions struct {
	// Shots is k for k-shot ICL (the paper evaluates 1 and 5).
	Shots int
	// Seed drives generation; results are deterministic per seed.
	Seed int64
	// UseCorrector enables stage 3 of Fig. 4 (on for COTS models, off for
	// fine-tuned models per Fig. 8).
	UseCorrector bool
	// FPV bounds the verification engine per assertion.
	FPV fpv.Options
	// MaxDesigns truncates the corpus for quick runs (0 = all).
	MaxDesigns int
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Shots == 0 {
		o.Shots = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.FPV.MaxProductStates == 0 {
		// Evaluation-grade budget: bounded verdicts on the big designs,
		// exhaustive on the control-dominated ones.
		o.FPV = fpv.Options{
			MaxProductStates: 3000,
			MaxInputBits:     8,
			MaxInputSamples:  12,
			RandomRuns:       24,
			RandomDepth:      48,
			Seed:             o.Seed,
		}
	}
	return o
}

// DesignOutcome records one design's generated assertions and verdicts.
type DesignOutcome struct {
	Design    string
	Generated []string
	Corrected []string
	Verdicts  []Verdict
	// Channel bookkeeping from the generator (for ablation analysis).
	OffTask  int
	Grounded int
}

// RunResult is one (model, k) evaluation over the corpus.
type RunResult struct {
	Model   string
	Shots   int
	Metrics Metrics
	Designs []DesignOutcome
}

// Run evaluates a model on the corpus with k-shot ICL: the paper's Fig. 4
// (with corrector) or Fig. 8 (without) pipeline.
func Run(model *llm.Model, examples []llm.Example, corpus []bench.Design, opt RunOptions) (RunResult, error) {
	opt = opt.withDefaults()
	if opt.Shots > len(examples) {
		return RunResult{}, fmt.Errorf("eval: %d-shot requested but only %d examples", opt.Shots, len(examples))
	}
	designs := corpus
	if opt.MaxDesigns > 0 && opt.MaxDesigns < len(designs) {
		designs = designs[:opt.MaxDesigns]
	}
	res := RunResult{Model: model.Profile.Name, Shots: opt.Shots}
	icl := examples[:opt.Shots]

	for di, d := range designs {
		nl, err := verilog.ElaborateSource(d.Source, d.Name)
		if err != nil {
			return res, fmt.Errorf("eval: corpus design %s: %w", d.Name, err)
		}
		prompt := llm.BuildPrompt(icl, d.Source, model.Profile.ContextWindow)
		gen := model.Generate(prompt, llm.GenOptions{
			Shots: opt.Shots,
			Seed:  opt.Seed*1000003 + int64(di)*7919 + int64(opt.Shots),
		})
		lines := sva.SplitAssertions(gen.Text)
		outcome := DesignOutcome{
			Design:    d.Name,
			Generated: lines,
			OffTask:   gen.OffTask,
			Grounded:  gen.Grounded,
		}
		checked := lines
		if opt.UseCorrector {
			fixed, _ := corrector.New(nl).CorrectAll(lines)
			outcome.Corrected = fixed
			checked = fixed
		}
		for _, line := range checked {
			r := fpv.VerifySource(nl, line, opt.FPV)
			v := Classify(r)
			outcome.Verdicts = append(outcome.Verdicts, v)
			res.Metrics.Add(v)
		}
		res.Designs = append(res.Designs, outcome)
	}
	return res, nil
}
