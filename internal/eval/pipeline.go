package eval

import (
	"fmt"

	"assertionbench/internal/bench"
	"assertionbench/internal/fpv"
	"assertionbench/internal/llm"
)

// RunOptions configure one evaluation run of one model at one shot count.
type RunOptions struct {
	// Shots is k for k-shot ICL (the paper evaluates 1 and 5).
	Shots int
	// Seed drives generation; results are deterministic per seed.
	Seed int64
	// UseCorrector enables stage 3 of Fig. 4 (on for COTS models, off for
	// fine-tuned models per Fig. 8).
	UseCorrector bool
	// FPV bounds the verification engine per assertion.
	FPV fpv.Options
	// MaxDesigns truncates the corpus for quick runs (0 = all).
	MaxDesigns int
	// Workers sets the evaluation worker-pool size: 0 means
	// runtime.GOMAXPROCS(0), 1 forces a sequential run. Any worker count
	// produces byte-identical results at the same seed.
	Workers int
	// ShardIndex/ShardCount restrict the run to the index-th of count
	// contiguous corpus shards (after MaxDesigns truncation), for
	// splitting a sweep across processes or machines. ShardCount 0 means
	// unsharded. Per-design seeds follow global corpus positions, so
	// concatenating the shard results of all indices reproduces the
	// unsharded run exactly.
	ShardIndex int
	ShardCount int
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Shots == 0 {
		o.Shots = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ShardCount == 0 {
		o.ShardCount = 1
	}
	if o.FPV.MaxProductStates == 0 {
		// Evaluation-grade budget: bounded verdicts on the big designs,
		// exhaustive on the control-dominated ones.
		o.FPV = fpv.Options{
			MaxProductStates: 3000,
			MaxInputBits:     8,
			MaxInputSamples:  12,
			RandomRuns:       24,
			RandomDepth:      48,
			Seed:             o.Seed,
		}
	}
	return o
}

// DesignOutcome records one design's generated assertions and verdicts.
type DesignOutcome struct {
	Design    string
	Generated []string
	Corrected []string
	Verdicts  []Verdict
	// Channel bookkeeping from the generator (for ablation analysis).
	OffTask  int
	Grounded int
}

// RunResult is one (model, k) evaluation over the corpus.
type RunResult struct {
	Model   string
	Shots   int
	Metrics Metrics
	Designs []DesignOutcome
}

// Run evaluates a model on the corpus with k-shot ICL: the paper's Fig. 4
// (with corrector) or Fig. 8 (without) pipeline. The corpus decomposes
// into per-design jobs on a bounded worker pool (RunOptions.Workers);
// results merge back in corpus order, so parallel runs are
// deterministic and identical to sequential runs at the same seed.
func Run(model *llm.Model, examples []llm.Example, corpus []bench.Design, opt RunOptions) (RunResult, error) {
	opt = opt.withDefaults()
	if opt.Shots > len(examples) {
		return RunResult{}, fmt.Errorf("eval: %d-shot requested but only %d examples", opt.Shots, len(examples))
	}
	designs := corpus
	if opt.MaxDesigns > 0 && opt.MaxDesigns < len(designs) {
		designs = designs[:opt.MaxDesigns]
	}
	base := 0
	if opt.ShardCount > 1 || opt.ShardIndex != 0 {
		// Shard validates the spec too: a stray ShardIndex with an unset
		// ShardCount is an error, not a silent full-corpus run.
		shard, err := bench.Shard(designs, opt.ShardIndex, opt.ShardCount)
		if err != nil {
			return RunResult{}, fmt.Errorf("eval: %w", err)
		}
		base, _ = bench.ShardStart(len(designs), opt.ShardIndex, opt.ShardCount)
		designs = shard
	}
	res := RunResult{Model: model.Profile.Name, Shots: opt.Shots}
	icl := examples[:opt.Shots]

	results := runJobs(model, icl, designs, base, opt)
	// Deterministic merge: accumulate in corpus order and surface the
	// first error the way a sequential walk would (partial results kept).
	for _, jr := range results {
		if jr.err != nil {
			return res, jr.err
		}
		for _, v := range jr.outcome.Verdicts {
			res.Metrics.Add(v)
		}
		res.Designs = append(res.Designs, jr.outcome)
	}
	return res, nil
}
