package eval

import (
	"context"
	"time"

	"assertionbench/internal/bench"
	"assertionbench/internal/fpv"
	"assertionbench/internal/llm"
)

// RunOptions configure one evaluation run of one generator at one shot
// count.
type RunOptions struct {
	// Shots is k for k-shot ICL (the paper evaluates 1 and 5).
	Shots int
	// Seed drives generation; results are deterministic per seed.
	Seed int64
	// UseCorrector enables stage 3 of Fig. 4 (on for COTS models, off for
	// fine-tuned models per Fig. 8).
	UseCorrector bool
	// FPV bounds the verification engine per assertion.
	FPV fpv.Options
	// MaxDesigns truncates the corpus for quick runs (0 = all).
	MaxDesigns int
	// Workers sets the evaluation worker-pool size: 0 means
	// runtime.GOMAXPROCS(0), 1 forces a sequential run. Any worker count
	// produces byte-identical results at the same seed. Negative counts
	// are an error, not a silent clamp.
	Workers int
	// Dispatch selects how jobs reach the workers: DispatchCost (the
	// default) plans by predicted per-design cost over work-stealing
	// deques, DispatchContiguous statically partitions the corpus into
	// contiguous per-worker slices (no stealing), DispatchFIFO hands out
	// indices in corpus order from one shared queue. All modes produce
	// byte-identical output at the same seed (dverify oracle 10); they
	// differ only in completion-latency profile.
	Dispatch string
	// Deadline, when positive, bounds the whole run's verification wall
	// time (anytime mode): designs finished in budget keep their
	// verdicts, a design caught mid-verification keeps its decided
	// verdicts with the rest VerdictUnknown, and designs never reached
	// stream as truncated stubs. The run ends without error; every
	// outcome carries Truncated reporting whether the budget cut it.
	// Zero disables; negative is an error.
	Deadline time.Duration
	// DesignBudget, when positive, bounds each design's verification
	// wall time the same way. Zero disables; negative is an error.
	DesignBudget time.Duration
	// OnDesignDone, when non-nil, observes every completed design: its global
	// corpus index, the job's own wall time, and the completion time
	// since the run started. Workers invoke it concurrently the moment
	// the design finishes (not in corpus order) — implementations must
	// be concurrency-safe and fast. Error'd jobs are not reported.
	OnDesignDone func(index int, wall, done time.Duration)
	// ShardIndex/ShardCount restrict the run to the index-th of count
	// contiguous corpus shards (after MaxDesigns truncation), for
	// splitting a sweep across processes or machines. ShardCount 0 means
	// unsharded. Per-design seeds follow global corpus positions, so
	// concatenating the shard results of all indices reproduces the
	// unsharded run exactly.
	ShardIndex int
	ShardCount int
	// NewVerifier builds one Verifier per worker (nil = the FPV engine).
	// Custom verifiers let callers swap the model checker while keeping
	// the rest of the pipeline; each instance is owned by a single worker,
	// so implementations need not be concurrency-safe.
	NewVerifier func() Verifier
	// CacheDir, when non-empty, attaches the persistent artifact store
	// at that directory to the process-wide elaboration cache before the
	// run: compiled programs and reachability graphs are read from (and
	// written behind to) disk, so a fresh process starts warm. The
	// attachment is process-wide and sticky — it outlives the run, and
	// later runs without CacheDir keep using it (pass a new dir to
	// move it; detaching mid-process is not supported through here).
	CacheDir string
	// ErrorPolicy selects what a failed design job does to the rest of
	// the run. ErrorPolicyFail (the default) keeps the original
	// contract: the first per-design error — at the lowest corpus index,
	// exactly as a sequential walk would hit it — ends the stream.
	// ErrorPolicyContinue degrades gracefully instead: the failure (a
	// generator error, a recovered panic, transient retries exhausted)
	// becomes an errored DesignOutcome (Errored set, Err carrying the
	// message, no verdicts), streamed at its corpus position, and the
	// run finishes. Cancellation is never converted: ctx errors end the
	// stream under either policy.
	ErrorPolicy string
	// Retries bounds how many times a design job whose failure is
	// transient (faults.IsTransient: artifact-store I/O, injected
	// faults) is re-attempted before ErrorPolicy applies. Each retry
	// waits a deterministic splitmix64-jittered backoff derived from
	// (Seed, corpus index, attempt) — no math/rand, no wall clock in
	// the decision, so retried runs stay reproducible. 0 (the default)
	// disables retry; negative is an error. Permanent failures (design
	// errors, plain panics) never retry.
	Retries int
	// Resume skips designs that a previous run over the same generator,
	// corpus, seed and options already decided: their outcomes are
	// served from the run manifest — a blob the runner journals
	// write-behind through the artifact store as designs complete — and
	// workers evaluate only the undecided ones (Unknown, truncated,
	// errored, or never reached). The resumed stream is byte-identical
	// to a never-interrupted run. Requires an attached artifact store
	// (CacheDir here, or a prior SetCacheDir); a missing or unreadable
	// manifest resumes from nothing rather than failing.
	Resume bool
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Shots == 0 {
		o.Shots = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ShardCount == 0 {
		o.ShardCount = 1
	}
	if o.Dispatch == "" {
		o.Dispatch = DispatchCost
	}
	if o.ErrorPolicy == "" {
		o.ErrorPolicy = ErrorPolicyFail
	}
	// Evaluation-grade FPV budget (bounded verdicts on the big designs,
	// exhaustive on the control-dominated ones), applied field-wise so a
	// caller can override one bound without losing the others.
	if o.FPV.MaxProductStates == 0 {
		o.FPV.MaxProductStates = 3000
	}
	if o.FPV.MaxInputBits == 0 {
		o.FPV.MaxInputBits = 8
	}
	if o.FPV.MaxInputSamples == 0 {
		o.FPV.MaxInputSamples = 12
	}
	if o.FPV.RandomRuns == 0 {
		o.FPV.RandomRuns = 24
	}
	if o.FPV.RandomDepth == 0 {
		o.FPV.RandomDepth = 48
	}
	if o.FPV.Seed == 0 {
		o.FPV.Seed = o.Seed
	}
	if o.NewVerifier == nil {
		o.NewVerifier = NewEngineVerifier
	}
	return o
}

// DesignOutcome records one design's generated assertions and verdicts.
type DesignOutcome struct {
	// Index is the design's global corpus position (stable across worker
	// counts and shards; per-design seeds derive from it).
	Index  int
	Design string
	// Generated is the raw candidate list; Corrected the post-corrector
	// list (nil when the corrector is off).
	Generated []string
	Corrected []string
	Verdicts  []Verdict
	// StaticDischarged counts this design's verdicts decided by the
	// static pre-verification pass without any state-space search.
	StaticDischarged int
	// Channel bookkeeping from the generator (for ablation analysis).
	OffTask  int
	Grounded int
	// Truncated reports that an anytime budget (RunOptions.Deadline or
	// DesignBudget) expired before this design's verification finished:
	// decided verdicts are kept, the rest are VerdictUnknown, and a
	// design the run never reached has no verdicts at all. Always false
	// in unbudgeted runs.
	Truncated bool
	// Errored reports that this design's job failed — a design or
	// generator error, a recovered panic, transient retries exhausted —
	// and ErrorPolicyContinue converted the failure into an outcome
	// instead of ending the stream. Err holds the failure message; an
	// errored outcome carries no verdicts and is never recorded as
	// decided in the run manifest, so a resumed run re-attempts it.
	// Always false under the default ErrorPolicyFail, where the failure
	// ends the stream instead.
	Errored bool
	Err     string
}

// RunResult is one (generator, k) evaluation over the corpus.
type RunResult struct {
	Model   string
	Shots   int
	Metrics Metrics
	Designs []DesignOutcome
}

// Run evaluates a Generator on the corpus with k-shot ICL and returns the
// batch result: it is a thin collector over Stream, so batch and
// streaming modes cannot drift apart. The corpus decomposes into
// per-design jobs on a bounded worker pool (RunOptions.Workers); results
// merge back in corpus order, so parallel runs are deterministic and
// identical to sequential runs at the same seed. On error (including
// ctx.Err() after cancellation) the partial RunResult holds every outcome
// before the failure, exactly as a sequential walk would.
func Run(ctx context.Context, gen Generator, examples []llm.Example, corpus []bench.Design, opt RunOptions) (RunResult, error) {
	res := RunResult{Model: gen.Name(), Shots: opt.withDefaults().Shots}
	for outcome, err := range Stream(ctx, gen, examples, corpus, opt) {
		if err != nil {
			return res, err
		}
		for _, v := range outcome.Verdicts {
			res.Metrics.Add(v)
		}
		res.Metrics.NStatic += outcome.StaticDischarged
		if outcome.Errored {
			res.Metrics.NErrored++
		}
		res.Designs = append(res.Designs, outcome)
	}
	return res, nil
}
