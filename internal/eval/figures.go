package eval

import (
	"fmt"
	"sort"
	"strings"

	"assertionbench/internal/bench"
)

// This file renders every table and figure of the paper as text. The
// renderers take precomputed RunResults so cmd/figures and the benchmarks
// share one evaluation pass.

// TableI renders the representative-design table (paper Table I).
func TableI(corpus []bench.Design) string {
	named := map[string]bool{
		"ca_prng": true, "cavlc_read_total_coeffs": true,
		"cavlc_read_total_zeros": true, "ge_1000baseX_rx": true,
		"MAC_tx_Ctrl": true,
	}
	var rows []bench.Design
	for _, d := range corpus {
		if named[d.Name] {
			rows = append(rows, d)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].LoC > rows[j].LoC })
	var sb strings.Builder
	sb.WriteString("Table I: Details of a few representative designs in the test set\n")
	fmt.Fprintf(&sb, "%-26s %8s  %-13s %s\n", "Verilog Design", "# Lines", "Design Type", "Design Functionality")
	for _, d := range rows {
		kind := "Combinational"
		if d.Sequential {
			kind = "Sequential"
		}
		fmt.Fprintf(&sb, "%-26s %8d  %-13s %s\n", d.Name, d.LoC, kind, d.Functionality)
	}
	return sb.String()
}

// Figure3 renders the per-design LoC series of the test set.
func Figure3(corpus []bench.Design) string {
	var sb strings.Builder
	sb.WriteString("Figure 3: Design details in the test set (lines of code, excluding comments and blanks)\n")
	sorted := append([]bench.Design{}, corpus...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].LoC > sorted[j].LoC })
	maxLoC := sorted[0].LoC
	for _, d := range sorted {
		bar := strings.Repeat("#", 1+d.LoC*50/maxLoC)
		fmt.Fprintf(&sb, "%-26s %5d %s\n", d.FileName, d.LoC, bar)
	}
	return sb.String()
}

// metricsRow renders one Pass/CEX/Error triple.
func metricsRow(label string, m Metrics) string {
	return fmt.Sprintf("  %-24s pass=%5.3f  cex=%5.3f  error=%5.3f  (n=%d)\n",
		label, m.Pass(), m.CEX(), m.Error(), m.Total())
}

// Figure6 renders the per-model 1-shot vs 5-shot comparison (Fig. 6a-d).
// results must contain the (model, k) grid from RunAllCOTS.
func Figure6(results []RunResult) string {
	var sb strings.Builder
	sb.WriteString("Figure 6: Accuracy of generated assertions per COTS LLM (1-shot vs 5-shot)\n")
	byModel := groupByModel(results)
	for _, name := range modelOrder(results) {
		fmt.Fprintf(&sb, "(%s)\n", name)
		for _, r := range byModel[name] {
			sb.WriteString(metricsRow(fmt.Sprintf("%d-shot", r.Shots), r.Metrics))
		}
	}
	return sb.String()
}

// Figure7 renders the cross-model comparison at fixed k (Fig. 7a,b).
func Figure7(results []RunResult) string {
	var sb strings.Builder
	sb.WriteString("Figure 7: Accuracy comparison between LLMs per k-shot learning\n")
	for _, k := range []int{1, 5} {
		fmt.Fprintf(&sb, "(%d-shot)\n", k)
		for _, name := range modelOrder(results) {
			for _, r := range results {
				if r.Model == name && r.Shots == k {
					sb.WriteString(metricsRow(name, r.Metrics))
				}
			}
		}
	}
	return sb.String()
}

// Figure9 renders the fine-tuned (AssertionLLM) results (Fig. 9a,b).
func Figure9(results []RunResult) string {
	var sb strings.Builder
	sb.WriteString("Figure 9: Accuracy of generated assertions, fine-tuned AssertionLLM\n")
	byModel := groupByModel(results)
	for _, name := range modelOrder(results) {
		fmt.Fprintf(&sb, "(%s)\n", name)
		for _, r := range byModel[name] {
			sb.WriteString(metricsRow(fmt.Sprintf("%d-shot", r.Shots), r.Metrics))
		}
	}
	return sb.String()
}

// Observations derives the paper's headline Observation 1-6 statistics
// from the COTS and fine-tuned grids.
func Observations(cots, finetuned []RunResult) string {
	var sb strings.Builder
	sb.WriteString("Observations (paper Sec. V / Sec. VII headline statistics)\n")
	get := func(rs []RunResult, model string, k int) (Metrics, bool) {
		for _, r := range rs {
			if strings.Contains(r.Model, model) && r.Shots == k {
				return r.Metrics, true
			}
		}
		return Metrics{}, false
	}
	// Observation 1: 1->5 shot improvement ratios.
	sb.WriteString("Obs 1 (valid-assertion gain, 1-shot -> 5-shot):\n")
	for _, m := range []string{"GPT-3.5", "GPT-4o", "CodeLLaMa 2", "LLaMa3-70B"} {
		m1, ok1 := get(cots, m, 1)
		m5, ok5 := get(cots, m, 5)
		if !ok1 || !ok5 {
			continue
		}
		ratio := 0.0
		if m1.Pass() > 0 {
			ratio = m5.Pass() / m1.Pass()
		}
		fmt.Fprintf(&sb, "  %-14s %5.3f -> %5.3f  (%.2fx)\n", m, m1.Pass(), m5.Pass(), ratio)
	}
	// Observation 3: best average valid fraction.
	sb.WriteString("Obs 3 (average valid fraction across shots):\n")
	type avg struct {
		name string
		pass float64
	}
	var avgs []avg
	for _, m := range []string{"GPT-3.5", "GPT-4o", "CodeLLaMa 2", "LLaMa3-70B"} {
		m1, ok1 := get(cots, m, 1)
		m5, ok5 := get(cots, m, 5)
		if ok1 && ok5 {
			avgs = append(avgs, avg{m, (m1.Pass() + m5.Pass()) / 2})
		}
	}
	sort.Slice(avgs, func(i, j int) bool { return avgs[i].pass > avgs[j].pass })
	for _, a := range avgs {
		fmt.Fprintf(&sb, "  %-14s avg pass %5.3f\n", a.name, a.pass)
	}
	// Observation 4: ceilings.
	maxPass, maxCEX, maxErr := 0.0, 0.0, 0.0
	for _, r := range cots {
		if r.Metrics.Pass() > maxPass {
			maxPass = r.Metrics.Pass()
		}
		if r.Metrics.CEX() > maxCEX {
			maxCEX = r.Metrics.CEX()
		}
		if r.Metrics.Error() > maxErr {
			maxErr = r.Metrics.Error()
		}
	}
	fmt.Fprintf(&sb, "Obs 4: max pass %.3f, max cex %.3f, max error %.3f across all COTS runs\n",
		maxPass, maxCEX, maxErr)
	// Observation 5: fine-tuning deltas.
	if len(finetuned) > 0 {
		sb.WriteString("Obs 5 (fine-tuning deltas, percentage points of Pass):\n")
		for _, m := range []string{"CodeLLaMa 2", "LLaMa3-70B"} {
			for _, k := range []int{1, 5} {
				base, ok1 := get(cots, m, k)
				ft, ok2 := get(finetuned, m, k)
				if ok1 && ok2 {
					fmt.Fprintf(&sb, "  %-14s %d-shot: pass %+.1fpp, cex %+.1fpp, error %+.1fpp\n",
						m, k,
						100*(ft.Pass()-base.Pass()),
						100*(ft.CEX()-base.CEX()),
						100*(ft.Error()-base.Error()))
				}
			}
		}
		maxFTErr := 0.0
		for _, r := range finetuned {
			if r.Metrics.Error() > maxFTErr {
				maxFTErr = r.Metrics.Error()
			}
		}
		fmt.Fprintf(&sb, "Obs 6: fine-tuned models still emit up to %.1f%% erroneous assertions\n", 100*maxFTErr)
	}
	return sb.String()
}

func groupByModel(results []RunResult) map[string][]RunResult {
	out := map[string][]RunResult{}
	for _, r := range results {
		out[r.Model] = append(out[r.Model], r)
	}
	for _, rs := range out {
		sort.Slice(rs, func(i, j int) bool { return rs[i].Shots < rs[j].Shots })
	}
	return out
}

func modelOrder(results []RunResult) []string {
	var order []string
	seen := map[string]bool{}
	for _, r := range results {
		if !seen[r.Model] {
			seen[r.Model] = true
			order = append(order, r.Model)
		}
	}
	return order
}
