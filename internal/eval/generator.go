package eval

import (
	"context"
	"fmt"

	"assertionbench/internal/bench"
	"assertionbench/internal/fpv"
	"assertionbench/internal/llm"
	"assertionbench/internal/mine"
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// The runner's two pluggable stages. A Generator produces candidate
// assertions for one design (a simulated LLM, a fine-tuned model, or a
// classical miner — the paper's Fig. 4 stage 2 and the GOLDMINE/HARM
// baselines it compares against); a Verifier decides each candidate's
// fate (the Fig. 4 stage 4 FPV engine, or any stand-in). Everything else
// in the pipeline — prompt/ICL handling, the corrector, metrics, the
// worker pool and its determinism guarantees — is shared across sources,
// which is what makes miner-vs-LLM comparisons apples-to-apples.

// GenOptions parameterize one per-design generation call.
type GenOptions struct {
	// Shots is the number of in-context examples supplied.
	Shots int
	// Seed is the per-design composed seed: a pure function of the run
	// seed, the design's global corpus index, and the shot count. Equal
	// inputs must produce equal outputs for the runner's determinism
	// contract to hold.
	Seed int64
}

// GenOutput is what a Generator hands the rest of the pipeline.
type GenOutput struct {
	// Assertions are the candidate lines (one assertion per entry).
	Assertions []string
	// OffTask and Grounded are channel bookkeeping for ablation analysis;
	// generators without the concepts leave them zero.
	OffTask  int
	Grounded int
}

// Generator is an assertion source. Implementations must be safe for
// concurrent use (the worker pool shares one) and deterministic in
// (design, examples, GenOptions).
type Generator interface {
	Name() string
	Generate(ctx context.Context, d bench.Design, icl []llm.Example, opt GenOptions) (GenOutput, error)
}

// ModelGenerator adapts a simulated LLM to the Generator interface: it
// renders the paper's Fig. 5 prompt, samples the model, and splits the
// raw completion into candidate lines.
type ModelGenerator struct {
	Model *llm.Model
}

// NewModelGenerator builds the Generator for one model profile.
func NewModelGenerator(p llm.Profile) ModelGenerator {
	return ModelGenerator{Model: llm.New(p)}
}

func (g ModelGenerator) Name() string { return g.Model.Profile.Name }

func (g ModelGenerator) Generate(ctx context.Context, d bench.Design, icl []llm.Example, opt GenOptions) (GenOutput, error) {
	prompt := llm.BuildPrompt(icl, d.Source, g.Model.Profile.ContextWindow)
	r, err := g.Model.Generate(ctx, prompt, llm.GenOptions{Shots: opt.Shots, Seed: opt.Seed})
	if err != nil {
		return GenOutput{}, err
	}
	return GenOutput{
		Assertions: sva.SplitAssertions(r.Text),
		OffTask:    r.OffTask,
		Grounded:   r.Grounded,
	}, nil
}

// MinerFunc is the shape shared by mine.GoldMine, mine.Harm and
// mine.Security.
type MinerFunc func(ctx context.Context, nl *verilog.Netlist, opt mine.Options) ([]mine.Mined, error)

// MinerGenerator adapts a classical miner to the Generator interface, so
// GOLDMINE/HARM run through the exact same pipeline (corrector, FPV,
// metrics, worker pool) as the LLMs they are compared against. The
// in-context examples are ignored — miners read the RTL, not a prompt.
type MinerGenerator struct {
	name string
	fn   MinerFunc
	opt  mine.Options
}

// NewMinerGenerator wraps an arbitrary miner. The zero opt fields default
// per mine.Options; opt.Seed is overridden per design by the runner's
// composed seed so mined output follows the same determinism contract as
// model output.
func NewMinerGenerator(name string, fn MinerFunc, opt mine.Options) MinerGenerator {
	return MinerGenerator{name: name, fn: fn, opt: opt}
}

// GoldMineGenerator is the GOLDMINE-style miner as an assertion source.
func GoldMineGenerator(opt mine.Options) MinerGenerator {
	return NewMinerGenerator("GOLDMINE", mine.GoldMine, opt)
}

// HarmGenerator is the HARM-style miner as an assertion source.
func HarmGenerator(opt mine.Options) MinerGenerator {
	return NewMinerGenerator("HARM", mine.Harm, opt)
}

func (g MinerGenerator) Name() string { return g.name }

func (g MinerGenerator) Generate(ctx context.Context, d bench.Design, _ []llm.Example, opt GenOptions) (GenOutput, error) {
	nl, err := bench.Elaborate(d)
	if err != nil {
		return GenOutput{}, err
	}
	mopt := g.opt
	mopt.Seed = opt.Seed
	mined, err := g.fn(ctx, nl, mopt)
	if err != nil {
		return GenOutput{}, fmt.Errorf("miner %s on %s: %w", g.name, d.Name, err)
	}
	out := GenOutput{Assertions: make([]string, 0, len(mined))}
	for _, m := range mined {
		out.Assertions = append(out.Assertions, m.Assertion.String()+";")
	}
	// Mined assertions are behaviour-derived by construction.
	out.Grounded = len(out.Assertions)
	return out, nil
}

// Verifier classifies one candidate assertion against an elaborated
// design. d is the benchmark entry the netlist came from, for
// implementations that work from source rather than netlists.
//
// A Verifier instance is NOT required to be safe for concurrent use: the
// runner builds one per worker via RunOptions.NewVerifier.
type Verifier interface {
	Verify(ctx context.Context, d bench.Design, nl *verilog.Netlist, assertion string, opt fpv.Options) fpv.Result
}

// BatchVerifier is the optional batched extension of Verifier: verify a
// design's whole candidate list in one call, so implementations can
// amortize design-state exploration across the batch. The runner uses it
// when available; fpv.Options.Batch still selects per-property search
// inside the call (verdicts are identical either way).
type BatchVerifier interface {
	VerifyBatch(ctx context.Context, d bench.Design, nl *verilog.Netlist, assertions []string, opt fpv.Options) []fpv.Result
}

type engineVerifier struct {
	eng *fpv.Engine
}

func (v engineVerifier) Verify(ctx context.Context, _ bench.Design, nl *verilog.Netlist, assertion string, opt fpv.Options) fpv.Result {
	return v.eng.VerifySource(ctx, nl, assertion, opt)
}

func (v engineVerifier) VerifyBatch(ctx context.Context, _ bench.Design, nl *verilog.Netlist, assertions []string, opt fpv.Options) []fpv.Result {
	return v.eng.VerifyAll(ctx, nl, assertions, opt)
}

// NewEngineVerifier returns the default FPV-backed Verifier: one reusable
// fpv.Engine, reset between calls, sharing the process-wide reachability
// graph cache. Not safe for concurrent use.
func NewEngineVerifier() Verifier {
	eng := fpv.NewEngine()
	eng.Graphs = bench.DefaultElab.Graphs()
	return engineVerifier{eng: eng}
}
