// Package eval implements the paper's evaluation framework: the Fig. 4
// pipeline (k-shot ICL -> generation -> syntax corrector -> FPV) for COTS
// models, the Fig. 8 pipeline (fine-tune -> generation -> FPV, corrector
// removed) for AssertionLLM, the Pass/CEX/Error metrics of Sec. IV, and
// text renderers for every table and figure in the paper.
package eval

import (
	"encoding/json"
	"fmt"

	"assertionbench/internal/fpv"
)

// Verdict is the paper's three-way assertion classification (Sec. IV).
type Verdict int

// Verdicts.
const (
	// VerdictPass: the FPV engine attests the assertion (valid or vacuous).
	VerdictPass Verdict = iota
	// VerdictCEX: the FPV engine produced a counter-example.
	VerdictCEX
	// VerdictError: the assertion is syntactically or semantically invalid
	// even after correction.
	VerdictError
	// VerdictUnknown: a verification budget (RunOptions.Deadline or
	// RunOptions.DesignBudget) expired before the engine decided the
	// assertion. An anytime outcome, not a fourth quality class: rerunning
	// without the budget (or resuming over the warm caches and cost
	// journal) converges to one of the three paper verdicts.
	VerdictUnknown
)

func (v Verdict) String() string {
	switch v {
	case VerdictPass:
		return "pass"
	case VerdictCEX:
		return "cex"
	case VerdictUnknown:
		return "unknown"
	default:
		return "error"
	}
}

// Classify maps an FPV result to the paper's metric.
func Classify(r fpv.Result) Verdict {
	switch {
	case r.Status == fpv.StatusError:
		return VerdictError
	case r.Status == fpv.StatusCEX:
		return VerdictCEX
	case r.Status == fpv.StatusUnknown:
		return VerdictUnknown
	default:
		return VerdictPass
	}
}

// Metrics are the Pass/CEX/Error fractions over all generated assertions.
type Metrics struct {
	NPass  int `json:"n_pass"`
	NCEX   int `json:"n_cex"`
	NError int `json:"n_error"`
	// NStatic counts verdicts (across all three classes) discharged by
	// the static pre-verification pass without any state-space search.
	// It is an overlay on the other counters, not a fourth class: a
	// statically proven property still counts in NPass.
	NStatic int `json:"n_static"`
	// NUnknown counts verdicts a budgeted (anytime) run left undecided.
	// Always zero for unbudgeted runs.
	NUnknown int `json:"n_unknown"`
	// NErrored counts designs (not assertions) whose job failed and was
	// converted to an errored outcome by ErrorPolicyContinue. Like
	// NStatic it is a design-level overlay, not part of Total: an
	// errored design produced no classified assertions. Always zero
	// under the default ErrorPolicyFail.
	NErrored int `json:"n_errored"`
}

// MarshalJSON emits counts plus derived fractions for downstream tooling.
func (m Metrics) MarshalJSON() ([]byte, error) {
	type out struct {
		NPass    int     `json:"n_pass"`
		NCEX     int     `json:"n_cex"`
		NError   int     `json:"n_error"`
		NStatic  int     `json:"n_static"`
		NUnknown int     `json:"n_unknown"`
		NErrored int     `json:"n_errored"`
		Pass     float64 `json:"pass"`
		CEX      float64 `json:"cex"`
		Error    float64 `json:"error"`
		Static   float64 `json:"static"`
		Unknown  float64 `json:"unknown"`
	}
	return json.Marshal(out{
		NPass: m.NPass, NCEX: m.NCEX, NError: m.NError, NStatic: m.NStatic, NUnknown: m.NUnknown,
		NErrored: m.NErrored,
		Pass:     m.Pass(), CEX: m.CEX(), Error: m.Error(), Static: m.Static(), Unknown: m.Unknown(),
	})
}

// Add accumulates one verdict.
func (m *Metrics) Add(v Verdict) {
	switch v {
	case VerdictPass:
		m.NPass++
	case VerdictCEX:
		m.NCEX++
	case VerdictUnknown:
		m.NUnknown++
	default:
		m.NError++
	}
}

// Total is the number of classified assertions.
func (m Metrics) Total() int { return m.NPass + m.NCEX + m.NError + m.NUnknown }

// Pass is the fraction of valid (incl. vacuous) assertions.
func (m Metrics) Pass() float64 { return frac(m.NPass, m.Total()) }

// CEX is the fraction of refuted assertions.
func (m Metrics) CEX() float64 { return frac(m.NCEX, m.Total()) }

// Error is the fraction of syntactically/semantically broken assertions.
func (m Metrics) Error() float64 { return frac(m.NError, m.Total()) }

// Static is the fraction of verdicts discharged by the static
// pre-verification pass.
func (m Metrics) Static() float64 { return frac(m.NStatic, m.Total()) }

// Unknown is the fraction of verdicts a budgeted run left undecided.
func (m Metrics) Unknown() float64 { return frac(m.NUnknown, m.Total()) }

func frac(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

func (m Metrics) String() string {
	s := fmt.Sprintf("pass=%.3f cex=%.3f error=%.3f", m.Pass(), m.CEX(), m.Error())
	if m.NUnknown != 0 {
		s += fmt.Sprintf(" unknown=%.3f", m.Unknown())
	}
	s += fmt.Sprintf(" (n=%d)", m.Total())
	if m.NErrored != 0 {
		s += fmt.Sprintf(" [%d designs errored]", m.NErrored)
	}
	return s
}
