package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"assertionbench/internal/verilog"
)

// Trace is a recorded simulation: one value vector (indexed by net index)
// per cycle. Values are sampled pre-edge (inputs applied, combinational
// logic settled, registers still holding their cycle-start values), the
// same convention the FPV engine uses, so trace-mined temporal relations
// verify unchanged.
type Trace struct {
	Netlist *verilog.Netlist
	Cycles  [][]uint64
}

// Len returns the number of recorded cycles.
func (t *Trace) Len() int { return len(t.Cycles) }

// Value returns the value of net index at cycle.
func (t *Trace) Value(cycle, net int) uint64 { return t.Cycles[cycle][net] }

// ValueOf returns the value of the named net at cycle.
func (t *Trace) ValueOf(cycle int, name string) (uint64, error) {
	i := t.Netlist.NetIndex(name)
	if i < 0 {
		return 0, fmt.Errorf("sim: no net named %q", name)
	}
	return t.Cycles[cycle][i], nil
}

// Record captures the current settled values into the trace.
func (t *Trace) record(env []uint64) {
	row := make([]uint64, len(env))
	copy(row, env)
	t.Cycles = append(t.Cycles, row)
}

// String renders the trace as a waveform-style table of all nets, intended
// for debugging and CEX reporting.
func (t *Trace) String() string {
	var sb strings.Builder
	names := make([]string, len(t.Netlist.Nets))
	widest := 5
	for i, n := range t.Netlist.Nets {
		names[i] = n.Name
		if len(n.Name) > widest {
			widest = len(n.Name)
		}
	}
	order := make([]int, len(names))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return names[order[a]] < names[order[b]] })
	fmt.Fprintf(&sb, "%-*s", widest+2, "cycle")
	for c := range t.Cycles {
		fmt.Fprintf(&sb, "%6d", c)
	}
	sb.WriteByte('\n')
	for _, i := range order {
		fmt.Fprintf(&sb, "%-*s", widest+2, names[i])
		for c := range t.Cycles {
			fmt.Fprintf(&sb, "%6x", t.Cycles[c][i])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RandomTrace simulates cycles steps of uniformly random stimulus from the
// power-on state (after resetCycles of holding every *rst*-named input
// high) and records every cycle. Deterministic for a given seed.
func RandomTrace(nl *verilog.Netlist, cycles, resetCycles int, seed int64) (*Trace, error) {
	rng := rand.New(rand.NewSource(seed))
	s := New(nl)
	tr := &Trace{Netlist: nl}
	// Drive reset-like inputs high first so FSMs leave their power-on state
	// the way a testbench would.
	for i := 0; i < resetCycles; i++ {
		vals := RandomInputs(nl, rng)
		for k, idx := range nl.Inputs {
			if isResetName(nl.Nets[idx].Name) {
				vals[k] = 1 & nl.Nets[idx].Mask()
			}
		}
		if err := s.StepWith(vals); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cycles; i++ {
		vals := RandomInputs(nl, rng)
		for k, idx := range nl.Inputs {
			if isResetName(nl.Nets[idx].Name) {
				// Occasional mid-run resets exercise recovery behaviour but
				// mostly stay deasserted.
				if rng.Intn(32) == 0 {
					vals[k] = 1 & nl.Nets[idx].Mask()
				} else {
					vals[k] = 0
				}
			}
		}
		if err := s.SetInputs(vals); err != nil {
			return nil, err
		}
		s.Settle()
		tr.record(s.Env())
		s.Step()
	}
	return tr, nil
}

// isResetName reports whether a signal name looks like a reset.
func isResetName(name string) bool {
	base := name
	if i := strings.LastIndexByte(base, '.'); i >= 0 {
		base = base[i+1:]
	}
	base = strings.ToLower(base)
	return strings.Contains(base, "rst") || strings.Contains(base, "reset") || strings.Contains(base, "clear")
}
