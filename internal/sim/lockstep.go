package sim

// The backend lockstep comparator shared by the corpus equivalence tests
// and the dverify backend oracle, so the two checks cannot drift apart.

import (
	"fmt"
	"math/rand"

	"assertionbench/internal/verilog"
)

// CompareBackends drives identical random stimulus through the
// interpreting and compiled simulators for the given number of cycles
// and compares every net of every settled and stepped environment
// (power-on state included). It returns "" on bit-identical behaviour,
// or a description of the first divergence.
func CompareBackends(nl *verilog.Netlist, cycles int, seed int64) string {
	ref := New(nl)
	cmp := NewCompiled(nl)
	diff := func(phase string, cycle int) string {
		re, ce := ref.Env(), cmp.Env()
		for i := range re {
			if re[i] != ce[i] {
				return fmt.Sprintf("simulator backends diverge at cycle %d (%s): net %s interp=%#x compiled=%#x",
					cycle, phase, nl.Nets[i].Name, re[i], ce[i])
			}
		}
		return ""
	}
	if d := diff("power-on", 0); d != "" {
		return d
	}
	rng := rand.New(rand.NewSource(seed))
	for c := 0; c < cycles; c++ {
		vals := RandomInputs(nl, rng)
		if err := ref.SetInputs(vals); err != nil {
			return fmt.Sprintf("interp simulator rejects generated inputs: %v", err)
		}
		if err := cmp.SetInputs(vals); err != nil {
			return fmt.Sprintf("compiled simulator rejects generated inputs: %v", err)
		}
		ref.Settle()
		cmp.Settle()
		if d := diff("settled", c); d != "" {
			return d
		}
		ref.Step()
		cmp.Step()
		if d := diff("stepped", c); d != "" {
			return d
		}
	}
	return ""
}
