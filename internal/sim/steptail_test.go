package sim_test

// The short-program step-tail fast path: tiny acyclic designs fuse
// settle/seq/commit into one straight dispatch run with shadowed
// non-blocking stores. These tests pin (a) when the tail engages, (b)
// that every shadow-transform corner (conditional NB stores, multiple NB
// writes to one net, part-selects, reset const chains, blocking writes)
// stays bit-identical to the interpreter.

import (
	"testing"

	"assertionbench/internal/sim"
	"assertionbench/internal/verilog"
)

func programFor(t *testing.T, src string) *verilog.Program {
	t.Helper()
	nl, err := verilog.ElaborateSource(src, "")
	if err != nil {
		t.Fatal(err)
	}
	return nl.Program()
}

const rstSyncSrc = `
module rst_sync(clk, arst_n, rst_n);
input clk, arst_n;
output rst_n;
reg [3:0] sync;
assign rst_n = sync[3];
always @(posedge clk)
  if (!arst_n) sync <= 4'b0;
  else sync <= {sync[2:0], 1'b1};
endmodule
`

func TestStepTailEngagesOnTinyDesigns(t *testing.T) {
	if !programFor(t, rstSyncSrc).HasStepTail() {
		t.Error("reset synchronizer (the fast path's target shape) has no step tail")
	}
	// A blocking+non-blocking mix on one net is ineligible: commit-time
	// read-modify-write would observe the blocking write. Both store
	// shapes must be caught — the explicit IStore form (q = q + 1, whose
	// result width exceeds the net's so it cannot fuse) and the
	// store-fused form (q = a & b, where the ALU op writes the net slot
	// directly and no IStore exists to match on).
	for name, src := range map[string]string{
		"explicit_store": `
module mix(clk, a, q);
input clk, a;
output reg [3:0] q;
always @(posedge clk) begin
  q = q + 1;
  q[0] <= a;
end
endmodule
`,
		"fused_store": `
module mixf(clk, a, b, c, q);
input clk, a, b, c;
output reg [1:0] q;
always @(posedge clk) begin
  q = {a, b};
  q[0] <= c;
end
endmodule
`,
	} {
		if programFor(t, src).HasStepTail() {
			t.Errorf("%s: blocking+NB mix on one net must be ineligible for the step tail", name)
		}
	}
}

// TestStepTailFusedBlockingStoreLockstep pins the bug where a
// store-fused blocking write (no IStore instruction) to an NB-stored net
// slipped past eligibility and the shadowed NB commit clobbered the
// blocking result: the design must verify bit-identically across
// backends whether or not the tail engages.
func TestStepTailFusedBlockingStoreLockstep(t *testing.T) {
	src := `
module fb(clk, a, b, c, q);
input clk, a, b, c;
output reg [1:0] q;
always @(posedge clk) begin
  q = {a, b};
  q[0] <= c;
end
endmodule
`
	nl, err := verilog.ElaborateSource(src, "")
	if err != nil {
		t.Fatal(err)
	}
	if d := sim.CompareBackends(nl, 128, 99); d != "" {
		t.Fatal(d)
	}
}

func TestStepTailLockstep(t *testing.T) {
	cases := []struct{ name, src string }{
		{"rst_sync", rstSyncSrc},
		{"conditional_nb", `
module cnb(clk, en, d, q);
input clk, en, d;
output reg q;
always @(posedge clk) if (en) q <= d;
endmodule
`},
		{"double_write", `
module dw(clk, a, b, sel, q);
input clk, a, b, sel;
output reg q;
always @(posedge clk) begin
  q <= a;
  if (sel) q <= b;
end
endmodule
`},
		{"part_select_nb", `
module ps(clk, d, q);
input clk;
input [1:0] d;
output reg [3:0] q;
always @(posedge clk) begin
  q[1:0] <= d;
  q[3:2] <= q[1:0];
end
endmodule
`},
		{"const_reset_chain", `
module crc(clk, rst, en, a, q);
input clk, rst, en, a;
output reg [2:0] q;
always @(posedge clk)
  if (rst) q <= 3'd0;
  else if (en) q <= {q[1:0], a};
endmodule
`},
		{"blocking_disjoint", `
module bd(clk, a, q, s);
input clk, a;
output reg q;
output reg [1:0] s;
always @(posedge clk) begin
  s = s + 1;
  q <= a ^ s[0];
end
endmodule
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nl, err := verilog.ElaborateSource(tc.src, "")
			if err != nil {
				t.Fatal(err)
			}
			if !nl.Program().HasStepTail() {
				t.Fatalf("%s: expected the step-tail fast path to engage", tc.name)
			}
			if d := sim.CompareBackends(nl, 128, 42); d != "" {
				t.Fatalf("%s: %s", tc.name, d)
			}
		})
	}
}
