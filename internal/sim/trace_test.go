package sim

import (
	"strings"
	"testing"
)

func TestTraceAccessors(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	tr, err := RandomTrace(nl, 10, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 10 {
		t.Fatalf("len = %d", tr.Len())
	}
	v, err := tr.ValueOf(3, "count")
	if err != nil {
		t.Fatal(err)
	}
	if v != tr.Value(3, nl.NetIndex("count")) {
		t.Error("ValueOf and Value disagree")
	}
	if _, err := tr.ValueOf(0, "ghost"); err == nil {
		t.Error("ValueOf on unknown net should fail")
	}
}

func TestTraceString(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	tr, err := RandomTrace(nl, 4, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.String()
	for _, name := range []string{"clk", "rst", "en", "count", "cycle"} {
		if !strings.Contains(s, name) {
			t.Errorf("trace table missing %q", name)
		}
	}
	if got := strings.Count(s, "\n"); got != len(nl.Nets)+1 {
		t.Errorf("trace table has %d lines, want %d", got, len(nl.Nets)+1)
	}
}

func TestResetHelper(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	s := New(nl)
	s.SetInput("en", 1)
	for i := 0; i < 5; i++ {
		s.Step()
	}
	if v, _ := s.Value("count"); v == 0 {
		t.Fatal("premise: counter should have advanced")
	}
	if err := s.Reset("rst", true, 2); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Value("count"); v != 0 {
		t.Errorf("count = %d after reset, want 0", v)
	}
	if v, _ := s.Value("rst"); v != 0 {
		t.Error("Reset must release the reset signal")
	}
	if err := s.Reset("ghost", true, 1); err == nil {
		t.Error("Reset on unknown signal should fail")
	}
}

func TestStepWith(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	s := New(nl)
	// Input order is netlist order: rst, en.
	if err := s.StepWith([]uint64{0, 1}); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Value("count"); v != 1 {
		t.Errorf("count = %d, want 1", v)
	}
	if err := s.StepWith([]uint64{1}); err == nil {
		t.Error("StepWith with wrong arity should fail")
	}
}

func TestLoadStateWithInputsErrors(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	s := New(nl)
	if err := s.LoadStateWithInputs([]uint64{0}, []uint64{0, 0, 0}); err == nil {
		t.Error("bad state arity should fail")
	}
	if err := s.LoadStateWithInputs([]uint64{0}, []uint64{0}); err == nil {
		t.Error("bad input arity should fail")
	}
	if err := s.LoadStateWithInputs([]uint64{7}, []uint64{0, 0}); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Value("count"); v != 7 {
		t.Errorf("count = %d, want 7", v)
	}
}

func TestValueAndCycleAccessors(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	s := New(nl)
	if s.Netlist() != nl {
		t.Error("Netlist accessor broken")
	}
	if s.Cycle() != 0 {
		t.Error("fresh simulator at cycle 0")
	}
	s.Step()
	s.Step()
	if s.Cycle() != 2 {
		t.Errorf("cycle = %d, want 2", s.Cycle())
	}
	if _, err := s.Value("ghost"); err == nil {
		t.Error("Value on unknown net should fail")
	}
	idx := nl.NetIndex("count")
	if s.ValueIdx(idx) != s.Env()[idx] {
		t.Error("ValueIdx and Env disagree")
	}
}

func TestTraceFromSamples(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	samples := [][]uint64{make([]uint64, len(nl.Nets)), make([]uint64, len(nl.Nets))}
	samples[1][nl.NetIndex("count")] = 9
	tr := TraceFromSamples(nl, samples)
	if tr.Len() != 2 || tr.Value(1, nl.NetIndex("count")) != 9 {
		t.Error("TraceFromSamples wrapping wrong")
	}
}
