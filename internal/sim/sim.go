// Package sim is a cycle-accurate, two-valued simulator for elaborated
// Verilog netlists. One Step models a full clock cycle: data inputs are
// applied, combinational logic settles, every edge-triggered process fires
// once (all clocks are unified into a single global phase), non-blocking
// updates commit, and combinational logic settles again.
//
// Modelling notes, matching DESIGN.md:
//   - x/z are not modelled; unknown digits in literals read as 0 and the
//     power-on state is all zeros unless a reset sequence is driven.
//   - Asynchronous set/reset signals in sensitivity lists are sampled
//     synchronously at the clock boundary. For reset-style logic
//     (if (rst) ... else ...) this yields the same set of reachable states.
//   - Multi-clock designs advance on the unified phase; relative clock
//     ratios are not modelled.
package sim

import (
	"fmt"
	"math/rand"

	"assertionbench/internal/verilog"
)

// Simulator drives one elaborated netlist. Two execution backends share
// the one Simulator type and behave bit-identically (the dverify harness
// cross-checks them): New interprets the EExpr/EStmt tree directly (the
// reference), NewCompiled executes the netlist's lowered register-machine
// program (the default on hot paths).
type Simulator struct {
	nl  *verilog.Netlist
	env []uint64
	nba []verilog.NBWrite
	// mach executes the compiled program when non-nil; env then aliases
	// the machine frame's net slots.
	mach *verilog.Machine
	// settleLimit bounds fixpoint iteration for cyclic comb logic.
	settleLimit int
	cycle       int
	// snapBuf is the reused change-detection scratch for the cyclic
	// fixpoint fallback (no per-iteration allocation).
	snapBuf []uint64
	// regMasks/inMasks are the width masks of Regs/Inputs in netlist
	// order, precomputed so the state-load hot path (the FPV search
	// calls it once per explored input vector) touches no Net structs.
	regMasks []uint64
	inMasks  []uint64
	// settled tracks whether comb logic is settled for the current env.
	// Settle is a pure, idempotent function of the environment, so a
	// repeated settle with no intervening write is skipped — the FPV
	// search's load-observe-step cycle otherwise settles twice per
	// explored input vector.
	settled bool
}

func (s *Simulator) initMasks() {
	s.regMasks = make([]uint64, len(s.nl.Regs))
	for i, idx := range s.nl.Regs {
		s.regMasks[i] = s.nl.Nets[idx].Mask()
	}
	s.inMasks = make([]uint64, len(s.nl.Inputs))
	for i, idx := range s.nl.Inputs {
		s.inMasks[i] = s.nl.Nets[idx].Mask()
	}
}

// New returns a tree-walking simulator in the power-on (all zero) state,
// with combinational logic settled.
func New(nl *verilog.Netlist) *Simulator {
	s := &Simulator{
		nl:          nl,
		env:         make([]uint64, len(nl.Nets)),
		settleLimit: 64 + len(nl.Assigns) + len(nl.Combs),
	}
	s.initMasks()
	s.settle()
	return s
}

// NewCompiled returns a simulator executing the netlist's compiled
// program (lowered once per netlist and shared), in the power-on state
// with combinational logic settled. Verdict-for-verdict equivalent to
// New; roughly an order of magnitude less interpretation overhead.
func NewCompiled(nl *verilog.Netlist) *Simulator {
	m := verilog.NewMachine(nl.Program())
	s := &Simulator{
		nl:   nl,
		mach: m,
		env:  m.Frame[:len(nl.Nets)],
	}
	s.initMasks()
	s.settle()
	return s
}

// Compiled reports whether the simulator runs the compiled backend.
func (s *Simulator) Compiled() bool { return s.mach != nil }

// Netlist returns the design under simulation.
func (s *Simulator) Netlist() *verilog.Netlist { return s.nl }

// Cycle returns the number of completed Step calls.
func (s *Simulator) Cycle() int { return s.cycle }

// Env exposes the current value environment (net index -> value). The
// returned slice is live; callers must not modify it.
func (s *Simulator) Env() []uint64 { return s.env }

// Value returns the current value of the named net.
func (s *Simulator) Value(name string) (uint64, error) {
	i := s.nl.NetIndex(name)
	if i < 0 {
		return 0, fmt.Errorf("sim: no net named %q", name)
	}
	return s.env[i], nil
}

// ValueIdx returns the current value of net index i.
func (s *Simulator) ValueIdx(i int) uint64 { return s.env[i] }

// SetInput drives the named data input before the next Step.
func (s *Simulator) SetInput(name string, v uint64) error {
	i := s.nl.NetIndex(name)
	if i < 0 {
		return fmt.Errorf("sim: no net named %q", name)
	}
	n := s.nl.Nets[i]
	if !n.IsInput && !n.IsClock {
		return fmt.Errorf("sim: net %q is not an input", name)
	}
	s.env[i] = v & n.Mask()
	s.settled = false
	return nil
}

// SetInputs drives data inputs by netlist input order. vals must have one
// entry per data input.
func (s *Simulator) SetInputs(vals []uint64) error {
	if len(vals) != len(s.nl.Inputs) {
		return fmt.Errorf("sim: got %d input values, design has %d data inputs", len(vals), len(s.nl.Inputs))
	}
	for k, idx := range s.nl.Inputs {
		s.env[idx] = vals[k] & s.inMasks[k]
	}
	s.settled = false
	return nil
}

// settle evaluates continuous assigns and combinational processes. With an
// acyclic order a single forward pass suffices (plus nothing else); cyclic
// logic falls back to bounded fixpoint iteration.
func (s *Simulator) settle() {
	if s.settled {
		return
	}
	s.settled = true
	if s.mach != nil {
		s.mach.Settle()
		return
	}
	nets := s.nl.Nets
	if s.nl.CombOrder != nil {
		for _, item := range s.nl.CombOrder {
			if item < len(s.nl.Assigns) {
				verilog.ExecAssign(&s.nl.Assigns[item], nets, s.env)
			} else {
				p := s.nl.Combs[item-len(s.nl.Assigns)]
				verilog.ExecStmt(p.Body, nets, s.env, &s.nba)
			}
		}
		return
	}
	for iter := 0; iter < s.settleLimit; iter++ {
		changed := false
		for i := range s.nl.Assigns {
			a := &s.nl.Assigns[i]
			before := s.snapshotNets(a.LHS)
			verilog.ExecAssign(a, nets, s.env)
			if !sameNets(s.env, a.LHS, before) {
				changed = true
			}
		}
		for _, p := range s.nl.Combs {
			before := s.snapshotIdx(p.Writes)
			verilog.ExecStmt(p.Body, nets, s.env, &s.nba)
			if !sameIdx(s.env, p.Writes, before) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// snapshotNets and snapshotIdx capture the about-to-be-written values
// into the simulator's reused scratch buffer: the fixpoint fallback runs
// them once per unit per iteration, so per-call allocation would dominate
// cyclic designs. Only one snapshot is live at a time.
func (s *Simulator) snapshotNets(refs []verilog.LRef) []uint64 {
	buf := s.snapBuf[:0]
	for _, r := range refs {
		buf = append(buf, s.env[r.Net])
	}
	s.snapBuf = buf
	return buf
}

func sameNets(env []uint64, refs []verilog.LRef, before []uint64) bool {
	for i, r := range refs {
		if env[r.Net] != before[i] {
			return false
		}
	}
	return true
}

func (s *Simulator) snapshotIdx(idx []int) []uint64 {
	buf := s.snapBuf[:0]
	for _, n := range idx {
		buf = append(buf, s.env[n])
	}
	s.snapBuf = buf
	return buf
}

func sameIdx(env []uint64, idx []int, before []uint64) bool {
	for i, n := range idx {
		if env[n] != before[i] {
			return false
		}
	}
	return true
}

// Settle evaluates combinational logic with the currently driven inputs
// and register values, without advancing the clock. The FPV engine uses
// this to observe the pre-edge (sampled) values of a cycle.
func (s *Simulator) Settle() { s.settle() }

// Step advances one clock cycle with the currently driven inputs.
func (s *Simulator) Step() {
	s.settle()
	if s.mach != nil && s.mach.Program().HasStepTail() {
		// Short-program fast path: the fused step tail runs seq (with
		// shadowed non-blocking stores), commit and the comb re-settle as
		// one straight dispatch — no NBA traffic, no extra call layers.
		// Eligibility guarantees settle never queued NB writes, and the
		// tail ends settled.
		s.mach.ExecStepTail()
		s.cycle++
		return
	}
	if s.mach != nil {
		// Drop comb-settle NB writes (never applied, matching the
		// interpreter), run the seq section, commit the edge's writes.
		s.mach.NBA = s.mach.NBA[:0]
		s.mach.ExecSeq()
		s.mach.CommitNBA()
	} else {
		s.nba = s.nba[:0]
		for _, p := range s.nl.Seqs {
			verilog.ExecStmt(p.Body, s.nl.Nets, s.env, &s.nba)
		}
		for _, w := range s.nba {
			w.Apply(s.env)
		}
	}
	s.settled = false
	s.settle()
	s.cycle++
}

// StepWith drives the data inputs (in netlist input order) and steps.
func (s *Simulator) StepWith(vals []uint64) error {
	if err := s.SetInputs(vals); err != nil {
		return err
	}
	s.Step()
	return nil
}

// Reset drives the named signal to value for cycles steps (with other
// inputs unchanged), then releases it to its complement.
func (s *Simulator) Reset(signal string, activeHigh bool, cycles int) error {
	v := uint64(1)
	if !activeHigh {
		v = 0
	}
	if err := s.SetInput(signal, v); err != nil {
		return err
	}
	for i := 0; i < cycles; i++ {
		s.Step()
	}
	return s.SetInput(signal, v^1)
}

// ResetState returns the simulator to the power-on (all-zero) state
// without reallocating: the environment is zeroed, pending non-blocking
// writes are dropped, the cycle counter restarts, and combinational logic
// re-settles. A reset simulator is indistinguishable from a fresh New —
// pooled FPV engines use this to reuse one simulator across many runs
// instead of rebuilding env buffers per assertion.
func (s *Simulator) ResetState() {
	for i := range s.env {
		s.env[i] = 0
	}
	s.nba = s.nba[:0]
	if s.mach != nil {
		s.mach.NBA = s.mach.NBA[:0]
	}
	s.cycle = 0
	s.settled = false
	s.settle()
}

// CopyState exports the register values (netlist Regs order).
func (s *Simulator) CopyState() []uint64 {
	out := make([]uint64, len(s.nl.Regs))
	s.CopyStateInto(out)
	return out
}

// CopyStateInto writes the register values (netlist Regs order) into dst,
// which must have one entry per register: the allocation-free CopyState
// for callers that snapshot state on a hot path.
func (s *Simulator) CopyStateInto(dst []uint64) {
	for i, idx := range s.nl.Regs {
		dst[i] = s.env[idx]
	}
}

// LoadState restores register values exported by CopyState and re-settles.
func (s *Simulator) LoadState(state []uint64) error {
	if len(state) != len(s.nl.Regs) {
		return fmt.Errorf("sim: state has %d entries, design has %d registers", len(state), len(s.nl.Regs))
	}
	for i, idx := range s.nl.Regs {
		s.env[idx] = state[i] & s.regMasks[i]
	}
	s.settled = false
	s.settle()
	return nil
}

// LoadStateWithInputs restores register values and drives the data inputs
// in one call, settling combinational logic exactly once. The FPV engine
// uses this on its hot path.
func (s *Simulator) LoadStateWithInputs(state, inputs []uint64) error {
	if len(state) != len(s.nl.Regs) {
		return fmt.Errorf("sim: state has %d entries, design has %d registers", len(state), len(s.nl.Regs))
	}
	if len(inputs) != len(s.nl.Inputs) {
		return fmt.Errorf("sim: got %d input values, design has %d data inputs", len(inputs), len(s.nl.Inputs))
	}
	for i, idx := range s.nl.Regs {
		s.env[idx] = state[i] & s.regMasks[i]
	}
	for i, idx := range s.nl.Inputs {
		s.env[idx] = inputs[i] & s.inMasks[i]
	}
	s.settled = false
	s.settle()
	return nil
}

// RandomInputs returns a uniformly random data-input vector.
func RandomInputs(nl *verilog.Netlist, rng *rand.Rand) []uint64 {
	out := make([]uint64, len(nl.Inputs))
	for i, idx := range nl.Inputs {
		out[i] = rng.Uint64() & nl.Nets[idx].Mask()
	}
	return out
}
