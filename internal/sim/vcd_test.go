package sim

import (
	"strings"
	"testing"
)

func TestWriteVCD(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	tr, err := RandomTrace(nl, 20, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteVCD(&sb, tr, "counter"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		"$timescale", "$scope module counter",
		"$var wire 1", "$var wire 4", "count", "$enddefinitions",
		"#0", "#19",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("VCD output missing %q", frag)
		}
	}
	// Every net declared exactly once.
	if got := strings.Count(out, "$var wire"); got != len(nl.Nets) {
		t.Errorf("declared %d vars, want %d", got, len(nl.Nets))
	}
	// Identifiers must be unique.
	ids := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "$var wire") {
			parts := strings.Fields(line)
			id := parts[3]
			if ids[id] {
				t.Errorf("duplicate VCD identifier %q", id)
			}
			ids[id] = true
		}
	}
}

func TestVCDOnlyDumpsChanges(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	s := New(nl)
	tr := &Trace{Netlist: nl}
	// Constant-input trace: after the first cycle nothing changes once
	// the counter is held (en=0).
	for i := 0; i < 10; i++ {
		s.Settle()
		row := make([]uint64, len(s.Env()))
		copy(row, s.Env())
		tr.Cycles = append(tr.Cycles, row)
		s.Step()
	}
	var sb strings.Builder
	if err := WriteVCD(&sb, tr, "counter"); err != nil {
		t.Fatal(err)
	}
	// Count value lines between #1 and the end: with a frozen design only
	// timestamps appear.
	body := sb.String()[strings.Index(sb.String(), "#1\n"):]
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t.Fatalf("frozen trace dumped a change: %q", line)
	}
}

func TestVCDIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for k := 0; k < 500; k++ {
		id := vcdID(k)
		if seen[id] {
			t.Fatalf("vcdID(%d) collides: %q", k, id)
		}
		seen[id] = true
	}
}
