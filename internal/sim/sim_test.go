package sim

import (
	"testing"

	"assertionbench/internal/verilog"
)

const counterSrc = `
module counter(clk, rst, en, count);
input clk, rst, en;
output [3:0] count;
reg [3:0] count;
always @(posedge clk or posedge rst)
  if (rst)
    count <= 4'b0;
  else if (en)
    count <= count + 1;
endmodule
`

func elab(t *testing.T, src, top string) *verilog.Netlist {
	t.Helper()
	nl, err := verilog.ElaborateSource(src, top)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return nl
}

func val(t *testing.T, s *Simulator, name string) uint64 {
	t.Helper()
	v, err := s.Value(name)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCounterBehaviour(t *testing.T) {
	s := New(elab(t, counterSrc, "counter"))
	if err := s.SetInput("rst", 1); err != nil {
		t.Fatal(err)
	}
	s.Step()
	if got := val(t, s, "count"); got != 0 {
		t.Fatalf("after reset count = %d, want 0", got)
	}
	if err := s.SetInput("rst", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.SetInput("en", 1); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		s.Step()
		want := uint64(i % 16) // wraps at 4 bits
		if got := val(t, s, "count"); got != want {
			t.Fatalf("cycle %d: count = %d, want %d", i, got, want)
		}
	}
	// en=0 holds the value.
	if err := s.SetInput("en", 0); err != nil {
		t.Fatal(err)
	}
	before := val(t, s, "count")
	s.Step()
	s.Step()
	if got := val(t, s, "count"); got != before {
		t.Fatalf("count moved with en=0: %d -> %d", before, got)
	}
}

func TestNonBlockingSwap(t *testing.T) {
	src := `
module swap(clk, ld, x, a, b);
input clk, ld, x;
output a, b;
reg a, b;
always @(posedge clk)
  if (ld) begin
    a <= x;
    b <= ~x;
  end else begin
    a <= b;
    b <= a;
  end
endmodule
`
	s := New(elab(t, src, "swap"))
	s.SetInput("ld", 1)
	s.SetInput("x", 1)
	s.Step() // a=1 b=0
	if val(t, s, "a") != 1 || val(t, s, "b") != 0 {
		t.Fatalf("after load a=%d b=%d, want 1,0", val(t, s, "a"), val(t, s, "b"))
	}
	s.SetInput("ld", 0)
	s.Step() // swap: a=0 b=1 (simultaneous read of old values)
	if val(t, s, "a") != 0 || val(t, s, "b") != 1 {
		t.Fatalf("after swap a=%d b=%d, want 0,1 (non-blocking semantics)", val(t, s, "a"), val(t, s, "b"))
	}
	s.Step()
	if val(t, s, "a") != 1 || val(t, s, "b") != 0 {
		t.Fatalf("after second swap a=%d b=%d, want 1,0", val(t, s, "a"), val(t, s, "b"))
	}
}

func TestBlockingOrderWithinProcess(t *testing.T) {
	// With blocking assignments the second statement sees the first's value.
	src := `
module blk(clk, x, y);
input clk, x;
output y;
reg t, y;
always @(posedge clk) begin
  t = x;
  y = t;
end
endmodule
`
	s := New(elab(t, src, "blk"))
	s.SetInput("x", 1)
	s.Step()
	if val(t, s, "y") != 1 {
		t.Fatal("blocking chain should propagate x to y in one cycle")
	}
}

func TestArbiterCombOutputs(t *testing.T) {
	nl := elab(t, arbiterSrc, "arb2")
	s := New(nl)
	// Power-on: gnt_=0. req1=1 -> gnt1=1 (comb).
	s.SetInput("req1", 1)
	s.SetInput("req2", 0)
	s.Settle()
	if val(t, s, "gnt1") != 1 {
		t.Fatal("gnt1 should follow req1 when gnt_=0")
	}
	// After a clock, gnt_ latches gnt1=1.
	s.Step()
	if val(t, s, "gnt_") != 1 {
		t.Fatal("gnt_ should latch gnt1")
	}
	// Now gnt1 = req1 & req2 = 0 with req2=0.
	if val(t, s, "gnt1") != 0 {
		t.Fatal("gnt1 should be req1&req2 when gnt_=1")
	}
}

const arbiterSrc = `
module arb2(clk, rst, req1, req2, gnt1, gnt2);
input clk, rst, req1, req2;
output gnt1, gnt2;
reg gnt_, gnt1, gnt2;
always @(posedge clk or posedge rst)
  if (rst) gnt_ <= 0;
  else gnt_ <= gnt1;
always @(*)
  if (gnt_) begin
    gnt1 = req1 & req2;
    gnt2 = req2;
  end else begin
    gnt1 = req1;
    gnt2 = req2 & ~req1;
  end
endmodule
`

func TestConcatLHS(t *testing.T) {
	src := `
module split(clk, d, hi, lo);
input clk;
input [7:0] d;
output [3:0] hi, lo;
reg [3:0] hi, lo;
always @(posedge clk)
  {hi, lo} <= d;
endmodule
`
	s := New(elab(t, src, "split"))
	s.SetInput("d", 0xAB)
	s.Step()
	if val(t, s, "hi") != 0xA || val(t, s, "lo") != 0xB {
		t.Fatalf("hi=%x lo=%x, want a,b", val(t, s, "hi"), val(t, s, "lo"))
	}
}

func TestDynamicBitWrite(t *testing.T) {
	src := `
module onehot(clk, idx, q);
input clk;
input [1:0] idx;
output [3:0] q;
reg [3:0] q;
always @(posedge clk) begin
  q <= 4'b0;
  q[idx] <= 1'b1;
end
endmodule
`
	s := New(elab(t, src, "onehot"))
	for idx := uint64(0); idx < 4; idx++ {
		s.SetInput("idx", idx)
		s.Step()
		if got := val(t, s, "q"); got != 1<<idx {
			t.Fatalf("idx=%d: q=%04b, want %04b", idx, got, 1<<idx)
		}
	}
}

func TestStateSaveRestore(t *testing.T) {
	s := New(elab(t, counterSrc, "counter"))
	s.SetInput("en", 1)
	for i := 0; i < 5; i++ {
		s.Step()
	}
	st := s.CopyState()
	if val(t, s, "count") != 5 {
		t.Fatalf("count = %d, want 5", val(t, s, "count"))
	}
	s.Step()
	s.Step()
	if err := s.LoadState(st); err != nil {
		t.Fatal(err)
	}
	if val(t, s, "count") != 5 {
		t.Fatalf("restored count = %d, want 5", val(t, s, "count"))
	}
}

func TestRandomTraceDeterminism(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	t1, err := RandomTrace(nl, 50, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := RandomTrace(nl, 50, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Len() != 50 || t2.Len() != 50 {
		t.Fatalf("trace lengths %d/%d, want 50", t1.Len(), t2.Len())
	}
	for c := 0; c < 50; c++ {
		for n := range t1.Cycles[c] {
			if t1.Cycles[c][n] != t2.Cycles[c][n] {
				t.Fatalf("traces with same seed diverge at cycle %d net %d", c, n)
			}
		}
	}
	t3, err := RandomTrace(nl, 50, 2, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for c := 0; c < 50 && same; c++ {
		for n := range t1.Cycles[c] {
			if t1.Cycles[c][n] != t3.Cycles[c][n] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces (suspicious)")
	}
}

func TestTraceCounterInvariant(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	tr, err := RandomTrace(nl, 200, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	// The trace records pre-edge sampled values: rst high at cycle c means
	// count must read 0 at cycle c+1 (the FPV sampling convention).
	rst := nl.NetIndex("rst")
	count := nl.NetIndex("count")
	for c := 0; c+1 < tr.Len(); c++ {
		if tr.Value(c, rst) == 1 && tr.Value(c+1, count) != 0 {
			t.Fatalf("reset at %d did not clear count at %d (count=%d)", c, c+1, tr.Value(c+1, count))
		}
	}
}

func TestSimErrors(t *testing.T) {
	s := New(elab(t, counterSrc, "counter"))
	if err := s.SetInput("nope", 1); err == nil {
		t.Error("SetInput on unknown net should fail")
	}
	if err := s.SetInput("count", 1); err == nil {
		t.Error("SetInput on non-input should fail")
	}
	if err := s.SetInputs([]uint64{1}); err == nil {
		t.Error("SetInputs with wrong arity should fail")
	}
	if err := s.LoadState([]uint64{1, 2, 3}); err == nil {
		t.Error("LoadState with wrong arity should fail")
	}
}

func TestResetStateMatchesFresh(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	s := New(nl)
	// Dirty the simulator: run it well away from power-on.
	if err := s.SetInput("en", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		s.Step()
	}
	if val(t, s, "count") == 0 {
		t.Fatal("simulator did not leave the power-on state")
	}
	s.ResetState()
	fresh := New(nl)
	if s.Cycle() != 0 {
		t.Errorf("cycle after ResetState = %d, want 0", s.Cycle())
	}
	for i, v := range s.Env() {
		if v != fresh.Env()[i] {
			t.Errorf("net %s after ResetState = %d, fresh = %d",
				nl.Nets[i].Name, v, fresh.Env()[i])
		}
	}
	// A reset simulator must behave identically to a fresh one.
	for i := 0; i < 5; i++ {
		if err := s.SetInput("en", 1); err != nil {
			t.Fatal(err)
		}
		if err := fresh.SetInput("en", 1); err != nil {
			t.Fatal(err)
		}
		s.Step()
		fresh.Step()
		if val(t, s, "count") != val(t, fresh, "count") {
			t.Fatalf("cycle %d: reset sim diverged from fresh sim", i)
		}
	}
}
