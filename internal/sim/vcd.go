package sim

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"assertionbench/internal/verilog"
)

// WriteVCD renders a trace as a Value Change Dump (IEEE 1364 §18), the
// interchange format every waveform viewer reads. One timestep per
// recorded cycle; only changing signals are dumped after the first cycle.
func WriteVCD(w io.Writer, tr *Trace, designName string) error {
	nl := tr.Netlist
	// Stable signal order: top-level nets first, then flattened children.
	order := make([]int, 0, len(nl.Nets))
	for i := range nl.Nets {
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool {
		na, nb := nl.Nets[order[a]].Name, nl.Nets[order[b]].Name
		da, db := strings.Count(na, "."), strings.Count(nb, ".")
		if da != db {
			return da < db
		}
		return na < nb
	})

	if _, err := fmt.Fprintf(w, "$version assertionbench simulator $end\n$timescale 1ns $end\n$scope module %s $end\n", designName); err != nil {
		return err
	}
	ids := make(map[int]string, len(order))
	for k, idx := range order {
		id := vcdID(k)
		ids[idx] = id
		n := nl.Nets[idx]
		name := strings.ReplaceAll(n.Name, ".", "_")
		if _, err := fmt.Fprintf(w, "$var wire %d %s %s $end\n", n.Width, id, name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "$upscope $end\n$enddefinitions $end\n"); err != nil {
		return err
	}

	var prev []uint64
	for c := 0; c < tr.Len(); c++ {
		if _, err := fmt.Fprintf(w, "#%d\n", c); err != nil {
			return err
		}
		for _, idx := range order {
			v := tr.Cycles[c][idx]
			if prev != nil && prev[idx] == v {
				continue
			}
			n := nl.Nets[idx]
			if n.Width == 1 {
				if _, err := fmt.Fprintf(w, "%d%s\n", v&1, ids[idx]); err != nil {
					return err
				}
			} else {
				if _, err := fmt.Fprintf(w, "b%b %s\n", v, ids[idx]); err != nil {
					return err
				}
			}
		}
		prev = tr.Cycles[c]
	}
	_, err := fmt.Fprintf(w, "#%d\n", tr.Len())
	return err
}

// vcdID produces the printable short identifiers VCD uses (! through ~).
func vcdID(k int) string {
	const lo, hi = 33, 126
	n := hi - lo + 1
	var sb strings.Builder
	for {
		sb.WriteByte(byte(lo + k%n))
		k /= n
		if k == 0 {
			return sb.String()
		}
		k--
	}
}

// TraceFromSamples wraps raw sampled environments (e.g. an FPV
// counter-example) as a Trace for VCD export.
func TraceFromSamples(nl *verilog.Netlist, samples [][]uint64) *Trace {
	return &Trace{Netlist: nl, Cycles: samples}
}
