package sim_test

// Lockstep equivalence of the two simulator backends over the whole
// shipped corpus: the compiled register-machine program must produce a
// bit-identical environment to the tree-walking interpreter on every
// settle and every clock edge, via the same comparator the dverify
// backend oracle runs over fuzzed designs (sim.CompareBackends).

import (
	"math/rand"
	"testing"

	"assertionbench/internal/bench"
	"assertionbench/internal/sim"
	"assertionbench/internal/verilog"
)

func lockstep(t *testing.T, name, source string, cycles int, seed int64) {
	t.Helper()
	nl, err := verilog.ElaborateSource(source, "")
	if err != nil {
		t.Fatalf("%s does not elaborate: %v", name, err)
	}
	if !sim.NewCompiled(nl).Compiled() {
		t.Fatalf("%s: NewCompiled did not produce a compiled simulator", name)
	}
	if d := sim.CompareBackends(nl, cycles, seed); d != "" {
		t.Fatalf("%s: %s", name, d)
	}
}

func TestCompiledBackendEquivalenceCorpus(t *testing.T) {
	for _, d := range bench.TestCorpus() {
		t.Run(d.Name, func(t *testing.T) {
			lockstep(t, d.Name, d.Source, 64, int64(len(d.Name))*1021+7)
		})
	}
}

func TestCompiledBackendEquivalenceTrain(t *testing.T) {
	for _, d := range bench.TrainDesigns() {
		t.Run(d.Name, func(t *testing.T) {
			lockstep(t, d.Name, d.Source, 64, 11)
		})
	}
}

func TestCompiledBackendResetState(t *testing.T) {
	d := bench.TestCorpus()[0]
	nl, err := verilog.ElaborateSource(d.Source, "")
	if err != nil {
		t.Fatal(err)
	}
	s := sim.NewCompiled(nl)
	rng := rand.New(rand.NewSource(3))
	for c := 0; c < 16; c++ {
		if err := s.StepWith(sim.RandomInputs(nl, rng)); err != nil {
			t.Fatal(err)
		}
	}
	s.ResetState()
	fresh := sim.NewCompiled(nl)
	for i, v := range s.Env() {
		if v != fresh.Env()[i] {
			t.Fatalf("ResetState is not power-on: net %s = %#x, fresh = %#x",
				nl.Nets[i].Name, v, fresh.Env()[i])
		}
	}
}
