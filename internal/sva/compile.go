package sva

import (
	"fmt"
	"sort"
	"sync"

	"assertionbench/internal/verilog"
)

// SemanticError reports an assertion that parses but does not type-check
// against a design (e.g. references an unknown signal). The FPV pipeline
// counts these in the Error metric alongside parse failures.
type SemanticError struct {
	Assertion string
	Msg       string
}

func (e *SemanticError) Error() string {
	return fmt.Sprintf("sva: %s in %q", e.Msg, e.Assertion)
}

// EvalFn evaluates an expression over a value history. hist[0] is the
// environment (net index -> value) at the evaluation cycle and hist[k] the
// environment k cycles earlier.
type EvalFn func(hist [][]uint64) uint64

// AgeChecks lists which antecedent/consequent steps fire at one attempt age.
type AgeChecks struct {
	Ante []int
	Cons []int
}

// Compiled is an assertion bound to a netlist, ready for evaluation by the
// FPV engine or a trace checker.
type Compiled struct {
	Assertion *Assertion
	// Window is the number of cycles one attempt observes.
	Window int
	// PastDepth is how many cycles of history beyond the current cycle the
	// sampled-value functions need.
	PastDepth int
	// AtAge[k] are the checks scheduled k cycles after the attempt starts.
	AtAge []AgeChecks
	// AnteDoneAge is the age at which the antecedent fully matched.
	AnteDoneAge int
	// Ranged marks a ##[m:n] consequent: the single consequent expression
	// must hold at some age in [ConsLoAge, ConsHiAge].
	Ranged    bool
	ConsLoAge int
	ConsHiAge int

	anteFns []EvalFn
	consFns []EvalFn
	support map[int]bool
	// supportSorted is the sorted support-net list, memoized at compile
	// time: the FPV engine asks for it on every Verify call (state keys,
	// batch unions, cone projection), so SupportNets must not re-sort.
	supportSorted []int
	nl            *verilog.Netlist

	// Program-backed evaluators, lowered lazily (see lower.go) and shared
	// by every compiled-backend monitor over this assertion.
	lowerOnce sync.Once
	low       *loweredChecker
	lowErr    error
}

// RangedConsHolds evaluates the single ranged consequent at the current
// history position. Only valid when Ranged is set.
func (c *Compiled) RangedConsHolds(hist [][]uint64) bool {
	return c.consFns[0](hist) != 0
}

// Compile type-checks a parsed assertion against nl and builds evaluators.
func Compile(a *Assertion, nl *verilog.Netlist) (*Compiled, error) {
	c := &Compiled{Assertion: a, support: map[int]bool{}, nl: nl}

	anteOffs := make([]int, len(a.Ante))
	off := 0
	for i, s := range a.Ante {
		off += s.Delay
		anteOffs[i] = off
	}
	anteEnd := off
	c.AnteDoneAge = anteEnd

	consOffs := make([]int, len(a.Cons))
	off = anteEnd + a.Cons[0].Delay
	if a.NonOverlap {
		off++
	}
	for i, s := range a.Cons {
		if i > 0 {
			off += s.Delay
		}
		consOffs[i] = off
	}
	c.Window = off + a.ConsDelaySpan + 1
	if c.Window > 64 {
		return nil, &SemanticError{Assertion: a.String(), Msg: "property window exceeds 64 cycles"}
	}

	c.AtAge = make([]AgeChecks, c.Window)
	for i, s := range a.Ante {
		fn, depth, err := compileBool(s.Expr, nl, c.support)
		if err != nil {
			return nil, &SemanticError{Assertion: a.String(), Msg: err.Error()}
		}
		c.anteFns = append(c.anteFns, fn)
		if depth > c.PastDepth {
			c.PastDepth = depth
		}
		c.AtAge[anteOffs[i]].Ante = append(c.AtAge[anteOffs[i]].Ante, i)
	}
	for i, s := range a.Cons {
		fn, depth, err := compileBool(s.Expr, nl, c.support)
		if err != nil {
			return nil, &SemanticError{Assertion: a.String(), Msg: err.Error()}
		}
		c.consFns = append(c.consFns, fn)
		if depth > c.PastDepth {
			c.PastDepth = depth
		}
		if !a.Ranged() {
			c.AtAge[consOffs[i]].Cons = append(c.AtAge[consOffs[i]].Cons, i)
		}
	}
	if a.Ranged() {
		if len(a.Cons) != 1 {
			return nil, &SemanticError{Assertion: a.String(), Msg: "##[m:n] ranges require a single-step consequent"}
		}
		c.Ranged = true
		c.ConsLoAge = consOffs[0]
		c.ConsHiAge = consOffs[0] + a.ConsDelaySpan
	}
	c.supportSorted = make([]int, 0, len(c.support))
	for n := range c.support { //ab:allow maprange
		c.supportSorted = append(c.supportSorted, n)
	}
	sort.Ints(c.supportSorted)
	return c, nil
}

// AgeResult reports the outcome of evaluating one attempt age.
type AgeResult struct {
	AnteFailed bool // an antecedent step did not match: attempt dies quietly
	ConsFailed bool // a consequent step failed: property violation
}

// CheckAge evaluates all checks scheduled at the given age. hist[0] must
// be the environment of the attempt's start cycle + age.
func (c *Compiled) CheckAge(age int, hist [][]uint64) AgeResult {
	var r AgeResult
	checks := c.AtAge[age]
	for _, i := range checks.Ante {
		if c.anteFns[i](hist) == 0 {
			r.AnteFailed = true
			return r
		}
	}
	for _, i := range checks.Cons {
		if c.consFns[i](hist) == 0 {
			r.ConsFailed = true
			return r
		}
	}
	return r
}

// SupportNets returns the indices of all nets the assertion reads, in
// ascending order. The FPV engine folds these into visited-state keys,
// the batched verifier merges them across a batch, and the cone-of-
// influence pass projects the design onto their fan-in, so the list is
// memoized sorted at compile time. Callers must not mutate it.
func (c *Compiled) SupportNets() []int {
	return c.supportSorted
}

// Check verifies an assertion's signals against a design without building
// evaluators for every step (convenience for syntax-level tooling).
func Check(a *Assertion, nl *verilog.Netlist) error {
	_, err := Compile(a, nl)
	return err
}

// compileBool compiles one boolean-layer expression into an EvalFn.
// It returns the evaluator and the history depth it requires.
func compileBool(e verilog.Expr, nl *verilog.Netlist, support map[int]bool) (EvalFn, int, error) {
	fn, _, depth, err := compileVal(e, nl, support)
	return fn, depth, err
}

func compileVal(e verilog.Expr, nl *verilog.Netlist, support map[int]bool) (EvalFn, int, int, error) {
	switch v := e.(type) {
	case *verilog.Number:
		w := v.Width
		if w == 0 {
			w = 32
			if v.Value >= 1<<32 {
				w = 64
			}
		}
		val := v.Value & verilog.WidthMask(w)
		return func([][]uint64) uint64 { return val }, w, 0, nil

	case *verilog.Ident:
		idx := nl.NetIndex(v.Name)
		if idx < 0 {
			return nil, 0, 0, fmt.Errorf("unknown signal %q", v.Name)
		}
		support[idx] = true
		return func(hist [][]uint64) uint64 { return hist[0][idx] }, nl.Nets[idx].Width, 0, nil

	case *verilog.Call:
		return compileCall(v, nl, support)

	case *verilog.Index:
		baseFn, baseW, d1, err := compileVal(v.Base, nl, support)
		if err != nil {
			return nil, 0, 0, err
		}
		if lit, ok := litValue(v.Idx); ok && int(lit) >= baseW {
			return nil, 0, 0, fmt.Errorf("bit index %d out of range (width %d)", lit, baseW)
		}
		idxFn, _, d2, err := compileVal(v.Idx, nl, support)
		if err != nil {
			return nil, 0, 0, err
		}
		return func(hist [][]uint64) uint64 {
			i := idxFn(hist)
			if i >= 64 {
				return 0
			}
			return (baseFn(hist) >> i) & 1
		}, 1, maxi(d1, d2), nil

	case *verilog.PartSelect:
		baseFn, baseW, d, err := compileVal(v.Base, nl, support)
		if err != nil {
			return nil, 0, 0, err
		}
		msb, ok1 := litValue(v.MSB)
		lsb, ok2 := litValue(v.LSB)
		if !ok1 || !ok2 || msb < lsb || int(msb) >= baseW {
			return nil, 0, 0, fmt.Errorf("invalid part-select bounds")
		}
		w := int(msb-lsb) + 1
		return func(hist [][]uint64) uint64 {
			return (baseFn(hist) >> lsb) & verilog.WidthMask(w)
		}, w, d, nil

	case *verilog.Unary:
		xFn, xw, d, err := compileVal(v.X, nl, support)
		if err != nil {
			return nil, 0, 0, err
		}
		switch v.Op {
		case "~":
			return func(h [][]uint64) uint64 { return (^xFn(h)) & verilog.WidthMask(xw) }, xw, d, nil
		case "!":
			return func(h [][]uint64) uint64 { return b2u(xFn(h) == 0) }, 1, d, nil
		case "-":
			return func(h [][]uint64) uint64 { return (-xFn(h)) & verilog.WidthMask(xw) }, xw, d, nil
		case "&":
			return func(h [][]uint64) uint64 { return b2u(xFn(h) == verilog.WidthMask(xw)) }, 1, d, nil
		case "|":
			return func(h [][]uint64) uint64 { return b2u(xFn(h) != 0) }, 1, d, nil
		case "^":
			return func(h [][]uint64) uint64 { return parity64(xFn(h)) }, 1, d, nil
		case "~&":
			return func(h [][]uint64) uint64 { return b2u(xFn(h) != verilog.WidthMask(xw)) }, 1, d, nil
		case "~|":
			return func(h [][]uint64) uint64 { return b2u(xFn(h) == 0) }, 1, d, nil
		case "~^", "^~":
			return func(h [][]uint64) uint64 { return parity64(xFn(h)) ^ 1 }, 1, d, nil
		}
		return nil, 0, 0, fmt.Errorf("unsupported unary operator %q", v.Op)

	case *verilog.Binary:
		xFn, xw, d1, err := compileVal(v.X, nl, support)
		if err != nil {
			return nil, 0, 0, err
		}
		yFn, yw, d2, err := compileVal(v.Y, nl, support)
		if err != nil {
			return nil, 0, 0, err
		}
		d := maxi(d1, d2)
		w := maxi(xw, yw)
		mask := verilog.WidthMask(w)
		switch v.Op {
		case "+":
			return func(h [][]uint64) uint64 { return (xFn(h) + yFn(h)) & mask }, w, d, nil
		case "-":
			return func(h [][]uint64) uint64 { return (xFn(h) - yFn(h)) & mask }, w, d, nil
		case "*":
			return func(h [][]uint64) uint64 { return (xFn(h) * yFn(h)) & mask }, w, d, nil
		case "/":
			return func(h [][]uint64) uint64 {
				y := yFn(h)
				if y == 0 {
					return 0
				}
				return (xFn(h) / y) & mask
			}, w, d, nil
		case "%":
			return func(h [][]uint64) uint64 {
				y := yFn(h)
				if y == 0 {
					return 0
				}
				return (xFn(h) % y) & mask
			}, w, d, nil
		case "&":
			return func(h [][]uint64) uint64 { return xFn(h) & yFn(h) }, w, d, nil
		case "|":
			return func(h [][]uint64) uint64 { return xFn(h) | yFn(h) }, w, d, nil
		case "^":
			return func(h [][]uint64) uint64 { return xFn(h) ^ yFn(h) }, w, d, nil
		case "~^", "^~":
			return func(h [][]uint64) uint64 { return (^(xFn(h) ^ yFn(h))) & mask }, w, d, nil
		case "&&":
			return func(h [][]uint64) uint64 { return b2u(xFn(h) != 0 && yFn(h) != 0) }, 1, d, nil
		case "||":
			return func(h [][]uint64) uint64 { return b2u(xFn(h) != 0 || yFn(h) != 0) }, 1, d, nil
		case "==", "===":
			return func(h [][]uint64) uint64 { return b2u(xFn(h) == yFn(h)) }, 1, d, nil
		case "!=", "!==":
			return func(h [][]uint64) uint64 { return b2u(xFn(h) != yFn(h)) }, 1, d, nil
		case "<":
			return func(h [][]uint64) uint64 { return b2u(xFn(h) < yFn(h)) }, 1, d, nil
		case "<=":
			return func(h [][]uint64) uint64 { return b2u(xFn(h) <= yFn(h)) }, 1, d, nil
		case ">":
			return func(h [][]uint64) uint64 { return b2u(xFn(h) > yFn(h)) }, 1, d, nil
		case ">=":
			return func(h [][]uint64) uint64 { return b2u(xFn(h) >= yFn(h)) }, 1, d, nil
		case "<<":
			return func(h [][]uint64) uint64 {
				s := yFn(h)
				if s >= 64 {
					return 0
				}
				return (xFn(h) << s) & verilog.WidthMask(xw)
			}, xw, d, nil
		case ">>":
			return func(h [][]uint64) uint64 {
				s := yFn(h)
				if s >= 64 {
					return 0
				}
				return xFn(h) >> s
			}, xw, d, nil
		}
		return nil, 0, 0, fmt.Errorf("unsupported binary operator %q", v.Op)

	case *verilog.Ternary:
		cFn, _, d1, err := compileVal(v.Cond, nl, support)
		if err != nil {
			return nil, 0, 0, err
		}
		tFn, tw, d2, err := compileVal(v.Then, nl, support)
		if err != nil {
			return nil, 0, 0, err
		}
		eFn, ew, d3, err := compileVal(v.Else, nl, support)
		if err != nil {
			return nil, 0, 0, err
		}
		return func(h [][]uint64) uint64 {
			if cFn(h) != 0 {
				return tFn(h)
			}
			return eFn(h)
		}, maxi(tw, ew), maxi(d1, maxi(d2, d3)), nil

	case *verilog.Concat:
		var fns []EvalFn
		var widths []int
		total, depth := 0, 0
		for _, part := range v.Parts {
			fn, w, d, err := compileVal(part, nl, support)
			if err != nil {
				return nil, 0, 0, err
			}
			fns = append(fns, fn)
			widths = append(widths, w)
			total += w
			depth = maxi(depth, d)
		}
		if total > 64 {
			return nil, 0, 0, fmt.Errorf("concatenation wider than 64 bits")
		}
		return func(h [][]uint64) uint64 {
			var out uint64
			for i, fn := range fns {
				out = (out << uint(widths[i])) | (fn(h) & verilog.WidthMask(widths[i]))
			}
			return out
		}, total, depth, nil
	}
	return nil, 0, 0, fmt.Errorf("unsupported expression form %T", e)
}

func compileCall(v *verilog.Call, nl *verilog.Netlist, support map[int]bool) (EvalFn, int, int, error) {
	argFn, argW, argD, err := compileVal(v.Args[0], nl, support)
	if err != nil {
		return nil, 0, 0, err
	}
	switch v.Name {
	case "$past":
		n := 1
		if len(v.Args) == 2 {
			lit, ok := litValue(v.Args[1])
			if !ok {
				return nil, 0, 0, fmt.Errorf("$past depth must be a literal")
			}
			n = int(lit)
		}
		return func(h [][]uint64) uint64 { return argFn(h[n:]) }, argW, argD + n, nil
	case "$rose":
		return func(h [][]uint64) uint64 {
			return b2u(argFn(h)&1 == 1 && argFn(h[1:])&1 == 0)
		}, 1, argD + 1, nil
	case "$fell":
		return func(h [][]uint64) uint64 {
			return b2u(argFn(h)&1 == 0 && argFn(h[1:])&1 == 1)
		}, 1, argD + 1, nil
	case "$stable":
		return func(h [][]uint64) uint64 { return b2u(argFn(h) == argFn(h[1:])) }, 1, argD + 1, nil
	case "$changed":
		return func(h [][]uint64) uint64 { return b2u(argFn(h) != argFn(h[1:])) }, 1, argD + 1, nil
	}
	return nil, 0, 0, fmt.Errorf("unsupported system function %s", v.Name)
}

func litValue(e verilog.Expr) (uint64, bool) {
	n, ok := e.(*verilog.Number)
	if !ok {
		return 0, false
	}
	return n.Value, true
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func parity64(v uint64) uint64 {
	v ^= v >> 32
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v & 1
}
