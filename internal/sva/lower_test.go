package sva

// Differential tests for the SVA evaluator lowering: the compiled-program
// monitor must agree with the closure-evaluating monitor expression for
// expression and step for step over randomized value histories.

import (
	"math/rand"
	"testing"

	"assertionbench/internal/verilog"
)

const lowerTestDesign = `
module m(input clk, input a, input b, input [7:0] x, input [7:0] y, output reg [7:0] q);
  always @(posedge clk) q <= x;
endmodule
`

// lowerExprs exercises every expression form the boolean layer supports.
var lowerExprs = []string{
	"a == 1 |-> b == 1;",
	"x > y |-> x - y < 200;",
	"x + y == 8'd12 |=> q == $past(x);",
	"$rose(a) |-> b;",
	"$fell(a) |-> !b;",
	"$stable(x) |-> $changed(y) || b;",
	"$past(x, 2) == x |-> ##2 q == q;",
	"x[3] == 1 && x[7:4] != 4'b0 |-> |x;",
	"&x || ^y || ~|x |-> ~^y == ^~y;",
	"{a, b, x[2:0]} != 5'd7 |-> (a ? x : y) <= 8'hff;",
	"(x & y) | (x ^ y) == (x | y) |-> 1;",
	"x * 2 >= y / 2 |-> y % 3 < 3;",
	"x << 2 != y >> 1 |-> -x != ~x;",
	"!a |-> x <= 8'hff && x >= 0;",
	"a |-> ##[1:3] b;",
}

func TestLoweredEvaluatorsMatchClosures(t *testing.T) {
	nl, err := verilog.ElaborateSource(lowerTestDesign, "m")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for _, src := range lowerExprs {
		a, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		c, err := Compile(a, nl)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		low, err := c.lower()
		if err != nil {
			t.Fatalf("%s: lowering failed: %v", src, err)
		}
		mach := verilog.NewMachine(low.prog)
		// Random histories, deep enough for any $past in the set.
		hist := make([][]uint64, c.PastDepth+1)
		for round := 0; round < 100; round++ {
			for k := range hist {
				row := make([]uint64, len(nl.Nets))
				for i, n := range nl.Nets {
					row[i] = rng.Uint64() & n.Mask()
				}
				hist[k] = row
			}
			for i, fn := range c.anteFns {
				want := fn(hist)
				got := mach.ExecFrag(low.anteFrags[i], hist)
				if got != want {
					t.Fatalf("%s: ante[%d] compiled=%#x closure=%#x", src, i, got, want)
				}
			}
			for i, fn := range c.consFns {
				want := fn(hist)
				got := mach.ExecFrag(low.consFrags[i], hist)
				if got != want {
					t.Fatalf("%s: cons[%d] compiled=%#x closure=%#x", src, i, got, want)
				}
			}
		}
	}
}

// TestMonitorBackendsLockstep steps both monitor backends over the same
// random history stream and compares outcomes and exported state.
func TestMonitorBackendsLockstep(t *testing.T) {
	nl, err := verilog.ElaborateSource(lowerTestDesign, "m")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for _, src := range lowerExprs {
		a, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(a, nl)
		if err != nil {
			t.Fatal(err)
		}
		ref := NewMonitor(c)
		cmp, err := NewMonitorCompiled(c)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		depth := c.PastDepth + 1
		ring := make([][]uint64, 0, depth)
		for cyc := 0; cyc < 200; cyc++ {
			row := make([]uint64, len(nl.Nets))
			for i, n := range nl.Nets {
				row[i] = rng.Uint64() & n.Mask()
			}
			ring = append([][]uint64{row}, ring...)
			if len(ring) > depth {
				ring = ring[:depth]
			}
			hist := make([][]uint64, depth)
			zero := make([]uint64, len(nl.Nets))
			for k := 0; k < depth; k++ {
				if k < len(ring) {
					hist[k] = ring[k]
				} else {
					hist[k] = zero
				}
			}
			ro := ref.Step(hist)
			co := cmp.Step(hist)
			if ro != co {
				t.Fatalf("%s: outcomes diverge at cycle %d: interp %+v compiled %+v", src, cyc, ro, co)
			}
			ra, rs := ref.State()
			ca, cs := cmp.State()
			if ra != ca || rs != cs {
				t.Fatalf("%s: monitor state diverges at cycle %d", src, cyc)
			}
		}
	}
}
