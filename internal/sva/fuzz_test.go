package sva

import "testing"

// FuzzParseSVA drives the assertion parser (both the native SVA surface
// syntax and the paper's LTL-style form) with arbitrary text. Invariants:
// parsing never panics, and the canonical rendering of any parsed
// assertion re-parses to the same canonical form (the fixpoint the FPV
// pipeline and the miners rely on). Seed corpus under testdata/fuzz/.
func FuzzParseSVA(f *testing.F) {
	f.Add("req1 == 1 && req2 == 0 |-> gnt1 == 1")
	f.Add("a ##1 b |=> c")
	f.Add("a |-> ##2 &rst")
	f.Add("start |-> ##[1:3] done == 1")
	f.Add("$rose(req) ##1 $stable(cfg) |-> $past(ack) == ack")
	f.Add("assert property (@(posedge clk) a |-> b);")
	f.Add("G((req2 == 0 && gnt == 1) && X(req1 == 1) -> X(X(gnt1 == 1)))")
	f.Add("G(a -> b)")
	f.Add("always ( a |-> b )")
	f.Add("a ##")
	f.Add("|-> b")
	f.Add("a |-> ##[3:1] b")
	f.Add("a[0] ##2 !b |-> {c, d} != 0")

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 {
			return
		}
		a, err := Parse(src)
		if err != nil {
			return
		}
		canon := a.String()
		a2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical rendering does not re-parse: %v\nsource: %q\ncanonical: %q", err, src, canon)
		}
		if got := a2.String(); got != canon {
			t.Fatalf("canonical rendering is unstable\nsource: %q\nfirst: %q\nsecond: %q", src, canon, got)
		}
	})
}
