package sva

import (
	"math/rand"
	"strings"
	"testing"

	"assertionbench/internal/verilog"
)

const counterSrc = `
module counter(clk, rst, en, count);
input clk, rst, en;
output [3:0] count;
reg [3:0] count;
always @(posedge clk or posedge rst)
  if (rst) count <= 4'b0;
  else if (en) count <= count + 1;
endmodule
`

func elabT(t *testing.T, src, top string) *verilog.Netlist {
	t.Helper()
	nl, err := verilog.ElaborateSource(src, top)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func compileT(t *testing.T, nl *verilog.Netlist, src string) *Compiled {
	t.Helper()
	a, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	c, err := Compile(a, nl)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return c
}

// randBoolExpr builds a random boolean-layer expression over the counter's
// signals, covering every operator the compiler supports.
func randBoolExpr(rng *rand.Rand, depth int) verilog.Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(4) {
		case 0:
			return &verilog.Ident{Name: "rst"}
		case 1:
			return &verilog.Ident{Name: "en"}
		case 2:
			return &verilog.Ident{Name: "count"}
		default:
			return &verilog.Number{Value: uint64(rng.Intn(16)), Width: 4}
		}
	}
	switch rng.Intn(6) {
	case 0:
		ops := []string{"~", "!", "-", "&", "|", "^", "~&", "~|", "~^"}
		return &verilog.Unary{Op: ops[rng.Intn(len(ops))], X: randBoolExpr(rng, depth-1)}
	case 1:
		return &verilog.Ternary{
			Cond: randBoolExpr(rng, depth-1),
			Then: randBoolExpr(rng, depth-1),
			Else: randBoolExpr(rng, depth-1),
		}
	case 2:
		return &verilog.Index{Base: &verilog.Ident{Name: "count"},
			Idx: &verilog.Number{Value: uint64(rng.Intn(4)), Width: 2}}
	case 3:
		return &verilog.PartSelect{Base: &verilog.Ident{Name: "count"},
			MSB: &verilog.Number{Value: 2}, LSB: &verilog.Number{Value: 1}}
	case 4:
		return &verilog.Concat{Parts: []verilog.Expr{
			randBoolExpr(rng, 0), randBoolExpr(rng, 0),
		}}
	default:
		ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "~^", "&&", "||",
			"==", "!=", "<", "<=", ">", ">=", "<<", ">>"}
		return &verilog.Binary{Op: ops[rng.Intn(len(ops))],
			X: randBoolExpr(rng, depth-1), Y: randBoolExpr(rng, depth-1)}
	}
}

// TestCompileValAgreesWithEExpr is the differential test between the two
// independent implementations of the expression semantics: the SVA layer's
// closure compiler and the netlist EExpr compiler must agree on every
// expression and environment.
func TestCompileValAgreesWithEExpr(t *testing.T) {
	nl := elabT(t, counterSrc, "counter")
	rng := rand.New(rand.NewSource(41))
	env := make([]uint64, len(nl.Nets))
	hist := [][]uint64{env}
	for i := 0; i < 500; i++ {
		e := randBoolExpr(rng, 4)
		ce, err1 := nl.CompileExpr(e)
		fn, _, _, err2 := compileVal(e, nl, map[int]bool{})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("compilers disagree on validity of %q: %v vs %v",
				verilog.ExprString(e), err1, err2)
		}
		if err1 != nil {
			continue
		}
		for trial := 0; trial < 10; trial++ {
			env[nl.NetIndex("rst")] = rng.Uint64() & 1
			env[nl.NetIndex("en")] = rng.Uint64() & 1
			env[nl.NetIndex("count")] = rng.Uint64() & 0xf
			a := ce.Eval(env)
			b := fn(hist)
			if a != b {
				t.Fatalf("semantics diverge on %q: EExpr=%#x closure=%#x (rst=%d en=%d count=%d)",
					verilog.ExprString(e), a, b,
					env[nl.NetIndex("rst")], env[nl.NetIndex("en")], env[nl.NetIndex("count")])
			}
		}
	}
}

func TestSampledValueFunctions(t *testing.T) {
	nl := elabT(t, counterSrc, "counter")
	now := make([]uint64, len(nl.Nets))
	ago1 := make([]uint64, len(nl.Nets))
	ago2 := make([]uint64, len(nl.Nets))
	count := nl.NetIndex("count")
	en := nl.NetIndex("en")
	now[count], ago1[count], ago2[count] = 5, 4, 3
	now[en], ago1[en] = 1, 0
	hist := [][]uint64{now, ago1, ago2}

	cases := []struct {
		src  string
		want uint64
	}{
		{"$past(count)", 4},
		{"$past(count, 2)", 3},
		{"$rose(en)", 1},
		{"$fell(en)", 0},
		{"$stable(count)", 0},
		{"$changed(count)", 1},
		{"$past(count) + 1 == count", 1},
	}
	for _, tc := range cases {
		a, err := Parse(tc.src + " |-> 1")
		if err != nil {
			t.Fatalf("parse %q: %v", tc.src, err)
		}
		fn, _, err := compileBool(a.Ante[0].Expr, nl, map[int]bool{})
		if err != nil {
			t.Fatalf("compile %q: %v", tc.src, err)
		}
		if got := fn(hist); (got != 0) != (tc.want != 0) || (tc.want <= 1 && got != tc.want) {
			t.Errorf("%s = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestCompileSemanticErrors(t *testing.T) {
	nl := elabT(t, counterSrc, "counter")
	for _, src := range []string{
		"ghost == 1 |-> en == 1",
		"count[9] == 1 |-> en == 1",
		"count[3:9] == 1 |-> en == 1",
		"en == 1 |-> ##60 count == 0 ##10 count == 1",
	} {
		a, err := Parse(src)
		if err != nil {
			t.Fatalf("%q should parse: %v", src, err)
		}
		if _, err := Compile(a, nl); err == nil {
			t.Errorf("Compile(%q) succeeded, want semantic error", src)
		} else if _, ok := err.(*SemanticError); !ok {
			t.Errorf("Compile(%q) error type %T, want *SemanticError", src, err)
		}
	}
}

func TestCompiledLayout(t *testing.T) {
	nl := elabT(t, counterSrc, "counter")
	c := compileT(t, nl, "en == 1 ##2 rst == 0 |=> ##1 count == 0")
	// ante ages 0 and 2; |=> adds 1, lead ##1 adds 1 -> cons age 4.
	if c.Window != 5 {
		t.Errorf("window = %d, want 5", c.Window)
	}
	if c.AnteDoneAge != 2 {
		t.Errorf("anteDoneAge = %d, want 2", c.AnteDoneAge)
	}
	if len(c.AtAge[0].Ante) != 1 || len(c.AtAge[2].Ante) != 1 || len(c.AtAge[4].Cons) != 1 {
		t.Errorf("check schedule wrong: %+v", c.AtAge)
	}
	support := c.SupportNets()
	if len(support) != 3 {
		t.Errorf("support = %v, want en, rst, count", support)
	}
}

func TestMonitorLifecycle(t *testing.T) {
	nl := elabT(t, counterSrc, "counter")
	c := compileT(t, nl, "en == 1 |=> count == 7")
	m := NewMonitor(c)
	env := func(en, count uint64) []uint64 {
		e := make([]uint64, len(nl.Nets))
		e[nl.NetIndex("en")] = en
		e[nl.NetIndex("count")] = count
		return e
	}
	// Cycle 0: en=1 -> attempt matches ante.
	out := m.Step([][]uint64{env(1, 0)})
	if out.Violated || !out.AnteCompleted {
		t.Fatalf("cycle 0: %+v", out)
	}
	// Cycle 1: count=7 satisfies the pending consequent; new attempt (en=0) dies.
	out = m.Step([][]uint64{env(0, 7)})
	if out.Violated {
		t.Fatalf("cycle 1 should satisfy: %+v", out)
	}
	// Restart: en=1 then count!=7 -> violation at age 1.
	out = m.Step([][]uint64{env(1, 0)})
	if out.Violated {
		t.Fatal("ante-only cycle cannot violate")
	}
	out = m.Step([][]uint64{env(0, 3)})
	if !out.Violated || out.ViolatedAge != 1 {
		t.Fatalf("expected violation at age 1, got %+v", out)
	}
	// State round trip.
	alive, sat := m.State()
	m2 := NewMonitor(c)
	m2.SetState(alive, sat)
	a2, s2 := m2.State()
	if a2 != alive || s2 != sat {
		t.Error("monitor state round trip failed")
	}
	m.Reset()
	if a, s := m.State(); a != 0 || s != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestMonitorRangedSatisfaction(t *testing.T) {
	nl := elabT(t, counterSrc, "counter")
	c := compileT(t, nl, "en == 1 |-> ##[1:2] count == 9")
	if !c.Ranged || c.ConsLoAge != 1 || c.ConsHiAge != 2 {
		t.Fatalf("ranged layout wrong: %+v", c)
	}
	m := NewMonitor(c)
	env := func(en, count uint64) []uint64 {
		e := make([]uint64, len(nl.Nets))
		e[nl.NetIndex("en")] = en
		e[nl.NetIndex("count")] = count
		return e
	}
	// Satisfied at the second offset.
	m.Step([][]uint64{env(1, 0)})
	m.Step([][]uint64{env(0, 0)})
	out := m.Step([][]uint64{env(0, 9)})
	if out.Violated {
		t.Fatalf("satisfied at hi offset, got %+v", out)
	}
	// Never satisfied -> violated at the hi age.
	m.Reset()
	m.Step([][]uint64{env(1, 0)})
	m.Step([][]uint64{env(0, 0)})
	out = m.Step([][]uint64{env(0, 0)})
	if !out.Violated || out.ViolatedAge != 2 {
		t.Fatalf("expected ranged violation at age 2, got %+v", out)
	}
}

func TestWindowLengths(t *testing.T) {
	cases := []struct {
		src    string
		window int
	}{
		{"a |-> b", 1},
		{"a |=> b", 2},
		{"a ##1 b |-> c", 2},
		{"a |-> ##3 b", 4},
		{"a |-> ##[1:3] b", 4},
		{"a ##2 b |=> ##1 c ##1 d", 6},
	}
	for _, tc := range cases {
		a, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.src, err)
		}
		if got := a.WindowLength(); got != tc.window {
			t.Errorf("WindowLength(%q) = %d, want %d", tc.src, got, tc.window)
		}
	}
}

func TestCheckHelper(t *testing.T) {
	nl := elabT(t, counterSrc, "counter")
	if err := Check(mustP(t, "en == 1 |-> count == 0"), nl); err != nil {
		t.Errorf("valid assertion rejected: %v", err)
	}
	if err := Check(mustP(t, "nosuch == 1 |-> count == 0"), nl); err == nil {
		t.Error("unknown signal accepted")
	}
}

func mustP(t *testing.T, src string) *Assertion {
	t.Helper()
	a, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSemanticErrorMessage(t *testing.T) {
	e := &SemanticError{Assertion: "x |-> y", Msg: "unknown signal"}
	if !strings.Contains(e.Error(), "unknown signal") || !strings.Contains(e.Error(), "x |-> y") {
		t.Errorf("error message uninformative: %q", e.Error())
	}
}
