package sva

import "assertionbench/internal/verilog"

// Monitor is the runtime automaton of one compiled assertion: a sliding
// window of evaluation attempts, one started per cycle. It is the single
// monitor implementation shared by the FPV engine (where its state enters
// the product state space), the trace checker, and the coverage analysis.
//
// Two evaluation backends share the one stepping algorithm and behave
// bit-identically (cross-checked by internal/dverify): NewMonitor walks
// the closure evaluators built at Compile time (the reference), and
// NewMonitorCompiled runs the assertion's lowered register-machine
// program, making each antecedent/consequent check a flat program call.
type Monitor struct {
	c *Compiled
	// alive bit k: the attempt of age k is still matching.
	alive uint64
	// sat bit k: a ranged consequent already held for the age-k attempt.
	sat  uint64
	mask uint64
	// mach executes the lowered evaluator program when non-nil.
	mach *verilog.Machine
	low  *loweredChecker
}

// NewMonitor returns a closure-evaluating monitor in the no-attempts
// state.
func NewMonitor(c *Compiled) *Monitor {
	return &Monitor{c: c, mask: verilog.WidthMask(c.Window)}
}

// NewMonitorCompiled returns a monitor evaluating the assertion's lowered
// program (shared per Compiled; the machine frame is this monitor's own).
func NewMonitorCompiled(c *Compiled) (*Monitor, error) {
	low, err := c.lower()
	if err != nil {
		return nil, err
	}
	m := NewMonitor(c)
	m.low = low
	m.mach = verilog.NewMachine(low.prog)
	return m, nil
}

// Compiled returns the assertion the monitor runs.
func (m *Monitor) Compiled() *Compiled { return m.c }

// State exports the monitor state for product-state hashing.
func (m *Monitor) State() (alive, sat uint64) { return m.alive, m.sat }

// SetState restores a state exported by State.
func (m *Monitor) SetState(alive, sat uint64) { m.alive, m.sat = alive, sat }

// Reset clears all attempts.
func (m *Monitor) Reset() { m.alive, m.sat = 0, 0 }

// evalAnte evaluates antecedent step i over hist on the monitor's backend.
func (m *Monitor) evalAnte(i int, hist [][]uint64) uint64 {
	if m.mach != nil {
		return m.mach.ExecFrag(m.low.anteFrags[i], hist)
	}
	return m.c.anteFns[i](hist)
}

// evalCons evaluates consequent step i over hist on the monitor's backend.
func (m *Monitor) evalCons(i int, hist [][]uint64) uint64 {
	if m.mach != nil {
		return m.mach.ExecFrag(m.low.consFrags[i], hist)
	}
	return m.c.consFns[i](hist)
}

// Outcome reports what one monitor step observed.
type Outcome struct {
	// Violated: some attempt's consequent failed. ViolatedAge is its age
	// (the attempt started ViolatedAge cycles before the current one).
	Violated    bool
	ViolatedAge int
	// AnteCompleted: some attempt completed its antecedent this cycle
	// (the non-vacuity witness).
	AnteCompleted bool
}

// Step advances the monitor by one sampled cycle. hist[0] is the current
// cycle's environment, hist[k] the environment k cycles earlier; it must
// have at least PastDepth+1 entries. A violated attempt is removed so the
// caller may continue monitoring (the FPV engine stops at the first
// violation anyway).
func (m *Monitor) Step(hist [][]uint64) Outcome {
	var out Outcome
	c := m.c
	alive := ((m.alive << 1) | 1) & m.mask
	sat := (m.sat << 1) & m.mask

	for age := 0; age < c.Window; age++ {
		bit := uint64(1) << uint(age)
		if alive&bit == 0 {
			continue
		}
		// Antecedent checks scheduled at this age.
		failed := false
		for _, i := range c.AtAge[age].Ante {
			if m.evalAnte(i, hist) == 0 {
				failed = true
				break
			}
		}
		if failed {
			alive &^= bit
			sat &^= bit
			continue
		}
		if age == c.AnteDoneAge {
			out.AnteCompleted = true
		}
		if c.Ranged {
			if age >= c.ConsLoAge && age <= c.ConsHiAge && m.evalCons(0, hist) != 0 {
				sat |= bit
			}
			if age == c.ConsHiAge && sat&bit == 0 {
				if !out.Violated {
					out.Violated = true
					out.ViolatedAge = age
				}
				alive &^= bit
			}
			continue
		}
		for _, i := range c.AtAge[age].Cons {
			if m.evalCons(i, hist) == 0 {
				if !out.Violated {
					out.Violated = true
					out.ViolatedAge = age
				}
				alive &^= bit
				sat &^= bit
				break
			}
		}
	}
	// Attempts that survived their final age completed successfully.
	done := uint64(1) << uint(c.Window-1)
	alive &^= done
	sat &^= done
	m.alive, m.sat = alive, sat
	return out
}
