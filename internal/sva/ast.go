// Package sva implements the paper's restricted SystemVerilog Assertion
// subset (Sec. II-A): sequential properties of the form
//
//	P = G(A -> C)
//
// where the antecedent A is a conjunction of propositions spread over
// clock cycles (a sequence with ##N delays) and the consequent C likewise.
// Both the native SVA surface syntax
//
//	req1 == 1 && req2 == 0 |-> gnt1 == 1
//	a ##1 b |=> c
//	assert property (@(posedge clk) a |-> b);
//
// and the paper's LTL-style surface syntax
//
//	G((req2 == 0 && gnt == 1) && X(req1 == 1) -> X(X(gnt1 == 1)))
//
// are parsed to the same internal form. The boolean layer is the design
// expression language plus the sampled-value functions $rose, $fell,
// $stable and $past.
package sva

import (
	"fmt"
	"strings"

	"assertionbench/internal/verilog"
)

// Step is one cycle of a sequence: Delay clock cycles after the previous
// step (0 for the first step), the boolean expression must hold.
type Step struct {
	Delay int
	Expr  verilog.Expr
}

// Assertion is a compiled-form sequential property G(A -> C).
type Assertion struct {
	Ante []Step
	Cons []Step
	// NonOverlap distinguishes |=> from |->: with |=> the consequent
	// sequence starts one cycle after the antecedent's last step.
	NonOverlap bool
	// ConsDelaySpan extends the leading consequent delay into a range:
	// the consequent may hold at any offset in
	// [Cons[0].Delay, Cons[0].Delay+ConsDelaySpan] (the ##[m:n] form, an
	// extension toward the paper's future-work direction iv). Only
	// single-step consequents support a non-zero span.
	ConsDelaySpan int
	// Clock optionally names the sampling clock from an
	// 'assert property (@(posedge clk) ...)' wrapper. Informational: the
	// FPV engine samples at the unified design clock.
	Clock string
	// Source preserves the original text the assertion was parsed from.
	Source string
}

// Ranged reports whether the consequent carries a ##[m:n] delay range.
func (a *Assertion) Ranged() bool { return a.ConsDelaySpan > 0 }

// AnteLength returns the antecedent's span in cycles (>= 1).
func (a *Assertion) AnteLength() int { return seqLength(a.Ante) }

// ConsLength returns the consequent's span in cycles (>= 1).
func (a *Assertion) ConsLength() int { return seqLength(a.Cons) }

// WindowLength is the total number of cycles one evaluation attempt of the
// assertion observes.
func (a *Assertion) WindowLength() int {
	n := a.AnteLength() + a.ConsLength() - 1 + extraConsDelay(a)
	return n
}

func extraConsDelay(a *Assertion) int {
	d := a.Cons[0].Delay + a.ConsDelaySpan
	if a.NonOverlap {
		d++
	}
	return d
}

func seqLength(steps []Step) int {
	n := 1
	for i, s := range steps {
		if i > 0 {
			n += s.Delay
		}
	}
	return n
}

// String renders the assertion in canonical SVA surface syntax.
func (a *Assertion) String() string {
	var sb strings.Builder
	writeSeq(&sb, a.Ante)
	if a.NonOverlap {
		sb.WriteString(" |=> ")
	} else {
		sb.WriteString(" |-> ")
	}
	// A leading consequent delay renders as ##N (or ##[m:n]) before the
	// first expression.
	if a.ConsDelaySpan > 0 {
		fmt.Fprintf(&sb, "##[%d:%d] ", a.Cons[0].Delay, a.Cons[0].Delay+a.ConsDelaySpan)
	} else if d := a.Cons[0].Delay; d > 0 {
		fmt.Fprintf(&sb, "##%d ", d)
	}
	writeSeq(&sb, a.Cons)
	return sb.String()
}

func writeSeq(sb *strings.Builder, steps []Step) {
	for i, s := range steps {
		if i > 0 {
			fmt.Fprintf(sb, " ##%d ", s.Delay)
		}
		sb.WriteString(verilog.ExprString(s.Expr))
	}
}

// Signals returns the set of design signal names referenced anywhere in
// the assertion.
func (a *Assertion) Signals() map[string]bool {
	out := map[string]bool{}
	for _, s := range a.Ante {
		verilog.ExprIdents(s.Expr, out)
	}
	for _, s := range a.Cons {
		verilog.ExprIdents(s.Expr, out)
	}
	return out
}

// Equal reports structural equality via the canonical rendering.
func (a *Assertion) Equal(b *Assertion) bool {
	return a != nil && b != nil && a.String() == b.String()
}
