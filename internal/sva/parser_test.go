package sva

import (
	"strings"
	"testing"
)

func mustParseA(t *testing.T, src string) *Assertion {
	t.Helper()
	a, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q) failed: %v", src, err)
	}
	return a
}

func TestParseNativeOverlapped(t *testing.T) {
	a := mustParseA(t, "req1 == 1 && req2 == 0 |-> gnt1 == 1;")
	if a.NonOverlap {
		t.Error("|-> should be overlapped")
	}
	if len(a.Ante) != 1 || len(a.Cons) != 1 {
		t.Fatalf("ante/cons lengths %d/%d, want 1/1", len(a.Ante), len(a.Cons))
	}
	if a.WindowLength() != 1 {
		t.Errorf("window = %d, want 1", a.WindowLength())
	}
	if got := a.String(); got != "(req1 == 1) && (req2 == 0) |-> gnt1 == 1" {
		t.Errorf("canonical form = %q", got)
	}
}

func TestParseNativeNonOverlappedAndDelays(t *testing.T) {
	a := mustParseA(t, "a ##1 b ##2 c |=> d ##1 e")
	if !a.NonOverlap {
		t.Error("|=> should be non-overlapped")
	}
	if len(a.Ante) != 3 || a.Ante[1].Delay != 1 || a.Ante[2].Delay != 2 {
		t.Fatalf("ante steps wrong: %+v", a.Ante)
	}
	if len(a.Cons) != 2 || a.Cons[1].Delay != 1 {
		t.Fatalf("cons steps wrong: %+v", a.Cons)
	}
	// ante spans 4 cycles (0,1,3), |=> adds 1, cons spans 2: window 0..5
	if a.WindowLength() != 6 {
		t.Errorf("window = %d, want 6", a.WindowLength())
	}
}

func TestParseLeadingConsequentDelay(t *testing.T) {
	a := mustParseA(t, "start |-> ##3 done")
	if a.Cons[0].Delay != 3 {
		t.Fatalf("cons lead delay = %d, want 3", a.Cons[0].Delay)
	}
	if a.WindowLength() != 4 {
		t.Errorf("window = %d, want 4", a.WindowLength())
	}
}

// Delay counts are single number tokens (optionally parenthesized), so a
// step expression starting with a unary operator is not absorbed into the
// delay — the mis-parse the differential harness found.
func TestParseDelayBeforeUnaryStep(t *testing.T) {
	a := mustParseA(t, "a ##1 b |=> ##2 &rst")
	if a.Cons[0].Delay != 2 {
		t.Fatalf("cons lead delay = %d, want 2", a.Cons[0].Delay)
	}
	if got := a.String(); got != "a ##1 b |=> ##2 &rst" {
		t.Errorf("canonical form = %q", got)
	}
	// The canonical rendering must re-parse to itself.
	b := mustParseA(t, a.String())
	if b.String() != a.String() {
		t.Errorf("canonical form unstable: %q -> %q", a.String(), b.String())
	}
}

func TestParseParenthesizedDelay(t *testing.T) {
	a := mustParseA(t, "start |-> ##(3) done")
	if a.Cons[0].Delay != 3 {
		t.Fatalf("cons lead delay = %d, want 3", a.Cons[0].Delay)
	}
	if a2 := mustParseA(t, "p ##((2)) q |-> r"); a2.Ante[1].Delay != 2 {
		t.Fatalf("nested paren delay = %d, want 2", a2.Ante[1].Delay)
	}
	if _, err := Parse("a |-> ##(2 b"); err == nil {
		t.Error("unclosed paren delay must fail")
	}
}

func TestParseAssertPropertyWrapper(t *testing.T) {
	a := mustParseA(t, "assert property (@(posedge clk) full |-> !w_en);")
	if a.Clock != "clk" {
		t.Errorf("clock = %q, want clk", a.Clock)
	}
	if len(a.Ante) != 1 || len(a.Cons) != 1 {
		t.Fatal("wrapper body not parsed")
	}
}

func TestParseLTLPaperP1(t *testing.T) {
	// Paper Sec. II-A, P1.
	a := mustParseA(t, "G((req1 == 1 && req2 == 0) -> (gnt1 == 1))")
	if a.NonOverlap {
		t.Error("-> in G() maps to overlapped")
	}
	if a.WindowLength() != 1 {
		t.Errorf("window = %d, want 1", a.WindowLength())
	}
}

func TestParseLTLPaperP2(t *testing.T) {
	// Paper Sec. II-A, P2: antecedent spans cycles 0 and 1, consequent at 2.
	a := mustParseA(t, "G((req2 == 0 && gnt_ == 1) && X(req1 == 1) -> X(X(gnt1 == 1)))")
	if len(a.Ante) != 2 {
		t.Fatalf("ante has %d steps, want 2: %+v", len(a.Ante), a.Ante)
	}
	if a.Ante[1].Delay != 1 {
		t.Errorf("second ante step delay = %d, want 1", a.Ante[1].Delay)
	}
	if len(a.Cons) != 1 || a.Cons[0].Delay != 1 {
		t.Fatalf("cons = %+v, want single step one cycle after ante end", a.Cons)
	}
	if a.WindowLength() != 3 {
		t.Errorf("window = %d, want 3", a.WindowLength())
	}
}

func TestParseLTLPaperP2NonOverlapForm(t *testing.T) {
	// The paper's rewrite: '=>' subsumes the consequent's X.
	a := mustParseA(t, "G((req2 == 0 && gnt_ == 1) && X(req1 == 1) => (gnt1 == 1))")
	b := mustParseA(t, "G((req2 == 0 && gnt_ == 1) && X(req1 == 1) -> X(X(gnt1 == 1)))")
	if a.WindowLength() != b.WindowLength() {
		t.Errorf("windows differ: %d vs %d", a.WindowLength(), b.WindowLength())
	}
}

func TestParseLTLNestedX(t *testing.T) {
	a := mustParseA(t, "G(a -> X(X(X(b))))")
	if a.Cons[0].Delay != 3 {
		t.Errorf("cons delay = %d, want 3", a.Cons[0].Delay)
	}
}

func TestParseLTLSameOffsetDisjunction(t *testing.T) {
	a := mustParseA(t, "G(X(a) || X(b) -> X(X(c)))")
	if len(a.Ante) != 1 {
		t.Fatalf("same-offset disjunction should collapse, got %+v", a.Ante)
	}
}

func TestParseSystemFunctions(t *testing.T) {
	a := mustParseA(t, "$rose(start) |-> $past(count) == 0 && $stable(mode)")
	if len(a.Ante) != 1 || len(a.Cons) != 1 {
		t.Fatal("parse structure wrong")
	}
	sigs := a.Signals()
	for _, want := range []string{"start", "count", "mode"} {
		if !sigs[want] {
			t.Errorf("signal %q missing from Signals()", want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"", "empty"},
		{"a == 1", "expected '|->'"},
		{"a |-> ", "expected expression"},
		{"G(a -> X(b) || c)", "'||' across different cycles"},
		{"G(X(X(a)) -> X(b))", "before the antecedent ends"},
		{"a ##x b |-> c", "cycle count"},
		{"a ## 99 b |-> c", "exceeds"},
		{"$bogus(a) |-> b", "unsupported system function"},
		{"$past(a, 0) |-> b", "$past depth"},
		{"$rose(a, b) |-> c", "exactly one argument"},
		{"a |-> b |-> c", "trailing"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) error = %q, want to contain %q", c.src, err, c.frag)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"a ##1 b |-> c",
		"a && b |=> c ##2 d",
		"x == 4'h3 |-> ##2 y != 0",
		"$rose(a) |-> $past(b, 2) == 1",
		"G(a -> X(b))",
	}
	for _, src := range srcs {
		a := mustParseA(t, src)
		printed := a.String()
		b, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", printed, src, err)
		}
		if b.String() != printed {
			t.Errorf("unstable round trip: %q -> %q", printed, b.String())
		}
		if !a.Equal(b) {
			t.Errorf("Equal false after round trip of %q", src)
		}
	}
}

func TestSplitAssertions(t *testing.T) {
	text := `
// header comment
a |-> b;
c ##1 d |=> e; f |-> g;

prose line that is junk
`
	parts := SplitAssertions(text)
	if len(parts) != 4 {
		t.Fatalf("got %d parts %v, want 4", len(parts), parts)
	}
	if parts[1] != "c ##1 d |=> e" || parts[2] != "f |-> g" {
		t.Errorf("split wrong: %v", parts)
	}
}

func TestParseAll(t *testing.T) {
	as, errs := ParseAll("a |-> b;\ntotal garbage ===\nc |=> d;")
	if len(as) != 2 {
		t.Fatalf("parsed %d assertions, want 2", len(as))
	}
	if len(errs) != 1 {
		t.Fatalf("got %d errors, want 1", len(errs))
	}
}
