package sva

import (
	"fmt"
	"sort"
	"strings"

	"assertionbench/internal/verilog"
)

// ParseError is a syntax or subset error in an assertion string.
type ParseError struct {
	Src string
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("sva: %s in %q", e.Msg, e.Src) }

func perr(src, format string, args ...interface{}) *ParseError {
	return &ParseError{Src: src, Msg: fmt.Sprintf(format, args...)}
}

// Parse parses one assertion in either the native SVA surface syntax
// (seq |-> seq, seq |=> seq, optionally wrapped in assert property(...))
// or the paper's LTL-style G(A -> C) syntax with X() next-cycle operators.
func Parse(src string) (*Assertion, error) {
	text := strings.TrimSpace(src)
	text = strings.TrimSuffix(text, ";")
	text = strings.TrimSpace(text)
	if text == "" {
		return nil, perr(src, "empty assertion")
	}
	toks, err := verilog.Lex(text)
	if err != nil {
		return nil, perr(src, "lexical error: %v", err)
	}
	p := &propParser{src: src, tp: verilog.NewTokenParser(toks)}
	a, err := p.parseTop()
	if err != nil {
		return nil, err
	}
	if !p.tp.AtEOF() {
		return nil, perr(src, "unexpected trailing %s", p.tp.CurToken())
	}
	a.Source = strings.TrimSpace(src)
	return a, nil
}

// ParseAll parses a block of text containing zero or more assertions, one
// per line or semicolon-separated. It returns the assertions that parsed
// and one error per assertion that did not. Blank lines, comment lines and
// non-assertion prose lines count as errors only if they look like
// assertion attempts (contain an implication or comparison operator).
func ParseAll(text string) ([]*Assertion, []error) {
	var out []*Assertion
	var errs []error
	for _, line := range SplitAssertions(text) {
		a, err := Parse(line)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		out = append(out, a)
	}
	return out, errs
}

// SplitAssertions splits raw generated text into candidate assertion
// strings. Lines are the primary unit; a trailing ';' ends a candidate.
func SplitAssertions(text string) []string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, "#") {
			continue
		}
		// A line may carry multiple ';'-terminated assertions.
		for _, piece := range strings.Split(line, ";") {
			piece = strings.TrimSpace(piece)
			if piece == "" {
				continue
			}
			out = append(out, piece)
		}
	}
	return out
}

type propParser struct {
	src string
	tp  *verilog.Parser
}

// atom is a proposition at a cycle offset from the property start.
type atom struct {
	off  int
	expr verilog.Expr
}

func (p *propParser) parseTop() (*Assertion, error) {
	clock := ""
	// Optional wrapper: assert property ( @(posedge clk) PROP )
	if p.peekIdent("assert") {
		p.tp.Advance()
		if !p.peekIdent("property") {
			return nil, perr(p.src, "expected 'property' after 'assert'")
		}
		p.tp.Advance()
		if err := p.tp.ExpectSym("("); err != nil {
			return nil, perr(p.src, "%v", err)
		}
		if p.tp.AcceptSym("@") {
			if err := p.tp.ExpectSym("("); err != nil {
				return nil, perr(p.src, "%v", err)
			}
			if !p.tp.AcceptKw("posedge") && !p.tp.AcceptKw("negedge") {
				return nil, perr(p.src, "expected posedge/negedge in clocking event")
			}
			t := p.tp.CurToken()
			if t.Kind != verilog.TokIdent {
				return nil, perr(p.src, "expected clock name, got %s", t)
			}
			clock = t.Text
			p.tp.Advance()
			if err := p.tp.ExpectSym(")"); err != nil {
				return nil, perr(p.src, "%v", err)
			}
		}
		a, err := p.parseProp()
		if err != nil {
			return nil, err
		}
		if err := p.tp.ExpectSym(")"); err != nil {
			return nil, perr(p.src, "%v", err)
		}
		a.Clock = clock
		return a, nil
	}
	return p.parseProp()
}

func (p *propParser) peekIdent(name string) bool {
	t := p.tp.CurToken()
	return t.Kind == verilog.TokIdent && t.Text == name
}

func (p *propParser) parseProp() (*Assertion, error) {
	// LTL form: G( ... ) or always ( ... )
	if (p.peekIdent("G") || p.tp.PeekKw("always")) && p.nextIsParen() {
		p.tp.Advance()
		return p.parseLTL()
	}
	return p.parseNative()
}

func (p *propParser) nextIsParen() bool {
	pos := p.tp.Pos()
	p.tp.Advance()
	ok := p.tp.PeekSym("(")
	p.tp.SetPos(pos)
	return ok
}

// --- native SVA form ---

func (p *propParser) parseNative() (*Assertion, error) {
	ante, lead, leadSpan, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	if lead != 0 || leadSpan != 0 {
		return nil, perr(p.src, "a leading delay is only supported on the consequent")
	}
	var nonOverlap bool
	switch {
	case p.tp.AcceptSym("|->"), p.tp.AcceptSym("->"):
		nonOverlap = false
	case p.tp.AcceptSym("|=>"), p.tp.AcceptSym("=>"):
		nonOverlap = true
	default:
		return nil, perr(p.src, "expected '|->' or '|=>', got %s", p.tp.CurToken())
	}
	cons, lead, leadSpan, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	cons[0].Delay = lead
	if leadSpan > 0 && len(cons) > 1 {
		return nil, perr(p.src, "##[m:n] ranges require a single-step consequent")
	}
	return &Assertion{Ante: ante, Cons: cons, NonOverlap: nonOverlap, ConsDelaySpan: leadSpan}, nil
}

// parseSeq parses expr (##N expr)*, with an optional leading ##N or
// ##[m:n] whose value and span are returned separately.
func (p *propParser) parseSeq() ([]Step, int, int, error) {
	lead, leadSpan := 0, 0
	if p.tp.AcceptSym("##") {
		lo, span, err := p.parseDelay(true)
		if err != nil {
			return nil, 0, 0, err
		}
		lead, leadSpan = lo, span
	}
	var steps []Step
	first, err := p.parseBool()
	if err != nil {
		return nil, 0, 0, err
	}
	steps = append(steps, Step{Expr: first})
	for p.tp.AcceptSym("##") {
		n, _, err := p.parseDelay(false)
		if err != nil {
			return nil, 0, 0, err
		}
		e, err := p.parseBool()
		if err != nil {
			return nil, 0, 0, err
		}
		steps = append(steps, Step{Delay: n, Expr: e})
	}
	return steps, lead, leadSpan, nil
}

// parseDelay parses the N of ##N, or ##[m:n] when ranges are allowed
// (leading position only). Returns (lo, span).
func (p *propParser) parseDelay(allowRange bool) (int, int, error) {
	if p.tp.AcceptSym("[") {
		if !allowRange {
			return 0, 0, perr(p.src, "##[m:n] is only supported as the leading consequent delay")
		}
		lo, err := p.parseDelayCount()
		if err != nil {
			return 0, 0, err
		}
		if err := p.tp.ExpectSym(":"); err != nil {
			return 0, 0, perr(p.src, "%v", err)
		}
		hi, err := p.parseDelayCount()
		if err != nil {
			return 0, 0, err
		}
		if err := p.tp.ExpectSym("]"); err != nil {
			return 0, 0, perr(p.src, "%v", err)
		}
		if hi < lo {
			return 0, 0, perr(p.src, "##[%d:%d] range is empty", lo, hi)
		}
		return lo, hi - lo, nil
	}
	n, err := p.parseDelayCount()
	return n, 0, err
}

// parseDelayCount reads the N of ##N as a single number token, with
// optional parentheses ("##(2)" is legal SVA). The full expression
// parser must not be used here: it would greedily absorb a following
// unary step expression ("##2 &rst" would mis-parse as the binary AND
// "2 & rst" and then fail the literal check). Found by the differential
// harness (internal/dverify).
func (p *propParser) parseDelayCount() (int, error) {
	if p.tp.AcceptSym("(") {
		n, err := p.parseDelayCount()
		if err != nil {
			return 0, err
		}
		if err := p.tp.ExpectSym(")"); err != nil {
			return 0, perr(p.src, "%v", err)
		}
		return n, nil
	}
	t := p.tp.CurToken()
	if t.Kind != verilog.TokNumber {
		return 0, perr(p.src, "expected cycle count after '##', got %s", t)
	}
	p.tp.Advance()
	v, _, err := verilog.ParseNumber(t)
	if err != nil {
		return 0, perr(p.src, "%v", err)
	}
	if v > 64 {
		return 0, perr(p.src, "##%d delay exceeds the supported window of 64 cycles", v)
	}
	return int(v), nil
}

// parseBool parses a full boolean expression (the design expression
// grammar plus sampled-value functions), stopping before sequence
// operators.
func (p *propParser) parseBool() (verilog.Expr, error) {
	e, err := p.tp.ParseExpression()
	if err != nil {
		return nil, perr(p.src, "%v", err)
	}
	if err := checkCalls(e, p.src); err != nil {
		return nil, err
	}
	return e, nil
}

// checkCalls validates sampled-value function usage.
func checkCalls(e verilog.Expr, src string) error {
	var walk func(verilog.Expr) error
	walk = func(x verilog.Expr) error {
		switch v := x.(type) {
		case *verilog.Call:
			switch v.Name {
			case "$rose", "$fell", "$stable", "$changed":
				if len(v.Args) != 1 {
					return perr(src, "%s takes exactly one argument", v.Name)
				}
			case "$past":
				if len(v.Args) != 1 && len(v.Args) != 2 {
					return perr(src, "$past takes one or two arguments")
				}
				if len(v.Args) == 2 {
					if n, ok := v.Args[1].(*verilog.Number); !ok || n.Value == 0 || n.Value > 16 {
						return perr(src, "$past depth must be a literal in 1..16")
					}
				}
			default:
				return perr(src, "unsupported system function %s", v.Name)
			}
			for _, a := range v.Args {
				if err := walk(a); err != nil {
					return err
				}
			}
		case *verilog.Unary:
			return walk(v.X)
		case *verilog.Binary:
			if err := walk(v.X); err != nil {
				return err
			}
			return walk(v.Y)
		case *verilog.Ternary:
			if err := walk(v.Cond); err != nil {
				return err
			}
			if err := walk(v.Then); err != nil {
				return err
			}
			return walk(v.Else)
		case *verilog.Index:
			if err := walk(v.Base); err != nil {
				return err
			}
			return walk(v.Idx)
		case *verilog.PartSelect:
			return walk(v.Base)
		case *verilog.Concat:
			for _, part := range v.Parts {
				if err := walk(part); err != nil {
					return err
				}
			}
		case *verilog.Repl:
			return walk(v.Value)
		}
		return nil
	}
	return walk(e)
}

// --- LTL G(A -> C) form ---

func (p *propParser) parseLTL() (*Assertion, error) {
	if err := p.tp.ExpectSym("("); err != nil {
		return nil, perr(p.src, "%v", err)
	}
	anteAtoms, err := p.parseLTLOr()
	if err != nil {
		return nil, err
	}
	var nonOverlap bool
	switch {
	case p.tp.AcceptSym("->"), p.tp.AcceptSym("|->"):
		nonOverlap = false
	case p.tp.AcceptSym("=>"), p.tp.AcceptSym("|=>"):
		nonOverlap = true
	default:
		return nil, perr(p.src, "expected '->' in G(...) property, got %s", p.tp.CurToken())
	}
	consAtoms, err := p.parseLTLOr()
	if err != nil {
		return nil, err
	}
	if err := p.tp.ExpectSym(")"); err != nil {
		return nil, perr(p.src, "%v", err)
	}
	return assembleLTL(p.src, anteAtoms, consAtoms, nonOverlap)
}

// parseLTLOr handles '||' at the temporal layer: both sides must collapse
// to a single cycle offset.
func (p *propParser) parseLTLOr() ([]atom, error) {
	atoms, err := p.parseLTLAnd()
	if err != nil {
		return nil, err
	}
	for p.tp.AcceptSym("||") {
		rhs, err := p.parseLTLAnd()
		if err != nil {
			return nil, err
		}
		l, lok := collapse(atoms)
		r, rok := collapse(rhs)
		if !lok || !rok || l.off != r.off {
			return nil, perr(p.src, "'||' across different cycles is outside the supported subset")
		}
		atoms = []atom{{off: l.off, expr: &verilog.Binary{Op: "||", X: l.expr, Y: r.expr}}}
	}
	return atoms, nil
}

func (p *propParser) parseLTLAnd() ([]atom, error) {
	atoms, err := p.parseLTLUnary()
	if err != nil {
		return nil, err
	}
	for p.tp.AcceptSym("&&") {
		rhs, err := p.parseLTLUnary()
		if err != nil {
			return nil, err
		}
		atoms = append(atoms, rhs...)
	}
	return atoms, nil
}

func (p *propParser) parseLTLUnary() ([]atom, error) {
	// X(...) next-cycle operator.
	if p.peekIdent("X") && p.nextIsParen() {
		p.tp.Advance()
		p.tp.Advance() // '('
		inner, err := p.parseLTLOr()
		if err != nil {
			return nil, err
		}
		if err := p.tp.ExpectSym(")"); err != nil {
			return nil, perr(p.src, "%v", err)
		}
		for i := range inner {
			inner[i].off++
		}
		return inner, nil
	}
	// '!' at the temporal layer: negate a single-offset group.
	if p.tp.PeekSym("!") {
		pos := p.tp.Pos()
		p.tp.Advance()
		if p.peekIdent("X") && p.nextIsParen() {
			inner, err := p.parseLTLUnary()
			if err != nil {
				return nil, err
			}
			one, ok := collapse(inner)
			if !ok {
				return nil, perr(p.src, "'!' across different cycles is outside the supported subset")
			}
			return []atom{{off: one.off, expr: &verilog.Unary{Op: "!", X: one.expr}}}, nil
		}
		p.tp.SetPos(pos) // plain boolean negation: let the expression parser do it
	}
	// Parenthesized temporal group vs. plain parenthesized expression:
	// try the temporal group first and fall back on trailing operators.
	if p.tp.PeekSym("(") {
		pos := p.tp.Pos()
		p.tp.Advance()
		inner, err := p.parseLTLOr()
		if err == nil && p.tp.PeekSym(")") {
			p.tp.Advance()
			// If the group is followed by a tighter-binding operator the
			// parenthesis belonged to a value expression; re-parse.
			if !p.followsTemporal() {
				p.tp.SetPos(pos)
				return p.parseLeafExpr()
			}
			return inner, nil
		}
		p.tp.SetPos(pos)
	}
	return p.parseLeafExpr()
}

// followsTemporal reports whether the cursor sits on a token that can
// legally follow a temporal group: && || -> => |-> |=> or ')'.
func (p *propParser) followsTemporal() bool {
	for _, s := range []string{"&&", "||", "->", "=>", "|->", "|=>", ")"} {
		if p.tp.PeekSym(s) {
			return true
		}
	}
	return p.tp.AtEOF()
}

func (p *propParser) parseLeafExpr() ([]atom, error) {
	e, err := p.tp.ParseExpressionPrec(3)
	if err != nil {
		return nil, perr(p.src, "%v", err)
	}
	if err := checkCalls(e, p.src); err != nil {
		return nil, err
	}
	return []atom{{off: 0, expr: e}}, nil
}

// collapse merges atoms that all share one offset into a single conjunct.
func collapse(atoms []atom) (atom, bool) {
	if len(atoms) == 0 {
		return atom{}, false
	}
	out := atoms[0]
	for _, a := range atoms[1:] {
		if a.off != out.off {
			return atom{}, false
		}
		out.expr = &verilog.Binary{Op: "&&", X: out.expr, Y: a.expr}
	}
	return out, true
}

// assembleLTL converts offset-annotated atoms into the sequential form.
func assembleLTL(src string, ante, cons []atom, nonOverlap bool) (*Assertion, error) {
	if len(ante) == 0 || len(cons) == 0 {
		return nil, perr(src, "empty antecedent or consequent")
	}
	anteSteps, anteMin, anteMax := groupAtoms(ante)
	// Normalize so the antecedent starts at offset 0 (G-invariance).
	anteMax -= anteMin

	consSteps, consMin, _ := groupAtoms(cons)
	a := &Assertion{Ante: anteSteps, Cons: consSteps, NonOverlap: nonOverlap}
	if nonOverlap {
		// Paper semantics: '=>' subsumes the X on the consequent; its atoms
		// are relative to the antecedent end.
		a.Cons[0].Delay = consMin
		return a, nil
	}
	// Overlapped '->': consequent offsets are absolute from property start.
	rel := consMin - anteMin - anteMax
	if rel < 0 {
		return nil, perr(src, "consequent begins %d cycle(s) before the antecedent ends (requires n >= m)", -rel)
	}
	a.Cons[0].Delay = rel
	return a, nil
}

// groupAtoms conjoins same-offset atoms and produces delay-encoded steps,
// returning the minimum and maximum offsets seen.
func groupAtoms(atoms []atom) (steps []Step, min, max int) {
	byOff := map[int]verilog.Expr{}
	for _, a := range atoms {
		if cur, ok := byOff[a.off]; ok {
			byOff[a.off] = &verilog.Binary{Op: "&&", X: cur, Y: a.expr}
		} else {
			byOff[a.off] = a.expr
		}
	}
	offs := make([]int, 0, len(byOff))
	for o := range byOff { //ab:allow maprange
		offs = append(offs, o)
	}
	sort.Ints(offs)
	min, max = offs[0], offs[len(offs)-1]
	prev := offs[0]
	for i, o := range offs {
		d := o - prev
		if i == 0 {
			d = 0
		}
		steps = append(steps, Step{Delay: d, Expr: byOff[o]})
		prev = o
	}
	return steps, min, max
}
