package sva

// Lowering of compiled assertion evaluators into the flat register-machine
// program of internal/verilog. Each boolean-layer function (one per
// antecedent/consequent step) becomes a program fragment reading sampled
// histories through IHist; a program-backed Monitor then evaluates a step
// as a fragment call instead of a closure-tree walk, so the FPV engine and
// the trace checker run netlist and monitor on the same machine model.
//
// Every case mirrors compileVal's width and masking rules exactly — the
// closure evaluators stay as the reference interpreter, and the dverify
// backend oracle plus the operator tests cross-check the two.

import (
	"fmt"

	"assertionbench/internal/verilog"
)

// loweredChecker is the compiled-program form of a Compiled assertion's
// evaluators, built once per Compiled and shared by all its machines.
type loweredChecker struct {
	prog      *verilog.Program
	anteFrags []verilog.Frag
	consFrags []verilog.Frag
}

// lower returns the assertion's program fragments, lowering on first use.
// Concurrent monitors over one Compiled share a single lowering.
func (c *Compiled) lower() (*loweredChecker, error) {
	c.lowerOnce.Do(func() { c.low, c.lowErr = lowerCompiled(c) })
	return c.low, c.lowErr
}

func lowerCompiled(c *Compiled) (*loweredChecker, error) {
	b := verilog.NewProgBuilder(0)
	lc := &loweredChecker{}
	frag := func(e verilog.Expr) (verilog.Frag, error) {
		start := b.PC()
		mark := b.Mark()
		slot, _, err := lowerVal(b, e, c.nl, 0)
		b.Release(mark)
		if err != nil {
			return verilog.Frag{}, err
		}
		return verilog.Frag{Start: start, End: b.PC(), Result: slot}, nil
	}
	for _, s := range c.Assertion.Ante {
		f, err := frag(s.Expr)
		if err != nil {
			return nil, err
		}
		lc.anteFrags = append(lc.anteFrags, f)
	}
	for _, s := range c.Assertion.Cons {
		f, err := frag(s.Expr)
		if err != nil {
			return nil, err
		}
		lc.consFrags = append(lc.consFrags, f)
	}
	lc.prog = b.Build()
	return lc, nil
}

// lowerVal lowers one boolean-layer expression, returning the result slot
// and its width. shift is the accumulated $past depth: every signal read
// at this point samples hist[shift+...]. The width arithmetic tracks
// compileVal line for line.
func lowerVal(b *verilog.ProgBuilder, e verilog.Expr, nl *verilog.Netlist, shift int) (int32, int, error) {
	mark := b.Mark()
	res := func(op verilog.IOp, a, bb int32, imm uint64) int32 {
		b.Release(mark)
		dst := b.Temp()
		b.Emit(op, dst, a, bb, imm)
		return dst
	}
	switch v := e.(type) {
	case *verilog.Number:
		w := numWidth(v)
		return res(verilog.IConst, 0, 0, v.Value&verilog.WidthMask(w)), w, nil

	case *verilog.Ident:
		idx := nl.NetIndex(v.Name)
		if idx < 0 {
			return 0, 0, fmt.Errorf("unknown signal %q", v.Name)
		}
		return res(verilog.IHist, int32(idx), int32(shift), 0), nl.Nets[idx].Width, nil

	case *verilog.Call:
		return lowerCall(b, v, nl, shift)

	case *verilog.Index:
		base, baseW, err := lowerVal(b, v.Base, nl, shift)
		if err != nil {
			return 0, 0, err
		}
		if lit, ok := litValue(v.Idx); ok && int(lit) >= baseW {
			return 0, 0, fmt.Errorf("bit index %d out of range (width %d)", lit, baseW)
		}
		idx, _, err := lowerVal(b, v.Idx, nl, shift)
		if err != nil {
			return 0, 0, err
		}
		return res(verilog.IBitRead, base, idx, 0), 1, nil

	case *verilog.PartSelect:
		base, baseW, err := lowerVal(b, v.Base, nl, shift)
		if err != nil {
			return 0, 0, err
		}
		msb, ok1 := litValue(v.MSB)
		lsb, ok2 := litValue(v.LSB)
		if !ok1 || !ok2 || msb < lsb || int(msb) >= baseW {
			return 0, 0, fmt.Errorf("invalid part-select bounds")
		}
		w := int(msb-lsb) + 1
		return res(verilog.IPartRead, base, int32(lsb), verilog.WidthMask(w)), w, nil

	case *verilog.Unary:
		x, xw, err := lowerVal(b, v.X, nl, shift)
		if err != nil {
			return 0, 0, err
		}
		switch v.Op {
		case "~":
			return res(verilog.INot, x, 0, verilog.WidthMask(xw)), xw, nil
		case "!":
			return res(verilog.ILogNot, x, 0, 0), 1, nil
		case "-":
			return res(verilog.INeg, x, 0, verilog.WidthMask(xw)), xw, nil
		case "&":
			return res(verilog.IRedAnd, x, 0, verilog.WidthMask(xw)), 1, nil
		case "|":
			return res(verilog.IRedOr, x, 0, 0), 1, nil
		case "^":
			return res(verilog.IRedXor, x, 0, 0), 1, nil
		case "~&":
			return res(verilog.IRedNand, x, 0, verilog.WidthMask(xw)), 1, nil
		case "~|":
			return res(verilog.IRedNor, x, 0, 0), 1, nil
		case "~^", "^~":
			return res(verilog.IRedXnor, x, 0, 0), 1, nil
		}
		return 0, 0, fmt.Errorf("unsupported unary operator %q", v.Op)

	case *verilog.Binary:
		// Equality against a literal (the dominant SVA atom, `sig == N`)
		// fuses the constant into the compare's immediate. The literal's
		// value is masked exactly as compileVal's Number case masks it.
		if v.Op == "==" || v.Op == "===" || v.Op == "!=" || v.Op == "!==" {
			other, num := v.X, v.Y
			if _, ok := other.(*verilog.Number); ok {
				other, num = v.Y, v.X
			}
			if n, ok := num.(*verilog.Number); ok {
				imm := n.Value & verilog.WidthMask(numWidth(n))
				ne := v.Op == "!=" || v.Op == "!=="
				// `sig ==/!= K` collapses to one fused history compare.
				if id, ok := other.(*verilog.Ident); ok {
					if idx := nl.NetIndex(id.Name); idx >= 0 {
						op := verilog.IHistCmpEqImm
						if ne {
							op = verilog.IHistCmpNeImm
						}
						return res(op, int32(idx), int32(shift), imm), 1, nil
					}
				}
				x, _, err := lowerVal(b, other, nl, shift)
				if err != nil {
					return 0, 0, err
				}
				op := verilog.ICmpEqImm
				if ne {
					op = verilog.ICmpNeImm
				}
				return res(op, x, 0, imm), 1, nil
			}
		}
		x, xw, err := lowerVal(b, v.X, nl, shift)
		if err != nil {
			return 0, 0, err
		}
		y, yw, err := lowerVal(b, v.Y, nl, shift)
		if err != nil {
			return 0, 0, err
		}
		w := maxi(xw, yw)
		mask := verilog.WidthMask(w)
		bin := func(op verilog.IOp, rw int, imm uint64) (int32, int, error) {
			return res(op, x, y, imm), rw, nil
		}
		switch v.Op {
		case "+":
			return bin(verilog.IAdd, w, mask)
		case "-":
			return bin(verilog.ISub, w, mask)
		case "*":
			return bin(verilog.IMul, w, mask)
		case "/":
			return bin(verilog.IDiv, w, mask)
		case "%":
			return bin(verilog.IMod, w, mask)
		case "&":
			return bin(verilog.IAnd, w, 0)
		case "|":
			return bin(verilog.IOr, w, 0)
		case "^":
			return bin(verilog.IXor, w, 0)
		case "~^", "^~":
			return bin(verilog.IXnor, w, mask)
		case "&&":
			return bin(verilog.ILogAnd, 1, 0)
		case "||":
			return bin(verilog.ILogOr, 1, 0)
		case "==", "===":
			return bin(verilog.IEq, 1, 0)
		case "!=", "!==":
			return bin(verilog.INe, 1, 0)
		case "<":
			return bin(verilog.ILt, 1, 0)
		case "<=":
			return bin(verilog.ILe, 1, 0)
		case ">":
			return bin(verilog.IGt, 1, 0)
		case ">=":
			return bin(verilog.IGe, 1, 0)
		case "<<":
			// Shifts mask with the LEFT operand's width, like compileVal.
			return bin(verilog.IShl, xw, verilog.WidthMask(xw))
		case ">>":
			return bin(verilog.IShr, xw, 0)
		}
		return 0, 0, fmt.Errorf("unsupported binary operator %q", v.Op)

	case *verilog.Ternary:
		cond, _, err := lowerVal(b, v.Cond, nl, shift)
		if err != nil {
			return 0, 0, err
		}
		b.Release(mark)
		dst := b.Temp()
		jz := b.Emit(verilog.IJz, 0, cond, 0, 0)
		_, tw, err := lowerInto(b, v.Then, nl, shift, dst)
		if err != nil {
			return 0, 0, err
		}
		jend := b.Emit(verilog.IJmp, 0, 0, 0, 0)
		b.Patch(jz, b.PC())
		_, ew, err := lowerInto(b, v.Else, nl, shift, dst)
		if err != nil {
			return 0, 0, err
		}
		b.Patch(jend, b.PC())
		return dst, maxi(tw, ew), nil

	case *verilog.Concat:
		b.Release(mark)
		dst := b.Temp()
		b.Emit(verilog.IConst, dst, 0, 0, 0)
		total := 0
		inner := b.Mark()
		for _, part := range v.Parts {
			p, w, err := lowerVal(b, part, nl, shift)
			if err != nil {
				return 0, 0, err
			}
			b.Emit(verilog.IConcat, dst, p, int32(w), verilog.WidthMask(w))
			b.Release(inner)
			total += w
		}
		if total > 64 {
			return 0, 0, fmt.Errorf("concatenation wider than 64 bits")
		}
		return dst, total, nil
	}
	return 0, 0, fmt.Errorf("unsupported expression form %T", e)
}

// numWidth is the boolean layer's self-determined literal width — the
// same rule compileVal's Number case applies, kept in one place so the
// closure and compiled backends cannot drift.
func numWidth(n *verilog.Number) int {
	if n.Width != 0 {
		return n.Width
	}
	if n.Value >= 1<<32 {
		return 64
	}
	return 32
}

// lowerInto lowers e forcing the result into dst.
func lowerInto(b *verilog.ProgBuilder, e verilog.Expr, nl *verilog.Netlist, shift int, dst int32) (int32, int, error) {
	mark := b.Mark()
	s, w, err := lowerVal(b, e, nl, shift)
	b.Release(mark)
	if err != nil {
		return 0, 0, err
	}
	if s != dst {
		b.Emit(verilog.IMove, dst, s, 0, 0)
	}
	return dst, w, nil
}

func lowerCall(b *verilog.ProgBuilder, v *verilog.Call, nl *verilog.Netlist, shift int) (int32, int, error) {
	mark := b.Mark()
	switch v.Name {
	case "$past":
		n := 1
		if len(v.Args) == 2 {
			lit, ok := litValue(v.Args[1])
			if !ok {
				return 0, 0, fmt.Errorf("$past depth must be a literal")
			}
			n = int(lit)
		}
		return lowerVal(b, v.Args[0], nl, shift+n)
	case "$rose", "$fell":
		cur, _, err := lowerVal(b, v.Args[0], nl, shift)
		if err != nil {
			return 0, 0, err
		}
		prev, _, err := lowerVal(b, v.Args[0], nl, shift+1)
		if err != nil {
			return 0, 0, err
		}
		// LSB edge detect: both operands reduce to bit 0, so the result
		// is (cur&1) &^ (prev&1) for $rose and the mirror for $fell.
		c0 := b.Temp()
		b.Emit(verilog.IAndImm, c0, cur, 0, 1)
		p0 := b.Temp()
		b.Emit(verilog.IAndImm, p0, prev, 0, 1)
		b.Release(mark)
		dst := b.Temp()
		if v.Name == "$rose" {
			b.Emit(verilog.ILogNot, dst, p0, 0, 0)
			b.Emit(verilog.IAnd, dst, c0, dst, 0)
		} else {
			b.Emit(verilog.ILogNot, dst, c0, 0, 0)
			b.Emit(verilog.IAnd, dst, p0, dst, 0)
		}
		return dst, 1, nil
	case "$stable", "$changed":
		cur, _, err := lowerVal(b, v.Args[0], nl, shift)
		if err != nil {
			return 0, 0, err
		}
		prev, _, err := lowerVal(b, v.Args[0], nl, shift+1)
		if err != nil {
			return 0, 0, err
		}
		b.Release(mark)
		dst := b.Temp()
		if v.Name == "$stable" {
			b.Emit(verilog.IEq, dst, cur, prev, 0)
		} else {
			b.Emit(verilog.INe, dst, cur, prev, 0)
		}
		return dst, 1, nil
	}
	return 0, 0, fmt.Errorf("unsupported system function %s", v.Name)
}
