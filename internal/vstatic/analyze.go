package vstatic

import (
	"assertionbench/internal/verilog"
)

// Analysis is the abstract fixpoint of a netlist. Env abstracts every
// value environment the concrete simulator can present at a sample
// point (post-settle, any reachable register state, any input vector,
// any clock phase, and any stale-value mix the engine's state jumping
// can produce — the concretization is a per-net product, so mixes of
// covered environments are covered). Analyses are pure functions of the
// netlist; obtain the shared memoized instance with For.
type Analysis struct {
	nl *verilog.Netlist
	// Env is the abstract sample environment, one Bits per net index.
	Env []Bits
	// Cyclic is set when the comb logic has no topological order; the
	// analysis then claims nothing (everything unconstrained).
	Cyclic bool

	consts []verilog.NetConst
}

// For returns the memoized analysis of nl, computing it on first use.
func For(nl *verilog.Netlist) *Analysis {
	return nl.Analysis(func(nl *verilog.Netlist) any { return Analyze(nl) }).(*Analysis)
}

// Analyze runs the known-bits fixpoint over the netlist. The loop
// maintains S, a join over every environment seen so far (power-on
// zeros, settled sample environments T with inputs and clocks
// unconstrained, and post-clock-edge environments U), and iterates the
// abstract settle/step transfers until S stops changing. Termination:
// Join only clears Known bits, so S descends a finite lattice.
func Analyze(nl *verilog.Netlist) *Analysis {
	a := &Analysis{nl: nl}
	n := len(nl.Nets)
	if len(nl.CombOrder) != len(nl.Assigns)+len(nl.Combs) {
		// Cyclic comb logic: the simulator falls back to bounded fixpoint
		// relaxation, which the ordered abstract settle does not mirror.
		a.Cyclic = true
		a.Env = make([]Bits, n)
		for i := range a.Env {
			a.Env[i] = Top(nl.Nets[i].Width)
		}
		return a
	}
	s := make(aenv, n)
	for i := range s {
		s[i] = Const(0)
	}
	// Each productive iteration clears at least one Known bit, so 64*n+1
	// iterations always suffice; the widening fallback is a safety net.
	for limit := 64*n + 1; ; limit-- {
		t := s.clone()
		driveTop(t, nl)
		settle(t, nl)
		u := t.clone()
		step(u, nl)
		settle(u, nl)
		changed := s.joinWith(t)
		if s.joinWith(u) {
			changed = true
		}
		if !changed {
			break
		}
		if limit <= 0 {
			for i := range s {
				s[i] = Top(nl.Nets[i].Width)
			}
			break
		}
	}
	sample := s.clone()
	driveTop(sample, nl)
	settle(sample, nl)
	a.Env = sample
	for i, b := range a.Env {
		if b.IsConst() {
			a.consts = append(a.consts, verilog.NetConst{Net: i, Val: b.Val})
		}
	}
	return a
}

// ConstNets returns the nets proven constant at every sample point,
// with their values, in ascending net-index order. The returned slice
// is shared; callers must not mutate it.
func (a *Analysis) ConstNets() []verilog.NetConst { return a.consts }

// ConstOf returns the net's value if it is statically constant.
func (a *Analysis) ConstOf(net int) (uint64, bool) {
	b := a.Env[net]
	return b.Val, b.IsConst()
}

// aenv is an abstract value environment indexed by net.
type aenv []Bits

func (env aenv) clone() aenv {
	out := make(aenv, len(env))
	copy(out, env)
	return out
}

// joinWith joins o into env in place and reports whether env changed.
func (env aenv) joinWith(o aenv) bool {
	changed := false
	for i := range env {
		j := Join(env[i], o[i])
		if j != env[i] {
			env[i] = j
			changed = true
		}
	}
	return changed
}

// driveTop makes every data input and clock unconstrained.
func driveTop(env aenv, nl *verilog.Netlist) {
	for _, i := range nl.Inputs {
		env[i] = Top(nl.Nets[i].Width)
	}
	for _, i := range nl.Clocks {
		env[i] = Top(nl.Nets[i].Width)
	}
}

// settle runs the abstract combinational pass in CombOrder, mirroring
// the simulator's acyclic settle. Non-blocking writes inside comb
// processes are discarded, matching the concrete machines (queued then
// dropped at the next Step).
func settle(env aenv, nl *verilog.Netlist) {
	na := len(nl.Assigns)
	for _, item := range nl.CombOrder {
		if item < na {
			execAssign(&nl.Assigns[item], nl, env)
		} else {
			execStmt(nl.Combs[item-na].Body, nl, env, nil)
		}
	}
}

// step is the abstract clock edge: every sequential process runs in
// netlist order sharing one environment (blocking writes visible to
// later processes), then pending non-blocking writes commit.
func step(env aenv, nl *verilog.Netlist) {
	nb := newNBState(len(nl.Nets))
	for _, p := range nl.Seqs {
		execStmt(p.Body, nl, env, nb)
	}
	nb.commit(env, nl)
}

// nbKind tracks what is known about a net's pending non-blocking write.
type nbKind uint8

const (
	nbNone    nbKind = iota // no pending write: net keeps its value
	nbWritten               // definitely fully written with val
	nbMaybe                 // maybe written with val, maybe untouched
	nbTop                   // written in some unmodelled way
)

type nbState struct {
	kind []nbKind
	val  []Bits
}

func newNBState(n int) *nbState {
	return &nbState{kind: make([]nbKind, n), val: make([]Bits, n)}
}

func (nb *nbState) clone() *nbState {
	if nb == nil {
		return nil
	}
	out := newNBState(len(nb.kind))
	copy(out.kind, nb.kind)
	copy(out.val, nb.val)
	return out
}

// commit applies the pending writes to env, mirroring NBWrite.Apply.
func (nb *nbState) commit(env aenv, nl *verilog.Netlist) {
	for n, k := range nb.kind {
		switch k {
		case nbWritten:
			env[n] = nb.val[n]
		case nbMaybe:
			env[n] = Join(env[n], nb.val[n])
		case nbTop:
			env[n] = Top(nl.Nets[n].Width)
		}
	}
}

// joinState merges a branch state (env2, nb2) into (env, nb) in place.
func joinState(env aenv, nb *nbState, env2 aenv, nb2 *nbState) {
	env.joinWith(env2)
	if nb == nil {
		return
	}
	for n := range nb.kind {
		a, b := nb.kind[n], nb2.kind[n]
		switch {
		case a == b && a == nbNone:
		case a == nbTop || b == nbTop:
			nb.kind[n] = nbTop
		case a == nbNone || b == nbNone:
			// Written on one side only: the write may or may not land.
			nb.kind[n] = nbMaybe
			if a == nbNone {
				nb.val[n] = nb2.val[n]
			}
		default:
			if a == nbMaybe || b == nbMaybe {
				nb.kind[n] = nbMaybe
			}
			nb.val[n] = Join(nb.val[n], nb2.val[n])
		}
	}
}

// lrefWidth mirrors verilog's refWidth.
func lrefWidth(l *verilog.LRef, nl *verilog.Netlist) int {
	switch {
	case l.IsBit:
		return 1
	case l.IsPart:
		return l.W
	default:
		return nl.Nets[l.Net].Width
	}
}

// assignRef is the abstract counterpart of resolveRef + write. Blocking
// writes update env immediately; non-blocking writes update the pending
// state (or are discarded when nb is nil, i.e. inside comb settle).
func assignRef(l *verilog.LRef, nl *verilog.Netlist, env aenv, nb *nbState, v Bits, blocking bool) {
	netW := nl.Nets[l.Net].Width
	if blocking {
		switch {
		case l.IsBit:
			idx := evalExpr(l.BitIdx, env)
			if idx.IsConst() {
				if idx.Val >= uint64(netW) || idx.Val >= 64 {
					return // out-of-range index writes nothing
				}
				env[l.Net] = insertPart(env[l.Net], v, int(idx.Val), 1)
				return
			}
			env[l.Net] = blendBit(env[l.Net], v, netW)
		case l.IsPart:
			env[l.Net] = insertPart(env[l.Net], v, l.Lo, l.W)
		default:
			env[l.Net] = v.mask(netW)
		}
		return
	}
	if nb == nil {
		return // comb-settle NB writes are never applied by the machines
	}
	switch {
	case !l.IsBit && !l.IsPart:
		// Unconditional full write: the last such write wins regardless of
		// any earlier pending state.
		nb.kind[l.Net] = nbWritten
		nb.val[l.Net] = v.mask(netW)
	case nb.kind[l.Net] == nbWritten:
		// Refining a fully pending value in place.
		if l.IsPart {
			nb.val[l.Net] = insertPart(nb.val[l.Net], v, l.Lo, l.W)
			return
		}
		idx := evalExpr(l.BitIdx, env)
		if idx.IsConst() {
			if idx.Val >= uint64(netW) || idx.Val >= 64 {
				return
			}
			nb.val[l.Net] = insertPart(nb.val[l.Net], v, int(idx.Val), 1)
			return
		}
		nb.kind[l.Net] = nbTop
	default:
		// Partial write over an unknown base (the commit-time value):
		// give the net up entirely.
		nb.kind[l.Net] = nbTop
	}
}

// execAssign is the abstract continuous assignment (ExecAssign mirror).
func execAssign(a *verilog.CompiledAssign, nl *verilog.Netlist, env aenv) {
	v := evalExpr(a.RHS, env)
	if len(a.LHS) == 1 {
		assignRef(&a.LHS[0], nl, env, nil, v, true)
		return
	}
	shift := uint64(0)
	for i := len(a.LHS) - 1; i >= 0; i-- {
		l := &a.LHS[i]
		w := lrefWidth(l, nl)
		part := shrConst(v, shift).mask(w)
		assignRef(l, nl, env, nil, part, true)
		shift += uint64(w)
	}
}

// execStmt is the abstract ExecStmt: branch conditions with unknown
// truth execute both arms on forked states and join.
func execStmt(s *verilog.EStmt, nl *verilog.Netlist, env aenv, nb *nbState) {
	if s == nil {
		return
	}
	switch s.Op {
	case verilog.SBlock:
		for _, sub := range s.Stmts {
			execStmt(sub, nl, env, nb)
		}

	case verilog.SAssign:
		v := evalExpr(s.RHS, env)
		if len(s.LHS) == 1 {
			assignRef(&s.LHS[0], nl, env, nb, v, s.Blocking)
			return
		}
		shift := uint64(0)
		for i := len(s.LHS) - 1; i >= 0; i-- {
			l := &s.LHS[i]
			w := lrefWidth(l, nl)
			part := shrConst(v, shift).mask(w)
			assignRef(l, nl, env, nb, part, s.Blocking)
			shift += uint64(w)
		}

	case verilog.SIf:
		switch truth(evalExpr(s.Cond, env)) {
		case triTrue:
			execStmt(s.Then, nl, env, nb)
		case triFalse:
			execStmt(s.Else, nl, env, nb)
		default:
			env2, nb2 := env.clone(), nb.clone()
			execStmt(s.Then, nl, env, nb)
			execStmt(s.Else, nl, env2, nb2)
			joinState(env, nb, env2, nb2)
		}

	case verilog.SCase:
		subj := evalExpr(s.Subject, env)
		if subj.IsConst() {
			// With several labels matching the same value (overlapping
			// casez patterns, or duplicate labels where the elaborated
			// labelMap tie-break is not observable here) join the matching
			// arms so any tie-break is covered.
			var matched []*verilog.EStmt
			for i, labels := range s.Labels {
				for _, lab := range labels {
					if lab.Matches(subj.Val) {
						matched = append(matched, s.Arms[i])
						break
					}
				}
			}
			switch len(matched) {
			case 0:
				execStmt(s.Default, nl, env, nb)
			case 1:
				execStmt(matched[0], nl, env, nb)
			default:
				execArmsJoined(matched, nl, env, nb)
			}
			return
		}
		// Unknown subject: any arm (or the default, or — with a nil
		// default — no arm at all) may run.
		arms := make([]*verilog.EStmt, 0, len(s.Arms)+1)
		arms = append(arms, s.Arms...)
		arms = append(arms, s.Default) // nil means "no statement runs"
		execArmsJoined(arms, nl, env, nb)
	}
}

// execArmsJoined executes each arm on a forked copy of the state and
// joins the results.
func execArmsJoined(arms []*verilog.EStmt, nl *verilog.Netlist, env aenv, nb *nbState) {
	base, baseNB := env.clone(), nb.clone()
	first := true
	for _, arm := range arms {
		if first {
			execStmt(arm, nl, env, nb)
			first = false
			continue
		}
		env2, nb2 := base.clone(), baseNB.clone()
		execStmt(arm, nl, env2, nb2)
		joinState(env, nb, env2, nb2)
	}
}
