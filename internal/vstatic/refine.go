package vstatic

import (
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// Antecedent-refined classification. The quick pass in Classify judges
// each step expression against the global invariant alone, which cannot
// decide realistic reset-shaped properties like `rst == 1 |=> busy == 0`:
// busy is not globally constant, it is only forced low in the cycle after
// rst was high. classifyRefined decides exactly these by walking the
// attempt window abstractly: assume the antecedent steps hold at their
// scheduled ages (meeting each constraint into the abstract environment),
// push the refined environment through the design's transition function
// one cycle at a time, and judge the consequent steps at their ages in
// the environments the walk produces.
//
// Soundness: env_0 starts at the fixpoint invariant, which admits every
// reachable sampled environment, so it admits every attempt start. Each
// meet conditions on "this attempt's antecedent step held", which is
// exactly the hypothesis under which the consequent must be judged
// (attempts whose antecedent fails cannot violate). The abstract step
// over-approximates the concrete successor, so env_t admits the cycle-t
// environment of every attempt that completes its antecedent. Hence:
//   - a consequent statically true in env_t holds on every completing
//     attempt (PropHolds — vacuity stays open, callers must witness a
//     completing attempt concretely before claiming a proof);
//   - a contradiction while meeting an antecedent constraint means no
//     reachable trajectory satisfies the antecedent (PropVacuous);
//   - a consequent statically false in env_t fails on every completing
//     attempt (PropRefuted — callers still need a concrete witness).

// maxRefineWindow bounds the walk; sva.Compile already rejects windows
// beyond 64 cycles, so this is belt and braces.
const maxRefineWindow = 64

// classifyRefined re-judges a property the quick pass left unknown.
// anteTaut records that every antecedent step was a tautology under the
// global invariant: then every attempt completes, and a statically true
// consequent upgrades from PropHolds to PropProven.
func (a *Analysis) classifyRefined(c *sva.Compiled, anteTaut bool) PropClass {
	as := c.Assertion
	window := c.Window
	if window <= 0 || window > maxRefineWindow || len(as.Cons) == 0 {
		return PropUnknown
	}

	envs := make([]aenv, 0, window)
	consTruth := make([]tri, len(as.Cons))
	var rangedTruths []tri
	for t := 0; t < window; t++ {
		var env aenv
		if t == 0 {
			env = aenv(a.Env).clone()
		} else {
			env = envs[t-1].clone()
			step(env, a.nl)
			driveTop(env, a.nl)
			settle(env, a.nl)
			meetInvariant(env, a.Env)
		}
		envs = append(envs, env)
		pe := a.walkEnv(envs, t)
		if !a.assumeAnte(pe, env, c, t) {
			return PropVacuous
		}
		for _, i := range c.AtAge[t].Cons {
			consTruth[i] = pe.truthOf(as.Cons[i].Expr)
		}
		if c.Ranged && t >= c.ConsLoAge && t <= c.ConsHiAge {
			rangedTruths = append(rangedTruths, pe.truthOf(as.Cons[0].Expr))
		}
	}

	holds, refuted := true, false
	if c.Ranged {
		// A ranged consequent is existential over its ages: one
		// statically true age discharges it, and refutation needs every
		// age statically false.
		anyTrue, allFalse := false, len(rangedTruths) > 0
		for _, tr := range rangedTruths {
			if tr == triTrue {
				anyTrue = true
			}
			if tr != triFalse {
				allFalse = false
			}
		}
		holds = anyTrue
		refuted = allFalse
	} else {
		for _, tr := range consTruth {
			if tr != triTrue {
				holds = false
			}
			if tr == triFalse {
				refuted = true
			}
		}
	}
	switch {
	case holds && anteTaut:
		return PropProven
	case holds:
		return PropHolds
	case refuted:
		return PropRefuted
	}
	return PropUnknown
}

// walkEnv builds the evaluation context for window offset t: history
// shifts landing inside the walk read the refined per-offset
// environments; shifts reaching before the window start fall back to
// the invariant joined with zero (the attempt may start at any trace
// cycle, including ones whose $past history crosses the trace start).
func (a *Analysis) walkEnv(envs []aenv, t int) propEnv {
	return propEnv{nl: a.nl, rows: func(net, shift int) Bits {
		if shift <= t {
			return envs[t-shift][net]
		}
		return Join(a.Env[net], Const(0))
	}}
}

// truthOf judges one step expression in this evaluation context.
func (pe propEnv) truthOf(e verilog.Expr) tri {
	b, _, ok := pe.eval(e, 0)
	if !ok {
		return triUnknown
	}
	return truth(b)
}

// assumeAnte meets every antecedent constraint scheduled at window
// offset t into env, reporting false on contradiction (the antecedent
// is unsatisfiable: no attempt completes). Constraints are applied,
// propagated through combinational logic by a settle, and re-applied:
// the settle pushes refined inputs and registers into derived nets, and
// the second pass restores direct constraints on combinational nets the
// settle recomputed from unrefined inputs.
func (a *Analysis) assumeAnte(pe propEnv, env aenv, c *sva.Compiled, t int) bool {
	steps := c.AtAge[t].Ante
	if len(steps) == 0 {
		return true
	}
	for _, i := range steps {
		if !a.assume(pe, env, c.Assertion.Ante[i].Expr, true) {
			return false
		}
	}
	settle(env, a.nl)
	for _, i := range steps {
		if !a.assume(pe, env, c.Assertion.Ante[i].Expr, true) {
			return false
		}
	}
	return true
}

// assume refines env in place under the hypothesis that e evaluates
// truthily (want=true) or falsily (want=false) at the context's current
// offset. It returns false only when the hypothesis contradicts the
// abstract state — no admitted environment satisfies it. Refinement is
// best-effort: forms outside the handled fragment simply learn nothing
// (sound — the environment stays an over-approximation either way).
func (a *Analysis) assume(pe propEnv, env aenv, e verilog.Expr, want bool) bool {
	if b, _, ok := pe.eval(e, 0); ok {
		switch truth(b) {
		case triTrue:
			return want
		case triFalse:
			return !want
		}
	}
	switch v := e.(type) {
	case *verilog.Ident:
		idx := a.nl.NetIndex(v.Name)
		if idx < 0 {
			return true
		}
		if !want {
			// A falsy value is zero regardless of width.
			return meetNet(env, idx, Const(0))
		}
		if a.nl.Nets[idx].Width == 1 {
			return meetNet(env, idx, Const(1))
		}
	case *verilog.Unary:
		switch v.Op {
		case "!":
			return a.assume(pe, env, v.X, !want)
		case "|":
			return a.assume(pe, env, v.X, want)
		case "~":
			// Only a 1-bit ~x is a logical negation of x.
			if _, w, ok := pe.eval(v.X, 0); ok && w == 1 {
				return a.assume(pe, env, v.X, !want)
			}
		case "&":
			if idx, lo, w, ok := netLValue(a.nl, v.X); ok && want {
				return meetRange(env, idx, lo, w, Const(verilog.WidthMask(w)))
			}
		}
	case *verilog.Binary:
		switch v.Op {
		case "&&":
			if want {
				return a.assume(pe, env, v.X, true) && a.assume(pe, env, v.Y, true)
			}
			// A false conjunction pins the other side only when one
			// side is already known true.
			if bx, _, ok := pe.eval(v.X, 0); ok && truth(bx) == triTrue {
				return a.assume(pe, env, v.Y, false)
			}
			if by, _, ok := pe.eval(v.Y, 0); ok && truth(by) == triTrue {
				return a.assume(pe, env, v.X, false)
			}
		case "||":
			if !want {
				return a.assume(pe, env, v.X, false) && a.assume(pe, env, v.Y, false)
			}
			if bx, _, ok := pe.eval(v.X, 0); ok && truth(bx) == triFalse {
				return a.assume(pe, env, v.Y, true)
			}
			if by, _, ok := pe.eval(v.Y, 0); ok && truth(by) == triFalse {
				return a.assume(pe, env, v.X, true)
			}
		case "==", "===":
			if want {
				return a.assumeEq(pe, env, v.X, v.Y)
			}
			return a.assumeNe(pe, env, v.X, v.Y)
		case "!=", "!==":
			if want {
				return a.assumeNe(pe, env, v.X, v.Y)
			}
			return a.assumeEq(pe, env, v.X, v.Y)
		}
	}
	return true
}

// assumeEq refines both sides of an assumed-true equality: each side
// that is a plain net reference (or a constant bit/part select of one)
// meets the other side's known bits. Verilog equality zero-extends the
// narrower operand, so a wider constant either folds the compare false
// (caught by the eqTruth pre-check) or forces the extension bits, which
// the meet's width masking already encodes.
func (a *Analysis) assumeEq(pe propEnv, env aenv, x, y verilog.Expr) bool {
	bx, _, okx := pe.eval(x, 0)
	by, _, oky := pe.eval(y, 0)
	if !okx || !oky {
		return true
	}
	if eqTruth(bx, by) == triFalse {
		return false
	}
	if idx, lo, w, ok := netLValue(a.nl, x); ok {
		if !meetRange(env, idx, lo, w, by) {
			return false
		}
	}
	if idx, lo, w, ok := netLValue(a.nl, y); ok {
		if !meetRange(env, idx, lo, w, bx) {
			return false
		}
	}
	return true
}

// assumeNe handles an assumed-true disequality: decisive only for a
// 1-bit reference against a constant, where x != K pins x to the
// complementary bit value (or learns nothing when K exceeds 1).
func (a *Analysis) assumeNe(pe propEnv, env aenv, x, y verilog.Expr) bool {
	bx, _, okx := pe.eval(x, 0)
	by, _, oky := pe.eval(y, 0)
	if !okx || !oky {
		return true
	}
	if eqTruth(bx, by) == triTrue {
		return false
	}
	if ok := neBit(a.nl, env, x, by); !ok {
		return false
	}
	return neBit(a.nl, env, y, bx)
}

func neBit(nl *verilog.Netlist, env aenv, e verilog.Expr, other Bits) bool {
	idx, lo, w, ok := netLValue(nl, e)
	if !ok || w != 1 || !other.IsConst() || other.Val > 1 {
		return true
	}
	return meetRange(env, idx, lo, 1, Const(other.Val^1))
}

// netLValue recognizes the refinable reference forms: a plain net, a
// constant bit select, or a constant part select of a net. It returns
// the net index and the selected bit range.
func netLValue(nl *verilog.Netlist, e verilog.Expr) (idx, lo, w int, ok bool) {
	switch v := e.(type) {
	case *verilog.Ident:
		idx = nl.NetIndex(v.Name)
		if idx < 0 {
			return 0, 0, 0, false
		}
		return idx, 0, nl.Nets[idx].Width, true
	case *verilog.Index:
		base, isID := v.Base.(*verilog.Ident)
		bit, isLit := litNumber(v.Idx)
		if !isID || !isLit {
			return 0, 0, 0, false
		}
		idx = nl.NetIndex(base.Name)
		if idx < 0 || int(bit) >= nl.Nets[idx].Width {
			return 0, 0, 0, false
		}
		return idx, int(bit), 1, true
	case *verilog.PartSelect:
		base, isID := v.Base.(*verilog.Ident)
		msb, ok1 := litNumber(v.MSB)
		lsb, ok2 := litNumber(v.LSB)
		if !isID || !ok1 || !ok2 || msb < lsb {
			return 0, 0, 0, false
		}
		idx = nl.NetIndex(base.Name)
		if idx < 0 || int(msb) >= nl.Nets[idx].Width {
			return 0, 0, 0, false
		}
		return idx, int(lsb), int(msb-lsb) + 1, true
	}
	return 0, 0, 0, false
}

// meet intersects two abstract values. ok=false reports an empty
// intersection: the two constraints disagree on a known bit.
func meet(a, b Bits) (Bits, bool) {
	if conflict := a.Known & b.Known & (a.Val ^ b.Val); conflict != 0 {
		return Bits{}, false
	}
	return Bits{Known: a.Known | b.Known, Val: a.Val | b.Val}, true
}

// meetNet meets a constraint into one net's abstract value in place.
func meetNet(env aenv, idx int, c Bits) bool {
	m, ok := meet(env[idx], c)
	if !ok {
		return false
	}
	env[idx] = m
	return true
}

// meetRange meets val's low w bits into bits [lo, lo+w) of a net.
func meetRange(env aenv, idx, lo, w int, val Bits) bool {
	m := verilog.WidthMask(w)
	return meetNet(env, idx, Bits{
		Known: (val.Known & m) << uint(lo),
		Val:   (val.Val & m) << uint(lo),
	})
}

// meetInvariant tightens a stepped environment with the global
// invariant: successors of reachable states are reachable, so both
// abstractions admit every concrete successor. On a per-net conflict
// (possible only when the refined state set is actually empty) the
// stepped value is kept — vacuity is only ever concluded from
// antecedent constraint contradictions, never from this tightening.
func meetInvariant(env aenv, inv []Bits) {
	for i := range env {
		if m, ok := meet(env[i], inv[i]); ok {
			env[i] = m
		}
	}
}
