// Package vstatic is a static semantic analysis layer over elaborated
// netlists: an abstract interpreter on a known-bits (ternary 0/1/X)
// lattice, run to a fixpoint across the design's combinational and
// sequential units. Its abstraction covers every value environment the
// concrete simulator can be in at a sample point, which makes three
// consumers sound by construction:
//
//   - static pre-verification (internal/fpv): properties whose
//     antecedent is statically false (vacuous), whose consequent is
//     statically true (proven), or whose consequent is statically
//     refuted with a concrete witness prefix are discharged without a
//     state-space search (dverify oracle 8 cross-checks the verdicts);
//   - constant sweeping (verilog.ConeForSwept): nets proven constant
//     stop cone-of-influence traversal, so projections drop
//     constant-driven fan-in beyond the structural cut;
//   - assertion lint (cmd/ablint, assertionbench.Lint): structured
//     diagnostics for trivially-true, contradictory, width-truncating
//     and constant-net assertions.
//
// The domain is non-relational: one Bits value per net, no
// correlations. That keeps the fixpoint linear in design size and —
// because the concretization of an environment is a per-net product —
// automatically covers the FPV engine's state-jumping exploration
// (LoadState mixes register values and stale combinational values from
// different explored states; any mix of covered values is covered).
package vstatic

import (
	"math/bits"

	"assertionbench/internal/verilog"
)

// Bits is a known-bits abstract value: bit i of a concrete value is
// Val>>i&1 whenever Known>>i&1 is set, and unconstrained otherwise.
// Invariant: Val &^ Known == 0. Values mirror the simulator's masking
// convention — bits at and above a net's width are known zero.
type Bits struct {
	Known uint64
	Val   uint64
}

// Top returns the unconstrained value of width w (high bits known zero,
// matching the concrete masking invariant).
func Top(w int) Bits { return Bits{Known: ^verilog.WidthMask(w)} }

// Const returns the fully known value v.
func Const(v uint64) Bits { return Bits{Known: ^uint64(0), Val: v} }

// IsConst reports whether every bit is known.
func (b Bits) IsConst() bool { return b.Known == ^uint64(0) }

// Min is the smallest concrete value the abstraction admits.
func (b Bits) Min() uint64 { return b.Val }

// Max is the largest concrete value the abstraction admits.
func (b Bits) Max() uint64 { return b.Val | ^b.Known }

// Contains reports whether concrete value v is admitted.
func (b Bits) Contains(v uint64) bool { return v&b.Known == b.Val }

// Join is the lattice join: bits stay known only where both sides know
// the same value.
func Join(a, b Bits) Bits {
	known := a.Known & b.Known &^ (a.Val ^ b.Val)
	return Bits{Known: known, Val: a.Val & known}
}

// mask narrows the value to width w: bits at and above w become known
// zero, mirroring `x & WidthMask(w)` on concrete values.
func (b Bits) mask(w int) Bits {
	m := verilog.WidthMask(w)
	return Bits{Known: b.Known | ^m, Val: b.Val & m}
}

// tri is a ternary truth value.
type tri int

const (
	triUnknown tri = iota
	triFalse
	triTrue
)

// truth is the abstract counterpart of `x != 0`: definitely true when
// some bit is known one, definitely false when every bit is known zero.
func truth(b Bits) tri {
	if b.Val != 0 {
		return triTrue
	}
	if b.Known == ^uint64(0) {
		return triFalse
	}
	return triUnknown
}

func (t tri) not() tri {
	switch t {
	case triTrue:
		return triFalse
	case triFalse:
		return triTrue
	}
	return triUnknown
}

// triBit renders a truth value as a 1-bit Bits.
func triBit(t tri) Bits {
	switch t {
	case triTrue:
		return Const(1)
	case triFalse:
		return Const(0)
	}
	return Top(1)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func parity(v uint64) uint64 { return uint64(bits.OnesCount64(v) & 1) }

// ipow mirrors verilog's ** evaluation (wrapping integer power).
func ipow(base, exp uint64) uint64 {
	var r uint64 = 1
	for exp > 0 {
		if exp&1 == 1 {
			r *= base
		}
		base *= base
		exp >>= 1
	}
	return r
}

// addSub is the abstract + / - transfer: the low run of bits known on
// both sides determines the same low run of the result (carries out of
// the run depend only on bits inside it); everything above is unknown.
func addSub(a, b Bits, w int, add bool) Bits {
	var s uint64
	if add {
		s = a.Val + b.Val
	} else {
		s = a.Val - b.Val
	}
	n := bits.TrailingZeros64(^(a.Known & b.Known))
	if n >= 64 {
		return Const(s).mask(w)
	}
	m := verilog.WidthMask(n)
	return Bits{Known: m, Val: s & m}.mask(w)
}

// shrConst shifts right by a known amount; vacated high bits are known
// zero. No width mask, mirroring EExpr OpShr.
func shrConst(b Bits, s uint64) Bits {
	if s == 0 {
		return b
	}
	if s >= 64 {
		return Const(0)
	}
	hi := ^uint64(0) << (64 - s)
	return Bits{Known: (b.Known >> s) | hi, Val: b.Val >> s}
}

// insertPart overwrites bits [lo, lo+w) of old with the low w bits of v
// (the abstract LRef part/bit assignment).
func insertPart(old, v Bits, lo, w int) Bits {
	lm := verilog.WidthMask(w)
	m := lm << uint(lo)
	return Bits{
		Known: (old.Known &^ m) | ((v.Known & lm) << uint(lo)),
		Val:   (old.Val &^ m) | ((v.Val & lm) << uint(lo)),
	}
}

// blendBit is the abstract dynamically indexed single-bit write: any one
// bit below the net width may become v's low bit, or the write may miss
// entirely (out-of-range index), so each low bit joins with the written
// bit and high bits keep their old value.
func blendBit(old, v Bits, netW int) Bits {
	var bk, bv uint64 // v's low bit broadcast to all 64 positions
	if v.Known&1 != 0 {
		bk = ^uint64(0)
		if v.Val&1 != 0 {
			bv = ^uint64(0)
		}
	}
	known := old.Known & bk &^ (old.Val ^ bv)
	val := old.Val & known
	m := verilog.WidthMask(netW)
	return Bits{
		Known: (known & m) | (old.Known &^ m),
		Val:   (val & m) | (old.Val &^ m),
	}
}

// evalExpr is the abstract transfer of EExpr.Eval: each arm mirrors the
// concrete evaluation exactly (same masking, same width rules, same
// division-by-zero and shift-overflow conventions), weakened only where
// precision is given up (non-constant multiplies, shifts by unknown
// amounts, dynamic indices).
func evalExpr(e *verilog.EExpr, env []Bits) Bits {
	switch e.Op {
	case verilog.OpConst:
		return Const(e.Val)
	case verilog.OpNet:
		return env[e.Net]
	case verilog.OpIndex:
		idx := evalExpr(e.A, env)
		if !idx.IsConst() {
			return Top(1)
		}
		if idx.Val >= 64 {
			return Const(0)
		}
		n := env[e.Net]
		return Bits{Known: ((n.Known >> idx.Val) & 1) | ^uint64(1), Val: (n.Val >> idx.Val) & 1}
	case verilog.OpPart:
		n := env[e.Net]
		return Bits{Known: n.Known >> uint(e.Lo), Val: n.Val >> uint(e.Lo)}.mask(e.W)
	case verilog.OpNot:
		a := evalExpr(e.A, env)
		return Bits{Known: a.Known, Val: ^a.Val & a.Known}.mask(e.W)
	case verilog.OpLogNot:
		return triBit(truth(evalExpr(e.A, env)).not())
	case verilog.OpNeg:
		a := evalExpr(e.A, env)
		if a.IsConst() {
			return Const(-a.Val).mask(e.W)
		}
		return Top(e.W)
	case verilog.OpRedAnd:
		return redAnd(evalExpr(e.A, env), e.A.W)
	case verilog.OpRedNand:
		b := redAnd(evalExpr(e.A, env), e.A.W)
		return Bits{Known: b.Known, Val: ^b.Val & b.Known}.mask(1)
	case verilog.OpRedOr:
		return triBit(truth(evalExpr(e.A, env)))
	case verilog.OpRedNor:
		return triBit(truth(evalExpr(e.A, env)).not())
	case verilog.OpRedXor:
		a := evalExpr(e.A, env)
		if a.IsConst() {
			return Const(parity(a.Val))
		}
		return Top(1)
	case verilog.OpRedXnor:
		a := evalExpr(e.A, env)
		if a.IsConst() {
			return Const(parity(a.Val) ^ 1)
		}
		return Top(1)
	case verilog.OpAdd:
		return addSub(evalExpr(e.A, env), evalExpr(e.B, env), e.W, true)
	case verilog.OpSub:
		return addSub(evalExpr(e.A, env), evalExpr(e.B, env), e.W, false)
	case verilog.OpMul:
		a, b := evalExpr(e.A, env), evalExpr(e.B, env)
		if a.IsConst() && b.IsConst() {
			return Const(a.Val * b.Val).mask(e.W)
		}
		if (a.IsConst() && a.Val == 0) || (b.IsConst() && b.Val == 0) {
			return Const(0)
		}
		return Top(e.W)
	case verilog.OpDiv:
		b := evalExpr(e.B, env)
		if b.IsConst() {
			if b.Val == 0 {
				return Const(0)
			}
			if a := evalExpr(e.A, env); a.IsConst() {
				return Const(a.Val / b.Val).mask(e.W)
			}
		}
		return Top(e.W)
	case verilog.OpMod:
		b := evalExpr(e.B, env)
		if b.IsConst() {
			if b.Val == 0 {
				return Const(0)
			}
			if a := evalExpr(e.A, env); a.IsConst() {
				return Const(a.Val % b.Val).mask(e.W)
			}
		}
		return Top(e.W)
	case verilog.OpPow:
		a, b := evalExpr(e.A, env), evalExpr(e.B, env)
		if a.IsConst() && b.IsConst() {
			return Const(ipow(a.Val, b.Val)).mask(e.W)
		}
		return Top(e.W)
	case verilog.OpAnd:
		a, b := evalExpr(e.A, env), evalExpr(e.B, env)
		return Bits{
			Known: (a.Known & b.Known) | (a.Known &^ a.Val) | (b.Known &^ b.Val),
			Val:   a.Val & b.Val,
		}
	case verilog.OpOr:
		a, b := evalExpr(e.A, env), evalExpr(e.B, env)
		return Bits{Known: (a.Known & b.Known) | a.Val | b.Val, Val: a.Val | b.Val}
	case verilog.OpXor:
		a, b := evalExpr(e.A, env), evalExpr(e.B, env)
		k := a.Known & b.Known
		return Bits{Known: k, Val: (a.Val ^ b.Val) & k}
	case verilog.OpXnor:
		a, b := evalExpr(e.A, env), evalExpr(e.B, env)
		k := a.Known & b.Known
		return Bits{Known: k, Val: ^(a.Val ^ b.Val) & k}.mask(e.W)
	case verilog.OpLogAnd:
		ta, tb := truth(evalExpr(e.A, env)), truth(evalExpr(e.B, env))
		switch {
		case ta == triFalse || tb == triFalse:
			return Const(0)
		case ta == triTrue && tb == triTrue:
			return Const(1)
		}
		return Top(1)
	case verilog.OpLogOr:
		ta, tb := truth(evalExpr(e.A, env)), truth(evalExpr(e.B, env))
		switch {
		case ta == triTrue || tb == triTrue:
			return Const(1)
		case ta == triFalse && tb == triFalse:
			return Const(0)
		}
		return Top(1)
	case verilog.OpEq:
		return triBit(eqTruth(evalExpr(e.A, env), evalExpr(e.B, env)))
	case verilog.OpNe:
		return triBit(eqTruth(evalExpr(e.A, env), evalExpr(e.B, env)).not())
	case verilog.OpLt:
		return triBit(cmpTruth(evalExpr(e.A, env), evalExpr(e.B, env), false))
	case verilog.OpLe:
		return triBit(cmpTruth(evalExpr(e.A, env), evalExpr(e.B, env), true))
	case verilog.OpGt:
		return triBit(cmpTruth(evalExpr(e.B, env), evalExpr(e.A, env), false))
	case verilog.OpGe:
		return triBit(cmpTruth(evalExpr(e.B, env), evalExpr(e.A, env), true))
	case verilog.OpShl:
		b := evalExpr(e.B, env)
		if !b.IsConst() {
			return Top(e.W)
		}
		if b.Val >= 64 {
			return Const(0)
		}
		a := evalExpr(e.A, env)
		return Bits{
			Known: (a.Known << b.Val) | verilog.WidthMask(int(b.Val)),
			Val:   a.Val << b.Val,
		}.mask(e.W)
	case verilog.OpShr:
		b := evalExpr(e.B, env)
		if !b.IsConst() {
			// The result is bounded by A's width even without masking.
			return Top(e.A.W)
		}
		if b.Val >= 64 {
			return Const(0)
		}
		return shrConst(evalExpr(e.A, env), b.Val)
	case verilog.OpTernary:
		switch truth(evalExpr(e.A, env)) {
		case triTrue:
			return evalExpr(e.B, env)
		case triFalse:
			return evalExpr(e.C, env)
		}
		return Join(evalExpr(e.B, env), evalExpr(e.C, env))
	case verilog.OpConcat:
		acc := Const(0)
		for _, part := range e.Parts {
			pb := evalExpr(part, env)
			m := verilog.WidthMask(part.W)
			acc = Bits{
				Known: (acc.Known << uint(part.W)) | (pb.Known & m),
				Val:   (acc.Val << uint(part.W)) | (pb.Val & m),
			}
		}
		return acc.mask(e.W)
	}
	// Unknown op (future extension): fully unconstrained is always sound.
	return Bits{}
}

// redAnd is the abstract &-reduction over width w.
func redAnd(a Bits, w int) Bits {
	m := verilog.WidthMask(w)
	switch {
	case a.Val&m == m:
		return Const(1)
	case ^a.Val&a.Known&m != 0:
		return Const(0)
	}
	return Top(1)
}

// eqTruth is the abstract `a == b` over raw 64-bit values.
func eqTruth(a, b Bits) tri {
	if a.IsConst() && b.IsConst() {
		if a.Val == b.Val {
			return triTrue
		}
		return triFalse
	}
	if (a.Val^b.Val)&a.Known&b.Known != 0 {
		return triFalse
	}
	if a.Max() < b.Min() || b.Max() < a.Min() {
		return triFalse
	}
	return triUnknown
}

// cmpTruth is the abstract `a < b` (orEq: `a <= b`) over raw values.
func cmpTruth(a, b Bits, orEq bool) tri {
	if orEq {
		if a.Max() <= b.Min() {
			return triTrue
		}
		if a.Min() > b.Max() {
			return triFalse
		}
		return triUnknown
	}
	if a.Max() < b.Min() {
		return triTrue
	}
	if a.Min() >= b.Max() {
		return triFalse
	}
	return triUnknown
}
