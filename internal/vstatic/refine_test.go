package vstatic

import (
	"testing"

	"assertionbench/internal/sim"
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// refDUT: busy clears under reset and otherwise follows req; cnt is a
// free-running counter with synchronous clear. Neither register is
// globally constant, so the quick (invariant-only) pass cannot decide
// any reset-shaped property about them — the refined walk must.
const refDUT = `
module refdut(input clk, input rst, input req);
  reg busy;
  reg [3:0] cnt;
  always @(posedge clk) begin
    if (rst) busy <= 1'b0;
    else busy <= req;
  end
  always @(posedge clk) begin
    if (rst) cnt <= 4'd0;
    else cnt <= cnt + 4'd1;
  end
endmodule
`

func classify(t *testing.T, src, top, prop string) PropClass {
	t.Helper()
	nl, err := verilog.ElaborateSource(src, top)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sva.Parse(prop)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sva.Compile(a, nl)
	if err != nil {
		t.Fatal(err)
	}
	return For(nl).Classify(c)
}

func TestRefinedClassification(t *testing.T) {
	cases := []struct {
		prop string
		want PropClass
	}{
		// The canonical reset property: undecidable globally, decided
		// by assuming rst at offset 0 and stepping once.
		{"rst == 1 |=> busy == 0", PropHolds},
		{"rst == 1 |=> cnt == 0", PropHolds},
		// Refined refutation: after a reset cycle busy is known zero,
		// so the consequent is statically false on every attempt.
		{"rst == 1 |=> busy == 1", PropRefuted},
		// Jointly unsatisfiable antecedent atoms: each compare alone is
		// unknown, the meet of both is a contradiction.
		{"rst == 1 && rst == 0 |-> busy == 0", PropVacuous},
		// Ranged consequent, existential over ages: cnt is known zero
		// one cycle after reset, which lies inside ##[1:2].
		{"rst == 1 |-> ##[1:2] cnt == 0", PropHolds},
		// $past inside the window reads the refined offset-0 row.
		{"rst == 1 |=> $past(rst) == 1", PropHolds},
		// Multi-step antecedent: both offsets refine their own rows and
		// the consequent is judged two abstract steps in.
		{"rst == 1 ##1 rst == 1 |=> cnt == 0", PropHolds},
		// Wide-register refinement plus arithmetic wrap: cnt == 15
		// steps to 0 on both branches of the reset mux.
		{"cnt == 15 |=> cnt == 0", PropHolds},
		// Genuinely undecidable: busy follows the free input req.
		{"rst == 0 |=> busy == 1", PropUnknown},
	}
	for _, tc := range cases {
		if got := classify(t, refDUT, "refdut", tc.prop); got != tc.want {
			t.Errorf("%q: classified %v, want %v", tc.prop, got, tc.want)
		}
	}
}

func TestMeetLattice(t *testing.T) {
	if _, ok := meet(Const(5), Const(6)); ok {
		t.Error("meet of distinct constants must be empty")
	}
	m, ok := meet(Top(4), Const(9))
	if !ok || m != Const(9) {
		t.Errorf("meet(Top, 9) = %+v ok=%v, want Const(9)", m, ok)
	}
	// Partial knowledge intersects bitwise: {bit0=1} ∧ {bit1=0} pins
	// both bits and leaves the rest unknown.
	a := Bits{Known: 1, Val: 1}
	b := Bits{Known: 2, Val: 0}
	m, ok = meet(a, b)
	if !ok || m.Known != 3 || m.Val != 1 {
		t.Errorf("bitwise meet = %+v ok=%v", m, ok)
	}
	// Every value admitted by the meet is admitted by both operands.
	for v := uint64(0); v < 16; v++ {
		if m.Contains(v) && (!a.Contains(v) || !b.Contains(v)) {
			t.Errorf("meet admits %d which an operand excludes", v)
		}
		if a.Contains(v) && b.Contains(v) && !m.Contains(v) {
			t.Errorf("meet excludes %d admitted by both operands", v)
		}
	}
}

// TestRefinedWalkAdmitsCompletingAttempts: on concrete traces of the
// DUT, whenever an attempt of the property completes its antecedent,
// the sampled environments at the consequent ages must be admitted by
// the refined walk's abstract rows. This is the walk's soundness
// contract, checked directly rather than via verdicts.
func TestRefinedWalkAdmitsCompletingAttempts(t *testing.T) {
	nl, err := verilog.ElaborateSource(refDUT, "refdut")
	if err != nil {
		t.Fatal(err)
	}
	a, err := sva.Parse("rst == 1 |=> busy == 0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := sva.Compile(a, nl)
	if err != nil {
		t.Fatal(err)
	}
	an := For(nl)
	// Rebuild the walk's environments exactly as classifyRefined does.
	envs := make([]aenv, 0, c.Window)
	for ti := 0; ti < c.Window; ti++ {
		var env aenv
		if ti == 0 {
			env = aenv(an.Env).clone()
		} else {
			env = envs[ti-1].clone()
			step(env, nl)
			driveTop(env, nl)
			settle(env, nl)
			meetInvariant(env, an.Env)
		}
		envs = append(envs, env)
		pe := an.walkEnv(envs, ti)
		if !an.assumeAnte(pe, env, c, ti) {
			t.Fatal("antecedent reported unsatisfiable on a satisfiable property")
		}
	}
	rst := nl.NetIndex("rst")
	busy := nl.NetIndex("busy")
	tr, err := sim.RandomTrace(nl, 40, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start+c.Window <= tr.Len(); start++ {
		if tr.Value(start, rst) != 1 {
			continue // antecedent does not fire: attempt out of scope
		}
		for off := 0; off < c.Window; off++ {
			for _, net := range []int{rst, busy} {
				v := tr.Value(start+off, net)
				if !envs[off][net].Contains(v) {
					t.Fatalf("attempt@%d offset %d: net %s=%d not admitted by %+v",
						start, off, nl.Nets[net].Name, v, envs[off][net])
				}
			}
		}
	}
}
