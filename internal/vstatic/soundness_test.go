// Package vstatic_test holds the corpus-wide soundness property test.
// It lives in an external test package because it drives the analysis
// through the bench generator corpus, and bench imports vstatic
// transitively (bench -> fpv -> vstatic).
package vstatic_test

import (
	"math/rand"
	"testing"

	"assertionbench/internal/bench"
	"assertionbench/internal/sim"
	"assertionbench/internal/verilog"
	"assertionbench/internal/vstatic"
)

// TestFixpointAdmitsConcreteStates is the global soundness property: for
// every generator-family design, every net value observed on any
// randomly stimulated simulation trace must be admitted by the abstract
// fixpoint. A violation here means the analysis claims a bit is
// constant when the hardware can flip it — exactly the bug class that
// would let the static pre-verification pass discharge a property
// unsoundly.
func TestFixpointAdmitsConcreteStates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		spec := bench.RandomFuzzSpec(rng)
		d := spec.Build()
		file, err := verilog.Parse(d.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", spec, err)
		}
		nl, err := verilog.Elaborate(file, d.Name, nil)
		if err != nil {
			t.Fatalf("%s: elaborate: %v", spec, err)
		}
		a := vstatic.For(nl)
		if len(a.Env) != len(nl.Nets) {
			t.Fatalf("%s: fixpoint has %d entries for %d nets", spec, len(a.Env), len(nl.Nets))
		}
		// Two stimulus regimes: free-running from reset-state zero, and a
		// warm-up with reset-like inputs held (the abstract semantics
		// must cover both since it drives all inputs to Top).
		for _, resetCycles := range []int{0, 4} {
			tr, err := sim.RandomTrace(nl, 48, resetCycles, int64(i*2+resetCycles))
			if err != nil {
				t.Fatalf("%s: simulate: %v", spec, err)
			}
			for c := 0; c < len(tr.Cycles); c++ {
				for n := range nl.Nets {
					v := tr.Value(c, n)
					if !a.Env[n].Contains(v) {
						t.Fatalf("%s: net %s = %#x at cycle %d (reset warm-up %d) is outside the abstract fixpoint %+v",
							spec, nl.Nets[n].Name, v, c, resetCycles, a.Env[n])
					}
				}
			}
		}
		// Every net the sweep would export as constant must be admitted
		// too — ConstNets is the exact set the cone projection deletes.
		for _, cn := range a.ConstNets() {
			if !a.Env[cn.Net].IsConst() || a.Env[cn.Net].Val != cn.Val {
				t.Fatalf("%s: ConstNets reports net %d = %#x but the fixpoint holds %+v",
					spec, cn.Net, cn.Val, a.Env[cn.Net])
			}
		}
	}
}

// TestAnalysisIsMemoized pins the For contract: repeated calls on the
// same netlist return the identical analysis (the netlist-attached
// cache), so per-property consumers never pay the fixpoint twice.
func TestAnalysisIsMemoized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	spec := bench.RandomFuzzSpec(rng)
	d := spec.Build()
	file, err := verilog.Parse(d.Source)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := verilog.Elaborate(file, d.Name, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := vstatic.For(nl), vstatic.For(nl); a != b {
		t.Fatal("For(nl) is not memoized on the netlist")
	}
}
