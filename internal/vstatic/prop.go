package vstatic

import (
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// PropClass is the static verdict for one property against a design.
type PropClass int

const (
	// PropUnknown: the analysis cannot decide; run FPV.
	PropUnknown PropClass = iota
	// PropVacuous: some antecedent step is statically false (or the
	// antecedent steps are jointly unsatisfiable under the refined
	// window walk), so no attempt ever completes its antecedent.
	// Equivalent to an exhaustive vacuous pass.
	PropVacuous
	// PropProven: every antecedent and consequent step is statically
	// true, so no attempt can fail and attempts complete. Equivalent to
	// an exhaustive non-vacuous proof.
	PropProven
	// PropRefuted: no antecedent step is statically false and some
	// consequent step is statically false (possibly under the refined
	// window walk). Any completed attempt violates; callers must still
	// confirm with a concrete witness trace (the antecedent may be
	// merely unknown) and fall through to FPV when no witness is found.
	PropRefuted
	// PropHolds: under the assumption that the antecedent matches, every
	// consequent step is statically true — no attempt can violate the
	// property — but antecedent satisfiability is undecided, so the
	// verdict is either a proof or a vacuous pass. Callers seeking a
	// non-vacuous proof must find a concrete completing attempt (any
	// simulated trace that fires the antecedent) and fall through to FPV
	// when none is found.
	PropHolds
)

func (p PropClass) String() string {
	switch p {
	case PropVacuous:
		return "vacuous"
	case PropProven:
		return "proven"
	case PropRefuted:
		return "refuted"
	case PropHolds:
		return "holds"
	}
	return "unknown"
}

// Classify statically judges a compiled property against the abstract
// fixpoint. The verdict is a pure function of (netlist, assertion): it
// never depends on verification budgets, so batched and per-property
// callers classify identically. The quick pass below judges each step
// expression against the global invariant alone; when that is
// inconclusive, classifyRefined re-judges under the assumption that the
// antecedent matched (see refine.go).
func (a *Analysis) Classify(c *sva.Compiled) PropClass {
	if a.Cyclic {
		return PropUnknown
	}
	as := c.Assertion
	anteAllTrue := true
	for _, s := range as.Ante {
		switch a.stepTruth(s.Expr) {
		case triFalse:
			return PropVacuous
		case triTrue:
		default:
			anteAllTrue = false
		}
	}
	consAllTrue, consAnyFalse := true, false
	for _, s := range as.Cons {
		switch a.stepTruth(s.Expr) {
		case triFalse:
			consAnyFalse = true
			consAllTrue = false
		case triTrue:
		default:
			consAllTrue = false
		}
	}
	switch {
	case anteAllTrue && consAllTrue:
		return PropProven
	case consAnyFalse:
		// For ranged consequents (##[m:n]) the single statically false
		// consequent fails at every age in the range, so the attempt
		// still violates.
		return PropRefuted
	}
	return a.classifyRefined(c, anteAllTrue)
}

// stepTruth judges one boolean-layer step expression over all histories
// the monitor can observe: the current row abstracts any sampled
// environment, and $past rows additionally admit the zero rows that pad
// history before the trace starts.
func (a *Analysis) stepTruth(e verilog.Expr) tri {
	b, _, ok := a.evalProp(e, 0)
	if !ok {
		return triUnknown
	}
	return truth(b)
}

// rowVal abstracts hist[shift][net]: the sample environment for the
// current row, joined with zero for earlier rows (zero-padded history
// before the trace start).
func (a *Analysis) rowVal(net, shift int) Bits {
	if shift == 0 {
		return a.Env[net]
	}
	return Join(a.Env[net], Const(0))
}

// evalProp evaluates a property expression against the global invariant
// rows (every row abstracted by the fixpoint environment).
func (a *Analysis) evalProp(e verilog.Expr, shift int) (Bits, int, bool) {
	pe := propEnv{nl: a.nl, rows: a.rowVal}
	return pe.eval(e, shift)
}

// propEnv is an evaluation context for property expressions: rows
// resolves a (net, history shift) pair to an abstract value. The global
// classifier reads the fixpoint invariant for every row; the refined
// window walk reads per-offset environments instead (see refine.go).
type propEnv struct {
	nl   *verilog.Netlist
	rows func(net, shift int) Bits
}

// eval is the abstract mirror of sva's compileVal: identical width
// and masking rules, with tri-valued outcomes. shift is the history
// offset accumulated through $past. ok=false means the expression form
// would not compile (or is out of the analyzable fragment); callers
// must treat the result as unknown.
func (pe propEnv) eval(e verilog.Expr, shift int) (Bits, int, bool) {
	switch v := e.(type) {
	case *verilog.Number:
		w := v.Width
		if w == 0 {
			w = 32
			if v.Value >= 1<<32 {
				w = 64
			}
		}
		return Const(v.Value & verilog.WidthMask(w)), w, true

	case *verilog.Ident:
		idx := pe.nl.NetIndex(v.Name)
		if idx < 0 {
			return Bits{}, 0, false
		}
		return pe.rows(idx, shift), pe.nl.Nets[idx].Width, true

	case *verilog.Call:
		return pe.evalCall(v, shift)

	case *verilog.Index:
		base, baseW, ok := pe.eval(v.Base, shift)
		if !ok {
			return Bits{}, 0, false
		}
		if lit, isLit := litNumber(v.Idx); isLit && int(lit) >= baseW {
			return Bits{}, 0, false // compile error
		}
		idx, _, ok := pe.eval(v.Idx, shift)
		if !ok {
			return Bits{}, 0, false
		}
		if !idx.IsConst() {
			return Top(1), 1, true
		}
		if idx.Val >= 64 {
			return Const(0), 1, true
		}
		return Bits{
			Known: ((base.Known >> idx.Val) & 1) | ^uint64(1),
			Val:   (base.Val >> idx.Val) & 1,
		}, 1, true

	case *verilog.PartSelect:
		base, baseW, ok := pe.eval(v.Base, shift)
		if !ok {
			return Bits{}, 0, false
		}
		msb, ok1 := litNumber(v.MSB)
		lsb, ok2 := litNumber(v.LSB)
		if !ok1 || !ok2 || msb < lsb || int(msb) >= baseW {
			return Bits{}, 0, false
		}
		w := int(msb-lsb) + 1
		return shrConst(base, lsb).mask(w), w, true

	case *verilog.Unary:
		x, xw, ok := pe.eval(v.X, shift)
		if !ok {
			return Bits{}, 0, false
		}
		switch v.Op {
		case "~":
			return Bits{Known: x.Known, Val: ^x.Val & x.Known}.mask(xw), xw, true
		case "!":
			return triBit(truth(x).not()), 1, true
		case "-":
			if x.IsConst() {
				return Const(-x.Val).mask(xw), xw, true
			}
			return Top(xw), xw, true
		case "&":
			return redAnd(x, xw), 1, true
		case "|":
			return triBit(truth(x)), 1, true
		case "^":
			if x.IsConst() {
				return Const(parity(x.Val)), 1, true
			}
			return Top(1), 1, true
		case "~&":
			b := redAnd(x, xw)
			return Bits{Known: b.Known, Val: ^b.Val & b.Known}.mask(1), 1, true
		case "~|":
			return triBit(truth(x).not()), 1, true
		case "~^", "^~":
			if x.IsConst() {
				return Const(parity(x.Val) ^ 1), 1, true
			}
			return Top(1), 1, true
		}
		return Bits{}, 0, false

	case *verilog.Binary:
		x, xw, ok := pe.eval(v.X, shift)
		if !ok {
			return Bits{}, 0, false
		}
		y, yw, ok := pe.eval(v.Y, shift)
		if !ok {
			return Bits{}, 0, false
		}
		w := xw
		if yw > w {
			w = yw
		}
		switch v.Op {
		case "+":
			return addSub(x, y, w, true), w, true
		case "-":
			return addSub(x, y, w, false), w, true
		case "*":
			if x.IsConst() && y.IsConst() {
				return Const(x.Val * y.Val).mask(w), w, true
			}
			if (x.IsConst() && x.Val == 0) || (y.IsConst() && y.Val == 0) {
				return Const(0), w, true
			}
			return Top(w), w, true
		case "/":
			if y.IsConst() {
				if y.Val == 0 {
					return Const(0), w, true
				}
				if x.IsConst() {
					return Const(x.Val / y.Val).mask(w), w, true
				}
			}
			return Top(w), w, true
		case "%":
			if y.IsConst() {
				if y.Val == 0 {
					return Const(0), w, true
				}
				if x.IsConst() {
					return Const(x.Val % y.Val).mask(w), w, true
				}
			}
			return Top(w), w, true
		case "&":
			return Bits{
				Known: (x.Known & y.Known) | (x.Known &^ x.Val) | (y.Known &^ y.Val),
				Val:   x.Val & y.Val,
			}, w, true
		case "|":
			return Bits{Known: (x.Known & y.Known) | x.Val | y.Val, Val: x.Val | y.Val}, w, true
		case "^":
			k := x.Known & y.Known
			return Bits{Known: k, Val: (x.Val ^ y.Val) & k}, w, true
		case "~^", "^~":
			k := x.Known & y.Known
			return Bits{Known: k, Val: ^(x.Val ^ y.Val) & k}.mask(w), w, true
		case "&&":
			tx, ty := truth(x), truth(y)
			switch {
			case tx == triFalse || ty == triFalse:
				return Const(0), 1, true
			case tx == triTrue && ty == triTrue:
				return Const(1), 1, true
			}
			return Top(1), 1, true
		case "||":
			tx, ty := truth(x), truth(y)
			switch {
			case tx == triTrue || ty == triTrue:
				return Const(1), 1, true
			case tx == triFalse && ty == triFalse:
				return Const(0), 1, true
			}
			return Top(1), 1, true
		case "==", "===":
			return triBit(eqTruth(x, y)), 1, true
		case "!=", "!==":
			return triBit(eqTruth(x, y).not()), 1, true
		case "<":
			return triBit(cmpTruth(x, y, false)), 1, true
		case "<=":
			return triBit(cmpTruth(x, y, true)), 1, true
		case ">":
			return triBit(cmpTruth(y, x, false)), 1, true
		case ">=":
			return triBit(cmpTruth(y, x, true)), 1, true
		case "<<":
			if !y.IsConst() {
				return Top(xw), xw, true
			}
			if y.Val >= 64 {
				return Const(0), xw, true
			}
			return Bits{
				Known: (x.Known << y.Val) | verilog.WidthMask(int(y.Val)),
				Val:   x.Val << y.Val,
			}.mask(xw), xw, true
		case ">>":
			if !y.IsConst() {
				return Top(xw), xw, true
			}
			if y.Val >= 64 {
				return Const(0), xw, true
			}
			return shrConst(x, y.Val), xw, true
		}
		return Bits{}, 0, false

	case *verilog.Ternary:
		c, _, ok := pe.eval(v.Cond, shift)
		if !ok {
			return Bits{}, 0, false
		}
		t, tw, ok := pe.eval(v.Then, shift)
		if !ok {
			return Bits{}, 0, false
		}
		e2, ew, ok := pe.eval(v.Else, shift)
		if !ok {
			return Bits{}, 0, false
		}
		w := tw
		if ew > w {
			w = ew
		}
		switch truth(c) {
		case triTrue:
			return t, w, true
		case triFalse:
			return e2, w, true
		}
		return Join(t, e2), w, true

	case *verilog.Concat:
		acc := Const(0)
		total := 0
		for _, part := range v.Parts {
			pb, pw, ok := pe.eval(part, shift)
			if !ok {
				return Bits{}, 0, false
			}
			total += pw
			m := verilog.WidthMask(pw)
			acc = Bits{
				Known: (acc.Known << uint(pw)) | (pb.Known & m),
				Val:   (acc.Val << uint(pw)) | (pb.Val & m),
			}
		}
		if total > 64 {
			return Bits{}, 0, false
		}
		return acc, total, true
	}
	return Bits{}, 0, false
}

// evalCall mirrors sva's compileCall sampled-value functions.
func (pe propEnv) evalCall(v *verilog.Call, shift int) (Bits, int, bool) {
	if len(v.Args) == 0 {
		return Bits{}, 0, false
	}
	switch v.Name {
	case "$past":
		n := 1
		if len(v.Args) == 2 {
			lit, ok := litNumber(v.Args[1])
			if !ok {
				return Bits{}, 0, false
			}
			n = int(lit)
		}
		return pe.eval(v.Args[0], shift+n)
	case "$rose", "$fell":
		cur, _, ok := pe.eval(v.Args[0], shift)
		if !ok {
			return Bits{}, 0, false
		}
		past, _, ok := pe.eval(v.Args[0], shift+1)
		if !ok {
			return Bits{}, 0, false
		}
		c, p := bit0(cur), bit0(past)
		if v.Name == "$fell" {
			c, p = p, c
		}
		// $rose: cur bit is 1 and past bit is 0.
		switch {
		case c == triTrue && p == triFalse:
			return Const(1), 1, true
		case c == triFalse || p == triTrue:
			return Const(0), 1, true
		}
		return Top(1), 1, true
	case "$stable":
		return pe.stableChanged(v, shift, false)
	case "$changed":
		return pe.stableChanged(v, shift, true)
	}
	return Bits{}, 0, false
}

func (pe propEnv) stableChanged(v *verilog.Call, shift int, changed bool) (Bits, int, bool) {
	cur, _, ok := pe.eval(v.Args[0], shift)
	if !ok {
		return Bits{}, 0, false
	}
	past, _, ok := pe.eval(v.Args[0], shift+1)
	if !ok {
		return Bits{}, 0, false
	}
	t := eqTruth(cur, past)
	if changed {
		t = t.not()
	}
	return triBit(t), 1, true
}

// bit0 is the truth of a value's low bit (x&1 == 1).
func bit0(b Bits) tri {
	if b.Known&1 == 0 {
		return triUnknown
	}
	if b.Val&1 == 1 {
		return triTrue
	}
	return triFalse
}

func litNumber(e verilog.Expr) (uint64, bool) {
	n, ok := e.(*verilog.Number)
	if !ok {
		return 0, false
	}
	return n.Value, true
}
