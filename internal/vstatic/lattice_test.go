package vstatic

import (
	"math/rand"
	"testing"

	"assertionbench/internal/verilog"
)

// The transfer-function soundness contract: for every abstract operand
// pair and every concrete valuation they admit, the concrete EExpr.Eval
// result must be admitted by the abstract evalExpr result. The width-2
// tables are exhaustive — every abstract value, every concrete member,
// every operator — and the randomized pass covers wide (up to 64-bit)
// operands where the carry-run and shift transfers have their edge
// cases.

// allBits enumerates every valid abstract value of width w: high bits
// known zero, Val a subset of Known.
func allBits(w int) []Bits {
	m := verilog.WidthMask(w)
	var out []Bits
	for known := uint64(0); known <= m; known++ {
		val := known
		for {
			out = append(out, Bits{Known: known | ^m, Val: val})
			if val == 0 {
				break
			}
			val = (val - 1) & known
		}
	}
	return out
}

// gamma lists the concrete width-w values an abstract value admits.
func gamma(b Bits, w int) []uint64 {
	var out []uint64
	for v := uint64(0); v <= verilog.WidthMask(w); v++ {
		if b.Contains(v) {
			out = append(out, v)
		}
	}
	return out
}

func checkSound(t *testing.T, name string, e *verilog.EExpr, abs []Bits, conc [][]uint64) {
	t.Helper()
	res := evalExpr(e, abs)
	if res.Val&^res.Known != 0 {
		t.Fatalf("%s: abstract result %+v breaks the Val ⊆ Known invariant", name, res)
	}
	env := make([]uint64, len(conc))
	var walk func(i int)
	walk = func(i int) {
		if i == len(conc) {
			got := e.Eval(env)
			if !res.Contains(got) {
				t.Fatalf("%s: concrete env %v evaluates to %#x, outside abstract %+v (operands %+v)",
					name, env, got, res, abs)
			}
			return
		}
		for _, v := range conc[i] {
			env[i] = v
			walk(i + 1)
		}
	}
	walk(0)
}

func TestTransferSoundnessExhaustiveWidth2(t *testing.T) {
	const w = 2
	net := func(i int) *verilog.EExpr { return &verilog.EExpr{Op: verilog.OpNet, Net: i, W: w} }

	unary := []struct {
		name string
		op   verilog.EOp
		resW int
	}{
		{"not", verilog.OpNot, w}, {"lognot", verilog.OpLogNot, 1}, {"neg", verilog.OpNeg, w},
		{"redand", verilog.OpRedAnd, 1}, {"rednand", verilog.OpRedNand, 1},
		{"redor", verilog.OpRedOr, 1}, {"rednor", verilog.OpRedNor, 1},
		{"redxor", verilog.OpRedXor, 1}, {"redxnor", verilog.OpRedXnor, 1},
	}
	vals := allBits(w)
	for _, u := range unary {
		e := &verilog.EExpr{Op: u.op, A: net(0), W: u.resW}
		for _, a := range vals {
			checkSound(t, u.name, e, []Bits{a}, [][]uint64{gamma(a, w)})
		}
	}

	binary := []struct {
		name string
		op   verilog.EOp
		resW int
	}{
		{"add", verilog.OpAdd, w}, {"sub", verilog.OpSub, w}, {"mul", verilog.OpMul, w},
		{"div", verilog.OpDiv, w}, {"mod", verilog.OpMod, w}, {"pow", verilog.OpPow, w},
		{"and", verilog.OpAnd, w}, {"or", verilog.OpOr, w}, {"xor", verilog.OpXor, w},
		{"xnor", verilog.OpXnor, w}, {"logand", verilog.OpLogAnd, 1}, {"logor", verilog.OpLogOr, 1},
		{"eq", verilog.OpEq, 1}, {"ne", verilog.OpNe, 1},
		{"lt", verilog.OpLt, 1}, {"le", verilog.OpLe, 1}, {"gt", verilog.OpGt, 1}, {"ge", verilog.OpGe, 1},
		{"shl", verilog.OpShl, w}, {"shr", verilog.OpShr, w},
	}
	for _, b := range binary {
		e := &verilog.EExpr{Op: b.op, A: net(0), B: net(1), W: b.resW}
		for _, a := range vals {
			ga := gamma(a, w)
			for _, bb := range vals {
				checkSound(t, b.name, e, []Bits{a, bb}, [][]uint64{ga, gamma(bb, w)})
			}
		}
	}

	// Structural forms: index (constant and dynamic), part select,
	// ternary, concat.
	idx := &verilog.EExpr{Op: verilog.OpIndex, Net: 0, A: net(1), W: 1}
	part := &verilog.EExpr{Op: verilog.OpPart, Net: 0, Lo: 1, W: 1}
	tern := &verilog.EExpr{Op: verilog.OpTernary,
		A: &verilog.EExpr{Op: verilog.OpNet, Net: 0, W: 1}, B: net(1), C: net(1), W: w}
	ternAB := &verilog.EExpr{Op: verilog.OpTernary,
		A: &verilog.EExpr{Op: verilog.OpNet, Net: 0, W: 1}, B: net(0), C: net(1), W: w}
	cat := &verilog.EExpr{Op: verilog.OpConcat, Parts: []*verilog.EExpr{net(0), net(1)}, W: 2 * w}
	for _, a := range vals {
		ga := gamma(a, w)
		for _, bb := range vals {
			gb := gamma(bb, w)
			env, conc := []Bits{a, bb}, [][]uint64{ga, gb}
			checkSound(t, "index", idx, env, conc)
			checkSound(t, "part", part, env, conc)
			checkSound(t, "ternary", tern, env, conc)
			checkSound(t, "ternary-mixed", ternAB, env, conc)
			checkSound(t, "concat", cat, env, conc)
		}
	}

	// Shift-by-constant out-of-range and in-range amounts.
	for _, s := range []uint64{0, 1, 3, 63, 64, 70} {
		amt := &verilog.EExpr{Op: verilog.OpConst, Val: s, W: 7}
		shl := &verilog.EExpr{Op: verilog.OpShl, A: net(0), B: amt, W: w}
		shr := &verilog.EExpr{Op: verilog.OpShr, A: net(0), B: amt, W: w}
		for _, a := range vals {
			checkSound(t, "shl-const", shl, []Bits{a}, [][]uint64{gamma(a, w)})
			checkSound(t, "shr-const", shr, []Bits{a}, [][]uint64{gamma(a, w)})
		}
	}
}

// TestTransferSoundnessRandomWide drives the same contract at random
// widths up to 64 bits with sampled (not exhaustive) concretizations, so
// the carry-run arithmetic, comparison bounds and shift transfers are
// exercised where uint64 edge cases live.
func TestTransferSoundnessRandomWide(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randBits := func(w int) Bits {
		m := verilog.WidthMask(w)
		known := (rng.Uint64() & m) | ^m
		return Bits{Known: known, Val: rng.Uint64() & known & m}
	}
	sample := func(b Bits, w int) uint64 {
		return b.Val | (rng.Uint64() &^ b.Known & verilog.WidthMask(w))
	}
	ops := []verilog.EOp{verilog.OpAdd, verilog.OpSub, verilog.OpMul, verilog.OpDiv,
		verilog.OpMod, verilog.OpPow, verilog.OpAnd, verilog.OpOr, verilog.OpXor,
		verilog.OpXnor, verilog.OpLogAnd, verilog.OpLogOr, verilog.OpEq, verilog.OpNe,
		verilog.OpLt, verilog.OpLe, verilog.OpGt, verilog.OpGe, verilog.OpShl, verilog.OpShr}
	for round := 0; round < 400; round++ {
		w := 1 + rng.Intn(64)
		op := ops[rng.Intn(len(ops))]
		resW := w
		switch op {
		case verilog.OpLogAnd, verilog.OpLogOr, verilog.OpEq, verilog.OpNe,
			verilog.OpLt, verilog.OpLe, verilog.OpGt, verilog.OpGe:
			resW = 1
		}
		bw := w
		if op == verilog.OpShl || op == verilog.OpShr {
			bw = 7
		}
		e := &verilog.EExpr{Op: op,
			A: &verilog.EExpr{Op: verilog.OpNet, Net: 0, W: w},
			B: &verilog.EExpr{Op: verilog.OpNet, Net: 1, W: bw},
			W: resW}
		a, b := randBits(w), randBits(bw)
		res := evalExpr(e, []Bits{a, b})
		if res.Val&^res.Known != 0 {
			t.Fatalf("op %v: abstract result %+v breaks the Val ⊆ Known invariant", op, res)
		}
		for i := 0; i < 16; i++ {
			env := []uint64{sample(a, w), sample(b, bw)}
			if got := e.Eval(env); !res.Contains(got) {
				t.Fatalf("op %v width %d: concrete env %v evaluates to %#x, outside abstract %+v (operands %+v, %+v)",
					op, w, env, got, res, a, b)
			}
		}
	}
}

// TestJoinAndLatticeHelpers pins the small algebra the fixpoint relies
// on: join is the least upper bound on the concretization order, and
// Min/Max/Contains agree with the definition of gamma.
func TestJoinAndLatticeHelpers(t *testing.T) {
	const w = 3
	vals := allBits(w)
	for _, a := range vals {
		for _, b := range vals {
			j := Join(a, b)
			for _, v := range gamma(a, w) {
				if !j.Contains(v) {
					t.Fatalf("join %+v ⊔ %+v = %+v loses %#x from the left side", a, b, j, v)
				}
			}
			for _, v := range gamma(b, w) {
				if !j.Contains(v) {
					t.Fatalf("join %+v ⊔ %+v = %+v loses %#x from the right side", a, b, j, v)
				}
			}
		}
		g := gamma(a, w)
		if a.Min() != g[0] || a.Max() != g[len(g)-1] {
			t.Fatalf("%+v: Min/Max %d/%d but concretization spans %d..%d", a, a.Min(), a.Max(), g[0], g[len(g)-1])
		}
	}
	if got := Top(2); got.Contains(4) {
		t.Error("Top(2) admits a value above its width")
	}
	if c := Const(5); !c.IsConst() || c.Min() != 5 || c.Max() != 5 {
		t.Errorf("Const(5) misbehaves: %+v", c)
	}
}
