package vstatic

import (
	"errors"
	"fmt"
	"strings"

	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// Diagnostic is one structured lint finding about an assertion.
type Diagnostic struct {
	// Rule is the stable machine-readable rule name.
	Rule string
	// Msg is the human-readable explanation.
	Msg string
}

// Lint rule names.
const (
	RuleContradictoryAntecedent = "contradictory-antecedent"
	RuleTriviallyTrue           = "trivially-true"
	RuleStaticallyRefuted       = "statically-refuted"
	RuleWidthTruncatingCompare  = "width-truncating-compare"
	RuleConstantNetReference    = "constant-net-reference"
	RuleUnreachableWindow       = "unreachable-window"
	RuleSemanticError           = "semantic-error"
)

// Lint statically audits one parsed assertion against a design and
// returns structured diagnostics in deterministic order. An empty slice
// means the property is clean as far as the analysis can see.
func Lint(nl *verilog.Netlist, a *sva.Assertion) []Diagnostic {
	var diags []Diagnostic
	c, err := sva.Compile(a, nl)
	if err != nil {
		var serr *sva.SemanticError
		if errors.As(err, &serr) && strings.Contains(serr.Msg, "window exceeds") {
			return []Diagnostic{{
				Rule: RuleUnreachableWindow,
				Msg: fmt.Sprintf("##N delays span %s — beyond the 64-cycle evaluation horizon, so no attempt can ever be checked",
					serr.Msg),
			}}
		}
		return []Diagnostic{{Rule: RuleSemanticError, Msg: err.Error()}}
	}

	an := For(nl)
	switch an.Classify(c) {
	case PropVacuous:
		diags = append(diags, Diagnostic{
			Rule: RuleContradictoryAntecedent,
			Msg:  "an antecedent step is statically false: the property can never be exercised (vacuous pass)",
		})
	case PropProven:
		diags = append(diags, Diagnostic{
			Rule: RuleTriviallyTrue,
			Msg:  "every antecedent and consequent step is statically true: the property proves without exploring any state",
		})
	case PropRefuted:
		diags = append(diags, Diagnostic{
			Rule: RuleStaticallyRefuted,
			Msg:  "a consequent step is statically false: any completed attempt violates the property",
		})
	case PropHolds:
		// The antecedent-refined walk proved the consequent in every
		// environment the antecedent admits: the property cannot fail,
		// only pass or pass vacuously.
		diags = append(diags, Diagnostic{
			Rule: RuleTriviallyTrue,
			Msg:  "the consequent is statically true in every state the antecedent admits: the property can never fail",
		})
	}

	for _, s := range a.Ante {
		diags = append(diags, widthCompareDiags(an, s.Expr)...)
	}
	for _, s := range a.Cons {
		diags = append(diags, widthCompareDiags(an, s.Expr)...)
	}

	for _, net := range c.SupportNets() {
		if v, ok := an.ConstOf(net); ok {
			diags = append(diags, Diagnostic{
				Rule: RuleConstantNetReference,
				Msg: fmt.Sprintf("signal %q is statically constant (value %d): the property cannot observe it changing",
					nl.Nets[net].Name, v),
			})
		}
	}
	return diags
}

// compareOps lists the comparison operators audited for width
// truncation.
var compareOps = map[string]bool{
	"==": true, "===": true, "!=": true, "!==": true,
	"<": true, "<=": true, ">": true, ">=": true,
}

// widthCompareDiags walks a surface expression and flags comparisons
// where a literal operand cannot fit the other operand's bit width —
// the compare folds to a constant, which is almost never what the
// assertion author meant.
func widthCompareDiags(an *Analysis, e verilog.Expr) []Diagnostic {
	var diags []Diagnostic
	walkExpr(e, func(e verilog.Expr) {
		b, ok := e.(*verilog.Binary)
		if !ok || !compareOps[b.Op] {
			return
		}
		lit, litSide, other := literalOperand(b)
		if other == nil {
			return
		}
		_, w, ok := an.evalProp(other, 0)
		if !ok || lit.Value <= verilog.WidthMask(w) {
			return
		}
		diags = append(diags, Diagnostic{
			Rule: RuleWidthTruncatingCompare,
			Msg: fmt.Sprintf("literal %d in %q exceeds the %d-bit range of the %s operand: the comparison is constant",
				lit.Value, verilog.ExprString(e), w, litSide),
		})
	})
	return diags
}

// literalOperand returns the literal side of a binary compare (if any),
// which side it is on, and the non-literal operand.
func literalOperand(b *verilog.Binary) (*verilog.Number, string, verilog.Expr) {
	if n, ok := b.X.(*verilog.Number); ok {
		if _, alsoLit := b.Y.(*verilog.Number); !alsoLit {
			return n, "right", b.Y
		}
		return nil, "", nil
	}
	if n, ok := b.Y.(*verilog.Number); ok {
		return n, "left", b.X
	}
	return nil, "", nil
}

// walkExpr visits e and every subexpression in source order.
func walkExpr(e verilog.Expr, visit func(verilog.Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch v := e.(type) {
	case *verilog.Unary:
		walkExpr(v.X, visit)
	case *verilog.Binary:
		walkExpr(v.X, visit)
		walkExpr(v.Y, visit)
	case *verilog.Ternary:
		walkExpr(v.Cond, visit)
		walkExpr(v.Then, visit)
		walkExpr(v.Else, visit)
	case *verilog.Index:
		walkExpr(v.Base, visit)
		walkExpr(v.Idx, visit)
	case *verilog.PartSelect:
		walkExpr(v.Base, visit)
		walkExpr(v.MSB, visit)
		walkExpr(v.LSB, visit)
	case *verilog.Concat:
		for _, p := range v.Parts {
			walkExpr(p, visit)
		}
	case *verilog.Repl:
		walkExpr(v.Count, visit)
		walkExpr(v.Value, visit)
	case *verilog.Call:
		for _, arg := range v.Args {
			walkExpr(arg, visit)
		}
	}
}
