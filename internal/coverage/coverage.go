// Package coverage quantifies the goodness of an assertion set in terms
// of captured design behaviour — the paper's future-work directions (i)
// and (ii) in Sec. X: "quantify the goodness of assertion in terms of
// captured design behavior" and "quantify the design coverage of the
// assertions".
//
// Three complementary metrics are computed against a design:
//
//   - Signal coverage: the fraction of architecturally interesting nets
//     (inputs, outputs, state) that the assertion set mentions at all.
//   - Activation coverage: on randomized simulation, the fraction of
//     cycles where at least one assertion's antecedent completes — a set
//     whose antecedents never fire checks nothing.
//   - State coverage: the fraction of distinct visited architectural
//     states at which some antecedent completes.
//
// The scalar Goodness score combines the three; ranking assertion sets by
// it reproduces the intuition of the assertion-ranking literature the
// paper builds on [14].
package coverage

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"assertionbench/internal/fpv"
	"assertionbench/internal/sim"
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// Report is the coverage measurement of one assertion set on one design.
type Report struct {
	// Assertions is the number of assertions measured (parse failures are
	// skipped and counted in Skipped).
	Assertions int
	Skipped    int
	// SignalCoverage in [0,1]: mentioned interesting nets / all
	// interesting nets.
	SignalCoverage float64
	// CoveredSignals lists the mentioned nets; MissedSignals the rest.
	CoveredSignals []string
	MissedSignals  []string
	// ActivationCoverage in [0,1]: cycles with >= 1 antecedent match.
	ActivationCoverage float64
	// StateCoverage in [0,1]: distinct states with >= 1 antecedent match
	// over distinct states visited.
	StateCoverage float64
	// StatesVisited is the number of distinct architectural states seen.
	StatesVisited int
	// PerAssertion holds each assertion's own activation count.
	PerAssertion []AssertionCoverage
}

// AssertionCoverage is the contribution of a single assertion.
type AssertionCoverage struct {
	Assertion   string
	Activations int
	Signals     int
}

// Goodness is the combined scalar in [0,1].
func (r Report) Goodness() float64 {
	return (r.SignalCoverage + r.ActivationCoverage + r.StateCoverage) / 3
}

func (r Report) String() string {
	return fmt.Sprintf("signals=%.2f activation=%.2f states=%.2f goodness=%.2f (%d assertions, %d skipped)",
		r.SignalCoverage, r.ActivationCoverage, r.StateCoverage, r.Goodness(), r.Assertions, r.Skipped)
}

// Options configure measurement.
type Options struct {
	// TraceCycles per trace (default 256) and Traces (default 3).
	TraceCycles int
	Traces      int
	// Seed drives the stimulus.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.TraceCycles == 0 {
		o.TraceCycles = 256
	}
	if o.Traces == 0 {
		o.Traces = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Measure computes the coverage of assertion texts on a design.
// Cancelling ctx aborts the remaining trace measurements with ctx.Err().
func Measure(ctx context.Context, nl *verilog.Netlist, assertions []string, opt Options) (Report, error) {
	opt = opt.withDefaults()
	var rep Report

	// Interesting nets: top-level inputs, outputs and registers,
	// excluding clocks and flattened child nets.
	interesting := map[string]bool{}
	for _, n := range nl.Nets {
		if n.IsClock || strings.Contains(n.Name, ".") {
			continue
		}
		if n.IsInput || n.IsOut || n.IsReg {
			interesting[n.Name] = true
		}
	}

	mentioned := map[string]bool{}
	type compiled struct {
		src string
		a   *sva.Assertion
	}
	var live []compiled
	for _, src := range assertions {
		a, err := sva.Parse(src)
		if err != nil {
			rep.Skipped++
			continue
		}
		if err := sva.Check(a, nl); err != nil {
			rep.Skipped++
			continue
		}
		rep.Assertions++
		nsigs := 0
		for s := range a.Signals() {
			if interesting[s] {
				mentioned[s] = true
				nsigs++
			}
		}
		live = append(live, compiled{src: src, a: a})
		rep.PerAssertion = append(rep.PerAssertion, AssertionCoverage{Assertion: src, Signals: nsigs})
	}

	for name := range interesting {
		if mentioned[name] {
			rep.CoveredSignals = append(rep.CoveredSignals, name)
		} else {
			rep.MissedSignals = append(rep.MissedSignals, name)
		}
	}
	sort.Strings(rep.CoveredSignals)
	sort.Strings(rep.MissedSignals)
	if len(interesting) > 0 {
		rep.SignalCoverage = float64(len(rep.CoveredSignals)) / float64(len(interesting))
	}
	if len(live) == 0 {
		return rep, nil
	}

	// Activation and state coverage on randomized traces. An antecedent
	// "activates" at the cycle where it completes (non-vacuity witness).
	totalCycles := 0
	activatedCycles := 0
	states := map[string]bool{}
	activatedStates := map[string]bool{}
	for ti := 0; ti < opt.Traces; ti++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		tr, err := sim.RandomTrace(nl, opt.TraceCycles, 2, opt.Seed+int64(ti)*101)
		if err != nil {
			return rep, err
		}
		totalCycles += tr.Len()
		// Record distinct architectural states per cycle.
		stateAt := make([]string, tr.Len())
		for c := 0; c < tr.Len(); c++ {
			var sb strings.Builder
			for _, r := range nl.Regs {
				fmt.Fprintf(&sb, "%x.", tr.Value(c, r))
			}
			stateAt[c] = sb.String()
			states[stateAt[c]] = true
		}
		fired := make([]bool, tr.Len())
		for li, cl := range live {
			count := countActivations(nl, cl.a, tr, fired)
			rep.PerAssertion[li].Activations += count
		}
		for c, f := range fired {
			if f {
				activatedCycles++
				activatedStates[stateAt[c]] = true
			}
		}
	}
	if totalCycles > 0 {
		rep.ActivationCoverage = float64(activatedCycles) / float64(totalCycles)
	}
	rep.StatesVisited = len(states)
	if len(states) > 0 {
		rep.StateCoverage = float64(len(activatedStates)) / float64(len(states))
	}
	return rep, nil
}

// countActivations marks antecedent-completion cycles in fired and
// returns the assertion's own activation count.
func countActivations(nl *verilog.Netlist, a *sva.Assertion, tr *sim.Trace, fired []bool) int {
	c, err := sva.Compile(a, nl)
	if err != nil {
		return 0
	}
	count := 0
	mon := sva.NewMonitor(c)
	zero := make([]uint64, len(nl.Nets))
	hist := make([][]uint64, c.PastDepth+1)
	for t := 0; t < tr.Len(); t++ {
		hist[0] = tr.Cycles[t]
		for k := 1; k <= c.PastDepth; k++ {
			if t-k >= 0 {
				hist[k] = tr.Cycles[t-k]
			} else {
				hist[k] = zero
			}
		}
		if mon.Step(hist).AnteCompleted {
			count++
			fired[t] = true
		}
	}
	return count
}

// CompareSets measures several assertion sets and ranks them by Goodness,
// for set-level comparisons (e.g. miner output vs LLM output).
func CompareSets(ctx context.Context, nl *verilog.Netlist, sets map[string][]string, opt Options) ([]SetScore, error) {
	var out []SetScore
	for name, set := range sets {
		rep, err := Measure(ctx, nl, set, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, SetScore{Name: name, Report: rep})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Report.Goodness() != out[j].Report.Goodness() {
			return out[i].Report.Goodness() > out[j].Report.Goodness()
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// SetScore pairs a set label with its coverage report.
type SetScore struct {
	Name   string
	Report Report
}

// MeasureVerified is Measure restricted to assertions that pass FPV — the
// goodness of the *sound* part of a generated set.
func MeasureVerified(ctx context.Context, nl *verilog.Netlist, assertions []string, fpvOpt fpv.Options, opt Options) (Report, error) {
	var proven []string
	for _, src := range assertions {
		r := fpv.VerifySource(ctx, nl, src, fpvOpt)
		if err := ctx.Err(); err != nil {
			return Report{}, err
		}
		if r.Status.IsPass() {
			proven = append(proven, src)
		}
	}
	return Measure(ctx, nl, proven, opt)
}
