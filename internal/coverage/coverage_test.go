package coverage

import (
	"context"
	"testing"

	"assertionbench/internal/fpv"
	"assertionbench/internal/verilog"
)

const counterSrc = `
module counter(clk, rst, en, count);
input clk, rst, en;
output [3:0] count;
reg [3:0] count;
always @(posedge clk or posedge rst)
  if (rst) count <= 4'b0;
  else if (en) count <= count + 1;
endmodule
`

func elab(t *testing.T, src, top string) *verilog.Netlist {
	t.Helper()
	nl, err := verilog.ElaborateSource(src, top)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestSignalCoverage(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	// Interesting nets: rst, en, count (clk is a clock). Mentioning two of
	// three gives 2/3.
	rep, err := Measure(context.Background(), nl, []string{"rst == 1 |=> count == 0"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Assertions != 1 || rep.Skipped != 0 {
		t.Fatalf("assertions=%d skipped=%d", rep.Assertions, rep.Skipped)
	}
	want := 2.0 / 3.0
	if rep.SignalCoverage < want-0.01 || rep.SignalCoverage > want+0.01 {
		t.Errorf("signal coverage = %.3f, want %.3f (covered %v, missed %v)",
			rep.SignalCoverage, want, rep.CoveredSignals, rep.MissedSignals)
	}
	if len(rep.MissedSignals) != 1 || rep.MissedSignals[0] != "en" {
		t.Errorf("missed = %v, want [en]", rep.MissedSignals)
	}
}

func TestActivationCoverage(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	// A tautological antecedent fires every cycle.
	always, err := Measure(context.Background(), nl, []string{"en == en |-> count == count"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if always.ActivationCoverage < 0.99 {
		t.Errorf("tautological antecedent coverage = %.3f, want ~1", always.ActivationCoverage)
	}
	if always.StateCoverage < 0.99 {
		t.Errorf("state coverage = %.3f, want ~1", always.StateCoverage)
	}
	// An unreachable antecedent never fires.
	never, err := Measure(context.Background(), nl, []string{"count == 500 |-> en == 1"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if never.ActivationCoverage != 0 || never.StateCoverage != 0 {
		t.Errorf("unreachable antecedent coverage = %.3f/%.3f, want 0",
			never.ActivationCoverage, never.StateCoverage)
	}
}

func TestRareAntecedentCoversFewerCycles(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	rare, err := Measure(context.Background(), nl, []string{"count == 7 |-> count != 8"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	common, err := Measure(context.Background(), nl, []string{"rst == 0 |-> count == count"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rare.ActivationCoverage >= common.ActivationCoverage {
		t.Errorf("rare antecedent (%.3f) should cover fewer cycles than common (%.3f)",
			rare.ActivationCoverage, common.ActivationCoverage)
	}
}

func TestSkipsBrokenAssertions(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	rep, err := Measure(context.Background(), nl, []string{
		"rst == 1 |=> count == 0",
		"not an assertion at all",
		"nosuch == 1 |-> en == 1",
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Assertions != 1 || rep.Skipped != 2 {
		t.Errorf("assertions=%d skipped=%d, want 1/2", rep.Assertions, rep.Skipped)
	}
}

func TestGoodnessMonotoneInSetSize(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	small, err := Measure(context.Background(), nl, []string{"rst == 1 |=> count == 0"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Measure(context.Background(), nl, []string{
		"rst == 1 |=> count == 0",
		"en == 0 && rst == 0 |=> $stable(count)",
		"en == 1 && rst == 0 && count < 15 |=> count == $past(count) + 1",
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if big.Goodness() < small.Goodness() {
		t.Errorf("adding assertions reduced goodness: %.3f -> %.3f", small.Goodness(), big.Goodness())
	}
	if big.SignalCoverage != 1 {
		t.Errorf("the larger set mentions every interesting signal, coverage = %.3f", big.SignalCoverage)
	}
}

func TestCompareSetsRanksByGoodness(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	scores, err := CompareSets(context.Background(), nl, map[string][]string{
		"rich": {"rst == 1 |=> count == 0", "en == 0 && rst == 0 |=> $stable(count)"},
		"poor": {"count == 500 |-> en == 1"},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 || scores[0].Name != "rich" {
		t.Errorf("ranking wrong: %+v", scores)
	}
}

func TestMeasureVerifiedDropsRefuted(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	rep, err := MeasureVerified(context.Background(), nl, []string{
		"rst == 1 |=> count == 0", // proven
		"en == 1 |=> count == 0",  // cex
	}, fpv.Options{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Assertions != 1 {
		t.Errorf("verified measure kept %d assertions, want 1", rep.Assertions)
	}
}

func TestDeterministic(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	set := []string{"rst == 1 |=> count == 0", "en == 1 |-> rst == rst"}
	a, err := Measure(context.Background(), nl, set, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Measure(context.Background(), nl, set, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.ActivationCoverage != b.ActivationCoverage || a.StateCoverage != b.StateCoverage {
		t.Error("coverage not deterministic for fixed seed")
	}
}
