package corrector

import (
	"math/rand"
	"testing"
	"testing/quick"

	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

const counterSrc = `
module counter(clk, rst, en, count);
input clk, rst, en;
output [3:0] count;
reg [3:0] count;
always @(posedge clk or posedge rst)
  if (rst) count <= 4'b0;
  else if (en) count <= count + 1;
endmodule
`

func newCorrector(t *testing.T) *Corrector {
	t.Helper()
	nl, err := verilog.ElaborateSource(counterSrc, "counter")
	if err != nil {
		t.Fatal(err)
	}
	return New(nl)
}

func TestRepairsRecoverableCorruptions(t *testing.T) {
	c := newCorrector(t)
	cases := []struct{ broken, reason string }{
		{"count = 0 |-> en == 1", "single equals"},
		{"en == 1 |> count != 0", "mangled implication"},
		{"rst == 1 |=> count == 0 endproperty", "stray endproperty"},
		{"en == 1 #1 rst == 0 |-> count == 0", "single # delay"},
		{"(en == 1 && rst == 0 |=> count != 9", "missing paren"},
		{"en == 1 &&& rst == 0 |-> count == count", "tripled ampersand"},
		{"rst == 1 |=> count == 0", "already valid"},
	}
	for _, tc := range cases {
		fixed, _ := c.Correct(tc.broken)
		if _, err := sva.Parse(fixed); err != nil {
			t.Errorf("%s: Correct(%q) = %q still does not parse: %v", tc.reason, tc.broken, fixed, err)
		}
	}
}

func TestLeavesUnrecoverableBroken(t *testing.T) {
	c := newCorrector(t)
	cases := []string{
		"en == 1 begin count == 0",                     // keyword splice
		"rst == 1 count == 0",                          // implication removed
		"public class Foo { }",                         // off-task Java
		"Here are the assertions for the given design", // prose
	}
	for _, broken := range cases {
		fixed, _ := c.Correct(broken)
		if _, err := sva.Parse(fixed); err == nil {
			t.Errorf("Correct(%q) = %q unexpectedly parses", broken, fixed)
		}
	}
}

func TestResolvesIdentifierTypos(t *testing.T) {
	c := newCorrector(t)
	cases := []struct{ in, wantSignal string }{
		{"cout == 0 |-> en == 1", "count"},    // dropped char
		{"conut == 0 |-> en == 1", "count"},   // swapped chars
		{"count_r == 0 |-> en == 1", "count"}, // suffix
		{"ne == 1 |=> count != 0", "en"},      // swap
	}
	for _, tc := range cases {
		fixed, resolved := c.Correct(tc.in)
		if resolved == 0 {
			t.Errorf("Correct(%q) resolved nothing", tc.in)
			continue
		}
		a, err := sva.Parse(fixed)
		if err != nil {
			t.Fatalf("Correct(%q) = %q does not parse: %v", tc.in, fixed, err)
		}
		if !a.Signals()[tc.wantSignal] {
			t.Errorf("Correct(%q) = %q does not reference %q", tc.in, fixed, tc.wantSignal)
		}
	}
}

func TestLeavesForeignSignalsForFPV(t *testing.T) {
	c := newCorrector(t)
	// A leaked example-design signal far from any real one must survive so
	// the FPV stage reports the semantic error.
	fixed, resolved := c.Correct("gnt_grant_sig == 1 |-> count == 0")
	if resolved != 0 {
		t.Errorf("corrector invented a mapping for a foreign signal: %q", fixed)
	}
}

// TestCorrectPreservesValidity: correcting an already-valid assertion must
// keep it parseable and semantically identical.
func TestCorrectPreservesValidity(t *testing.T) {
	c := newCorrector(t)
	valid := []string{
		"rst == 1 |=> count == 4'h0",
		"en == 1 && rst == 0 |=> count == $past(count) + 1",
		"count == 4'hf |-> en == en",
		"$rose(rst) |=> count == 0",
		"en == 1 ##2 en == 1 |-> ##1 count != 0",
	}
	for _, v := range valid {
		a1, err := sva.Parse(v)
		if err != nil {
			t.Fatal(err)
		}
		fixed, _ := c.Correct(v)
		a2, err := sva.Parse(fixed)
		if err != nil {
			t.Errorf("corrector broke valid %q -> %q: %v", v, fixed, err)
			continue
		}
		if a1.String() != a2.String() {
			t.Errorf("corrector changed meaning of %q: %q vs %q", v, a1, a2)
		}
	}
}

// TestCorrectIdempotent: Correct(Correct(x)) == Correct(x).
func TestCorrectIdempotent(t *testing.T) {
	c := newCorrector(t)
	rng := rand.New(rand.NewSource(3))
	inputs := []string{
		"count = 0 |-> en == 1",
		"en == 1 |> count != 0",
		"(en == 1 |=> count != 9",
		"rst == 1 |=> count == 0 endproperty",
	}
	for i := 0; i < 40; i++ {
		in := inputs[rng.Intn(len(inputs))]
		once, _ := c.Correct(in)
		twice, _ := c.Correct(once)
		if once != twice {
			t.Errorf("not idempotent: %q -> %q -> %q", in, once, twice)
		}
	}
}

func TestCorrectAllStats(t *testing.T) {
	c := newCorrector(t)
	lines := []string{
		"rst == 1 |=> count == 0", // valid
		"count = 0 |-> en == 1",   // repairable
		"garbage prose line here", // unfixable
		"cout == 0 |-> rst == 0",  // typo
	}
	fixed, st := c.CorrectAll(lines)
	if len(fixed) != 4 {
		t.Fatalf("got %d outputs", len(fixed))
	}
	if st.Lines != 4 {
		t.Errorf("Lines = %d", st.Lines)
	}
	if st.Repaired < 2 {
		t.Errorf("Repaired = %d, want >= 2", st.Repaired)
	}
	if st.Resolved != 1 {
		t.Errorf("Resolved = %d, want 1", st.Resolved)
	}
	if st.Unparsable != 1 {
		t.Errorf("Unparsable = %d, want 1", st.Unparsable)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		d    int
	}{
		{"count", "count", 0},
		{"count", "cout", 1},
		{"count", "conut", 2},
		{"count", "en", 3}, // above cutoff 2 -> reported as 3
		{"", "ab", 2},
	}
	for _, tc := range cases {
		if got := editDistance(tc.a, tc.b, 2); got != tc.d {
			t.Errorf("editDistance(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.d)
		}
	}
}

func TestEditDistanceSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 12 {
			a = a[:12]
		}
		if len(b) > 12 {
			b = b[:12]
		}
		return editDistance(a, b, 2) == editDistance(b, a, 2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBalanceParens(t *testing.T) {
	cases := []struct{ in, want string }{
		{"(a && b", "(a && b)"},
		{"a && b)", "a && b"},
		{"((a)", "((a))"},
		{"(a)", "(a)"},
	}
	for _, tc := range cases {
		if got := balanceParens(tc.in); got != tc.want {
			t.Errorf("balanceParens(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestNilNetlistCorrector(t *testing.T) {
	c := New(nil)
	fixed, resolved := c.Correct("a = 1 |> b == 0")
	if resolved != 0 {
		t.Error("nil-netlist corrector cannot resolve identifiers")
	}
	if _, err := sva.Parse(fixed); err != nil {
		t.Errorf("textual repair should still work without a netlist: %q", fixed)
	}
}
