// Package corrector implements stage 3 of the paper's Fig. 4 pipeline: the
// assertion syntax corrector (played by GPT-3.5 in the paper, rule-based
// and deterministic here). It repairs the recoverable syntax-error modes —
// operator misspellings, unbalanced parentheses, single-# delays, stray
// property-block keywords, identifier typos — and passes everything else
// through unchanged for the FPV stage to flag as Error.
package corrector

import (
	"strings"

	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// Corrector repairs assertion candidate lines against a target design's
// symbol table.
type Corrector struct {
	nl      *verilog.Netlist
	symbols []string
}

// New builds a corrector for the design whose signals assertions should
// reference. nl may be nil: textual repairs still run, identifier
// resolution is skipped.
func New(nl *verilog.Netlist) *Corrector {
	c := &Corrector{nl: nl}
	if nl != nil {
		for _, n := range nl.Nets {
			if !strings.Contains(n.Name, ".") {
				c.symbols = append(c.symbols, n.Name)
			}
		}
	}
	return c
}

// Stats tallies what the corrector did over a batch.
type Stats struct {
	Lines      int
	Repaired   int // lines modified in any way
	Resolved   int // identifier substitutions applied
	Unparsable int // lines still not parsing after repair
}

// CorrectAll repairs each candidate line.
func (c *Corrector) CorrectAll(lines []string) ([]string, Stats) {
	out := make([]string, len(lines))
	var st Stats
	st.Lines = len(lines)
	for i, line := range lines {
		fixed, resolved := c.Correct(line)
		if fixed != line {
			st.Repaired++
		}
		st.Resolved += resolved
		if _, err := sva.Parse(fixed); err != nil {
			st.Unparsable++
		}
		out[i] = fixed
	}
	return out, st
}

// Correct repairs one line. It returns the repaired text and the number of
// identifier substitutions performed.
func (c *Corrector) Correct(line string) (string, int) {
	orig := line
	line = strings.TrimSpace(line)
	line = stripWrappers(line)
	line = canonicalizeOperators(line)
	line = balanceParens(line)
	line, resolved := c.resolveIdentifiers(line)
	line = strings.TrimSpace(line)
	if line == "" {
		return orig, 0
	}
	if !strings.HasSuffix(line, ";") {
		line += ";"
	}
	return line, resolved
}

// stripWrappers removes property-block and assert-directive furniture that
// models sometimes emit around the property expression.
func stripWrappers(line string) string {
	line = strings.TrimSuffix(strings.TrimSpace(line), ";")
	for _, kw := range []string{"endproperty", "endmodule", "end"} {
		line = strings.TrimSuffix(strings.TrimSpace(line), kw)
	}
	ls := strings.TrimSpace(line)
	if strings.HasPrefix(ls, "property ") {
		// property p; <expr> endproperty -> keep the expression.
		if i := strings.IndexByte(ls, ';'); i >= 0 {
			ls = ls[i+1:]
		}
		line = ls
	}
	return strings.TrimSpace(line)
}

// canonicalizeOperators rewrites the recoverable operator misspellings.
func canonicalizeOperators(line string) string {
	// Order matters: longer wrong forms first.
	replacements := []struct{ from, to string }{
		{"&&&", "&&"},
		{"|||", "||"},
		{"|=>", "\x00NOV\x00"}, // protect the correct forms
		{"|->", "\x00OV\x00"},
		{"|>", "|->"},
		{"\x00NOV\x00", "|=>"},
		{"\x00OV\x00", "|->"},
	}
	for _, r := range replacements {
		line = strings.ReplaceAll(line, r.from, r.to)
	}
	// Single '#' delay -> '##'.
	var sb strings.Builder
	for i := 0; i < len(line); i++ {
		if line[i] == '#' {
			if i+1 < len(line) && line[i+1] == '#' {
				sb.WriteString("##")
				i++
				continue
			}
			sb.WriteString("##")
			continue
		}
		sb.WriteByte(line[i])
	}
	line = sb.String()
	// Single '=' used as equality: rewrite 'a = 1' to 'a == 1'. Protect
	// the multi-char operators containing '='.
	line = repairSingleEquals(line)
	return line
}

// repairSingleEquals turns a bare '=' into '==' when it is not part of a
// legitimate operator (==, !=, <=, >=, |=>, =>).
func repairSingleEquals(line string) string {
	var sb strings.Builder
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c != '=' {
			sb.WriteByte(c)
			continue
		}
		prev := byte(0)
		if i > 0 {
			prev = line[i-1]
		}
		next := byte(0)
		if i+1 < len(line) {
			next = line[i+1]
		}
		switch {
		case next == '=' || next == '>': // '==', '=>'
			sb.WriteByte(c)
		case prev == '=' || prev == '!' || prev == '<' || prev == '>' || prev == '|':
			sb.WriteByte(c)
		default:
			sb.WriteString("==")
		}
	}
	return sb.String()
}

// balanceParens repairs each side of the implication operator
// independently: a paren opened in the antecedent must close before the
// '|->', not at the end of the line.
func balanceParens(line string) string {
	for _, op := range []string{"|->", "|=>"} {
		if i := strings.Index(line, op); i >= 0 {
			return balanceSegment(line[:i]) + op + balanceSegment(line[i+len(op):])
		}
	}
	return balanceSegment(line)
}

func balanceSegment(line string) string {
	depth := 0
	extra := 0
	var sb strings.Builder
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c == '(' {
			depth++
		}
		if c == ')' {
			if depth == 0 {
				extra++
				continue // drop unmatched closer
			}
			depth--
		}
		sb.WriteByte(c)
	}
	out := sb.String()
	for ; depth > 0; depth-- {
		out += ")"
	}
	return out
}

// resolveIdentifiers maps unknown signal names to the closest design
// symbol within edit distance 2. Unresolvable names are left for the FPV
// stage to report.
func (c *Corrector) resolveIdentifiers(line string) (string, int) {
	if c.nl == nil || len(c.symbols) == 0 {
		return line, 0
	}
	a, err := sva.Parse(line)
	if err != nil {
		return line, 0
	}
	resolved := 0
	for name := range a.Signals() {
		if c.nl.NetIndex(name) >= 0 {
			continue
		}
		best, bestDist := "", 3
		for _, sym := range c.symbols {
			if d := editDistance(name, sym, 2); d < bestDist {
				best, bestDist = sym, d
			}
		}
		if best != "" {
			line = replaceIdent(line, name, best)
			resolved++
		}
	}
	return line, resolved
}

// replaceIdent substitutes whole-word occurrences of old with new.
func replaceIdent(line, old, new string) string {
	var sb strings.Builder
	for i := 0; i < len(line); {
		if strings.HasPrefix(line[i:], old) &&
			(i == 0 || !isWordByte(line[i-1])) &&
			(i+len(old) >= len(line) || !isWordByte(line[i+len(old)])) {
			sb.WriteString(new)
			i += len(old)
			continue
		}
		sb.WriteByte(line[i])
		i++
	}
	return sb.String()
}

func isWordByte(c byte) bool {
	return c == '_' || c == '$' || (c >= '0' && c <= '9') ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// editDistance is Levenshtein with an early cutoff. Returns cutoff+1 when
// the distance exceeds cutoff.
func editDistance(a, b string, cutoff int) int {
	if abs(len(a)-len(b)) > cutoff {
		return cutoff + 1
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin > cutoff {
			return cutoff + 1
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
