package rtlgraph

import (
	"testing"

	"assertionbench/internal/verilog"
)

const counterSrc = `
module counter(clk, rst, en, count);
input clk, rst, en;
output [3:0] count;
reg [3:0] count;
always @(posedge clk or posedge rst)
  if (rst) count <= 4'b0;
  else if (en) count <= count + 1;
endmodule
`

func build(t *testing.T, src, top string) *Graph {
	t.Helper()
	nl, err := verilog.ElaborateSource(src, top)
	if err != nil {
		t.Fatal(err)
	}
	return Build(nl)
}

func hasNet(t *testing.T, g *Graph, list []int, name string) bool {
	t.Helper()
	idx := g.Netlist.NetIndex(name)
	if idx < 0 {
		t.Fatalf("no net %q", name)
	}
	for _, n := range list {
		if n == idx {
			return true
		}
	}
	return false
}

func TestCounterDependencies(t *testing.T) {
	g := build(t, counterSrc, "counter")
	count := g.Netlist.NetIndex("count")
	if !hasNet(t, g, g.DataDeps[count], "count") {
		t.Error("count should data-depend on itself (increment)")
	}
	if !hasNet(t, g, g.CtrlDeps[count], "rst") || !hasNet(t, g, g.CtrlDeps[count], "en") {
		t.Errorf("count should control-depend on rst and en, got %v", g.CtrlDeps[count])
	}
	if !g.SeqWrite[count] {
		t.Error("count is written by a clocked process")
	}
}

func TestConeOfInfluence(t *testing.T) {
	src := `
module chain(clk, a, b, y, z);
input clk, a, b;
output y, z;
reg r;
always @(posedge clk) r <= a;
assign y = r;
assign z = b;
endmodule
`
	g := build(t, src, "chain")
	y := g.Netlist.NetIndex("y")
	coi := g.ConeOfInfluence(y)
	if !coi[g.Netlist.NetIndex("a")] || !coi[g.Netlist.NetIndex("r")] {
		t.Error("COI of y must include a and r")
	}
	if coi[g.Netlist.NetIndex("b")] || coi[g.Netlist.NetIndex("z")] {
		t.Error("COI of y must not include b or z")
	}
}

func TestInfluencersAtDepth(t *testing.T) {
	src := `
module deep(input a, output d);
wire b, c;
assign b = a;
assign c = b;
assign d = c;
endmodule
`
	g := build(t, src, "deep")
	d := g.Netlist.NetIndex("d")
	d1 := g.InfluencersAtDepth(d, 1)
	if len(d1) != 1 || !hasNet(t, g, d1, "c") {
		t.Errorf("depth-1 influencers of d = %v, want just c", d1)
	}
	d3 := g.InfluencersAtDepth(d, 3)
	if len(d3) != 3 {
		t.Errorf("depth-3 influencers of d = %v, want c,b,a", d3)
	}
}

func TestFanoutAndSeqDepth(t *testing.T) {
	g := build(t, counterSrc, "counter")
	count := g.Netlist.NetIndex("count")
	fan := g.Fanout(count)
	if !hasNet(t, g, fan, "count") {
		t.Errorf("fanout of count should include count (self-increment), got %v", fan)
	}
	if d := g.SequentialDepth(count); d < 1 {
		t.Errorf("sequential depth of count = %d, want >= 1", d)
	}
	en := g.Netlist.NetIndex("en")
	if d := g.SequentialDepth(en); d != 0 {
		t.Errorf("sequential depth of a raw input = %d, want 0", d)
	}
}
