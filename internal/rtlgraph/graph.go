// Package rtlgraph derives the auxiliary source-code artifacts the paper's
// Observation 4 names as critical design insights: the variable dependency
// graph (VDG), control/data flow edges (CDFG), and cones of influence
// (COI). The assertion miners (internal/mine) and the grounded generation
// path of the simulated LLMs (internal/llm) consume these artifacts.
package rtlgraph

import (
	"sort"

	"assertionbench/internal/verilog"
)

// EdgeKind distinguishes data dependencies (RHS feeds LHS) from control
// dependencies (a branch condition guards the assignment).
type EdgeKind int

// Edge kinds.
const (
	EdgeData EdgeKind = iota
	EdgeCtrl
)

// Graph is the variable dependency graph of an elaborated netlist: for
// each net, the nets it depends on, split by edge kind, plus whether the
// dependency crosses a register boundary (sequential edge).
type Graph struct {
	Netlist *verilog.Netlist
	// DataDeps[i] lists nets that feed net i through expressions.
	DataDeps [][]int
	// CtrlDeps[i] lists nets that control whether net i is assigned.
	CtrlDeps [][]int
	// SeqWrite[i] reports that net i is written by a clocked process, so
	// its dependencies take effect one cycle later.
	SeqWrite []bool
}

// Build constructs the dependency graph from compiled processes and
// continuous assignments.
func Build(nl *verilog.Netlist) *Graph {
	g := &Graph{
		Netlist:  nl,
		DataDeps: make([][]int, len(nl.Nets)),
		CtrlDeps: make([][]int, len(nl.Nets)),
		SeqWrite: make([]bool, len(nl.Nets)),
	}
	data := make([]map[int]bool, len(nl.Nets))
	ctrl := make([]map[int]bool, len(nl.Nets))
	for i := range data {
		data[i] = map[int]bool{}
		ctrl[i] = map[int]bool{}
	}
	for i := range nl.Assigns {
		a := &nl.Assigns[i]
		rhs := map[int]bool{}
		a.RHS.Support(rhs)
		for _, l := range a.LHS {
			for d := range rhs {
				data[l.Net][d] = true
			}
			if l.BitIdx != nil {
				idxDeps := map[int]bool{}
				l.BitIdx.Support(idxDeps)
				for d := range idxDeps {
					ctrl[l.Net][d] = true
				}
			}
		}
	}
	for _, p := range nl.Combs {
		walkStmt(p.Body, nil, data, ctrl)
	}
	for _, p := range nl.Seqs {
		walkStmt(p.Body, nil, data, ctrl)
		for _, w := range p.Writes {
			g.SeqWrite[w] = true
		}
	}
	for i := range data {
		g.DataDeps[i] = sortedKeys(data[i])
		g.CtrlDeps[i] = sortedKeys(ctrl[i])
	}
	return g
}

// walkStmt accumulates data/control dependencies; ctrlCtx carries the nets
// of enclosing branch conditions.
func walkStmt(s *verilog.EStmt, ctrlCtx []int, data, ctrl []map[int]bool) {
	if s == nil {
		return
	}
	switch s.Op {
	case verilog.SBlock:
		for _, sub := range s.Stmts {
			walkStmt(sub, ctrlCtx, data, ctrl)
		}
	case verilog.SAssign:
		rhs := map[int]bool{}
		s.RHS.Support(rhs)
		for i := range s.LHS {
			l := &s.LHS[i]
			for d := range rhs {
				data[l.Net][d] = true
			}
			for _, c := range ctrlCtx {
				ctrl[l.Net][c] = true
			}
			if l.BitIdx != nil {
				idxDeps := map[int]bool{}
				l.BitIdx.Support(idxDeps)
				for d := range idxDeps {
					ctrl[l.Net][d] = true
				}
			}
		}
	case verilog.SIf:
		cond := map[int]bool{}
		s.Cond.Support(cond)
		inner := append(append([]int{}, ctrlCtx...), sortedKeys(cond)...)
		walkStmt(s.Then, inner, data, ctrl)
		walkStmt(s.Else, inner, data, ctrl)
	case verilog.SCase:
		cond := map[int]bool{}
		s.Subject.Support(cond)
		inner := append(append([]int{}, ctrlCtx...), sortedKeys(cond)...)
		for _, arm := range s.Arms {
			walkStmt(arm, inner, data, ctrl)
		}
		walkStmt(s.Default, inner, data, ctrl)
	}
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Deps returns the union of data and control dependencies of net i.
func (g *Graph) Deps(i int) []int {
	seen := map[int]bool{}
	for _, d := range g.DataDeps[i] {
		seen[d] = true
	}
	for _, d := range g.CtrlDeps[i] {
		seen[d] = true
	}
	return sortedKeys(seen)
}

// ConeOfInfluence returns every net that can affect target, following
// dependencies transitively through any number of register stages.
func (g *Graph) ConeOfInfluence(target int) map[int]bool {
	coi := map[int]bool{target: true}
	queue := []int{target}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, d := range g.Deps(n) {
			if !coi[d] {
				coi[d] = true
				queue = append(queue, d)
			}
		}
	}
	return coi
}

// InfluencersAtDepth returns the nets within the cone of influence of
// target reachable in at most depth dependency hops. Depth 1 is the
// immediate support of the target's driving logic.
func (g *Graph) InfluencersAtDepth(target, depth int) []int {
	dist := map[int]int{target: 0}
	queue := []int{target}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if dist[n] >= depth {
			continue
		}
		for _, d := range g.Deps(n) {
			if _, seen := dist[d]; !seen {
				dist[d] = dist[n] + 1
				queue = append(queue, d)
			}
		}
	}
	out := make([]int, 0, len(dist)-1)
	for n := range dist {
		if n != target {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// Fanout returns the nets directly driven by net i.
func (g *Graph) Fanout(i int) []int {
	var out []int
	for n := range g.DataDeps {
		for _, d := range g.DataDeps[n] {
			if d == i {
				out = append(out, n)
				break
			}
		}
	}
	return out
}

// SequentialDepth estimates the longest register chain from any input to
// target (capped at 8): a proxy for how many cycles of temporal context an
// assertion about the target needs.
func (g *Graph) SequentialDepth(target int) int {
	const cap = 8
	memo := map[int]int{}
	var visit func(n, guard int) int
	visit = func(n, guard int) int {
		if guard > cap {
			return cap
		}
		if v, ok := memo[n]; ok {
			return v
		}
		memo[n] = 0 // cycle guard
		best := 0
		for _, d := range g.Deps(n) {
			v := visit(d, guard+1)
			if g.SeqWrite[n] {
				v++
			}
			if v > best {
				best = v
			}
		}
		if best > cap {
			best = cap
		}
		memo[n] = best
		return best
	}
	return visit(target, 0)
}
