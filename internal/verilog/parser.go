package verilog

import (
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a full source file.
func Parse(src string) (*SourceFile, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	file := &SourceFile{}
	for !p.atEOF() {
		if !p.isKeyword("module") {
			return nil, errf(p.cur().Line, p.cur().Col, "expected 'module', got %s", p.cur())
		}
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		file.Modules = append(file.Modules, m)
	}
	if len(file.Modules) == 0 {
		return nil, errf(1, 1, "no modules in source")
	}
	return file, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) isKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *Parser) isSymbol(s string) bool {
	t := p.cur()
	return t.Kind == TokSymbol && t.Text == s
}

func (p *Parser) acceptSymbol(s string) bool {
	if p.isSymbol(s) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		t := p.cur()
		return errf(t.Line, t.Col, "expected %q, got %s", s, t)
	}
	return nil
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		t := p.cur()
		return errf(t.Line, t.Col, "expected %q, got %s", kw, t)
	}
	return nil
}

func (p *Parser) expectIdent() (Token, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return t, errf(t.Line, t.Col, "expected identifier, got %s", t)
	}
	p.pos++
	return t, nil
}

// parseModule parses 'module' name [#(params)] (ports); body 'endmodule'.
func (p *Parser) parseModule() (*Module, error) {
	kw := p.next() // 'module'
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	m := &Module{Name: name.Text, Line: kw.Line}
	ports := map[string]*Port{}

	// Optional parameter port list: #(parameter A = 1, ...)
	if p.acceptSymbol("#") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		for {
			p.acceptKeyword("parameter")
			p.acceptRangeSkip()
			pn, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol("="); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			m.Params = append(m.Params, &Param{Name: pn.Text, Value: val, Line: pn.Line})
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}

	// Port list.
	if p.acceptSymbol("(") {
		if !p.isSymbol(")") {
			if err := p.parsePortList(m, ports); err != nil {
				return nil, err
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectSymbol(";"); err != nil {
		return nil, err
	}

	// Body.
	for {
		t := p.cur()
		switch {
		case t.Kind == TokEOF:
			return nil, errf(t.Line, t.Col, "unexpected EOF inside module %q", m.Name)
		case p.acceptKeyword("endmodule"):
			return m, nil
		case p.isKeyword("input") || p.isKeyword("output") || p.isKeyword("inout"):
			if err := p.parsePortDecl(m, ports); err != nil {
				return nil, err
			}
		case p.isKeyword("wire") || p.isKeyword("reg") || p.isKeyword("integer"):
			if err := p.parseNetDecl(m, ports); err != nil {
				return nil, err
			}
		case p.isKeyword("parameter") || p.isKeyword("localparam"):
			if err := p.parseParamDecl(m); err != nil {
				return nil, err
			}
		case p.isKeyword("assign"):
			if err := p.parseAssignItem(m); err != nil {
				return nil, err
			}
		case p.isKeyword("always"):
			if err := p.parseAlwaysItem(m); err != nil {
				return nil, err
			}
		case p.isKeyword("initial"):
			line := p.next().Line
			body, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			m.Items = append(m.Items, &InitialItem{Body: body, Line: line})
		case t.Kind == TokIdent:
			if err := p.parseInstance(m); err != nil {
				return nil, err
			}
		default:
			return nil, errf(t.Line, t.Col, "unexpected %s in module body", t)
		}
	}
}

// acceptRangeSkip consumes an optional [a:b] range without recording it
// (used for parameter ranges, which we ignore).
func (p *Parser) acceptRangeSkip() {
	if !p.isSymbol("[") {
		return
	}
	depth := 0
	for {
		t := p.cur()
		if t.Kind == TokEOF {
			return
		}
		if t.Kind == TokSymbol && t.Text == "[" {
			depth++
		}
		if t.Kind == TokSymbol && t.Text == "]" {
			depth--
			p.next()
			if depth == 0 {
				return
			}
			continue
		}
		p.next()
	}
}

// parsePortList parses the header port list, either ANSI (with directions)
// or classic (names only).
func (p *Parser) parsePortList(m *Module, ports map[string]*Port) error {
	var lastDir PortDir
	var lastRange *Range
	var lastReg bool
	haveDir := false
	for {
		if p.isKeyword("input") || p.isKeyword("output") || p.isKeyword("inout") {
			t := p.next()
			switch t.Text {
			case "input":
				lastDir = DirInput
			case "output":
				lastDir = DirOutput
			default:
				lastDir = DirInout
			}
			lastReg = p.acceptKeyword("reg")
			p.acceptKeyword("wire")
			p.acceptKeyword("signed")
			var err error
			lastRange, err = p.acceptRange()
			if err != nil {
				return err
			}
			haveDir = true
		}
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		port := &Port{Name: name.Text, Line: name.Line}
		if haveDir {
			port.Dir = lastDir
			port.Range = lastRange
			port.IsReg = lastReg
		} else {
			port.Dir = DirInput // provisional; fixed by a body declaration
		}
		m.Ports = append(m.Ports, port)
		ports[port.Name] = port
		if !p.acceptSymbol(",") {
			return nil
		}
	}
}

// acceptRange parses an optional [msb:lsb].
func (p *Parser) acceptRange() (*Range, error) {
	if !p.acceptSymbol("[") {
		return nil, nil
	}
	msb, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(":"); err != nil {
		return nil, err
	}
	lsb, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("]"); err != nil {
		return nil, err
	}
	return &Range{MSB: msb, LSB: lsb}, nil
}

// parsePortDecl parses a body-level input/output/inout declaration.
func (p *Parser) parsePortDecl(m *Module, ports map[string]*Port) error {
	t := p.next()
	var dir PortDir
	switch t.Text {
	case "input":
		dir = DirInput
	case "output":
		dir = DirOutput
	default:
		dir = DirInout
	}
	isReg := p.acceptKeyword("reg")
	p.acceptKeyword("wire")
	p.acceptKeyword("signed")
	rng, err := p.acceptRange()
	if err != nil {
		return err
	}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		port, ok := ports[name.Text]
		if !ok {
			// Tolerate declarations for names missing from the header:
			// add them as ports (some OpenCores-style sources do this).
			port = &Port{Name: name.Text, Line: name.Line}
			m.Ports = append(m.Ports, port)
			ports[name.Text] = port
		}
		port.Dir = dir
		port.Range = rng
		port.IsReg = port.IsReg || isReg
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	return p.expectSymbol(";")
}

// parseNetDecl parses wire/reg/integer declarations, with optional init.
func (p *Parser) parseNetDecl(m *Module, ports map[string]*Port) error {
	t := p.next()
	var kind DeclKind
	switch t.Text {
	case "wire":
		kind = DeclWire
	case "reg":
		kind = DeclReg
	default:
		kind = DeclInteger
	}
	p.acceptKeyword("signed")
	rng, err := p.acceptRange()
	if err != nil {
		return err
	}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		// reg declarations for ports mark the port as a reg.
		if port, ok := ports[name.Text]; ok && kind == DeclReg {
			port.IsReg = true
			if rng != nil && port.Range == nil {
				port.Range = rng
			}
		} else {
			d := &Decl{Kind: kind, Name: name.Text, Range: rng, Line: name.Line}
			// Memories (reg [..] name [..]) are rejected: arrays are outside
			// the subset, except that we tolerate and flatten 1-entry ones.
			if p.isSymbol("[") {
				return errf(name.Line, 0, "memory arrays are not supported (signal %q)", name.Text)
			}
			if p.acceptSymbol("=") {
				init, err := p.parseExpr()
				if err != nil {
					return err
				}
				d.Init = init
			}
			m.Decls = append(m.Decls, d)
		}
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	return p.expectSymbol(";")
}

// parseParamDecl parses parameter/localparam declarations in the body.
func (p *Parser) parseParamDecl(m *Module) error {
	t := p.next()
	local := t.Text == "localparam"
	p.acceptRangeSkip()
	for {
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectSymbol("="); err != nil {
			return err
		}
		val, err := p.parseExpr()
		if err != nil {
			return err
		}
		m.Params = append(m.Params, &Param{Name: name.Text, Value: val, Local: local, Line: name.Line})
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	return p.expectSymbol(";")
}

func (p *Parser) parseAssignItem(m *Module) error {
	p.next() // 'assign'
	for {
		lhs, err := p.parsePrimaryLValue()
		if err != nil {
			return err
		}
		if err := p.expectSymbol("="); err != nil {
			return err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return err
		}
		m.Items = append(m.Items, &AssignItem{LHS: lhs, RHS: rhs, Line: exprLine(lhs)})
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	return p.expectSymbol(";")
}

// parsePrimaryLValue parses an assignable expression: identifier with
// optional bit/part select, or a concatenation of such.
func (p *Parser) parsePrimaryLValue() (Expr, error) {
	if p.isSymbol("{") {
		line := p.next().Line
		var parts []Expr
		for {
			e, err := p.parsePrimaryLValue()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol("}"); err != nil {
			return nil, err
		}
		return &Concat{Parts: parts, Line: line}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	var e Expr = &Ident{Name: name.Text, Line: name.Line}
	if p.acceptSymbol("[") {
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.acceptSymbol(":") {
			lsb, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			e = &PartSelect{Base: e, MSB: first, LSB: lsb, Line: name.Line}
		} else {
			e = &Index{Base: e, Idx: first, Line: name.Line}
		}
		if err := p.expectSymbol("]"); err != nil {
			return nil, err
		}
	}
	return e, nil
}

func (p *Parser) parseAlwaysItem(m *Module) error {
	line := p.next().Line // 'always'
	item := &AlwaysItem{Line: line}
	if p.acceptSymbol("@") {
		if p.acceptSymbol("*") {
			item.Star = true
		} else {
			if err := p.expectSymbol("("); err != nil {
				return err
			}
			if p.acceptSymbol("*") {
				item.Star = true
			} else {
				for {
					ev := EventExpr{Edge: EdgeNone, Line: p.cur().Line}
					if p.acceptKeyword("posedge") {
						ev.Edge = EdgePos
					} else if p.acceptKeyword("negedge") {
						ev.Edge = EdgeNeg
					}
					sig, err := p.expectIdent()
					if err != nil {
						return err
					}
					ev.Signal = sig.Text
					item.Events = append(item.Events, ev)
					if p.acceptSymbol(",") || p.acceptKeyword("or") {
						continue
					}
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return err
			}
		}
	} else {
		return errf(line, 0, "always block without event control is not supported")
	}
	body, err := p.parseStmt()
	if err != nil {
		return err
	}
	item.Body = body
	m.Items = append(m.Items, item)
	return nil
}

// parseInstance parses module instantiation:
// name [#(overrides)] inst ( .a(x), .b(y) ); or positional connections.
func (p *Parser) parseInstance(m *Module) error {
	modName, err := p.expectIdent()
	if err != nil {
		return err
	}
	inst := &InstanceItem{ModName: modName.Text, Line: modName.Line,
		Params: map[string]Expr{}, Conns: map[string]Expr{}}
	if p.acceptSymbol("#") {
		if err := p.expectSymbol("("); err != nil {
			return err
		}
		if err := p.parseConnList(inst.Params, &inst.ParamsPos); err != nil {
			return err
		}
		if err := p.expectSymbol(")"); err != nil {
			return err
		}
	}
	instName, err := p.expectIdent()
	if err != nil {
		return err
	}
	inst.InstName = instName.Text
	if err := p.expectSymbol("("); err != nil {
		return err
	}
	if !p.isSymbol(")") {
		if err := p.parseConnList(inst.Conns, &inst.ConnsPos); err != nil {
			return err
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return err
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	m.Items = append(m.Items, inst)
	return nil
}

func (p *Parser) parseConnList(named map[string]Expr, positional *[]Expr) error {
	for {
		if p.acceptSymbol(".") {
			name, err := p.expectIdent()
			if err != nil {
				return err
			}
			if err := p.expectSymbol("("); err != nil {
				return err
			}
			if p.isSymbol(")") {
				named[name.Text] = nil // open connection
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return err
				}
				named[name.Text] = e
			}
			if err := p.expectSymbol(")"); err != nil {
				return err
			}
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			*positional = append(*positional, e)
		}
		if !p.acceptSymbol(",") {
			return nil
		}
	}
}

// --- statements ---

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.acceptKeyword("begin"):
		blk := &BlockStmt{Line: t.Line}
		// Optional block label: begin : name
		if p.acceptSymbol(":") {
			if _, err := p.expectIdent(); err != nil {
				return nil, err
			}
		}
		for !p.isKeyword("end") {
			if p.atEOF() {
				return nil, errf(t.Line, t.Col, "unterminated begin block")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			blk.Stmts = append(blk.Stmts, s)
		}
		p.next() // 'end'
		return blk, nil

	case p.acceptKeyword("if"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then, Line: t.Line}
		if p.acceptKeyword("else") {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil

	case p.isKeyword("case") || p.isKeyword("casez") || p.isKeyword("casex"):
		kw := p.next()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		subj, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		st := &CaseStmt{Subject: subj, Wild: kw.Text != "case", Line: kw.Line}
		for !p.isKeyword("endcase") {
			if p.atEOF() {
				return nil, errf(kw.Line, kw.Col, "unterminated case statement")
			}
			if p.acceptKeyword("default") {
				p.acceptSymbol(":")
				body, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				st.Default = body
				continue
			}
			var labels []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				labels = append(labels, e)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(":"); err != nil {
				return nil, err
			}
			body, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Items = append(st.Items, CaseItem{Labels: labels, Body: body})
		}
		p.next() // 'endcase'
		return st, nil

	case p.acceptKeyword("for"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		init, err := p.parseSimpleAssign()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(";"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(";"); err != nil {
			return nil, err
		}
		step, err := p.parseSimpleAssign()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Init: init, Cond: cond, Step: step, Body: body, Line: t.Line}, nil

	case p.isSymbol(";"):
		p.next()
		return &NullStmt{Line: t.Line}, nil

	default:
		st, err := p.parseSimpleAssign()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(";"); err != nil {
			return nil, err
		}
		return st, nil
	}
}

// parseSimpleAssign parses lhs = rhs or lhs <= rhs (no trailing semicolon).
func (p *Parser) parseSimpleAssign() (*AssignStmt, error) {
	lhs, err := p.parsePrimaryLValue()
	if err != nil {
		return nil, err
	}
	blocking := true
	if p.acceptSymbol("<=") {
		blocking = false
	} else if !p.acceptSymbol("=") {
		t := p.cur()
		return nil, errf(t.Line, t.Col, "expected '=' or '<=', got %s", t)
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &AssignStmt{LHS: lhs, RHS: rhs, Blocking: blocking, Line: exprLine(lhs)}, nil
}

// --- expressions ---

// Binary operator precedence, loosest first. Matches Verilog-2001.
var binaryPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4, "~^": 4, "^~": 4,
	"&":  5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8, "<<<": 8, ">>>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
	"**": 11,
}

func (p *Parser) parseExpr() (Expr, error) {
	return p.parseTernary()
}

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if p.acceptSymbol("?") {
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(":"); err != nil {
			return nil, err
		}
		els, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Ternary{Cond: cond, Then: then, Else: els, Line: exprLine(cond)}, nil
	}
	return cond, nil
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokSymbol {
			return lhs, nil
		}
		prec, ok := binaryPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: t.Text, X: lhs, Y: rhs, Line: t.Line}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokSymbol {
		switch t.Text {
		case "~", "!", "-", "+", "&", "|", "^", "~&", "~|", "~^", "^~":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if t.Text == "+" {
				return x, nil
			}
			return &Unary{Op: t.Text, X: x, Line: t.Line}, nil
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.isSymbol("[") {
		line := p.next().Line
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.acceptSymbol(":") {
			lsb, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			e = &PartSelect{Base: e, MSB: first, LSB: lsb, Line: line}
		} else {
			e = &Index{Base: e, Idx: first, Line: line}
		}
		if err := p.expectSymbol("]"); err != nil {
			return nil, err
		}
	}
	return e, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.next()
		val, width, err := parseNumberLiteral(t)
		if err != nil {
			return nil, err
		}
		return &Number{Value: val, Width: width, Line: t.Line}, nil

	case t.Kind == TokIdent:
		p.next()
		if t.Text[0] == '$' && p.isSymbol("(") {
			p.next()
			call := &Call{Name: t.Text, Line: t.Line}
			if !p.isSymbol(")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.acceptSymbol(",") {
						break
					}
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Name: t.Text, Line: t.Line}, nil

	case p.acceptSymbol("("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil

	case p.isSymbol("{"):
		return p.parseConcat()
	}
	return nil, errf(t.Line, t.Col, "expected expression, got %s", t)
}

// parseConcat parses {a,b,...} and replication {n{v}}.
func (p *Parser) parseConcat() (Expr, error) {
	line := p.next().Line // '{'
	first, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.isSymbol("{") {
		// Replication: {count{value}} — value may itself be a concat list.
		p.next()
		var parts []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol("}"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("}"); err != nil {
			return nil, err
		}
		var value Expr
		if len(parts) == 1 {
			value = parts[0]
		} else {
			value = &Concat{Parts: parts, Line: line}
		}
		return &Repl{Count: first, Value: value, Line: line}, nil
	}
	parts := []Expr{first}
	for p.acceptSymbol(",") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		parts = append(parts, e)
	}
	if err := p.expectSymbol("}"); err != nil {
		return nil, err
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return &Concat{Parts: parts, Line: line}, nil
}

// parseNumberLiteral interprets a numeric literal token. x/z/? digits are
// mapped to 0 (two-valued semantics, documented in internal/sim).
func parseNumberLiteral(t Token) (uint64, int, error) {
	text := strings.ReplaceAll(t.Text, "_", "")
	apos := strings.IndexByte(text, '\'')
	if apos < 0 {
		v, err := strconv.ParseUint(text, 10, 64)
		if err != nil {
			return 0, 0, errf(t.Line, t.Col, "invalid decimal literal %q", t.Text)
		}
		return v, 0, nil
	}
	width := 0
	if apos > 0 {
		w, err := strconv.Atoi(text[:apos])
		if err != nil || w <= 0 || w > 64 {
			return 0, 0, errf(t.Line, t.Col, "unsupported literal width in %q (must be 1..64)", t.Text)
		}
		width = w
	}
	rest := text[apos+1:]
	if rest != "" && (rest[0] == 's' || rest[0] == 'S') {
		rest = rest[1:]
	}
	if rest == "" {
		return 0, 0, errf(t.Line, t.Col, "malformed literal %q", t.Text)
	}
	base := rest[0]
	digits := rest[1:]
	// Map unknown digits to 0.
	mapped := strings.Map(func(r rune) rune {
		switch r {
		case 'x', 'X', 'z', 'Z', '?':
			return '0'
		}
		return r
	}, digits)
	var radix int
	switch base {
	case 'b', 'B':
		radix = 2
	case 'o', 'O':
		radix = 8
	case 'd', 'D':
		radix = 10
	case 'h', 'H':
		radix = 16
	default:
		return 0, 0, errf(t.Line, t.Col, "invalid base in literal %q", t.Text)
	}
	v, err := strconv.ParseUint(mapped, radix, 64)
	if err != nil {
		return 0, 0, errf(t.Line, t.Col, "invalid digits in literal %q", t.Text)
	}
	if width > 0 && width < 64 {
		v &= (1 << uint(width)) - 1
	}
	return v, width, nil
}
