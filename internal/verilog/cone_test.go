package verilog

import "testing"

// coneTestSrc has three independent islands of logic: a constant-driven
// status net (idle), a reset-synchronized register (q) fed by rst/en/d,
// and a free-running counter (junk) no property output depends on.
const coneTestSrc = `
module m(clk, rst, en, d, q, junk, idle);
input clk, rst, en, d;
output q; reg q;
output [7:0] junk; reg [7:0] junk;
output idle;
assign idle = 1'b0;
always @(posedge clk) begin
  if (rst) q <= 1'b0;
  else if (en) q <= d;
end
always @(posedge clk) junk <= junk + 8'd1;
endmodule`

func coneOf(t *testing.T, nl *Netlist, names ...string) *Cone {
	t.Helper()
	support := make([]int, len(names))
	for i, n := range names {
		if support[i] = nl.NetIndex(n); support[i] < 0 {
			t.Fatalf("no net %q", n)
		}
	}
	return nl.ConeFor(support)
}

// A support set fed only by a constant collapses to a minimal cone: the
// net itself, its constant driver, and the clock — no inputs, no state.
func TestConeConstantNetMinimal(t *testing.T) {
	nl := mustElaborate(t, coneTestSrc, "m")
	c := coneOf(t, nl, "idle")
	if c.Identity {
		t.Fatal("constant-net cone should not be the identity")
	}
	if n := len(c.Reduced.Nets); n != 2 { // clk + idle
		t.Errorf("reduced nets = %d, want 2 (clk + idle)", n)
	}
	if len(c.Reduced.Inputs) != 0 || len(c.Reduced.Regs) != 0 {
		t.Errorf("minimal cone has %d inputs, %d regs, want none",
			len(c.Reduced.Inputs), len(c.Reduced.Regs))
	}
	if c.Map[nl.NetIndex("idle")] < 0 {
		t.Error("support net cut from its own cone")
	}
	for _, name := range []string{"q", "junk", "rst", "en", "d"} {
		if c.Map[nl.NetIndex(name)] >= 0 {
			t.Errorf("net %q should be cut from the idle cone", name)
		}
	}
}

// The register cone must pull in its whole control fan-in — reset,
// enable and data — while cutting the unrelated counter.
func TestConeResetFanIn(t *testing.T) {
	nl := mustElaborate(t, coneTestSrc, "m")
	c := coneOf(t, nl, "q")
	for _, name := range []string{"q", "rst", "en", "d", "clk"} {
		if c.Map[nl.NetIndex(name)] < 0 {
			t.Errorf("net %q should be in the q cone", name)
		}
	}
	for _, name := range []string{"junk", "idle"} {
		if c.Map[nl.NetIndex(name)] >= 0 {
			t.Errorf("net %q should be cut from the q cone", name)
		}
	}
	if len(c.Reduced.Inputs) != 3 || len(c.Reduced.Regs) != 1 {
		t.Errorf("reduced has %d inputs, %d regs, want 3 and 1",
			len(c.Reduced.Inputs), len(c.Reduced.Regs))
	}
	// The projection preserves relative net order: Inv is strictly
	// increasing, so a topological order of the full design remains one
	// of the reduced design.
	for i := 1; i < len(c.Inv); i++ {
		if c.Inv[i] <= c.Inv[i-1] {
			t.Fatalf("Inv not strictly increasing at %d: %v", i, c.Inv)
		}
	}
	// Map and Inv are mutually inverse over kept nets.
	for r, f := range c.Inv {
		if c.Map[f] != r {
			t.Fatalf("Map[Inv[%d]] = %d, want %d", r, c.Map[f], r)
		}
	}
}

// Cones are interned per netlist: the same support — and any support
// with the same closure — yields the same canonical pointer, so batch
// grouping and graph-cache keying can compare cones by identity.
func TestConeInterning(t *testing.T) {
	nl := mustElaborate(t, coneTestSrc, "m")
	a := coneOf(t, nl, "q")
	if b := coneOf(t, nl, "q"); b != a {
		t.Error("same support built two cones")
	}
	// {q, en} closes to the same net set as {q} (en is already in q's
	// fan-in), so the overlapping support shares the canonical cone.
	if b := coneOf(t, nl, "q", "en"); b != a {
		t.Error("same closure from a different support built a second cone")
	}
	// A genuinely different closure gets its own cone.
	if b := coneOf(t, nl, "idle"); b == a {
		t.Error("distinct closures share a cone")
	}
	// Overlapping but different: {q, junk} strictly contains {q}.
	wide := coneOf(t, nl, "q", "junk")
	if wide == a {
		t.Error("wider closure shares the narrow cone")
	}
	if wide.Map[nl.NetIndex("junk")] < 0 || wide.Map[nl.NetIndex("rst")] < 0 {
		t.Error("union cone must keep both islands' fan-in")
	}
}

// A support whose closure covers every net degenerates to the identity
// cone: no projection, Reduced is the full netlist itself.
func TestConeIdentityWhenAllKept(t *testing.T) {
	nl := mustElaborate(t, coneTestSrc, "m")
	support := make([]int, len(nl.Nets))
	for i := range support {
		support[i] = i
	}
	c := nl.ConeFor(support)
	if !c.Identity || c.Reduced != nl {
		t.Fatal("all-net support should yield the identity cone")
	}
	for i, m := range c.Map {
		if m != i || c.Inv[i] != i {
			t.Fatalf("identity cone Map/Inv not the identity at %d", i)
		}
	}
}

// Designs with combinational cycles are never sliced: projection could
// split a fixpoint group, so ConeFor refuses and returns the identity.
func TestConeIdentityForCyclicDesign(t *testing.T) {
	nl := mustElaborate(t, `
module loopy(input a, output x, output y);
assign x = y | a;
assign y = x & a;
endmodule`, "loopy")
	if nl.CombOrder != nil {
		t.Fatal("test design is not cyclic")
	}
	c := coneOf(t, nl, "x")
	if !c.Identity || c.Reduced != nl {
		t.Error("cyclic design must get the identity cone")
	}
}
