package verilog

// Cone-of-influence reduction. A property's verdict depends only on the
// nets it reads (its support set) and, transitively, on whatever drives
// them. ConeFor cuts a design down to that transitive fan-in: the
// projected netlist keeps exactly the support nets, every net reachable
// from them backwards through assignments and processes, and all clocks.
// Everything else — registers, inputs and logic the property can never
// observe — is dropped, which shrinks both the packed state vector the
// FPV engine deduplicates on and the input space it enumerates.
//
// Soundness: a driver unit (continuous assignment or always block) is
// kept iff it writes a kept net, and keeping a unit keeps every net it
// reads *and* every net it writes, so the closure is exactly the logic
// that can influence a support net. Given equal values on the cone's
// inputs, the reduced and full designs compute identical trajectories
// for every kept net (the dropped logic has, by construction, no path
// into the cone), so any monitor verdict over the support nets agrees.
// dverify oracle 6 cross-checks this over the fuzz genome.

// Cone is a design projected onto the fan-in of a support set. Cones are
// interned per netlist: two support sets with the same closure share one
// canonical *Cone, so the batched verifier and the graph cache can group
// and key by pointer identity.
type Cone struct {
	// Full is the netlist the cone was cut from.
	Full *Netlist
	// Reduced is the projected netlist. For the identity cone it is Full
	// itself.
	Reduced *Netlist
	// Identity marks a cone that kept every net (or a cyclic design,
	// which is never projected): Reduced == Full and Map/Inv are the
	// identity permutation.
	Identity bool
	// Map maps full net indices to reduced indices (-1 for cut nets).
	Map []int
	// Inv maps reduced net indices back to full indices.
	Inv []int
}

// coneSig renders a kept-net bitmask as a map key.
func coneSig(kept []bool) string {
	b := make([]byte, (len(kept)+7)/8)
	for i, k := range kept {
		if k {
			b[i>>3] |= 1 << uint(i&7)
		}
	}
	return string(b)
}

// ConeFor returns the interned cone of influence of the given support
// nets (indices into nl.Nets). The result is canonical: equal closures
// yield the same pointer, and a closure covering every net — or any
// support on a cyclic design, which the pass refuses to slice — yields
// the identity cone. Safe for concurrent use.
func (nl *Netlist) ConeFor(support []int) *Cone {
	key := supportKey(support)
	nl.coneMu.Lock()
	defer nl.coneMu.Unlock()
	if c, ok := nl.coneByKey[key]; ok {
		return c
	}
	c := nl.buildCone(support)
	if nl.coneByKey == nil {
		nl.coneByKey = make(map[string]*Cone)
	}
	nl.coneByKey[key] = c
	return c
}

func supportKey(support []int) string {
	b := make([]byte, 0, 4*len(support))
	for _, n := range support {
		b = append(b, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	}
	return string(b)
}

// buildCone computes the closure and projects, reusing a previously
// built cone when the closure signature matches. Caller holds coneMu.
func (nl *Netlist) buildCone(support []int) *Cone {
	// A cyclic comb graph has no CombOrder to filter, and fixpoint
	// settling over a subgraph need not converge the same way; never
	// slice those designs.
	if len(nl.CombOrder) != len(nl.Assigns)+len(nl.Combs) {
		return nl.identityCone()
	}
	kept := nl.coneClosure(support)
	all := true
	for _, k := range kept {
		if !k {
			all = false
			break
		}
	}
	if all {
		return nl.identityCone()
	}
	sig := coneSig(kept)
	if c, ok := nl.coneBySig[sig]; ok {
		return c
	}
	c := nl.projectCone(kept)
	if nl.coneBySig == nil {
		nl.coneBySig = make(map[string]*Cone)
	}
	nl.coneBySig[sig] = c
	return c
}

func (nl *Netlist) identityCone() *Cone {
	if nl.idCone == nil {
		ident := make([]int, len(nl.Nets))
		for i := range ident {
			ident[i] = i
		}
		nl.idCone = &Cone{Full: nl, Reduced: nl, Identity: true, Map: ident, Inv: ident}
	}
	return nl.idCone
}

// coneClosure marks every net in the transitive fan-in of the support
// set. Driver granularity is the whole unit: keeping any net written by
// an assignment or process keeps all of that unit's reads and writes
// (its body is copied wholesale into the projection). Clocks are always
// kept — they carry no state bits but trigger every kept sequential
// process.
func (nl *Netlist) coneClosure(support []int) []bool {
	kept := make([]bool, len(nl.Nets))
	var queue []int
	add := func(n int) {
		if n >= 0 && n < len(kept) && !kept[n] {
			kept[n] = true
			queue = append(queue, n)
		}
	}
	for _, n := range support {
		add(n)
	}
	for _, n := range nl.Clocks {
		add(n)
	}

	units, writers := nl.driverUnits()

	done := make([]bool, len(units))
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, u := range writers[n] {
			if done[u] {
				continue
			}
			done[u] = true
			for _, r := range units[u].reads {
				add(r)
			}
			for _, w := range units[u].writes {
				add(w)
			}
		}
	}
	return kept
}

// driverUnit is one driver of nets: a continuous assignment or an
// always block, with the nets it reads and writes.
type driverUnit struct {
	reads  []int
	writes []int
}

// driverUnits builds the unit table shared by cone closure and constant
// sweeping: units are indexed assigns first (0..len(Assigns)-1), then
// combs, then seqs, and writers[n] lists the units writing net n.
func (nl *Netlist) driverUnits() ([]driverUnit, [][]int) {
	units := make([]driverUnit, 0, len(nl.Assigns)+len(nl.Combs)+len(nl.Seqs))
	writers := make([][]int, len(nl.Nets))
	addUnit := func(reads, writes []int) {
		u := len(units)
		units = append(units, driverUnit{reads: reads, writes: writes})
		for _, w := range writes {
			writers[w] = append(writers[w], u)
		}
	}
	for i := range nl.Assigns {
		a := &nl.Assigns[i]
		rm := make(map[int]bool)
		a.RHS.Support(rm)
		var writes []int
		for _, l := range a.LHS {
			writes = append(writes, l.Net)
			if l.BitIdx != nil {
				l.BitIdx.Support(rm)
			}
		}
		addUnit(mapKeys(rm), writes)
	}
	for _, p := range nl.Combs {
		addUnit(p.Reads, p.Writes)
	}
	for _, p := range nl.Seqs {
		addUnit(p.Reads, p.Writes)
	}
	return units, writers
}

// mapKeys returns the keys in arbitrary order; consumers (the cone
// closure, a set-valued fixpoint) are order-insensitive.
func mapKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m { //ab:allow maprange
		out = append(out, k)
	}
	return out
}

// projectCone builds the reduced netlist over the kept nets. Kept nets
// preserve their relative order, so the reduced input layout is a
// subsequence of the full one and Map is monotone.
func (nl *Netlist) projectCone(kept []bool) *Cone {
	c := &Cone{Full: nl, Map: make([]int, len(nl.Nets))}
	red := &Netlist{Name: nl.Name, byName: make(map[string]int)}
	for i, k := range kept {
		if !k {
			c.Map[i] = -1
			continue
		}
		old := nl.Nets[i]
		n := *old
		n.Index = len(red.Nets)
		c.Map[i] = n.Index
		c.Inv = append(c.Inv, i)
		red.byName[n.Name] = n.Index
		red.Nets = append(red.Nets, &n)
	}
	remapNets := func(src []int) []int {
		var out []int
		for _, n := range src {
			if c.Map[n] >= 0 {
				out = append(out, c.Map[n])
			}
		}
		return out
	}
	red.Inputs = remapNets(nl.Inputs)
	red.Clocks = remapNets(nl.Clocks)
	red.Outputs = remapNets(nl.Outputs)
	red.Regs = remapNets(nl.Regs)

	// A driver unit survives iff it writes a kept net; the closure
	// guarantees everything a surviving unit touches is kept.
	assignMap := make([]int, len(nl.Assigns))
	for i := range nl.Assigns {
		assignMap[i] = -1
		a := &nl.Assigns[i]
		if !kept[a.LHS[0].Net] {
			continue
		}
		assignMap[i] = len(red.Assigns)
		red.Assigns = append(red.Assigns, CompiledAssign{
			LHS:  remapLRefs(a.LHS, c.Map),
			RHS:  remapExpr(a.RHS, c.Map),
			Line: a.Line,
		})
	}
	combMap := make([]int, len(nl.Combs))
	for i, p := range nl.Combs {
		combMap[i] = -1
		if len(p.Writes) == 0 || !kept[p.Writes[0]] {
			continue
		}
		combMap[i] = len(red.Combs)
		red.Combs = append(red.Combs, remapProcess(p, c.Map))
	}
	for _, p := range nl.Seqs {
		if len(p.Writes) == 0 || !kept[p.Writes[0]] {
			continue
		}
		red.Seqs = append(red.Seqs, remapProcess(p, c.Map))
	}
	// A subsequence of a topological order is a topological order over
	// the surviving units.
	for _, u := range nl.CombOrder {
		if u < len(nl.Assigns) {
			if assignMap[u] >= 0 {
				red.CombOrder = append(red.CombOrder, assignMap[u])
			}
		} else if ci := combMap[u-len(nl.Assigns)]; ci >= 0 {
			red.CombOrder = append(red.CombOrder, len(red.Assigns)+ci)
		}
	}
	c.Reduced = red
	return c
}

func remapProcess(p *Process, m []int) *Process {
	reads := make([]int, len(p.Reads))
	for i, n := range p.Reads {
		reads[i] = m[n]
	}
	writes := make([]int, len(p.Writes))
	for i, n := range p.Writes {
		writes[i] = m[n]
	}
	return &Process{Seq: p.Seq, Body: remapStmt(p.Body, m), Writes: writes, Reads: reads, Line: p.Line}
}

func remapStmt(s *EStmt, m []int) *EStmt {
	if s == nil {
		return nil
	}
	out := *s
	out.LHS = remapLRefs(s.LHS, m)
	out.RHS = remapExpr(s.RHS, m)
	out.Cond = remapExpr(s.Cond, m)
	out.Then = remapStmt(s.Then, m)
	out.Else = remapStmt(s.Else, m)
	out.Subject = remapExpr(s.Subject, m)
	if s.Arms != nil {
		out.Arms = make([]*EStmt, len(s.Arms))
		for i, a := range s.Arms {
			out.Arms[i] = remapStmt(a, m)
		}
	}
	out.Default = remapStmt(s.Default, m)
	if s.Stmts != nil {
		out.Stmts = make([]*EStmt, len(s.Stmts))
		for i, st := range s.Stmts {
			out.Stmts[i] = remapStmt(st, m)
		}
	}
	// Labels and labelMap hold constants and arm indices only; aliasing
	// the originals is safe.
	return &out
}

func remapLRefs(ls []LRef, m []int) []LRef {
	if ls == nil {
		return nil
	}
	out := make([]LRef, len(ls))
	for i, l := range ls {
		out[i] = l
		out[i].Net = m[l.Net]
		out[i].BitIdx = remapExpr(l.BitIdx, m)
	}
	return out
}

func remapExpr(e *EExpr, m []int) *EExpr {
	if e == nil {
		return nil
	}
	out := *e
	switch e.Op {
	case OpNet, OpPart:
		out.Net = m[e.Net]
	case OpIndex:
		out.Net = m[e.Net]
		out.A = remapExpr(e.A, m)
	case OpConcat:
		out.Parts = make([]*EExpr, len(e.Parts))
		for i, p := range e.Parts {
			out.Parts[i] = remapExpr(p, m)
		}
	default:
		out.A = remapExpr(e.A, m)
		out.B = remapExpr(e.B, m)
		out.C = remapExpr(e.C, m)
	}
	return &out
}
