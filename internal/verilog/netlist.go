package verilog

import (
	"crypto/sha256"
	"fmt"
	"sync"
)

// Net is one elaborated scalar or vector signal. Values are two-valued
// bit vectors of Width <= 64 bits, stored masked in a uint64.
type Net struct {
	Name    string
	Index   int
	Width   int
	IsInput bool
	IsOut   bool
	IsReg   bool // state element: written by an edge-triggered process
	IsClock bool // used purely as an edge trigger
	Line    int
}

// Mask returns the value mask for the net's width.
func (n *Net) Mask() uint64 { return WidthMask(n.Width) }

// WidthMask returns a mask with the low w bits set (w in 1..64).
func WidthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// EOp enumerates compiled-expression operations.
type EOp int

// Compiled expression ops.
const (
	OpConst EOp = iota
	OpNet
	OpIndex // A = dynamic bit index into Net
	OpPart  // static part select [Lo+W-1 : Lo] of Net
	OpNot   // bitwise ~ masked to width
	OpLogNot
	OpNeg
	OpRedAnd
	OpRedOr
	OpRedXor
	OpRedNand
	OpRedNor
	OpRedXnor
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpPow
	OpAnd
	OpOr
	OpXor
	OpXnor
	OpLogAnd
	OpLogOr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpShl
	OpShr
	OpTernary // Cond=A ? B : C
	OpConcat  // Parts, MSB first
)

// EExpr is a compiled expression over netlist indices. It is evaluated
// against a value environment indexed by Net.Index.
type EExpr struct {
	Op    EOp
	A, B  *EExpr
	C     *EExpr
	Parts []*EExpr
	Net   int
	Val   uint64
	Lo    int // static part-select low bit
	W     int // result width (1..64)
}

// Eval evaluates the expression in env (net index -> masked value).
func (e *EExpr) Eval(env []uint64) uint64 {
	switch e.Op {
	case OpConst:
		return e.Val
	case OpNet:
		return env[e.Net]
	case OpIndex:
		idx := e.A.Eval(env)
		if idx >= 64 {
			return 0
		}
		return (env[e.Net] >> idx) & 1
	case OpPart:
		return (env[e.Net] >> uint(e.Lo)) & WidthMask(e.W)
	case OpNot:
		return (^e.A.Eval(env)) & WidthMask(e.W)
	case OpLogNot:
		return b2u(e.A.Eval(env) == 0)
	case OpNeg:
		return (-e.A.Eval(env)) & WidthMask(e.W)
	case OpRedAnd:
		return b2u(e.A.Eval(env) == WidthMask(e.A.W))
	case OpRedOr:
		return b2u(e.A.Eval(env) != 0)
	case OpRedXor:
		return parity(e.A.Eval(env))
	case OpRedNand:
		return b2u(e.A.Eval(env) != WidthMask(e.A.W))
	case OpRedNor:
		return b2u(e.A.Eval(env) == 0)
	case OpRedXnor:
		return parity(e.A.Eval(env)) ^ 1
	case OpAdd:
		return (e.A.Eval(env) + e.B.Eval(env)) & WidthMask(e.W)
	case OpSub:
		return (e.A.Eval(env) - e.B.Eval(env)) & WidthMask(e.W)
	case OpMul:
		return (e.A.Eval(env) * e.B.Eval(env)) & WidthMask(e.W)
	case OpDiv:
		d := e.B.Eval(env)
		if d == 0 {
			return 0
		}
		return (e.A.Eval(env) / d) & WidthMask(e.W)
	case OpMod:
		d := e.B.Eval(env)
		if d == 0 {
			return 0
		}
		return (e.A.Eval(env) % d) & WidthMask(e.W)
	case OpPow:
		return ipow(e.A.Eval(env), e.B.Eval(env)) & WidthMask(e.W)
	case OpAnd:
		return e.A.Eval(env) & e.B.Eval(env)
	case OpOr:
		return e.A.Eval(env) | e.B.Eval(env)
	case OpXor:
		return e.A.Eval(env) ^ e.B.Eval(env)
	case OpXnor:
		return (^(e.A.Eval(env) ^ e.B.Eval(env))) & WidthMask(e.W)
	case OpLogAnd:
		return b2u(e.A.Eval(env) != 0 && e.B.Eval(env) != 0)
	case OpLogOr:
		return b2u(e.A.Eval(env) != 0 || e.B.Eval(env) != 0)
	case OpEq:
		return b2u(e.A.Eval(env) == e.B.Eval(env))
	case OpNe:
		return b2u(e.A.Eval(env) != e.B.Eval(env))
	case OpLt:
		return b2u(e.A.Eval(env) < e.B.Eval(env))
	case OpLe:
		return b2u(e.A.Eval(env) <= e.B.Eval(env))
	case OpGt:
		return b2u(e.A.Eval(env) > e.B.Eval(env))
	case OpGe:
		return b2u(e.A.Eval(env) >= e.B.Eval(env))
	case OpShl:
		s := e.B.Eval(env)
		if s >= 64 {
			return 0
		}
		return (e.A.Eval(env) << s) & WidthMask(e.W)
	case OpShr:
		s := e.B.Eval(env)
		if s >= 64 {
			return 0
		}
		return e.A.Eval(env) >> s
	case OpTernary:
		if e.A.Eval(env) != 0 {
			return e.B.Eval(env)
		}
		return e.C.Eval(env)
	case OpConcat:
		var v uint64
		for _, part := range e.Parts {
			v = (v << uint(part.W)) | (part.Eval(env) & WidthMask(part.W))
		}
		return v & WidthMask(e.W)
	}
	panic(fmt.Sprintf("verilog: unknown expression op %d", e.Op))
}

// Support appends the indices of all nets read by e to dst.
func (e *EExpr) Support(dst map[int]bool) {
	switch e.Op {
	case OpConst:
	case OpNet, OpPart:
		dst[e.Net] = true
	case OpIndex:
		dst[e.Net] = true
		e.A.Support(dst)
	case OpConcat:
		for _, p := range e.Parts {
			p.Support(dst)
		}
	default:
		if e.A != nil {
			e.A.Support(dst)
		}
		if e.B != nil {
			e.B.Support(dst)
		}
		if e.C != nil {
			e.C.Support(dst)
		}
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func parity(v uint64) uint64 {
	v ^= v >> 32
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v & 1
}

func ipow(base, exp uint64) uint64 {
	var r uint64 = 1
	for exp > 0 {
		if exp&1 == 1 {
			r *= base
		}
		base *= base
		exp >>= 1
	}
	return r
}

// LRef is a compiled assignable reference: a whole net, a static part, or a
// dynamically indexed bit of a net.
type LRef struct {
	Net    int
	IsBit  bool   // dynamic single-bit select
	BitIdx *EExpr // evaluated at runtime when IsBit
	IsPart bool   // static part select
	Lo     int
	W      int // width written (net width unless bit/part)
}

// Assign writes value v through the reference into env.
func (l *LRef) Assign(env []uint64, netWidth int, v uint64) {
	switch {
	case l.IsBit:
		idx := l.BitIdx.Eval(env)
		if idx >= uint64(netWidth) || idx >= 64 {
			return
		}
		bit := v & 1
		env[l.Net] = (env[l.Net] &^ (1 << idx)) | (bit << idx)
	case l.IsPart:
		mask := WidthMask(l.W) << uint(l.Lo)
		env[l.Net] = (env[l.Net] &^ mask) | ((v & WidthMask(l.W)) << uint(l.Lo))
	default:
		env[l.Net] = v & WidthMask(netWidth)
	}
}

// SOp enumerates compiled-statement kinds.
type SOp int

// Compiled statement kinds.
const (
	SAssign SOp = iota
	SIf
	SCase
	SBlock
)

// EStmt is a compiled behavioural statement.
type EStmt struct {
	Op       SOp
	LHS      []LRef // assignment targets, MSB-first for concatenated LHS
	RHS      *EExpr
	Blocking bool
	Cond     *EExpr
	Then     *EStmt
	Else     *EStmt
	Subject  *EExpr
	Labels   [][]caseLabel // one label list per arm
	Arms     []*EStmt
	Default  *EStmt
	Stmts    []*EStmt
	Line     int
	// labelMap accelerates dense case statements (value -> arm index);
	// built at elaboration when every label is an exact match.
	labelMap map[uint64]int
}

type caseLabel struct {
	value uint64
	mask  uint64 // bits to compare (for casez/casex wildcards mask excludes z/x)
}

// Matches reports whether a case subject value selects this label,
// mirroring the ExecStmt comparison exactly. Exported as a method so
// analysis packages can interpret SCase without access to the fields.
func (l caseLabel) Matches(subj uint64) bool { return subj&l.mask == l.value&l.mask }

// Process is an elaborated always block.
type Process struct {
	Seq  bool // edge-triggered (state-updating) vs combinational
	Body *EStmt
	// Writes lists the nets assigned anywhere in the body.
	Writes []int
	// Reads lists the nets read anywhere in the body.
	Reads []int
	Line  int
}

// CompiledAssign is a continuous assignment.
type CompiledAssign struct {
	LHS  []LRef
	RHS  *EExpr
	Line int
}

// Netlist is a flattened, elaborated design.
type Netlist struct {
	Name    string
	Nets    []*Net
	byName  map[string]int
	Inputs  []int // data inputs (excluding clocks)
	Clocks  []int
	Outputs []int
	Regs    []int
	Assigns []CompiledAssign
	Combs   []*Process
	Seqs    []*Process
	// CombOrder is the topologically sorted evaluation order over the
	// combined list of Assigns (indices 0..len(Assigns)-1) and Combs
	// (indices len(Assigns)..). Empty when the comb logic is cyclic, in
	// which case the simulator falls back to fixpoint iteration.
	CombOrder []int

	// The compiled execution program, lowered once on first use and
	// shared by every simulator/engine over this netlist (programs are
	// immutable; machines keep their own frames).
	progOnce sync.Once
	prog     *Program

	// Cone interning (cone.go): one canonical *Cone per kept-net
	// signature, plus a support-set memo so repeated projections for the
	// same property are two map lookups. Guarded by coneMu.
	coneMu    sync.Mutex
	coneByKey map[string]*Cone
	coneBySig map[string]*Cone
	idCone    *Cone

	// Static-analysis memo (internal/vstatic): the abstract fixpoint is
	// a pure function of the netlist, computed once and shared by every
	// consumer. Held as `any` so the analysis package can depend on this
	// one without a cycle.
	analysisOnce sync.Once
	analysis     any

	// Content-hash memo (see ContentHash).
	hashOnce sync.Once
	hash     [sha256.Size]byte
}

// Analysis returns the netlist's memoized static-analysis artifact,
// computing it with build on first use. Concurrent callers share one
// computation; build must be a pure function of the netlist.
func (nl *Netlist) Analysis(build func(*Netlist) any) any {
	nl.analysisOnce.Do(func() { nl.analysis = build(nl) })
	return nl.analysis
}

// Program returns the netlist's compiled execution program, lowering it
// on first use. Concurrent callers share one compilation.
func (nl *Netlist) Program() *Program {
	nl.progOnce.Do(func() { nl.prog = CompileNetlist(nl) })
	return nl.prog
}

// AdoptProgram installs a precompiled program — typically decoded from
// the persistent artifact store — as this netlist's execution program,
// skipping CompileNetlist. It reports whether p was installed: false
// when p is nil, when its shape does not match the netlist (a stale or
// foreign blob; the caller should compile normally), or when a program
// already exists (the existing one stays canonical, so every engine
// over the netlist keeps sharing a single program).
func (nl *Netlist) AdoptProgram(p *Program) bool {
	if p == nil || p.NumNets != len(nl.Nets) || p.NumSlots < p.NumNets {
		return false
	}
	adopted := false
	nl.progOnce.Do(func() {
		nl.prog = p
		adopted = true
	})
	return adopted
}

// ContentHash returns the SHA-256 of the netlist's canonical Signature,
// memoized. Netlists with equal hashes are structurally identical for
// simulation and verification (see SignatureEqual), which makes the
// hash a process-independent cache key: unlike the pointer identity the
// in-memory caches key on, it survives re-elaboration in another
// process, and it works on derived netlists (cone reductions) too.
func (nl *Netlist) ContentHash() [sha256.Size]byte {
	nl.hashOnce.Do(func() { nl.hash = sha256.Sum256([]byte(nl.Signature())) })
	return nl.hash
}

// NetByName returns the net with the given flattened name, or nil.
func (nl *Netlist) NetByName(name string) *Net {
	if i, ok := nl.byName[name]; ok {
		return nl.Nets[i]
	}
	return nil
}

// NetIndex returns the index of the named net, or -1.
func (nl *Netlist) NetIndex(name string) int {
	if i, ok := nl.byName[name]; ok {
		return i
	}
	return -1
}

// StateBits returns the total number of register bits.
func (nl *Netlist) StateBits() int {
	total := 0
	for _, i := range nl.Regs {
		total += nl.Nets[i].Width
	}
	return total
}

// InputBits returns the total number of data-input bits.
func (nl *Netlist) InputBits() int {
	total := 0
	for _, i := range nl.Inputs {
		total += nl.Nets[i].Width
	}
	return total
}

// IsSequential reports whether the design has any state element.
func (nl *Netlist) IsSequential() bool { return len(nl.Regs) > 0 }
