package verilog

import (
	"fmt"
	"sort"
)

// Limits guarding elaboration of pathological inputs.
const (
	maxInstanceDepth = 16
	maxUnrollIters   = 4096
	maxNets          = 1 << 16
)

// Elaborate flattens the module named top in file into a Netlist. Parameter
// overrides (by name) apply to the top module. All instances are inlined
// with dot-separated prefixes; widths are resolved; expressions and
// statements are compiled to evaluable form.
func Elaborate(file *SourceFile, top string, overrides map[string]uint64) (*Netlist, error) {
	mod := file.FindModule(top)
	if mod == nil {
		return nil, fmt.Errorf("verilog: no module named %q", top)
	}
	el := &elaborator{
		file: file,
		nl:   &Netlist{Name: top, byName: map[string]int{}},
	}
	if err := el.instantiate(mod, "", overrides, nil, 0); err != nil {
		return nil, err
	}
	el.classify()
	el.orderComb()
	return el.nl, nil
}

// ElaborateSource parses src and elaborates its top module. If top is empty
// the last module in the file (conventionally the top) is used.
func ElaborateSource(src, top string) (*Netlist, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if top == "" {
		top = file.Modules[len(file.Modules)-1].Name
	}
	return Elaborate(file, top, nil)
}

// portConn carries an elaborated parent-side connection for one child port.
type portConn struct {
	expr *EExpr // parent expression (for child inputs); nil if open
	lhs  []LRef // parent lvalue (for child outputs); nil if open
}

type scope struct {
	prefix string
	consts map[string]uint64
	netOf  map[string]int
}

type elaborator struct {
	file    *SourceFile
	nl      *Netlist
	drivers map[int]bool
}

func (el *elaborator) addNet(name string, width, line int) (*Net, error) {
	if len(el.nl.Nets) >= maxNets {
		return nil, fmt.Errorf("verilog: design exceeds %d nets", maxNets)
	}
	if width <= 0 || width > 64 {
		return nil, errf(line, 0, "net %q has unsupported width %d (must be 1..64)", name, width)
	}
	if _, dup := el.nl.byName[name]; dup {
		return nil, errf(line, 0, "duplicate declaration of %q", name)
	}
	n := &Net{Name: name, Index: len(el.nl.Nets), Width: width, Line: line}
	el.nl.Nets = append(el.nl.Nets, n)
	el.nl.byName[name] = n.Index
	return n, nil
}

// instantiate elaborates mod with the given hierarchical prefix. conns maps
// the module's port names to parent-side connections (nil for the top).
func (el *elaborator) instantiate(mod *Module, prefix string, overrides map[string]uint64, conns map[string]portConn, depth int) error {
	if depth > maxInstanceDepth {
		return fmt.Errorf("verilog: instance nesting deeper than %d (recursive instantiation?)", maxInstanceDepth)
	}
	sc := &scope{prefix: prefix, consts: map[string]uint64{}, netOf: map[string]int{}}

	// Parameters, in declaration order so later ones can use earlier ones.
	for _, par := range mod.Params {
		v, err := el.constEval(par.Value, sc)
		if err != nil {
			return err
		}
		if ov, ok := overrides[par.Name]; ok && !par.Local {
			v = ov
		}
		sc.consts[par.Name] = v
	}

	// Ports.
	for _, port := range mod.Ports {
		w, err := el.rangeWidth(port.Range, sc, port.Line)
		if err != nil {
			return err
		}
		n, err := el.addNet(prefix+port.Name, w, port.Line)
		if err != nil {
			return err
		}
		sc.netOf[port.Name] = n.Index
		if prefix == "" {
			switch port.Dir {
			case DirInput:
				n.IsInput = true
			case DirOutput:
				n.IsOut = true
			case DirInout:
				return errf(port.Line, 0, "inout port %q is not supported", port.Name)
			}
		}
	}

	// Declarations.
	var inits []*Decl
	for _, d := range mod.Decls {
		if _, isPort := sc.netOf[d.Name]; isPort {
			continue
		}
		w := 1
		if d.Kind == DeclInteger {
			w = 32
		}
		if d.Range != nil {
			var err error
			w, err = el.rangeWidth(d.Range, sc, d.Line)
			if err != nil {
				return err
			}
		}
		n, err := el.addNet(prefix+d.Name, w, d.Line)
		if err != nil {
			return err
		}
		sc.netOf[d.Name] = n.Index
		if d.Init != nil {
			inits = append(inits, d)
		}
	}

	// Wire initializers become continuous assigns.
	for _, d := range inits {
		rhs, err := el.compileExpr(d.Init, sc)
		if err != nil {
			return err
		}
		idx := sc.netOf[d.Name]
		el.nl.Assigns = append(el.nl.Assigns, CompiledAssign{
			LHS:  []LRef{{Net: idx, W: el.nl.Nets[idx].Width}},
			RHS:  rhs,
			Line: d.Line,
		})
	}

	// Bind parent connections now that ports exist.
	if conns != nil {
		for _, port := range mod.Ports {
			pc, ok := conns[port.Name]
			if !ok || (pc.expr == nil && pc.lhs == nil) {
				continue // open
			}
			idx := sc.netOf[port.Name]
			w := el.nl.Nets[idx].Width
			switch port.Dir {
			case DirInput:
				if pc.expr == nil {
					continue
				}
				el.nl.Assigns = append(el.nl.Assigns, CompiledAssign{
					LHS:  []LRef{{Net: idx, W: w}},
					RHS:  pc.expr,
					Line: port.Line,
				})
			case DirOutput:
				if pc.lhs == nil {
					continue
				}
				el.nl.Assigns = append(el.nl.Assigns, CompiledAssign{
					LHS:  pc.lhs,
					RHS:  &EExpr{Op: OpNet, Net: idx, W: w},
					Line: port.Line,
				})
			default:
				return errf(port.Line, 0, "inout port %q is not supported", port.Name)
			}
		}
	}

	// Body items.
	for _, item := range mod.Items {
		switch it := item.(type) {
		case *AssignItem:
			lhs, err := el.compileLValue(it.LHS, sc)
			if err != nil {
				return err
			}
			rhs, err := el.compileExpr(it.RHS, sc)
			if err != nil {
				return err
			}
			el.nl.Assigns = append(el.nl.Assigns, CompiledAssign{LHS: lhs, RHS: rhs, Line: it.Line})

		case *AlwaysItem:
			if err := el.compileAlways(it, sc); err != nil {
				return err
			}

		case *InitialItem:
			// Initial blocks are accepted but carry no synthesizable
			// semantics in this subset; the simulator starts from zero.

		case *InstanceItem:
			if err := el.compileInstance(it, sc, depth); err != nil {
				return err
			}
		}
	}
	return nil
}

func (el *elaborator) compileInstance(it *InstanceItem, sc *scope, depth int) error {
	child := el.file.FindModule(it.ModName)
	if child == nil {
		return errf(it.Line, 0, "instantiation of unknown module %q", it.ModName)
	}
	// Parameter overrides, const-evaluated in the parent scope.
	ov := map[string]uint64{}
	// Map-to-map copy, no order dependence.
	//ab:allow maprange
	for name, e := range it.Params {
		v, err := el.constEval(e, sc)
		if err != nil {
			return err
		}
		ov[name] = v
	}
	nonLocal := childNonLocalParams(child)
	for i, e := range it.ParamsPos {
		if i >= len(nonLocal) {
			return errf(it.Line, 0, "too many positional parameters for module %q", it.ModName)
		}
		v, err := el.constEval(e, sc)
		if err != nil {
			return err
		}
		ov[nonLocal[i]] = v
	}

	// Port connections, elaborated in the parent scope.
	conns := map[string]portConn{}
	bind := func(port *Port, e Expr) error {
		if e == nil {
			conns[port.Name] = portConn{}
			return nil
		}
		switch port.Dir {
		case DirInput:
			ce, err := el.compileExpr(e, sc)
			if err != nil {
				return err
			}
			conns[port.Name] = portConn{expr: ce}
		case DirOutput:
			lhs, err := el.compileLValue(e, sc)
			if err != nil {
				return err
			}
			conns[port.Name] = portConn{lhs: lhs}
		default:
			return errf(it.Line, 0, "inout connection on %q not supported", port.Name)
		}
		return nil
	}
	if len(it.ConnsPos) > 0 {
		if len(it.ConnsPos) > len(child.Ports) {
			return errf(it.Line, 0, "too many positional connections for module %q", it.ModName)
		}
		for i, e := range it.ConnsPos {
			if err := bind(child.Ports[i], e); err != nil {
				return err
			}
		}
	}
	// Each connection binds its own port.
	//ab:allow maprange
	for name, e := range it.Conns {
		var port *Port
		for _, cp := range child.Ports {
			if cp.Name == name {
				port = cp
				break
			}
		}
		if port == nil {
			return errf(it.Line, 0, "module %q has no port %q", it.ModName, name)
		}
		if err := bind(port, e); err != nil {
			return err
		}
	}
	return el.instantiate(child, sc.prefix+it.InstName+".", ov, conns, depth+1)
}

func childNonLocalParams(m *Module) []string {
	var names []string
	for _, p := range m.Params {
		if !p.Local {
			names = append(names, p.Name)
		}
	}
	return names
}

func (el *elaborator) compileAlways(it *AlwaysItem, sc *scope) error {
	body, err := el.compileStmt(it.Body, sc)
	if err != nil {
		return err
	}
	proc := &Process{Body: body, Line: it.Line}
	reads, writes := map[int]bool{}, map[int]bool{}
	stmtReadsWrites(body, reads, writes)
	proc.Reads = keys(reads)
	proc.Writes = keys(writes)

	seq := false
	for _, ev := range it.Events {
		if ev.Edge != EdgeNone {
			seq = true
		}
	}
	if it.Star || !seq {
		proc.Seq = false
		el.nl.Combs = append(el.nl.Combs, proc)
		return nil
	}
	proc.Seq = true
	// Edge signals never read inside the body act purely as triggers
	// (clocks); edge signals that are read are asynchronous set/reset data,
	// which this subset samples synchronously at the clock boundary.
	for _, ev := range it.Events {
		idx, ok := sc.netOf[ev.Signal]
		if !ok {
			if c, isConst := sc.consts[ev.Signal]; isConst {
				_ = c
				return errf(ev.Line, 0, "parameter %q cannot appear in a sensitivity list", ev.Signal)
			}
			return errf(ev.Line, 0, "unknown signal %q in sensitivity list", ev.Signal)
		}
		if !reads[idx] {
			el.nl.Nets[idx].IsClock = true
		}
	}
	el.nl.Seqs = append(el.nl.Seqs, proc)
	return nil
}

func stmtReadsWrites(s *EStmt, reads, writes map[int]bool) {
	if s == nil {
		return
	}
	switch s.Op {
	case SAssign:
		s.RHS.Support(reads)
		for _, l := range s.LHS {
			writes[l.Net] = true
			if l.BitIdx != nil {
				l.BitIdx.Support(reads)
			}
		}
	case SIf:
		s.Cond.Support(reads)
		stmtReadsWrites(s.Then, reads, writes)
		stmtReadsWrites(s.Else, reads, writes)
	case SCase:
		s.Subject.Support(reads)
		for _, arm := range s.Arms {
			stmtReadsWrites(arm, reads, writes)
		}
		stmtReadsWrites(s.Default, reads, writes)
	case SBlock:
		for _, sub := range s.Stmts {
			stmtReadsWrites(sub, reads, writes)
		}
	}
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m { //ab:allow maprange

		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// classify finalizes net roles after all processes are known.
func (el *elaborator) classify() {
	isReg := map[int]bool{}
	for _, p := range el.nl.Seqs {
		for _, w := range p.Writes {
			isReg[w] = true
		}
	}
	for _, n := range el.nl.Nets {
		if isReg[n.Index] {
			n.IsReg = true
			n.IsClock = false // written nets cannot be trigger-only clocks
		}
	}
	for _, n := range el.nl.Nets {
		switch {
		case n.IsClock:
			el.nl.Clocks = append(el.nl.Clocks, n.Index)
		case n.IsInput:
			el.nl.Inputs = append(el.nl.Inputs, n.Index)
		}
		if n.IsOut {
			el.nl.Outputs = append(el.nl.Outputs, n.Index)
		}
		if n.IsReg {
			el.nl.Regs = append(el.nl.Regs, n.Index)
		}
	}
}

// orderComb topologically sorts continuous assigns and combinational
// processes so a single forward pass settles acyclic logic. On a
// combinational cycle CombOrder is left nil (fixpoint fallback).
func (el *elaborator) orderComb() {
	n := len(el.nl.Assigns) + len(el.nl.Combs)
	if n == 0 {
		return
	}
	writers := map[int][]int{} // net -> items that write it
	readsOf := make([]map[int]bool, n)
	for i, a := range el.nl.Assigns {
		r := map[int]bool{}
		a.RHS.Support(r)
		for _, l := range a.LHS {
			writers[l.Net] = append(writers[l.Net], i)
			if l.BitIdx != nil {
				l.BitIdx.Support(r)
			}
		}
		readsOf[i] = r
	}
	for j, p := range el.nl.Combs {
		i := len(el.nl.Assigns) + j
		r := map[int]bool{}
		for _, rd := range p.Reads {
			r[rd] = true
		}
		for _, w := range p.Writes {
			writers[w] = append(writers[w], i)
		}
		readsOf[i] = r
	}
	// Edge u -> v when u writes a net that v reads.
	indeg := make([]int, n)
	succ := make([][]int, n)
	for v := 0; v < n; v++ {
		seen := map[int]bool{}
		// succ[u] still fills in ascending v (the outer loop), and indeg
		// is a pure count, so the edge set is order-insensitive.
		//ab:allow maprange
		for net := range readsOf[v] {
			for _, u := range writers[net] {
				if u == v {
					// Self-loop: combinational feedback; no valid order.
					return
				}
				if !seen[u] {
					seen[u] = true
					succ[u] = append(succ[u], v)
					indeg[v]++
				}
			}
		}
	}
	var order []int
	var queue []int
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	sort.Ints(queue)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) == n {
		el.nl.CombOrder = order
	}
}

// --- statement compilation ---

func (el *elaborator) compileStmt(s Stmt, sc *scope) (*EStmt, error) {
	switch st := s.(type) {
	case *NullStmt:
		return &EStmt{Op: SBlock, Line: st.Line}, nil

	case *BlockStmt:
		out := &EStmt{Op: SBlock, Line: st.Line}
		for _, sub := range st.Stmts {
			cs, err := el.compileStmt(sub, sc)
			if err != nil {
				return nil, err
			}
			out.Stmts = append(out.Stmts, cs)
		}
		return out, nil

	case *AssignStmt:
		lhs, err := el.compileLValue(st.LHS, sc)
		if err != nil {
			return nil, err
		}
		rhs, err := el.compileExpr(st.RHS, sc)
		if err != nil {
			return nil, err
		}
		return &EStmt{Op: SAssign, LHS: lhs, RHS: rhs, Blocking: st.Blocking, Line: st.Line}, nil

	case *IfStmt:
		cond, err := el.compileExpr(st.Cond, sc)
		if err != nil {
			return nil, err
		}
		then, err := el.compileStmt(st.Then, sc)
		if err != nil {
			return nil, err
		}
		out := &EStmt{Op: SIf, Cond: cond, Then: then, Line: st.Line}
		if st.Else != nil {
			els, err := el.compileStmt(st.Else, sc)
			if err != nil {
				return nil, err
			}
			out.Else = els
		}
		return out, nil

	case *CaseStmt:
		subj, err := el.compileExpr(st.Subject, sc)
		if err != nil {
			return nil, err
		}
		out := &EStmt{Op: SCase, Subject: subj, Line: st.Line}
		for _, item := range st.Items {
			var labels []caseLabel
			for _, le := range item.Labels {
				v, err := el.constEval(le, sc)
				if err != nil {
					return nil, err
				}
				labels = append(labels, caseLabel{value: v, mask: ^uint64(0)})
			}
			body, err := el.compileStmt(item.Body, sc)
			if err != nil {
				return nil, err
			}
			out.Labels = append(out.Labels, labels)
			out.Arms = append(out.Arms, body)
		}
		if st.Default != nil {
			def, err := el.compileStmt(st.Default, sc)
			if err != nil {
				return nil, err
			}
			out.Default = def
		}
		// All labels are exact matches in this subset, so a dense case can
		// dispatch through a map instead of a linear scan.
		if len(out.Arms) > 8 {
			out.labelMap = make(map[uint64]int, len(out.Arms))
			for i, labels := range out.Labels {
				for _, lab := range labels {
					if _, dup := out.labelMap[lab.value]; !dup {
						out.labelMap[lab.value] = i
					}
				}
			}
		}
		return out, nil

	case *ForStmt:
		return el.unrollFor(st, sc)
	}
	return nil, fmt.Errorf("verilog: unsupported statement %T", s)
}

// unrollFor statically unrolls a for loop whose index is compile-time
// evaluable; the index is bound as a constant inside the body.
func (el *elaborator) unrollFor(st *ForStmt, sc *scope) (*EStmt, error) {
	ident, ok := st.Init.LHS.(*Ident)
	if !ok {
		return nil, errf(st.Line, 0, "for-loop index must be a simple identifier")
	}
	name := ident.Name
	v, err := el.constEval(st.Init.RHS, sc)
	if err != nil {
		return nil, errf(st.Line, 0, "for-loop initial value must be constant: %v", err)
	}
	out := &EStmt{Op: SBlock, Line: st.Line}
	saved, had := sc.consts[name]
	defer func() {
		if had {
			sc.consts[name] = saved
		} else {
			delete(sc.consts, name)
		}
	}()
	for iter := 0; ; iter++ {
		if iter > maxUnrollIters {
			return nil, errf(st.Line, 0, "for loop exceeds %d iterations", maxUnrollIters)
		}
		sc.consts[name] = v
		cond, err := el.constEval(st.Cond, sc)
		if err != nil {
			return nil, errf(st.Line, 0, "for-loop condition must be constant: %v", err)
		}
		if cond == 0 {
			break
		}
		body, err := el.compileStmt(st.Body, sc)
		if err != nil {
			return nil, err
		}
		out.Stmts = append(out.Stmts, body)
		if stepName, ok := st.Step.LHS.(*Ident); !ok || stepName.Name != name {
			return nil, errf(st.Line, 0, "for-loop step must assign the loop index")
		}
		v, err = el.constEval(st.Step.RHS, sc)
		if err != nil {
			return nil, errf(st.Line, 0, "for-loop step must be constant: %v", err)
		}
	}
	return out, nil
}

// --- lvalue compilation ---

func (el *elaborator) compileLValue(e Expr, sc *scope) ([]LRef, error) {
	switch v := e.(type) {
	case *Ident:
		idx, ok := sc.netOf[v.Name]
		if !ok {
			return nil, errf(v.Line, 0, "assignment to undeclared signal %q", v.Name)
		}
		return []LRef{{Net: idx, W: el.nl.Nets[idx].Width}}, nil

	case *Index:
		base, ok := v.Base.(*Ident)
		if !ok {
			return nil, errf(v.Line, 0, "bit-select target must be a simple signal")
		}
		idx, ok := sc.netOf[base.Name]
		if !ok {
			return nil, errf(v.Line, 0, "assignment to undeclared signal %q", base.Name)
		}
		if c, err := el.constEval(v.Idx, sc); err == nil {
			if int(c) >= el.nl.Nets[idx].Width {
				return nil, errf(v.Line, 0, "bit index %d out of range for %q", c, base.Name)
			}
			return []LRef{{Net: idx, IsPart: true, Lo: int(c), W: 1}}, nil
		}
		bit, err := el.compileExpr(v.Idx, sc)
		if err != nil {
			return nil, err
		}
		return []LRef{{Net: idx, IsBit: true, BitIdx: bit, W: 1}}, nil

	case *PartSelect:
		base, ok := v.Base.(*Ident)
		if !ok {
			return nil, errf(v.Line, 0, "part-select target must be a simple signal")
		}
		idx, ok := sc.netOf[base.Name]
		if !ok {
			return nil, errf(v.Line, 0, "assignment to undeclared signal %q", base.Name)
		}
		msb, err := el.constEval(v.MSB, sc)
		if err != nil {
			return nil, errf(v.Line, 0, "part-select bounds must be constant: %v", err)
		}
		lsb, err := el.constEval(v.LSB, sc)
		if err != nil {
			return nil, errf(v.Line, 0, "part-select bounds must be constant: %v", err)
		}
		if msb < lsb || int(msb) >= el.nl.Nets[idx].Width {
			return nil, errf(v.Line, 0, "part-select [%d:%d] out of range for %q", msb, lsb, base.Name)
		}
		return []LRef{{Net: idx, IsPart: true, Lo: int(lsb), W: int(msb-lsb) + 1}}, nil

	case *Concat:
		var refs []LRef
		for _, part := range v.Parts {
			sub, err := el.compileLValue(part, sc)
			if err != nil {
				return nil, err
			}
			refs = append(refs, sub...)
		}
		return refs, nil
	}
	return nil, errf(exprLine(e), 0, "expression is not assignable")
}

// --- expression compilation ---

func (el *elaborator) compileExpr(e Expr, sc *scope) (*EExpr, error) {
	switch v := e.(type) {
	case *Number:
		w := v.Width
		if w == 0 {
			w = 32
			if v.Value >= 1<<32 {
				w = 64
			}
		}
		return &EExpr{Op: OpConst, Val: v.Value & WidthMask(w), W: w}, nil

	case *Ident:
		if c, ok := sc.consts[v.Name]; ok {
			return &EExpr{Op: OpConst, Val: c, W: 32}, nil
		}
		idx, ok := sc.netOf[v.Name]
		if !ok {
			return nil, errf(v.Line, 0, "reference to undeclared signal %q", v.Name)
		}
		return &EExpr{Op: OpNet, Net: idx, W: el.nl.Nets[idx].Width}, nil

	case *Index:
		base, ok := v.Base.(*Ident)
		if !ok {
			return nil, errf(v.Line, 0, "bit-select base must be a simple signal")
		}
		if _, isConst := sc.consts[base.Name]; isConst {
			return nil, errf(v.Line, 0, "cannot bit-select parameter %q", base.Name)
		}
		idx, ok := sc.netOf[base.Name]
		if !ok {
			return nil, errf(v.Line, 0, "reference to undeclared signal %q", base.Name)
		}
		if c, err := el.constEval(v.Idx, sc); err == nil {
			if int(c) >= el.nl.Nets[idx].Width {
				return nil, errf(v.Line, 0, "bit index %d out of range for %q", c, base.Name)
			}
			return &EExpr{Op: OpPart, Net: idx, Lo: int(c), W: 1}, nil
		}
		bit, err := el.compileExpr(v.Idx, sc)
		if err != nil {
			return nil, err
		}
		return &EExpr{Op: OpIndex, Net: idx, A: bit, W: 1}, nil

	case *PartSelect:
		base, ok := v.Base.(*Ident)
		if !ok {
			return nil, errf(v.Line, 0, "part-select base must be a simple signal")
		}
		idx, ok := sc.netOf[base.Name]
		if !ok {
			return nil, errf(v.Line, 0, "reference to undeclared signal %q", base.Name)
		}
		msb, err := el.constEval(v.MSB, sc)
		if err != nil {
			return nil, errf(v.Line, 0, "part-select bounds must be constant: %v", err)
		}
		lsb, err := el.constEval(v.LSB, sc)
		if err != nil {
			return nil, errf(v.Line, 0, "part-select bounds must be constant: %v", err)
		}
		if msb < lsb || int(msb) >= el.nl.Nets[idx].Width {
			return nil, errf(v.Line, 0, "part-select [%d:%d] out of range for %q", msb, lsb, base.Name)
		}
		return &EExpr{Op: OpPart, Net: idx, Lo: int(lsb), W: int(msb-lsb) + 1}, nil

	case *Unary:
		x, err := el.compileExpr(v.X, sc)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case "~":
			return &EExpr{Op: OpNot, A: x, W: x.W}, nil
		case "!":
			return &EExpr{Op: OpLogNot, A: x, W: 1}, nil
		case "-":
			return &EExpr{Op: OpNeg, A: x, W: x.W}, nil
		case "&":
			return &EExpr{Op: OpRedAnd, A: x, W: 1}, nil
		case "|":
			return &EExpr{Op: OpRedOr, A: x, W: 1}, nil
		case "^":
			return &EExpr{Op: OpRedXor, A: x, W: 1}, nil
		case "~&":
			return &EExpr{Op: OpRedNand, A: x, W: 1}, nil
		case "~|":
			return &EExpr{Op: OpRedNor, A: x, W: 1}, nil
		case "~^", "^~":
			return &EExpr{Op: OpRedXnor, A: x, W: 1}, nil
		}
		return nil, errf(v.Line, 0, "unsupported unary operator %q", v.Op)

	case *Binary:
		x, err := el.compileExpr(v.X, sc)
		if err != nil {
			return nil, err
		}
		y, err := el.compileExpr(v.Y, sc)
		if err != nil {
			return nil, err
		}
		wmax := x.W
		if y.W > wmax {
			wmax = y.W
		}
		mk := func(op EOp, w int) *EExpr { return &EExpr{Op: op, A: x, B: y, W: w} }
		switch v.Op {
		case "+":
			return mk(OpAdd, wmax), nil
		case "-":
			return mk(OpSub, wmax), nil
		case "*":
			return mk(OpMul, wmax), nil
		case "/":
			return mk(OpDiv, wmax), nil
		case "%":
			return mk(OpMod, wmax), nil
		case "**":
			return mk(OpPow, wmax), nil
		case "&":
			return mk(OpAnd, wmax), nil
		case "|":
			return mk(OpOr, wmax), nil
		case "^":
			return mk(OpXor, wmax), nil
		case "~^", "^~":
			return mk(OpXnor, wmax), nil
		case "&&":
			return mk(OpLogAnd, 1), nil
		case "||":
			return mk(OpLogOr, 1), nil
		case "==", "===":
			return mk(OpEq, 1), nil
		case "!=", "!==":
			return mk(OpNe, 1), nil
		case "<":
			return mk(OpLt, 1), nil
		case "<=":
			return mk(OpLe, 1), nil
		case ">":
			return mk(OpGt, 1), nil
		case ">=":
			return mk(OpGe, 1), nil
		case "<<", "<<<":
			return mk(OpShl, x.W), nil
		case ">>", ">>>":
			return mk(OpShr, x.W), nil
		}
		return nil, errf(v.Line, 0, "unsupported binary operator %q", v.Op)

	case *Ternary:
		cond, err := el.compileExpr(v.Cond, sc)
		if err != nil {
			return nil, err
		}
		then, err := el.compileExpr(v.Then, sc)
		if err != nil {
			return nil, err
		}
		els, err := el.compileExpr(v.Else, sc)
		if err != nil {
			return nil, err
		}
		w := then.W
		if els.W > w {
			w = els.W
		}
		return &EExpr{Op: OpTernary, A: cond, B: then, C: els, W: w}, nil

	case *Concat:
		out := &EExpr{Op: OpConcat}
		total := 0
		for _, part := range v.Parts {
			ce, err := el.compileExpr(part, sc)
			if err != nil {
				return nil, err
			}
			out.Parts = append(out.Parts, ce)
			total += ce.W
		}
		if total > 64 {
			return nil, errf(v.Line, 0, "concatenation wider than 64 bits")
		}
		out.W = total
		return out, nil

	case *Call:
		return nil, errf(v.Line, 0, "system function %s is not allowed in design code", v.Name)

	case *Repl:
		count, err := el.constEval(v.Count, sc)
		if err != nil {
			return nil, errf(v.Line, 0, "replication count must be constant: %v", err)
		}
		val, err := el.compileExpr(v.Value, sc)
		if err != nil {
			return nil, err
		}
		if count == 0 || count*uint64(val.W) > 64 {
			return nil, errf(v.Line, 0, "replication {%d{...}} must produce 1..64 bits", count)
		}
		out := &EExpr{Op: OpConcat, W: int(count) * val.W}
		for i := uint64(0); i < count; i++ {
			out.Parts = append(out.Parts, val)
		}
		return out, nil
	}
	return nil, fmt.Errorf("verilog: unsupported expression %T", e)
}

// --- constant evaluation ---

func (el *elaborator) rangeWidth(r *Range, sc *scope, line int) (int, error) {
	if r == nil {
		return 1, nil
	}
	msb, err := el.constEval(r.MSB, sc)
	if err != nil {
		return 0, errf(line, 0, "range bound must be constant: %v", err)
	}
	lsb, err := el.constEval(r.LSB, sc)
	if err != nil {
		return 0, errf(line, 0, "range bound must be constant: %v", err)
	}
	if lsb > msb {
		msb, lsb = lsb, msb
	}
	w := int(msb-lsb) + 1
	if w <= 0 || w > 64 {
		return 0, errf(line, 0, "vector range [%d:%d] is unsupported (width must be 1..64)", msb, lsb)
	}
	return w, nil
}

// constEval evaluates an expression that must be compile-time constant
// (parameters, literals, and operators over them).
func (el *elaborator) constEval(e Expr, sc *scope) (uint64, error) {
	switch v := e.(type) {
	case *Number:
		return v.Value, nil
	case *Ident:
		if c, ok := sc.consts[v.Name]; ok {
			return c, nil
		}
		return 0, errf(v.Line, 0, "%q is not a constant", v.Name)
	case *Unary:
		x, err := el.constEval(v.X, sc)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "~":
			return ^x, nil
		case "!":
			return b2u(x == 0), nil
		case "-":
			return -x, nil
		case "|":
			return b2u(x != 0), nil
		case "&":
			return b2u(x == ^uint64(0)), nil
		case "^":
			return parity(x), nil
		}
		return 0, errf(v.Line, 0, "unary %q is not constant-evaluable", v.Op)
	case *Binary:
		x, err := el.constEval(v.X, sc)
		if err != nil {
			return 0, err
		}
		y, err := el.constEval(v.Y, sc)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return x + y, nil
		case "-":
			return x - y, nil
		case "*":
			return x * y, nil
		case "/":
			if y == 0 {
				return 0, errf(v.Line, 0, "constant division by zero")
			}
			return x / y, nil
		case "%":
			if y == 0 {
				return 0, errf(v.Line, 0, "constant modulo by zero")
			}
			return x % y, nil
		case "**":
			return ipow(x, y), nil
		case "<<", "<<<":
			if y >= 64 {
				return 0, nil
			}
			return x << y, nil
		case ">>", ">>>":
			if y >= 64 {
				return 0, nil
			}
			return x >> y, nil
		case "&":
			return x & y, nil
		case "|":
			return x | y, nil
		case "^":
			return x ^ y, nil
		case "&&":
			return b2u(x != 0 && y != 0), nil
		case "||":
			return b2u(x != 0 || y != 0), nil
		case "==":
			return b2u(x == y), nil
		case "!=":
			return b2u(x != y), nil
		case "<":
			return b2u(x < y), nil
		case "<=":
			return b2u(x <= y), nil
		case ">":
			return b2u(x > y), nil
		case ">=":
			return b2u(x >= y), nil
		}
		return 0, errf(v.Line, 0, "binary %q is not constant-evaluable", v.Op)
	case *Ternary:
		c, err := el.constEval(v.Cond, sc)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return el.constEval(v.Then, sc)
		}
		return el.constEval(v.Else, sc)
	}
	return 0, fmt.Errorf("verilog: expression is not constant")
}
