package verilog

import "math/bits"

// 64-way bit-sliced execution. A SlicedMachine simulates 64 independent
// stimulus trajectories of one netlist at once by transposing every
// value: a net of width W is held as W uint64 bit planes, where bit l of
// plane b is bit b of the net's value in lane l. One pass over the
// design then advances all 64 lanes — bitwise operators map to single
// plane ops, arithmetic/comparisons to ripple carry/borrow chains over
// the planes, and control flow to branch-free predication (every
// assignment is a masked store under the conjunction of its enclosing
// branch conditions, so divergent lanes coexist in one pass). The rare
// ops with no cheap plane form (*, /, %, **) unslice: they gather each
// lane's scalar operands, apply the scalar semantics verbatim, and
// scatter the results back into planes.
//
// The machine reproduces the scalar Simulator bit-for-bit per lane
// (dverify oracle 7 and TestSlicedMatchesScalar enforce this): settle is
// the same single pass over CombOrder, a step runs the sequential
// processes in order with blocking writes visible immediately and
// non-blocking writes latched into shadow planes that commit after the
// edge, and comb-settle non-blocking writes are dropped exactly like
// both scalar backends. Cyclic comb logic (fixpoint settling) is not
// sliced: NewSlicedMachine returns nil and callers fall back to the
// scalar path.

// SlicedLanes is the trajectory count of one sliced pass.
const SlicedLanes = 64

// SlicedSupported reports whether the design can run bit-sliced: the
// combinational logic must be acyclic (one ordered settle pass).
func SlicedSupported(nl *Netlist) bool {
	return len(nl.CombOrder) == len(nl.Assigns)+len(nl.Combs)
}

// SlicedMachine is a 64-lane simulator instance. Not safe for
// concurrent use; each engine builds its own.
type SlicedMachine struct {
	nl *Netlist
	// vals[n] holds net n's planes (Width planes).
	vals [][]uint64
	// Non-blocking shadow planes, allocated for nets written
	// non-blockingly by a sequential process. nbMask accumulates the
	// lanes with a pending write per (net, bit).
	nbVal   [][]uint64
	nbMask  [][]uint64
	nbNets  []int
	settle  []func()
	seqs    []func(mask uint64)
	settled bool
}

// NewSlicedMachine compiles a 64-lane machine for nl, or returns nil if
// the design is not sliceable (cyclic combinational logic).
func NewSlicedMachine(nl *Netlist) *SlicedMachine {
	if !SlicedSupported(nl) {
		return nil
	}
	m := &SlicedMachine{nl: nl, vals: make([][]uint64, len(nl.Nets))}
	for i, n := range nl.Nets {
		m.vals[i] = make([]uint64, n.Width)
	}
	m.nbVal = make([][]uint64, len(nl.Nets))
	m.nbMask = make([][]uint64, len(nl.Nets))
	for _, item := range nl.CombOrder {
		if item < len(nl.Assigns) {
			m.settle = append(m.settle, m.compileAssign(&nl.Assigns[item]))
		} else {
			body := m.compileStmt(nl.Combs[item-len(nl.Assigns)].Body, false)
			m.settle = append(m.settle, func() { body(^uint64(0)) })
		}
	}
	for _, p := range nl.Seqs {
		m.seqs = append(m.seqs, m.compileStmt(p.Body, true))
	}
	return m
}

// Netlist returns the design under simulation.
func (m *SlicedMachine) Netlist() *Netlist { return m.nl }

// ResetState returns every lane to the power-on (all-zero) state with
// combinational logic unsettled; the next Settle re-evaluates.
func (m *SlicedMachine) ResetState() {
	for _, p := range m.vals {
		for b := range p {
			p[b] = 0
		}
	}
	for _, n := range m.nbNets {
		for b := range m.nbMask[n] {
			m.nbMask[n][b] = 0
			m.nbVal[n][b] = 0
		}
	}
	m.settled = false
}

// SetInputLanes drives data input position pos (netlist input order)
// with one value per lane; lanes past len(lanes) are driven to zero, so
// callers with fewer live trajectories pay only for those.
func (m *SlicedMachine) SetInputLanes(pos int, lanes []uint64) {
	m.setLanes(m.vals[m.nl.Inputs[pos]], lanes)
	m.settled = false
}

// SetNetLanes drives an arbitrary net (by netlist index) with one value
// per lane; lanes past len(lanes) are driven to zero. Loading register
// nets this way gives every lane its own state, so one pass can explore
// from several design states at once.
func (m *SlicedMachine) SetNetLanes(idx int, lanes []uint64) {
	m.setLanes(m.vals[idx], lanes)
	m.settled = false
}

// SnapshotNets copies the current bit-planes of nets (netlist indices)
// into dst, concatenated in argument order, and returns the word count
// (the sum of the nets' widths). Paired with RestoreNets it lets a
// caller cache a driven input pattern and re-apply it as a straight
// plane copy instead of re-transposing per-lane values every chunk.
func (m *SlicedMachine) SnapshotNets(nets []int, dst []uint64) int {
	k := 0
	for _, idx := range nets {
		k += copy(dst[k:], m.vals[idx])
	}
	return k
}

// RestoreNets writes planes previously captured by SnapshotNets back
// onto nets and leaves combinational logic unsettled.
func (m *SlicedMachine) RestoreNets(nets []int, src []uint64) int {
	k := 0
	for _, idx := range nets {
		p := m.vals[idx]
		copy(p, src[k:k+len(p)])
		k += len(p)
	}
	m.settled = false
	return k
}

func (m *SlicedMachine) setLanes(p, lanes []uint64) {
	w := len(p)
	n := len(lanes)
	if n > SlicedLanes {
		n = SlicedLanes
	}
	if n*w > transposeCut {
		var a [SlicedLanes]uint64
		copy(a[:], lanes[:n])
		transpose64(&a)
		copy(p, a[:w])
	} else {
		for b := 0; b < w; b++ {
			var plane uint64
			for l := 0; l < n; l++ {
				plane |= ((lanes[l] >> uint(b)) & 1) << uint(l)
			}
			p[b] = plane
		}
	}
}

// BroadcastInput drives data input position pos with the same value in
// every lane.
func (m *SlicedMachine) BroadcastInput(pos int, v uint64) {
	m.broadcast(m.nl.Inputs[pos], v)
	m.settled = false
}

// LoadRegsBroadcast loads the register state (netlist Regs order) into
// every lane.
func (m *SlicedMachine) LoadRegsBroadcast(state []uint64) {
	for i, idx := range m.nl.Regs {
		m.broadcast(idx, state[i])
	}
	m.settled = false
}

func (m *SlicedMachine) broadcast(idx int, v uint64) {
	p := m.vals[idx]
	for b := range p {
		if (v>>uint(b))&1 == 1 {
			p[b] = ^uint64(0)
		} else {
			p[b] = 0
		}
	}
}

// Lane gathers net idx's value in one lane.
func (m *SlicedMachine) Lane(idx, lane int) uint64 {
	return gatherLane(m.vals[idx], lane)
}

// Lanes gathers net idx's value in the first len(dst) lanes into dst:
// a bit-matrix transpose of the net's planes when that pays, else a
// per-lane gather over just the lanes asked for.
func (m *SlicedMachine) Lanes(idx int, dst []uint64) {
	p := m.vals[idx]
	if len(dst)*len(p) > transposeCut {
		var a [SlicedLanes]uint64
		copy(a[:], p)
		transpose64(&a)
		copy(dst, a[:])
		return
	}
	for l := range dst {
		dst[l] = gatherLane(p, l)
	}
}

// PackedLanes gathers, for each of the first nLanes lanes, the
// little-endian bit-concatenation of the given nets' values (net order,
// each contributing Width bits) into dst[l*words : (l+1)*words] — the
// sliced counterpart of reading every net per lane and bit-packing the
// results. words must be ceil(total bits / 64); dst needs nLanes*words
// entries. One 64x64 transpose per output word replaces
// nLanes*totalBits single-bit probes.
func (m *SlicedMachine) PackedLanes(nets []int, nLanes, words int, dst []uint64) {
	var a [SlicedLanes]uint64
	word, fill := 0, 0
	flush := func() {
		for i := fill; i < SlicedLanes; i++ {
			a[i] = 0
		}
		transpose64(&a)
		for l := 0; l < nLanes; l++ {
			dst[l*words+word] = a[l]
		}
		word++
		fill = 0
	}
	for _, idx := range nets {
		for _, pb := range m.vals[idx] {
			a[fill] = pb
			fill++
			if fill == SlicedLanes {
				flush()
			}
		}
	}
	if fill > 0 || word < words {
		flush()
	}
}

// SetPackedLanes drives the given nets from per-lane little-endian
// bit-concatenations — the exact inverse of PackedLanes: lane l's value
// src[l*words : (l+1)*words] is taken apart into the nets' planes (net
// order, each consuming Width bits), and lanes past nLanes are driven
// to zero. Loading bit-packed register states this way costs one 64x64
// transpose per packed word instead of one per register.
func (m *SlicedMachine) SetPackedLanes(nets []int, nLanes, words int, src []uint64) {
	if words == 0 {
		return // no packed bits: nothing to drive (register-free design)
	}
	var a [SlicedLanes]uint64
	word, fill := 0, 0
	load := func() {
		for l := 0; l < nLanes; l++ {
			a[l] = src[l*words+word]
		}
		for l := nLanes; l < SlicedLanes; l++ {
			a[l] = 0
		}
		transpose64(&a)
		word++
		fill = 0
	}
	load()
	for _, idx := range nets {
		p := m.vals[idx]
		for b := range p {
			if fill == SlicedLanes {
				load()
			}
			p[b] = a[fill]
			fill++
		}
	}
	m.settled = false
}

// transposeCut is the lanes*bits area above which a fixed-cost 64x64
// transpose beats the per-bit gather/scatter loops.
const transposeCut = 448

// transpose64 transposes a as a 64x64 bit matrix in place (bit j of
// a[i] swaps with bit i of a[j], LSB-first) by recursive block swaps:
// at stride s, the high s bits of rows with bit s clear trade places
// with the low s bits of their partner rows s below.
func transpose64(a *[SlicedLanes]uint64) {
	mask := uint64(0x00000000FFFFFFFF)
	for s := uint(32); s != 0; s >>= 1 {
		for k := uint(0); k < SlicedLanes; k = (k + s + 1) &^ s {
			t := ((a[k] >> s) ^ a[k+s]) & mask
			a[k+s] ^= t
			a[k] ^= t << s
		}
		mask ^= mask << (s >> 1)
	}
}

// Settle evaluates combinational logic (one ordered pass, all lanes).
func (m *SlicedMachine) Settle() {
	if m.settled {
		return
	}
	m.settled = true
	for _, f := range m.settle {
		f()
	}
}

// Step advances one clock cycle in every lane: settle, run sequential
// processes in order (blocking writes immediate, non-blocking latched),
// commit the non-blocking writes, and leave comb logic unsettled.
func (m *SlicedMachine) Step() {
	m.Settle()
	full := ^uint64(0)
	for _, f := range m.seqs {
		f(full)
	}
	for _, n := range m.nbNets {
		dst, val, msk := m.vals[n], m.nbVal[n], m.nbMask[n]
		for b := range dst {
			dst[b] = (dst[b] &^ msk[b]) | (val[b] & msk[b])
			msk[b] = 0
			val[b] = 0
		}
	}
	m.settled = false
}

func gatherLane(p []uint64, lane int) uint64 {
	var v uint64
	for b, pb := range p {
		v |= ((pb >> uint(lane)) & 1) << uint(b)
	}
	return v
}

func pl(p []uint64, b int) uint64 {
	if b >= 0 && b < len(p) {
		return p[b]
	}
	return 0
}

func orAll(p []uint64) uint64 {
	var v uint64
	for _, pb := range p {
		v |= pb
	}
	return v
}

// eqConstMask returns the lanes whose value in p equals k.
func eqConstMask(p []uint64, k uint64) uint64 {
	if len(p) < 64 && k>>uint(len(p)) != 0 {
		return 0
	}
	mask := ^uint64(0)
	for b := 0; b < len(p) && mask != 0; b++ {
		if (k>>uint(b))&1 == 1 {
			mask &= p[b]
		} else {
			mask &^= p[b]
		}
	}
	return mask
}

// labelMatchMask returns the lanes where subj&mask == value&mask,
// visiting only the mask's set bits.
func labelMatchMask(p []uint64, lab caseLabel) uint64 {
	mask := ^uint64(0)
	v := lab.value & lab.mask
	for m := lab.mask; m != 0 && mask != 0; m &= m - 1 {
		b := bits.TrailingZeros64(m)
		pb := pl(p, b)
		if (v>>uint(b))&1 == 1 {
			mask &= pb
		} else {
			mask &^= pb
		}
	}
	return mask
}

// sval is a compiled sliced expression: eval (nil for constants and
// direct net reads) refreshes planes, which holds the bits that can be
// non-zero; higher bits read as zero via pl().
type sval struct {
	eval   func()
	planes []uint64
}

func (v *sval) get() []uint64 {
	if v.eval != nil {
		v.eval()
	}
	return v.planes
}

func (m *SlicedMachine) compileExpr(e *EExpr) *sval {
	switch e.Op {
	case OpConst:
		var p []uint64
		for b := 0; b < 64; b++ {
			if (e.Val>>uint(b))&1 == 1 {
				for len(p) < b+1 {
					p = append(p, 0)
				}
				p[b] = ^uint64(0)
			}
		}
		return &sval{planes: p}
	case OpNet:
		return &sval{planes: m.vals[e.Net]}
	case OpPart:
		src := m.vals[e.Net]
		out := make([]uint64, e.W)
		return &sval{planes: out, eval: func() {
			for b := range out {
				out[b] = pl(src, e.Lo+b)
			}
		}}
	case OpIndex:
		src := m.vals[e.Net]
		idx := m.compileExpr(e.A)
		out := make([]uint64, 1)
		return &sval{planes: out, eval: func() {
			ip := idx.get()
			var v uint64
			for b := range src {
				v |= eqConstMask(ip, uint64(b)) & src[b]
			}
			out[0] = v
		}}
	case OpConcat:
		parts := make([]*sval, len(e.Parts))
		widths := make([]int, len(e.Parts))
		for i, p := range e.Parts {
			parts[i] = m.compileExpr(p)
			widths[i] = p.W
		}
		out := make([]uint64, e.W)
		return &sval{planes: out, eval: func() {
			// Parts are MSB-first; tile from the LSB end, zeroing any
			// result planes above the total concatenated width.
			off := 0
			for i := len(parts) - 1; i >= 0; i-- {
				pp := parts[i].get()
				for k := 0; k < widths[i] && off+k < len(out); k++ {
					out[off+k] = pl(pp, k)
				}
				off += widths[i]
			}
			for b := off; b < len(out); b++ {
				out[b] = 0
			}
		}}
	}

	var a, b, c *sval
	if e.A != nil {
		a = m.compileExpr(e.A)
	}
	if e.B != nil {
		b = m.compileExpr(e.B)
	}
	if e.C != nil {
		c = m.compileExpr(e.C)
	}

	switch e.Op {
	case OpNot:
		out := make([]uint64, e.W)
		return &sval{planes: out, eval: func() {
			ap := a.get()
			for i := range out {
				out[i] = ^pl(ap, i)
			}
		}}
	case OpLogNot:
		return unary1(a, func(ap []uint64) uint64 { return ^orAll(ap) })
	case OpNeg:
		out := make([]uint64, e.W)
		return &sval{planes: out, eval: func() {
			subPlanes(out, nil, a.get())
		}}
	case OpRedAnd:
		w := e.A.W
		return unary1(a, func(ap []uint64) uint64 { return redAndMask(ap, w) })
	case OpRedOr:
		return unary1(a, orAll)
	case OpRedXor:
		return unary1(a, xorAll)
	case OpRedNand:
		w := e.A.W
		return unary1(a, func(ap []uint64) uint64 { return ^redAndMask(ap, w) })
	case OpRedNor:
		return unary1(a, func(ap []uint64) uint64 { return ^orAll(ap) })
	case OpRedXnor:
		return unary1(a, func(ap []uint64) uint64 { return ^xorAll(ap) })
	case OpAdd:
		out := make([]uint64, e.W)
		return &sval{planes: out, eval: func() {
			addPlanes(out, a.get(), b.get())
		}}
	case OpSub:
		out := make([]uint64, e.W)
		return &sval{planes: out, eval: func() {
			subPlanes(out, a.get(), b.get())
		}}
	case OpMul, OpDiv, OpMod, OpPow:
		// No cheap plane form: unslice, apply the scalar op per lane,
		// re-slice. Matches EExpr.Eval including the /0 and %0 rules.
		op := e.Op
		w := e.W
		out := make([]uint64, w)
		return &sval{planes: out, eval: func() {
			ap, bp := a.get(), b.get()
			for i := range out {
				out[i] = 0
			}
			for l := 0; l < SlicedLanes; l++ {
				av, bv := gatherLane(ap, l), gatherLane(bp, l)
				var r uint64
				switch op {
				case OpMul:
					r = av * bv
				case OpDiv:
					if bv != 0 {
						r = av / bv
					}
				case OpMod:
					if bv != 0 {
						r = av % bv
					}
				case OpPow:
					r = ipow(av, bv)
				}
				r &= WidthMask(w)
				for bit := 0; bit < w; bit++ {
					out[bit] |= ((r >> uint(bit)) & 1) << uint(l)
				}
			}
		}}
	case OpAnd:
		return binPlane(a, b, func(x, y uint64) uint64 { return x & y })
	case OpOr:
		return binPlane(a, b, func(x, y uint64) uint64 { return x | y })
	case OpXor:
		return binPlane(a, b, func(x, y uint64) uint64 { return x ^ y })
	case OpXnor:
		out := make([]uint64, e.W)
		return &sval{planes: out, eval: func() {
			ap, bp := a.get(), b.get()
			for i := range out {
				out[i] = ^(pl(ap, i) ^ pl(bp, i))
			}
		}}
	case OpLogAnd:
		return bin1(a, b, func(ap, bp []uint64) uint64 { return orAll(ap) & orAll(bp) })
	case OpLogOr:
		return bin1(a, b, func(ap, bp []uint64) uint64 { return orAll(ap) | orAll(bp) })
	case OpEq:
		return bin1(a, b, eqMask)
	case OpNe:
		return bin1(a, b, func(ap, bp []uint64) uint64 { return ^eqMask(ap, bp) })
	case OpLt:
		return bin1(a, b, ltMask)
	case OpLe:
		return bin1(a, b, func(ap, bp []uint64) uint64 { return ltMask(ap, bp) | eqMask(ap, bp) })
	case OpGt:
		return bin1(a, b, func(ap, bp []uint64) uint64 { return ltMask(bp, ap) })
	case OpGe:
		return bin1(a, b, func(ap, bp []uint64) uint64 { return ltMask(bp, ap) | eqMask(ap, bp) })
	case OpShl:
		if e.B.Op == OpConst {
			s := e.B.Val
			out := make([]uint64, e.W)
			return &sval{planes: out, eval: func() {
				ap := a.get()
				for i := range out {
					if s >= 64 || uint64(i) < s {
						out[i] = 0
					} else {
						out[i] = pl(ap, i-int(s))
					}
				}
			}}
		}
		return m.dynShift(a, b, e.W, true)
	case OpShr:
		if e.B.Op == OpConst {
			s := e.B.Val
			out := make([]uint64, len(a.planes))
			return &sval{planes: out, eval: func() {
				ap := a.get()
				for i := range out {
					if s >= 64 {
						out[i] = 0
					} else {
						out[i] = pl(ap, i+int(s))
					}
				}
			}}
		}
		return m.dynShift(a, b, len(a.planes), false)
	case OpTernary:
		nw := len(b.planes)
		if len(c.planes) > nw {
			nw = len(c.planes)
		}
		out := make([]uint64, nw)
		return &sval{planes: out, eval: func() {
			cm := orAll(a.get())
			bp, cp := b.get(), c.get()
			for i := range out {
				out[i] = (pl(bp, i) & cm) | (pl(cp, i) &^ cm)
			}
		}}
	}
	panic("verilog: unknown expression op in sliced compile")
}

// redAndMask returns the lanes whose value has all w low bits set and no
// higher bit (matching the scalar value == WidthMask(w) comparison).
func redAndMask(ap []uint64, w int) uint64 {
	v := ^uint64(0)
	for i := 0; i < w; i++ {
		v &= pl(ap, i)
	}
	for i := w; i < len(ap); i++ {
		v &^= ap[i]
	}
	return v
}

// dynShift compiles a barrel shifter over the shift amount's planes:
// each amount bit k conditionally relocates the planes by 1<<k in the
// lanes where it is set, and amounts >= 64 zero their lanes.
func (m *SlicedMachine) dynShift(a, b *sval, w int, left bool) *sval {
	out := make([]uint64, w)
	return &sval{planes: out, eval: func() {
		ap, bp := a.get(), b.get()
		for i := range out {
			out[i] = pl(ap, i)
		}
		levels := len(bp)
		if levels > 6 {
			levels = 6
		}
		for k := 0; k < levels; k++ {
			sk := bp[k]
			if sk == 0 {
				continue
			}
			sh := 1 << uint(k)
			if left {
				for i := len(out) - 1; i >= 0; i-- {
					out[i] = (pl(out, i-sh) & sk) | (out[i] &^ sk)
				}
			} else {
				for i := range out {
					out[i] = (pl(out, i+sh) & sk) | (out[i] &^ sk)
				}
			}
		}
		var zm uint64
		for k := 6; k < len(bp); k++ {
			zm |= bp[k]
		}
		if zm != 0 {
			for i := range out {
				out[i] &^= zm
			}
		}
	}}
}

func unary1(a *sval, f func([]uint64) uint64) *sval {
	out := make([]uint64, 1)
	return &sval{planes: out, eval: func() { out[0] = f(a.get()) }}
}

func bin1(a, b *sval, f func(_, _ []uint64) uint64) *sval {
	out := make([]uint64, 1)
	return &sval{planes: out, eval: func() { out[0] = f(a.get(), b.get()) }}
}

func binPlane(a, b *sval, f func(_, _ uint64) uint64) *sval {
	nw := len(a.planes)
	if len(b.planes) > nw {
		nw = len(b.planes)
	}
	out := make([]uint64, nw)
	return &sval{planes: out, eval: func() {
		ap, bp := a.get(), b.get()
		for i := range out {
			out[i] = f(pl(ap, i), pl(bp, i))
		}
	}}
}

// addPlanes writes a+b (ripple carry) into dst over len(dst) planes.
func addPlanes(dst, a, b []uint64) {
	var carry uint64
	for i := range dst {
		ai, bi := pl(a, i), pl(b, i)
		dst[i] = ai ^ bi ^ carry
		carry = (ai & bi) | (carry & (ai ^ bi))
	}
}

// subPlanes writes a-b (ripple borrow) into dst over len(dst) planes.
// a == nil negates b (0 - b).
func subPlanes(dst, a, b []uint64) {
	var borrow uint64
	for i := range dst {
		ai, bi := pl(a, i), pl(b, i)
		dst[i] = ai ^ bi ^ borrow
		borrow = (^ai & bi) | (^(ai ^ bi) & borrow)
	}
}

// eqMask returns the lanes where a == b as full 64-bit values.
func eqMask(a, b []uint64) uint64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	mask := ^uint64(0)
	for i := 0; i < n && mask != 0; i++ {
		mask &= ^(pl(a, i) ^ pl(b, i))
	}
	return mask
}

// ltMask returns the lanes where a < b (unsigned): the borrow out of
// a - b over the joint width.
func ltMask(a, b []uint64) uint64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	var borrow uint64
	for i := 0; i < n; i++ {
		ai, bi := pl(a, i), pl(b, i)
		borrow = (^ai & bi) | (^(ai ^ bi) & borrow)
	}
	return borrow
}

func xorAll(p []uint64) uint64 {
	var v uint64
	for _, pb := range p {
		v ^= pb
	}
	return v
}

// compileAssign compiles a continuous assignment (always blocking, full
// lane mask).
func (m *SlicedMachine) compileAssign(a *CompiledAssign) func() {
	rhs := m.rhsVal(a.RHS, a.LHS, true)
	stores := m.compileStores(a.LHS, false)
	return func() {
		rp := rhs.get()
		for _, st := range stores {
			st(^uint64(0), rp)
		}
	}
}

// rhsVal compiles an assignment's right-hand side. A blocking store whose
// RHS is a bare net read would otherwise hand the stores a live alias of
// the target planes (the scalar semantics read the value first), so that
// case snapshots into a private buffer.
func (m *SlicedMachine) rhsVal(rhs *EExpr, lhs []LRef, blocking bool) *sval {
	v := m.compileExpr(rhs)
	if !blocking || rhs.Op != OpNet {
		return v
	}
	aliased := false
	for _, l := range lhs {
		if l.Net == rhs.Net {
			aliased = true
		}
	}
	if !aliased {
		return v
	}
	out := make([]uint64, len(v.planes))
	return &sval{planes: out, eval: func() { copy(out, v.get()) }}
}

// compileStmt compiles a behavioural statement into a predicated
// executor: mask selects the lanes the statement runs in. seq marks a
// sequential process (non-blocking writes latch into shadow planes;
// in comb processes they are dropped, matching the scalar backends).
func (m *SlicedMachine) compileStmt(s *EStmt, seq bool) func(mask uint64) {
	if s == nil {
		return func(uint64) {}
	}
	switch s.Op {
	case SBlock:
		subs := make([]func(uint64), len(s.Stmts))
		for i, sub := range s.Stmts {
			subs[i] = m.compileStmt(sub, seq)
		}
		return func(mask uint64) {
			if mask == 0 {
				return
			}
			for _, f := range subs {
				f(mask)
			}
		}
	case SAssign:
		if !s.Blocking && !seq {
			// Comb-settle non-blocking writes are never applied.
			return func(uint64) {}
		}
		rhs := m.rhsVal(s.RHS, s.LHS, s.Blocking)
		stores := m.compileStores(s.LHS, !s.Blocking)
		return func(mask uint64) {
			if mask == 0 {
				return
			}
			rp := rhs.get()
			for _, st := range stores {
				st(mask, rp)
			}
		}
	case SIf:
		cond := m.compileExpr(s.Cond)
		then := m.compileStmt(s.Then, seq)
		els := m.compileStmt(s.Else, seq)
		return func(mask uint64) {
			if mask == 0 {
				return
			}
			cm := orAll(cond.get())
			then(mask & cm)
			els(mask &^ cm)
		}
	case SCase:
		if f, ok := m.tryRomCase(s); ok {
			return f
		}
		subj := m.compileExpr(s.Subject)
		arms := make([]func(uint64), len(s.Arms))
		for i, a := range s.Arms {
			arms[i] = m.compileStmt(a, seq)
		}
		labels := s.Labels
		def := m.compileStmt(s.Default, seq)
		return func(mask uint64) {
			if mask == 0 {
				return
			}
			sp := subj.get()
			var taken uint64
			for i, labs := range labels {
				var match uint64
				for _, lab := range labs {
					match |= labelMatchMask(sp, lab)
				}
				arms[i](mask & match &^ taken)
				taken |= match
			}
			def(mask &^ taken)
		}
	}
	panic("verilog: unknown statement op in sliced compile")
}

// slicedRom is one target net's dense constant-case table (the sliced
// counterpart of the scalar backend's romTable): vals/write indexed by
// the subject value, defVal/defWrite for unlabeled or out-of-range
// subjects.
type slicedRom struct {
	net      int
	vals     []uint64
	write    []bool
	defVal   uint64
	defWrite bool
}

// tryRomCase compiles a case statement whose arms only assign constants
// to whole nets — the corpus's big decode tables — into per-lane table
// lookups: the subject unslices once (one 64x64 transpose), each live
// lane's value indexes the dense table, and each target's results
// re-slice with one transpose and a masked plane store. Semantically
// identical to the label-dispatch path (first matching label wins,
// unassigned nets keep their values, blocking semantics) but costs two
// transposes plus O(lanes) lookups instead of O(labels × arm body) plane
// sweeps per pass. Mirrors compile.go's tryRomCase table construction.
func (m *SlicedMachine) tryRomCase(s *EStmt) (func(mask uint64), bool) {
	maxLabel := uint64(0)
	for _, labels := range s.Labels {
		for _, lab := range labels {
			if lab.mask != ^uint64(0) {
				return nil, false
			}
			if lab.value > maxLabel {
				maxLabel = lab.value
			}
		}
	}
	if maxLabel >= romLimit {
		return nil, false
	}
	arms := make([][]netConst, len(s.Arms))
	for i, arm := range s.Arms {
		a, ok := constAssigns(arm, m.nl.Nets, nil)
		if !ok {
			return nil, false
		}
		arms[i] = a
	}
	def, ok := constAssigns(s.Default, m.nl.Nets, nil)
	if !ok {
		return nil, false
	}

	var targets []int
	seen := map[int]int{}
	final := func(list []netConst) map[int]uint64 {
		fm := make(map[int]uint64, len(list))
		for _, a := range list {
			if _, ok := seen[a.net]; !ok {
				seen[a.net] = len(targets)
				targets = append(targets, a.net)
			}
			fm[a.net] = a.val
		}
		return fm
	}
	armVals := make([]map[int]uint64, len(arms))
	for i, a := range arms {
		armVals[i] = final(a)
	}
	defVals := final(def)
	if len(targets) == 0 {
		return func(uint64) {}, true
	}

	size := int(maxLabel) + 1
	roms := make([]slicedRom, len(targets))
	for k, net := range targets {
		t := slicedRom{net: net, vals: make([]uint64, size), write: make([]bool, size)}
		if v, ok := defVals[net]; ok {
			t.defVal, t.defWrite = v, true
		}
		for i := range t.vals {
			t.vals[i], t.write[i] = t.defVal, t.defWrite
		}
		roms[k] = t
	}
	claimed := make([]bool, size)
	for i, labels := range s.Labels {
		for _, lab := range labels {
			v := lab.value
			if claimed[v] {
				continue // first matching label wins
			}
			claimed[v] = true
			for k := range roms {
				t := &roms[k]
				if val, ok := armVals[i][t.net]; ok {
					t.vals[v], t.write[v] = val, true
				} else {
					t.write[v] = false
				}
			}
		}
	}

	subj := m.compileExpr(s.Subject)
	return func(mask uint64) {
		if mask == 0 {
			return
		}
		var subjLanes [SlicedLanes]uint64
		copy(subjLanes[:], subj.get())
		transpose64(&subjLanes)
		for k := range roms {
			t := &roms[k]
			var wm uint64
			var outLanes [SlicedLanes]uint64
			for mm := mask; mm != 0; mm &= mm - 1 {
				l := bits.TrailingZeros64(mm)
				v := subjLanes[l]
				val, w := t.defVal, t.defWrite
				if v < uint64(len(t.vals)) {
					val, w = t.vals[v], t.write[v]
				}
				if w {
					wm |= 1 << uint(l)
					outLanes[l] = val
				}
			}
			if wm == 0 {
				continue
			}
			transpose64(&outLanes)
			p := m.vals[t.net]
			for b := range p {
				p[b] = (p[b] &^ wm) | (outLanes[b] & wm)
			}
		}
	}, true
}

// compileStores compiles the store side of an assignment: one masked
// store per LRef, receiving the already-evaluated RHS planes. A
// concatenated LHS (MSB-first refs) distributes from the LSB end in the
// same ref order as the scalar ExecStmt, so dynamic bit indices see the
// same partially-updated environment.
func (m *SlicedMachine) compileStores(lhs []LRef, nb bool) []func(mask uint64, rp []uint64) {
	nets := m.nl.Nets
	var out []func(uint64, []uint64)
	shift := 0
	for i := len(lhs) - 1; i >= 0; i-- {
		out = append(out, m.compileStore(lhs[i], shift, nb))
		shift += refWidth(&lhs[i], nets)
	}
	return out
}

func (m *SlicedMachine) compileStore(l LRef, shift int, nb bool) func(mask uint64, rp []uint64) {
	netW := m.nl.Nets[l.Net].Width
	dstIdx := l.Net
	if nb {
		m.ensureShadow(dstIdx)
	}
	switch {
	case l.IsBit:
		idx := m.compileExpr(l.BitIdx)
		return func(mask uint64, rp []uint64) {
			ip := idx.get()
			src := pl(rp, shift)
			for b := 0; b < netW; b++ {
				em := mask & eqConstMask(ip, uint64(b))
				if em == 0 {
					continue
				}
				m.store(dstIdx, b, em, src, nb)
			}
		}
	case l.IsPart:
		lo, pw := l.Lo, l.W
		return func(mask uint64, rp []uint64) {
			for k := 0; k < pw; k++ {
				if lo+k >= netW {
					break
				}
				m.store(dstIdx, lo+k, mask, pl(rp, shift+k), nb)
			}
		}
	default:
		return func(mask uint64, rp []uint64) {
			for b := 0; b < netW; b++ {
				m.store(dstIdx, b, mask, pl(rp, shift+b), nb)
			}
		}
	}
}

func (m *SlicedMachine) ensureShadow(idx int) {
	if m.nbVal[idx] != nil {
		return
	}
	w := m.nl.Nets[idx].Width
	m.nbVal[idx] = make([]uint64, w)
	m.nbMask[idx] = make([]uint64, w)
	m.nbNets = append(m.nbNets, idx)
}

func (m *SlicedMachine) store(idx, bit int, mask, val uint64, nb bool) {
	if nb {
		m.nbVal[idx][bit] = (m.nbVal[idx][bit] &^ mask) | (val & mask)
		m.nbMask[idx][bit] |= mask
		return
	}
	p := m.vals[idx]
	p[bit] = (p[bit] &^ mask) | (val & mask)
}
