package verilog

import "testing"

func execComb(t *testing.T, src, top string, set map[string]uint64) (*Netlist, []uint64) {
	t.Helper()
	nl := mustElaborate(t, src, top)
	env := make([]uint64, len(nl.Nets))
	for name, v := range set {
		idx := nl.NetIndex(name)
		if idx < 0 {
			t.Fatalf("no net %q", name)
		}
		env[idx] = v
	}
	var nba []NBWrite
	for pass := 0; pass < 4; pass++ {
		for i := range nl.Assigns {
			ExecAssign(&nl.Assigns[i], nl.Nets, env)
		}
		for _, p := range nl.Combs {
			ExecStmt(p.Body, nl.Nets, env, &nba)
		}
	}
	return nl, env
}

func TestExecConcatAssignRHS(t *testing.T) {
	nl, env := execComb(t, `
module m(input [3:0] a, input [3:0] b, output [7:0] y);
assign y = {a, b};
endmodule`, "m", map[string]uint64{"a": 0xA, "b": 0x5})
	if got := env[nl.NetIndex("y")]; got != 0xA5 {
		t.Errorf("y = %#x, want 0xa5", got)
	}
}

func TestExecConcatAssignLHSContinuous(t *testing.T) {
	nl, env := execComb(t, `
module m(input [7:0] d, output [3:0] hi, output [3:0] lo);
assign {hi, lo} = d;
endmodule`, "m", map[string]uint64{"d": 0x3C})
	if env[nl.NetIndex("hi")] != 0x3 || env[nl.NetIndex("lo")] != 0xC {
		t.Errorf("hi=%x lo=%x, want 3,c", env[nl.NetIndex("hi")], env[nl.NetIndex("lo")])
	}
}

func TestExecTernaryAndReductions(t *testing.T) {
	nl, env := execComb(t, `
module m(input [3:0] a, output y, output z, output w);
assign y = &a ? 1'b1 : 1'b0;
assign z = ^a;
assign w = ~|a;
endmodule`, "m", map[string]uint64{"a": 0xF})
	if env[nl.NetIndex("y")] != 1 {
		t.Error("reduction-and of 0xF should be 1")
	}
	if env[nl.NetIndex("z")] != 0 {
		t.Error("xor-reduction of 0xF should be 0")
	}
	if env[nl.NetIndex("w")] != 0 {
		t.Error("nor-reduction of 0xF should be 0")
	}
}

func TestExecDynamicBitReadOutOfRange(t *testing.T) {
	// Reading past the vector yields 0 (two-valued model of x).
	nl, env := execComb(t, `
module m(input [3:0] a, input [2:0] i, output y);
assign y = a[i];
endmodule`, "m", map[string]uint64{"a": 0xF, "i": 6})
	if env[nl.NetIndex("y")] != 0 {
		t.Error("out-of-range dynamic bit read should give 0")
	}
}

func TestExecShiftBeyondWidth(t *testing.T) {
	nl, env := execComb(t, `
module m(input [7:0] a, input [7:0] s, output [7:0] y, output [7:0] z);
assign y = a << s;
assign z = a >> s;
endmodule`, "m", map[string]uint64{"a": 0xFF, "s": 100})
	if env[nl.NetIndex("y")] != 0 || env[nl.NetIndex("z")] != 0 {
		t.Error("shifts >= 64 must give 0")
	}
}

func TestExecDivModByZero(t *testing.T) {
	nl, env := execComb(t, `
module m(input [7:0] a, input [7:0] b, output [7:0] q, output [7:0] r);
assign q = a / b;
assign r = a % b;
endmodule`, "m", map[string]uint64{"a": 42, "b": 0})
	if env[nl.NetIndex("q")] != 0 || env[nl.NetIndex("r")] != 0 {
		t.Error("division by zero must give 0 in the two-valued model")
	}
}

func TestExecCaseNoMatchNoDefault(t *testing.T) {
	nl, env := execComb(t, `
module m(input [2:0] s, output reg [3:0] y);
always @(*)
  case (s)
    3'd0: y = 4'd1;
    3'd1: y = 4'd2;
  endcase
endmodule`, "m", map[string]uint64{"s": 5})
	// No arm, no default: y keeps its previous (zero) value.
	if env[nl.NetIndex("y")] != 0 {
		t.Errorf("y = %d, want unchanged 0", env[nl.NetIndex("y")])
	}
}

func TestExecPartSelectWrite(t *testing.T) {
	src := `
module m(clk, d, q);
input clk;
input [3:0] d;
output [7:0] q;
reg [7:0] q;
always @(posedge clk) begin
  q[3:0] <= d;
  q[7:4] <= ~d;
end
endmodule`
	nl := mustElaborate(t, src, "m")
	env := make([]uint64, len(nl.Nets))
	env[nl.NetIndex("d")] = 0x6
	var nba []NBWrite
	ExecStmt(nl.Seqs[0].Body, nl.Nets, env, &nba)
	for _, w := range nba {
		w.Apply(env)
	}
	if got := env[nl.NetIndex("q")]; got != 0x96 {
		t.Errorf("q = %#x, want 0x96", got)
	}
}

func TestNetHelpers(t *testing.T) {
	nl := mustElaborate(t, arbSrc, "arb2")
	if nl.StateBits() != 1 || nl.InputBits() != 3 {
		t.Errorf("state=%d input=%d bits", nl.StateBits(), nl.InputBits())
	}
	if !nl.IsSequential() {
		t.Error("arbiter is sequential")
	}
	if nl.NetByName("ghost") != nil || nl.NetIndex("ghost") != -1 {
		t.Error("lookup of missing net should fail")
	}
	n := nl.NetByName("gnt_")
	if n.Mask() != 1 {
		t.Errorf("1-bit mask = %#x", n.Mask())
	}
}

func TestTokenString(t *testing.T) {
	toks, err := Lex(`foo 42 "str" module +`)
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{`identifier "foo"`, `number "42"`, `string "str"`, `keyword "module"`, `"+"`, "EOF"}
	for i, w := range wants {
		if toks[i].String() != w {
			t.Errorf("token %d String = %q, want %q", i, toks[i].String(), w)
		}
	}
}

func TestPortDirString(t *testing.T) {
	if DirInput.String() != "input" || DirOutput.String() != "output" || DirInout.String() != "inout" {
		t.Error("PortDir.String wrong")
	}
}
