package verilog

import (
	"bytes"
	"reflect"
	"testing"
)

// progioSource exercises every codec section: case dispatch (map and
// scan forms), a ROM-shaped always block, non-blocking constant writes,
// and enough comb logic for fragments.
const progioSource = `
module m(input clk, input [3:0] a, input [3:0] b, output reg [3:0] q, output [3:0] s);
  assign s = a ^ b;
  reg [3:0] t;
  always @(*) begin
    case (a)
      4'd0: t = 4'd1;
      4'd1: t = 4'd2;
      4'd2: t = 4'd4;
      default: t = b;
    endcase
  end
  always @(posedge clk) begin
    q <= t + b;
  end
endmodule
`

func compileProgioNetlist(t *testing.T) *Netlist {
	t.Helper()
	nl, err := ElaborateSource(progioSource, "m")
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestProgramCodecRoundTrip(t *testing.T) {
	nl := compileProgioNetlist(t)
	p := nl.Program()
	blob := EncodeProgram(p)
	got, err := DecodeProgram(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("decoded program differs:\n got %+v\nwant %+v", got, p)
	}
	// Deterministic bytes: encode twice (second time from the decoded
	// copy, whose case maps were rebuilt in a different insertion
	// order) and byte-compare.
	if !bytes.Equal(blob, EncodeProgram(got)) {
		t.Fatal("encoding is not deterministic across a decode round-trip")
	}
}

func TestDecodeProgramRejectsGarbage(t *testing.T) {
	nl := compileProgioNetlist(t)
	blob := EncodeProgram(nl.Program())
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"misaligned", blob[:len(blob)-3]},
		{"truncated", blob[:8*(len(blob)/16)]},
		{"wrong-version", append([]byte{0xff, 0, 0, 0, 0, 0, 0, 0}, blob[8:]...)},
		{"trailing", append(append([]byte(nil), blob...), make([]byte, 16)...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeProgram(tc.data); err == nil {
				t.Fatal("decode accepted a malformed payload")
			}
		})
	}
}

func TestAdoptProgram(t *testing.T) {
	nl := compileProgioNetlist(t)
	p, err := DecodeProgram(EncodeProgram(nl.Program()))
	if err != nil {
		t.Fatal(err)
	}
	// Fresh netlist adopts the decoded program and Program() returns it.
	nl2 := compileProgioNetlist(t)
	if !nl2.AdoptProgram(p) {
		t.Fatal("matching program not adopted")
	}
	if nl2.Program() != p {
		t.Fatal("adopted program not returned by Program()")
	}
	// A netlist that already compiled keeps its own program.
	nl3 := compileProgioNetlist(t)
	own := nl3.Program()
	if nl3.AdoptProgram(p) {
		t.Fatal("adoption displaced an existing program")
	}
	if nl3.Program() != own {
		t.Fatal("existing program not kept canonical")
	}
	// Shape mismatches are refused.
	nl4 := compileProgioNetlist(t)
	bad := *p
	bad.NumNets = p.NumNets + 1
	if nl4.AdoptProgram(&bad) {
		t.Fatal("adopted a program with the wrong net count")
	}
	if nl4.AdoptProgram(nil) {
		t.Fatal("adopted nil")
	}
}

func TestContentHashStableAcrossElaborations(t *testing.T) {
	a := compileProgioNetlist(t)
	b := compileProgioNetlist(t)
	if a == b {
		t.Fatal("want distinct netlist pointers")
	}
	if a.ContentHash() != b.ContentHash() {
		t.Fatal("re-elaborated netlist hashes differ")
	}
	other, err := ElaborateSource(`module n(input clk, input x, output reg y); always @(posedge clk) y <= ~x; endmodule`, "n")
	if err != nil {
		t.Fatal(err)
	}
	if a.ContentHash() == other.ContentHash() {
		t.Fatal("different designs share a content hash")
	}
}
