package verilog

import (
	"strings"
	"testing"
)

// arbSrc is the 2-port arbiter of the paper's Fig. 1 (with its 're2' typo
// corrected).
const arbSrc = `
module arb2(clk, rst, req1, req2, gnt1, gnt2);
input clk, rst, req1, req2;
output gnt1, gnt2;
reg gnt_, gnt1, gnt2;
always @(posedge clk or posedge rst)
  if (rst)
    gnt_ <= 0;
  else
    gnt_ <= gnt1;
always @(*)
  if (gnt_)
    begin
      gnt1 = req1 & req2;
      gnt2 = req2;
    end
  else
    begin
      gnt1 = req1;
      gnt2 = req2 & ~req1;
    end
endmodule
`

func mustParse(t *testing.T, src string) *SourceFile {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse failed: %v", err)
	}
	return f
}

func TestParseArbiter(t *testing.T) {
	f := mustParse(t, arbSrc)
	m := f.FindModule("arb2")
	if m == nil {
		t.Fatal("module arb2 not found")
	}
	if len(m.Ports) != 6 {
		t.Fatalf("got %d ports, want 6", len(m.Ports))
	}
	if m.Ports[0].Name != "clk" || m.Ports[0].Dir != DirInput {
		t.Errorf("port 0 = %v %v, want input clk", m.Ports[0].Name, m.Ports[0].Dir)
	}
	if m.Ports[4].Name != "gnt1" || m.Ports[4].Dir != DirOutput || !m.Ports[4].IsReg {
		t.Errorf("gnt1 should be an output reg")
	}
	if len(m.Items) != 2 {
		t.Fatalf("got %d items, want 2 always blocks", len(m.Items))
	}
	seq, ok := m.Items[0].(*AlwaysItem)
	if !ok || len(seq.Events) != 2 || seq.Events[0].Edge != EdgePos {
		t.Fatalf("first item should be posedge always, got %#v", m.Items[0])
	}
	comb, ok := m.Items[1].(*AlwaysItem)
	if !ok || !comb.Star {
		t.Fatalf("second item should be always @(*)")
	}
}

func TestParseANSIPortsAndParams(t *testing.T) {
	src := `
module fifo #(parameter DEPTH = 8, parameter WIDTH = 16) (
  input wire clk,
  input wire [WIDTH-1:0] din,
  output reg [WIDTH-1:0] dout,
  output full
);
  assign full = 1'b0;
  always @(posedge clk) dout <= din;
endmodule
`
	f := mustParse(t, src)
	m := f.Modules[0]
	if len(m.Params) != 2 || m.Params[0].Name != "DEPTH" || m.Params[1].Name != "WIDTH" {
		t.Fatalf("params = %v", m.Params)
	}
	if len(m.Ports) != 4 {
		t.Fatalf("got %d ports, want 4", len(m.Ports))
	}
	if m.Ports[1].Range == nil {
		t.Error("din should have a range")
	}
	if !m.Ports[2].IsReg {
		t.Error("dout should be a reg")
	}
}

func TestParseCaseAndOperators(t *testing.T) {
	src := `
module alu(input [1:0] op, input [7:0] a, b, output reg [7:0] y);
always @(*)
  case (op)
    2'b00: y = a + b;
    2'b01: y = a - b;
    2'b10: y = a & b;
    default: y = (a > b) ? a : b;
  endcase
endmodule
`
	f := mustParse(t, src)
	m := f.Modules[0]
	always := m.Items[0].(*AlwaysItem)
	cs, ok := always.Body.(*CaseStmt)
	if !ok {
		t.Fatalf("body is %T, want case", always.Body)
	}
	if len(cs.Items) != 3 || cs.Default == nil {
		t.Fatalf("case has %d arms, default=%v", len(cs.Items), cs.Default != nil)
	}
}

func TestParsePortListSharedRange(t *testing.T) {
	// "input [7:0] a, b" must give both ports the range.
	f := mustParse(t, `module m(input [7:0] a, b, output y); assign y = a[0] ^ b[7]; endmodule`)
	m := f.Modules[0]
	if m.Ports[0].Range == nil || m.Ports[1].Range == nil {
		t.Fatal("both a and b should carry the [7:0] range")
	}
	if m.Ports[2].Range != nil {
		t.Fatal("y should be scalar")
	}
}

func TestParseInstance(t *testing.T) {
	src := `
module half_adder(input a, b, output s, c);
  assign s = a ^ b;
  assign c = a & b;
endmodule
module full_adder(input a, b, cin, output sum, cout);
  wire s1, c1, c2;
  half_adder ha1 (.a(a), .b(b), .s(s1), .c(c1));
  half_adder ha2 (s1, cin, sum, c2);
  assign cout = c1 | c2;
endmodule
`
	f := mustParse(t, src)
	fa := f.FindModule("full_adder")
	if fa == nil {
		t.Fatal("full_adder not found")
	}
	var insts []*InstanceItem
	for _, it := range fa.Items {
		if inst, ok := it.(*InstanceItem); ok {
			insts = append(insts, inst)
		}
	}
	if len(insts) != 2 {
		t.Fatalf("got %d instances, want 2", len(insts))
	}
	if len(insts[0].Conns) != 4 {
		t.Errorf("named instance has %d connections, want 4", len(insts[0].Conns))
	}
	if len(insts[1].ConnsPos) != 4 {
		t.Errorf("positional instance has %d connections, want 4", len(insts[1].ConnsPos))
	}
}

func TestParseConcatAndReplication(t *testing.T) {
	f := mustParse(t, `module m(input [3:0] a, output [7:0] y, output [7:0] z);
  assign y = {a, 4'b0};
  assign z = {2{a}};
endmodule`)
	items := f.Modules[0].Items
	if _, ok := items[0].(*AssignItem).RHS.(*Concat); !ok {
		t.Errorf("y rhs is %T, want Concat", items[0].(*AssignItem).RHS)
	}
	if _, ok := items[1].(*AssignItem).RHS.(*Repl); !ok {
		t.Errorf("z rhs is %T, want Repl", items[1].(*AssignItem).RHS)
	}
}

func TestParsePrecedence(t *testing.T) {
	f := mustParse(t, `module m(input a, b, c, output y); assign y = a || b && c; endmodule`)
	rhs := f.Modules[0].Items[0].(*AssignItem).RHS
	bin, ok := rhs.(*Binary)
	if !ok || bin.Op != "||" {
		t.Fatalf("top operator = %v, want ||", rhs)
	}
	inner, ok := bin.Y.(*Binary)
	if !ok || inner.Op != "&&" {
		t.Fatalf("rhs of || should be &&, got %v", bin.Y)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"wire w;", "expected 'module'"},
		{"module m(; endmodule", "expected identifier"},
		{"module m(a); input a endmodule", `expected ";"`},
		{"module m(a); always begin end endmodule", "event control"},
		{"module m(a); assign = 1; endmodule", "expected identifier"},
		{"module m(a); reg [3:0] mem [0:7]; endmodule", "memory arrays"},
		{"module m(a); if (a) ; endmodule", "unexpected"},
		{"module m(a,b); assign a = b ? 1; endmodule", `expected ":"`},
		{"module m(a);", "unexpected EOF"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) error %q, want it to contain %q", c.src, err, c.frag)
		}
	}
}

func TestParseSystemCall(t *testing.T) {
	toks, err := Lex("$past(count, 2) == 3")
	if err != nil {
		t.Fatal(err)
	}
	p := NewTokenParser(toks)
	e, err := p.ParseExpression()
	if err != nil {
		t.Fatalf("ParseExpression failed: %v", err)
	}
	bin, ok := e.(*Binary)
	if !ok || bin.Op != "==" {
		t.Fatalf("top = %v, want ==", e)
	}
	call, ok := bin.X.(*Call)
	if !ok || call.Name != "$past" || len(call.Args) != 2 {
		t.Fatalf("lhs = %#v, want $past call with 2 args", bin.X)
	}
}

func TestParseForLoop(t *testing.T) {
	src := `
module parity8(input [7:0] d, output reg p);
integer i;
always @(*) begin
  p = 0;
  for (i = 0; i < 8; i = i + 1)
    p = p ^ d[i];
end
endmodule
`
	f := mustParse(t, src)
	blk := f.Modules[0].Items[0].(*AlwaysItem).Body.(*BlockStmt)
	if len(blk.Stmts) != 2 {
		t.Fatalf("block has %d statements, want 2", len(blk.Stmts))
	}
	if _, ok := blk.Stmts[1].(*ForStmt); !ok {
		t.Fatalf("second statement is %T, want for", blk.Stmts[1])
	}
}
