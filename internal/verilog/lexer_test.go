package verilog

import "testing"

func lexKinds(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q) failed: %v", src, err)
	}
	return toks
}

func TestLexIdentifiersAndKeywords(t *testing.T) {
	toks := lexKinds(t, "module foo_1; wire $display _x; endmodule")
	want := []struct {
		kind TokKind
		text string
	}{
		{TokKeyword, "module"}, {TokIdent, "foo_1"}, {TokSymbol, ";"},
		{TokKeyword, "wire"}, {TokIdent, "$display"}, {TokIdent, "_x"},
		{TokSymbol, ";"}, {TokKeyword, "endmodule"}, {TokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %v, want kind=%d text=%q", i, toks[i], w.kind, w.text)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []string{"42", "8'hFF", "4'b10_10", "'d15", "3'o7", "1'bx", "16'hdead"}
	for _, src := range cases {
		toks := lexKinds(t, src)
		if toks[0].Kind != TokNumber || toks[0].Text != src {
			t.Errorf("Lex(%q) = %v, want single number token", src, toks[0])
		}
	}
}

func TestLexSymbols(t *testing.T) {
	toks := lexKinds(t, "a <= b == c != d && e || ~^f << 2 |-> g |=> h ##1 i -> j")
	var syms []string
	for _, tok := range toks {
		if tok.Kind == TokSymbol {
			syms = append(syms, tok.Text)
		}
	}
	want := []string{"<=", "==", "!=", "&&", "||", "~^", "<<", "|->", "|=>", "##", "->"}
	if len(syms) != len(want) {
		t.Fatalf("got symbols %v, want %v", syms, want)
	}
	for i := range want {
		if syms[i] != want[i] {
			t.Errorf("symbol %d = %q, want %q", i, syms[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	src := `
// line comment with module keyword
a /* block
   spanning lines */ b
` + "`define FOO 1\n c"
	toks := lexKinds(t, src)
	var idents []string
	for _, tok := range toks {
		if tok.Kind == TokIdent {
			idents = append(idents, tok.Text)
		}
	}
	if len(idents) != 3 || idents[0] != "a" || idents[1] != "b" || idents[2] != "c" {
		t.Fatalf("got idents %v, want [a b c]", idents)
	}
}

func TestLexLineTracking(t *testing.T) {
	toks := lexKinds(t, "a\nb\n  c")
	if toks[0].Line != 1 || toks[1].Line != 2 || toks[2].Line != 3 {
		t.Errorf("line numbers = %d,%d,%d, want 1,2,3", toks[0].Line, toks[1].Line, toks[2].Line)
	}
	if toks[2].Col != 3 {
		t.Errorf("token c col = %d, want 3", toks[2].Col)
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		"/* unterminated",
		`"unterminated string`,
		"8'q13",
		"4'",
	}
	for _, src := range bad {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}

func TestParseNumberLiteral(t *testing.T) {
	cases := []struct {
		src   string
		val   uint64
		width int
	}{
		{"42", 42, 0},
		{"8'hFF", 255, 8},
		{"4'b1010", 10, 4},
		{"4'b10_10", 10, 4},
		{"'d15", 15, 0},
		{"1'bx", 0, 1},
		{"4'bzz11", 3, 4},
		{"3'd9", 1, 3}, // truncated to width
		{"16'hBEEF", 0xBEEF, 16},
	}
	for _, c := range cases {
		toks := lexKinds(t, c.src)
		v, w, err := parseNumberLiteral(toks[0])
		if err != nil {
			t.Errorf("parseNumberLiteral(%q) failed: %v", c.src, err)
			continue
		}
		if v != c.val || w != c.width {
			t.Errorf("parseNumberLiteral(%q) = (%d,%d), want (%d,%d)", c.src, v, w, c.val, c.width)
		}
	}
}

func TestParseNumberLiteralErrors(t *testing.T) {
	for _, src := range []string{"99'h0", "0'd1"} {
		toks := lexKinds(t, src)
		if _, _, err := parseNumberLiteral(toks[0]); err == nil {
			t.Errorf("parseNumberLiteral(%q) succeeded, want width error", src)
		}
	}
}
