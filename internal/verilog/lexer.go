package verilog

import "strings"

// Lexer turns Verilog source text into a token stream. Comments (// and
// /* */) and compiler directives (`define lines) are skipped.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input. It returns the tokens (terminated by a
// TokEOF token) and the first lexical error, if any.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return toks, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peek2() byte {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			startLine, startCol := lx.line, lx.col
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(startLine, startCol, "unterminated block comment")
			}
		case c == '`':
			// Compiler directive: skip to end of line.
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isBaseDigit(c byte) bool {
	return isDigit(c) || c == '_' || c == 'x' || c == 'X' || c == 'z' || c == 'Z' ||
		(c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') || c == '?'
}

// multi-character symbols, longest first. The sequence operators |->, |=>,
// ## and -> never occur in design code; they are lexed here so the SVA
// layer (internal/sva) can share this lexer.
var symbols3 = []string{"<<<", ">>>", "===", "!==", "|->", "|=>"}
var symbols2 = []string{
	"&&", "||", "==", "!=", "<=", ">=", "<<", ">>", "**",
	"~&", "~|", "~^", "^~", "+:", "-:", "##", "->", "=>",
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Line: lx.line, Col: lx.col}, nil
	}
	line, col := lx.line, lx.col
	c := lx.peek()

	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentCont(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil

	case isDigit(c) || c == '\'':
		return lx.lexNumber(line, col)

	case c == '"':
		lx.advance()
		start := lx.pos
		for lx.pos < len(lx.src) && lx.peek() != '"' {
			if lx.peek() == '\n' {
				return Token{}, errf(line, col, "unterminated string literal")
			}
			lx.advance()
		}
		if lx.pos >= len(lx.src) {
			return Token{}, errf(line, col, "unterminated string literal")
		}
		text := lx.src[start:lx.pos]
		lx.advance() // closing quote
		return Token{Kind: TokString, Text: text, Line: line, Col: col}, nil
	}

	// Symbols.
	rest := lx.src[lx.pos:]
	for _, s := range symbols3 {
		if strings.HasPrefix(rest, s) {
			for range s {
				lx.advance()
			}
			return Token{Kind: TokSymbol, Text: s, Line: line, Col: col}, nil
		}
	}
	for _, s := range symbols2 {
		if strings.HasPrefix(rest, s) {
			for range s {
				lx.advance()
			}
			return Token{Kind: TokSymbol, Text: s, Line: line, Col: col}, nil
		}
	}
	switch c {
	case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>',
		'=', '?', ':', ';', ',', '.', '(', ')', '[', ']', '{', '}', '#', '@':
		lx.advance()
		return Token{Kind: TokSymbol, Text: string(c), Line: line, Col: col}, nil
	}
	return Token{}, errf(line, col, "unexpected character %q", string(c))
}

// lexNumber handles plain decimal literals, sized/based literals such as
// 8'hFF and 4'b10_10, and unsized based literals 'd15. The full literal text
// is preserved; numeric interpretation happens in the parser.
func (lx *Lexer) lexNumber(line, col int) (Token, error) {
	start := lx.pos
	for lx.pos < len(lx.src) && (isDigit(lx.peek()) || lx.peek() == '_') {
		lx.advance()
	}
	// Optional base part.
	if lx.peek() == '\'' {
		lx.advance()
		if lx.peek() == 's' || lx.peek() == 'S' {
			lx.advance()
		}
		b := lx.peek()
		if b != 'b' && b != 'B' && b != 'o' && b != 'O' && b != 'd' && b != 'D' && b != 'h' && b != 'H' {
			return Token{}, errf(line, col, "invalid base %q in numeric literal", string(b))
		}
		lx.advance()
		ndigits := 0
		for lx.pos < len(lx.src) && isBaseDigit(lx.peek()) {
			lx.advance()
			ndigits++
		}
		if ndigits == 0 {
			return Token{}, errf(line, col, "numeric literal missing digits after base")
		}
	}
	return Token{Kind: TokNumber, Text: lx.src[start:lx.pos], Line: line, Col: col}, nil
}
