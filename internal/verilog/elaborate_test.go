package verilog

import (
	"strings"
	"testing"
)

func mustElaborate(t *testing.T, src, top string) *Netlist {
	t.Helper()
	nl, err := ElaborateSource(src, top)
	if err != nil {
		t.Fatalf("elaborate failed: %v", err)
	}
	return nl
}

func TestElaborateArbiterRoles(t *testing.T) {
	nl := mustElaborate(t, arbSrc, "arb2")
	clk := nl.NetByName("clk")
	if clk == nil || !clk.IsClock {
		t.Fatal("clk should be classified as a clock")
	}
	rst := nl.NetByName("rst")
	if rst == nil || rst.IsClock || !rst.IsInput {
		t.Fatal("rst is read in the body, so it must be a data input, not a clock")
	}
	gnt := nl.NetByName("gnt_")
	if gnt == nil || !gnt.IsReg {
		t.Fatal("gnt_ should be a register")
	}
	gnt1 := nl.NetByName("gnt1")
	if gnt1 == nil || gnt1.IsReg || !gnt1.IsOut {
		t.Fatal("gnt1 is combinational output, not state")
	}
	if len(nl.Inputs) != 3 { // rst, req1, req2
		t.Fatalf("data inputs = %d, want 3", len(nl.Inputs))
	}
	if nl.StateBits() != 1 {
		t.Fatalf("state bits = %d, want 1", nl.StateBits())
	}
}

func TestElaborateWidthsAndParams(t *testing.T) {
	src := `
module regfile #(parameter W = 8, parameter HALF = W/2) (
  input clk, input [W-1:0] d, output [HALF-1:0] lo);
  reg [W-1:0] q;
  always @(posedge clk) q <= d;
  assign lo = q[HALF-1:0];
endmodule
`
	nl := mustElaborate(t, src, "regfile")
	if w := nl.NetByName("d").Width; w != 8 {
		t.Errorf("d width = %d, want 8", w)
	}
	if w := nl.NetByName("lo").Width; w != 4 {
		t.Errorf("lo width = %d, want 4", w)
	}
	// Parameter override.
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	nl16, err := Elaborate(f, "regfile", map[string]uint64{"W": 16})
	if err != nil {
		t.Fatal(err)
	}
	if w := nl16.NetByName("d").Width; w != 16 {
		t.Errorf("overridden d width = %d, want 16", w)
	}
	if w := nl16.NetByName("lo").Width; w != 8 {
		t.Errorf("overridden lo width = %d, want 8 (derived param)", w)
	}
}

func TestElaborateFlattening(t *testing.T) {
	src := `
module half_adder(input a, b, output s, c);
  assign s = a ^ b;
  assign c = a & b;
endmodule
module full_adder(input a, b, cin, output sum, cout);
  wire s1, c1, c2;
  half_adder ha1 (.a(a), .b(b), .s(s1), .c(c1));
  half_adder ha2 (.a(s1), .b(cin), .s(sum), .c(c2));
  assign cout = c1 | c2;
endmodule
`
	nl := mustElaborate(t, src, "full_adder")
	if nl.NetByName("ha1.s") == nil || nl.NetByName("ha2.c") == nil {
		t.Fatal("child nets should be flattened with instance prefixes")
	}
	if nl.IsSequential() {
		t.Fatal("full adder is combinational")
	}
	// Functional spot check via direct evaluation: a=1,b=1,cin=1 -> sum=1,cout=1.
	env := make([]uint64, len(nl.Nets))
	env[nl.NetIndex("a")] = 1
	env[nl.NetIndex("b")] = 1
	env[nl.NetIndex("cin")] = 1
	for pass := 0; pass < 3; pass++ { // enough passes to settle without order
		for i := range nl.Assigns {
			ExecAssign(&nl.Assigns[i], nl.Nets, env)
		}
	}
	if env[nl.NetIndex("sum")] != 1 || env[nl.NetIndex("cout")] != 1 {
		t.Errorf("1+1+1: sum=%d cout=%d, want 1,1", env[nl.NetIndex("sum")], env[nl.NetIndex("cout")])
	}
}

func TestElaborateParamOverrideInInstance(t *testing.T) {
	src := `
module delay #(parameter W = 4) (input clk, input [W-1:0] d, output [W-1:0] q);
  reg [W-1:0] r;
  always @(posedge clk) r <= d;
  assign q = r;
endmodule
module top(input clk, input [7:0] din, output [7:0] dout);
  delay #(.W(8)) u (.clk(clk), .d(din), .q(dout));
endmodule
`
	nl := mustElaborate(t, src, "top")
	if w := nl.NetByName("u.r").Width; w != 8 {
		t.Errorf("u.r width = %d, want 8 after override", w)
	}
}

func TestElaborateCombOrderAcyclic(t *testing.T) {
	src := `
module chain(input a, output d);
  wire b, c;
  assign d = c;
  assign c = b;
  assign b = a;
endmodule
`
	nl := mustElaborate(t, src, "chain")
	if nl.CombOrder == nil {
		t.Fatal("acyclic chain should get a topological order")
	}
	// The order must place b's assign before c's before d's.
	pos := map[int]int{}
	for p, item := range nl.CombOrder {
		pos[item] = p
	}
	// assigns were declared d, c, b -> indices 0,1,2.
	if !(pos[2] < pos[1] && pos[1] < pos[0]) {
		t.Errorf("topological order wrong: %v", nl.CombOrder)
	}
}

func TestElaborateCombCycleFallsBack(t *testing.T) {
	src := `
module latchish(input a, output q);
  wire q;
  assign q = a & q;
endmodule
`
	nl := mustElaborate(t, src, "latchish")
	if nl.CombOrder != nil {
		t.Fatal("combinational cycle must disable topological ordering")
	}
}

func TestElaborateForUnroll(t *testing.T) {
	src := `
module parity8(input [7:0] d, output reg p);
integer i;
always @(*) begin
  p = 0;
  for (i = 0; i < 8; i = i + 1)
    p = p ^ d[i];
end
endmodule
`
	nl := mustElaborate(t, src, "parity8")
	env := make([]uint64, len(nl.Nets))
	env[nl.NetIndex("d")] = 0b10110100 // 4 ones -> parity 0
	var nba []NBWrite
	ExecStmt(nl.Combs[0].Body, nl.Nets, env, &nba)
	if env[nl.NetIndex("p")] != 0 {
		t.Errorf("parity of 0b10110100 = %d, want 0", env[nl.NetIndex("p")])
	}
	env[nl.NetIndex("d")] = 0b10110101 // 5 ones -> parity 1
	ExecStmt(nl.Combs[0].Body, nl.Nets, env, &nba)
	if env[nl.NetIndex("p")] != 1 {
		t.Errorf("parity of 0b10110101 = %d, want 1", env[nl.NetIndex("p")])
	}
}

func TestElaborateErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{`module m(input a, output y); assign y = b; endmodule`, "undeclared"},
		{`module m(input a, output y); assign y = $rose(a); endmodule`, "system function"},
		{`module m(inout a); endmodule`, "inout"},
		{`module m(input a, output y); unknown u(.x(a)); endmodule`, "unknown module"},
		{`module m(input [70:0] a, output y); assign y = a[0]; endmodule`, "width"},
		{`module m(input [3:0] a, output y); assign y = a[9]; endmodule`, "out of range"},
		{`module m(input clk, a); reg r; always @(posedge clk) for (r = 0; a; r = r + 1) r <= 0; endmodule`, "constant"},
	}
	for _, c := range cases {
		_, err := ElaborateSource(c.src, "m")
		if err == nil {
			t.Errorf("ElaborateSource(%q) succeeded, want error with %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("error %q does not contain %q", err, c.frag)
		}
	}
}

func TestCompileExprAgainstNetlist(t *testing.T) {
	nl := mustElaborate(t, arbSrc, "arb2")
	f, err := Parse("module x(input q); endmodule") // throwaway, we just need expressions
	_ = f
	if err != nil {
		t.Fatal(err)
	}
	toks, err := Lex("req1 == 1 && gnt_ == 0")
	if err != nil {
		t.Fatal(err)
	}
	p := NewTokenParser(toks)
	e, err := p.ParseExpression()
	if err != nil {
		t.Fatal(err)
	}
	ce, err := nl.CompileExpr(e)
	if err != nil {
		t.Fatalf("CompileExpr failed: %v", err)
	}
	env := make([]uint64, len(nl.Nets))
	env[nl.NetIndex("req1")] = 1
	if ce.Eval(env) != 1 {
		t.Error("expression should hold with req1=1, gnt_=0")
	}
	env[nl.NetIndex("gnt_")] = 1
	if ce.Eval(env) != 0 {
		t.Error("expression should fail with gnt_=1")
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	exprs := []string{
		"a && (b || c)",
		"(x + y) * 2",
		"count[3:0] == 4'hf",
		"$past(v, 2) != v",
		"{a, b[1], 2'h3}",
		"sel ? p : q",
		"~(a ^ b)",
	}
	for _, src := range exprs {
		toks, err := Lex(src)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewTokenParser(toks).ParseExpression()
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := ExprString(e)
		toks2, err := Lex(printed)
		if err != nil {
			t.Fatalf("re-lex %q: %v", printed, err)
		}
		e2, err := NewTokenParser(toks2).ParseExpression()
		if err != nil {
			t.Fatalf("re-parse %q: %v", printed, err)
		}
		if ExprString(e2) != printed {
			t.Errorf("round trip of %q unstable: %q vs %q", src, printed, ExprString(e2))
		}
	}
}
