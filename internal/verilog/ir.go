package verilog

// The compiled execution backend: netlists and SVA evaluators lower into
// one flat register-machine program — a dense opcode slice executed over a
// []uint64 frame — replacing the recursive EExpr/EStmt tree-walk on the
// hot paths (simulator settle/step, FPV search, monitor stepping). The
// tree-walk in exec.go stays as the reference interpreter; the
// differential harness (internal/dverify) cross-checks the two
// instruction for instruction.
//
// Frame layout: slots [0, NumNets) alias the netlist's value environment
// one-to-one (slot i is net i, masked to its width), so a machine frame
// doubles as a simulator env with zero marshalling. Slots at and above
// NumNets are expression temporaries; every temporary is written before
// it is read within one execution, so frames never need clearing between
// runs. SVA programs read sampled histories through IHist instead of net
// slots and use the same temp discipline.

// IOp enumerates program opcodes. Operand conventions (f = frame):
//
//	Dst, A, B are frame slots (Dst doubles as the jump target on
//	branches); Imm carries width masks, literal values, or compare
//	immediates. ALU ops that can overflow their result width mask with
//	Imm; reductions receive the operand's width mask in Imm.
type IOp uint8

// Opcodes.
const (
	INop IOp = iota
	// IConst: f[Dst] = Imm.
	IConst
	// IMove: f[Dst] = f[A].
	IMove
	// IHist: f[Dst] = hist[B][A] — sampled-history load (SVA programs
	// only; A is a net index, B the $past depth).
	IHist

	// Masked binary ALU (f[Dst] = (f[A] op f[B]) & Imm).
	IAdd
	ISub
	IMul
	IPow
	IXnor
	// IDiv, IMod: zero divisor yields 0 (the interpreter's convention).
	IDiv
	IMod
	// Unmasked binary bitwise (operands already width-masked).
	IAnd
	IOr
	IXor
	// Comparisons and logical ops produce 0/1.
	ILogAnd
	ILogOr
	IEq
	INe
	ILt
	ILe
	IGt
	IGe
	// IShl masks the result with Imm; both shifts yield 0 for shift >= 64.
	IShl
	IShr

	// Masked unary ALU.
	INot
	INeg
	ILogNot
	// Reductions: Imm is the OPERAND's width mask.
	IRedAnd
	IRedOr
	IRedXor
	IRedNand
	IRedNor
	IRedXnor

	// IBitRead: idx = f[B]; f[Dst] = idx < 64 ? (f[A]>>idx)&1 : 0.
	IBitRead
	// IPartRead: f[Dst] = (f[A] >> uint(B)) & Imm.
	IPartRead
	// IConcat: f[Dst] = (f[Dst] << uint(B)) | (f[A] & Imm) — accumulate
	// concatenation parts MSB-first into Dst (initialised by IConst 0).
	IConcat
	// IAndImm: f[Dst] = f[A] & Imm.
	IAndImm
	// Immediate compares (fused constant operand): f[Dst] = 0/1.
	ICmpEqImm
	ICmpNeImm
	// Fused history-load compares — the dominant SVA atom `sig == K`
	// (`sig != K`) as one instruction: f[Dst] = b2u(hist[B][A] ==/!= Imm).
	IHistCmpEqImm
	IHistCmpNeImm

	// Branches: Dst is the absolute jump target.
	IJmp
	// IJz jumps when f[A] == 0; IJnz when f[A] != 0; IJeqImm when
	// f[A] == Imm; IJneImm when f[A] != Imm (the last two are the fused
	// forms of an immediate compare feeding a branch).
	IJz
	IJnz
	IJeqImm
	IJneImm
	// ICase dispatches f[A] through case table B (exact-label map or
	// in-order masked scan, mirroring the interpreter's two case paths);
	// Dst is the default arm's target.
	ICase
	// IRom: extracted constant lookup table. One net write of a case
	// statement whose arms only assign constants: f[Dst] receives ROM
	// table B indexed by f[A] (rows carry a write-enable so arms that
	// leave the net alone, and absent defaults, keep the old value).
	IRom

	// Blocking stores into net slots (Dst is the net slot).
	// IStore: f[Dst] = f[A] & Imm (Imm = net width mask).
	IStore
	// IStorePart: f[Dst] = (f[Dst] &^ (Imm<<B)) | ((f[A]&Imm) << B).
	IStorePart
	// IStoreBit: idx = f[B]; if idx < Imm (net width) and idx < 64, set
	// bit idx of f[Dst] to f[A]&1; out-of-range writes are dropped.
	IStoreBit

	// Non-blocking stores append an NBWrite to the machine's NBA list
	// instead of writing the frame; CommitNBA applies and clears it.
	// Operand conventions mirror the blocking forms. INBStoreConst
	// appends the precomputed NBWrite at side-table index B (the
	// `reg <= constant` reset-chain fast path).
	INBStore
	INBStorePart
	INBStoreBit
	INBStoreConst
)

// Instr is one program instruction.
type Instr struct {
	Op  IOp
	Dst int32
	A   int32
	B   int32
	Imm uint64
}

// Frag is a contiguous program region: an expression fragment leaving its
// value in Result (SVA evaluators), or one comb unit with its written net
// slots (the cyclic-settle fixpoint granularity).
type Frag struct {
	Start, End int
	Result     int32
	Writes     []int32
}

// caseTable is one ICase dispatch target set: either an exact-label map
// (the labelMap fast path for dense case statements) or an in-order
// masked scan list (casez/casex and small cases). Targets are absolute
// instruction indices.
type caseTable struct {
	m    map[uint64]int32
	scan []caseScanEntry
}

type caseScanEntry struct {
	val, mask uint64 // val is pre-masked
	target    int32
}

// romTable is one IRom target: vals[idx]/write[idx] give the value (and
// whether to write at all) for in-range subject values; defVal/defWrite
// cover subjects beyond the table.
type romTable struct {
	vals     []uint64
	write    []bool
	defVal   uint64
	defWrite bool
}

// Program is a compiled, immutable netlist or SVA evaluator program.
// Netlist programs have a comb section (settle) and a seq section (clock
// edge); SVA programs have one Frag per compiled boolean function.
type Program struct {
	Code     []Instr
	Cases    []caseTable
	Roms     []romTable
	NBConsts []NBWrite
	NumNets  int
	NumSlots int

	// Netlist-program sections. With Acyclic set, one forward pass over
	// [CombStart, CombEnd) settles the design; otherwise CombFrags holds
	// the per-assign/per-process units for bounded fixpoint iteration
	// (SettleLimit passes), mirroring the interpreter's fallback.
	CombStart, CombEnd int
	SeqStart, SeqEnd   int
	Acyclic            bool
	CombFrags          []Frag
	SettleLimit        int

	// SVA-program fragments (one per lowered evaluator).
	Frags []Frag

	// Step-tail section [StepStart, StepEnd): a fused clock edge for
	// short acyclic programs — non-blocking stores rewritten as blocking
	// stores into shadow slots between a net->shadow prologue and a
	// shadow->net epilogue, followed by a re-targeted copy of the comb
	// section — so one straight dispatch run replaces the seq/commit/
	// settle call sequence and its NBA traffic. Equivalent by
	// construction (see buildStepTail's eligibility rules); absent
	// (StepEnd == 0) for programs where the transform is invalid or not
	// worth it.
	StepStart, StepEnd int
}

// HasStepTail reports whether the program carries a fused step section.
func (p *Program) HasStepTail() bool { return p.StepEnd > p.StepStart }

// Machine executes a Program over its own frame. Machines are cheap
// (one []uint64) and not safe for concurrent use; every simulator or
// monitor owns one.
type Machine struct {
	// Frame is the register file; Frame[:NumNets] is the live net
	// environment for netlist programs.
	Frame []uint64
	// NBA accumulates non-blocking writes appended by INBStore*.
	NBA []NBWrite

	prog *Program
	snap []uint64 // cyclic-settle change-detection scratch
}

// NewMachine returns a machine with a zeroed frame.
func NewMachine(p *Program) *Machine {
	m := &Machine{prog: p, Frame: make([]uint64, p.NumSlots)}
	if !p.Acyclic {
		max := 0
		for _, fr := range p.CombFrags {
			if len(fr.Writes) > max {
				max = len(fr.Writes)
			}
		}
		m.snap = make([]uint64, max)
	}
	return m
}

// Program returns the program under execution.
func (m *Machine) Program() *Program { return m.prog }

// Exec runs instructions in [start, end). hist is only consulted by IHist
// (nil for netlist programs).
func (m *Machine) Exec(start, end int, hist [][]uint64) {
	f := m.Frame
	code := m.prog.Code
	for pc := start; pc < end; {
		in := &code[pc]
		pc++
		switch in.Op {
		case INop:
		case IConst:
			f[in.Dst] = in.Imm
		case IMove:
			f[in.Dst] = f[in.A]
		case IHist:
			f[in.Dst] = hist[in.B][in.A]
		case IAdd:
			f[in.Dst] = (f[in.A] + f[in.B]) & in.Imm
		case ISub:
			f[in.Dst] = (f[in.A] - f[in.B]) & in.Imm
		case IMul:
			f[in.Dst] = (f[in.A] * f[in.B]) & in.Imm
		case IPow:
			f[in.Dst] = ipow(f[in.A], f[in.B]) & in.Imm
		case IXnor:
			f[in.Dst] = (^(f[in.A] ^ f[in.B])) & in.Imm
		case IDiv:
			if d := f[in.B]; d == 0 {
				f[in.Dst] = 0
			} else {
				f[in.Dst] = (f[in.A] / d) & in.Imm
			}
		case IMod:
			if d := f[in.B]; d == 0 {
				f[in.Dst] = 0
			} else {
				f[in.Dst] = (f[in.A] % d) & in.Imm
			}
		case IAnd:
			f[in.Dst] = f[in.A] & f[in.B]
		case IOr:
			f[in.Dst] = f[in.A] | f[in.B]
		case IXor:
			f[in.Dst] = f[in.A] ^ f[in.B]
		case ILogAnd:
			f[in.Dst] = b2u(f[in.A] != 0 && f[in.B] != 0)
		case ILogOr:
			f[in.Dst] = b2u(f[in.A] != 0 || f[in.B] != 0)
		case IEq:
			f[in.Dst] = b2u(f[in.A] == f[in.B])
		case INe:
			f[in.Dst] = b2u(f[in.A] != f[in.B])
		case ILt:
			f[in.Dst] = b2u(f[in.A] < f[in.B])
		case ILe:
			f[in.Dst] = b2u(f[in.A] <= f[in.B])
		case IGt:
			f[in.Dst] = b2u(f[in.A] > f[in.B])
		case IGe:
			f[in.Dst] = b2u(f[in.A] >= f[in.B])
		case IShl:
			if s := f[in.B]; s >= 64 {
				f[in.Dst] = 0
			} else {
				f[in.Dst] = (f[in.A] << s) & in.Imm
			}
		case IShr:
			if s := f[in.B]; s >= 64 {
				f[in.Dst] = 0
			} else {
				f[in.Dst] = f[in.A] >> s
			}
		case INot:
			f[in.Dst] = (^f[in.A]) & in.Imm
		case INeg:
			f[in.Dst] = (-f[in.A]) & in.Imm
		case ILogNot:
			f[in.Dst] = b2u(f[in.A] == 0)
		case IRedAnd:
			f[in.Dst] = b2u(f[in.A] == in.Imm)
		case IRedOr:
			f[in.Dst] = b2u(f[in.A] != 0)
		case IRedXor:
			f[in.Dst] = parity(f[in.A])
		case IRedNand:
			f[in.Dst] = b2u(f[in.A] != in.Imm)
		case IRedNor:
			f[in.Dst] = b2u(f[in.A] == 0)
		case IRedXnor:
			f[in.Dst] = parity(f[in.A]) ^ 1
		case IBitRead:
			if idx := f[in.B]; idx >= 64 {
				f[in.Dst] = 0
			} else {
				f[in.Dst] = (f[in.A] >> idx) & 1
			}
		case IPartRead:
			f[in.Dst] = (f[in.A] >> uint32(in.B)) & in.Imm
		case IConcat:
			f[in.Dst] = (f[in.Dst] << uint32(in.B)) | (f[in.A] & in.Imm)
		case IAndImm:
			f[in.Dst] = f[in.A] & in.Imm
		case ICmpEqImm:
			f[in.Dst] = b2u(f[in.A] == in.Imm)
		case ICmpNeImm:
			f[in.Dst] = b2u(f[in.A] != in.Imm)
		case IHistCmpEqImm:
			f[in.Dst] = b2u(hist[in.B][in.A] == in.Imm)
		case IHistCmpNeImm:
			f[in.Dst] = b2u(hist[in.B][in.A] != in.Imm)
		case IJmp:
			pc = int(in.Dst)
		case IJz:
			if f[in.A] == 0 {
				pc = int(in.Dst)
			}
		case IJnz:
			if f[in.A] != 0 {
				pc = int(in.Dst)
			}
		case IJeqImm:
			if f[in.A] == in.Imm {
				pc = int(in.Dst)
			}
		case IJneImm:
			if f[in.A] != in.Imm {
				pc = int(in.Dst)
			}
		case ICase:
			t := &m.prog.Cases[in.B]
			v := f[in.A]
			if t.m != nil {
				if tgt, ok := t.m[v]; ok {
					pc = int(tgt)
				} else {
					pc = int(in.Dst)
				}
				break
			}
			pc = int(in.Dst)
			for i := range t.scan {
				if e := &t.scan[i]; v&e.mask == e.val {
					pc = int(e.target)
					break
				}
			}
		case IRom:
			t := &m.prog.Roms[in.B]
			if idx := f[in.A]; idx < uint64(len(t.vals)) {
				if t.write[idx] {
					f[in.Dst] = t.vals[idx]
				}
			} else if t.defWrite {
				f[in.Dst] = t.defVal
			}
		case IStore:
			f[in.Dst] = f[in.A] & in.Imm
		case IStorePart:
			f[in.Dst] = (f[in.Dst] &^ (in.Imm << uint32(in.B))) | ((f[in.A] & in.Imm) << uint32(in.B))
		case IStoreBit:
			if idx := f[in.B]; idx < in.Imm && idx < 64 {
				f[in.Dst] = (f[in.Dst] &^ (1 << idx)) | ((f[in.A] & 1) << idx)
			}
		case INBStore:
			m.NBA = append(m.NBA, NBWrite{Net: int(in.Dst), Mask: in.Imm, Val: f[in.A] & in.Imm})
		case INBStorePart:
			m.NBA = append(m.NBA, NBWrite{Net: int(in.Dst), Mask: in.Imm << uint32(in.B), Val: (f[in.A] & in.Imm) << uint32(in.B)})
		case INBStoreBit:
			if idx := f[in.B]; idx < in.Imm && idx < 64 {
				m.NBA = append(m.NBA, NBWrite{Net: int(in.Dst), Mask: 1 << idx, Val: (f[in.A] & 1) << idx})
			} else {
				// The interpreter appends a zero-mask write for an
				// out-of-range index; applying it is a no-op either way.
				m.NBA = append(m.NBA, NBWrite{Net: int(in.Dst)})
			}
		case INBStoreConst:
			m.NBA = append(m.NBA, m.prog.NBConsts[in.B])
		}
	}
}

// ExecFrag runs one expression fragment and returns its result. The
// single-instruction forms — what most SVA atoms fuse down to — skip the
// dispatch loop entirely, putting a fragment call on par with a closure
// call.
func (m *Machine) ExecFrag(fr Frag, hist [][]uint64) uint64 {
	if fr.End-fr.Start == 1 {
		switch in := &m.prog.Code[fr.Start]; in.Op {
		case IHist:
			return hist[in.B][in.A]
		case IHistCmpEqImm:
			return b2u(hist[in.B][in.A] == in.Imm)
		case IHistCmpNeImm:
			return b2u(hist[in.B][in.A] != in.Imm)
		case IConst:
			return in.Imm
		}
	}
	m.Exec(fr.Start, fr.End, hist)
	return m.Frame[fr.Result]
}

// Settle evaluates the comb section: one forward pass when the design is
// acyclic, bounded fixpoint iteration over CombFrags otherwise (the same
// fallback, in the same unit order with the same change detection, as the
// interpreting simulator).
func (m *Machine) Settle() {
	if m.prog.Acyclic {
		m.Exec(m.prog.CombStart, m.prog.CombEnd, nil)
		return
	}
	for iter := 0; iter < m.prog.SettleLimit; iter++ {
		changed := false
		for i := range m.prog.CombFrags {
			fr := &m.prog.CombFrags[i]
			snap := m.snap[:len(fr.Writes)]
			for k, w := range fr.Writes {
				snap[k] = m.Frame[w]
			}
			m.Exec(fr.Start, fr.End, nil)
			for k, w := range fr.Writes {
				if m.Frame[w] != snap[k] {
					changed = true
					break
				}
			}
		}
		if !changed {
			return
		}
	}
}

// ExecSeq runs the seq section, accumulating non-blocking writes in NBA.
func (m *Machine) ExecSeq() {
	m.Exec(m.prog.SeqStart, m.prog.SeqEnd, nil)
}

// ExecStepTail runs the fused clock-edge section (valid only when
// HasStepTail): seq with shadowed non-blocking stores, commit moves, and
// the comb re-settle, as one dispatch run that touches NBA not at all.
func (m *Machine) ExecStepTail() {
	m.Exec(m.prog.StepStart, m.prog.StepEnd, nil)
}

// CommitNBA applies and clears the accumulated non-blocking writes.
func (m *Machine) CommitNBA() {
	for _, w := range m.NBA {
		w.Apply(m.Frame)
	}
	m.NBA = m.NBA[:0]
}
