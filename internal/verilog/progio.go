package verilog

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Program blob codec (artifact-store payload, see internal/astore).
//
// The layout is a flat little-endian []uint64 image — no varints, no
// per-field framing — so an aligned reader can walk it without copying
// and the encoder is a single allocation. Every slice is preceded by
// its element count; map-backed case tables are emitted in sorted key
// order so identical programs encode to identical bytes (the store is
// content-addressed and dverify's determinism oracle assumes bytewise
// stability). Integrity is the container's job (astore checksums every
// blob); DecodeProgram only validates the structural invariants that
// version skew or a foreign payload would break.

// progioVersion stamps the payload layout. Bump on any change to the
// word stream below; old blobs then fail DecodeProgram and are rebuilt.
const progioVersion = 1

type progEnc struct {
	w []uint64
}

func (e *progEnc) word(v uint64) { e.w = append(e.w, v) }
func (e *progEnc) num(v int)     { e.w = append(e.w, uint64(int64(v))) }
func (e *progEnc) flag(b bool)   { e.w = append(e.w, boolWord(b)) }
func (e *progEnc) pair(a, b int32) {
	e.w = append(e.w, uint64(uint32(a))|uint64(uint32(b))<<32)
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (e *progEnc) frags(fs []Frag) {
	e.num(len(fs))
	for _, f := range fs {
		e.num(f.Start)
		e.num(f.End)
		e.num(len(f.Writes))
		e.word(uint64(uint32(f.Result)))
		for _, w := range f.Writes {
			e.word(uint64(uint32(w)))
		}
	}
}

// EncodeProgram serializes p into an artifact-store payload understood
// by DecodeProgram. The encoding is deterministic: equal programs yield
// equal bytes.
func EncodeProgram(p *Program) []byte {
	e := &progEnc{w: make([]uint64, 0, 16+3*len(p.Code))}
	e.word(progioVersion)
	e.num(p.NumNets)
	e.num(p.NumSlots)
	e.num(p.CombStart)
	e.num(p.CombEnd)
	e.num(p.SeqStart)
	e.num(p.SeqEnd)
	e.flag(p.Acyclic)
	e.num(p.SettleLimit)
	e.num(p.StepStart)
	e.num(p.StepEnd)

	e.num(len(p.Code))
	for _, in := range p.Code {
		e.word(uint64(in.Op) | uint64(uint32(in.Dst))<<32)
		e.pair(in.A, in.B)
		e.word(in.Imm)
	}

	e.num(len(p.Cases))
	for _, ct := range p.Cases {
		e.flag(ct.m != nil)
		e.num(len(ct.m))
		keys := make([]uint64, 0, len(ct.m))
		for k := range ct.m { //ab:allow maprange (keys are collected and sorted before encoding)
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			e.word(k)
			e.word(uint64(uint32(ct.m[k])))
		}
		e.num(len(ct.scan))
		for _, sc := range ct.scan {
			e.word(sc.val)
			e.word(sc.mask)
			e.word(uint64(uint32(sc.target)))
		}
	}

	e.num(len(p.Roms))
	for _, rt := range p.Roms {
		e.num(len(rt.vals))
		for _, v := range rt.vals {
			e.word(v)
		}
		e.num(len(rt.write))
		for _, b := range rt.write {
			e.flag(b)
		}
		e.word(rt.defVal)
		e.flag(rt.defWrite)
	}

	e.num(len(p.NBConsts))
	for _, w := range p.NBConsts {
		e.num(w.Net)
		e.word(w.Mask)
		e.word(w.Val)
	}

	e.frags(p.CombFrags)
	e.frags(p.Frags)

	buf := make([]byte, 8*len(e.w))
	for i, w := range e.w {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	return buf
}

type progDec struct {
	w   []uint64
	pos int
	err error
}

func (d *progDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("verilog: decode program: "+format, args...)
	}
}

func (d *progDec) word() uint64 {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.w) {
		d.fail("truncated at word %d", d.pos)
		return 0
	}
	v := d.w[d.pos]
	d.pos++
	return v
}

func (d *progDec) num() int { return int(int64(d.word())) }

func (d *progDec) flag() bool { return d.word() != 0 }

// count reads a slice length, bounding it by the words remaining (per
// is the minimum words one element consumes) so a foreign payload
// cannot trigger an absurd allocation.
func (d *progDec) count(per int) int {
	n := d.num()
	if d.err != nil {
		return 0
	}
	if n < 0 || n*per > len(d.w)-d.pos {
		d.fail("implausible count %d at word %d", n, d.pos-1)
		return 0
	}
	return n
}

func (d *progDec) frags() []Frag {
	n := d.count(4)
	if n == 0 {
		return nil
	}
	fs := make([]Frag, n)
	for i := range fs {
		fs[i].Start = d.num()
		fs[i].End = d.num()
		nw := d.count(1)
		fs[i].Result = int32(uint32(d.word()))
		if nw > 0 {
			fs[i].Writes = make([]int32, nw)
			for j := range fs[i].Writes {
				fs[i].Writes[j] = int32(uint32(d.word()))
			}
		}
	}
	return fs
}

// DecodeProgram rebuilds a Program from an EncodeProgram payload. It
// returns an error on version skew, truncation, or structural
// inconsistency; callers treat any error as a cache miss and recompile.
func DecodeProgram(data []byte) (*Program, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("verilog: decode program: payload length %d not word-aligned", len(data))
	}
	w := make([]uint64, len(data)/8)
	for i := range w {
		w[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	d := &progDec{w: w}
	if v := d.word(); d.err == nil && v != progioVersion {
		return nil, fmt.Errorf("verilog: decode program: payload version %d, want %d", v, progioVersion)
	}
	p := &Program{}
	p.NumNets = d.num()
	p.NumSlots = d.num()
	p.CombStart = d.num()
	p.CombEnd = d.num()
	p.SeqStart = d.num()
	p.SeqEnd = d.num()
	p.Acyclic = d.flag()
	p.SettleLimit = d.num()
	p.StepStart = d.num()
	p.StepEnd = d.num()

	nCode := d.count(3)
	if nCode > 0 {
		p.Code = make([]Instr, nCode)
		for i := range p.Code {
			w0 := d.word()
			p.Code[i].Op = IOp(uint8(w0))
			p.Code[i].Dst = int32(uint32(w0 >> 32))
			w1 := d.word()
			p.Code[i].A = int32(uint32(w1))
			p.Code[i].B = int32(uint32(w1 >> 32))
			p.Code[i].Imm = d.word()
		}
	}

	nCases := d.count(3)
	if nCases > 0 {
		p.Cases = make([]caseTable, nCases)
		for i := range p.Cases {
			hasMap := d.flag()
			nm := d.count(2)
			if hasMap {
				p.Cases[i].m = make(map[uint64]int32, nm)
			}
			for j := 0; j < nm; j++ {
				k := d.word()
				v := int32(uint32(d.word()))
				if p.Cases[i].m != nil {
					p.Cases[i].m[k] = v
				}
			}
			ns := d.count(3)
			if ns > 0 {
				p.Cases[i].scan = make([]caseScanEntry, ns)
				for j := range p.Cases[i].scan {
					p.Cases[i].scan[j].val = d.word()
					p.Cases[i].scan[j].mask = d.word()
					p.Cases[i].scan[j].target = int32(uint32(d.word()))
				}
			}
		}
	}

	nRoms := d.count(4)
	if nRoms > 0 {
		p.Roms = make([]romTable, nRoms)
		for i := range p.Roms {
			nv := d.count(1)
			if nv > 0 {
				p.Roms[i].vals = make([]uint64, nv)
				for j := range p.Roms[i].vals {
					p.Roms[i].vals[j] = d.word()
				}
			}
			nw := d.count(1)
			if nw > 0 {
				p.Roms[i].write = make([]bool, nw)
				for j := range p.Roms[i].write {
					p.Roms[i].write[j] = d.flag()
				}
			}
			p.Roms[i].defVal = d.word()
			p.Roms[i].defWrite = d.flag()
		}
	}

	nNB := d.count(3)
	if nNB > 0 {
		p.NBConsts = make([]NBWrite, nNB)
		for i := range p.NBConsts {
			p.NBConsts[i].Net = d.num()
			p.NBConsts[i].Mask = d.word()
			p.NBConsts[i].Val = d.word()
		}
	}

	p.CombFrags = d.frags()
	p.Frags = d.frags()

	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(d.w) {
		return nil, fmt.Errorf("verilog: decode program: %d trailing words", len(d.w)-d.pos)
	}
	if err := validateProgram(p); err != nil {
		return nil, err
	}
	return p, nil
}

// validateProgram checks the cross-field invariants an executor relies
// on, so a decoded program from a stale or foreign blob cannot index
// out of its own code or slot space.
func validateProgram(p *Program) error {
	n := len(p.Code)
	section := func(name string, start, end int) error {
		if start < 0 || end < start || end > n {
			return fmt.Errorf("verilog: decode program: %s section [%d,%d) outside code of %d instrs", name, start, end, n)
		}
		return nil
	}
	if p.NumNets < 0 || p.NumSlots < p.NumNets {
		return fmt.Errorf("verilog: decode program: %d slots for %d nets", p.NumSlots, p.NumNets)
	}
	if err := section("comb", p.CombStart, p.CombEnd); err != nil {
		return err
	}
	if err := section("seq", p.SeqStart, p.SeqEnd); err != nil {
		return err
	}
	if err := section("step", p.StepStart, p.StepEnd); err != nil {
		return err
	}
	for _, fs := range [][]Frag{p.CombFrags, p.Frags} {
		for _, f := range fs {
			if err := section("frag", f.Start, f.End); err != nil {
				return err
			}
		}
	}
	for _, w := range p.NBConsts {
		if w.Net < 0 || w.Net >= p.NumSlots {
			return fmt.Errorf("verilog: decode program: NB const writes slot %d of %d", w.Net, p.NumSlots)
		}
	}
	return nil
}
