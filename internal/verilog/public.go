package verilog

// This file exposes the parser and expression compiler to the SVA layer
// (internal/sva), which shares the lexical grammar and the boolean
// expression language of the design subset.

// NewTokenParser returns a parser positioned at the start of a pre-lexed
// token stream. toks must end with a TokEOF token (as produced by Lex).
func NewTokenParser(toks []Token) *Parser { return &Parser{toks: toks} }

// CurToken returns the token at the parser cursor without consuming it.
func (p *Parser) CurToken() Token { return p.cur() }

// Advance consumes and returns the current token.
func (p *Parser) Advance() Token { return p.next() }

// AtEOF reports whether the cursor reached the end of input.
func (p *Parser) AtEOF() bool { return p.atEOF() }

// AcceptSym consumes the current token if it is the given symbol.
func (p *Parser) AcceptSym(s string) bool { return p.acceptSymbol(s) }

// PeekSym reports whether the current token is the given symbol.
func (p *Parser) PeekSym(s string) bool { return p.isSymbol(s) }

// ExpectSym consumes the given symbol or returns a positioned error.
func (p *Parser) ExpectSym(s string) error { return p.expectSymbol(s) }

// AcceptKw consumes the current token if it is the given keyword.
func (p *Parser) AcceptKw(kw string) bool { return p.acceptKeyword(kw) }

// PeekKw reports whether the current token is the given keyword.
func (p *Parser) PeekKw(kw string) bool { return p.isKeyword(kw) }

// Pos returns the parser cursor for later backtracking via SetPos.
func (p *Parser) Pos() int { return p.pos }

// SetPos rewinds (or advances) the parser cursor to a position previously
// obtained from Pos.
func (p *Parser) SetPos(pos int) { p.pos = pos }

// ParseExpression parses a full expression (ternary level).
func (p *Parser) ParseExpression() (Expr, error) { return p.parseExpr() }

// ParseNumber interprets a numeric literal token (sized, based, or plain
// decimal). The SVA layer uses it to read ##N delay counts as single
// tokens: handing the delay to the expression parser instead would
// greedily consume a following unary step expression ("##2 &rst" would
// mis-parse as the binary AND "2 & rst").
func ParseNumber(t Token) (value uint64, width int, err error) {
	return parseNumberLiteral(t)
}

// ParseExpressionPrec parses a binary expression whose operators all bind
// at least as tightly as minPrec (see binaryPrec; '||' is 1, '&&' is 2).
// The SVA layer uses minPrec=3 so it can give '&&'/'||' temporal handling.
func (p *Parser) ParseExpressionPrec(minPrec int) (Expr, error) {
	return p.parseBinary(minPrec)
}

// CompileExpr compiles an AST expression against the flattened symbol
// table of an elaborated netlist. Identifiers resolve to flattened net
// names. System-function calls are rejected (the SVA layer handles them
// before reaching here).
func (nl *Netlist) CompileExpr(e Expr) (*EExpr, error) {
	el := &elaborator{nl: nl}
	sc := &scope{consts: map[string]uint64{}, netOf: map[string]int{}}
	// Map-to-map copy, no order dependence.
	//ab:allow maprange
	for name, idx := range nl.byName {
		sc.netOf[name] = idx
	}
	return el.compileExpr(e, sc)
}
