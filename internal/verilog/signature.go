package verilog

import (
	"fmt"
	"strings"
)

// Signature renders the elaborated netlist in a canonical, line-free text
// form: every net with its width and role flags, every compiled continuous
// assignment, and every process body. Two netlists with equal signatures
// are structurally identical as far as simulation and verification are
// concerned (CombOrder and the read/write sets are derived data and are
// excluded; source line numbers are excluded so a reprinted design
// signature-matches its original).
func (nl *Netlist) Signature() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "design %s\n", nl.Name)
	for _, n := range nl.Nets {
		fmt.Fprintf(&sb, "net %d %s w=%d", n.Index, n.Name, n.Width)
		if n.IsInput {
			sb.WriteString(" in")
		}
		if n.IsOut {
			sb.WriteString(" out")
		}
		if n.IsReg {
			sb.WriteString(" reg")
		}
		if n.IsClock {
			sb.WriteString(" clk")
		}
		sb.WriteByte('\n')
	}
	for _, a := range nl.Assigns {
		sb.WriteString("assign ")
		writeLRefs(&sb, a.LHS)
		sb.WriteString(" = ")
		writeEExpr(&sb, a.RHS)
		sb.WriteByte('\n')
	}
	for _, p := range nl.Combs {
		sb.WriteString("comb\n")
		writeEStmt(&sb, p.Body, 1)
	}
	for _, p := range nl.Seqs {
		sb.WriteString("seq\n")
		writeEStmt(&sb, p.Body, 1)
	}
	return sb.String()
}

// SignatureEqual reports whether two netlists are structurally identical.
func SignatureEqual(a, b *Netlist) bool {
	return a != nil && b != nil && a.Signature() == b.Signature()
}

func writeLRefs(sb *strings.Builder, refs []LRef) {
	for i, l := range refs {
		if i > 0 {
			sb.WriteByte(',')
		}
		switch {
		case l.IsBit:
			fmt.Fprintf(sb, "n%d[", l.Net)
			writeEExpr(sb, l.BitIdx)
			sb.WriteByte(']')
		case l.IsPart:
			fmt.Fprintf(sb, "n%d[%d+:%d]", l.Net, l.Lo, l.W)
		default:
			fmt.Fprintf(sb, "n%d", l.Net)
		}
	}
}

// eopNames maps compiled ops to stable mnemonic tags for signatures.
var eopNames = map[EOp]string{
	OpConst: "const", OpNet: "net", OpIndex: "index", OpPart: "part",
	OpNot: "not", OpLogNot: "lognot", OpNeg: "neg",
	OpRedAnd: "rand", OpRedOr: "ror", OpRedXor: "rxor",
	OpRedNand: "rnand", OpRedNor: "rnor", OpRedXnor: "rxnor",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpPow: "pow", OpAnd: "and", OpOr: "or", OpXor: "xor", OpXnor: "xnor",
	OpLogAnd: "logand", OpLogOr: "logor",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpShl: "shl", OpShr: "shr", OpTernary: "mux", OpConcat: "cat",
}

func writeEExpr(sb *strings.Builder, e *EExpr) {
	if e == nil {
		sb.WriteString("nil")
		return
	}
	switch e.Op {
	case OpConst:
		fmt.Fprintf(sb, "%d:w%d", e.Val, e.W)
		return
	case OpNet:
		fmt.Fprintf(sb, "n%d", e.Net)
		return
	case OpPart:
		fmt.Fprintf(sb, "n%d[%d+:%d]", e.Net, e.Lo, e.W)
		return
	case OpIndex:
		fmt.Fprintf(sb, "n%d[", e.Net)
		writeEExpr(sb, e.A)
		sb.WriteByte(']')
		return
	}
	fmt.Fprintf(sb, "%s:w%d(", eopNames[e.Op], e.W)
	args := []*EExpr{e.A, e.B, e.C}
	first := true
	for _, a := range args {
		if a == nil {
			continue
		}
		if !first {
			sb.WriteByte(',')
		}
		first = false
		writeEExpr(sb, a)
	}
	for _, p := range e.Parts {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		writeEExpr(sb, p)
	}
	sb.WriteByte(')')
}

func writeEStmt(sb *strings.Builder, s *EStmt, depth int) {
	if s == nil {
		return
	}
	ind := strings.Repeat(" ", depth)
	switch s.Op {
	case SAssign:
		sb.WriteString(ind)
		writeLRefs(sb, s.LHS)
		if s.Blocking {
			sb.WriteString(" = ")
		} else {
			sb.WriteString(" <= ")
		}
		writeEExpr(sb, s.RHS)
		sb.WriteByte('\n')
	case SIf:
		sb.WriteString(ind)
		sb.WriteString("if ")
		writeEExpr(sb, s.Cond)
		sb.WriteByte('\n')
		writeEStmt(sb, s.Then, depth+1)
		if s.Else != nil {
			sb.WriteString(ind)
			sb.WriteString("else\n")
			writeEStmt(sb, s.Else, depth+1)
		}
	case SCase:
		sb.WriteString(ind)
		sb.WriteString("case ")
		writeEExpr(sb, s.Subject)
		sb.WriteByte('\n')
		for i, labels := range s.Labels {
			sb.WriteString(ind)
			for j, l := range labels {
				if j > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(sb, "%d/%d", l.value, l.mask)
			}
			sb.WriteString(":\n")
			writeEStmt(sb, s.Arms[i], depth+1)
		}
		if s.Default != nil {
			sb.WriteString(ind)
			sb.WriteString("default:\n")
			writeEStmt(sb, s.Default, depth+1)
		}
	case SBlock:
		sb.WriteString(ind)
		sb.WriteString("block\n")
		for _, sub := range s.Stmts {
			writeEStmt(sb, sub, depth+1)
		}
	}
}
