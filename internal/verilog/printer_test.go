package verilog

import (
	"strings"
	"testing"
)

// Unit tests for the full-module printer on constructs the corpus
// exercises lightly: parameters, instances with named/positional
// connections, casez, for loops, initial blocks, concat lvalues.

func assertRoundTrip(t *testing.T, src, top string) {
	t.Helper()
	f := mustParse(t, src)
	nl, err := Elaborate(f, top, nil)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	printed := PrintFile(f)
	f2, err := Parse(printed)
	if err != nil {
		t.Fatalf("printed output does not re-parse: %v\n%s", err, printed)
	}
	nl2, err := Elaborate(f2, top, nil)
	if err != nil {
		t.Fatalf("printed output does not re-elaborate: %v\n%s", err, printed)
	}
	if !SignatureEqual(nl, nl2) {
		t.Errorf("signature changed:\n-- original --\n%s\n-- reprinted --\n%s", nl.Signature(), nl2.Signature())
	}
	if printed2 := PrintFile(f2); printed2 != printed {
		t.Errorf("printer not idempotent:\n%s\n---\n%s", printed, printed2)
	}
}

func TestPrintParamsAndInstances(t *testing.T) {
	src := `
module leaf #(parameter W = 4, parameter INIT = 1) (clk, d, q);
input clk;
input [W-1:0] d;
output [W-1:0] q;
reg [W-1:0] q;
always @(posedge clk)
  q <= d ^ INIT;
endmodule
module top(clk, a, b, y, z);
input clk;
input [7:0] a, b;
output [7:0] y;
output [3:0] z;
leaf #(.W(8)) u0 (.clk(clk), .d(a & b), .q(y));
leaf #(4, 3) u1 (clk, a[3:0], z);
endmodule
`
	assertRoundTrip(t, src, "top")
}

func TestPrintCasezForInitialAndConcatLHS(t *testing.T) {
	src := `
module m(clk, rst, sel, d, a, b, odd);
input clk, rst, d;
input [1:0] sel;
output [1:0] a;
output b, odd;
reg [1:0] a;
reg b, odd;
integer i;
wire [2:0] all = {a, b};
initial
  b = 0;
always @(*) begin
  odd = 0;
  for (i = 0; i < 2; i = i + 1)
    odd = odd ^ a[i];
end
always @(posedge clk or posedge rst)
  if (rst)
    {a, b} <= 0;
  else
    casez (sel)
      2'd0: {a, b} <= {2'd1, d};
      2'd1, 2'd2: a <= a + 1;
      default: ;
    endcase
endmodule
`
	assertRoundTrip(t, src, "m")
}

func TestPrintOpenAndMissingConnections(t *testing.T) {
	src := `
module child(x, y, z);
input x;
output y, z;
assign y = ~x;
assign z = x;
endmodule
module top(a, b);
input a;
output b;
child c0 (.x(a), .y(b), .z());
endmodule
`
	assertRoundTrip(t, src, "top")
}

func TestPrintSelectOfParenthesizedExpr(t *testing.T) {
	// A select of a compound base must keep its parentheses when printed.
	f := mustParse(t, `
module m(a, b, y);
input [3:0] a, b;
output y;
wire [3:0] s = a + b;
assign y = s[2];
endmodule
`)
	printed := PrintFile(f)
	if _, err := Parse(printed); err != nil {
		t.Fatalf("re-parse: %v\n%s", err, printed)
	}
	// Direct AST check: printing an Index over a Binary parenthesizes.
	e := &Index{Base: &Binary{Op: "+", X: &Ident{Name: "a"}, Y: &Ident{Name: "b"}}, Idx: &Number{Value: 0}}
	if got := ExprString(e); got != "(a + b)[0]" {
		t.Errorf("ExprString(Index over Binary) = %q, want %q", got, "(a + b)[0]")
	}
}

func TestSignatureDetectsDifferences(t *testing.T) {
	a, err := ElaborateSource("module m(x, y); input x; output y; assign y = ~x; endmodule", "m")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ElaborateSource("module m(x, y); input x; output y; assign y = x; endmodule", "m")
	if err != nil {
		t.Fatal(err)
	}
	if SignatureEqual(a, b) {
		t.Error("signatures of behaviourally different designs compare equal")
	}
	if !strings.Contains(a.Signature(), "not") {
		t.Errorf("signature missing compiled op: %s", a.Signature())
	}
}
