package verilog

import (
	"fmt"
	"strings"
)

// ExprString renders an AST expression in canonical Verilog concrete
// syntax. Parentheses are inserted conservatively (every binary and
// ternary operand group is parenthesized), which round-trips through the
// parser unchanged in meaning.
func ExprString(e Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e)
	return sb.String()
}

func writeExpr(sb *strings.Builder, e Expr) {
	switch v := e.(type) {
	case *Ident:
		sb.WriteString(v.Name)
	case *Number:
		if v.Width > 0 {
			fmt.Fprintf(sb, "%d'h%x", v.Width, v.Value)
		} else {
			fmt.Fprintf(sb, "%d", v.Value)
		}
	case *Unary:
		sb.WriteString(v.Op)
		// A nested unary must be parenthesized: "&&a" would re-lex as the
		// '&&' operator.
		if _, nested := v.X.(*Unary); nested {
			sb.WriteByte('(')
			writeExpr(sb, v.X)
			sb.WriteByte(')')
		} else {
			writeOperand(sb, v.X)
		}
	case *Binary:
		writeOperand(sb, v.X)
		sb.WriteByte(' ')
		sb.WriteString(v.Op)
		sb.WriteByte(' ')
		writeOperand(sb, v.Y)
	case *Ternary:
		writeOperand(sb, v.Cond)
		sb.WriteString(" ? ")
		writeOperand(sb, v.Then)
		sb.WriteString(" : ")
		writeOperand(sb, v.Else)
	case *Index:
		writeExpr(sb, v.Base)
		sb.WriteByte('[')
		writeExpr(sb, v.Idx)
		sb.WriteByte(']')
	case *PartSelect:
		writeExpr(sb, v.Base)
		sb.WriteByte('[')
		writeExpr(sb, v.MSB)
		sb.WriteByte(':')
		writeExpr(sb, v.LSB)
		sb.WriteByte(']')
	case *Concat:
		sb.WriteByte('{')
		for i, p := range v.Parts {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, p)
		}
		sb.WriteByte('}')
	case *Repl:
		sb.WriteByte('{')
		writeExpr(sb, v.Count)
		sb.WriteByte('{')
		writeExpr(sb, v.Value)
		sb.WriteString("}}")
	case *Call:
		sb.WriteString(v.Name)
		sb.WriteByte('(')
		for i, a := range v.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, a)
		}
		sb.WriteByte(')')
	default:
		sb.WriteString("<?expr?>")
	}
}

// writeOperand parenthesizes compound operands.
func writeOperand(sb *strings.Builder, e Expr) {
	switch e.(type) {
	case *Binary, *Ternary:
		sb.WriteByte('(')
		writeExpr(sb, e)
		sb.WriteByte(')')
	default:
		writeExpr(sb, e)
	}
}

// ExprIdents appends the identifier names referenced by e (excluding
// system-call names) to a set.
func ExprIdents(e Expr, dst map[string]bool) {
	switch v := e.(type) {
	case *Ident:
		dst[v.Name] = true
	case *Unary:
		ExprIdents(v.X, dst)
	case *Binary:
		ExprIdents(v.X, dst)
		ExprIdents(v.Y, dst)
	case *Ternary:
		ExprIdents(v.Cond, dst)
		ExprIdents(v.Then, dst)
		ExprIdents(v.Else, dst)
	case *Index:
		ExprIdents(v.Base, dst)
		ExprIdents(v.Idx, dst)
	case *PartSelect:
		ExprIdents(v.Base, dst)
		ExprIdents(v.MSB, dst)
		ExprIdents(v.LSB, dst)
	case *Concat:
		for _, p := range v.Parts {
			ExprIdents(p, dst)
		}
	case *Repl:
		ExprIdents(v.Count, dst)
		ExprIdents(v.Value, dst)
	case *Call:
		for _, a := range v.Args {
			ExprIdents(a, dst)
		}
	}
}
