package verilog

import (
	"fmt"
	"sort"
	"strings"
)

// ExprString renders an AST expression in canonical Verilog concrete
// syntax. Parentheses are inserted conservatively (every binary and
// ternary operand group is parenthesized), which round-trips through the
// parser unchanged in meaning.
func ExprString(e Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e)
	return sb.String()
}

// PrintFile renders a parsed source file back to concrete Verilog syntax.
// The output is canonical: re-lexing and re-parsing it yields a source
// file whose elaboration is structurally identical to the original's
// (Netlist.Signature equality), which is the print/parse round-trip
// contract the differential harness checks. Formatting details of the
// original source (whitespace, comments, ANSI vs non-ANSI ports) are not
// preserved; semantics are.
func PrintFile(f *SourceFile) string {
	var sb strings.Builder
	for i, m := range f.Modules {
		if i > 0 {
			sb.WriteByte('\n')
		}
		writeModule(&sb, m)
	}
	return sb.String()
}

// PrintModule renders one module declaration.
func PrintModule(m *Module) string {
	var sb strings.Builder
	writeModule(&sb, m)
	return sb.String()
}

func writeModule(sb *strings.Builder, m *Module) {
	fmt.Fprintf(sb, "module %s", m.Name)
	if len(m.Ports) > 0 {
		sb.WriteByte('(')
		for i, p := range m.Ports {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(p.Name)
		}
		sb.WriteByte(')')
	}
	sb.WriteString(";\n")
	// Parameters first: the elaborator resolves them before ranges, and
	// printing them ahead of the port declarations keeps any parameterized
	// range readable in source order.
	for _, par := range m.Params {
		kw := "parameter"
		if par.Local {
			kw = "localparam"
		}
		fmt.Fprintf(sb, "%s %s = %s;\n", kw, par.Name, ExprString(par.Value))
	}
	// Non-ANSI port declarations. A reg port additionally gets a matching
	// reg declaration, which is how the parser records Port.IsReg.
	for _, p := range m.Ports {
		fmt.Fprintf(sb, "%s%s %s;\n", p.Dir.String(), rangeString(p.Range), p.Name)
		if p.IsReg {
			fmt.Fprintf(sb, "reg%s %s;\n", rangeString(p.Range), p.Name)
		}
	}
	for _, d := range m.Decls {
		switch d.Kind {
		case DeclWire:
			fmt.Fprintf(sb, "wire%s %s", rangeString(d.Range), d.Name)
		case DeclReg:
			fmt.Fprintf(sb, "reg%s %s", rangeString(d.Range), d.Name)
		default:
			fmt.Fprintf(sb, "integer %s", d.Name)
		}
		if d.Init != nil {
			fmt.Fprintf(sb, " = %s", ExprString(d.Init))
		}
		sb.WriteString(";\n")
	}
	for _, item := range m.Items {
		writeItem(sb, item)
	}
	sb.WriteString("endmodule\n")
}

func rangeString(r *Range) string {
	if r == nil {
		return ""
	}
	return fmt.Sprintf(" [%s:%s]", ExprString(r.MSB), ExprString(r.LSB))
}

func writeItem(sb *strings.Builder, item ModuleItem) {
	switch it := item.(type) {
	case *AssignItem:
		fmt.Fprintf(sb, "assign %s = %s;\n", ExprString(it.LHS), ExprString(it.RHS))
	case *AlwaysItem:
		sb.WriteString("always @(")
		if it.Star {
			sb.WriteByte('*')
		} else {
			for i, ev := range it.Events {
				if i > 0 {
					sb.WriteString(" or ")
				}
				switch ev.Edge {
				case EdgePos:
					sb.WriteString("posedge ")
				case EdgeNeg:
					sb.WriteString("negedge ")
				}
				sb.WriteString(ev.Signal)
			}
		}
		sb.WriteString(")\n")
		writeStmt(sb, it.Body, 1)
	case *InitialItem:
		sb.WriteString("initial\n")
		writeStmt(sb, it.Body, 1)
	case *InstanceItem:
		sb.WriteString(it.ModName)
		if len(it.ParamsPos) > 0 || len(it.Params) > 0 {
			sb.WriteString(" #(")
			writeConnList(sb, it.ParamsPos, it.Params)
			sb.WriteByte(')')
		}
		fmt.Fprintf(sb, " %s (", it.InstName)
		writeConnList(sb, it.ConnsPos, it.Conns)
		sb.WriteString(");\n")
	}
}

// writeConnList renders positional then named connections. Named entries
// are sorted so the output is deterministic; binding is by name, so the
// order carries no meaning.
func writeConnList(sb *strings.Builder, positional []Expr, named map[string]Expr) {
	n := 0
	for _, e := range positional {
		if n > 0 {
			sb.WriteString(", ")
		}
		writeExpr(sb, e)
		n++
	}
	names := make([]string, 0, len(named))
	for name := range named { //ab:allow maprange
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if n > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(sb, ".%s(", name)
		if e := named[name]; e != nil {
			writeExpr(sb, e)
		}
		sb.WriteByte(')')
		n++
	}
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
}

func writeStmt(sb *strings.Builder, s Stmt, depth int) {
	switch st := s.(type) {
	case *BlockStmt:
		indent(sb, depth)
		sb.WriteString("begin\n")
		for _, sub := range st.Stmts {
			writeStmt(sb, sub, depth+1)
		}
		indent(sb, depth)
		sb.WriteString("end\n")
	case *AssignStmt:
		indent(sb, depth)
		writeAssignStmt(sb, st)
		sb.WriteString(";\n")
	case *IfStmt:
		indent(sb, depth)
		fmt.Fprintf(sb, "if (%s)\n", ExprString(st.Cond))
		writeStmt(sb, st.Then, depth+1)
		if st.Else != nil {
			indent(sb, depth)
			sb.WriteString("else\n")
			writeStmt(sb, st.Else, depth+1)
		}
	case *CaseStmt:
		indent(sb, depth)
		kw := "case"
		if st.Wild {
			kw = "casez"
		}
		fmt.Fprintf(sb, "%s (%s)\n", kw, ExprString(st.Subject))
		for _, item := range st.Items {
			indent(sb, depth+1)
			for i, l := range item.Labels {
				if i > 0 {
					sb.WriteString(", ")
				}
				writeExpr(sb, l)
			}
			sb.WriteString(":\n")
			writeStmt(sb, item.Body, depth+2)
		}
		if st.Default != nil {
			indent(sb, depth+1)
			sb.WriteString("default:\n")
			writeStmt(sb, st.Default, depth+2)
		}
		indent(sb, depth)
		sb.WriteString("endcase\n")
	case *ForStmt:
		indent(sb, depth)
		sb.WriteString("for (")
		writeAssignStmt(sb, st.Init)
		fmt.Fprintf(sb, "; %s; ", ExprString(st.Cond))
		writeAssignStmt(sb, st.Step)
		sb.WriteString(")\n")
		writeStmt(sb, st.Body, depth+1)
	case *NullStmt:
		indent(sb, depth)
		sb.WriteString(";\n")
	}
}

func writeAssignStmt(sb *strings.Builder, st *AssignStmt) {
	op := "="
	if !st.Blocking {
		op = "<="
	}
	fmt.Fprintf(sb, "%s %s %s", ExprString(st.LHS), op, ExprString(st.RHS))
}

func writeExpr(sb *strings.Builder, e Expr) {
	switch v := e.(type) {
	case *Ident:
		sb.WriteString(v.Name)
	case *Number:
		if v.Width > 0 {
			fmt.Fprintf(sb, "%d'h%x", v.Width, v.Value)
		} else {
			fmt.Fprintf(sb, "%d", v.Value)
		}
	case *Unary:
		sb.WriteString(v.Op)
		// A nested unary must be parenthesized: "&&a" would re-lex as the
		// '&&' operator.
		if _, nested := v.X.(*Unary); nested {
			sb.WriteByte('(')
			writeExpr(sb, v.X)
			sb.WriteByte(')')
		} else {
			writeOperand(sb, v.X)
		}
	case *Binary:
		writeOperand(sb, v.X)
		sb.WriteByte(' ')
		sb.WriteString(v.Op)
		sb.WriteByte(' ')
		writeOperand(sb, v.Y)
	case *Ternary:
		writeOperand(sb, v.Cond)
		sb.WriteString(" ? ")
		writeOperand(sb, v.Then)
		sb.WriteString(" : ")
		writeOperand(sb, v.Else)
	case *Index:
		writeSelectBase(sb, v.Base)
		sb.WriteByte('[')
		writeExpr(sb, v.Idx)
		sb.WriteByte(']')
	case *PartSelect:
		writeSelectBase(sb, v.Base)
		sb.WriteByte('[')
		writeExpr(sb, v.MSB)
		sb.WriteByte(':')
		writeExpr(sb, v.LSB)
		sb.WriteByte(']')
	case *Concat:
		sb.WriteByte('{')
		for i, p := range v.Parts {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, p)
		}
		sb.WriteByte('}')
	case *Repl:
		sb.WriteByte('{')
		writeExpr(sb, v.Count)
		sb.WriteByte('{')
		writeExpr(sb, v.Value)
		sb.WriteString("}}")
	case *Call:
		sb.WriteString(v.Name)
		sb.WriteByte('(')
		for i, a := range v.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, a)
		}
		sb.WriteByte(')')
	default:
		sb.WriteString("<?expr?>")
	}
}

// writeSelectBase renders the base of a bit/part select. A select binds
// tighter than any operator, so a compound base ("(a + b)[0]") must keep
// its parentheses to re-parse as the same tree.
func writeSelectBase(sb *strings.Builder, e Expr) {
	switch e.(type) {
	case *Ident, *Index, *PartSelect, *Concat, *Number:
		writeExpr(sb, e)
	default:
		sb.WriteByte('(')
		writeExpr(sb, e)
		sb.WriteByte(')')
	}
}

// writeOperand parenthesizes compound operands.
func writeOperand(sb *strings.Builder, e Expr) {
	switch e.(type) {
	case *Binary, *Ternary:
		sb.WriteByte('(')
		writeExpr(sb, e)
		sb.WriteByte(')')
	default:
		writeExpr(sb, e)
	}
}

// ExprIdents appends the identifier names referenced by e (excluding
// system-call names) to a set.
func ExprIdents(e Expr, dst map[string]bool) {
	switch v := e.(type) {
	case *Ident:
		dst[v.Name] = true
	case *Unary:
		ExprIdents(v.X, dst)
	case *Binary:
		ExprIdents(v.X, dst)
		ExprIdents(v.Y, dst)
	case *Ternary:
		ExprIdents(v.Cond, dst)
		ExprIdents(v.Then, dst)
		ExprIdents(v.Else, dst)
	case *Index:
		ExprIdents(v.Base, dst)
		ExprIdents(v.Idx, dst)
	case *PartSelect:
		ExprIdents(v.Base, dst)
		ExprIdents(v.MSB, dst)
		ExprIdents(v.LSB, dst)
	case *Concat:
		for _, p := range v.Parts {
			ExprIdents(p, dst)
		}
	case *Repl:
		ExprIdents(v.Count, dst)
		ExprIdents(v.Value, dst)
	case *Call:
		for _, a := range v.Args {
			ExprIdents(a, dst)
		}
	}
}
