package verilog

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWidthMaskProperties(t *testing.T) {
	f := func(w uint8) bool {
		width := int(w%64) + 1
		m := WidthMask(width)
		return bits.OnesCount64(m) == width && (width == 64 || m == (uint64(1)<<uint(width))-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParityMatchesPopcount(t *testing.T) {
	f := func(v uint64) bool {
		return parity(v) == uint64(bits.OnesCount64(v)%2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIpow(t *testing.T) {
	cases := []struct{ b, e, want uint64 }{
		{2, 10, 1024}, {3, 0, 1}, {0, 5, 0}, {1, 63, 1}, {5, 3, 125},
	}
	for _, c := range cases {
		if got := ipow(c.b, c.e); got != c.want {
			t.Errorf("ipow(%d,%d) = %d, want %d", c.b, c.e, got, c.want)
		}
	}
}

func TestLexerTotalOnArbitraryInput(t *testing.T) {
	// The lexer must terminate on any input (error or EOF), never panic.
	f := func(data []byte) bool {
		toks, err := Lex(string(data))
		if err != nil {
			return true
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == TokEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// randExpr builds a random well-formed expression over two signals.
func randExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return &Ident{Name: "a"}
		case 1:
			return &Ident{Name: "b"}
		default:
			return &Number{Value: uint64(rng.Intn(256)), Width: 8}
		}
	}
	ops := []string{"+", "-", "&", "|", "^", "==", "!=", "<", "&&", "||", "<<", ">>"}
	switch rng.Intn(4) {
	case 0:
		return &Unary{Op: []string{"~", "!", "-", "&", "|", "^"}[rng.Intn(6)], X: randExpr(rng, depth-1)}
	case 1:
		return &Ternary{Cond: randExpr(rng, depth-1), Then: randExpr(rng, depth-1), Else: randExpr(rng, depth-1)}
	default:
		return &Binary{Op: ops[rng.Intn(len(ops))], X: randExpr(rng, depth-1), Y: randExpr(rng, depth-1)}
	}
}

// TestPrintParseRoundTrip: ExprString output re-parses to the same
// canonical form, for randomly generated expression trees.
func TestPrintParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		e := randExpr(rng, 4)
		printed := ExprString(e)
		toks, err := Lex(printed)
		if err != nil {
			t.Fatalf("lex of printed expr %q failed: %v", printed, err)
		}
		e2, err := NewTokenParser(toks).ParseExpression()
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", printed, err)
		}
		if got := ExprString(e2); got != printed {
			t.Fatalf("round trip changed expression:\n  %q\n  %q", printed, got)
		}
	}
}

// TestEvalWidthInvariant: every compiled expression evaluates within its
// declared width mask, for random expressions and environments.
func TestEvalWidthInvariant(t *testing.T) {
	nl := mustElaborate(t, `module m(input [7:0] a, input [7:0] b, output y); assign y = a[0]; endmodule`, "m")
	rng := rand.New(rand.NewSource(29))
	env := make([]uint64, len(nl.Nets))
	for i := 0; i < 300; i++ {
		e := randExpr(rng, 4)
		ce, err := nl.CompileExpr(e)
		if err != nil {
			t.Fatalf("compile of %q failed: %v", ExprString(e), err)
		}
		for trial := 0; trial < 8; trial++ {
			env[nl.NetIndex("a")] = rng.Uint64() & 0xff
			env[nl.NetIndex("b")] = rng.Uint64() & 0xff
			v := ce.Eval(env)
			if v&^WidthMask(ce.W) != 0 {
				t.Fatalf("expression %q (width %d) evaluated to %#x outside its mask",
					ExprString(e), ce.W, v)
			}
		}
	}
}

// TestSupportSoundness: changing a net outside an expression's support
// set never changes its value.
func TestSupportSoundness(t *testing.T) {
	nl := mustElaborate(t, `module m(input [7:0] a, input [7:0] b, input [7:0] c, output y); assign y = a[0]; endmodule`, "m")
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 200; i++ {
		e := randExpr(rng, 3) // only mentions a, b
		ce, err := nl.CompileExpr(e)
		if err != nil {
			t.Fatal(err)
		}
		support := map[int]bool{}
		ce.Support(support)
		env := make([]uint64, len(nl.Nets))
		env[nl.NetIndex("a")] = rng.Uint64() & 0xff
		env[nl.NetIndex("b")] = rng.Uint64() & 0xff
		before := ce.Eval(env)
		cIdx := nl.NetIndex("c")
		if support[cIdx] {
			t.Fatalf("support of %q includes unmentioned net c", ExprString(e))
		}
		env[cIdx] = rng.Uint64() & 0xff
		if ce.Eval(env) != before {
			t.Fatalf("changing non-support net changed %q", ExprString(e))
		}
	}
}

func TestCaseLabelMapMatchesLinearScan(t *testing.T) {
	// The dense-case fast path must agree with the linear scan semantics.
	src := `
module lut(input [4:0] k, output reg [7:0] v);
always @(*)
  case (k)
`
	for i := 0; i < 20; i++ {
		src += "    5'd" + itoa(i) + ": v = 8'd" + itoa(i*3) + ";\n"
	}
	src += "    default: v = 8'hff;\n  endcase\nendmodule\n"
	nl := mustElaborate(t, src, "lut")
	env := make([]uint64, len(nl.Nets))
	var nba []NBWrite
	for k := uint64(0); k < 32; k++ {
		env[nl.NetIndex("k")] = k
		ExecStmt(nl.Combs[0].Body, nl.Nets, env, &nba)
		want := k * 3
		if k >= 20 {
			want = 0xff
		}
		if got := env[nl.NetIndex("v")]; got != want {
			t.Errorf("lut[%d] = %d, want %d", k, got, want)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
