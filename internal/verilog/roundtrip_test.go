package verilog_test

// The print/parse round-trip property test over every corpus and
// generated design: PrintFile of a parsed design must re-parse and
// re-elaborate to a structurally identical netlist, and the printer must
// be idempotent. Lives in an external test package so it can draw designs
// from internal/bench without an import cycle.

import (
	"math/rand"
	"testing"

	"assertionbench/internal/bench"
	"assertionbench/internal/sim"
	"assertionbench/internal/verilog"
)

func roundTripDesigns() []bench.Design {
	designs := append(bench.TrainDesigns(), bench.TestCorpus()...)
	designs = append(designs, bench.SecurityDesigns()...)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 50; i++ {
		designs = append(designs, bench.RandomFuzzSpec(rng).Build())
	}
	return designs
}

func TestPrintParseRoundTrip(t *testing.T) {
	t.Parallel()
	for _, d := range roundTripDesigns() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			file, err := verilog.Parse(d.Source)
			if err != nil {
				t.Fatalf("corpus design does not parse: %v", err)
			}
			nl, err := verilog.Elaborate(file, d.Name, nil)
			if err != nil {
				t.Fatalf("corpus design does not elaborate: %v", err)
			}
			printed := verilog.PrintFile(file)
			file2, err := verilog.Parse(printed)
			if err != nil {
				t.Fatalf("printed design does not re-parse: %v\n%s", err, printed)
			}
			nl2, err := verilog.Elaborate(file2, d.Name, nil)
			if err != nil {
				t.Fatalf("printed design does not re-elaborate: %v\n%s", err, printed)
			}
			if !verilog.SignatureEqual(nl, nl2) {
				t.Errorf("netlist signature changed across round-trip")
			}
			if printed2 := verilog.PrintFile(file2); printed2 != printed {
				t.Errorf("printer is not idempotent")
			}
		})
	}
}

// The round-trip must also preserve behaviour observably: one random
// simulation of the original and reprinted netlists must agree cycle by
// cycle. (Signature equality already implies this; the test guards the
// signature itself against under-reporting.)
func TestRoundTripSimulationAgrees(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 12; i++ {
		d := bench.RandomFuzzSpec(rng).Build()
		file, err := verilog.Parse(d.Source)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		nl, err := verilog.Elaborate(file, d.Name, nil)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		file2, err := verilog.Parse(verilog.PrintFile(file))
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		nl2, err := verilog.Elaborate(file2, d.Name, nil)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if len(nl.Nets) != len(nl2.Nets) {
			t.Fatalf("%s: net count differs", d.Name)
		}
		s1, s2 := sim.New(nl), sim.New(nl2)
		srng := rand.New(rand.NewSource(int64(i)))
		for c := 0; c < 16; c++ {
			in := sim.RandomInputs(nl, srng)
			if err := s1.StepWith(in); err != nil {
				t.Fatalf("%s: %v", d.Name, err)
			}
			if err := s2.StepWith(in); err != nil {
				t.Fatalf("%s: %v", d.Name, err)
			}
			for k := range nl.Nets {
				if s1.ValueIdx(k) != s2.ValueIdx(k) {
					t.Fatalf("%s: cycle %d: net %s diverges (%#x vs %#x)",
						d.Name, c, nl.Nets[k].Name, s1.ValueIdx(k), s2.ValueIdx(k))
				}
			}
		}
	}
}
