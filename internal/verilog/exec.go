package verilog

// NBWrite is a resolved non-blocking write: the masked bits of one net to
// update after all sequential processes of the current clock edge ran.
type NBWrite struct {
	Net  int
	Mask uint64
	Val  uint64 // already shifted into position and masked
}

// Apply commits the write into env.
func (w NBWrite) Apply(env []uint64) {
	env[w.Net] = (env[w.Net] &^ w.Mask) | (w.Val & w.Mask)
}

// resolveRef turns an LRef plus a value into a positioned (mask, val) pair.
// Dynamic bit indices are evaluated now, matching Verilog's semantics of
// evaluating the target index at assignment time.
func resolveRef(l *LRef, netWidth int, v uint64, env []uint64) (mask, val uint64) {
	switch {
	case l.IsBit:
		idx := l.BitIdx.Eval(env)
		if idx >= uint64(netWidth) || idx >= 64 {
			return 0, 0
		}
		return 1 << idx, (v & 1) << idx
	case l.IsPart:
		m := WidthMask(l.W) << uint(l.Lo)
		return m, (v & WidthMask(l.W)) << uint(l.Lo)
	default:
		m := WidthMask(netWidth)
		return m, v & m
	}
}

// ExecStmt executes a compiled statement. Blocking assignments update env
// immediately; non-blocking assignments are appended to *nba (which may be
// nil only if the statement contains none). nets provides widths.
func ExecStmt(s *EStmt, nets []*Net, env []uint64, nba *[]NBWrite) {
	if s == nil {
		return
	}
	switch s.Op {
	case SBlock:
		for _, sub := range s.Stmts {
			ExecStmt(sub, nets, env, nba)
		}

	case SAssign:
		v := s.RHS.Eval(env)
		// For a concatenated LHS the refs are MSB-first; distribute from
		// the LSB end.
		if len(s.LHS) == 1 {
			l := &s.LHS[0]
			mask, val := resolveRef(l, nets[l.Net].Width, v, env)
			if s.Blocking {
				env[l.Net] = (env[l.Net] &^ mask) | val
			} else {
				*nba = append(*nba, NBWrite{Net: l.Net, Mask: mask, Val: val})
			}
			return
		}
		shift := uint(0)
		for i := len(s.LHS) - 1; i >= 0; i-- {
			l := &s.LHS[i]
			w := refWidth(l, nets)
			part := (v >> shift) & WidthMask(w)
			mask, val := resolveRef(l, nets[l.Net].Width, part, env)
			if s.Blocking {
				env[l.Net] = (env[l.Net] &^ mask) | val
			} else {
				*nba = append(*nba, NBWrite{Net: l.Net, Mask: mask, Val: val})
			}
			shift += uint(w)
		}

	case SIf:
		if s.Cond.Eval(env) != 0 {
			ExecStmt(s.Then, nets, env, nba)
		} else {
			ExecStmt(s.Else, nets, env, nba)
		}

	case SCase:
		subj := s.Subject.Eval(env)
		if s.labelMap != nil {
			if i, ok := s.labelMap[subj]; ok {
				ExecStmt(s.Arms[i], nets, env, nba)
			} else {
				ExecStmt(s.Default, nets, env, nba)
			}
			return
		}
		for i, labels := range s.Labels {
			for _, lab := range labels {
				if subj&lab.mask == lab.value&lab.mask {
					ExecStmt(s.Arms[i], nets, env, nba)
					return
				}
			}
		}
		ExecStmt(s.Default, nets, env, nba)
	}
}

// refWidth returns the number of bits an LRef covers.
func refWidth(l *LRef, nets []*Net) int {
	switch {
	case l.IsBit:
		return 1
	case l.IsPart:
		return l.W
	default:
		return nets[l.Net].Width
	}
}

// ExecAssign executes a continuous assignment against env.
func ExecAssign(a *CompiledAssign, nets []*Net, env []uint64) {
	v := a.RHS.Eval(env)
	if len(a.LHS) == 1 {
		l := &a.LHS[0]
		mask, val := resolveRef(l, nets[l.Net].Width, v, env)
		env[l.Net] = (env[l.Net] &^ mask) | val
		return
	}
	shift := uint(0)
	for i := len(a.LHS) - 1; i >= 0; i-- {
		l := &a.LHS[i]
		w := refWidth(l, nets)
		part := (v >> shift) & WidthMask(w)
		mask, val := resolveRef(l, nets[l.Net].Width, part, env)
		env[l.Net] = (env[l.Net] &^ mask) | val
		shift += uint(w)
	}
}
